// Sweep: a hyperparameter search expressed as iterative development — the
// use case the paper's intro motivates ("changing the regularization
// parameter should only retrain the model but not rerun data
// pre-processing"). Nine regParam values run as nine iterations; HELIX
// materializes the vectorized dataset once and only retrains, so each
// follow-up iteration costs a fraction of the first.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/opt"
	"repro/internal/workload"
)

func main() {
	data := workload.GenerateCensus(10000, 2500, 7)
	params := workload.DefaultCensusParams(data)
	params.WithOccupation = true
	params.WithMaritalStatus = true
	params.WithCapital = true

	dir, err := os.MkdirTemp("", "helix-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	session, err := core.Open(core.Options{
		SystemName: "helix",
		StoreDir:   dir,
		Policy:     opt.OnlineHeuristic{},
		Reuse:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	regs := []float64{1, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001}
	fmt.Println("regParam sweep on census (helix):")
	fmt.Printf("%-10s %-12s %-10s %s\n", "regParam", "wall", "accuracy", "plan")
	var first, rest time.Duration
	bestAcc, bestReg := 0.0, 0.0
	for i, reg := range regs {
		params.RegParam = reg
		rep, err := session.Run(params.Build())
		if err != nil {
			log.Fatal(err)
		}
		met := rep.Outputs["checked"].(ml.Metrics)
		computed, loaded, pruned := rep.Counts()
		fmt.Printf("%-10.3f %-12v %-10.4f computed=%d loaded=%d pruned=%d\n",
			reg, rep.Wall.Round(time.Microsecond), met.Accuracy, computed, loaded, pruned)
		if i == 0 {
			first = rep.Wall
		} else {
			rest += rep.Wall
		}
		if met.Accuracy > bestAcc {
			bestAcc, bestReg = met.Accuracy, reg
		}
	}
	avgRest := rest / time.Duration(len(regs)-1)
	fmt.Printf("\nfirst iteration: %v; later iterations average: %v (%.1fx faster)\n",
		first.Round(time.Microsecond), avgRest.Round(time.Microsecond),
		float64(first)/float64(avgRest))
	fmt.Printf("best: regParam=%g accuracy=%.4f\n", bestReg, bestAcc)
}
