// Census: the paper's first demo application (§3) — income classification
// over census-style records. Replays the full 10-iteration development
// session on HELIX, showing the per-iteration plans, the automatic change
// detection, and the Metrics-tab trend across versions.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/systems"
	"repro/internal/workload"
)

func main() {
	data := workload.GenerateCensus(5000, 1250, 42)
	scenario := workload.CensusScenario(data)

	base, err := os.MkdirTemp("", "helix-census-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	res, err := bench.RunScenario(systems.Helix, scenario, base, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("iterative development session (census, helix):")
	for _, it := range res.Iterations {
		fmt.Printf("  v%-2d [%-7s] %-46s wall=%-10v acc=%.4f\n",
			it.Iteration, it.Kind, it.Description,
			it.Wall.Round(time.Microsecond), it.Metrics["accuracy"])
	}
	fmt.Printf("cumulative: %v\n\n", res.Cumulative().Round(time.Microsecond))

	fmt.Println("accuracy across versions (Metrics tab):")
	fmt.Print(res.Versions.PlotMetric("accuracy", 50))

	best, err := res.Versions.Best("accuracy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest version: v%d (%q)\n", best.Number, best.Message)

	// Version comparison (Figure 3): the best version against the first.
	out, err := res.Versions.Compare(1, best.Number)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomparison v1 -> best:")
	fmt.Print(out)
}
