// IE: the paper's second demo application (§3) — person-mention extraction
// from news articles, a structured prediction task with heavy data
// pre-processing. Runs three iterations on HELIX and prints sample
// extractions, demonstrating the UDF-based operator extension mechanism
// (every IE operator is a DSL UDF).
//
//	go run ./examples/ie
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/opt"
	"repro/internal/text"
	"repro/internal/workload"
)

func main() {
	data := workload.GenerateNews(200, 50, 42)

	dir, err := os.MkdirTemp("", "helix-ie-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	session, err := core.Open(core.Options{
		SystemName: "helix",
		StoreDir:   dir,
		Policy:     opt.OnlineHeuristic{},
		Reuse:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := workload.DefaultIEParams(data)
	edits := []struct {
		desc  string
		apply func()
	}{
		{"initial workflow (word + shape features)", func() {}},
		{"add affix and context features", func() {
			params.Features.Affixes = true
			params.Features.Context = true
		}},
		{"add gazetteer, train longer", func() {
			params.Features.Gazetteer = true
			params.Epochs = 8
		}},
	}

	var last *core.Report
	for i, e := range edits {
		e.apply()
		rep, err := session.Run(params.Build())
		if err != nil {
			log.Fatal(err)
		}
		met := rep.Outputs["checked"].(ml.Metrics)
		fmt.Printf("iteration %d: %-40s wall=%-10v span-F1=%.4f (p=%.4f r=%.4f)\n",
			i+1, e.desc, rep.Wall.Round(time.Microsecond), met.F1, met.Precision, met.Recall)
		last = rep
	}

	// Map the flat predicted spans back to sentences for display. Test
	// sentences are flattened across documents in generation order, so
	// re-tokenizing the corpus reproduces the indexing.
	spans := last.Outputs["spans"].(workload.PredSpans)
	var sents [][]string
	var docOf []int
	for d, doc := range data.Test {
		for _, sent := range text.SplitSentences(text.Tokenize(doc.Text)) {
			words := make([]string, len(sent.Tokens))
			for i, tk := range sent.Tokens {
				words[i] = tk.Text
			}
			sents = append(sents, words)
			docOf = append(docOf, d)
		}
	}

	fmt.Println("\nsample extractions from the final model:")
	shownDocs := map[int]bool{}
	for s, ss := range spans.Spans {
		if len(ss) == 0 || len(shownDocs) >= 3 || shownDocs[docOf[s]] {
			continue
		}
		shownDocs[docOf[s]] = true
		doc := data.Test[docOf[s]]
		fmt.Printf("  doc: %s\n", truncate(doc.Text, 96))
		fmt.Printf("    gold persons: %s\n", strings.Join(doc.Persons, "; "))
		var mentions []string
		for _, sp := range ss {
			mentions = append(mentions, strings.Join(sents[s][sp.Start:sp.End], " "))
		}
		fmt.Printf("    extracted:    %s\n", strings.Join(mentions, "; "))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
