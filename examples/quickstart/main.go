// Quickstart: declare a small end-to-end ML workflow in the HELIX DSL, run
// two iterations, and watch the optimizer reuse materialized intermediates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/opt"
)

// buildWorkflow declares the classic HELIX census pipeline (Figure 1a) over
// a tiny inline dataset. regParam is the iteration knob.
func buildWorkflow(regParam float64) *core.Workflow {
	train := `39,Bachelors,Exec-managerial,>50K
25,HS-grad,Handlers-cleaners,<=50K
48,Masters,Prof-specialty,>50K
33,HS-grad,Sales,<=50K
51,Bachelors,Exec-managerial,>50K
22,Some-college,Adm-clerical,<=50K
45,Doctorate,Prof-specialty,>50K
29,HS-grad,Craft-repair,<=50K
41,Masters,Exec-managerial,>50K
36,Assoc,Tech-support,<=50K
`
	test := `44,Bachelors,Exec-managerial,>50K
27,HS-grad,Sales,<=50K
50,Masters,Prof-specialty,>50K
31,Some-college,Adm-clerical,<=50K
`
	wf := core.NewWorkflow("quickstart")
	wf.Source("data", core.NewLiteralSource(train, test))
	wf.Apply("rows", core.NewCSVScanner("age", "education", "occupation", "target"), "data")
	wf.Apply("age", core.Field("age"), "rows")
	wf.Apply("edu", core.Field("education"), "rows")
	wf.Apply("occ", core.Field("occupation"), "rows")
	wf.Apply("income", core.NewFeaturize("target", ">50K"), "rows", "age", "edu", "occ")
	wf.Apply("model", core.NewLearner("logreg", regParam, 20), "income")
	wf.Apply("predictions", core.NewPredict(), "model", "income")
	wf.Apply("checked", core.NewEval("accuracy"), "predictions")
	wf.Output("checked")
	return wf
}

func main() {
	dir, err := os.MkdirTemp("", "helix-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A Session is one development session: it owns the materialization
	// store and the runtime statistics that power reuse.
	session, err := core.Open(core.Options{
		SystemName: "helix",
		StoreDir:   dir,
		Policy:     opt.OnlineHeuristic{},
		Reuse:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Iteration 1: everything computes.
	rep1, err := session.Run(buildWorkflow(0.1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- iteration 1 (initial) ---")
	fmt.Print(rep1.RenderPlan())
	fmt.Printf("metrics: %v\n\n", rep1.Outputs["checked"].(ml.Metrics))

	// Iteration 2: only the learner changed, so the optimizer loads the
	// vectorized dataset and retrains — data prep is never repeated.
	rep2, err := session.Run(buildWorkflow(0.01))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- iteration 2 (regParam 0.1 -> 0.01) ---")
	fmt.Print(rep2.RenderPlan())
	fmt.Printf("metrics: %v\n", rep2.Outputs["checked"].(ml.Metrics))
	fmt.Println("\nchanges detected:")
	for _, ch := range rep2.Changes {
		fmt.Printf("  %s: %s\n", ch.Kind, ch.Name)
	}
}
