package sig

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestOperatorSignatureStability(t *testing.T) {
	a := Operator("learner", map[string]string{"reg": "0.1", "type": "lr"}, "v1")
	b := Operator("learner", map[string]string{"type": "lr", "reg": "0.1"}, "v1")
	if a != b {
		t.Error("parameter order changed the signature")
	}
	if a == Operator("learner", map[string]string{"reg": "0.2", "type": "lr"}, "v1") {
		t.Error("parameter value change not detected")
	}
	if a == Operator("learner", map[string]string{"reg": "0.1", "type": "lr"}, "v2") {
		t.Error("UDF version change not detected")
	}
	if a == Operator("scanner", map[string]string{"reg": "0.1", "type": "lr"}, "v1") {
		t.Error("operator type change not detected")
	}
}

func TestOperatorSignatureNoCollisionOnSeparators(t *testing.T) {
	// Key/value confusion must not collide.
	a := Operator("op", map[string]string{"ab": "c"}, "")
	b := Operator("op", map[string]string{"a": "bc"}, "")
	if a == b {
		t.Error("separator collision")
	}
}

func TestResultFoldsParents(t *testing.T) {
	op := Operator("x", nil, "")
	p1 := Operator("p1", nil, "")
	p2 := Operator("p2", nil, "")
	if Result(op, []Signature{p1, p2}) == Result(op, []Signature{p2, p1}) {
		t.Error("parent order ignored (inputs are positional)")
	}
	if Result(op, nil) == Result(op, []Signature{p1}) {
		t.Error("parent presence ignored")
	}
}

// buildChain returns a 3-node chain graph and its operator signatures.
func buildChain(params map[string]string) (*dag.Graph, []Signature) {
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	c := g.MustAddNode("c", "learner")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	ops := []Signature{
		Operator("scan", nil, ""),
		Operator("extract", params, ""),
		Operator("learner", map[string]string{"reg": "0.1"}, ""),
	}
	return g, ops
}

func TestAnnotatePropagation(t *testing.T) {
	g1, ops1 := buildChain(map[string]string{"col": "age"})
	s1, err := Annotate(g1, ops1)
	if err != nil {
		t.Fatal(err)
	}
	// Change the middle operator: its result and the child's must change,
	// the parent's must not.
	g2, ops2 := buildChain(map[string]string{"col": "education"})
	s2, err := Annotate(g2, ops2)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] != s2[0] {
		t.Error("unchanged root signature changed")
	}
	if s1[1] == s2[1] {
		t.Error("modified node signature unchanged")
	}
	if s1[2] == s2[2] {
		t.Error("descendant of modified node not invalidated")
	}
	// Attrs were written.
	if g1.Node(0).Attrs[AttrKey] != string(s1[0]) {
		t.Error("AttrKey not written")
	}
}

func TestAnnotateValidation(t *testing.T) {
	g, ops := buildChain(nil)
	if _, err := Annotate(g, ops[:1]); err == nil {
		t.Error("mis-sized signatures accepted")
	}
	cyc := dag.New()
	a := cyc.MustAddNode("a", "x")
	b := cyc.MustAddNode("b", "x")
	cyc.MustAddEdge(a, b)
	cyc.MustAddEdge(b, a)
	if _, err := Annotate(cyc, []Signature{"s1", "s2"}); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestDiff(t *testing.T) {
	g1, ops1 := buildChain(map[string]string{"col": "age"})
	if _, err := Annotate(g1, ops1); err != nil {
		t.Fatal(err)
	}
	// New version: modify extract, add a node, and the old graph has no
	// removed nodes yet.
	g2, ops2 := buildChain(map[string]string{"col": "education"})
	d := g2.MustAddNode("new", "reducer")
	g2.MustAddEdge(g2.Lookup("c"), d)
	ops2 = append(ops2, Operator("reducer", nil, "v1"))
	if _, err := Annotate(g2, ops2); err != nil {
		t.Fatal(err)
	}
	changes := Diff(g1, g2)
	got := map[string]ChangeKind{}
	for _, c := range changes {
		got[c.Name] = c.Kind
	}
	if got["b"] != Modified || got["c"] != Modified {
		t.Errorf("expected b,c modified: %v", changes)
	}
	if got["new"] != Added {
		t.Errorf("expected new added: %v", changes)
	}
	if _, ok := got["a"]; ok {
		t.Errorf("a should be unchanged: %v", changes)
	}
	// Reverse direction: "new" is removed.
	rev := Diff(g2, g1)
	found := false
	for _, c := range rev {
		if c.Name == "new" && c.Kind == Removed {
			found = true
		}
	}
	if !found {
		t.Errorf("reverse diff missing removal: %v", rev)
	}
}

func TestDiffIdentical(t *testing.T) {
	g1, ops := buildChain(nil)
	if _, err := Annotate(g1, ops); err != nil {
		t.Fatal(err)
	}
	g2, ops2 := buildChain(nil)
	if _, err := Annotate(g2, ops2); err != nil {
		t.Fatal(err)
	}
	if changes := Diff(g1, g2); len(changes) != 0 {
		t.Errorf("identical graphs diff: %v", changes)
	}
}

func TestChangeKindString(t *testing.T) {
	for k, want := range map[ChangeKind]string{Added: "added", Removed: "removed", Modified: "modified", ChangeKind(9): "ChangeKind(9)"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

// Property: annotating twice with identical inputs yields identical
// signatures (pure function of the DAG + operator sigs).
func TestQuickAnnotateDeterministic(t *testing.T) {
	f := func(regA, regB string) bool {
		params := map[string]string{"a": regA, "b": regB}
		g1, ops1 := buildChain(params)
		g2, ops2 := buildChain(params)
		s1, err1 := Annotate(g1, ops1)
		s2, err2 := Annotate(g2, ops2)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
