// Package sig implements HELIX's iterative change tracker (§2.2). Every
// operator gets a signature derived from its name, parameters, and a UDF
// version tag; a node's *result signature* is a Merkle hash folding in its
// parents' result signatures. Two consequences fall out of this design:
//
//  1. Change detection is dependency analysis for free: if an operator
//     changes, its result signature changes, and so do the signatures of all
//     descendants — exactly the invalidation rule the paper states
//     ("invalidates all results affected by the changes").
//  2. Materialized intermediates are content-addressed by result signature,
//     so a result from three iterations ago is reusable today iff its whole
//     upstream sub-DAG is byte-identical in signature terms — no manual
//     bookkeeping.
//
// The paper detects source changes via version control; here the DSL
// supplies the operator parameters and UDF version tags directly (Rice's
// theorem makes semantic equivalence undecidable either way, so both systems
// use syntactic identity).
package sig

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Signature is a hex-encoded digest identifying a node's result content.
type Signature string

// Operator hashes an operator's identity: its type name, its parameter map
// (order-independent), and a UDF version tag for embedded user code. The DSL
// bumps the tag whenever a user edits a UDF, mirroring the paper's
// source-version-control detection.
func Operator(opType string, params map[string]string, udfVersion string) Signature {
	h := sha256.New()
	fmt.Fprintf(h, "op:%s\nudf:%s\n", opType, udfVersion)
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, params[k])
	}
	return Signature(hex.EncodeToString(h.Sum(nil)))
}

// Result folds the operator signature with the parents' result signatures
// (in edge order) into the node's result signature.
func Result(op Signature, parents []Signature) Signature {
	h := sha256.New()
	fmt.Fprintf(h, "self:%s\n", op)
	for _, p := range parents {
		fmt.Fprintf(h, "in:%s\n", p)
	}
	return Signature(hex.EncodeToString(h.Sum(nil)))
}

// AttrKey is the dag node attribute under which compilers store the result
// signature.
const AttrKey = "sig"

// Annotate computes result signatures for every node of g in topological
// order, given each node's operator signature, and stores them in
// Node.Attrs[AttrKey]. Returns the signatures indexed by node ID.
func Annotate(g *dag.Graph, opSigs []Signature) ([]Signature, error) {
	if len(opSigs) != g.Len() {
		return nil, fmt.Errorf("sig: %d operator signatures for %d nodes", len(opSigs), g.Len())
	}
	order, err := g.Topo()
	if err != nil {
		return nil, err
	}
	res := make([]Signature, g.Len())
	for _, v := range order {
		parents := g.Parents(v)
		ps := make([]Signature, len(parents))
		for i, p := range parents {
			ps[i] = res[p]
		}
		res[v] = Result(opSigs[v], ps)
		g.Node(v).Attrs[AttrKey] = string(res[v])
	}
	return res, nil
}

// Change describes one node-level difference between two annotated DAGs.
type Change struct {
	Name string
	Kind ChangeKind
}

// ChangeKind classifies a diff entry.
type ChangeKind int

const (
	// Added: node exists only in the new DAG.
	Added ChangeKind = iota
	// Removed: node exists only in the old DAG.
	Removed
	// Modified: same name, different result signature (operator edited or
	// upstream changed).
	Modified
)

func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Diff compares two annotated DAGs by node name, returning the change list
// sorted by name. Both graphs must have been through Annotate.
func Diff(old, new *dag.Graph) []Change {
	var out []Change
	for i := 0; i < new.Len(); i++ {
		n := new.Node(dag.NodeID(i))
		oldID := old.Lookup(n.Name)
		if oldID == dag.InvalidNode {
			out = append(out, Change{Name: n.Name, Kind: Added})
			continue
		}
		if old.Node(oldID).Attrs[AttrKey] != n.Attrs[AttrKey] {
			out = append(out, Change{Name: n.Name, Kind: Modified})
		}
	}
	for i := 0; i < old.Len(); i++ {
		n := old.Node(dag.NodeID(i))
		if new.Lookup(n.Name) == dag.InvalidNode {
			out = append(out, Change{Name: n.Name, Kind: Removed})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
