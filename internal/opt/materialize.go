package opt

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// MatDecision is a materialization policy's answer for one node.
type MatDecision struct {
	Materialize bool
	// Reward is the policy's estimate r_i = 2*l_i - (c_i + Σ_{a∈A(i)} c_a);
	// negative means materializing is predicted to pay off next iteration.
	// Only the online heuristic fills it in.
	Reward int64
}

// MatContext is everything a policy may consult when a node's result becomes
// available. The decision must be made immediately ("online constraint",
// §2.3): HELIX cannot buffer intermediates for deferred decisions.
type MatContext struct {
	Graph *dag.Graph
	Node  dag.NodeID
	// ComputeCost is the measured c_i of this node in the current run.
	ComputeCost int64
	// AncestorComputeCost is Σ_{a∈A(i)} c_a for the current run (cost to
	// rebuild everything beneath i from scratch).
	AncestorComputeCost int64
	// LoadCost is the predicted l_i (estimated from the serialized size and
	// store throughput).
	LoadCost int64
	// Size is the serialized size of the result in bytes.
	Size int64
	// BudgetRemaining is the storage budget left, in bytes.
	BudgetRemaining int64
}

// MatPolicy decides, at the moment a node's result becomes available,
// whether to persist it for future iterations.
type MatPolicy interface {
	// Name identifies the policy in benchmark output.
	Name() string
	// NeedsSize reports whether Decide consults ctx.Size; when false the
	// execution engine skips serializing results it will never persist
	// (KeystoneML-style systems pay no materialization overhead at all).
	NeedsSize() bool
	// NeedsAncestorCost reports whether Decide consults
	// ctx.AncestorComputeCost; when false the execution engine skips the
	// O(ancestors) cost walk over shared result state entirely (like
	// NeedsSize, but for the recomputation-chain term). Cost-insensitive
	// policies (materialize-all, materialize-none) pay nothing for a term
	// they never read.
	NeedsAncestorCost() bool
	// Decide is called once per computed node, in completion order.
	Decide(ctx MatContext) MatDecision
}

// OnlineHeuristic is the paper's materialization cost model (§2.3): at
// iteration t, materializing node i costs ≈ l_i now (writing is priced like
// one load) and saves the recomputation chain next iteration, for a net
// change r_i = 2*l_i − (c_i + Σ_{a∈A(i)} c_a). Materialize iff r_i < 0 and
// the serialized size fits the remaining budget.
type OnlineHeuristic struct{}

// Name implements MatPolicy.
func (OnlineHeuristic) Name() string { return "helix-online" }

// NeedsSize implements MatPolicy.
func (OnlineHeuristic) NeedsSize() bool { return true }

// NeedsAncestorCost implements MatPolicy: r_i depends on Σ_{a∈A(i)} c_a.
func (OnlineHeuristic) NeedsAncestorCost() bool { return true }

// Decide implements MatPolicy.
func (OnlineHeuristic) Decide(ctx MatContext) MatDecision {
	r := 2*ctx.LoadCost - (ctx.ComputeCost + ctx.AncestorComputeCost)
	return MatDecision{
		Materialize: r < 0 && ctx.Size <= ctx.BudgetRemaining,
		Reward:      r,
	}
}

// MaterializeAll persists every intermediate that fits, modeling DeepDive's
// approach ("materializes the results of all feature extraction and
// engineering steps").
type MaterializeAll struct{}

// Name implements MatPolicy.
func (MaterializeAll) Name() string { return "materialize-all" }

// NeedsSize implements MatPolicy.
func (MaterializeAll) NeedsSize() bool { return true }

// NeedsAncestorCost implements MatPolicy: the decision is budget-only.
func (MaterializeAll) NeedsAncestorCost() bool { return false }

// Decide implements MatPolicy.
func (MaterializeAll) Decide(ctx MatContext) MatDecision {
	return MatDecision{Materialize: ctx.Size <= ctx.BudgetRemaining}
}

// MaterializeNone never persists anything, modeling KeystoneML's one-shot
// execution ("for a never-materialize system ... the rerun time is
// constantly large").
type MaterializeNone struct{}

// Name implements MatPolicy.
func (MaterializeNone) Name() string { return "materialize-none" }

// NeedsSize implements MatPolicy.
func (MaterializeNone) NeedsSize() bool { return false }

// NeedsAncestorCost implements MatPolicy: there is no decision to inform.
func (MaterializeNone) NeedsAncestorCost() bool { return false }

// Decide implements MatPolicy.
func (MaterializeNone) Decide(MatContext) MatDecision { return MatDecision{} }

// MatItem is one candidate for the offline knapsack solver.
type MatItem struct {
	Node dag.NodeID
	// Benefit is the predicted next-iteration saving from having this node
	// loadable: (c_i + Σ ancestors c) − l_i, clamped at ≥ 0.
	Benefit int64
	// Cost is the one-time write cost (we price it l_i, like the online
	// model does).
	Cost int64
	// Size in bytes, consumed from the budget.
	Size int64
}

// KnapsackOffline solves the materialization problem optimally *under the
// same simplifying assumptions as the online model* (one more iteration,
// everything reusable, per-node independence) but with full knowledge of all
// candidates — a 0/1 knapsack by size. It is exponential-free (DP in
// O(n·W/gran)) and exists to quantify how close the online heuristic gets in
// the ablation benchmarks. Budget granularity: sizes are bucketed into
// `gran`-byte units to bound the DP table.
func KnapsackOffline(items []MatItem, budget int64, gran int64) ([]bool, int64, error) {
	if gran <= 0 {
		return nil, 0, fmt.Errorf("opt: knapsack granularity must be positive, got %d", gran)
	}
	if budget < 0 {
		return nil, 0, fmt.Errorf("opt: negative budget %d", budget)
	}
	w := int(budget / gran)
	n := len(items)
	// value[j][cap] with rolling array + choice tracking.
	val := make([]int64, w+1)
	take := make([][]bool, n)
	sizes := make([]int, n)
	for i, it := range items {
		sizes[i] = int((it.Size + gran - 1) / gran)
		take[i] = make([]bool, w+1)
		net := it.Benefit - it.Cost
		if net <= 0 || sizes[i] > w {
			continue // never worth taking
		}
		for cap := w; cap >= sizes[i]; cap-- {
			if cand := val[cap-sizes[i]] + net; cand > val[cap] {
				val[cap] = cand
				take[i][cap] = true
			}
		}
	}
	chosen := make([]bool, n)
	cap := w
	for i := n - 1; i >= 0; i-- {
		if take[i][cap] {
			chosen[i] = true
			cap -= sizes[i]
		}
	}
	return chosen, val[w], nil
}

// AncestorClosures precomputes, for every node, its strict ancestors as a
// slice in ascending ID order. The execution engine snapshots it once per
// run so each online materialization decision walks a flat slice instead of
// re-traversing the graph (and re-locking shared state) per ancestor.
// O(V·(V+E)) worst case, fine at workflow scale (tens of nodes).
func AncestorClosures(g *dag.Graph) [][]dag.NodeID {
	out := make([][]dag.NodeID, g.Len())
	for i := 0; i < g.Len(); i++ {
		anc := g.Ancestors(dag.NodeID(i))
		if len(anc) == 0 {
			continue
		}
		closure := make([]dag.NodeID, 0, len(anc))
		for a := range anc {
			closure = append(closure, a)
		}
		sort.Slice(closure, func(x, y int) bool { return closure[x] < closure[y] })
		out[i] = closure
	}
	return out
}

// AncestorComputeCosts precomputes Σ_{a∈A(i)} c_a for every node — the
// recomputation-chain term of the online heuristic.
func AncestorComputeCosts(g *dag.Graph, compute []int64) ([]int64, error) {
	if len(compute) != g.Len() {
		return nil, fmt.Errorf("opt: %d costs for %d nodes", len(compute), g.Len())
	}
	out := make([]int64, g.Len())
	for i, closure := range AncestorClosures(g) {
		for _, a := range closure {
			out[i] += compute[a]
		}
	}
	return out, nil
}
