package opt

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dag"
)

func probCtx(g *dag.Graph, node dag.NodeID, load, compute, ancestors int64) MatContext {
	return MatContext{
		Graph:               g,
		Node:                node,
		LoadCost:            load,
		ComputeCost:         compute,
		AncestorComputeCost: ancestors,
		Size:                100,
		BudgetRemaining:     1 << 30,
	}
}

func catGraph(t *testing.T) (*dag.Graph, dag.NodeID, dag.NodeID) {
	t.Helper()
	g := dag.New()
	prep := g.MustAddNode("prep", "scan")
	g.Node(prep).Attrs["category"] = "prep"
	mlNode := g.MustAddNode("model", "learner")
	g.Node(mlNode).Attrs["category"] = "ml"
	g.MustAddEdge(prep, mlNode)
	return g, prep, mlNode
}

func TestProbabilisticDefaultsToBaseModel(t *testing.T) {
	// With no observations the prior gives p=1, so decisions match the
	// paper's OnlineHeuristic exactly.
	g, prep, _ := catGraph(t)
	p := NewProbabilisticHeuristic()
	base := OnlineHeuristic{}
	for _, tc := range []struct{ load, compute, anc int64 }{
		{10, 50, 100}, {100, 5, 10}, {50, 50, 50},
	} {
		ctx := probCtx(g, prep, tc.load, tc.compute, tc.anc)
		if p.Decide(ctx).Materialize != base.Decide(ctx).Materialize {
			t.Errorf("prior-only decision diverges from base at %+v", tc)
		}
	}
}

func TestProbabilisticLearnsLowSurvival(t *testing.T) {
	// A category that is edited every iteration: survival estimate drops,
	// and a marginal materialization flips to "skip".
	g, _, mlNode := catGraph(t)
	p := NewProbabilisticHeuristic()
	// Marginal case: 2*l = 80, chain = 100 → base model materializes.
	ctx := probCtx(g, mlNode, 40, 50, 50)
	if !p.Decide(ctx).Materialize {
		t.Fatal("marginal case should materialize under the prior")
	}
	for i := 0; i < 30; i++ {
		p.Observe("ml", false)
	}
	if p.Decide(ctx).Materialize {
		t.Error("low-survival category still materialized")
	}
	// Clearly profitable cases still materialize (p never hits zero with a
	// positive prior).
	big := probCtx(g, mlNode, 1, 1000, 10000)
	if !p.Decide(big).Materialize {
		t.Error("hugely profitable materialization skipped")
	}
}

func TestProbabilisticPerCategoryIsolation(t *testing.T) {
	g, prep, mlNode := catGraph(t)
	p := NewProbabilisticHeuristic()
	for i := 0; i < 30; i++ {
		p.Observe("ml", false)
		p.Observe("prep", true)
	}
	ctx := probCtx(g, prep, 40, 50, 50)
	if !p.Decide(ctx).Materialize {
		t.Error("high-survival category penalized by another category's edits")
	}
	ctxML := probCtx(g, mlNode, 40, 50, 50)
	if p.Decide(ctxML).Materialize {
		t.Error("low-survival category not penalized")
	}
}

func TestReuseProbabilityEstimate(t *testing.T) {
	p := NewProbabilisticHeuristic()
	if got := p.ReuseProbability("prep"); got != 1 {
		t.Errorf("prior probability = %v, want 1", got)
	}
	p.Observe("prep", true)
	p.Observe("prep", false)
	p.Observe("prep", false)
	// (1 valid + 3 prior) / (3 total + 3 prior) = 4/6.
	if got := p.ReuseProbability("prep"); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("probability = %v, want %v", got, 4.0/6.0)
	}
}

func TestProbabilisticBudgetStillEnforced(t *testing.T) {
	g, prep, _ := catGraph(t)
	p := NewProbabilisticHeuristic()
	ctx := probCtx(g, prep, 1, 1000, 10000)
	ctx.Size = 200
	ctx.BudgetRemaining = 100
	if p.Decide(ctx).Materialize {
		t.Error("budget ignored")
	}
}

func TestProbabilisticConcurrentObserve(t *testing.T) {
	p := NewProbabilisticHeuristic()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Observe("prep", i%2 == 0)
				p.ReuseProbability("prep")
			}
		}(i)
	}
	wg.Wait()
	if got := p.ReuseProbability("prep"); got <= 0 || got > 1 {
		t.Errorf("probability out of range after concurrent use: %v", got)
	}
}

func TestProbabilisticNameAndNeedsSize(t *testing.T) {
	p := NewProbabilisticHeuristic()
	if p.Name() != "helix-probabilistic" || !p.NeedsSize() {
		t.Error("policy metadata wrong")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestProbabilisticNilGraph(t *testing.T) {
	// Contexts without a graph (unit harnesses) fall back to the empty
	// category rather than panicking.
	p := NewProbabilisticHeuristic()
	ctx := MatContext{LoadCost: 10, ComputeCost: 100, AncestorComputeCost: 100, Size: 1, BudgetRemaining: 10}
	if !p.Decide(ctx).Materialize {
		t.Error("nil-graph context mishandled")
	}
}
