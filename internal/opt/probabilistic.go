package opt

import (
	"fmt"
	"sync"
)

// ProbabilisticHeuristic extends the paper's online cost model with the
// future-work direction §2.3 sketches: "Our ongoing work investigates
// predicting reuse probability based on user studies and workflow features."
//
// The base model assumes every materialized result is reusable next
// iteration. In reality a node is reusable only if no upstream edit
// invalidates it, and edit locations are predictable: developers overturn ML
// hyperparameters far more often than raw-data scans, so results high in the
// DAG survive more iterations than results near the edit frontier. This
// policy tracks, per operator category, the empirical fraction of iterations
// in which the node's result stayed valid, and scales the recomputation-
// saving term accordingly:
//
//	r_i = 2*l_i − p_reuse(cat) * (c_i + Σ_{a∈A(i)} c_a)
//
// With p_reuse ≡ 1 it degenerates to the paper's OnlineHeuristic.
type ProbabilisticHeuristic struct {
	mu sync.Mutex
	// valid[cat] / total[cat] estimate the category's survival rate.
	valid map[string]int
	total map[string]int
	// Prior smooths early estimates toward full reuse (the base model's
	// assumption), in pseudo-observations.
	Prior int
	// CategoryAttr selects the node attribute holding the category; defaults
	// to "category".
	CategoryAttr string
}

// NewProbabilisticHeuristic returns a policy with a prior of 3
// pseudo-observations of survival per category.
func NewProbabilisticHeuristic() *ProbabilisticHeuristic {
	return &ProbabilisticHeuristic{
		valid: make(map[string]int),
		total: make(map[string]int),
		Prior: 3,
	}
}

// Name implements MatPolicy.
func (p *ProbabilisticHeuristic) Name() string { return "helix-probabilistic" }

// NeedsSize implements MatPolicy.
func (p *ProbabilisticHeuristic) NeedsSize() bool { return true }

// NeedsAncestorCost implements MatPolicy: the discounted recomputation-
// saving term still sums ancestor compute costs.
func (p *ProbabilisticHeuristic) NeedsAncestorCost() bool { return true }

// Observe records one iteration's outcome for a category: whether results of
// that category survived (their signatures were unchanged). The session
// driver calls this after change detection.
func (p *ProbabilisticHeuristic) Observe(category string, survived bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total[category]++
	if survived {
		p.valid[category]++
	}
}

// ReuseProbability returns the smoothed survival estimate for a category.
func (p *ProbabilisticHeuristic) ReuseProbability(category string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return float64(p.valid[category]+p.Prior) / float64(p.total[category]+p.Prior)
}

// Decide implements MatPolicy.
func (p *ProbabilisticHeuristic) Decide(ctx MatContext) MatDecision {
	cat := ""
	if ctx.Graph != nil {
		attr := p.CategoryAttr
		if attr == "" {
			attr = "category"
		}
		cat = ctx.Graph.Node(ctx.Node).Attrs[attr]
	}
	prob := p.ReuseProbability(cat)
	saving := float64(ctx.ComputeCost + ctx.AncestorComputeCost)
	r := int64(float64(2*ctx.LoadCost) - prob*saving)
	return MatDecision{
		Materialize: r < 0 && ctx.Size <= ctx.BudgetRemaining,
		Reward:      r,
	}
}

// String aids debugging of learned survival rates.
func (p *ProbabilisticHeuristic) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("probabilistic{valid=%v total=%v prior=%d}", p.valid, p.total, p.Prior)
}
