package opt

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/maxflow"
)

// EvictCandidate describes one stored value the cold tier could delete to
// make room — the planner's view of a store.Entry, joined with the DAG node
// that produced it when the producer is known.
type EvictCandidate struct {
	// Key is the store key to return if this candidate is evicted.
	Key string
	// Node is the DAG node whose result this entry holds, or
	// dag.InvalidNode when the entry has no known producer in the graph
	// (an adopted file, a value from another workflow).
	Node dag.NodeID
	// Size is the entry's payload size in bytes (what evicting frees).
	Size int64
	// Load is the estimated nanoseconds to load the stored value.
	Load int64
	// Saving is the standalone recompute saving in nanoseconds, consulted
	// only when Node is dag.InvalidNode (for in-graph candidates the
	// planner derives the recompute cost from the DAG itself).
	Saving int64
}

// evictProfitCap bounds λ·Size products so project profits stay far below
// maxflow.Inf (1<<50) — 1<<45 ns is ~9.7 hours of saving, beyond any real
// estimate, and clamping keeps the Lagrangian monotone.
const evictProfitCap int64 = 1 << 45

// mulClamp multiplies two non-negative int64s, saturating at
// evictProfitCap instead of overflowing.
func mulClamp(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > evictProfitCap/b {
		return evictProfitCap
	}
	return a * b
}

// PlanEvictSet picks a set of candidates to evict that frees at least need
// bytes while minimizing the estimated future cost of the eviction — the
// global version of the store's greedy smallest-saving-per-byte policy,
// solved with the same PROJECT SELECTION (max-weight closure / min-cut)
// machinery the recomputation optimizer uses.
//
// The future cost of an evict set has closure structure a per-entry
// greedy policy cannot see: evicting a value forces its producing node to
// be recomputed next iteration, which transitively forces every ancestor
// up to (and including a load of) the nearest still-stored one — and two
// evicted siblings share their common ancestors' recompute cost, paying it
// once, not twice. PlanEvictSet encodes exactly that: per trial price λ
// (nanoseconds per freed byte), project "evict k" earns λ·Size_k plus the
// avoided load, and requires project "recompute node(k)", which costs that
// node's compute and transitively requires its ancestors — recompute
// projects for unstored parents, shared load projects for stored ones.
// A Lagrangian search over λ (each step one min-cut) finds the cheapest
// selection that frees the requested bytes.
//
// Approximations, documented for honesty: a recompute chain is truncated
// at currently-stored ancestors even when those ancestors are themselves
// in the evict set (the closure would need a non-monotone constraint the
// min-cut cannot express), and the avoided-load credit assumes the value
// would otherwise have been loaded exactly once. Both errors are bounded
// by per-entry load costs, which are orders of magnitude below the
// recompute chains the planner exists to protect.
//
// compute holds per-node recompute cost estimates in nanoseconds, indexed
// by node ID (len must equal g.Len()). If even evicting every candidate
// cannot free need bytes, every candidate key is returned (best effort —
// the caller's budget check still rejects the admission). need <= 0 or an
// empty candidate set returns nil.
func PlanEvictSet(g *dag.Graph, compute []int64, cands []EvictCandidate, need int64) ([]string, error) {
	if need <= 0 || len(cands) == 0 {
		return nil, nil
	}
	n := g.Len()
	if len(compute) != n {
		return nil, fmt.Errorf("opt: PlanEvictSet: %d compute costs for %d nodes", len(compute), n)
	}
	var totalSize, totalCost int64
	stored := make(map[dag.NodeID]bool, len(cands))
	loadOf := make(map[dag.NodeID]int64, len(cands))
	for _, c := range cands {
		if c.Node != dag.InvalidNode {
			if int(c.Node) < 0 || int(c.Node) >= n {
				return nil, fmt.Errorf("opt: PlanEvictSet: candidate %q has node %d outside graph of %d", c.Key, c.Node, n)
			}
			stored[c.Node] = true
			loadOf[c.Node] = c.Load
		}
		totalSize += c.Size
		totalCost += c.Load + c.Saving
	}
	if totalSize < need {
		keys := make([]string, len(cands))
		for i, c := range cands {
			keys[i] = c.Key
		}
		return keys, nil
	}
	for _, c := range compute {
		totalCost += c
	}

	// Project layout: [0,n) recompute node i, [n,2n) load node i's stored
	// value (shared by every evicted consumer), [2n,2n+len(cands)) evict
	// candidate k.
	solve := func(lambda int64) ([]string, int64, error) {
		ps := maxflow.NewProjectSelection(2*n + len(cands))
		for i := 0; i < n; i++ {
			if compute[i] > 0 {
				ps.SetProfit(i, -compute[i])
			}
			for _, p := range g.Parents(dag.NodeID(i)) {
				if stored[p] {
					ps.Require(i, n+int(p))
				} else {
					ps.Require(i, int(p))
				}
			}
		}
		for id, l := range loadOf {
			if l > 0 {
				ps.SetProfit(n+int(id), -l)
			}
		}
		for k, c := range cands {
			pk := 2*n + k
			if c.Node != dag.InvalidNode {
				ps.SetProfit(pk, mulClamp(lambda, c.Size)+c.Load)
				ps.Require(pk, int(c.Node))
			} else {
				ps.SetProfit(pk, mulClamp(lambda, c.Size)-c.Saving)
			}
		}
		selected, _, err := ps.Solve()
		if err != nil {
			return nil, 0, err
		}
		var keys []string
		var freed int64
		for k, c := range cands {
			if selected[2*n+k] {
				keys = append(keys, c.Key)
				freed += c.Size
			}
		}
		sort.Strings(keys) // deterministic output order
		return keys, freed, nil
	}

	// Lagrangian search: freed(λ) is non-decreasing in λ, so binary-search
	// the smallest per-byte price whose optimal selection frees enough. At
	// λ > totalCost every candidate with Size ≥ 1 is profitable even if it
	// forced every cost in the instance, so freed(λmax) ≥ need is
	// guaranteed by the totalSize check above (zero-byte candidates free
	// nothing by definition).
	lo, hi := int64(0), totalCost+1
	bestKeys, freed, err := solve(hi)
	if err != nil {
		return nil, err
	}
	if freed < need {
		// Only zero-byte candidates short of need remain unselected;
		// evicting them frees nothing, so return the max-λ selection.
		return bestKeys, nil
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		keys, freed, err := solve(mid)
		if err != nil {
			return nil, err
		}
		if freed >= need {
			bestKeys, hi = keys, mid
		} else {
			lo = mid + 1
		}
	}
	return bestKeys, nil
}
