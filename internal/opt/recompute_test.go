package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

// chainGraph builds a -> b -> c with c as output.
func chainGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	c := g.MustAddNode("c", "learner")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.Node(c).Output = true
	return g
}

func TestOptimalNoMaterialization(t *testing.T) {
	// Nothing loadable: must compute the whole chain.
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{10, 20, 30}
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 60 {
		t.Errorf("cost = %d, want 60", plan.Cost)
	}
	for i, s := range plan.States {
		if s != Compute {
			t.Errorf("state[%d] = %v, want compute", i, s)
		}
	}
}

func TestOptimalLoadsCheapIntermediate(t *testing.T) {
	// b materialized with tiny load cost: load b, prune a, compute c.
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{100, 100, 10}
	cm.Loadable[1] = true
	cm.Load[1] = 5
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{Prune, Load, Compute}
	for i, s := range plan.States {
		if s != want[i] {
			t.Errorf("state[%d] = %v, want %v", i, s, want[i])
		}
	}
	if plan.Cost != 15 {
		t.Errorf("cost = %d, want 15", plan.Cost)
	}
}

func TestOptimalPrefersComputeOverExpensiveLoad(t *testing.T) {
	// The paper's l_k >> c_k example: b's load is pricier than recomputing
	// it from a, which itself is cheap to load.
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{100, 2, 10}
	cm.Loadable[0] = true
	cm.Load[0] = 3
	cm.Loadable[1] = true
	cm.Load[1] = 50
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{Load, Compute, Compute} // 3 + 2 + 10 = 15 < 50+10
	for i, s := range plan.States {
		if s != want[i] {
			t.Errorf("state[%d] = %v, want %v", i, s, want[i])
		}
	}
	if plan.Cost != 15 {
		t.Errorf("cost = %d, want 15", plan.Cost)
	}
}

func TestOptimalLoadsOutputDirectly(t *testing.T) {
	// Output itself materialized cheaply: everything else prunes.
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{100, 100, 100}
	cm.Loadable[2] = true
	cm.Load[2] = 1
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{Prune, Prune, Load}
	for i, s := range plan.States {
		if s != want[i] {
			t.Errorf("state[%d] = %v, want %v", i, s, want[i])
		}
	}
	if plan.Cost != 1 {
		t.Errorf("cost = %d, want 1", plan.Cost)
	}
}

func TestOptimalDiamondSharedAncestor(t *testing.T) {
	// a -> {b, c} -> d(out). Loading b lets a prune only if c also avoids a.
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "x")
	c := g.MustAddNode("c", "y")
	d := g.MustAddNode("d", "out")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	g.Node(d).Output = true
	cm := NewCostModel(4)
	cm.Compute = []int64{50, 10, 10, 5}
	cm.Loadable[int(b)] = true
	cm.Load[int(b)] = 1
	// Only b loadable: a must still compute for c. Expected: compute a, load
	// b (1 < 10), compute c, compute d = 50+1+10+5 = 66.
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 66 {
		t.Errorf("cost = %d, want 66 (states %v)", plan.Cost, plan.States)
	}
	if plan.States[b] != Load {
		t.Errorf("b = %v, want load", plan.States[b])
	}
	if plan.States[a] != Compute {
		t.Errorf("a = %v, want compute (needed by c)", plan.States[a])
	}
}

func TestOptimalPrunesDeadBranch(t *testing.T) {
	g := chainGraph(t)
	dead := g.MustAddNode("dead", "extract")
	g.MustAddEdge(g.Lookup("a"), dead)
	cm := NewCostModel(4)
	cm.Compute = []int64{1, 1, 1, 1000}
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.States[dead] != Prune {
		t.Errorf("dead branch state = %v, want prune", plan.States[dead])
	}
	if plan.Cost != 3 {
		t.Errorf("cost = %d, want 3", plan.Cost)
	}
}

func TestOptimalMultipleOutputs(t *testing.T) {
	// a -> b(out), a -> c(out); b loadable. a must still compute for c.
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "out1")
	c := g.MustAddNode("c", "out2")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.Node(b).Output = true
	g.Node(c).Output = true
	cm := NewCostModel(3)
	cm.Compute = []int64{10, 5, 5}
	cm.Loadable[int(b)] = true
	cm.Load[int(b)] = 1
	plan, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	// load b (1), compute a (10), compute c (5) = 16.
	if plan.Cost != 16 {
		t.Errorf("cost = %d, want 16 (states %v)", plan.Cost, plan.States)
	}
}

func TestOptimalRejectsCycle(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "x")
	b := g.MustAddNode("b", "x")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := Optimal(g, NewCostModel(2)); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestOptimalRejectsBadModel(t *testing.T) {
	g := chainGraph(t)
	if _, err := Optimal(g, NewCostModel(2)); err == nil {
		t.Error("mis-sized model accepted")
	}
	cm := NewCostModel(3)
	cm.Compute[0] = -1
	if _, err := Optimal(g, cm); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestPlanCostInfeasible(t *testing.T) {
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{1, 1, 1}
	// Output pruned.
	if _, err := PlanCost(g, cm, []State{Compute, Compute, Prune}); err == nil {
		t.Error("pruned output accepted")
	}
	// Computed child of pruned parent.
	if _, err := PlanCost(g, cm, []State{Prune, Compute, Compute}); err == nil {
		t.Error("compute with pruned parent accepted")
	}
	// Load without materialization.
	if _, err := PlanCost(g, cm, []State{Compute, Load, Compute}); err == nil {
		t.Error("load of unmaterialized node accepted")
	}
}

func TestGreedyLoadAllSuboptimal(t *testing.T) {
	// Expensive load on b vs cheap recompute from loadable a: greedy loads
	// b anyway; optimal does not.
	g := chainGraph(t)
	cm := NewCostModel(3)
	cm.Compute = []int64{100, 2, 10}
	cm.Loadable[0] = true
	cm.Load[0] = 3
	cm.Loadable[1] = true
	cm.Load[1] = 50
	greedy, err := GreedyLoadAll(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := Optimal(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost != 60 { // load b (50) + compute c (10)
		t.Errorf("greedy cost = %d, want 60", greedy.Cost)
	}
	if optimal.Cost >= greedy.Cost {
		t.Errorf("optimal (%d) not better than greedy (%d)", optimal.Cost, greedy.Cost)
	}
}

func TestComputeAllMatchesSlice(t *testing.T) {
	g := chainGraph(t)
	dead := g.MustAddNode("dead", "x")
	g.MustAddEdge(g.Lookup("a"), dead)
	cm := NewCostModel(4)
	cm.Compute = []int64{1, 2, 3, 999}
	plan, err := ComputeAll(g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 6 {
		t.Errorf("cost = %d, want 6", plan.Cost)
	}
	if plan.States[dead] != Prune {
		t.Errorf("dead = %v, want prune", plan.States[dead])
	}
}

// randomInstance builds a random DAG + cost model for oracle testing.
func randomInstance(r *rand.Rand) (*dag.Graph, *CostModel) {
	n := 2 + r.Intn(8) // brute force handles up to ~10 quickly
	g := dag.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(string(rune('a'+i)), "op")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.35 {
				g.MustAddEdge(dag.NodeID(u), dag.NodeID(v))
			}
		}
	}
	// Random outputs; guarantee at least one.
	for i := 0; i < n; i++ {
		if r.Float64() < 0.25 {
			g.Node(dag.NodeID(i)).Output = true
		}
	}
	g.Node(dag.NodeID(n - 1)).Output = true
	cm := NewCostModel(n)
	for i := 0; i < n; i++ {
		cm.Compute[i] = int64(r.Intn(100))
		if r.Float64() < 0.5 {
			cm.Loadable[i] = true
			cm.Load[i] = int64(r.Intn(100))
		}
	}
	return g, cm
}

// Property: the PSP reduction matches exhaustive enumeration on random
// instances — the core correctness claim of §2.2.
func TestQuickOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, cm := randomInstance(r)
		optPlan, err := Optimal(g, cm)
		if err != nil {
			t.Logf("seed %d: optimal failed: %v", seed, err)
			return false
		}
		brute, err := BruteForce(g, cm)
		if err != nil {
			t.Logf("seed %d: brute failed: %v", seed, err)
			return false
		}
		if optPlan.Cost != brute.Cost {
			t.Logf("seed %d: optimal=%d brute=%d states=%v", seed, optPlan.Cost, brute.Cost, optPlan.States)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Optimal never exceeds either baseline.
func TestQuickOptimalDominatesBaselines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, cm := randomInstance(r)
		optPlan, err := Optimal(g, cm)
		if err != nil {
			return false
		}
		if ga, err := GreedyLoadAll(g, cm); err == nil && optPlan.Cost > ga.Cost {
			return false
		}
		if ca, err := ComputeAll(g, cm); err == nil && optPlan.Cost > ca.Cost {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Prune: "prune", Compute: "compute", Load: "load", State(9): "State(9)"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
