// Package opt implements HELIX's two optimization problems (§2.2–2.3 of the
// paper):
//
//   - The RECOMPUTATION problem: given a workflow DAG where each node has a
//     compute cost c_i and a load cost l_i (finite only if a previous
//     iteration materialized a result that is still valid), assign each node
//     a state in {load, compute, prune} minimizing total cost, subject to
//     the prune constraint (a computed node's parents must be available) and
//     to output nodes being available. The paper proves this PTIME via a
//     reduction to the PROJECT SELECTION PROBLEM; Optimal implements that
//     reduction exactly.
//
//   - The MATERIALIZATION problem: choose which freshly computed
//     intermediates to persist under a storage budget to minimize future
//     iteration latency. NP-hard (knapsack), so HELIX uses an online cost
//     heuristic; this package provides that heuristic plus the
//     materialize-all (DeepDive), materialize-none (KeystoneML) and offline
//     knapsack policies used as comparators.
package opt

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/maxflow"
)

// State is the per-node decision of the recomputation optimizer.
type State int8

const (
	// Prune means the node is not needed this iteration and is skipped.
	Prune State = iota
	// Compute means the node runs its operator on its parents' results.
	Compute
	// Load means the node's result is read back from the materialization
	// store instead of being recomputed.
	Load
)

func (s State) String() string {
	switch s {
	case Prune:
		return "prune"
	case Compute:
		return "compute"
	case Load:
		return "load"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// NoLoad is the load cost for nodes without a reusable materialized result.
// Any plan that loads such a node is worse than computing the whole DAG, so
// the optimizer never chooses it. Kept far below maxflow.Inf so capacities
// (sums of a few costs) cannot overflow.
const NoLoad int64 = 1 << 40

// CostModel carries the optimizer inputs for one DAG. Costs are abstract
// non-negative integers; the execution engine uses nanoseconds.
type CostModel struct {
	// Compute[i] is c_i: the cost to run node i given available parents.
	Compute []int64
	// Loadable[i] reports whether a valid materialized result exists.
	Loadable []bool
	// Load[i] is l_i, meaningful only when Loadable[i].
	Load []int64
}

// NewCostModel allocates a model for n nodes with all loads disabled.
func NewCostModel(n int) *CostModel {
	return &CostModel{
		Compute:  make([]int64, n),
		Loadable: make([]bool, n),
		Load:     make([]int64, n),
	}
}

// loadCost returns l_i, substituting NoLoad when no materialization exists.
func (cm *CostModel) loadCost(i int) int64 {
	if cm.Loadable[i] {
		return cm.Load[i]
	}
	return NoLoad
}

// Plan is a state assignment for every node plus its total cost under the
// cost model (Eq. 1 in the paper).
type Plan struct {
	States []State
	Cost   int64
}

// PlanCost evaluates Eq. (1) for an arbitrary assignment, returning an error
// if the assignment is infeasible (an output pruned, a computed node with a
// pruned parent, or a load of a non-materialized node).
func PlanCost(g *dag.Graph, cm *CostModel, states []State) (int64, error) {
	if len(states) != g.Len() {
		return 0, fmt.Errorf("opt: %d states for %d nodes", len(states), g.Len())
	}
	var total int64
	for i, s := range states {
		id := dag.NodeID(i)
		switch s {
		case Compute:
			for _, p := range g.Parents(id) {
				if states[p] == Prune {
					return 0, fmt.Errorf("opt: node %s computed but parent %s pruned",
						g.Node(id).Name, g.Node(p).Name)
				}
			}
			total += cm.Compute[i]
		case Load:
			if !cm.Loadable[i] {
				return 0, fmt.Errorf("opt: node %s loaded but not materialized", g.Node(id).Name)
			}
			total += cm.Load[i]
		case Prune:
			if g.Node(id).Output {
				return 0, fmt.Errorf("opt: output node %s pruned", g.Node(id).Name)
			}
		}
	}
	return total, nil
}

// Optimal solves the recomputation problem exactly in polynomial time via
// the PROJECT SELECTION reduction.
//
// Reduction. For each node i introduce two binary "projects":
//
//	w_i — node i is available (loaded or computed),
//	x_i — node i is computed.
//
// Cost of an assignment is Σ c_i·x_i + l_i·(w_i − x_i), with monotone
// implications x_i ⇒ w_i, x_i ⇒ w_p for every parent p (the prune
// constraint), and w_o forced for outputs. Rewriting the objective as
// Σ (l_i − c_i)·x_i + Σ l_i·w_i (to be minimized) yields a maximum-weight
// closure instance with profit(x_i) = l_i − c_i and profit(w_i) = −l_i,
// which ProjectSelection solves by min-cut. Nodes with w unselected are
// pruned; with x selected, computed; otherwise loaded.
func Optimal(g *dag.Graph, cm *CostModel) (*Plan, error) {
	n := g.Len()
	if len(cm.Compute) != n || len(cm.Loadable) != n || len(cm.Load) != n {
		return nil, fmt.Errorf("opt: cost model sized %d for %d nodes", len(cm.Compute), n)
	}
	if _, err := g.Topo(); err != nil {
		return nil, err
	}
	// Project indices: x_i = i, w_i = n + i.
	ps := maxflow.NewProjectSelection(2 * n)
	for i := 0; i < n; i++ {
		l := cm.loadCost(i)
		c := cm.Compute[i]
		if c < 0 || l < 0 {
			return nil, fmt.Errorf("opt: negative cost on node %s", g.Node(dag.NodeID(i)).Name)
		}
		ps.SetProfit(i, l-c)
		ps.SetProfit(n+i, -l)
		ps.Require(i, n+i) // computing i requires i available
		for _, p := range g.Parents(dag.NodeID(i)) {
			ps.Require(i, n+int(p)) // computing i requires parent available
		}
		if g.Node(dag.NodeID(i)).Output {
			ps.Force(n + i)
		}
	}
	sel, _, err := ps.Solve()
	if err != nil {
		return nil, err
	}
	states := make([]State, n)
	for i := 0; i < n; i++ {
		switch {
		case !sel[n+i]:
			states[i] = Prune
		case sel[i]:
			states[i] = Compute
		default:
			states[i] = Load
		}
	}
	// The min-cut may mark w_i selected with x_i selected for a node whose
	// optimal handling is degenerate (e.g. zero costs); PlanCost validates
	// feasibility and prices the plan.
	cost, err := PlanCost(g, cm, states)
	if err != nil {
		return nil, fmt.Errorf("opt: internal: optimal plan infeasible: %w", err)
	}
	return &Plan{States: states, Cost: cost}, nil
}

// BruteForce solves the recomputation problem by enumerating all 3^n state
// assignments. Exponential — usable only for n ≲ 14; it exists as the
// testing oracle that certifies Optimal's reduction.
func BruteForce(g *dag.Graph, cm *CostModel) (*Plan, error) {
	n := g.Len()
	if n > 14 {
		return nil, fmt.Errorf("opt: brute force limited to 14 nodes, got %d", n)
	}
	states := make([]State, n)
	best := make([]State, n)
	bestCost := int64(math.MaxInt64)
	found := false
	var rec func(int)
	rec = func(i int) {
		if i == n {
			cost, err := PlanCost(g, cm, states)
			if err == nil && cost < bestCost {
				bestCost = cost
				copy(best, states)
				found = true
			}
			return
		}
		for _, s := range []State{Prune, Compute, Load} {
			if s == Load && !cm.Loadable[i] {
				continue
			}
			states[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	if !found {
		return nil, fmt.Errorf("opt: no feasible plan")
	}
	return &Plan{States: best, Cost: bestCost}, nil
}

// GreedyLoadAll is the naive reuse baseline: load every loadable node whose
// result is valid, compute everything else needed for the outputs, prune the
// rest. It ignores the possibility that recomputing from an available parent
// may beat loading (the l_k >> c_k case the paper highlights), so it can be
// arbitrarily worse than Optimal; it exists for the ablation benchmarks.
func GreedyLoadAll(g *dag.Graph, cm *CostModel) (*Plan, error) {
	n := g.Len()
	states := make([]State, n)
	// Needed set: walk up from outputs, stopping at loadable nodes.
	needed := make([]bool, n)
	var visit func(dag.NodeID)
	visit = func(v dag.NodeID) {
		if needed[v] {
			return
		}
		needed[v] = true
		if cm.Loadable[v] {
			states[v] = Load
			return // parents not needed
		}
		states[v] = Compute
		for _, p := range g.Parents(v) {
			visit(p)
		}
	}
	for _, o := range g.Outputs() {
		visit(o)
	}
	cost, err := PlanCost(g, cm, states)
	if err != nil {
		return nil, err
	}
	return &Plan{States: states, Cost: cost}, nil
}

// ComputeAll is the no-reuse baseline: compute every node on a path to an
// output, prune the rest. This is what a one-shot system (KeystoneML) or
// unoptimized HELIX does every iteration.
func ComputeAll(g *dag.Graph, cm *CostModel) (*Plan, error) {
	n := g.Len()
	states := make([]State, n)
	live := g.Slice()
	for i := 0; i < n; i++ {
		if live[dag.NodeID(i)] {
			states[i] = Compute
		}
	}
	cost, err := PlanCost(g, cm, states)
	if err != nil {
		return nil, err
	}
	return &Plan{States: states, Cost: cost}, nil
}
