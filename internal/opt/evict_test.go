package opt

import (
	"testing"

	"repro/internal/dag"
)

const ms = int64(1_000_000) // nanoseconds

// evictFixture builds the shared-ancestor graph the planner exists for:
// an expensive unstored ancestor A with two stored children B and C, plus
// an independent stored node D.
//
//	A (20ms, not stored)
//	├── B (1ms, stored, 100 bytes)
//	└── C (1ms, stored, 100 bytes)
//	D (30ms, stored, 200 bytes)
func evictFixture() (*dag.Graph, []int64, []EvictCandidate) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	d := g.MustAddNode("d", "op")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	compute := []int64{20 * ms, 1 * ms, 1 * ms, 30 * ms}
	cands := []EvictCandidate{
		{Key: "kb", Node: b, Size: 100, Load: 10_000},
		{Key: "kc", Node: c, Size: 100, Load: 10_000},
		{Key: "kd", Node: d, Size: 200, Load: 10_000},
	}
	return g, compute, cands
}

// TestPlanEvictSetSharesAncestorCost is the case the greedy per-entry
// ranking gets wrong: every per-entry saving charges A's 20ms recompute in
// full, so D (30ms over 200 bytes = 150µs/byte) looks cheaper per byte
// than B or C (21ms over 100 bytes = 210µs/byte each) and greedy evicts D
// at a true future cost of 30ms. The closure view sees that evicting
// {B, C} pays A's recompute once — 20 + 1 + 1 = 22ms for the same 200
// bytes — and must pick them instead.
func TestPlanEvictSetSharesAncestorCost(t *testing.T) {
	g, compute, cands := evictFixture()
	// The fixture must actually discriminate: per-entry saving-per-byte
	// ranks D below B and C, so a greedy policy would pick D.
	greedyB := float64(compute[0]+compute[1]) / 100
	greedyD := float64(compute[3]) / 200
	if greedyD >= greedyB {
		t.Fatalf("fixture no longer discriminates: greedy D %f >= B %f per byte", greedyD, greedyB)
	}
	keys, err := PlanEvictSet(g, compute, cands, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "kb" || keys[1] != "kc" {
		t.Fatalf("evict set %v, want [kb kc] (shared ancestor paid once)", keys)
	}
}

// TestPlanEvictSetFeasible: whatever the shape, the returned set frees at
// least the requested bytes whenever the candidates can.
func TestPlanEvictSetFeasible(t *testing.T) {
	g, compute, cands := evictFixture()
	sizes := map[string]int64{}
	for _, c := range cands {
		sizes[c.Key] = c.Size
	}
	for _, need := range []int64{1, 100, 150, 200, 250, 399, 400} {
		keys, err := PlanEvictSet(g, compute, cands, need)
		if err != nil {
			t.Fatalf("need %d: %v", need, err)
		}
		var freed int64
		for _, k := range keys {
			freed += sizes[k]
		}
		if freed < need {
			t.Errorf("need %d: set %v frees only %d", need, keys, freed)
		}
	}
}

// TestPlanEvictSetStandaloneSaving: candidates with no producing node in
// the graph rank by their carried standalone saving — a cheap orphan is
// sacrificed before an expensive one.
func TestPlanEvictSetStandaloneSaving(t *testing.T) {
	g := dag.New()
	g.MustAddNode("only", "op")
	cands := []EvictCandidate{
		{Key: "cheap", Node: dag.InvalidNode, Size: 100, Saving: 1 * ms},
		{Key: "dear", Node: dag.InvalidNode, Size: 100, Saving: 50 * ms},
	}
	keys, err := PlanEvictSet(g, []int64{0}, cands, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "cheap" {
		t.Fatalf("evict set %v, want [cheap]", keys)
	}
}

// TestPlanEvictSetDegenerateInputs: need <= 0 and empty candidate sets
// plan nothing; an impossible need returns every candidate (best effort —
// the admission's own budget check rejects it); a mis-sized compute slice
// is an error.
func TestPlanEvictSetDegenerateInputs(t *testing.T) {
	g, compute, cands := evictFixture()
	if keys, err := PlanEvictSet(g, compute, cands, 0); err != nil || keys != nil {
		t.Fatalf("need 0: %v, %v", keys, err)
	}
	if keys, err := PlanEvictSet(g, compute, nil, 100); err != nil || keys != nil {
		t.Fatalf("no candidates: %v, %v", keys, err)
	}
	keys, err := PlanEvictSet(g, compute, cands, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(cands) {
		t.Fatalf("impossible need returned %v, want all %d candidates", keys, len(cands))
	}
	if _, err := PlanEvictSet(g, compute[:2], cands, 100); err == nil {
		t.Fatal("mis-sized compute slice accepted")
	}
}

// TestPlanEvictSetTruncatesAtStoredAncestor: a stored ancestor caps its
// descendants' recompute chains at its load cost. Here E (stored, cheap
// load) sits between the expensive root R and the candidate F: evicting F
// costs F's compute plus E's load, never R's 100ms, so F is preferred
// over an orphan G whose standalone saving exceeds that truncated cost.
func TestPlanEvictSetTruncatesAtStoredAncestor(t *testing.T) {
	g := dag.New()
	r := g.MustAddNode("r", "op")
	e := g.MustAddNode("e", "op")
	f := g.MustAddNode("f", "op")
	g.MustAddEdge(r, e)
	g.MustAddEdge(e, f)
	compute := []int64{100 * ms, 1 * ms, 1 * ms}
	cands := []EvictCandidate{
		{Key: "ke", Node: e, Size: 10, Load: 5_000},
		{Key: "kf", Node: f, Size: 100, Load: 10_000},
		{Key: "kg", Node: dag.InvalidNode, Size: 100, Saving: 10 * ms},
	}
	keys, err := PlanEvictSet(g, compute, cands, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "kf" {
		t.Fatalf("evict set %v, want [kf] (chain truncated at stored e)", keys)
	}
}
