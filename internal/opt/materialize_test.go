package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func matCtx(load, compute, ancestors, size, budget int64) MatContext {
	return MatContext{
		LoadCost:            load,
		ComputeCost:         compute,
		AncestorComputeCost: ancestors,
		Size:                size,
		BudgetRemaining:     budget,
	}
}

func TestOnlineHeuristicMaterializesExpensiveChain(t *testing.T) {
	// r = 2*10 - (50 + 100) = -130 < 0: materialize.
	d := OnlineHeuristic{}.Decide(matCtx(10, 50, 100, 1000, 1_000_000))
	if !d.Materialize {
		t.Error("expected materialize")
	}
	if d.Reward != -130 {
		t.Errorf("reward = %d, want -130", d.Reward)
	}
}

func TestOnlineHeuristicSkipsCheapNode(t *testing.T) {
	// r = 2*100 - (5 + 10) = 185 > 0: loading costs more than recomputing.
	d := OnlineHeuristic{}.Decide(matCtx(100, 5, 10, 1000, 1_000_000))
	if d.Materialize {
		t.Error("expected skip")
	}
}

func TestOnlineHeuristicRespectsBudget(t *testing.T) {
	d := OnlineHeuristic{}.Decide(matCtx(10, 50, 100, 2000, 1000))
	if d.Materialize {
		t.Error("materialized over budget")
	}
	// Exactly at budget is allowed.
	d = OnlineHeuristic{}.Decide(matCtx(10, 50, 100, 1000, 1000))
	if !d.Materialize {
		t.Error("size == budget should materialize")
	}
}

func TestMaterializeAllRespectsBudgetOnly(t *testing.T) {
	// Even a worthless node is materialized if it fits.
	d := MaterializeAll{}.Decide(matCtx(1000, 1, 0, 10, 100))
	if !d.Materialize {
		t.Error("materialize-all skipped a fitting node")
	}
	d = MaterializeAll{}.Decide(matCtx(1, 1000, 1000, 200, 100))
	if d.Materialize {
		t.Error("materialize-all exceeded budget")
	}
}

func TestMaterializeNoneNever(t *testing.T) {
	if (MaterializeNone{}).Decide(matCtx(1, 1000, 1000, 1, 1<<40)).Materialize {
		t.Error("materialize-none materialized")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    MatPolicy
		want string
	}{
		{OnlineHeuristic{}, "helix-online"},
		{MaterializeAll{}, "materialize-all"},
		{MaterializeNone{}, "materialize-none"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

func TestKnapsackOfflineBasic(t *testing.T) {
	items := []MatItem{
		{Node: 0, Benefit: 100, Cost: 10, Size: 60}, // net 90
		{Node: 1, Benefit: 80, Cost: 10, Size: 50},  // net 70
		{Node: 2, Benefit: 50, Cost: 10, Size: 50},  // net 40
	}
	// Budget 100: item0+item2 doesn't fit (110); best is 0 alone (90)? No:
	// 1+2 fit (100) with net 110 > 90.
	chosen, val, err := KnapsackOffline(items, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if val != 110 {
		t.Errorf("value = %d, want 110 (chosen %v)", val, chosen)
	}
	if chosen[0] || !chosen[1] || !chosen[2] {
		t.Errorf("chosen = %v, want [false true true]", chosen)
	}
}

func TestKnapsackOfflineSkipsNegativeNet(t *testing.T) {
	items := []MatItem{{Node: 0, Benefit: 5, Cost: 10, Size: 1}}
	chosen, val, err := KnapsackOffline(items, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] || val != 0 {
		t.Errorf("negative-net item chosen (val=%d)", val)
	}
}

func TestKnapsackOfflineValidation(t *testing.T) {
	if _, _, err := KnapsackOffline(nil, 100, 0); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, _, err := KnapsackOffline(nil, -1, 1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestKnapsackOfflineGranularityRounding(t *testing.T) {
	// Size 1001 with gran 1000 occupies 2 units; budget 1999 (1 unit) can't
	// hold it.
	items := []MatItem{{Node: 0, Benefit: 100, Cost: 1, Size: 1001}}
	chosen, _, err := KnapsackOffline(items, 1999, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] {
		t.Error("item should not fit after rounding up")
	}
}

// bruteKnapsack enumerates subsets.
func bruteKnapsack(items []MatItem, budget int64, gran int64) int64 {
	n := len(items)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var sz, val int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sz += ((items[i].Size + gran - 1) / gran) * gran
				val += items[i].Benefit - items[i].Cost
			}
		}
		if sz <= (budget/gran)*gran && val > best {
			best = val
		}
	}
	return best
}

// Property: DP matches exhaustive search on random instances.
func TestQuickKnapsackOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		items := make([]MatItem, n)
		for i := range items {
			items[i] = MatItem{
				Node:    dag.NodeID(i),
				Benefit: int64(r.Intn(100)),
				Cost:    int64(r.Intn(30)),
				Size:    int64(1 + r.Intn(50)),
			}
		}
		budget := int64(r.Intn(150))
		_, val, err := KnapsackOffline(items, budget, 1)
		if err != nil {
			return false
		}
		return val == bruteKnapsack(items, budget, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAncestorComputeCosts(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "x")
	b := g.MustAddNode("b", "x")
	c := g.MustAddNode("c", "x")
	d := g.MustAddNode("d", "x")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	costs := []int64{5, 7, 11, 13}
	anc, err := AncestorComputeCosts(g, costs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 5, 5, 23} // d: a+b+c = 5+7+11
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("anc[%d] = %d, want %d", i, anc[i], want[i])
		}
	}
	if _, err := AncestorComputeCosts(g, costs[:2]); err == nil {
		t.Error("mis-sized costs accepted")
	}
}

func TestAncestorClosures(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	d := g.MustAddNode("d", "op")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	closures := AncestorClosures(g)
	if len(closures[a]) != 0 {
		t.Errorf("root has ancestors: %v", closures[a])
	}
	if len(closures[b]) != 1 || closures[b][0] != a {
		t.Errorf("closures[b] = %v, want [a]", closures[b])
	}
	want := []dag.NodeID{a, b, c}
	if len(closures[d]) != len(want) {
		t.Fatalf("closures[d] = %v, want %v", closures[d], want)
	}
	for i, id := range want {
		if closures[d][i] != id {
			t.Errorf("closures[d] = %v, want %v (sorted)", closures[d], want)
			break
		}
	}
}

// TestNeedsAncestorCostHints pins the NeedsAncestorCost declaration of
// every built-in policy: only the cost-model policies read the
// recomputation-chain term, so only they may make the engine pay for the
// O(ancestors) walk.
func TestNeedsAncestorCostHints(t *testing.T) {
	cases := []struct {
		policy MatPolicy
		want   bool
	}{
		{OnlineHeuristic{}, true},
		{NewProbabilisticHeuristic(), true},
		{MaterializeAll{}, false},
		{MaterializeNone{}, false},
	}
	for _, c := range cases {
		if got := c.policy.NeedsAncestorCost(); got != c.want {
			t.Errorf("%s.NeedsAncestorCost() = %v, want %v", c.policy.Name(), got, c.want)
		}
	}
}

// TestCostInsensitiveDecisionsIgnoreAncestorTerm: a policy that declares
// NeedsAncestorCost()==false must decide identically whether the term is
// zeroed (as the engine now passes it) or fully populated — the hint is
// only sound if skipping the walk cannot change behaviour.
func TestCostInsensitiveDecisionsIgnoreAncestorTerm(t *testing.T) {
	base := MatContext{ComputeCost: 1000, LoadCost: 50, Size: 1 << 10, BudgetRemaining: 1 << 20}
	for _, p := range []MatPolicy{MaterializeAll{}, MaterializeNone{}} {
		for _, size := range []int64{1 << 10, 1 << 30} { // within and over budget
			with, without := base, base
			with.Size, without.Size = size, size
			with.AncestorComputeCost = 1 << 40
			without.AncestorComputeCost = 0
			if p.Decide(with) != p.Decide(without) {
				t.Errorf("%s: decision depends on ancestor term it claims not to read", p.Name())
			}
		}
	}
}

// TestCostSensitiveDecisionsUseAncestorTerm: the online heuristic's
// r_i = 2*l_i − (c_i + Σ ancestors) must flip from "don't" to "do"
// materialize as the ancestor chain grows — the behaviour the
// NeedsAncestorCost()==true declaration protects.
func TestCostSensitiveDecisionsUseAncestorTerm(t *testing.T) {
	ctx := MatContext{ComputeCost: 10, LoadCost: 100, Size: 1, BudgetRemaining: 1 << 20}
	if d := (OnlineHeuristic{}).Decide(ctx); d.Materialize {
		t.Fatalf("cheap chain materialized: r=%d", d.Reward)
	}
	ctx.AncestorComputeCost = 1000 // rebuild chain now dominates 2*l_i
	if d := (OnlineHeuristic{}).Decide(ctx); !d.Materialize {
		t.Fatalf("expensive chain not materialized: r=%d", d.Reward)
	}
}
