package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/sig"
)

// AttrCategory is the dag node attribute holding the operator category.
const AttrCategory = "category"

// Compiled is the intermediate-code-generator output (§2.2): the operations
// DAG with Merkle result signatures, plus the executable task per node.
type Compiled struct {
	Workflow *Workflow
	Graph    *dag.Graph
	// Ops[i] is node i's operator.
	Ops []Operator
	// Sigs[i] is node i's result signature (Merkle over the upstream DAG).
	Sigs []sig.Signature
	// Tasks[i] is the execution-engine binding for node i.
	Tasks []exec.Task
}

// Compile translates a Workflow into its DAG form, validating the program:
// unique names, declared inputs, at least one output, acyclicity (by
// construction — inputs must pre-exist — but verified anyway).
func Compile(w *Workflow) (*Compiled, error) {
	if len(w.errs) > 0 {
		return nil, fmt.Errorf("core: workflow %s has declaration errors: %w", w.name, errors.Join(w.errs...))
	}
	if len(w.decls) == 0 {
		return nil, fmt.Errorf("core: workflow %s is empty", w.name)
	}
	g := dag.New()
	ops := make([]Operator, 0, len(w.decls))
	hasOutput := false
	for _, d := range w.decls {
		id, err := g.AddNode(d.name, d.op.Type())
		if err != nil {
			return nil, err
		}
		g.Node(id).Output = d.output
		g.Node(id).Attrs[AttrCategory] = string(d.op.Category())
		hasOutput = hasOutput || d.output
		ops = append(ops, d.op)
	}
	for _, d := range w.decls {
		child := g.Lookup(d.name)
		for _, in := range d.inputs {
			if err := g.AddEdge(g.Lookup(in), child); err != nil {
				return nil, err
			}
		}
	}
	if !hasOutput {
		return nil, fmt.Errorf("core: workflow %s declares no outputs", w.name)
	}
	opSigs := make([]sig.Signature, len(ops))
	for i, op := range ops {
		opSigs[i] = sig.Operator(op.Type(), op.Params(), op.UDFVersion())
	}
	resSigs, err := sig.Annotate(g, opSigs)
	if err != nil {
		return nil, err
	}
	tasks := make([]exec.Task, len(ops))
	for i, op := range ops {
		tasks[i] = exec.Task{
			Key: string(resSigs[i]),
			Run: bindRun(op),
		}
	}
	return &Compiled{Workflow: w, Graph: g, Ops: ops, Sigs: resSigs, Tasks: tasks}, nil
}

// CtxOperator is an optional Operator extension for long-running operators:
// ApplyCtx receives the engine's run context, carrying first-error
// cancellation and the fault policy's per-node deadline, so the operator
// can be interrupted instead of waited out.
type CtxOperator interface {
	Operator
	ApplyCtx(ctx context.Context, inputs []any) (any, error)
}

// bindRun adapts an operator to the engine's context-threaded task
// signature. Context-aware operators get the context end-to-end; plain
// operators get a pre-flight cancellation check, so a cancelled run at
// least never starts them.
func bindRun(op Operator) func(context.Context, []any) (any, error) {
	if co, ok := op.(CtxOperator); ok {
		return co.ApplyCtx
	}
	return func(ctx context.Context, inputs []any) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return op.Apply(inputs)
	}
}

// Category returns node id's operator category.
func (c *Compiled) Category(id dag.NodeID) Category {
	return Category(c.Graph.Node(id).Attrs[AttrCategory])
}
