// Package core is HELIX's programming interface and compiler (§2.1–2.2): a
// declarative workflow-building API (the Go analogue of the paper's Scala
// DSL), an intermediate code generator that turns a Workflow into a DAG of
// operators with Merkle result signatures, and a Session driver that runs
// iterations end-to-end through the optimizers and the execution engine.
//
// The DSL verbs map onto the paper's:
//
//	paper                              this package
//	-----------------------------      -------------------------------
//	name refers_to Op                  wf.Source("name", op) / wf.Apply
//	data is_read_into rows using Op    wf.Apply("rows", op, "data")
//	out results_from op on in          wf.Apply("out", op, "in", ...)
//	x is_output()                      wf.Output("x")
package core

import (
	"fmt"
	"sort"
)

// Category classifies operators for the iteration-type statistics and the
// comparator systems' reuse rules. The paper's Figure 2 color-codes
// iterations with the same three classes.
type Category string

const (
	// CatPrep covers data loading, parsing and feature engineering (purple).
	CatPrep Category = "prep"
	// CatML covers learning and inference (orange).
	CatML Category = "ml"
	// CatEval covers post-processing and metrics (green).
	CatEval Category = "eval"
)

// Operator is one workflow operation. Implementations must be pure given
// their inputs: the Merkle signature (Type, Params, UDFVersion + input
// signatures) is assumed to identify the result content.
type Operator interface {
	// Type is the operator's type name ("scanner", "learner", ...).
	Type() string
	// Category classifies the operator for reuse rules and statistics.
	Category() Category
	// Params returns the signature-relevant configuration.
	Params() map[string]string
	// UDFVersion is a version tag for embedded user code; bump it to signal
	// a semantic change the params cannot capture (the paper detects this
	// via source version control).
	UDFVersion() string
	// Apply computes the result from parent values, ordered as declared.
	Apply(inputs []any) (any, error)
}

// decl is one DSL statement.
type decl struct {
	name   string
	op     Operator
	inputs []string
	output bool
}

// Workflow is a declarative program under construction: an ordered list of
// named operator applications. Building never fails; Compile validates.
type Workflow struct {
	name  string
	decls []*decl
	index map[string]*decl
	errs  []error
}

// NewWorkflow starts an empty workflow with the given name.
func NewWorkflow(name string) *Workflow {
	return &Workflow{name: name, index: make(map[string]*decl)}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Source declares a node with no inputs (paper: `data refers_to new
// FileSource(...)`).
func (w *Workflow) Source(name string, op Operator) *Workflow {
	return w.Apply(name, op)
}

// Apply declares that name results from applying op to the named inputs.
// Inputs must already be declared; errors are accumulated and reported by
// Compile so call sites stay chainable.
func (w *Workflow) Apply(name string, op Operator, inputs ...string) *Workflow {
	if _, dup := w.index[name]; dup {
		w.errs = append(w.errs, fmt.Errorf("core: duplicate declaration %q", name))
		return w
	}
	if op == nil {
		w.errs = append(w.errs, fmt.Errorf("core: nil operator for %q", name))
		return w
	}
	for _, in := range inputs {
		if _, ok := w.index[in]; !ok {
			w.errs = append(w.errs, fmt.Errorf("core: %q references undeclared input %q", name, in))
			return w
		}
	}
	d := &decl{name: name, op: op, inputs: append([]string(nil), inputs...)}
	w.decls = append(w.decls, d)
	w.index[name] = d
	return w
}

// Output marks a declared node as a workflow output (paper: `is_output()`).
func (w *Workflow) Output(name string) *Workflow {
	d, ok := w.index[name]
	if !ok {
		w.errs = append(w.errs, fmt.Errorf("core: output %q not declared", name))
		return w
	}
	d.output = true
	return w
}

// Names returns all declared names in declaration order.
func (w *Workflow) Names() []string {
	out := make([]string, len(w.decls))
	for i, d := range w.decls {
		out[i] = d.name
	}
	return out
}

// Operators returns the declared operator for each name, for inspection.
func (w *Workflow) Operators() map[string]Operator {
	out := make(map[string]Operator, len(w.decls))
	for _, d := range w.decls {
		out[d.name] = d.op
	}
	return out
}

// SourceText renders the workflow as pseudo-DSL source — the version store
// keeps it so the demo's version browser can show git-style code diffs.
func (w *Workflow) SourceText() string {
	var b []byte
	b = append(b, fmt.Sprintf("workflow %s {\n", w.name)...)
	for _, d := range w.decls {
		line := fmt.Sprintf("  %s results_from %s", d.name, d.op.Type())
		params := d.op.Params()
		if len(params) > 0 {
			keys := make([]string, 0, len(params))
			for k := range params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line += "("
			for i, k := range keys {
				if i > 0 {
					line += ", "
				}
				line += fmt.Sprintf("%s=%s", k, params[k])
			}
			line += ")"
		}
		if v := d.op.UDFVersion(); v != "" {
			line += " udf:" + v
		}
		if len(d.inputs) > 0 {
			line += " on "
			for i, in := range d.inputs {
				if i > 0 {
					line += ", "
				}
				line += in
			}
		}
		if d.output {
			line += " is_output"
		}
		b = append(b, (line + "\n")...)
	}
	b = append(b, "}\n"...)
	return string(b)
}
