package core

import (
	"repro/internal/codec"
	"repro/internal/data"
)

// Custom gob encodings for the hot pipeline values. See internal/codec: the
// reflective gob path over these (many small maps / slices) loads slower
// than recomputing, which would make the recomputation optimizer always
// prefer compute and mask the paper's trade-offs.

// GobEncode implements the interned columnar encoding for FeatureColumn.
func (fc FeatureColumn) GobEncode() ([]byte, error) {
	var w codec.Writer
	table := codec.NewStringTable()
	data.EncodeFeatureMaps(&w, table, fc.Train)
	data.EncodeFeatureMaps(&w, table, fc.Test)
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode.
func (fc *FeatureColumn) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	table := codec.NewReadStringTable()
	train, err := data.DecodeFeatureMaps(r, table)
	if err != nil {
		return err
	}
	test, err := data.DecodeFeatureMaps(r, table)
	if err != nil {
		return err
	}
	fc.Train, fc.Test = train, test
	return nil
}

// GobEncode implements the flat-array encoding for VecPair.
func (vp VecPair) GobEncode() ([]byte, error) {
	var w codec.Writer
	data.EncodeLabeled(&w, vp.Train)
	data.EncodeLabeled(&w, vp.Test)
	w.Int(vp.Dim)
	w.Len(len(vp.Names))
	for _, n := range vp.Names {
		w.String(n)
	}
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode.
func (vp *VecPair) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	train, err := data.DecodeLabeled(r)
	if err != nil {
		return err
	}
	test, err := data.DecodeLabeled(r)
	if err != nil {
		return err
	}
	dim, err := r.Int()
	if err != nil {
		return err
	}
	nn, err := r.Len()
	if err != nil {
		return err
	}
	names := make([]string, nn)
	for i := range names {
		if names[i], err = r.String(); err != nil {
			return err
		}
	}
	vp.Train, vp.Test, vp.Dim, vp.Names = train, test, dim, names
	return nil
}

// GobEncode implements a flat encoding for Predictions.
func (p Predictions) GobEncode() ([]byte, error) {
	var w codec.Writer
	for _, arr := range [][]float64{p.Scores, p.Labels, p.Gold} {
		w.Len(len(arr))
		for _, v := range arr {
			w.Float64(v)
		}
	}
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode.
func (p *Predictions) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	for _, dst := range []*[]float64{&p.Scores, &p.Labels, &p.Gold} {
		n, err := r.Len()
		if err != nil {
			return err
		}
		arr := make([]float64, n)
		for i := range arr {
			if arr[i], err = r.Float64(); err != nil {
				return err
			}
		}
		*dst = arr
	}
	return nil
}
