package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/ml"
)

// baseOp carries the boilerplate shared by built-in operators.
type baseOp struct {
	typ    string
	cat    Category
	params map[string]string
	udf    string
}

func (b baseOp) Type() string              { return b.typ }
func (b baseOp) Category() Category        { return b.cat }
func (b baseOp) Params() map[string]string { return b.params }
func (b baseOp) UDFVersion() string        { return b.udf }

func inputErr(op string, want int, got int) error {
	return fmt.Errorf("core: %s expects %d inputs, got %d", op, want, got)
}

func typeErr(op string, pos int, want string, got any) error {
	return fmt.Errorf("core: %s input %d: want %s, got %T", op, pos, want, got)
}

// LiteralSource supplies raw train/test text. Its signature embeds a content
// hash, so replacing the dataset invalidates all downstream results exactly
// like editing an operator would (the paper's FileSource behaves the same
// through file paths + modification tracking).
type LiteralSource struct {
	baseOp
	train, test string
}

// NewLiteralSource builds a source over in-memory text.
func NewLiteralSource(train, test string) *LiteralSource {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s%d:%s", len(train), train, len(test), test)
	return &LiteralSource{
		baseOp: baseOp{
			typ:    "source",
			cat:    CatPrep,
			params: map[string]string{"content": hex.EncodeToString(h.Sum(nil))[:16]},
		},
		train: train,
		test:  test,
	}
}

// Apply implements Operator.
func (s *LiteralSource) Apply(inputs []any) (any, error) {
	if len(inputs) != 0 {
		return nil, inputErr("source", 0, len(inputs))
	}
	return TextPair{Train: s.train, Test: s.test}, nil
}

// CSVScanner parses a TextPair into collections (paper: `data is_read_into
// rows using CSVScanner(...)`).
type CSVScanner struct {
	baseOp
	columns []string
}

// NewCSVScanner builds a scanner over the given column names.
func NewCSVScanner(columns ...string) *CSVScanner {
	return &CSVScanner{
		baseOp: baseOp{
			typ:    "scanner",
			cat:    CatPrep,
			params: map[string]string{"columns": fmt.Sprint(columns)},
		},
		columns: append([]string(nil), columns...),
	}
}

// Apply implements Operator.
func (s *CSVScanner) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr("scanner", 1, len(inputs))
	}
	tp, ok := inputs[0].(TextPair)
	if !ok {
		return nil, typeErr("scanner", 0, "TextPair", inputs[0])
	}
	schema, err := data.NewSchema(s.columns...)
	if err != nil {
		return nil, err
	}
	train, err := data.ScanCSV(tp.Train, schema)
	if err != nil {
		return nil, fmt.Errorf("core: scanner train: %w", err)
	}
	test, err := data.ScanCSV(tp.Test, schema)
	if err != nil {
		return nil, fmt.Errorf("core: scanner test: %w", err)
	}
	return CollectionPair{Train: train, Test: test}, nil
}

// extractorOp is the shared Apply for extractor-declaration nodes: build the
// extractor, fit it on the train collection, and run it over every row of
// both halves. The materialized FeatureColumn is what downstream featurize
// consumes, so adding one extractor in a later iteration leaves the others
// reusable.
type extractorOp struct {
	baseOp
	build func() data.Extractor
}

// Apply implements Operator.
func (e *extractorOp) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr(e.typ, 1, len(inputs))
	}
	cp, ok := inputs[0].(CollectionPair)
	if !ok {
		return nil, typeErr(e.typ, 0, "CollectionPair", inputs[0])
	}
	ex := e.build()
	if err := ex.Fit(cp.Train); err != nil {
		return nil, err
	}
	extract := func(c *data.Collection) ([]data.FeatureMap, error) {
		out := make([]data.FeatureMap, c.Len())
		for i := 0; i < c.Len(); i++ {
			fm := make(data.FeatureMap, 2)
			if err := ex.Extract(c, i, fm); err != nil {
				return nil, fmt.Errorf("core: %s row %d: %w", e.typ, i, err)
			}
			out[i] = fm
		}
		return out, nil
	}
	train, err := extract(cp.Train)
	if err != nil {
		return nil, err
	}
	test, err := extract(cp.Test)
	if err != nil {
		return nil, err
	}
	return FeatureColumn{Train: train, Test: test}, nil
}

// Field declares a FieldExtractor node (paper: `age refers_to
// FieldExtractor("age")`).
func Field(col string) Operator {
	return &extractorOp{
		baseOp: baseOp{typ: "field", cat: CatPrep, params: map[string]string{"col": col}},
		build:  func() data.Extractor { return &data.FieldExtractor{Col: col} },
	}
}

// Bucket declares a Bucketizer node (paper: `ageBucket refers_to
// Bucketizer(age, bins=10)`).
func Bucket(col string, bins int) Operator {
	return &extractorOp{
		baseOp: baseOp{typ: "bucketizer", cat: CatPrep, params: map[string]string{
			"col": col, "bins": strconv.Itoa(bins),
		}},
		build: func() data.Extractor { return &data.Bucketizer{Col: col, Bins: bins} },
	}
}

// Cross declares an InteractionFeature node (paper: `eduXocc refers_to
// InteractionFeature(Array(edu, occ))`).
func Cross(cols ...string) Operator {
	return &extractorOp{
		baseOp: baseOp{typ: "interaction", cat: CatPrep, params: map[string]string{"cols": fmt.Sprint(cols)}},
		build:  func() data.Extractor { return &data.InteractionFeature{Cols: append([]string(nil), cols...)} },
	}
}

// Clean is the data-cleaning ETL stage between scanning and feature
// extraction: it trims and collapses whitespace, canonicalizes categorical
// casing, and imputes missing markers ("?", "") with the column's training-
// set mode. Real census extracts need exactly this pass, and it is the kind
// of expensive, iteration-invariant prep work whose reuse the paper's
// optimizers exist to exploit.
type Clean struct {
	baseOp
}

// NewClean builds the cleaning operator.
func NewClean() *Clean {
	return &Clean{baseOp: baseOp{typ: "clean", cat: CatPrep, params: nil}}
}

// Apply implements Operator.
func (cl *Clean) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr("clean", 1, len(inputs))
	}
	cp, ok := inputs[0].(CollectionPair)
	if !ok {
		return nil, typeErr("clean", 0, "CollectionPair", inputs[0])
	}
	// Column modes from the training half, for imputation.
	ncols := cp.Train.Schema.Len()
	counts := make([]map[string]int, ncols)
	for j := range counts {
		counts[j] = make(map[string]int)
	}
	for _, row := range cp.Train.Rows {
		for j, f := range row.Fields {
			if v := normalizeField(f); !isMissing(v) {
				counts[j][v]++
			}
		}
	}
	modes := make([]string, ncols)
	for j, c := range counts {
		best, bestN := "", -1
		for v, n := range c {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		modes[j] = best
	}
	cleanSide := func(c *data.Collection) *data.Collection {
		out := data.NewCollection(c.Schema)
		out.Rows = make([]data.Row, len(c.Rows))
		for i, row := range c.Rows {
			fields := make([]string, len(row.Fields))
			for j, f := range row.Fields {
				v := normalizeField(f)
				if isMissing(v) {
					v = modes[j]
				}
				fields[j] = v
			}
			out.Rows[i] = data.Row{Fields: fields}
		}
		return out
	}
	return CollectionPair{Train: cleanSide(cp.Train), Test: cleanSide(cp.Test)}, nil
}

// normalizeField trims outer whitespace and collapses internal runs.
func normalizeField(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// isMissing recognizes the missing-value markers census extracts use.
func isMissing(s string) bool {
	return s == "" || s == "?" || s == "NA" || s == "N/A"
}

// Featurize merges the extractor feature columns with labels from the row
// collections into the vectorized dataset (paper: `income results_from rows
// with_labels target`). Inputs: CollectionPair followed by one or more
// FeatureColumns.
type Featurize struct {
	baseOp
	labelCol, positive string
}

// NewFeaturize builds the featurize operator with a binary label read from
// labelCol (positive value → 1).
func NewFeaturize(labelCol, positive string) *Featurize {
	return &Featurize{
		baseOp: baseOp{typ: "featurize", cat: CatPrep, params: map[string]string{
			"label": labelCol, "positive": positive,
		}},
		labelCol: labelCol,
		positive: positive,
	}
}

// Apply implements Operator.
func (f *Featurize) Apply(inputs []any) (any, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("core: featurize expects rows + >=1 extractor, got %d inputs", len(inputs))
	}
	cp, ok := inputs[0].(CollectionPair)
	if !ok {
		return nil, typeErr("featurize", 0, "CollectionPair", inputs[0])
	}
	columns := make([]FeatureColumn, 0, len(inputs)-1)
	for i, in := range inputs[1:] {
		fc, ok := in.(FeatureColumn)
		if !ok {
			return nil, typeErr("featurize", i+1, "FeatureColumn", in)
		}
		columns = append(columns, fc)
	}
	label := &data.BinaryLabel{Col: f.labelCol, Positive: f.positive}
	dict := data.NewDictionary()
	vectorize := func(c *data.Collection, side func(FeatureColumn) []data.FeatureMap) ([]data.Labeled, error) {
		out := make([]data.Labeled, c.Len())
		scratch := make(map[int]float64, 2*len(columns))
		rowNames := make([]string, 0, 4)
		for i := 0; i < c.Len(); i++ {
			clear(scratch)
			for ci, col := range columns {
				maps := side(col)
				if len(maps) != c.Len() {
					return nil, fmt.Errorf("core: featurize: column %d has %d rows, collection has %d", ci, len(maps), c.Len())
				}
				// Deterministic dictionary order: sort this row's names
				// within the column (maps are tiny, 1–2 entries).
				rowNames = rowNames[:0]
				for name := range maps[i] {
					rowNames = append(rowNames, name)
				}
				sort.Strings(rowNames)
				for _, name := range rowNames {
					if idx := dict.Add(name); idx >= 0 {
						scratch[idx] = maps[i][name]
					}
				}
			}
			v := data.Vector{Indices: make([]int, 0, len(scratch)), Values: make([]float64, 0, len(scratch))}
			for idx := range scratch {
				v.Indices = append(v.Indices, idx)
			}
			sort.Ints(v.Indices)
			for _, idx := range v.Indices {
				v.Values = append(v.Values, scratch[idx])
			}
			y, err := label.ExtractLabel(c, i)
			if err != nil {
				return nil, err
			}
			out[i] = data.Labeled{X: v, Y: y}
		}
		return out, nil
	}
	train, err := vectorize(cp.Train, func(fc FeatureColumn) []data.FeatureMap { return fc.Train })
	if err != nil {
		return nil, fmt.Errorf("core: featurize train: %w", err)
	}
	dict.Freeze()
	test, err := vectorize(cp.Test, func(fc FeatureColumn) []data.FeatureMap { return fc.Test })
	if err != nil {
		return nil, fmt.Errorf("core: featurize test: %w", err)
	}
	names := make([]string, dict.Len())
	for i := range names {
		n, err := dict.Name(i)
		if err != nil {
			return nil, err
		}
		names[i] = n
	}
	scaleMaxAbs(train, test, dict.Len())
	return VecPair{
		Train: train,
		Test:  test,
		Dim:   dict.Len(),
		Names: names,
	}, nil
}

// scaleMaxAbs divides every feature by its maximum absolute value on the
// training set, bounding features to [-1,1] without destroying sparsity —
// raw numeric columns (age, hours) would otherwise dominate SGD updates.
func scaleMaxAbs(train, test []data.Labeled, dim int) {
	maxAbs := make([]float64, dim)
	for _, ex := range train {
		for k, i := range ex.X.Indices {
			if v := math.Abs(ex.X.Values[k]); i < dim && v > maxAbs[i] {
				maxAbs[i] = v
			}
		}
	}
	scale := func(set []data.Labeled) {
		for _, ex := range set {
			for k, i := range ex.X.Indices {
				if i < dim && maxAbs[i] > 0 {
					ex.X.Values[k] /= maxAbs[i]
				}
			}
		}
	}
	scale(train)
	scale(test)
}

// Learner trains a model on the vectorized dataset (paper: `incPred
// refers_to new Learner(modelType, regParam=0.1)`).
type Learner struct {
	baseOp
	kind     string
	regParam float64
	epochs   int
	lr       float64
	seed     int64
}

// NewLearner builds a learner. kind is "logreg", "svm", "perceptron" or
// "bayes".
func NewLearner(kind string, regParam float64, epochs int) *Learner {
	return &Learner{
		baseOp: baseOp{typ: "learner", cat: CatML, params: map[string]string{
			"kind":     kind,
			"regParam": strconv.FormatFloat(regParam, 'g', -1, 64),
			"epochs":   strconv.Itoa(epochs),
		}},
		kind:     kind,
		regParam: regParam,
		epochs:   epochs,
		lr:       0.1,
		seed:     42,
	}
}

// Apply implements Operator.
func (l *Learner) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr("learner", 1, len(inputs))
	}
	vp, ok := inputs[0].(VecPair)
	if !ok {
		return nil, typeErr("learner", 0, "VecPair", inputs[0])
	}
	switch l.kind {
	case "logreg":
		return ml.TrainLogistic(vp.Train, ml.LogisticConfig{
			Epochs: l.epochs, LearningRate: l.lr, RegParam: l.regParam, Seed: l.seed, Dim: vp.Dim,
		})
	case "svm":
		return ml.TrainSVM(vp.Train, ml.SVMConfig{
			Epochs: l.epochs, LearningRate: l.lr, RegParam: l.regParam, Seed: l.seed, Dim: vp.Dim,
		})
	case "perceptron":
		return ml.TrainPerceptron(vp.Train, l.epochs, vp.Dim, l.seed)
	case "bayes":
		return ml.TrainNaiveBayes(vp.Train, vp.Dim)
	default:
		return nil, fmt.Errorf("core: unknown learner kind %q", l.kind)
	}
}

// Clusterer is the unsupervised path of the DSL (§2.1: "both supervised and
// unsupervised learning"): k-means over the vectorized training half,
// reporting cluster assignments for the test half and the inertia metric.
type Clusterer struct {
	baseOp
	k, maxIters int
	seed        int64
}

// ClusterResult is the Clusterer output.
type ClusterResult struct {
	// Model is the fitted k-means model.
	Model *ml.KMeans
	// TestAssign[i] is the cluster of test example i.
	TestAssign []int
	// Inertia is the within-cluster squared distance on the training half.
	Inertia float64
}

// NewClusterer builds a k-means operator.
func NewClusterer(k, maxIters int, seed int64) *Clusterer {
	return &Clusterer{
		baseOp: baseOp{typ: "clusterer", cat: CatML, params: map[string]string{
			"k":     strconv.Itoa(k),
			"iters": strconv.Itoa(maxIters),
			"seed":  strconv.FormatInt(seed, 10),
		}},
		k: k, maxIters: maxIters, seed: seed,
	}
}

// Apply implements Operator.
func (c *Clusterer) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr("clusterer", 1, len(inputs))
	}
	vp, ok := inputs[0].(VecPair)
	if !ok {
		return nil, typeErr("clusterer", 0, "VecPair", inputs[0])
	}
	xs := make([]data.Vector, len(vp.Train))
	for i, ex := range vp.Train {
		xs[i] = ex.X
	}
	km, err := ml.TrainKMeans(xs, ml.KMeansConfig{K: c.k, MaxIters: c.maxIters, Seed: c.seed, Dim: vp.Dim})
	if err != nil {
		return nil, err
	}
	res := ClusterResult{Model: km, TestAssign: make([]int, len(vp.Test)), Inertia: km.Inertia(xs)}
	for i, ex := range vp.Test {
		res.TestAssign[i] = km.Assign(ex.X)
	}
	return res, nil
}

// Predict applies a trained model to the test half of the dataset (paper:
// `predictions results_from incPred on income`). Inputs: model, VecPair.
type Predict struct {
	baseOp
}

// NewPredict builds the prediction operator.
func NewPredict() *Predict {
	return &Predict{baseOp: baseOp{typ: "predict", cat: CatML, params: nil}}
}

// Apply implements Operator.
func (p *Predict) Apply(inputs []any) (any, error) {
	if len(inputs) != 2 {
		return nil, inputErr("predict", 2, len(inputs))
	}
	model, ok := inputs[0].(ml.Model)
	if !ok {
		return nil, typeErr("predict", 0, "ml.Model", inputs[0])
	}
	vp, ok := inputs[1].(VecPair)
	if !ok {
		return nil, typeErr("predict", 1, "VecPair", inputs[1])
	}
	out := Predictions{
		Scores: make([]float64, len(vp.Test)),
		Labels: make([]float64, len(vp.Test)),
		Gold:   make([]float64, len(vp.Test)),
	}
	for i, ex := range vp.Test {
		out.Scores[i] = model.Score(ex.X)
		if out.Scores[i] > 0 {
			out.Labels[i] = 1
		}
		out.Gold[i] = ex.Y
	}
	return out, nil
}

// Eval computes metrics from predictions (paper: the `checkResults` Reducer
// with a Scala UDF for checking prediction accuracy). The metric parameter
// models eval-component edits: it selects the headline metric but the full
// metric set is always computed.
type Eval struct {
	baseOp
}

// NewEval builds the evaluation operator; metric ("accuracy", "f1", ...) is
// a signature-visible knob.
func NewEval(metric string) *Eval {
	return &Eval{baseOp: baseOp{typ: "eval", cat: CatEval, params: map[string]string{"metric": metric}}}
}

// Apply implements Operator.
func (e *Eval) Apply(inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, inputErr("eval", 1, len(inputs))
	}
	preds, ok := inputs[0].(Predictions)
	if !ok {
		return nil, typeErr("eval", 0, "Predictions", inputs[0])
	}
	if len(preds.Labels) != len(preds.Gold) {
		return nil, fmt.Errorf("core: eval: %d predictions vs %d gold labels", len(preds.Labels), len(preds.Gold))
	}
	if len(preds.Labels) == 0 {
		return nil, fmt.Errorf("core: eval: empty predictions")
	}
	var conf ml.Confusion
	var ll float64
	for i := range preds.Labels {
		conf.Add(preds.Gold[i], preds.Labels[i])
		p := ml.Sigmoid(preds.Scores[i])
		const eps = 1e-12
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if preds.Gold[i] == 1 {
			ll -= math.Log(p)
		} else {
			ll -= math.Log(1 - p)
		}
	}
	return ml.Metrics{
		Accuracy:  conf.Accuracy(),
		Precision: conf.Precision(),
		Recall:    conf.Recall(),
		F1:        conf.F1(),
		LogLoss:   ll / float64(len(preds.Labels)),
		N:         len(preds.Labels),
	}, nil
}

// UDF wraps arbitrary user code as an operator — the paper's inline Scala
// UDF mechanism. The version tag must be bumped whenever fn's behaviour
// changes; params participate in the signature like any operator's.
type UDF struct {
	baseOp
	fn func(inputs []any) (any, error)
}

// NewUDF builds a user-defined operator.
func NewUDF(typeName string, cat Category, params map[string]string, version string, fn func(inputs []any) (any, error)) *UDF {
	return &UDF{
		baseOp: baseOp{typ: typeName, cat: cat, params: params, udf: version},
		fn:     fn,
	}
}

// Apply implements Operator.
func (u *UDF) Apply(inputs []any) (any, error) {
	if u.fn == nil {
		return nil, fmt.Errorf("core: UDF %s has no function", u.typ)
	}
	return u.fn(inputs)
}
