package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// Options is the single canonical way to configure a Session. Every entry
// point constructs sessions through it — the CLI binaries, the benchmarks,
// and the helix-serve daemon — and systems.Preset returns the paper's
// comparator systems as Options values, so there is exactly one place where
// knobs are defined, defaulted, and validated.
//
// The zero value is a valid in-memory session: no persistence, no reuse,
// dataflow scheduling with work-stealing dispatch.
type Options struct {
	// SystemName labels reports ("helix", "deepdive", ...). Defaults to
	// "helix" when empty.
	SystemName string
	// StoreDir is the materialization directory; empty disables persistence
	// entirely (no loads, no stores) unless SharedTiers is set.
	StoreDir string
	// BudgetBytes caps the store (<=0 = unlimited).
	BudgetBytes int64
	// SpillDir is the cold-tier spill directory: values the hot store's
	// budget rejects are admitted there instead of being dropped, and cold
	// hits are promoted back on load. Empty disables tiering. Requires
	// StoreDir.
	SpillDir string
	// SpillBudgetBytes caps the spill tier (<=0 = unlimited). The spill
	// tier deletes its least-recently-accessed entries to admit new values,
	// so unlike BudgetBytes this cap bounds retention, not admission.
	SpillBudgetBytes int64
	// Policy is the online materialization policy; nil = never materialize.
	Policy opt.MatPolicy
	// Reuse enables cross-iteration reuse (the recomputation optimizer may
	// choose load states). Without it every iteration recomputes its full
	// program slice.
	Reuse bool
	// NeverReuse lists operator categories that must always recompute even
	// when a valid materialization exists — DeepDive's non-configurable ML
	// and evaluation components are modeled this way.
	NeverReuse []Category
	// Workers bounds intra-iteration parallelism.
	Workers int
	// Sched selects the execution scheduling strategy; the zero value is
	// the dependency-counting dataflow scheduler. LevelBarrier reproduces
	// the original wave executor for A/B comparisons.
	Sched exec.Strategy
	// Order selects the dataflow ready-queue priority; the zero value is
	// cost-aware critical-path-first. exec.MinID restores the original
	// smallest-ID dispatch for A/B comparisons.
	Order exec.Ordering
	// Dispatch selects how the dataflow scheduler hands ready nodes to
	// workers; the zero value is work-stealing (per-worker deques).
	// exec.GlobalHeap restores the single shared ready heap for A/B
	// comparisons.
	Dispatch exec.DispatchMode
	// Reweight selects online re-prioritization of the remaining DAG from
	// measured durations; the zero value is exec.Adaptive.
	// exec.ReweightOff pins the weights computed at the top of each
	// iteration for A/B comparisons.
	Reweight exec.Reweight
	// KeepIntermediates retains every non-pruned value in memory for the
	// whole iteration. By default the session releases a non-output value
	// the moment its last consumer has run (memory-bounded execution;
	// Report and Outputs only ever read output values, so nothing is
	// lost). Set it for debugging sessions that want to inspect
	// intermediates post-hoc, or to A/B the peak-memory win.
	KeepIntermediates bool
	// Faults is the execution-time fault policy: per-node retry budget with
	// backoff for transient failures, per-node deadlines, and error
	// classification. The zero value disables retries and deadlines (one
	// attempt, fail-fast — the historical behaviour).
	Faults exec.FaultPolicy
	// Codec selects the value serialization format (see store.Codec). The
	// zero value resolves to the reflection-free binary codec;
	// store.CodecGob forces the reflective A/B reference.
	Codec store.Codec
	// MmapCold serves cold-tier reads zero-copy from a read-only memory
	// mapping instead of a buffered file read (store.OpenSpillMmap).
	// Requires SpillDir; buffered fallback applies per-file and on
	// platforms without mmap support.
	MmapCold bool

	// Tenant labels every value this session materializes with an owning
	// tenant (store.Entry.Owner) for per-tenant budget accounting in a
	// shared store. Empty for single-user sessions.
	Tenant string
	// SharedTiers plugs a pre-opened tiered store shared with other
	// sessions into this one, instead of opening a private store from
	// StoreDir/SpillDir. Cross-tier movement in store.Tiered is serialized
	// per instance, so concurrent sessions MUST share one instance — the
	// serve layer constructs sessions this way. Mutually exclusive with
	// StoreDir/SpillDir.
	SharedTiers *store.Tiered
	// SharedHistory plugs a shared runtime-statistics history into this
	// session instead of a private one. The session never persists a
	// shared history (its owner decides when and where); without it a
	// private history is loaded from and saved to StoreDir as before.
	SharedHistory *exec.History
}

// Config is the deprecated name of Options, kept as an alias for one
// release so existing call sites compile unchanged.
//
// Deprecated: use Options with Open.
type Config = Options

// Validate defaults and sanity-checks the options in place. Open calls it;
// callers only need it to inspect the resolved values early.
func (o *Options) Validate() error {
	if o.SystemName == "" {
		o.SystemName = "helix"
	}
	if o.SpillDir != "" && o.StoreDir == "" {
		return fmt.Errorf("core: SpillDir %q configured without a StoreDir hot tier", o.SpillDir)
	}
	if o.SharedTiers != nil {
		if o.StoreDir != "" {
			return fmt.Errorf("core: SharedTiers and StoreDir %q are mutually exclusive", o.StoreDir)
		}
		if o.MmapCold {
			return fmt.Errorf("core: MmapCold is fixed at SharedTiers open time; set it on the shared store instead")
		}
	}
	return nil
}

// Open validates the options, opens the materialization store (if
// configured) and prepares the engine. Persisted runtime statistics from
// earlier sessions over the same StoreDir are loaded automatically. This is
// the canonical constructor every entry point goes through.
func Open(o Options) (*Session, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	s := &Session{cfg: o, history: o.SharedHistory}
	if s.history == nil {
		s.history = exec.NewHistory()
	}
	if o.SharedTiers != nil {
		s.store = o.SharedTiers.Hot()
		s.spill = o.SharedTiers.Cold()
	} else if o.StoreDir != "" {
		st, err := store.Open(o.StoreDir, o.BudgetBytes)
		if err != nil {
			return nil, err
		}
		s.store = st
		if o.SpillDir != "" {
			openSpill := store.OpenSpill
			if o.MmapCold {
				openSpill = store.OpenSpillMmap
			}
			sp, err := openSpill(o.SpillDir, o.SpillBudgetBytes)
			if err != nil {
				return nil, err
			}
			s.spill = sp
		}
		if o.SharedHistory == nil {
			if err := s.history.Load(s.historyPath()); err != nil {
				return nil, err
			}
		}
	}
	s.engine = &exec.Engine{
		Store:                s.store,
		Spill:                s.spill,
		Policy:               o.Policy,
		Workers:              o.Workers,
		History:              s.history,
		Sched:                o.Sched,
		Order:                o.Order,
		Dispatch:             o.Dispatch,
		Reweight:             o.Reweight,
		ReleaseIntermediates: !o.KeepIntermediates,
		LiveBytes:            &s.live,
		Faults:               o.Faults,
		Codec:                o.Codec,
		Tenant:               o.Tenant,
	}
	if o.SharedTiers != nil {
		s.engine.UseTiers(o.SharedTiers)
		// Single-flight dedup of in-flight computations only makes sense on
		// a store other sessions race on, and only for sessions allowed to
		// reuse: a reuse-disabled comparator (or a NeverReuse category)
		// must pay its recomputes by contract, so those sessions keep the
		// compute-everything behaviour even when sharing tiers.
		s.engine.SingleFlight = o.Reuse && len(o.NeverReuse) == 0
	}
	return s, nil
}
