package core

import (
	"repro/internal/codec"
	"repro/internal/data"
	"repro/internal/ml"
)

// Binary value codec registrations for the pipeline composite values and the
// ML model types they carry (see codec.EncodeValue). FittedExtractor holds
// an interface; its payload recurses through codec.EncodeValue, so the
// concrete extractor types register in internal/data.

func init() {
	codec.RegisterValue(TextPair{}, "core.TextPair",
		func(w *codec.Writer, v any) error {
			p := v.(TextPair)
			w.String(p.Train)
			w.String(p.Test)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var p TextPair
			var err error
			if p.Train, err = r.String(); err != nil {
				return nil, err
			}
			if p.Test, err = r.String(); err != nil {
				return nil, err
			}
			return p, nil
		})
	codec.RegisterValue(CollectionPair{}, "core.CollectionPair",
		func(w *codec.Writer, v any) error {
			p := v.(CollectionPair)
			if err := codec.EncodeValue(w, p.Train); err != nil {
				return err
			}
			return codec.EncodeValue(w, p.Test)
		},
		func(r *codec.Reader) (any, error) {
			train, err := codec.DecodeValue(r)
			if err != nil {
				return nil, err
			}
			test, err := codec.DecodeValue(r)
			if err != nil {
				return nil, err
			}
			return CollectionPair{Train: train.(*data.Collection), Test: test.(*data.Collection)}, nil
		})
	codec.RegisterValue(FittedExtractor{}, "core.FittedExtractor",
		func(w *codec.Writer, v any) error {
			return codec.EncodeValue(w, v.(FittedExtractor).Ex)
		},
		func(r *codec.Reader) (any, error) {
			ex, err := codec.DecodeValue(r)
			if err != nil {
				return nil, err
			}
			e, ok := ex.(data.Extractor)
			if !ok {
				return nil, codec.ErrUnregistered
			}
			return FittedExtractor{Ex: e}, nil
		})
	codec.RegisterValue(FeatureColumn{}, "core.FeatureColumn",
		func(w *codec.Writer, v any) error {
			fc := v.(FeatureColumn)
			table := codec.NewStringTable()
			data.EncodeFeatureMapsSorted(w, table, fc.Train)
			data.EncodeFeatureMapsSorted(w, table, fc.Test)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			table := codec.NewReadStringTable()
			train, err := data.DecodeFeatureMapsSorted(r, table)
			if err != nil {
				return nil, err
			}
			test, err := data.DecodeFeatureMapsSorted(r, table)
			if err != nil {
				return nil, err
			}
			return FeatureColumn{Train: train, Test: test}, nil
		})
	codec.RegisterValue(VecPair{}, "core.VecPair",
		func(w *codec.Writer, v any) error {
			vp := v.(VecPair)
			data.EncodeLabeled(w, vp.Train)
			data.EncodeLabeled(w, vp.Test)
			w.Int(vp.Dim)
			w.Len(len(vp.Names))
			for _, n := range vp.Names {
				w.String(n)
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var vp VecPair
			var err error
			if vp.Train, err = data.DecodeLabeled(r); err != nil {
				return nil, err
			}
			if vp.Test, err = data.DecodeLabeled(r); err != nil {
				return nil, err
			}
			if vp.Dim, err = r.Int(); err != nil {
				return nil, err
			}
			nn, err := r.Len()
			if err != nil {
				return nil, err
			}
			vp.Names = make([]string, nn)
			for i := range vp.Names {
				if vp.Names[i], err = r.String(); err != nil {
					return nil, err
				}
			}
			return vp, nil
		})
	codec.RegisterValue(Predictions{}, "core.Predictions",
		func(w *codec.Writer, v any) error {
			p := v.(Predictions)
			for _, arr := range [][]float64{p.Scores, p.Labels, p.Gold} {
				w.Len(len(arr))
				for _, x := range arr {
					w.Float64(x)
				}
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var p Predictions
			for _, dst := range []*[]float64{&p.Scores, &p.Labels, &p.Gold} {
				n, err := r.Len()
				if err != nil {
					return nil, err
				}
				arr := make([]float64, n)
				for i := range arr {
					if arr[i], err = r.Float64(); err != nil {
						return nil, err
					}
				}
				*dst = arr
			}
			return p, nil
		})
	codec.RegisterValue(&ml.LinearModel{}, "ml.*LinearModel",
		func(w *codec.Writer, v any) error {
			m := v.(*ml.LinearModel)
			w.String(m.Kind)
			w.Float64(m.Bias)
			w.Len(len(m.Weights))
			for _, x := range m.Weights {
				w.Float64(x)
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var m ml.LinearModel
			var err error
			if m.Kind, err = r.String(); err != nil {
				return nil, err
			}
			if m.Bias, err = r.Float64(); err != nil {
				return nil, err
			}
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			m.Weights = make([]float64, n)
			for i := range m.Weights {
				if m.Weights[i], err = r.Float64(); err != nil {
					return nil, err
				}
			}
			return &m, nil
		})
	codec.RegisterValue(&ml.NaiveBayes{}, "ml.*NaiveBayes",
		func(w *codec.Writer, v any) error {
			m := v.(*ml.NaiveBayes)
			w.Int(m.Dim)
			w.Float64(m.LogPrior[0])
			w.Float64(m.LogPrior[1])
			for c := 0; c < 2; c++ {
				w.Len(len(m.LogLik[c]))
				for _, x := range m.LogLik[c] {
					w.Float64(x)
				}
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var m ml.NaiveBayes
			var err error
			if m.Dim, err = r.Int(); err != nil {
				return nil, err
			}
			if m.LogPrior[0], err = r.Float64(); err != nil {
				return nil, err
			}
			if m.LogPrior[1], err = r.Float64(); err != nil {
				return nil, err
			}
			for c := 0; c < 2; c++ {
				n, err := r.Len()
				if err != nil {
					return nil, err
				}
				ll := make([]float64, n)
				for i := range ll {
					if ll[i], err = r.Float64(); err != nil {
						return nil, err
					}
				}
				m.LogLik[c] = ll
			}
			return &m, nil
		})
	codec.RegisterValue(&ml.KMeans{}, "ml.*KMeans",
		func(w *codec.Writer, v any) error { encodeKMeans(w, v.(*ml.KMeans)); return nil },
		func(r *codec.Reader) (any, error) { return decodeKMeans(r) })
	codec.RegisterValue(ClusterResult{}, "core.ClusterResult",
		func(w *codec.Writer, v any) error {
			cr := v.(ClusterResult)
			encodeKMeans(w, cr.Model)
			w.Len(len(cr.TestAssign))
			for _, a := range cr.TestAssign {
				w.Int(a)
			}
			w.Float64(cr.Inertia)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var cr ClusterResult
			var err error
			if cr.Model, err = decodeKMeans(r); err != nil {
				return nil, err
			}
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			cr.TestAssign = make([]int, n)
			for i := range cr.TestAssign {
				if cr.TestAssign[i], err = r.Int(); err != nil {
					return nil, err
				}
			}
			if cr.Inertia, err = r.Float64(); err != nil {
				return nil, err
			}
			return cr, nil
		})
	codec.RegisterValue(ml.Metrics{}, "ml.Metrics",
		func(w *codec.Writer, v any) error {
			m := v.(ml.Metrics)
			w.Float64(m.Accuracy)
			w.Float64(m.Precision)
			w.Float64(m.Recall)
			w.Float64(m.F1)
			w.Float64(m.LogLoss)
			w.Int(m.N)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var m ml.Metrics
			var err error
			for _, dst := range []*float64{&m.Accuracy, &m.Precision, &m.Recall, &m.F1, &m.LogLoss} {
				if *dst, err = r.Float64(); err != nil {
					return nil, err
				}
			}
			if m.N, err = r.Int(); err != nil {
				return nil, err
			}
			return m, nil
		})
}

func encodeKMeans(w *codec.Writer, m *ml.KMeans) {
	w.Len(len(m.Centers))
	for _, c := range m.Centers {
		w.Len(len(c))
		for _, x := range c {
			w.Float64(x)
		}
	}
}

func decodeKMeans(r *codec.Reader) (*ml.KMeans, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	centers := make([][]float64, n)
	for i := range centers {
		k, err := r.Len()
		if err != nil {
			return nil, err
		}
		c := make([]float64, k)
		for j := range c {
			if c[j], err = r.Float64(); err != nil {
				return nil, err
			}
		}
		centers[i] = c
	}
	return &ml.KMeans{Centers: centers}, nil
}
