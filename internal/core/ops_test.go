package core

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/ml"
)

// smallPair builds a CollectionPair for operator-level tests.
func smallPair(t *testing.T, trainRows, testRows [][]string, cols ...string) CollectionPair {
	t.Helper()
	s := data.MustSchema(cols...)
	train := data.NewCollection(s)
	for _, r := range trainRows {
		if err := train.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	test := data.NewCollection(s)
	for _, r := range testRows {
		if err := test.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	return CollectionPair{Train: train, Test: test}
}

func TestCleanNormalizesAndImputes(t *testing.T) {
	cp := smallPair(t,
		[][]string{{"  Bachelors ", "Sales"}, {"Bachelors", "Tech"}, {"?", "Tech"}},
		[][]string{{"HS  grad", "?"}},
		"edu", "occ")
	out, err := NewClean().Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	cleaned := out.(CollectionPair)
	// Whitespace normalized.
	v, err := cleaned.Train.Get(0, "edu")
	if err != nil || v != "Bachelors" {
		t.Errorf("train[0].edu = %q, %v", v, err)
	}
	// Missing imputed with train mode ("Bachelors" for edu, "Tech" for occ).
	v, err = cleaned.Train.Get(2, "edu")
	if err != nil || v != "Bachelors" {
		t.Errorf("imputed edu = %q", v)
	}
	v, err = cleaned.Test.Get(0, "occ")
	if err != nil || v != "Tech" {
		t.Errorf("test imputed occ = %q", v)
	}
	// Internal whitespace collapsed.
	v, err = cleaned.Test.Get(0, "edu")
	if err != nil || v != "HS grad" {
		t.Errorf("collapsed edu = %q", v)
	}
	// Original untouched (operators are pure).
	orig, err := cp.Train.Get(0, "edu")
	if err != nil || orig != "  Bachelors " {
		t.Errorf("input mutated: %q", orig)
	}
}

func TestCleanValidation(t *testing.T) {
	if _, err := NewClean().Apply([]any{"nope"}); err == nil {
		t.Error("bad input type accepted")
	}
	if _, err := NewClean().Apply(nil); err == nil {
		t.Error("arity violation accepted")
	}
}

func TestExtractorOpProducesColumns(t *testing.T) {
	cp := smallPair(t,
		[][]string{{"30", "Sales"}, {"40", "Tech"}},
		[][]string{{"35", "Sales"}},
		"age", "occ")
	out, err := Field("occ").Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	fc := out.(FeatureColumn)
	if len(fc.Train) != 2 || len(fc.Test) != 1 {
		t.Fatalf("column sizes: %d/%d", len(fc.Train), len(fc.Test))
	}
	if fc.Train[0]["occ=Sales"] != 1 || fc.Train[1]["occ=Tech"] != 1 {
		t.Errorf("train features: %v", fc.Train)
	}
	if fc.Test[0]["occ=Sales"] != 1 {
		t.Errorf("test features: %v", fc.Test)
	}
}

func TestBucketOpFitsOnTrainOnly(t *testing.T) {
	// Train range [0,100]; test value 1000 must clamp into the last bucket
	// learned from train, proving the test half never refits.
	cp := smallPair(t,
		[][]string{{"0"}, {"100"}},
		[][]string{{"1000"}},
		"age")
	out, err := Bucket("age", 4).Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	fc := out.(FeatureColumn)
	if fc.Test[0]["age_bucket=3"] != 1 {
		t.Errorf("test bucket: %v", fc.Test[0])
	}
}

func TestFeaturizeMergesAndScales(t *testing.T) {
	cp := smallPair(t,
		[][]string{{"10", "A", "1"}, {"20", "B", "0"}},
		[][]string{{"40", "A", "1"}},
		"x", "cat", "label")
	colX, err := Field("x").Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	colCat, err := Field("cat").Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewFeaturize("label", "1").Apply([]any{cp, colX, colCat})
	if err != nil {
		t.Fatal(err)
	}
	vp := out.(VecPair)
	if vp.Dim != 3 { // x, cat=A, cat=B
		t.Fatalf("dim = %d, names %v", vp.Dim, vp.Names)
	}
	if vp.Train[0].Y != 1 || vp.Train[1].Y != 0 {
		t.Errorf("labels: %v %v", vp.Train[0].Y, vp.Train[1].Y)
	}
	// Max-abs scaling: x is scaled by train max (20), so train values are
	// 0.5 and 1.0, and the test value 40 becomes 2.0.
	xIdx := -1
	for i, n := range vp.Names {
		if n == "x" {
			xIdx = i
		}
	}
	if xIdx < 0 {
		t.Fatalf("feature x missing: %v", vp.Names)
	}
	get := func(ex data.Labeled) float64 {
		for k, i := range ex.X.Indices {
			if i == xIdx {
				return ex.X.Values[k]
			}
		}
		return 0
	}
	if get(vp.Train[0]) != 0.5 || get(vp.Train[1]) != 1.0 {
		t.Errorf("train scaling: %v %v", get(vp.Train[0]), get(vp.Train[1]))
	}
	if get(vp.Test[0]) != 2.0 {
		t.Errorf("test scaling: %v", get(vp.Test[0]))
	}
	// Test-only categories are dropped (frozen dictionary).
	for _, n := range vp.Names {
		if strings.Contains(n, "cat=C") {
			t.Errorf("phantom test feature: %v", vp.Names)
		}
	}
}

func TestClustererOnSeparableData(t *testing.T) {
	// Two clusters by the numeric column.
	var trainRows [][]string
	for i := 0; i < 20; i++ {
		trainRows = append(trainRows, []string{"1", "x"})
		trainRows = append(trainRows, []string{"100", "x"})
	}
	cp := smallPair(t, trainRows, [][]string{{"2", "x"}, {"99", "x"}}, "v", "c")
	col, err := Field("v").Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	vecOut, err := NewFeaturize("c", "never").Apply([]any{cp, col})
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewClusterer(2, 20, 1).Apply([]any{vecOut})
	if err != nil {
		t.Fatal(err)
	}
	cr := out.(ClusterResult)
	if len(cr.TestAssign) != 2 {
		t.Fatalf("assignments: %v", cr.TestAssign)
	}
	if cr.TestAssign[0] == cr.TestAssign[1] {
		t.Errorf("separable test points in one cluster: %v", cr.TestAssign)
	}
	if cr.Inertia < 0 {
		t.Errorf("inertia = %v", cr.Inertia)
	}
}

func TestClustererValidation(t *testing.T) {
	if _, err := NewClusterer(2, 10, 1).Apply([]any{"no"}); err == nil {
		t.Error("bad input accepted")
	}
	if _, err := NewClusterer(0, 10, 1).Apply([]any{VecPair{Dim: 1, Train: []data.Labeled{{}}}}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLearnerBayesKind(t *testing.T) {
	cp := smallPair(t,
		[][]string{{"A", "1"}, {"B", "0"}, {"A", "1"}, {"B", "0"}},
		[][]string{{"A", "1"}, {"B", "0"}},
		"w", "label")
	col, err := Field("w").Apply([]any{cp})
	if err != nil {
		t.Fatal(err)
	}
	vecOut, err := NewFeaturize("label", "1").Apply([]any{cp, col})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewLearner("bayes", 0, 1).Apply([]any{vecOut})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := NewPredict().Apply([]any{model, vecOut})
	if err != nil {
		t.Fatal(err)
	}
	metOut, err := NewEval("accuracy").Apply([]any{preds.(Predictions)})
	if err != nil {
		t.Fatal(err)
	}
	if met := metOut.(ml.Metrics); met.Accuracy != 1 {
		t.Errorf("bayes on trivial data: %v", met)
	}
}
