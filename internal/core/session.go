package core

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sig"
	"repro/internal/store"
)

// Session drives iterative development: one Session per developer working
// session, one Run call per iteration. The session owns the store, the
// runtime-statistics history, and the previous compiled version for change
// detection — except when Options.SharedTiers/SharedHistory lend it shared
// ones, in which case their owner (the serve layer) manages their
// lifecycle.
type Session struct {
	cfg     Options
	store   *store.Store
	spill   *store.Spill
	engine  *exec.Engine
	history *exec.History
	live    store.Gauge
	prev    *Compiled
	iter    int
}

// historyFile is the runtime-statistics snapshot kept next to the store so
// later sessions warm-start with realistic compute-cost estimates.
const historyFile = "helix-history.json"

// NewSession opens a session from the deprecated Config name.
//
// Deprecated: use Open — NewSession is a thin wrapper kept for one release.
func NewSession(cfg Config) (*Session, error) { return Open(cfg) }

// Store exposes the session's materialization store — the hot tier when a
// spill tier is configured (nil if disabled).
func (s *Session) Store() *store.Store { return s.store }

// Spill exposes the session's cold spill tier (nil if tiering is disabled).
func (s *Session) Spill() *store.Spill { return s.spill }

// TierCounters snapshots the session's cumulative cross-tier traffic
// (spills, promotions, evictions) across all iterations run so far; all
// zero without a spill tier.
func (s *Session) TierCounters() store.TierCounters { return s.engine.TierCounters() }

// History exposes the runtime-statistics history.
func (s *Session) History() *exec.History { return s.history }

// LiveBytes exposes the engine's in-memory intermediate-value gauge:
// Peak() is the high-water mark of serialized-size estimates held in
// memory across all iterations run so far (Reset() starts a fresh
// measurement window). It is how benchmarks assert the peak-memory win of
// releasing consumed intermediates.
func (s *Session) LiveBytes() *store.Gauge { return &s.live }

// Report summarizes one iteration for the user interface (and benchmarks).
type Report struct {
	Iteration int
	System    string
	Workflow  string
	Wall      time.Duration
	PlanCost  int64
	Graph     *dag.Graph
	Plan      *opt.Plan
	Nodes     []exec.NodeRun
	Changes   []sig.Change
	Outputs   map[string]any
	StoreUsed int64
	// SpillUsed is the cold tier's byte usage after the iteration (0
	// without a spill tier).
	SpillUsed int64
	// Counters consolidates this iteration's execution counters (spills,
	// promotions, retries, codec splits, ...) under one embedded block;
	// field promotion keeps the old rep.Spills-style selectors working.
	exec.Counters
	// Keys holds each node's content-address store key (the hex Merkle
	// result signature), indexed by dag.NodeID like Plan.States and Nodes.
	// The serve layer joins Plan.States==Load against it to attribute
	// loads to the tenant that materialized the bytes.
	Keys       []string
	SourceText string
}

// Counts tallies node states in the executed plan.
func (r *Report) Counts() (computed, loaded, pruned int) {
	for _, st := range r.Plan.States {
		switch st {
		case opt.Compute:
			computed++
		case opt.Load:
			loaded++
		case opt.Prune:
			pruned++
		}
	}
	return
}

// Run compiles and executes one iteration of the workflow.
func (s *Session) Run(w *Workflow) (*Report, error) {
	return s.RunCtx(context.Background(), w)
}

// RunCtx is Run under a cancellation context: a canceled ctx stops
// dispatching new nodes, waits for in-flight operators, and returns the
// context's error. Already-materialized values stay valid — a later
// session resumes from them.
func (s *Session) RunCtx(ctx context.Context, w *Workflow) (*Report, error) {
	compiled, err := Compile(w)
	if err != nil {
		return nil, err
	}
	cm, err := s.engine.BuildCostModel(compiled.Graph, compiled.Tasks)
	if err != nil {
		return nil, err
	}
	if !s.cfg.Reuse {
		for i := range cm.Loadable {
			cm.Loadable[i] = false
		}
	}
	for _, cat := range s.cfg.NeverReuse {
		for i := 0; i < compiled.Graph.Len(); i++ {
			if compiled.Category(dag.NodeID(i)) == cat {
				cm.Loadable[i] = false
			}
		}
	}
	plan, err := opt.Optimal(compiled.Graph, cm)
	if err != nil {
		return nil, err
	}
	res, err := s.engine.ExecuteCtx(ctx, compiled.Graph, compiled.Tasks, plan)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", s.iter+1, err)
	}
	var changes []sig.Change
	if s.prev != nil {
		changes = sig.Diff(s.prev.Graph, compiled.Graph)
		s.feedReuseObservations(compiled, changes)
	}
	outputs := make(map[string]any)
	for _, o := range compiled.Graph.Outputs() {
		if v, ok := res.Values[o]; ok {
			outputs[compiled.Graph.Node(o).Name] = v
		}
	}
	s.iter++
	s.prev = compiled
	keys := make([]string, len(compiled.Tasks))
	for i, t := range compiled.Tasks {
		keys[i] = t.Key
	}
	rep := &Report{
		Iteration:  s.iter,
		System:     s.cfg.SystemName,
		Workflow:   w.Name(),
		Wall:       res.Wall,
		PlanCost:   plan.Cost,
		Graph:      compiled.Graph,
		Plan:       plan,
		Nodes:      res.Nodes,
		Changes:    changes,
		Outputs:    outputs,
		Counters:   res.Counters,
		Keys:       keys,
		SourceText: w.SourceText(),
	}
	if s.store != nil {
		rep.StoreUsed = s.store.Used()
		if s.spill != nil {
			rep.SpillUsed = s.spill.Used()
		}
	}
	// Persist runtime statistics for future sessions; failure to save
	// degrades warm-start but must not fail the iteration. A shared
	// history's owner persists it itself, and a shared-tiers session has
	// no StoreDir to write into.
	if s.cfg.StoreDir != "" && s.cfg.SharedHistory == nil {
		_ = s.history.Save(s.historyPath())
	}
	return rep, nil
}

// Close flushes session state that outlives the last Run — today the
// runtime-statistics history (when this session owns one and has somewhere
// to persist it). Idempotent; safe on every exit path.
func (s *Session) Close() error {
	if s.cfg.StoreDir != "" && s.cfg.SharedHistory == nil {
		return s.history.Save(s.historyPath())
	}
	return nil
}

// historyPath locates the persisted statistics file. The store directory is
// shared with materialized values; the filename cannot collide with their
// hex-signature keys.
func (s *Session) historyPath() string {
	return filepath.Join(s.cfg.StoreDir, historyFile)
}

// feedReuseObservations teaches a reuse-probability-learning policy which
// operator categories survived this iteration's edit (their result
// signatures stayed valid) — the feedback loop behind the paper's
// "predicting reuse probability" future-work extension.
func (s *Session) feedReuseObservations(compiled *Compiled, changes []sig.Change) {
	ph, ok := s.cfg.Policy.(*opt.ProbabilisticHeuristic)
	if !ok {
		return
	}
	changedCats := make(map[string]bool)
	for _, ch := range changes {
		if ch.Kind == sig.Removed {
			continue // not present in the new graph; nothing to survive
		}
		if id := compiled.Graph.Lookup(ch.Name); id != dag.InvalidNode {
			changedCats[string(compiled.Category(id))] = true
		}
	}
	present := make(map[string]bool)
	for i := 0; i < compiled.Graph.Len(); i++ {
		present[string(compiled.Category(dag.NodeID(i)))] = true
	}
	for cat := range present {
		ph.Observe(cat, !changedCats[cat])
	}
}

// RenderPlan renders the executed plan as the text analogue of Figure 1b:
// one line per node with its state, runtime, and materialization mark.
func (r *Report) RenderPlan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iteration %d (%s) wall=%v\n", r.Iteration, r.System, r.Wall.Round(time.Microsecond))
	order, err := r.Graph.Topo()
	if err != nil {
		return "invalid graph: " + err.Error()
	}
	for _, id := range order {
		n := r.Graph.Node(id)
		nr := r.Nodes[id]
		mark := " "
		if nr.Materialized {
			mark = "*" // drum-to-the-right in Figure 1b
		}
		state := r.Plan.States[id].String()
		if r.Plan.States[id] == opt.Load {
			state = "load   " // drum-to-the-left
		}
		fmt.Fprintf(&b, "  [%-7s]%s %-12s (%s, %s) %v\n",
			state, mark, n.Name, n.Op, n.Attrs[AttrCategory], nr.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// DOT renders the executed plan as Graphviz, painting states the way the
// demo GUI does: pruned gray, loaded blue, computed white, materialized
// results double-bordered.
func (r *Report) DOT() string {
	return r.Graph.DOT(fmt.Sprintf("%s-iter%d", r.Workflow, r.Iteration), func(id dag.NodeID) string {
		var attrs []string
		switch r.Plan.States[id] {
		case opt.Prune:
			attrs = append(attrs, "style=filled", "fillcolor=gray80", "fontcolor=gray40")
		case opt.Load:
			attrs = append(attrs, "style=filled", "fillcolor=lightblue")
		}
		if r.Nodes[id].Materialized {
			attrs = append(attrs, "peripheries=2")
		}
		if r.Graph.Node(id).Attrs[AttrCategory] == string(CatML) {
			attrs = append(attrs, "color=orange")
		}
		return strings.Join(attrs, ", ")
	})
}
