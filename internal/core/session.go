package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sig"
	"repro/internal/store"
)

// Config selects a system behaviour for a Session. The comparator systems of
// the paper's Figure 2 are all expressible as Configs (see the systems
// package).
type Config struct {
	// SystemName labels reports ("helix", "deepdive", ...).
	SystemName string
	// StoreDir is the materialization directory; empty disables persistence
	// entirely (no loads, no stores).
	StoreDir string
	// BudgetBytes caps the store (<=0 = unlimited).
	BudgetBytes int64
	// SpillDir is the cold-tier spill directory: values the hot store's
	// budget rejects are admitted there instead of being dropped, and cold
	// hits are promoted back on load. Empty disables tiering. Requires
	// StoreDir.
	SpillDir string
	// SpillBudgetBytes caps the spill tier (<=0 = unlimited). The spill
	// tier deletes its least-recently-accessed entries to admit new values,
	// so unlike BudgetBytes this cap bounds retention, not admission.
	SpillBudgetBytes int64
	// Policy is the online materialization policy; nil = never materialize.
	Policy opt.MatPolicy
	// Reuse enables cross-iteration reuse (the recomputation optimizer may
	// choose load states). Without it every iteration recomputes its full
	// program slice.
	Reuse bool
	// NeverReuse lists operator categories that must always recompute even
	// when a valid materialization exists — DeepDive's non-configurable ML
	// and evaluation components are modeled this way.
	NeverReuse []Category
	// Workers bounds intra-iteration parallelism.
	Workers int
	// Sched selects the execution scheduling strategy; the zero value is
	// the dependency-counting dataflow scheduler. LevelBarrier reproduces
	// the original wave executor for A/B comparisons.
	Sched exec.Strategy
	// Order selects the dataflow ready-queue priority; the zero value is
	// cost-aware critical-path-first. exec.MinID restores the original
	// smallest-ID dispatch for A/B comparisons.
	Order exec.Ordering
	// Dispatch selects how the dataflow scheduler hands ready nodes to
	// workers; the zero value is work-stealing (per-worker deques).
	// exec.GlobalHeap restores the single shared ready heap for A/B
	// comparisons.
	Dispatch exec.DispatchMode
	// Reweight selects online re-prioritization of the remaining DAG from
	// measured durations; the zero value is exec.Adaptive.
	// exec.ReweightOff pins the weights computed at the top of each
	// iteration for A/B comparisons.
	Reweight exec.Reweight
	// KeepIntermediates retains every non-pruned value in memory for the
	// whole iteration. By default the session releases a non-output value
	// the moment its last consumer has run (memory-bounded execution;
	// Report and Outputs only ever read output values, so nothing is
	// lost). Set it for debugging sessions that want to inspect
	// intermediates post-hoc, or to A/B the peak-memory win.
	KeepIntermediates bool
	// Faults is the execution-time fault policy: per-node retry budget with
	// backoff for transient failures, per-node deadlines, and error
	// classification. The zero value disables retries and deadlines (one
	// attempt, fail-fast — the historical behaviour).
	Faults exec.FaultPolicy
	// Codec selects the value serialization format (see store.Codec). The
	// zero value resolves to the reflection-free binary codec;
	// store.CodecGob forces the reflective A/B reference.
	Codec store.Codec
	// MmapCold serves cold-tier reads zero-copy from a read-only memory
	// mapping instead of a buffered file read (store.OpenSpillMmap).
	// Requires SpillDir; buffered fallback applies per-file and on
	// platforms without mmap support.
	MmapCold bool
}

// Session drives iterative development: one Session per developer working
// session, one Run call per iteration. The session owns the store, the
// runtime-statistics history, and the previous compiled version for change
// detection.
type Session struct {
	cfg     Config
	store   *store.Store
	spill   *store.Spill
	engine  *exec.Engine
	history *exec.History
	live    store.Gauge
	prev    *Compiled
	iter    int
}

// historyFile is the runtime-statistics snapshot kept next to the store so
// later sessions warm-start with realistic compute-cost estimates.
const historyFile = "helix-history.json"

// NewSession opens the materialization store (if configured) and prepares
// the engine. Persisted runtime statistics from earlier sessions over the
// same StoreDir are loaded automatically.
func NewSession(cfg Config) (*Session, error) {
	s := &Session{cfg: cfg, history: exec.NewHistory()}
	if cfg.SpillDir != "" && cfg.StoreDir == "" {
		return nil, fmt.Errorf("core: SpillDir %q configured without a StoreDir hot tier", cfg.SpillDir)
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, cfg.BudgetBytes)
		if err != nil {
			return nil, err
		}
		s.store = st
		if cfg.SpillDir != "" {
			openSpill := store.OpenSpill
			if cfg.MmapCold {
				openSpill = store.OpenSpillMmap
			}
			sp, err := openSpill(cfg.SpillDir, cfg.SpillBudgetBytes)
			if err != nil {
				return nil, err
			}
			s.spill = sp
		}
		if err := s.history.Load(s.historyPath()); err != nil {
			return nil, err
		}
	}
	s.engine = &exec.Engine{
		Store:                s.store,
		Spill:                s.spill,
		Policy:               cfg.Policy,
		Workers:              cfg.Workers,
		History:              s.history,
		Sched:                cfg.Sched,
		Order:                cfg.Order,
		Dispatch:             cfg.Dispatch,
		Reweight:             cfg.Reweight,
		ReleaseIntermediates: !cfg.KeepIntermediates,
		LiveBytes:            &s.live,
		Faults:               cfg.Faults,
		Codec:                cfg.Codec,
	}
	return s, nil
}

// Store exposes the session's materialization store — the hot tier when a
// spill tier is configured (nil if disabled).
func (s *Session) Store() *store.Store { return s.store }

// Spill exposes the session's cold spill tier (nil if tiering is disabled).
func (s *Session) Spill() *store.Spill { return s.spill }

// TierCounters snapshots the session's cumulative cross-tier traffic
// (spills, promotions, evictions) across all iterations run so far; all
// zero without a spill tier.
func (s *Session) TierCounters() store.TierCounters { return s.engine.TierCounters() }

// History exposes the runtime-statistics history.
func (s *Session) History() *exec.History { return s.history }

// LiveBytes exposes the engine's in-memory intermediate-value gauge:
// Peak() is the high-water mark of serialized-size estimates held in
// memory across all iterations run so far (Reset() starts a fresh
// measurement window). It is how benchmarks assert the peak-memory win of
// releasing consumed intermediates.
func (s *Session) LiveBytes() *store.Gauge { return &s.live }

// Report summarizes one iteration for the user interface (and benchmarks).
type Report struct {
	Iteration int
	System    string
	Workflow  string
	Wall      time.Duration
	PlanCost  int64
	Graph     *dag.Graph
	Plan      *opt.Plan
	Nodes     []exec.NodeRun
	Changes   []sig.Change
	Outputs   map[string]any
	StoreUsed int64
	// SpillUsed is the cold tier's byte usage after the iteration (0
	// without a spill tier).
	SpillUsed int64
	// Spills, Promotions and Evictions are this iteration's cross-tier
	// traffic: hot-budget rejections admitted cold, cold hits moved back
	// hot, and hot entries demoted to make room for promotions.
	Spills     int64
	Promotions int64
	Evictions  int64
	// Retries counts transient-failure retries the fault policy performed
	// this iteration; Recomputes counts sub-DAG recomputations triggered by
	// failed or corrupt loads; CorruptFrames counts cold-tier checksum
	// failures detected; TierDisabled reports whether the cold-tier circuit
	// breaker tripped during (or remains open after) the iteration.
	Retries       int64
	Recomputes    int64
	CorruptFrames int64
	TierDisabled  bool
	// GobEncodes and BinaryEncodes split this iteration's materialization
	// encodes by the codec that actually produced the bytes (gob includes
	// the binary codec's fallback for unregistered types).
	GobEncodes    int64
	BinaryEncodes int64
	// MmapColdReads and BufferedColdReads split this iteration's cold-tier
	// loads by read path (zero-copy memory mapping vs buffered file read).
	MmapColdReads     int64
	BufferedColdReads int64
	SourceText        string
}

// Counts tallies node states in the executed plan.
func (r *Report) Counts() (computed, loaded, pruned int) {
	for _, st := range r.Plan.States {
		switch st {
		case opt.Compute:
			computed++
		case opt.Load:
			loaded++
		case opt.Prune:
			pruned++
		}
	}
	return
}

// Run compiles and executes one iteration of the workflow.
func (s *Session) Run(w *Workflow) (*Report, error) {
	compiled, err := Compile(w)
	if err != nil {
		return nil, err
	}
	cm, err := s.engine.BuildCostModel(compiled.Graph, compiled.Tasks)
	if err != nil {
		return nil, err
	}
	if !s.cfg.Reuse {
		for i := range cm.Loadable {
			cm.Loadable[i] = false
		}
	}
	for _, cat := range s.cfg.NeverReuse {
		for i := 0; i < compiled.Graph.Len(); i++ {
			if compiled.Category(dag.NodeID(i)) == cat {
				cm.Loadable[i] = false
			}
		}
	}
	plan, err := opt.Optimal(compiled.Graph, cm)
	if err != nil {
		return nil, err
	}
	res, err := s.engine.Execute(compiled.Graph, compiled.Tasks, plan)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", s.iter+1, err)
	}
	var changes []sig.Change
	if s.prev != nil {
		changes = sig.Diff(s.prev.Graph, compiled.Graph)
		s.feedReuseObservations(compiled, changes)
	}
	outputs := make(map[string]any)
	for _, o := range compiled.Graph.Outputs() {
		if v, ok := res.Values[o]; ok {
			outputs[compiled.Graph.Node(o).Name] = v
		}
	}
	s.iter++
	s.prev = compiled
	rep := &Report{
		Iteration:         s.iter,
		System:            s.cfg.SystemName,
		Workflow:          w.Name(),
		Wall:              res.Wall,
		PlanCost:          plan.Cost,
		Graph:             compiled.Graph,
		Plan:              plan,
		Nodes:             res.Nodes,
		Changes:           changes,
		Outputs:           outputs,
		Spills:            res.Spills,
		Promotions:        res.Promotions,
		Evictions:         res.Evictions,
		Retries:           res.Retries,
		Recomputes:        res.Recomputes,
		CorruptFrames:     res.CorruptFrames,
		TierDisabled:      res.TierDisabled,
		GobEncodes:        res.GobEncodes,
		BinaryEncodes:     res.BinaryEncodes,
		MmapColdReads:     res.MmapColdReads,
		BufferedColdReads: res.BufferedColdReads,
		SourceText:        w.SourceText(),
	}
	if s.store != nil {
		rep.StoreUsed = s.store.Used()
		if s.spill != nil {
			rep.SpillUsed = s.spill.Used()
		}
		// Persist runtime statistics for future sessions; failure to save
		// degrades warm-start but must not fail the iteration.
		_ = s.history.Save(s.historyPath())
	}
	return rep, nil
}

// historyPath locates the persisted statistics file. The store directory is
// shared with materialized values; the filename cannot collide with their
// hex-signature keys.
func (s *Session) historyPath() string {
	return filepath.Join(s.cfg.StoreDir, historyFile)
}

// feedReuseObservations teaches a reuse-probability-learning policy which
// operator categories survived this iteration's edit (their result
// signatures stayed valid) — the feedback loop behind the paper's
// "predicting reuse probability" future-work extension.
func (s *Session) feedReuseObservations(compiled *Compiled, changes []sig.Change) {
	ph, ok := s.cfg.Policy.(*opt.ProbabilisticHeuristic)
	if !ok {
		return
	}
	changedCats := make(map[string]bool)
	for _, ch := range changes {
		if ch.Kind == sig.Removed {
			continue // not present in the new graph; nothing to survive
		}
		if id := compiled.Graph.Lookup(ch.Name); id != dag.InvalidNode {
			changedCats[string(compiled.Category(id))] = true
		}
	}
	present := make(map[string]bool)
	for i := 0; i < compiled.Graph.Len(); i++ {
		present[string(compiled.Category(dag.NodeID(i)))] = true
	}
	for cat := range present {
		ph.Observe(cat, !changedCats[cat])
	}
}

// RenderPlan renders the executed plan as the text analogue of Figure 1b:
// one line per node with its state, runtime, and materialization mark.
func (r *Report) RenderPlan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iteration %d (%s) wall=%v\n", r.Iteration, r.System, r.Wall.Round(time.Microsecond))
	order, err := r.Graph.Topo()
	if err != nil {
		return "invalid graph: " + err.Error()
	}
	for _, id := range order {
		n := r.Graph.Node(id)
		nr := r.Nodes[id]
		mark := " "
		if nr.Materialized {
			mark = "*" // drum-to-the-right in Figure 1b
		}
		state := r.Plan.States[id].String()
		if r.Plan.States[id] == opt.Load {
			state = "load   " // drum-to-the-left
		}
		fmt.Fprintf(&b, "  [%-7s]%s %-12s (%s, %s) %v\n",
			state, mark, n.Name, n.Op, n.Attrs[AttrCategory], nr.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// DOT renders the executed plan as Graphviz, painting states the way the
// demo GUI does: pruned gray, loaded blue, computed white, materialized
// results double-bordered.
func (r *Report) DOT() string {
	return r.Graph.DOT(fmt.Sprintf("%s-iter%d", r.Workflow, r.Iteration), func(id dag.NodeID) string {
		var attrs []string
		switch r.Plan.States[id] {
		case opt.Prune:
			attrs = append(attrs, "style=filled", "fillcolor=gray80", "fontcolor=gray40")
		case opt.Load:
			attrs = append(attrs, "style=filled", "fillcolor=lightblue")
		}
		if r.Nodes[id].Materialized {
			attrs = append(attrs, "peripheries=2")
		}
		if r.Graph.Node(id).Attrs[AttrCategory] == string(CatML) {
			attrs = append(attrs, "color=orange")
		}
		return strings.Join(attrs, ", ")
	})
}
