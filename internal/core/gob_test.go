package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/store"
)

// roundTrip pushes a value through the store codec (gob + custom encoders).
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	raw, err := store.Encode(v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, err := store.Decode(raw)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return got
}

func TestFeatureColumnRoundTrip(t *testing.T) {
	fc := FeatureColumn{
		Train: []data.FeatureMap{{"age": 39, "occ=Sales": 1}, {"age": 20}},
		Test:  []data.FeatureMap{{"age": 50}},
	}
	got := roundTrip(t, fc).(FeatureColumn)
	if !reflect.DeepEqual(got, fc) {
		t.Errorf("round trip:\n%v\n%v", got, fc)
	}
}

func TestFeatureColumnEmpty(t *testing.T) {
	got := roundTrip(t, FeatureColumn{}).(FeatureColumn)
	if len(got.Train) != 0 || len(got.Test) != 0 {
		t.Errorf("empty round trip: %v", got)
	}
}

func TestVecPairRoundTrip(t *testing.T) {
	vp := VecPair{
		Train: []data.Labeled{
			{X: data.Vector{Indices: []int{0, 3}, Values: []float64{1.5, -2}}, Y: 1},
			{X: data.Vector{}, Y: 0},
		},
		Test:  []data.Labeled{{X: data.Vector{Indices: []int{2}, Values: []float64{7}}, Y: 1}},
		Dim:   4,
		Names: []string{"a", "b", "c", "d"},
	}
	got := roundTrip(t, vp).(VecPair)
	if got.Dim != 4 || !reflect.DeepEqual(got.Names, vp.Names) {
		t.Errorf("metadata lost: %+v", got)
	}
	if len(got.Train) != 2 || got.Train[0].Y != 1 {
		t.Errorf("train lost: %+v", got.Train)
	}
	if !reflect.DeepEqual(got.Train[0].X.Indices, vp.Train[0].X.Indices) {
		t.Errorf("indices: %v", got.Train[0].X.Indices)
	}
	if !reflect.DeepEqual(got.Test, vp.Test) {
		t.Errorf("test: %v", got.Test)
	}
}

func TestPredictionsRoundTrip(t *testing.T) {
	p := Predictions{Scores: []float64{0.5, -1}, Labels: []float64{1, 0}, Gold: []float64{1, 1}}
	got := roundTrip(t, p).(Predictions)
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip: %+v vs %+v", got, p)
	}
}

func TestCollectionPairRoundTrip(t *testing.T) {
	s := data.MustSchema("a", "b")
	train := data.NewCollection(s)
	if err := train.Append("1", "x"); err != nil {
		t.Fatal(err)
	}
	test := data.NewCollection(s)
	if err := test.Append("2", "y"); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, CollectionPair{Train: train, Test: test}).(CollectionPair)
	if got.Train.Len() != 1 || got.Test.Len() != 1 {
		t.Fatalf("rows lost: %+v", got)
	}
	v, err := got.Train.Get(0, "b")
	if err != nil || v != "x" {
		t.Errorf("train value: %q, %v", v, err)
	}
	// Schema index rebuilt, not just names.
	if got.Test.Schema.Index("b") != 1 {
		t.Error("schema index not rebuilt")
	}
}

func TestFittedExtractorRoundTrip(t *testing.T) {
	b := &data.Bucketizer{Col: "age", Bins: 5, Lo: 10, Width: 4, Fitted: true}
	got := roundTrip(t, FittedExtractor{Ex: b}).(FittedExtractor)
	gb, ok := got.Ex.(*data.Bucketizer)
	if !ok {
		t.Fatalf("extractor type %T", got.Ex)
	}
	if gb.Lo != 10 || gb.Width != 4 || !gb.Fitted {
		t.Errorf("fitted state lost: %+v", gb)
	}
}

func TestGobDecodeCorrupt(t *testing.T) {
	var fc FeatureColumn
	if err := fc.GobDecode([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("corrupt FeatureColumn accepted")
	}
	var vp VecPair
	if err := vp.GobDecode([]byte{0x01}); err == nil {
		t.Error("corrupt VecPair accepted")
	}
	var p Predictions
	if err := p.GobDecode([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("corrupt Predictions accepted")
	}
}

// Property: random feature columns survive the codec bit-exactly.
func TestQuickFeatureColumnRoundTrip(t *testing.T) {
	names := []string{"age", "edu=BS", "occ=Sales", "hours", "cross=a|b"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func(n int) []data.FeatureMap {
			out := make([]data.FeatureMap, n)
			for i := range out {
				fm := make(data.FeatureMap)
				for k := 0; k < rng.Intn(4); k++ {
					fm[names[rng.Intn(len(names))]] = float64(rng.Intn(1000)) / 10
				}
				out[i] = fm
			}
			return out
		}
		fc := FeatureColumn{Train: gen(rng.Intn(20)), Test: gen(rng.Intn(10))}
		raw, err := store.Encode(fc)
		if err != nil {
			return false
		}
		got, err := store.Decode(raw)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.(FeatureColumn), fc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
