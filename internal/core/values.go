package core

import (
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/store"
)

// The value types flowing between census-style workflow operators. Each pair
// carries the train and test halves together so every operator downstream of
// the source applies consistently to both (the paper's FileSource declares
// train and test paths in one statement).

// TextPair is raw train/test text as produced by a source operator.
type TextPair struct {
	Train, Test string
}

// CollectionPair is parsed train/test rows.
type CollectionPair struct {
	Train, Test *data.Collection
}

// FittedExtractor is a feature extractor fitted on the training collection,
// kept for workflows that want lazy (at-featurize-time) extraction.
type FittedExtractor struct {
	Ex data.Extractor
}

// FeatureColumn is one extractor's output over every row of both halves —
// the value of the extractor nodes in Figure 1b (age, edu, ageBucket, ...).
// Each extractor node carries real per-row work, so HELIX can reuse
// unchanged columns when a prep edit adds or removes one extractor.
type FeatureColumn struct {
	Train, Test []data.FeatureMap
}

// VecPair is the vectorized dataset: the output of a featurize node
// ("income results_from rows with_labels target"), ML-ready.
type VecPair struct {
	Train, Test []data.Labeled
	// Dim is the feature-space size (train dictionary length).
	Dim int
	// Names are the dictionary's feature names, index-aligned, kept so
	// post-processing UDFs can report per-feature diagnostics.
	Names []string
}

// Predictions carries model outputs over the test half.
type Predictions struct {
	// Scores are raw margins; Labels are thresholded 0/1 predictions.
	Scores, Labels []float64
	// Gold are the test labels, copied through for evaluation operators.
	Gold []float64
}

func init() {
	// Register every built-in value type with the materialization store's
	// codec. Workloads registering their own types do the same in their
	// init.
	store.Register(TextPair{})
	store.Register(CollectionPair{})
	store.Register(FittedExtractor{})
	store.Register(FeatureColumn{})
	store.Register(data.FeatureMap{})
	store.Register(VecPair{})
	store.Register(Predictions{})
	store.Register(&ml.LinearModel{})
	store.Register(&ml.NaiveBayes{})
	store.Register(&ml.KMeans{})
	store.Register(ClusterResult{})
	store.Register(ml.Metrics{})
	store.Register(&data.FieldExtractor{})
	store.Register(&data.Bucketizer{})
	store.Register(&data.InteractionFeature{})
}
