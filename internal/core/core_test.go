package core

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/ml"
	"repro/internal/opt"
	"repro/internal/sig"
)

// censusCSV is a tiny deterministic dataset: income > 50K iff age >= 40 and
// education is Bachelors (learnable from the features the workflow builds).
func censusCSV(rows int, offset int) string {
	var b strings.Builder
	edus := []string{"HS", "Bachelors", "Masters"}
	occs := []string{"Sales", "Tech", "Admin"}
	for i := 0; i < rows; i++ {
		age := 20 + (i*7+offset)%45
		edu := edus[(i+offset)%3]
		occ := occs[(i*2+offset)%3]
		target := "<=50K"
		if age >= 40 && edu == "Bachelors" {
			target = ">50K"
		}
		b.WriteString(strings.Join([]string{
			itoa(age), edu, occ, target,
		}, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var d []byte
	for i > 0 {
		d = append([]byte{byte('0' + i%10)}, d...)
		i /= 10
	}
	return string(d)
}

// censusWorkflow builds the Figure-1a workflow over synthetic text. The
// regParam and metric arguments are the iteration knobs.
func censusWorkflow(regParam float64, metric string, withOcc bool) *Workflow {
	wf := NewWorkflow("census")
	wf.Source("data", NewLiteralSource(censusCSV(200, 0), censusCSV(60, 1)))
	wf.Apply("rows", NewCSVScanner("age", "education", "occupation", "target"), "data")
	wf.Apply("age", Field("age"), "rows")
	wf.Apply("edu", Field("education"), "rows")
	wf.Apply("ageBucket", Bucket("age", 10), "rows")
	extractors := []string{"age", "edu", "ageBucket"}
	if withOcc {
		wf.Apply("occ", Field("occupation"), "rows")
		extractors = append(extractors, "occ")
	}
	wf.Apply("income", NewFeaturize("target", ">50K"), append([]string{"rows"}, extractors...)...)
	wf.Apply("model", NewLearner("logreg", regParam, 8), "income")
	wf.Apply("predictions", NewPredict(), "model", "income")
	wf.Apply("checked", NewEval(metric), "predictions")
	wf.Output("predictions").Output("checked")
	return wf
}

func TestWorkflowBuilderErrors(t *testing.T) {
	wf := NewWorkflow("bad")
	wf.Source("a", NewLiteralSource("x", "y"))
	wf.Source("a", NewLiteralSource("x", "y")) // duplicate
	if _, err := Compile(wf); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate not reported: %v", err)
	}

	wf2 := NewWorkflow("bad2")
	wf2.Apply("b", NewCSVScanner("c"), "missing")
	if _, err := Compile(wf2); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("undeclared input not reported: %v", err)
	}

	wf3 := NewWorkflow("bad3")
	wf3.Source("a", nil)
	if _, err := Compile(wf3); err == nil {
		t.Error("nil operator accepted")
	}

	wf4 := NewWorkflow("bad4")
	wf4.Output("ghost")
	if _, err := Compile(wf4); err == nil {
		t.Error("output of undeclared node accepted")
	}

	if _, err := Compile(NewWorkflow("empty")); err == nil {
		t.Error("empty workflow accepted")
	}

	wf5 := NewWorkflow("no-output")
	wf5.Source("a", NewLiteralSource("x", "y"))
	if _, err := Compile(wf5); err == nil {
		t.Error("workflow without outputs accepted")
	}
}

func TestCompileGraphShape(t *testing.T) {
	wf := censusWorkflow(0.1, "accuracy", true)
	c, err := Compile(wf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.Len() != 10 {
		t.Errorf("nodes = %d, want 10", c.Graph.Len())
	}
	income := c.Graph.Lookup("income")
	if income == dag.InvalidNode {
		t.Fatal("income missing")
	}
	if got := len(c.Graph.Parents(income)); got != 5 {
		t.Errorf("income parents = %d, want 5 (rows + 4 extractors)", got)
	}
	if !c.Graph.Node(c.Graph.Lookup("checked")).Output {
		t.Error("checked not marked output")
	}
	if c.Category(c.Graph.Lookup("model")) != CatML {
		t.Error("model category wrong")
	}
	if c.Category(c.Graph.Lookup("checked")) != CatEval {
		t.Error("checked category wrong")
	}
	// Signatures are present and unique.
	seen := map[sig.Signature]bool{}
	for _, s := range c.Sigs {
		if s == "" || seen[s] {
			t.Fatalf("bad signature set: %v", c.Sigs)
		}
		seen[s] = true
	}
}

func TestCompileSignatureStability(t *testing.T) {
	c1, err := Compile(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Sigs {
		if c1.Sigs[i] != c2.Sigs[i] {
			t.Errorf("signature %d unstable", i)
		}
	}
	// Changing regParam changes only model and downstream.
	c3, err := Compile(censusWorkflow(0.5, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"data", "rows", "age", "income"} {
		i := c1.Graph.Lookup(name)
		if c1.Sigs[i] != c3.Sigs[i] {
			t.Errorf("%s signature changed by regParam edit", name)
		}
	}
	for _, name := range []string{"model", "predictions", "checked"} {
		i := c1.Graph.Lookup(name)
		if c1.Sigs[i] == c3.Sigs[i] {
			t.Errorf("%s signature unchanged by regParam edit", name)
		}
	}
}

func TestSessionFirstRunComputesAll(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		Policy: opt.OnlineHeuristic{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	computed, loaded, pruned := rep.Counts()
	if loaded != 0 || pruned != 0 {
		t.Errorf("first run: computed=%d loaded=%d pruned=%d", computed, loaded, pruned)
	}
	met, ok := rep.Outputs["checked"].(ml.Metrics)
	if !ok {
		t.Fatalf("checked output type %T", rep.Outputs["checked"])
	}
	if met.Accuracy < 0.8 {
		t.Errorf("census accuracy = %v, want >= 0.8", met.Accuracy)
	}
	if rep.Iteration != 1 || rep.Wall <= 0 {
		t.Errorf("report bookkeeping: %+v", rep)
	}
}

func TestSessionMLIterationReusesPrep(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(censusWorkflow(0.1, "accuracy", true)); err != nil {
		t.Fatal(err)
	}
	// Iteration 2: ML edit (regParam). Prep should be loaded or pruned, not
	// recomputed.
	rep2, err := s.Run(censusWorkflow(0.5, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	g := rep2.Graph
	incomeState := rep2.Plan.States[g.Lookup("income")]
	if incomeState == opt.Compute {
		t.Errorf("income recomputed on ML iteration (state=%v)", incomeState)
	}
	modelState := rep2.Plan.States[g.Lookup("model")]
	if modelState != opt.Compute {
		t.Errorf("model not recomputed after regParam edit (state=%v)", modelState)
	}
	// Change list flags the learner and downstream, not upstream prep.
	changed := map[string]bool{}
	for _, ch := range rep2.Changes {
		changed[ch.Name] = true
	}
	if !changed["model"] || !changed["predictions"] || !changed["checked"] {
		t.Errorf("changes missing ML nodes: %v", rep2.Changes)
	}
	if changed["rows"] || changed["income"] {
		t.Errorf("prep nodes spuriously changed: %v", rep2.Changes)
	}
}

func TestSessionSpillTierKeepsReuseUnderPressure(t *testing.T) {
	// Measure the workflow's full materialization footprint unbudgeted.
	probe, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	repProbe, err := probe.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	if repProbe.Spills != 0 || repProbe.SpillUsed != 0 {
		t.Fatalf("untiered session reported spill traffic: spills=%d spillUsed=%d", repProbe.Spills, repProbe.SpillUsed)
	}
	total := repProbe.StoreUsed
	if total == 0 {
		t.Fatal("probe materialized nothing")
	}

	// A hot tier at half that footprint must spill, stay inside its
	// budget, and still let the next iteration reuse data prep.
	s, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		BudgetBytes: total / 2, SpillDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Spills == 0 {
		t.Fatalf("no spills with hot budget %d of %d footprint", total/2, total)
	}
	if rep1.StoreUsed > total/2 {
		t.Fatalf("hot tier used %d over its %d budget", rep1.StoreUsed, total/2)
	}
	if rep1.SpillUsed == 0 {
		t.Fatal("spill tier empty despite spills")
	}
	// The tiered first iteration must produce the same outputs as the
	// unbudgeted probe ran on the identical workflow version.
	if got, want := rep1.Outputs["checked"].(ml.Metrics), repProbe.Outputs["checked"].(ml.Metrics); got.Accuracy != want.Accuracy {
		t.Errorf("outputs diverged under tiering: %+v vs %+v", got, want)
	}
	rep2, err := s.Run(censusWorkflow(0.5, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	g := rep2.Graph
	if st := rep2.Plan.States[g.Lookup("income")]; st == opt.Compute {
		t.Errorf("income recomputed on ML iteration despite tiered store (state=%v)", st)
	}
	c := s.TierCounters()
	if c.Spills == 0 || c.Spills != rep1.Spills+rep2.Spills {
		t.Errorf("session tier counters %+v disagree with reports (%d + %d spills)", c, rep1.Spills, rep2.Spills)
	}
	if s.Spill() == nil || s.Spill().Used() != rep2.SpillUsed {
		t.Errorf("Session.Spill() usage %v disagrees with report %d", s.Spill(), rep2.SpillUsed)
	}
}

func TestSessionSpillRequiresStore(t *testing.T) {
	if _, err := NewSession(Config{SystemName: "helix", SpillDir: t.TempDir()}); err == nil {
		t.Fatal("NewSession accepted a spill tier without a hot store")
	}
}

func TestSessionIdenticalRerunLoadsOutputsOnly(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(censusWorkflow(0.1, "accuracy", true)); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	computed, loaded, _ := rep2.Counts()
	if computed != 0 {
		t.Errorf("identical rerun computed %d nodes", computed)
	}
	if loaded == 0 {
		t.Error("identical rerun loaded nothing")
	}
	if len(rep2.Changes) != 0 {
		t.Errorf("identical rerun reports changes: %v", rep2.Changes)
	}
	// Outputs still present.
	if _, ok := rep2.Outputs["checked"].(ml.Metrics); !ok {
		t.Errorf("outputs missing after pure-load run: %v", rep2.Outputs)
	}
}

func TestSessionNoReuseRecomputesEverything(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "keystoneml", StoreDir: t.TempDir(),
		Policy: opt.MaterializeNone{}, Reuse: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := s.Run(censusWorkflow(0.1, "accuracy", true))
		if err != nil {
			t.Fatal(err)
		}
		computed, loaded, _ := rep.Counts()
		if loaded != 0 {
			t.Errorf("iteration %d loaded %d nodes with reuse disabled", i+1, loaded)
		}
		if computed != rep.Graph.Len() {
			t.Errorf("iteration %d computed %d/%d", i+1, computed, rep.Graph.Len())
		}
	}
}

func TestSessionNeverReuseCategory(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "deepdive", StoreDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
		NeverReuse: []Category{CatML, CatEval},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(censusWorkflow(0.1, "accuracy", true)); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	g := rep2.Graph
	for _, name := range []string{"model", "predictions", "checked"} {
		if st := rep2.Plan.States[g.Lookup(name)]; st != opt.Compute {
			t.Errorf("%s state = %v, want compute (NeverReuse)", name, st)
		}
	}
	// Prep is still reusable.
	if st := rep2.Plan.States[g.Lookup("income")]; st == opt.Compute {
		t.Errorf("income recomputed despite materialize-all reuse")
	}
}

func TestSessionDataPrepIterationInvalidatesDownstream(t *testing.T) {
	s, err := NewSession(Config{
		SystemName: "helix", StoreDir: t.TempDir(),
		Policy: opt.MaterializeAll{}, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(censusWorkflow(0.1, "accuracy", false)); err != nil {
		t.Fatal(err)
	}
	// Add the occupation extractor: featurize and downstream must recompute.
	rep2, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	g := rep2.Graph
	for _, name := range []string{"income", "model", "predictions", "checked"} {
		if st := rep2.Plan.States[g.Lookup(name)]; st != opt.Compute {
			t.Errorf("%s state = %v, want compute after prep edit", name, st)
		}
	}
	changed := map[string]bool{}
	for _, ch := range rep2.Changes {
		changed[ch.Name] = true
	}
	if !changed["occ"] {
		t.Errorf("added node not in changes: %v", rep2.Changes)
	}
}

func TestSessionSlicePrunesDeadExtractor(t *testing.T) {
	// Declare an extractor that no featurize consumes: it must be pruned.
	wf := censusWorkflow(0.1, "accuracy", true)
	wf.Apply("race", Field("race"), "rows") // dead: not an income input
	s, err := NewSession(Config{SystemName: "helix", Reuse: false})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if st := rep.Plan.States[rep.Graph.Lookup("race")]; st != opt.Prune {
		t.Errorf("dead extractor state = %v, want prune", st)
	}
}

func TestReportRendering(t *testing.T) {
	s, err := NewSession(Config{SystemName: "helix", StoreDir: t.TempDir(), Policy: opt.MaterializeAll{}, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(censusWorkflow(0.1, "accuracy", true))
	if err != nil {
		t.Fatal(err)
	}
	plan := rep.RenderPlan()
	for _, want := range []string{"compute", "income", "model"} {
		if !strings.Contains(plan, want) {
			t.Errorf("RenderPlan missing %q:\n%s", want, plan)
		}
	}
	dot := rep.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "peripheries=2") {
		t.Errorf("DOT missing materialization marks:\n%s", dot)
	}
	src := rep.SourceText
	if !strings.Contains(src, "results_from learner") || !strings.Contains(src, "regParam=0.1") {
		t.Errorf("SourceText missing learner decl:\n%s", src)
	}
}

func TestUDFOperator(t *testing.T) {
	udf := NewUDF("double", CatPrep, map[string]string{"k": "2"}, "v1", func(in []any) (any, error) {
		return in[0].(TextPair).Train + in[0].(TextPair).Train, nil
	})
	wf := NewWorkflow("udf")
	wf.Source("src", NewLiteralSource("ab", ""))
	wf.Apply("doubled", udf, "src")
	wf.Output("doubled")
	s, err := NewSession(Config{SystemName: "t"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outputs["doubled"].(string) != "abab" {
		t.Errorf("udf output = %v", rep.Outputs["doubled"])
	}
	// Nil function errors at run time.
	bad := NewUDF("bad", CatPrep, nil, "v1", nil)
	wf2 := NewWorkflow("udf2")
	wf2.Source("src", NewLiteralSource("x", ""))
	wf2.Apply("bad", bad, "src")
	wf2.Output("bad")
	if _, err := s.Run(wf2); err == nil {
		t.Error("nil UDF accepted")
	}
}

func TestOperatorInputValidation(t *testing.T) {
	if _, err := NewCSVScanner("a").Apply([]any{"not a text pair"}); err == nil {
		t.Error("scanner type check missing")
	}
	if _, err := NewCSVScanner("a").Apply(nil); err == nil {
		t.Error("scanner arity check missing")
	}
	if _, err := Field("x").Apply([]any{42}); err == nil {
		t.Error("field type check missing")
	}
	if _, err := NewFeaturize("t", "1").Apply([]any{CollectionPair{}}); err == nil {
		t.Error("featurize arity check missing")
	}
	if _, err := NewLearner("nope", 0, 1).Apply([]any{VecPair{}}); err == nil {
		t.Error("unknown learner kind accepted")
	}
	if _, err := NewPredict().Apply([]any{1, 2}); err == nil {
		t.Error("predict type check missing")
	}
	if _, err := NewEval("acc").Apply([]any{Predictions{}}); err == nil {
		t.Error("empty predictions accepted")
	}
	if _, err := NewEval("acc").Apply([]any{Predictions{Labels: []float64{1}, Gold: []float64{}}}); err == nil {
		t.Error("mismatched predictions accepted")
	}
}

func TestLearnerKinds(t *testing.T) {
	for _, kind := range []string{"logreg", "svm", "perceptron"} {
		wf := NewWorkflow("census-" + kind)
		wf.Source("data", NewLiteralSource(censusCSV(200, 0), censusCSV(60, 1)))
		wf.Apply("rows", NewCSVScanner("age", "education", "occupation", "target"), "data")
		wf.Apply("age", Field("age"), "rows")
		wf.Apply("edu", Field("education"), "rows")
		wf.Apply("income", NewFeaturize("target", ">50K"), "rows", "age", "edu")
		wf.Apply("model", NewLearner(kind, 0.01, 8), "income")
		wf.Apply("predictions", NewPredict(), "model", "income")
		wf.Apply("checked", NewEval("accuracy"), "predictions")
		wf.Output("checked")
		s, err := NewSession(Config{SystemName: "t"})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(wf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		met := rep.Outputs["checked"].(ml.Metrics)
		if met.Accuracy < 0.7 {
			t.Errorf("%s accuracy = %v", kind, met.Accuracy)
		}
	}
}
