// Package codec provides a compact, allocation-light binary format used by
// the hot workflow value types for their materialization encoding. The
// generic gob path (reflection over maps of strings) is 10–50x slower than
// recomputing small per-row values, which would make reuse pointless; this
// codec restores the load ≪ compute relationship a real system gets from a
// columnar format.
//
// Primitives: unsigned varints, IEEE-754 floats, length-prefixed strings,
// and an interned string table for high-repetition payloads (feature names,
// categorical values, tokens).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer builds a buffer of primitives. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer, keeping the backing array for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// Int appends a signed int as a zigzag varint, so negative values are
// first-class (small magnitudes stay small on the wire regardless of sign).
// Paired with Reader.Int; lengths go through Len instead, which stays a
// plain uvarint so the reader's buffer guard applies.
func (w *Writer) Int(x int) {
	v := int64(x)
	w.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// Len appends a non-negative collection or byte length as a plain uvarint.
// Negative values are a caller bug and panic (lengths are never negative).
// Paired with Reader.Len.
func (w *Writer) Len(x int) {
	if x < 0 {
		panic(fmt.Sprintf("codec: negative length %d", x))
	}
	w.Uvarint(uint64(x))
}

// Float64 appends an IEEE-754 double, little endian.
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.buf = append(w.buf, s...)
}

// Reader consumes a buffer written by Writer. All methods return an error
// on truncation or corruption rather than panicking: materialized files can
// be damaged on disk.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps a buffer.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Done reports whether the whole buffer was consumed.
func (r *Reader) Done() bool { return r.off == len(r.buf) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

// Int reads a zigzag-encoded signed int (an index or scalar, not a length).
func (r *Reader) Int() (int, error) {
	x, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	return int(int64(x>>1) ^ -int64(x&1)), nil
}

// Len reads a collection or byte length, additionally guarding against
// values that exceed the remaining buffer — corruption defense before any
// allocation sized by the result.
func (r *Reader) Len() (int, error) {
	x, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(len(r.buf)) {
		return 0, fmt.Errorf("codec: length %d exceeds buffer %d", x, len(r.buf))
	}
	return int(x), nil
}

// Float64 reads a double.
func (r *Reader) Float64() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("codec: truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Len()
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.buf) {
		return "", fmt.Errorf("codec: truncated string (%d bytes) at offset %d", n, r.off)
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

// StringTable interns strings during encoding: the first occurrence writes
// the text, later occurrences write only its index. High-repetition payloads
// (feature names over rows) compress dramatically and decode with shared
// string instances.
type StringTable struct {
	index map[string]uint64
}

// NewStringTable returns an empty table.
func NewStringTable() *StringTable { return &StringTable{index: make(map[string]uint64)} }

// Write encodes s through the table: tag 0 + index for known strings,
// tag 1 + text for new ones.
func (t *StringTable) Write(w *Writer, s string) {
	if i, ok := t.index[s]; ok {
		w.Uvarint(0)
		w.Uvarint(i)
		return
	}
	t.index[s] = uint64(len(t.index))
	w.Uvarint(1)
	w.String(s)
}

// ReadStringTable mirrors StringTable on the decode side.
type ReadStringTable struct {
	strings []string
}

// NewReadStringTable returns an empty decode table.
func NewReadStringTable() *ReadStringTable { return &ReadStringTable{} }

// Read decodes one table-encoded string.
func (t *ReadStringTable) Read(r *Reader) (string, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	switch tag {
	case 0:
		i, err := r.Uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(t.strings)) {
			return "", fmt.Errorf("codec: string index %d out of range (%d interned)", i, len(t.strings))
		}
		return t.strings[i], nil
	case 1:
		s, err := r.String()
		if err != nil {
			return "", err
		}
		t.strings = append(t.strings, s)
		return s, nil
	default:
		return "", fmt.Errorf("codec: bad string tag %d", tag)
	}
}
