package codec

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Self-describing value encoding. Every value starts with a kind tag: the
// closed set of scalar/slice/map builtins the benches produce encode
// directly, and registered named types (the workload value structs) encode
// as tag + name + type-specific payload. Unlike gob there is no reflective
// type description on the wire — the name resolves against a process-local
// registry populated by package init functions, which is sound because the
// store only ever decodes values this binary encoded.

// Kind tags. The zero tag is reserved so a zeroed buffer never decodes.
const (
	tagString uint64 = iota + 1
	tagInt
	tagInt64
	tagFloat64
	tagBool
	tagBytes
	tagStrings
	tagInts
	tagFloats
	tagStringFloatMap
	tagNamed
)

// ErrUnregistered reports a value whose dynamic type has no binary encoder.
// Callers (the store) fall back to gob for these.
var ErrUnregistered = errors.New("codec: unregistered value type")

// EncodeFunc writes one value's payload (after the tag and name).
type EncodeFunc func(w *Writer, v any) error

// DecodeFunc reads back what EncodeFunc wrote.
type DecodeFunc func(r *Reader) (any, error)

type valueCodec struct {
	name string
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	valueMu     sync.RWMutex
	valueByType = map[reflect.Type]*valueCodec{}
	valueByName = map[string]*valueCodec{}
)

// RegisterValue binds a named binary encoder/decoder pair to the dynamic
// type of prototype. Registration is idempotent for an identical
// (type, name) pair and panics on conflicts, mirroring gob.Register.
func RegisterValue(prototype any, name string, enc EncodeFunc, dec DecodeFunc) {
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("codec: RegisterValue with nil prototype")
	}
	valueMu.Lock()
	defer valueMu.Unlock()
	if prev, ok := valueByType[t]; ok {
		if prev.name == name {
			return
		}
		panic(fmt.Sprintf("codec: type %v already registered as %q", t, prev.name))
	}
	if _, ok := valueByName[name]; ok {
		panic(fmt.Sprintf("codec: name %q already registered", name))
	}
	vc := &valueCodec{name: name, enc: enc, dec: dec}
	valueByType[t] = vc
	valueByName[name] = vc
}

// Registered reports whether v's dynamic type has a binary codec (either a
// builtin kind or a registered named type).
func Registered(v any) bool {
	switch v.(type) {
	case string, int, int64, float64, bool, []byte, []string, []int, []float64, map[string]float64:
		return true
	}
	valueMu.RLock()
	defer valueMu.RUnlock()
	return valueByType[reflect.TypeOf(v)] != nil
}

// RegisteredNames returns the sorted names of every registered named value
// codec — the exhaustiveness oracle for the round-trip equivalence tests.
func RegisteredNames() []string {
	valueMu.RLock()
	names := make([]string, 0, len(valueByName))
	for n := range valueByName {
		names = append(names, n)
	}
	valueMu.RUnlock()
	sort.Strings(names)
	return names
}

// EncodeValue appends a self-describing encoding of v. Returns
// ErrUnregistered (wrapping the type) when v has no binary codec; the
// writer is unchanged in that case.
func EncodeValue(w *Writer, v any) error {
	switch x := v.(type) {
	case string:
		w.Uvarint(tagString)
		w.String(x)
	case int:
		w.Uvarint(tagInt)
		w.Int(x)
	case int64:
		w.Uvarint(tagInt64)
		w.Int(int(x))
	case float64:
		w.Uvarint(tagFloat64)
		w.Float64(x)
	case bool:
		w.Uvarint(tagBool)
		if x {
			w.Uvarint(1)
		} else {
			w.Uvarint(0)
		}
	case []byte:
		w.Uvarint(tagBytes)
		w.ByteSlice(x)
	case []string:
		w.Uvarint(tagStrings)
		w.Len(len(x))
		for _, s := range x {
			w.String(s)
		}
	case []int:
		w.Uvarint(tagInts)
		w.Len(len(x))
		for _, i := range x {
			w.Int(i)
		}
	case []float64:
		w.Uvarint(tagFloats)
		w.Len(len(x))
		for _, f := range x {
			w.Float64(f)
		}
	case map[string]float64:
		w.Uvarint(tagStringFloatMap)
		encodeSortedStringFloatMap(w, x)
	default:
		valueMu.RLock()
		vc := valueByType[reflect.TypeOf(v)]
		valueMu.RUnlock()
		if vc == nil {
			return fmt.Errorf("%w: %T", ErrUnregistered, v)
		}
		w.Uvarint(tagNamed)
		w.String(vc.name)
		return vc.enc(w, v)
	}
	return nil
}

// DecodeValue reads one value written by EncodeValue. Decoded values never
// alias the input buffer (strings and byte slices copy), so callers may
// decode straight out of an mmap'd frame and release it afterwards.
func DecodeValue(r *Reader) (any, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagString:
		return r.String()
	case tagInt:
		return r.Int()
	case tagInt64:
		x, err := r.Int()
		return int64(x), err
	case tagFloat64:
		return r.Float64()
	case tagBool:
		b, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		switch b {
		case 0:
			return false, nil
		case 1:
			return true, nil
		default:
			return nil, fmt.Errorf("codec: bad bool %d", b)
		}
	case tagBytes:
		return r.ByteSlice()
	case tagStrings:
		n, err := r.Len()
		if err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			if out[i], err = r.String(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagInts:
		n, err := r.Len()
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			if out[i], err = r.Int(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagFloats:
		n, err := r.Len()
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			if out[i], err = r.Float64(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagStringFloatMap:
		return decodeStringFloatMap(r)
	case tagNamed:
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		valueMu.RLock()
		vc := valueByName[name]
		valueMu.RUnlock()
		if vc == nil {
			return nil, fmt.Errorf("%w: no decoder named %q", ErrUnregistered, name)
		}
		return vc.dec(r)
	default:
		return nil, fmt.Errorf("codec: bad value tag %d", tag)
	}
}

// encodeSortedStringFloatMap writes map entries in sorted key order so
// re-encoding a decoded value is byte-stable (Go map iteration is not).
func encodeSortedStringFloatMap(w *Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Len(len(keys))
	for _, k := range keys {
		w.String(k)
		w.Float64(m[k])
	}
}

func decodeStringFloatMap(r *Reader) (map[string]float64, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.Float64()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// ByteSlice appends a length-prefixed byte slice.
func (w *Writer) ByteSlice(b []byte) {
	w.Len(len(b))
	w.buf = append(w.buf, b...)
}

// ByteSlice reads a length-prefixed byte slice, copying out of the buffer
// (the buffer may be a memory mapping released after decode).
func (r *Reader) ByteSlice() ([]byte, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("codec: truncated byte slice (%d bytes) at offset %d", n, r.off)
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out, nil
}
