package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Int(12345)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	w.String("hello")
	w.String("")

	r := NewReader(w.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 0 {
		t.Errorf("uvarint0 = %d, %v", v, err)
	}
	if v, err := r.Uvarint(); err != nil || v != 1<<40 {
		t.Errorf("uvarint big = %d, %v", v, err)
	}
	if v, err := r.Int(); err != nil || v != 12345 {
		t.Errorf("int = %d, %v", v, err)
	}
	if v, err := r.Float64(); err != nil || v != math.Pi {
		t.Errorf("pi = %v, %v", v, err)
	}
	if v, err := r.Float64(); err != nil || !math.IsInf(v, -1) {
		t.Errorf("-inf = %v, %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "hello" {
		t.Errorf("string = %q, %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "" {
		t.Errorf("empty string = %q, %v", v, err)
	}
	if !r.Done() {
		t.Error("reader not exhausted")
	}
}

func TestSignedIntRoundTrip(t *testing.T) {
	cases := []int{0, -1, 1, -2, 63, -64, 12345, -12345, math.MaxInt64, math.MinInt64}
	var w Writer
	for _, c := range cases {
		w.Int(c)
	}
	r := NewReader(w.Bytes())
	for _, want := range cases {
		got, err := r.Int()
		if err != nil || got != want {
			t.Errorf("Int round-trip: got %d, %v (want %d)", got, err, want)
		}
	}
	if !r.Done() {
		t.Error("reader not exhausted")
	}
	// Small magnitudes stay small on the wire regardless of sign.
	var w2 Writer
	w2.Int(-1)
	if n := len(w2.Bytes()); n != 1 {
		t.Errorf("Int(-1) encoded in %d bytes, want 1", n)
	}
}

func TestNegativeLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative length")
		}
	}()
	var w Writer
	w.Len(-1)
}

func TestTruncationErrors(t *testing.T) {
	var w Writer
	w.Float64(1.5)
	w.String("abcdef")
	full := w.Bytes()
	// Every strict prefix must fail cleanly somewhere, never panic.
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_, err1 := r.Float64()
		_, err2 := r.String()
		if cut < 8 && err1 == nil {
			t.Errorf("cut=%d: truncated float accepted", cut)
		}
		if cut < len(full) && err1 == nil && err2 == nil {
			t.Errorf("cut=%d: fully decoded a truncated buffer", cut)
		}
	}
}

func TestLenBufferGuard(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 50) // absurd length
	r := NewReader(w.Bytes())
	if _, err := r.Len(); err == nil {
		t.Error("oversized length accepted by Len")
	}
	// Int accepts large scalars that fit an int64 (zigzag: even = positive).
	var wi Writer
	wi.Int(1 << 50)
	if v, err := NewReader(wi.Bytes()).Int(); err != nil || v != 1<<50 {
		t.Errorf("Int(1<<50) = %d, %v", v, err)
	}
}

func TestBadUvarint(t *testing.T) {
	// 10 continuation bytes = overflow.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	r := NewReader(bad)
	if _, err := r.Uvarint(); err == nil {
		t.Error("overflowing uvarint accepted")
	}
	if _, err := NewReader(nil).Uvarint(); err == nil {
		t.Error("empty uvarint accepted")
	}
}

func TestStringTableInterning(t *testing.T) {
	var w Writer
	tb := NewStringTable()
	tb.Write(&w, "alpha")
	tb.Write(&w, "beta")
	tb.Write(&w, "alpha") // interned
	tb.Write(&w, "alpha")
	sizeWithInterning := len(w.Bytes())

	var w2 Writer
	for _, s := range []string{"alpha", "beta", "alpha", "alpha"} {
		w2.String(s)
	}
	if sizeWithInterning >= len(w2.Bytes()) {
		t.Errorf("interning did not shrink encoding: %d vs %d", sizeWithInterning, len(w2.Bytes()))
	}

	r := NewReader(w.Bytes())
	rt := NewReadStringTable()
	for _, want := range []string{"alpha", "beta", "alpha", "alpha"} {
		got, err := rt.Read(r)
		if err != nil || got != want {
			t.Fatalf("read = %q, %v (want %q)", got, err, want)
		}
	}
	if !r.Done() {
		t.Error("leftover bytes")
	}
}

func TestReadStringTableCorruption(t *testing.T) {
	// Index beyond table.
	var w Writer
	w.Uvarint(0)
	w.Uvarint(5)
	if _, err := NewReadStringTable().Read(NewReader(w.Bytes())); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Unknown tag.
	var w2 Writer
	w2.Uvarint(9)
	if _, err := NewReadStringTable().Read(NewReader(w2.Bytes())); err == nil {
		t.Error("bad tag accepted")
	}
}

// Property: arbitrary sequences of primitives round-trip.
func TestQuickPrimitiveSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		kinds := make([]int, n)
		ints := make([]uint64, n)
		floats := make([]float64, n)
		strs := make([]string, n)
		var w Writer
		tb := NewStringTable()
		for i := 0; i < n; i++ {
			kinds[i] = rng.Intn(4)
			switch kinds[i] {
			case 0:
				ints[i] = rng.Uint64() >> uint(rng.Intn(64))
				w.Uvarint(ints[i])
			case 1:
				floats[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
				w.Float64(floats[i])
			case 2:
				strs[i] = randString(rng)
				w.String(strs[i])
			default:
				strs[i] = randString(rng)
				tb.Write(&w, strs[i])
			}
		}
		r := NewReader(w.Bytes())
		rt := NewReadStringTable()
		for i := 0; i < n; i++ {
			switch kinds[i] {
			case 0:
				v, err := r.Uvarint()
				if err != nil || v != ints[i] {
					return false
				}
			case 1:
				v, err := r.Float64()
				if err != nil || v != floats[i] {
					return false
				}
			case 2:
				v, err := r.String()
				if err != nil || v != strs[i] {
					return false
				}
			default:
				v, err := rt.Read(r)
				if err != nil || v != strs[i] {
					return false
				}
			}
		}
		return r.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
