package codec_test

// Fuzz targets for the binary codec. Spill frames live on disk where bits
// rot, so the decode side must treat every input as hostile: any byte
// sequence may error, none may panic or over-read. The targets live in an
// external test package so the named value registrations from the data/seq/
// core/workload init functions are linked in and fuzzing reaches the named
// decoders, not just the builtin kinds.

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/data"
	"repro/internal/seq"
	"repro/internal/workload"
)

// fuzzSeedValues is a small spread of builtin and named values whose
// encodings seed both corpora: scalars, slices, maps, and the registered
// struct types with string tables and nested collections.
func fuzzSeedValues() []any {
	schema, err := data.NewSchema("a", "b")
	if err != nil {
		panic(err)
	}
	return []any{
		"hello",
		int(-7),
		int64(1) << 33,
		2.5,
		true,
		[]byte{1, 2, 3},
		[]string{"x", "x", "y"},
		[]int{-1, 0, 1},
		[]float64{0.5, -0.5},
		map[string]float64{"k": 1, "j": -2},
		data.FeatureMap{"age": 39, "hours": 40},
		&data.Collection{Schema: schema, Rows: []data.Row{
			{Fields: []string{"1", "2"}},
			{Fields: []string{"1", "3"}},
		}},
		data.Vector{Indices: []int{0, 2}, Values: []float64{1, -1}},
		seq.Span{Start: 1, End: 4},
		seq.Instance{Feats: [][]int{{0, 1}}, Tags: []int{seq.TagB}},
		workload.GazValue{Entries: []string{"Ann Smith"}},
		workload.PredSpans{
			Spans: [][]seq.Span{{{Start: 0, End: 2}}},
			Gold:  [][]seq.Span{{{Start: 0, End: 1}}},
		},
	}
}

// FuzzDecodeValue asserts the central corruption-safety property of the
// value codec: DecodeValue never panics, and any input it accepts decodes to
// a value whose canonical re-encoding is a fixed point (encode → decode →
// encode is byte-stable). The comparison is on bytes rather than
// reflect.DeepEqual so NaN payloads — which the fuzzer finds immediately —
// do not produce false mismatches.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range fuzzSeedValues() {
		var w codec.Writer
		if err := codec.EncodeValue(&w, v); err != nil {
			f.Fatal(err)
		}
		enc := w.Bytes()
		f.Add(append([]byte(nil), enc...))
		// Truncations and a bit flip: the interesting error paths.
		f.Add(append([]byte(nil), enc[:len(enc)/2]...))
		if len(enc) > 0 {
			flipped := append([]byte(nil), enc...)
			flipped[len(flipped)/2] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0})    // reserved zero tag
	f.Add([]byte{0xff}) // unknown tag
	f.Fuzz(func(t *testing.T, raw []byte) {
		v, err := codec.DecodeValue(codec.NewReader(raw))
		if err != nil {
			return
		}
		var w1 codec.Writer
		if err := codec.EncodeValue(&w1, v); err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", v, err)
		}
		v2, err := codec.DecodeValue(codec.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-encoding of %T does not decode: %v", v, err)
		}
		var w2 codec.Writer
		if err := codec.EncodeValue(&w2, v2); err != nil {
			t.Fatalf("second re-encode of %T failed: %v", v2, err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("re-encoding not a fixed point for %T: %d vs %d bytes", v, len(w1.Bytes()), len(w2.Bytes()))
		}
	})
}

// FuzzReader hammers the primitive reader: a rotating sequence of typed
// reads (offset into the rotation chosen by the first input byte) plus a
// string-table pass must never panic and never move the offset beyond the
// buffer, whatever the bytes.
func FuzzReader(f *testing.F) {
	var w codec.Writer
	w.Uvarint(300)
	w.Int(-40)
	w.Len(3)
	w.Float64(1.5)
	w.String("seed")
	w.ByteSlice([]byte{9, 8})
	seq := w.Bytes()
	for i := 0; i < 6; i++ {
		f.Add(append([]byte{byte(i)}, seq...))
		f.Add(append([]byte{byte(i)}, seq[:len(seq)/2]...))
	}
	var tw codec.Writer
	tbl := codec.NewStringTable()
	tbl.Write(&tw, "alpha")
	tbl.Write(&tw, "beta")
	tbl.Write(&tw, "alpha")
	f.Add(append([]byte{6}, tw.Bytes()...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		op := int(raw[0])
		r := codec.NewReader(raw[1:])
		rt := codec.NewReadStringTable()
		for !r.Done() {
			var err error
			switch op % 7 {
			case 0:
				_, err = r.Uvarint()
			case 1:
				_, err = r.Int()
			case 2:
				_, err = r.Len()
			case 3:
				_, err = r.Float64()
			case 4:
				_, err = r.String()
			case 5:
				_, err = r.ByteSlice()
			case 6:
				_, err = rt.Read(r)
			}
			if err != nil {
				break
			}
			op++
		}
	})
}
