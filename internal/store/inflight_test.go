package store

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func inflightTiered(t *testing.T) *Tiered {
	t.Helper()
	hot, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewTiered(hot, nil)
}

// TestInflightLeaderPublish: the first BeginCompute leads, a second waits,
// and FinishCompute(nil error) wakes the waiter with the leader's value.
func TestInflightLeaderPublish(t *testing.T) {
	tv := inflightTiered(t)
	leader, wait := tv.BeginCompute("k")
	if !leader || wait != nil {
		t.Fatalf("first BeginCompute: leader=%v wait=%p, want leader with nil wait", leader, wait)
	}
	leader2, wait2 := tv.BeginCompute("k")
	if leader2 || wait2 == nil {
		t.Fatal("second BeginCompute for an in-flight key must be a waiter")
	}
	if n := tv.InflightWaiters("k"); n != 1 {
		t.Fatalf("InflightWaiters = %d, want 1", n)
	}

	got := make(chan any, 1)
	go func() {
		outcome, v := wait2(context.Background(), 0)
		if outcome != WaitPublished {
			t.Errorf("outcome = %v, want published", outcome)
		}
		got <- v
	}()
	time.Sleep(time.Millisecond)
	tv.FinishCompute("k", 42, nil)
	if v := <-got; v != 42 {
		t.Fatalf("waiter received %v, want the leader's 42", v)
	}
	if n := tv.InflightComputes(); n != 0 {
		t.Fatalf("InflightComputes = %d after resolution, want 0", n)
	}
	// The key is free again: the next BeginCompute elects a fresh leader.
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("BeginCompute after resolution must elect a new leader")
	}
	tv.FinishCompute("k", nil, nil)
}

// TestInflightLeaderFailureHandsOff: a failing leader with a parked waiter
// hands leadership over instead of abandoning the flight, and the new
// leader's publish wakes the remaining waiter.
func TestInflightLeaderFailureHandsOff(t *testing.T) {
	tv := inflightTiered(t)
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want leadership")
	}
	_, waitA := tv.BeginCompute("k")
	_, waitB := tv.BeginCompute("k")

	outcomes := make(chan WaitOutcome, 2)
	values := make(chan any, 2)
	run := func(wait func(context.Context, time.Duration) (WaitOutcome, any)) {
		outcome, v := wait(context.Background(), 0)
		if outcome == WaitLeader {
			tv.FinishCompute("k", "recomputed", nil)
		}
		outcomes <- outcome
		values <- v
	}
	go run(waitA)
	go run(waitB)
	time.Sleep(time.Millisecond)

	tv.FinishCompute("k", nil, errors.New("leader died"))
	o1, o2 := <-outcomes, <-outcomes
	if !(o1 == WaitLeader && o2 == WaitPublished || o1 == WaitPublished && o2 == WaitLeader) {
		t.Fatalf("outcomes = %v, %v; want exactly one handoff and one publish", o1, o2)
	}
	v1, v2 := <-values, <-values
	if v1 != "recomputed" && v2 != "recomputed" {
		t.Fatalf("values = %v, %v; the published waiter must see the new leader's value", v1, v2)
	}
	if n := tv.InflightComputes(); n != 0 {
		t.Fatalf("InflightComputes = %d after handoff chain, want 0", n)
	}
}

// TestInflightFailureWithoutWaitersAbandons: a failing leader with nobody
// parked abandons the flight; the key is immediately electable again.
func TestInflightFailureWithoutWaitersAbandons(t *testing.T) {
	tv := inflightTiered(t)
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want leadership")
	}
	tv.FinishCompute("k", nil, errors.New("boom"))
	if n := tv.InflightComputes(); n != 0 {
		t.Fatalf("InflightComputes = %d after abandoned failure, want 0", n)
	}
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("abandoned key must elect a new leader")
	}
	tv.FinishCompute("k", nil, nil)
}

// TestInflightWaiterTimeout: a bounded waiter gives up, deregisters, and the
// leader's eventual failure — now waiterless — abandons cleanly.
func TestInflightWaiterTimeout(t *testing.T) {
	tv := inflightTiered(t)
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want leadership")
	}
	_, wait := tv.BeginCompute("k")
	outcome, v := wait(context.Background(), time.Millisecond)
	if outcome != WaitTimeout || v != nil {
		t.Fatalf("got (%v, %v), want (timeout, nil)", outcome, v)
	}
	if n := tv.InflightWaiters("k"); n != 0 {
		t.Fatalf("InflightWaiters = %d after timeout, want 0", n)
	}
	tv.FinishCompute("k", nil, errors.New("late failure"))
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want fresh leadership after waiterless failure")
	}
	tv.FinishCompute("k", nil, nil)
}

// TestInflightWaiterCancel: a canceled waiter deregisters without a result.
func TestInflightWaiterCancel(t *testing.T) {
	tv := inflightTiered(t)
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want leadership")
	}
	_, wait := tv.BeginCompute("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if outcome, _ := wait(ctx, 0); outcome != WaitCanceled {
		t.Fatalf("outcome = %v, want canceled", outcome)
	}
	tv.FinishCompute("k", 1, nil)
	if n := tv.InflightComputes(); n != 0 {
		t.Fatalf("InflightComputes = %d, want 0", n)
	}
}

// TestInflightAfterglow: a successfully resolved flight's value survives in
// the bounded afterglow cache for late same-signature arrivals; failed
// flights and nil results leave nothing behind, and the cap evicts oldest
// first.
func TestInflightAfterglow(t *testing.T) {
	tv := inflightTiered(t)
	if v, ok := tv.RecentResolved("k"); ok {
		t.Fatalf("RecentResolved on a cold registry = %v, want miss", v)
	}
	if leader, _ := tv.BeginCompute("k"); !leader {
		t.Fatal("want leadership")
	}
	tv.FinishCompute("k", 42, nil)
	if v, ok := tv.RecentResolved("k"); !ok || v != 42 {
		t.Fatalf("RecentResolved = %v, %v; want the resolved 42", v, ok)
	}

	// Failure resolutions are not cached.
	if leader, _ := tv.BeginCompute("dead"); !leader {
		t.Fatal("want leadership")
	}
	tv.FinishCompute("dead", nil, errors.New("boom"))
	if _, ok := tv.RecentResolved("dead"); ok {
		t.Fatal("failed flight entered the afterglow cache")
	}

	// The cap evicts oldest-first: flood past afterglowMax and the first
	// key must be gone while the newest survives.
	for i := 0; i < afterglowMax+1; i++ {
		key := fmt.Sprintf("flood-%03d", i)
		if leader, _ := tv.BeginCompute(key); !leader {
			t.Fatalf("flood %d: want leadership", i)
		}
		tv.FinishCompute(key, i, nil)
	}
	if _, ok := tv.RecentResolved("k"); ok {
		t.Fatal("oldest afterglow entry survived a full flood past the cap")
	}
	last := fmt.Sprintf("flood-%03d", afterglowMax)
	if v, ok := tv.RecentResolved(last); !ok || v != afterglowMax {
		t.Fatalf("newest afterglow entry = %v, %v; want %d", v, ok, afterglowMax)
	}
}

// TestInflightHandoffToDepartingWaiter: the last waiter leaves (cancel)
// while a handoff token is outstanding. Whichever way the race lands —
// the waiter accepts leadership, or its departure drains the token and
// abandons the flight — the key must end electable, never wedged.
func TestInflightHandoffToDepartingWaiter(t *testing.T) {
	for i := 0; i < 100; i++ {
		tv := inflightTiered(t)
		if leader, _ := tv.BeginCompute("k"); !leader {
			t.Fatal("want leadership")
		}
		_, wait := tv.BeginCompute("k")
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		tv.FinishCompute("k", nil, errors.New("die"))
		outcome, _ := wait(ctx, 0)
		if outcome == WaitLeader {
			tv.FinishCompute("k", "v", nil)
		}
		if leader, _ := tv.BeginCompute("k"); !leader {
			t.Fatalf("iter %d: key wedged after %v departure race", i, outcome)
		}
		tv.FinishCompute("k", nil, nil)
	}
}
