//go:build !linux

package store

import "errors"

// mmapAvailable reports whether this platform supports zero-copy
// memory-mapped cold reads. Non-Linux builds always use the buffered
// os.ReadFile fallback.
const mmapAvailable = false

var errMmapUnsupported = errors.New("store: mmap unsupported on this platform")

func mmapFile(string) ([]byte, func(), error) {
	return nil, nil, errMmapUnsupported
}
