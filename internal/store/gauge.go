package store

import "sync"

// Gauge is a concurrency-safe byte counter with a high-water mark. The
// execution engine uses one to track the serialized-size estimate of every
// intermediate value currently held in memory during a run, so memory-
// bounded execution (releasing consumed intermediates) has a measurable
// peak to assert against rather than a hand-waved RSS.
//
// Live returns to the pre-run level after each Execute (the engine
// subtracts what it added), while Peak accumulates across runs until Reset.
type Gauge struct {
	mu   sync.Mutex
	live int64
	peak int64
}

// Add increases the live count by n bytes, updating the peak.
func (g *Gauge) Add(n int64) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.live += n
	if g.live > g.peak {
		g.peak = g.live
	}
	g.mu.Unlock()
}

// Sub decreases the live count by n bytes.
func (g *Gauge) Sub(n int64) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.live -= n
	g.mu.Unlock()
}

// Live returns the bytes currently counted live.
func (g *Gauge) Live() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live
}

// Peak returns the high-water mark since the last Reset.
func (g *Gauge) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Reset zeroes both the live count and the peak.
func (g *Gauge) Reset() {
	g.mu.Lock()
	g.live, g.peak = 0, 0
	g.mu.Unlock()
}
