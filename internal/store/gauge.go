package store

import "sync/atomic"

// Gauge is a concurrency-safe byte counter with a high-water mark. The
// execution engine uses one to track the serialized-size estimate of every
// intermediate value currently held in memory during a run, so memory-
// bounded execution (releasing consumed intermediates) has a measurable
// peak to assert against rather than a hand-waved RSS.
//
// Live returns to the pre-run level after each Execute (the engine
// subtracts what it added), while Peak accumulates across runs until Reset.
//
// The counters are atomics, not a mutex: the engine charges the gauge on
// every node completion, and under the work-stealing dispatcher that is
// the only remaining shared write on the happy path — a lock here would
// reintroduce the very serialization the dispatcher removes.
type Gauge struct {
	live atomic.Int64
	peak atomic.Int64
}

// Add increases the live count by n bytes, updating the peak.
func (g *Gauge) Add(n int64) {
	if n <= 0 {
		return
	}
	live := g.live.Add(n)
	for {
		peak := g.peak.Load()
		if live <= peak || g.peak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// Sub decreases the live count by n bytes.
func (g *Gauge) Sub(n int64) {
	if n <= 0 {
		return
	}
	g.live.Add(-n)
}

// Live returns the bytes currently counted live.
func (g *Gauge) Live() int64 { return g.live.Load() }

// Peak returns the high-water mark since the last Reset.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Reset zeroes both the live count and the peak.
func (g *Gauge) Reset() {
	g.live.Store(0)
	g.peak.Store(0)
}
