package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// evictAll drains the store one eviction at a time and returns the victim
// keys in eviction order — the policy's complete ranking, observed through
// the public API.
func evictAll(t *testing.T, s *Store) []string {
	t.Helper()
	var order []string
	for len(s.Entries()) > 0 {
		victims := s.EvictColdest(s.Budget() - s.Used() + 1)
		if len(victims) == 0 {
			t.Fatalf("eviction stalled with %d entries left", len(s.Entries()))
		}
		for _, v := range victims {
			order = append(order, v.Key)
		}
	}
	return order
}

// TestVictimOrderRewardVsLRU is the table-driven contract of the two
// eviction policies over one population: an old unhinted entry, an old
// entry guarding an expensive recompute, and a fresh entry with a tiny
// hint. Reward-aware ranking evicts by ascending saving-per-byte whatever
// the recency; LRU evicts by recency whatever the hints.
func TestVictimOrderRewardVsLRU(t *testing.T) {
	const size = 1000
	cases := []struct {
		name   string
		policy EvictionPolicy
		order  []string
	}{
		// old-unhinted saves nothing, new-small saves ~8µs/KB, guard saves
		// ~50µs/B: reward sacrifices the guard last even though it is older
		// than new-small.
		{"reward", EvictReward, []string{"old-unhinted", "new-small", "guard"}},
		// LRU ignores the hints entirely — insertion order is eviction
		// order, so the guard goes second and the 20 ms recompute is lost.
		{"lru", EvictLRU, []string{"old-unhinted", "guard", "new-small"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTemp(t, 3*size)
			s.SetEvictionPolicy(tc.policy)
			puts := []struct {
				key  string
				hint RewardHint
			}{
				{"old-unhinted", RewardHint{}},
				{"guard", RewardHint{RecomputeNanos: (50 * time.Millisecond).Nanoseconds()}},
				{"new-small", RewardHint{RecomputeNanos: (10 * time.Microsecond).Nanoseconds()}},
			}
			for _, p := range puts {
				if err := s.PutBytesHint(p.key, bytes.Repeat([]byte{'x'}, size), p.hint); err != nil {
					t.Fatal(err)
				}
				time.Sleep(2 * time.Millisecond) // distinct LastAccess ordering
			}
			got := evictAll(t, s)
			if len(got) != len(tc.order) {
				t.Fatalf("evicted %v, want %v", got, tc.order)
			}
			for i := range got {
				if got[i] != tc.order[i] {
					t.Fatalf("eviction order %v, want %v", got, tc.order)
				}
			}
		})
	}
}

// TestRewardSavingTiesFallBackToLRU: entries with identical
// saving-per-byte (same hint, size, and tier load cost) — and entries
// whose hint is below their load cost, which clamps to zero saving — rank
// by recency under the reward policy, exactly like LRU.
func TestRewardSavingTiesFallBackToLRU(t *testing.T) {
	const size = 1000
	s := openTemp(t, 3*size)
	hint := RewardHint{RecomputeNanos: (5 * time.Millisecond).Nanoseconds()}
	for _, key := range []string{"first", "second"} {
		if err := s.PutBytesHint(key, bytes.Repeat([]byte{'y'}, size), hint); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A hint below the load cost saves nothing: despite being hinted, this
	// entry must rank below the two real savers.
	if err := s.PutBytesHint("worthless", bytes.Repeat([]byte{'z'}, size), RewardHint{RecomputeNanos: 1}); err != nil {
		t.Fatal(err)
	}
	got := evictAll(t, s)
	want := []string{"worthless", "first", "second"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", got, want)
		}
	}
}

// TestAdoptedSameMtimeTieBreaksByKey is the regression test for the
// adopted-store eviction-order bug: files adopted at open take their
// LastAccess from the file mtime, and coarse filesystem timestamps make
// equal mtimes routine — under which the old comparison left the victim
// order to map iteration, differing run to run. Ties must break by key,
// under both policies (adopted entries carry no hints, so reward
// degrades to the same ordering).
func TestAdoptedSameMtimeTieBreaksByKey(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy EvictionPolicy
	}{{"lru", EvictLRU}, {"reward", EvictReward}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Deliberately not in key order, so the assertion cannot pass by
			// insertion-order accident.
			for _, key := range []string{"kc", "ka", "kb"} {
				if err := seed.PutBytes(key, bytes.Repeat([]byte{'m'}, 500)); err != nil {
					t.Fatal(err)
				}
			}
			stamp := time.Now().Add(-time.Hour).Truncate(time.Second)
			for _, key := range []string{"ka", "kb", "kc"} {
				if err := os.Chtimes(filepath.Join(dir, key), stamp, stamp); err != nil {
					t.Fatal(err)
				}
			}
			s, err := Open(dir, 1500)
			if err != nil {
				t.Fatal(err)
			}
			s.SetEvictionPolicy(tc.policy)
			got := evictAll(t, s)
			want := []string{"ka", "kb", "kc"}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("adopted eviction order %v, want deterministic key order %v", got, want)
				}
			}
		})
	}
}

// TestSpillFullyPinnedFastFails: an admission that cannot fit even after
// evicting every unpinned entry must be rejected up front with
// ErrBudgetExceeded and evict nothing — a doomed admission destroying
// pinned-adjacent values to make room it can never have was the PR-6
// destructive-eviction bug.
func TestSpillFullyPinnedFastFails(t *testing.T) {
	sp := openSpillTemp(t, 600)
	if err := sp.PutBytes("k1", bytes.Repeat([]byte{'p'}, 400)); err != nil {
		t.Fatal(err)
	}
	tv := NewTiered(openTemp(t, 1), sp)
	tv.Pin("k1")
	defer tv.Unpin("k1")
	err := sp.PutBytes("k2", bytes.Repeat([]byte{'q'}, 300))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !sp.Has("k1") {
		t.Error("pinned entry destroyed by a doomed admission")
	}
	if n := sp.Evictions(); n != 0 {
		t.Errorf("%d evictions during a fast-failed admission, want 0", n)
	}
	// Unpinned, the same admission succeeds by evicting k1.
	tv.Unpin("k1")
	if err := sp.PutBytes("k2", bytes.Repeat([]byte{'q'}, 300)); err != nil {
		t.Fatalf("post-unpin admission: %v", err)
	}
	if sp.Has("k1") || !sp.Has("k2") {
		t.Errorf("k1 present=%v k2 present=%v after unpinned admission", sp.Has("k1"), sp.Has("k2"))
	}
}

// TestEvictPlannerConsulted: an installed EvictPlanner sees exactly the
// unpinned candidates (sorted by key) and the shortfall; its returned set
// is evicted with stale and pinned keys silently skipped, and the greedy
// loop only runs if the planned set left the admission short.
func TestEvictPlannerConsulted(t *testing.T) {
	sp := openSpillTemp(t, 1000)
	sp.SetEvictionPolicy(EvictReward)
	hint := RewardHint{RecomputeNanos: (3 * time.Millisecond).Nanoseconds()}
	for _, key := range []string{"ka", "kb", "kc"} {
		if err := sp.PutBytesHint(key, bytes.Repeat([]byte{'e'}, 300), hint); err != nil {
			t.Fatal(err)
		}
	}
	tv := NewTiered(openTemp(t, 1), sp)
	tv.Pin("ka")
	defer tv.Unpin("ka")
	var gotCands []string
	var gotNeed int64
	sp.SetEvictPlanner(func(cands []Entry, need int64) []string {
		for _, c := range cands {
			gotCands = append(gotCands, c.Key)
		}
		gotNeed = need
		// kb is the plan; "ghost" is stale and ka is pinned — both must be
		// skipped, not crash or double-free budget.
		return []string{"kb", "ghost", "ka"}
	})
	// Admitting 300 bytes at 900/1000 used: shortfall is 200, and the
	// planner's kb (300 bytes) covers it alone — the greedy loop must not
	// evict anything further.
	if err := sp.PutBytes("kd", bytes.Repeat([]byte{'f'}, 300)); err != nil {
		t.Fatal(err)
	}
	if want := []string{"kb", "kc"}; len(gotCands) != 2 || gotCands[0] != want[0] || gotCands[1] != want[1] {
		t.Errorf("planner candidates %v, want %v (unpinned, key-sorted)", gotCands, want)
	}
	if gotNeed != 200 {
		t.Errorf("planner shortfall %d, want 200", gotNeed)
	}
	for key, want := range map[string]bool{"ka": true, "kb": false, "kc": true, "kd": true} {
		if sp.Has(key) != want {
			t.Errorf("after planned eviction: Has(%s) = %v, want %v", key, sp.Has(key), want)
		}
	}
	if !sp.Pinned("ka") {
		t.Error("ka lost its pin")
	}
	if n := sp.Evictions(); n != 1 {
		t.Errorf("%d evictions, want 1 (planner set only)", n)
	}
	if got := len(sp.Entries()); got != 3 {
		t.Errorf("%d entries, want 3", got)
	}
	if sp.Remaining() != 100 {
		t.Errorf("remaining %d, want 100", sp.Remaining())
	}
	// A removed planner reverts to pure greedy eviction.
	sp.SetEvictPlanner(nil)
	if err := sp.PutBytes("ke", bytes.Repeat([]byte{'g'}, 300)); err != nil {
		t.Fatal(err)
	}
	if sp.Has("ka") == false {
		t.Error("greedy eviction took the pinned ka")
	}
}

// TestSpillEncodedRoundTrip: the encoded-admission wrappers attach hints
// like the raw-byte path, and Get decodes what PutEncodedHint admitted.
func TestSpillEncodedRoundTrip(t *testing.T) {
	sp := openSpillTemp(t, 0)
	enc, err := EncodeValue("round-trip")
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	hint := RewardHint{RecomputeNanos: (2 * time.Millisecond).Nanoseconds()}
	if err := sp.PutEncodedHint("kenc", enc, hint); err != nil {
		t.Fatal(err)
	}
	if e, ok := sp.Lookup("kenc"); !ok || e.Recompute != hint.RecomputeNanos {
		t.Fatalf("encoded admission hint %d (present %v), want %d", e.Recompute, ok, hint.RecomputeNanos)
	}
	v, err := sp.Get("kenc")
	if err != nil || v != "round-trip" {
		t.Fatalf("Get = %v, %v; want round-trip", v, err)
	}
	// SetHint refreshes in place; a zero hint is a no-op.
	sp.SetHint("kenc", RewardHint{RecomputeNanos: 9})
	sp.SetHint("kenc", RewardHint{})
	if e, _ := sp.Lookup("kenc"); e.Recompute != 9 {
		t.Fatalf("refreshed hint %d, want 9", e.Recompute)
	}
	enc2, err := EncodeValue("no-hint")
	if err != nil {
		t.Fatal(err)
	}
	defer enc2.Release()
	if err := sp.PutEncoded("kplain", enc2); err != nil {
		t.Fatal(err)
	}
	if e, _ := sp.Lookup("kplain"); e.Recompute != 0 {
		t.Fatalf("unhinted encoded admission carries recompute %d, want 0", e.Recompute)
	}
}

// TestTieredHintCarriedAcrossTiers: a recompute-saving hint attached at
// admission must survive every migration — spill on hot rejection,
// demotion to cold, and promotion back to hot — so the cold tier's
// reward-aware eviction always ranks a value by its true saving, wherever
// it has been.
func TestTieredHintCarriedAcrossTiers(t *testing.T) {
	hot := openTemp(t, 1000)
	cold := openSpillTemp(t, 0)
	tv := NewTiered(hot, cold)
	h1 := RewardHint{RecomputeNanos: (5 * time.Millisecond).Nanoseconds()}
	h2 := RewardHint{RecomputeNanos: (7 * time.Millisecond).Nanoseconds()}
	encode := func(b byte) []byte {
		raw, err := Encode(string(bytes.Repeat([]byte{b}, 800)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if tier, err := tv.PutBytesHint("v1", encode('a'), h1); err != nil || tier != TierHot {
		t.Fatalf("v1: tier %v err %v", tier, err)
	}
	// v2 cannot fit hot: it spills, hint attached.
	if tier, err := tv.PutBytesHint("v2", encode('b'), h2); err != nil || tier != TierCold {
		t.Fatalf("v2: tier %v err %v", tier, err)
	}
	if e, ok := cold.Lookup("v2"); !ok || e.Recompute != h2.RecomputeNanos {
		t.Fatalf("spilled v2 recompute hint %d, want %d", e.Recompute, h2.RecomputeNanos)
	}
	// Reading v2 promotes it, demoting v1 to cold: both hints must travel.
	if _, tier, err := tv.Get("v2"); err != nil || tier != TierCold {
		t.Fatalf("get v2: tier %v err %v", tier, err)
	}
	if e, ok := hot.Lookup("v2"); !ok || e.Recompute != h2.RecomputeNanos {
		t.Fatalf("promoted v2 recompute hint %d (present %v), want %d", e.Recompute, ok, h2.RecomputeNanos)
	}
	if e, ok := cold.Lookup("v1"); !ok || e.Recompute != h1.RecomputeNanos {
		t.Fatalf("demoted v1 recompute hint %d (present %v), want %d", e.Recompute, ok, h1.RecomputeNanos)
	}
}
