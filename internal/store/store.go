// Package store is HELIX's materialization store (§2.3): a disk-backed,
// content-addressed repository of intermediate results under a maximum
// storage budget. Results are keyed by their Merkle result signature
// (internal/sig), so a stored value is valid for reuse exactly when a later
// iteration derives the same signature — the store itself never needs an
// invalidation protocol.
//
// Values are encoded with a self-describing codec: a reflection-free binary
// format for the registered workload value types (see internal/codec), with
// reflective gob as the A/B reference and the fallback for unregistered
// types. The store tracks measured write/read throughput so the optimizer
// can estimate load costs for results it has not touched yet.
package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// ErrBudgetExceeded is returned by Put when a value does not fit in the
// remaining storage budget.
var ErrBudgetExceeded = errors.New("store: storage budget exceeded")

// ErrNotFound is returned by Get for unknown keys.
var ErrNotFound = errors.New("store: key not found")

// Entry describes one stored result.
type Entry struct {
	Key  string
	Size int64
	// LoadCost is the measured wall-clock of the last Get, or an estimate
	// from throughput if never loaded.
	LoadCost time.Duration
	// Stored is when the entry was written (monotonic ordering only).
	Stored time.Time
	// LastAccess is when the entry was last written or read — the recency
	// eviction falls back to when recompute savings tie.
	LastAccess time.Time
	// Recompute estimates the wall-clock nanoseconds it would take to
	// rebuild this value from scratch — the producing node's compute cost
	// plus every ancestor the rebuild transitively forces (the paper's
	// c_i + sum of ancestor costs). Zero means unknown; reward-aware
	// eviction treats an unknown as zero saving, so unhinted entries
	// degrade to pure LRU ordering.
	Recompute int64
	// Owner labels which tenant's materialization produced the bytes
	// (per-tenant budget accounting in a shared multi-session store). The
	// first writer owns the entry for its lifetime — content addressing
	// makes later re-puts byte-identical, so ownership never needs to
	// transfer; it travels with the entry across tier demotions and
	// promotions. Empty for single-user stores and entries adopted from
	// disk.
	Owner string
}

// RewardHint carries the recompute-saving estimate a caller attaches to an
// admission: how expensive the stored value would be to rebuild. The store
// turns it into a per-byte eviction reward (saving = recompute − load cost,
// divided by size) — the per-result reward r_i of the paper's
// materialization policy, reused as the eviction ranking.
type RewardHint struct {
	// RecomputeNanos is the estimated nanoseconds to recompute the value
	// from scratch, ancestors included. Zero means unknown.
	RecomputeNanos int64
	// Owner is the tenant whose run produced the value (see Entry.Owner).
	// Empty leaves the entry unowned; an owner on a re-put of an existing
	// unowned entry adopts it (entries from older single-user runs gain an
	// accountable owner), but never overwrites an existing owner.
	Owner string
}

// EvictionPolicy selects how EvictColdest and VictimCandidates rank
// victims.
type EvictionPolicy int

const (
	// EvictReward (the default) evicts the entry with the smallest
	// recompute-saving per byte first: saving = max(0, Recompute −
	// LoadCost), per byte of Size. Ties (including every entry with no
	// recompute hint) fall back to least-recently-accessed, then key.
	EvictReward EvictionPolicy = iota
	// EvictLRU is the pure least-recently-accessed policy, kept as the A/B
	// baseline for the eviction ablation.
	EvictLRU
)

// EvictPlanner is an optional global evict-set planner consulted by
// EvictColdest before its greedy per-entry loop. It receives the unpinned
// candidate entries and the bytes that must be freed, and returns the keys
// to evict (a subset of the candidates; unknown keys are ignored). The
// planner runs while the store lock is held, so it must not call back into
// the store. If the returned set frees too little, the greedy policy makes
// up the difference.
type EvictPlanner func(candidates []Entry, need int64) []string

// Store is a budgeted, content-addressed disk store. Safe for concurrent
// use: metadata reads share a read lock, and writes reserve budget under the
// exclusive lock but perform file I/O unlocked, so the execution engine's
// background materialization writers neither serialize behind each other nor
// stall readers.
type Store struct {
	mu      sync.RWMutex
	dir     string
	budget  int64 // bytes; <=0 means unlimited
	used    int64
	entries map[string]*Entry

	// pins holds refcounts for keys the execution engine still plans to
	// load this run; EvictColdest never deletes a pinned entry. Entry.Size,
	// the budget, and eviction order are unaffected — pinning only narrows
	// the victim set.
	pins map[string]int

	// writing marks keys whose first admission is mid-flight (budget
	// reserved, file write in progress, entry not yet published). A
	// concurrent PutBytesHint of the same key returns success without
	// reserving or writing — content addressing guarantees the in-flight
	// bytes are the same — and merges its hint into the pending record,
	// which the in-flight writer applies to the entry on publish.
	writing map[string]*RewardHint

	// framed stores (the cold spill tier) wrap every file in a
	// length+checksum header (see frame.go) and verify it on read; reads of
	// a damaged frame return ErrCorrupt. syncWrites additionally fsyncs the
	// temp file before the rename, so a crash mid-write can never leave a
	// half-written file that later parses as valid.
	framed     bool
	syncWrites bool

	// mmapEnabled serves framed reads through readFrame from a read-only
	// memory mapping (zero intermediate copy) instead of os.ReadFile.
	// Set once at open; falls back to buffered reads per-file on mapping
	// errors and on platforms without mmap support.
	mmapEnabled bool

	// failReads is the test-only read fault hook: keys with a non-zero
	// count fail their next reads with an injected I/O error (<0 =
	// persistent). Guarded by faultMu, not mu, so the hook never contends
	// with the metadata lock.
	faultMu   sync.Mutex
	failReads map[string]int

	// Throughput estimates (bytes/sec), exponentially smoothed.
	readBps  float64
	writeBps float64

	// evict selects the victim ranking (reward-per-byte by default, pure
	// LRU as the ablation baseline); planner, when set, is consulted for a
	// globally-planned evict set before the greedy loop.
	evict   EvictionPolicy
	planner EvictPlanner
}

// DefaultThroughput seeds the load-cost estimate before any I/O has been
// measured: 500 MB/s, a conservative figure for buffered local disk reads.
const DefaultThroughput = 500e6

// Open creates or reuses a store rooted at dir with the given budget in
// bytes (<=0 disables the budget). Existing files in dir are adopted.
func Open(dir string, budget int64) (*Store, error) {
	return open(dir, budget, false, false)
}

func open(dir string, budget int64, framed, syncWrites bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		dir:        dir,
		budget:     budget,
		entries:    make(map[string]*Entry),
		pins:       make(map[string]int),
		framed:     framed,
		syncWrites: syncWrites,
		readBps:    DefaultThroughput,
		writeBps:   DefaultThroughput,
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan dir: %w", err)
	}
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue // file vanished between ReadDir and Info
		}
		size := info.Size()
		if framed {
			// Entry.Size is always the payload size; the header is a fixed
			// on-disk overhead the budget does not account. A file shorter
			// than a header (or an unframed file adopted from an older
			// layout) is surfaced as ErrCorrupt on first read.
			if size -= frameHeaderSize; size < 0 {
				size = 0
			}
		}
		e := &Entry{Key: f.Name(), Size: size, Stored: info.ModTime(), LastAccess: info.ModTime()}
		e.LoadCost = s.estimateLoad(e.Size)
		s.entries[f.Name()] = e
		s.used += size
	}
	return s, nil
}

// estimateLoad predicts a Get duration from size and smoothed throughput.
// Callers must hold mu (read or write) or be in single-threaded setup.
func (s *Store) estimateLoad(size int64) time.Duration {
	return time.Duration(float64(size) / s.readBps * float64(time.Second))
}

// EstimateLoad predicts the load cost for a value of the given size.
func (s *Store) EstimateLoad(size int64) time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.estimateLoad(size)
}

func (s *Store) path(key string) string {
	// Keys are hex signatures; filepath.Base defends against traversal if a
	// caller ever passes something else.
	return filepath.Join(s.dir, filepath.Base(key))
}

// Register makes a concrete type encodable through the store's interface-
// typed gob fallback codec. Every value type a workflow operator can produce
// must be registered once (the core package registers the built-in ones).
// Types additionally registered with codec.RegisterValue take the
// reflection-free binary path instead.
func Register(value any) { gob.Register(value) }

// Codec selects the value serialization format of the store's codec.
type Codec int

const (
	// CodecAuto resolves to the default codec (currently CodecBinary).
	CodecAuto Codec = iota
	// CodecBinary is the reflection-free self-describing binary codec
	// (codec.EncodeValue) with per-value gob fallback for unregistered
	// types. The default.
	CodecBinary
	// CodecGob forces reflective encoding/gob for every value — the A/B
	// reference the binary codec is benchmarked and equivalence-tested
	// against.
	CodecGob
)

// resolve maps CodecAuto to the concrete default.
func (c Codec) resolve() Codec {
	if c == CodecAuto {
		return CodecBinary
	}
	return c
}

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecAuto:
		return "auto"
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// ParseCodec parses a codec name as used by CLI flags.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return CodecAuto, fmt.Errorf("store: unknown codec %q (want auto, binary or gob)", s)
	}
}

// Every encoded value is self-describing: the first payload byte names the
// codec that produced the rest, so Decode needs no out-of-band format flag
// and mixed-codec stores (e.g. after a config change) keep working.
const (
	markerGob    byte = 'G'
	markerBinary byte = 'B'
)

// CodecOf reports which codec produced an encoded payload.
func CodecOf(raw []byte) (Codec, error) {
	if len(raw) == 0 {
		return CodecAuto, fmt.Errorf("store: empty payload")
	}
	switch raw[0] {
	case markerGob:
		return CodecGob, nil
	case markerBinary:
		return CodecBinary, nil
	default:
		return CodecAuto, fmt.Errorf("store: unknown codec marker 0x%02x", raw[0])
	}
}

// gobEncodes / binaryEncodes count every encode performed through the
// store's codec (Encode and EncodeValue), per codec actually used. The
// execution engine's encode-once contract — each materialized value is
// serialized exactly once, with the size probe reused for the persist — is
// asserted against the total in tests.
var (
	gobEncodes    atomic.Int64
	binaryEncodes atomic.Int64
)

// EncodeCalls returns the total number of value encodes (both codecs)
// performed through the store's codec since process start. Instrumentation
// only: take a snapshot before and after the section under test and compare
// the delta.
func EncodeCalls() int64 { return gobEncodes.Load() + binaryEncodes.Load() }

// GobEncodeCalls returns the number of gob encodes (including binary-codec
// fallbacks for unregistered types) since process start.
func GobEncodeCalls() int64 { return gobEncodes.Load() }

// BinaryEncodeCalls returns the number of reflection-free binary encodes
// since process start.
func BinaryEncodeCalls() int64 { return binaryEncodes.Load() }

// encBufPool recycles encode buffers across materializations so the hot
// path of the execution engine's writer pipeline does not allocate a fresh
// buffer (and its geometric growth steps) for every value.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// binWriterPool recycles codec.Writers (their backing slices) for the
// binary encode path.
var binWriterPool = sync.Pool{New: func() any { return new(codec.Writer) }}

// Encoded is one encoded value backed by a pooled buffer. Callers that are
// done with the bytes should Release it so the buffer returns to the pool;
// the bytes must not be used after Release.
type Encoded struct {
	buf   *bytes.Buffer
	codec Codec
}

// Bytes returns the serialized bytes. Valid until Release.
func (e *Encoded) Bytes() []byte { return e.buf.Bytes() }

// Size returns the serialized length in bytes.
func (e *Encoded) Size() int64 { return int64(e.buf.Len()) }

// Codec returns the codec that actually produced the bytes — CodecGob when
// the binary codec fell back for an unregistered type.
func (e *Encoded) Codec() Codec { return e.codec }

// Release returns the backing buffer to the encode pool. Safe to call once;
// the Encoded must not be used afterwards.
func (e *Encoded) Release() {
	if e.buf != nil {
		e.buf.Reset()
		encBufPool.Put(e.buf)
		e.buf = nil
	}
}

// EncodeValueWith encodes a value with the chosen codec into a pooled
// buffer. Under CodecBinary, types without a codec.RegisterValue entry fall
// back to gob transparently (the payload marker records what happened).
func EncodeValueWith(c Codec, value any) (*Encoded, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if c.resolve() == CodecBinary {
		w := binWriterPool.Get().(*codec.Writer)
		w.Reset()
		if err := codec.EncodeValue(w, value); err == nil {
			binaryEncodes.Add(1)
			buf.WriteByte(markerBinary)
			buf.Write(w.Bytes())
			binWriterPool.Put(w)
			return &Encoded{buf: buf, codec: CodecBinary}, nil
		}
		// Unregistered (or nested-unregistered) type: fall back to gob.
		w.Reset()
		binWriterPool.Put(w)
	}
	gobEncodes.Add(1)
	buf.WriteByte(markerGob)
	if err := gob.NewEncoder(buf).Encode(&value); err != nil {
		buf.Reset()
		encBufPool.Put(buf)
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return &Encoded{buf: buf, codec: CodecGob}, nil
}

// EncodeValue encodes a value with the default codec into a pooled buffer.
// It is the encode-once entry point of the execution engine: the same
// Encoded probes the size for the materialization decision and then
// persists through PutEncoded, so each value is serialized exactly once.
func EncodeValue(value any) (*Encoded, error) {
	return EncodeValueWith(CodecAuto, value)
}

// Encode serializes a value with the default codec, returning its bytes.
// Exposed so callers outside the engine's encode-once pipeline (tests,
// comparisons) can serialize without buffer-lifetime bookkeeping.
func Encode(value any) ([]byte, error) {
	enc, err := EncodeValue(value)
	if err != nil {
		return nil, err
	}
	defer enc.Release()
	return append([]byte(nil), enc.Bytes()...), nil
}

// Decode reverses Encode / EncodeValueWith, dispatching on the payload's
// codec marker. Decoded values never alias raw, so callers may decode
// straight out of a memory-mapped frame.
func Decode(raw []byte) (any, error) {
	c, err := CodecOf(raw)
	if err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if c == CodecBinary {
		r := codec.NewReader(raw[1:])
		value, err := codec.DecodeValue(r)
		if err != nil {
			return nil, fmt.Errorf("store: decode: %w", err)
		}
		return value, nil
	}
	var value any
	if err := gob.NewDecoder(bytes.NewReader(raw[1:])).Decode(&value); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	return value, nil
}

// PutBytes stores pre-encoded bytes under key, enforcing the budget.
// Overwrites of an existing key are idempotent no-ops (content addressing
// makes re-writes byte-identical).
func (s *Store) PutBytes(key string, raw []byte) error {
	return s.PutBytesHint(key, raw, RewardHint{})
}

// PutBytesHint is PutBytes with a recompute-saving hint attached to the
// entry (see RewardHint). Re-admitting an existing key refreshes its hint
// — the bytes are identical by content addressing, but the caller's cost
// estimate may have improved — and remains an idempotent no-op otherwise.
// Two concurrent first admissions of the same key (two tenants
// materializing the same sub-DAG result in a shared store) are also
// idempotent: the second caller returns success immediately and the first
// write's bytes stand — without this guard both would reserve budget and
// interleave writes into one temp file. The second caller's hint is merged
// into the in-flight write and applied when its entry publishes. A guarded
// return does not guarantee the entry exists: if the racing write then
// fails, the key stays absent and a later Get misses — recompute recovery
// covers that, same as any eviction.
func (s *Store) PutBytesHint(key string, raw []byte, hint RewardHint) error {
	s.mu.Lock()
	if e, exists := s.entries[key]; exists {
		if hint.RecomputeNanos > 0 {
			e.Recompute = hint.RecomputeNanos
		}
		if e.Owner == "" {
			e.Owner = hint.Owner
		}
		s.mu.Unlock()
		return nil
	}
	if pending, inFlight := s.writing[key]; inFlight {
		// An identical admission is in flight (content addressing: same key
		// means same bytes). Fold this caller's hint into the pending write
		// so it is not lost, and let the racing writer publish the entry.
		if hint.RecomputeNanos > pending.RecomputeNanos {
			pending.RecomputeNanos = hint.RecomputeNanos
		}
		if pending.Owner == "" {
			pending.Owner = hint.Owner
		}
		s.mu.Unlock()
		return nil
	}
	size := int64(len(raw))
	if s.budget > 0 && s.used+size > s.budget {
		// Snapshot the headroom before unlocking: formatting the error from
		// s.used after the unlock would race concurrent Puts and Deletes.
		have := s.budget - s.used
		s.mu.Unlock()
		return fmt.Errorf("%w: need %d, have %d of %d", ErrBudgetExceeded, size, have, s.budget)
	}
	// Reserve before the write so concurrent Puts cannot oversubscribe.
	s.used += size
	if s.writing == nil {
		s.writing = make(map[string]*RewardHint)
	}
	pending := &RewardHint{RecomputeNanos: hint.RecomputeNanos, Owner: hint.Owner}
	s.writing[key] = pending
	s.mu.Unlock()

	start := time.Now()
	tmp := fmt.Sprintf("%s.%d.tmp", s.path(key), tmpSeq.Add(1))
	err := s.writeFile(tmp, raw)
	if err == nil {
		err = os.Rename(tmp, s.path(key))
	}
	elapsed := time.Since(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.writing, key)
	if err != nil {
		s.used -= size
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	s.observeWrite(size, elapsed)
	now := time.Now()
	// pending carries any hints merged in by concurrent duplicate admissions
	// that returned while this write was in flight.
	s.entries[key] = &Entry{Key: key, Size: size, LoadCost: s.estimateLoad(size), Stored: now, LastAccess: now, Recompute: pending.RecomputeNanos, Owner: pending.Owner}
	return nil
}

// tmpSeq makes temp-file names unique across concurrent writers, so a
// same-key write race (already serialized by the writing guard above) or a
// crash-leftover .tmp can never be renamed over by an unrelated write.
var tmpSeq atomic.Int64

// SetHint refreshes the recompute-saving hint on an already-stored entry
// (cost models re-estimate across iterations; adopted entries start with no
// hint at all). A no-op for unknown keys or a zero hint.
func (s *Store) SetHint(key string, hint RewardHint) {
	if hint.RecomputeNanos <= 0 {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.Recompute = hint.RecomputeNanos
	}
	s.mu.Unlock()
}

// SetEvictionPolicy selects the victim ranking for EvictColdest and
// VictimCandidates. Not safe to flip concurrently with admissions; set it
// once at configuration time.
func (s *Store) SetEvictionPolicy(p EvictionPolicy) {
	s.mu.Lock()
	s.evict = p
	s.mu.Unlock()
}

// SetEvictPlanner installs (or, with nil, removes) a global evict-set
// planner consulted by EvictColdest before the greedy per-entry loop. See
// EvictPlanner for the contract.
func (s *Store) SetEvictPlanner(p EvictPlanner) {
	s.mu.Lock()
	s.planner = p
	s.mu.Unlock()
}

// writeFile writes one payload to path: framed stores prepend the
// length+checksum header, and syncWrites stores fsync before returning so
// the caller's rename publishes only fully-durable bytes (fsync-then-rename
// — a crash mid-write leaves a .tmp that is never adopted, never a
// half-written frame under the real key).
func (s *Store) writeFile(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if s.framed {
		err = writeFrame(f, payload)
	} else {
		_, err = f.Write(payload)
	}
	if err == nil && s.syncWrites {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// PutEncoded stores an already-encoded value under key, enforcing the
// budget. The caller keeps ownership of enc (and should Release it after);
// the bytes are fully written before PutEncoded returns.
func (s *Store) PutEncoded(key string, enc *Encoded) error {
	return s.PutBytes(key, enc.Bytes())
}

// PutEncodedHint is PutEncoded with a recompute-saving hint (see
// PutBytesHint).
func (s *Store) PutEncodedHint(key string, enc *Encoded, hint RewardHint) error {
	return s.PutBytesHint(key, enc.Bytes(), hint)
}

// Put encodes and stores a value.
func (s *Store) Put(key string, value any) error {
	enc, err := EncodeValue(value)
	if err != nil {
		return err
	}
	defer enc.Release()
	return s.PutEncoded(key, enc)
}

// Get loads and decodes the value for key, recording the measured load cost
// — file read plus decode, the full price a consumer pays — on the entry
// (the l_i the next iteration's optimizer will use).
func (s *Store) Get(key string) (any, error) {
	raw, start, err := s.read(key)
	if err != nil {
		return nil, err
	}
	value, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	s.recordRead(key, int64(len(raw)), time.Since(start))
	return value, nil
}

// GetBytes loads the raw serialized bytes for key, recording the measured
// load cost and access recency on the entry. External callers use it to
// read stored bytes without decoding; the tiered store's own cross-tier
// movement goes through the unexported read/recordRead pair instead, so
// migrations never perturb the throughput EWMA with decode-free reads.
func (s *Store) GetBytes(key string) ([]byte, error) {
	raw, start, err := s.read(key)
	if err != nil {
		return nil, err
	}
	s.recordRead(key, int64(len(raw)), time.Since(start))
	return raw, nil
}

// errInjectedRead is the synthetic I/O failure raised by the injectReadFault
// test hook; it stands in for an EIO from a failing device.
var errInjectedRead = errors.New("injected I/O fault")

// injectReadFault arms the read fault hook: the next n reads of key fail
// with an injected I/O error (n<0 = every read until the entry is deleted).
func (s *Store) injectReadFault(key string, n int) {
	s.faultMu.Lock()
	if s.failReads == nil {
		s.failReads = make(map[string]int)
	}
	if n == 0 {
		delete(s.failReads, key)
	} else {
		s.failReads[key] = n
	}
	s.faultMu.Unlock()
}

// takeReadFault consumes one armed read fault for key, if any.
func (s *Store) takeReadFault(key string) bool {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	n, ok := s.failReads[key]
	if !ok {
		return false
	}
	if n > 0 {
		if n--; n == 0 {
			delete(s.failReads, key)
		} else {
			s.failReads[key] = n
		}
	}
	return true
}

// read fetches key's raw bytes without recording an observation; the
// caller stops the clock (after decoding, when it decodes) and calls
// recordRead, so LoadCost always measures the full path a consumer paid.
// On a framed store the frame is verified and stripped here, so every
// consumer of raw bytes — Get, GetBytes, tiered promotion — sees either
// intact payload bytes or ErrCorrupt.
func (s *Store) read(key string) ([]byte, time.Time, error) {
	s.mu.RLock()
	_, ok := s.entries[key]
	path := s.path(key)
	s.mu.RUnlock()
	start := time.Now()
	if !ok {
		return nil, start, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if s.takeReadFault(key) {
		return nil, start, fmt.Errorf("store: read %s: %w", key, errInjectedRead)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, start, fmt.Errorf("store: read %s: %w", key, err)
	}
	if s.framed {
		payload, ferr := verifyFrame(raw)
		if ferr != nil {
			return nil, start, fmt.Errorf("store: read %s: %w", key, ferr)
		}
		raw = payload
	}
	return raw, start, nil
}

// readFrame fetches key's payload bytes like read, but when mmap is enabled
// on a framed store it serves them as an alias into a read-only memory
// mapping — the CRC is verified once against the mapped pages and the
// payload flows to promotion writes and decode with no intermediate heap
// copy. The caller must invoke release exactly once when done with payload
// (decoded values never alias it; see Decode). mapped reports whether the
// payload aliases a mapping; buffered fallback is taken for unframed
// stores, on platforms without mmap, and on any per-file mapping error.
func (s *Store) readFrame(key string) (payload []byte, release func(), start time.Time, mapped bool, err error) {
	s.mu.RLock()
	_, ok := s.entries[key]
	path := s.path(key)
	tryMmap := s.mmapEnabled && s.framed && mmapAvailable
	s.mu.RUnlock()
	start = time.Now()
	if !ok {
		return nil, nil, start, false, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if s.takeReadFault(key) {
		return nil, nil, start, false, fmt.Errorf("store: read %s: %w", key, errInjectedRead)
	}
	if tryMmap {
		if raw, rel, merr := mmapFile(path); merr == nil {
			pl, ferr := verifyFrame(raw)
			if ferr != nil {
				rel()
				return nil, nil, start, false, fmt.Errorf("store: read %s: %w", key, ferr)
			}
			return pl, rel, start, true, nil
		}
		// Mapping failed (e.g. empty or vanished file): fall through to the
		// buffered path, which surfaces the definitive error.
	}
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, nil, start, false, fmt.Errorf("store: read %s: %w", key, rerr)
	}
	if s.framed {
		pl, ferr := verifyFrame(raw)
		if ferr != nil {
			return nil, nil, start, false, fmt.Errorf("store: read %s: %w", key, ferr)
		}
		raw = pl
	}
	return raw, func() {}, start, false, nil
}

// recordRead lands a measured load on the entry: load cost, access
// recency, and the tier's read-throughput estimate.
func (s *Store) recordRead(key string, size int64, elapsed time.Duration) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.LoadCost = elapsed
		e.LastAccess = time.Now()
	}
	s.observeRead(size, elapsed)
	s.mu.Unlock()
}

// Pin marks key as planned-for-load: EvictColdest will not delete it until
// a matching Unpin. Pins are refcounted (two pinners must both unpin) and
// key need not be stored yet — a pin placed before a demotion lands still
// protects the demoted bytes.
func (s *Store) Pin(key string) {
	s.mu.Lock()
	s.pins[key]++
	s.mu.Unlock()
}

// Unpin releases one Pin of key.
func (s *Store) Unpin(key string) {
	s.mu.Lock()
	if s.pins[key] > 1 {
		s.pins[key]--
	} else {
		delete(s.pins, key)
	}
	s.mu.Unlock()
}

// Pinned reports whether key currently holds at least one pin.
func (s *Store) Pinned(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pins[key] > 0
}

// Touch refreshes key's access recency without reading it, so a value a
// caller just consumed from elsewhere (e.g. a hot-tier hit served from the
// entry's freshly promoted bytes) does not look eviction-cold.
func (s *Store) Touch(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.LastAccess = time.Now()
	}
	s.mu.Unlock()
}

// saving is the entry's eviction reward: the nanoseconds a future consumer
// saves by loading it instead of recomputing it. Unknown recompute costs
// (and entries cheaper to recompute than to load) save nothing.
func (e *Entry) saving() int64 {
	s := e.Recompute - e.LoadCost.Nanoseconds()
	if e.Recompute <= 0 || s < 0 {
		return 0
	}
	return s
}

// savingPerByte normalizes the eviction reward by size, so a huge blob with
// a modest saving ranks below a tiny one guarding an expensive sub-DAG.
func (e *Entry) savingPerByte() float64 {
	sv := e.saving()
	if sv == 0 {
		return 0
	}
	if e.Size <= 0 {
		// A zero-byte entry with a positive saving is infinitely cheap to
		// keep; rank it last.
		return float64(sv) * float64(time.Second)
	}
	return float64(sv) / float64(e.Size)
}

// victimOrder snapshots the entries best-victim-first under the configured
// eviction policy: EvictReward orders by smallest saving-per-byte with
// recency (then key) as the tie-break, so a tier full of unhinted entries
// behaves exactly like LRU; EvictLRU orders purely by recency.
// Callers must hold mu. O(n log n) per call, fine at workflow scale (tens
// to hundreds of entries); a priority heap would be the upgrade if tier
// populations grow by orders of magnitude.
func (s *Store) victimOrder() []*Entry {
	victims := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		victims = append(victims, e)
	}
	reward := s.evict == EvictReward
	sort.Slice(victims, func(i, j int) bool {
		if reward {
			si, sj := victims[i].savingPerByte(), victims[j].savingPerByte()
			if si != sj {
				return si < sj
			}
		}
		if !victims[i].LastAccess.Equal(victims[j].LastAccess) {
			return victims[i].LastAccess.Before(victims[j].LastAccess)
		}
		return victims[i].Key < victims[j].Key // deterministic tie-break
	})
	return victims
}

// VictimCandidates returns the best eviction victims (see victimOrder)
// whose removal would bring the free budget up to need bytes — a snapshot,
// with nothing removed. The tiered store demotes candidates
// copy-then-delete (write the bytes to the cold tier, then Delete here), so
// a mid-demotion key is never absent from both tiers. Empty on an
// unbudgeted store or when need already fits.
func (s *Store) VictimCandidates(need int64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget <= 0 || s.budget-s.used >= need {
		return nil
	}
	free := s.budget - s.used
	var victims []Entry
	for _, e := range s.victimOrder() {
		if free >= need {
			break
		}
		free += e.Size
		victims = append(victims, *e)
	}
	return victims
}

// EvictColdest removes the cheapest-to-lose entries (see victimOrder)
// until the free budget reaches need bytes, deleting their files outright,
// and returns the evicted entries. The spill tier uses it to admit new
// values; an evicted value is gone. Pinned entries (keys the current run
// still plans to load) are never victims, so within-run eviction cannot
// delete a value the plan depends on — if only pinned entries remain, the
// admission simply fails its budget check instead. An installed
// EvictPlanner is consulted first with the unpinned candidates; the greedy
// loop then frees whatever the planned set left short. On an unbudgeted
// store, or when need already fits, nothing is evicted.
func (s *Store) EvictColdest(need int64) []Entry {
	s.mu.Lock()
	if s.budget <= 0 || s.budget-s.used >= need {
		s.mu.Unlock()
		return nil
	}
	var victims []Entry
	if s.planner != nil {
		cands := make([]Entry, 0, len(s.entries))
		for _, e := range s.entries {
			if s.pins[e.Key] == 0 {
				cands = append(cands, *e)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Key < cands[j].Key })
		shortfall := need - (s.budget - s.used)
		for _, key := range s.planner(cands, shortfall) {
			e, ok := s.entries[key]
			if !ok || s.pins[key] > 0 {
				continue // planner returned a stale or protected key; skip it
			}
			delete(s.entries, key)
			s.used -= e.Size
			victims = append(victims, *e)
		}
	}
	for _, e := range s.victimOrder() {
		if s.budget-s.used >= need {
			break
		}
		if s.pins[e.Key] > 0 {
			continue // planned-load key; never deleted mid-run
		}
		delete(s.entries, e.Key)
		s.used -= e.Size
		victims = append(victims, *e)
	}
	s.mu.Unlock()
	for _, v := range victims {
		os.Remove(s.path(v.Key))
	}
	return victims
}

// evictableBytes sums the sizes of unpinned entries — the most an eviction
// pass could possibly free. Callers must hold mu (read or write).
func (s *Store) evictableBytes() int64 {
	var total int64
	for _, e := range s.entries {
		if s.pins[e.Key] == 0 {
			total += e.Size
		}
	}
	return total
}

// Has reports whether key is stored.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[key]
	return ok
}

// Lookup returns the entry metadata for key.
func (s *Store) Lookup(key string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.entries[key]; ok {
		return *e, true
	}
	return Entry{}, false
}

// Delete removes a stored entry, releasing its budget.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(s.entries, key)
	s.used -= e.Size
	path := s.path(key)
	s.mu.Unlock()
	s.injectReadFault(key, 0) // a deleted entry's armed faults die with it
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// Clear removes every entry.
func (s *Store) Clear() error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	for _, k := range keys {
		if err := s.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// Used returns the bytes currently consumed.
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Budget returns the configured budget (<=0 means unlimited).
func (s *Store) Budget() int64 { return s.budget }

// Remaining returns the budget headroom, or a very large value if unlimited.
func (s *Store) Remaining() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.budget <= 0 {
		return 1 << 60
	}
	return s.budget - s.used
}

// OwnerUsage returns the bytes currently attributed to each owner (see
// Entry.Owner). Unowned entries are summed under the empty key. The serve
// layer's per-tenant budget admission reads this.
func (s *Store) OwnerUsage() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64)
	for _, e := range s.entries {
		out[e.Owner] += e.Size
	}
	return out
}

// Entries returns a snapshot of all entries sorted by key.
func (s *Store) Entries() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// observeRead updates the smoothed read throughput; mu held.
func (s *Store) observeRead(size int64, d time.Duration) {
	s.readBps = smooth(s.readBps, size, d)
}

// observeWrite updates the smoothed write throughput; mu held.
func (s *Store) observeWrite(size int64, d time.Duration) {
	s.writeBps = smooth(s.writeBps, size, d)
}

func smooth(prev float64, size int64, d time.Duration) float64 {
	if d <= 0 || size <= 0 {
		return prev
	}
	obs := float64(size) / d.Seconds()
	const alpha = 0.3
	return alpha*obs + (1-alpha)*prev
}
