package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload bytes")
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != frameHeaderSize+len(payload) {
		t.Fatalf("frame is %d bytes, want header %d + payload %d", buf.Len(), frameHeaderSize, len(payload))
	}
	got, err := verifyFrame(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("verified payload %q, want %q", got, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := verifyFrame(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("verified %d payload bytes, want 0", len(got))
	}
}

func TestVerifyFrameRejectsDamage(t *testing.T) {
	payload := []byte("some value worth protecting")
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"short-header", func(b []byte) []byte { return b[:frameHeaderSize-1] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"flipped-crc", func(b []byte) []byte { b[frameHeaderSize-1] ^= 0x01; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAA) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mangle(append([]byte(nil), good...))
			if _, err := verifyFrame(raw); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestSpillFramesOnDisk(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("framed on disk")
	if err := sp.PutBytes("k", payload); err != nil {
		t.Fatal(err)
	}
	// Entry metadata and budget accounting stay in payload bytes — the
	// header is a storage detail, invisible to the cost model.
	e, ok := sp.Lookup("k")
	if !ok || e.Size != int64(len(payload)) {
		t.Fatalf("entry size %d, want payload size %d", e.Size, len(payload))
	}
	raw, err := os.ReadFile(filepath.Join(dir, "k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != frameHeaderSize+len(payload) {
		t.Fatalf("file is %d bytes, want %d", len(raw), frameHeaderSize+len(payload))
	}
	if got, err := verifyFrame(raw); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("on-disk frame does not verify: %v", err)
	}
	got, err := sp.GetBytes("k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GetBytes = %q, %v; want the payload back", got, err)
	}
}

func TestSpillReopenAdoptsFrames(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives reopen")
	if err := sp.PutBytes("k", payload); err != nil {
		t.Fatal(err)
	}
	sp2, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := sp2.Lookup("k")
	if !ok || e.Size != int64(len(payload)) {
		t.Fatalf("adopted entry size %d, want %d", e.Size, len(payload))
	}
	got, err := sp2.GetBytes("k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GetBytes after reopen = %q, %v", got, err)
	}
}

func TestSpillAdoptedUnframedFileSurfacesCorrupt(t *testing.T) {
	// A pre-frame spill directory (or an outside writer) leaves unframed
	// bytes: adoption keeps the entry, and the first read reports it
	// corrupt instead of serving garbage.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "legacy"), []byte("unframed bytes from an older layout"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Has("legacy") {
		t.Fatal("adopted file not visible")
	}
	if _, err := sp.GetBytes("legacy"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestInjectFaultKinds(t *testing.T) {
	payload := []byte("target of deliberate damage")
	for _, kind := range []FaultKind{FaultBitFlip, FaultTruncate} {
		sp := openSpillTemp(t, 0)
		if err := sp.PutBytes("k", payload); err != nil {
			t.Fatal(err)
		}
		if err := sp.InjectFault("k", kind); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.GetBytes("k"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("kind %d: err = %v, want ErrCorrupt", kind, err)
		}
	}
	// EIO is an I/O failure, not corruption: the bytes on disk are intact
	// but unreadable, persistently.
	sp := openSpillTemp(t, 0)
	if err := sp.PutBytes("k", payload); err != nil {
		t.Fatal(err)
	}
	if err := sp.InjectFault("k", FaultEIO); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := sp.GetBytes("k")
		if err == nil || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNotFound) {
			t.Fatalf("read %d: err = %v, want a plain I/O error", i, err)
		}
	}
	// Deleting the entry clears its fault: a fresh admission under the same
	// key reads cleanly.
	if err := sp.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := sp.PutBytes("k", payload); err != nil {
		t.Fatal(err)
	}
	if got, err := sp.GetBytes("k"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after delete+readmit: %q, %v", got, err)
	}
	if err := sp.InjectFault("missing", FaultEIO); !errors.Is(err, ErrNotFound) {
		t.Fatalf("injecting into a missing key: err = %v, want ErrNotFound", err)
	}
}

func TestTieredCorruptColdFrameCountedAndDeleted(t *testing.T) {
	hot := openTemp(t, 1) // rejects everything: all values land cold
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	if _, err := tiers.PutBytes("k", []byte("cold resident value")); err != nil {
		t.Fatal(err)
	}
	if err := cold.InjectFault("k", FaultBitFlip); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tiers.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	if c := tiers.Counters(); c.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", c.CorruptFrames)
	}
	// The damaged frame is deleted on detection: the key degrades to a
	// one-time miss instead of poisoning every later read.
	if cold.Has("k") {
		t.Fatal("corrupt frame still present after detection")
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	b := newBreaker()
	b.threshold = 2
	b.cooldown = 20 * time.Millisecond
	if !b.allow() {
		t.Fatal("closed breaker rejected an operation")
	}
	b.failure()
	b.failure() // second consecutive failure: trips
	if trips, open := b.snapshot(); trips != 1 || !open {
		t.Fatalf("after threshold failures: trips=%d open=%v, want 1 open", trips, open)
	}
	if b.allow() {
		t.Fatal("open breaker admitted an operation before cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not admit a half-open probe after cooldown")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe re-opens (and re-counts) the breaker...
	b.failure()
	if trips, open := b.snapshot(); trips != 2 || !open {
		t.Fatalf("after failed probe: trips=%d open=%v, want 2 open", trips, open)
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	// ...and a successful probe closes it fully.
	b.success()
	if _, open := b.snapshot(); open {
		t.Fatal("breaker still open after successful probe")
	}
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker rejected operations")
	}
}

func TestBreakerDisabledByZeroThreshold(t *testing.T) {
	b := newBreaker()
	b.threshold = 0
	for i := 0; i < 10; i++ {
		b.failure()
	}
	if trips, open := b.snapshot(); trips != 0 || open {
		t.Fatalf("disabled breaker tripped: trips=%d open=%v", trips, open)
	}
}

func TestTieredBreakerDisablesColdTier(t *testing.T) {
	hot := openTemp(t, 1)
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	tiers.ConfigureBreaker(2, time.Hour)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := tiers.PutBytes(k, []byte("cold value "+k)); err != nil {
			t.Fatal(err)
		}
		if err := cold.InjectFault(k, FaultEIO); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := tiers.Get("a"); err == nil {
		t.Fatal("EIO read succeeded")
	}
	if tiers.TierDisabled() {
		t.Fatal("breaker open after a single failure (threshold 2)")
	}
	if _, _, err := tiers.Get("b"); err == nil {
		t.Fatal("EIO read succeeded")
	}
	if !tiers.TierDisabled() {
		t.Fatal("breaker not open after two consecutive cold I/O failures")
	}
	if c := tiers.Counters(); c.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", c.BreakerTrips)
	}
	// With the breaker open the cold tier is out of the read path entirely:
	// key "c" is cold and intact-on-metadata, but the Get must answer with
	// the hot tier's miss, never touching the injected fault.
	if _, _, err := tiers.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get with open breaker = %v, want the hot tier's ErrNotFound", err)
	}
	// Spill admissions are likewise rejected: the hot-budget rejection
	// stands and the value is simply not materialized.
	if tier, err := tiers.PutBytes("d", []byte("new value")); tier != TierNone || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("PutBytes with open breaker = %v, %v; want TierNone + ErrBudgetExceeded", tier, err)
	}
}

func TestBreakerBudgetRejectionIsHealthy(t *testing.T) {
	hot := openTemp(t, 1)
	cold := openSpillTemp(t, 8) // tiny cold budget: big values rejected honestly
	tiers := NewTiered(hot, cold)
	tiers.ConfigureBreaker(2, time.Hour)
	big := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 5; i++ {
		if _, err := tiers.PutBytes("big", big); err == nil {
			t.Fatal("oversized spill admitted")
		}
	}
	if tiers.TierDisabled() {
		t.Fatal("budget rejections tripped the breaker; only I/O failures should")
	}
}

func TestPinExemptsFromColdEviction(t *testing.T) {
	// Budget fits two 8-byte entries; admitting a third must evict the LRU.
	sp := openSpillTemp(t, 16)
	val := []byte("12345678")
	if err := sp.PutBytes("a", val); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // order LRU recency
	if err := sp.PutBytes("b", val); err != nil {
		t.Fatal(err)
	}
	sp.s.Pin("a")
	if err := sp.PutBytes("c", val); err != nil {
		t.Fatal(err)
	}
	if !sp.Has("a") {
		t.Fatal("pinned LRU key was evicted")
	}
	if sp.Has("b") {
		t.Fatal("eviction did not fall through to the unpinned victim")
	}
	sp.s.Unpin("a")
	if err := sp.PutBytes("d", val); err != nil {
		t.Fatal(err)
	}
	if sp.Has("a") {
		t.Fatal("unpinned key survived an eviction it should have lost")
	}
}

func TestPinRefcounted(t *testing.T) {
	s := openTemp(t, 0)
	s.Pin("k")
	s.Pin("k")
	s.Unpin("k")
	if !s.Pinned("k") {
		t.Fatal("key unpinned while one of two pins remains")
	}
	s.Unpin("k")
	if s.Pinned("k") {
		t.Fatal("key still pinned after matching unpins")
	}
	s.Unpin("k") // over-unpin must stay a no-op
	s.Pin("k")
	if !s.Pinned("k") {
		t.Fatal("pin after over-unpin did not stick")
	}
	s.Unpin("k")
}

// TestPinVsEvictRace drives concurrent pin/unpin traffic against
// admissions that must evict, under the race detector: the invariant is
// that the store stays within budget and never deadlocks, whatever the
// interleaving.
func TestPinVsEvictRace(t *testing.T) {
	sp := openSpillTemp(t, 64)
	val := []byte("12345678")
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp.s.Pin(k)
				_ = sp.PutBytes(k, val)
				_, _ = sp.GetBytes(k)
				sp.s.Unpin(k)
			}
		}(k)
	}
	wg.Wait()
	if used, budget := sp.Used(), sp.Budget(); used > budget {
		t.Fatalf("spill tier used %d over its %d budget", used, budget)
	}
	for _, k := range keys {
		if sp.s.Pinned(k) {
			t.Fatalf("key %s still pinned after all releases", k)
		}
	}
}
