package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ColdThroughput seeds the spill tier's load-cost estimate before any I/O
// has been measured: 80 MB/s, modeling the slower medium a production cold
// tier sits on (network or archival storage). Measured observations smooth
// toward the tier's real throughput, but the asymmetric seed is what makes
// cold-start recompute-vs-load decisions price a spilled value honestly
// more expensive than a hot one.
const ColdThroughput = 80e6

// Spill is the cold second tier of a tiered materialization store: a
// budgeted disk store in its own directory that admits values the hot tier
// rejected (spill) or evicted (demotion), and — unlike the hot tier — makes
// room for new admissions by deleting its own least-recently-accessed
// entries. A value evicted from the spill tier is gone; the next
// iteration's cost model simply sees it as not loadable and recomputes it.
type Spill struct {
	s *Store
	// putMu serializes admissions: eviction deletes victim files after
	// releasing the store lock, so two concurrent admissions could
	// otherwise race an eviction's file removal against a re-admission's
	// fresh write. Cold-tier writes happen off the execution engine's
	// critical path (background materialization writers and promotions),
	// so holding a mutex across the file I/O costs nothing that matters.
	putMu     sync.Mutex
	evictions atomic.Int64
}

// OpenSpill creates or reuses a spill tier rooted at dir with the given
// budget in bytes (<=0 disables the budget). Existing files are adopted,
// exactly like Open. Unlike the hot tier, spill files are framed — every
// write carries a length+CRC-32C header (see frame.go) verified on read —
// and admissions fsync before the rename, so neither a crash mid-write nor
// later on-disk damage can hand a later iteration silently wrong bytes:
// both surface as ErrCorrupt, which the engine treats as a cache miss.
func OpenSpill(dir string, budget int64) (*Spill, error) {
	return openSpill(dir, budget, false)
}

// OpenSpillMmap is OpenSpill with zero-copy memory-mapped cold reads
// enabled: tiered Gets serve the frame payload directly from the page cache
// (CRC still verified once per read) instead of through an os.ReadFile
// copy. Platforms without mmap support, and per-file mapping failures, fall
// back to the buffered path transparently.
func OpenSpillMmap(dir string, budget int64) (*Spill, error) {
	return openSpill(dir, budget, true)
}

func openSpill(dir string, budget int64, mmap bool) (*Spill, error) {
	s, err := open(dir, budget, true, true)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.mmapEnabled = mmap
	s.readBps = ColdThroughput
	s.writeBps = ColdThroughput
	for _, e := range s.entries {
		e.LoadCost = s.estimateLoad(e.Size)
	}
	s.mu.Unlock()
	return &Spill{s: s}, nil
}

// PutBytes admits pre-encoded bytes, deleting the cheapest-to-lose entries
// (reward-aware by default; see Store.EvictColdest) as needed to make room.
// Re-admitting an existing key is an idempotent no-op (content addressing)
// and evicts nothing. A value that cannot fit even after evicting every
// unpinned entry — larger than the whole budget, or crowded out by pinned
// planned-load keys — is rejected up front with ErrBudgetExceeded and
// evicts nothing: a doomed admission must not destroy values to make room
// it can never have.
func (sp *Spill) PutBytes(key string, raw []byte) error {
	return sp.PutBytesHint(key, raw, RewardHint{})
}

// PutBytesHint is PutBytes with a recompute-saving hint attached to the
// entry (see RewardHint); the hint feeds the tier's reward-aware eviction.
func (sp *Spill) PutBytesHint(key string, raw []byte, hint RewardHint) error {
	size := int64(len(raw))
	sp.putMu.Lock()
	defer sp.putMu.Unlock()
	if sp.s.Has(key) {
		sp.s.SetHint(key, hint)
		return nil // already admitted; no room needed, nothing to evict
	}
	sp.s.mu.RLock()
	reachable := sp.s.budget - sp.s.used + sp.s.evictableBytes()
	overBudget := sp.s.budget > 0 && size > reachable
	sp.s.mu.RUnlock()
	if overBudget {
		return fmt.Errorf("%w: need %d, at most %d freeable of %d", ErrBudgetExceeded, size, reachable, sp.s.budget)
	}
	ev := sp.s.EvictColdest(size)
	sp.evictions.Add(int64(len(ev)))
	return sp.s.PutBytesHint(key, raw, hint)
}

// PutEncoded admits an already-encoded value; the caller keeps ownership
// of enc. Like Store.PutEncoded this performs no gob encode of its own —
// spilled values are never re-encoded.
func (sp *Spill) PutEncoded(key string, enc *Encoded) error {
	return sp.PutBytes(key, enc.Bytes())
}

// PutEncodedHint is PutEncoded with a recompute-saving hint (see
// PutBytesHint).
func (sp *Spill) PutEncodedHint(key string, enc *Encoded, hint RewardHint) error {
	return sp.PutBytesHint(key, enc.Bytes(), hint)
}

// SetHint refreshes the recompute-saving hint on an already-admitted entry.
func (sp *Spill) SetHint(key string, hint RewardHint) { sp.s.SetHint(key, hint) }

// SetEvictionPolicy selects the victim ranking for this tier's eviction
// (reward-aware by default; EvictLRU is the ablation baseline).
func (sp *Spill) SetEvictionPolicy(p EvictionPolicy) { sp.s.SetEvictionPolicy(p) }

// SetEvictPlanner installs a global evict-set planner on this tier (see
// Store.SetEvictPlanner).
func (sp *Spill) SetEvictPlanner(p EvictPlanner) { sp.s.SetEvictPlanner(p) }

// Get loads and decodes the value for key, recording the measured cold-tier
// load cost on the entry.
func (sp *Spill) Get(key string) (any, error) { return sp.s.Get(key) }

// GetBytes loads the raw serialized bytes for key (see Store.GetBytes).
func (sp *Spill) GetBytes(key string) ([]byte, error) { return sp.s.GetBytes(key) }

// Has reports whether key is spilled.
func (sp *Spill) Has(key string) bool { return sp.s.Has(key) }

// Lookup returns the entry metadata for key.
func (sp *Spill) Lookup(key string) (Entry, bool) { return sp.s.Lookup(key) }

// Delete removes a spilled entry, releasing its budget.
func (sp *Spill) Delete(key string) error { return sp.s.Delete(key) }

// Pinned reports whether key currently holds at least one eviction pin
// (see Tiered.Pin).
func (sp *Spill) Pinned(key string) bool { return sp.s.Pinned(key) }

// Entries returns a snapshot of all spilled entries sorted by key.
func (sp *Spill) Entries() []Entry { return sp.s.Entries() }

// OwnerUsage reports per-owner byte usage (see Store.OwnerUsage).
func (sp *Spill) OwnerUsage() map[string]int64 { return sp.s.OwnerUsage() }

// Used returns the bytes currently consumed.
func (sp *Spill) Used() int64 { return sp.s.Used() }

// Budget returns the configured budget (<=0 means unlimited).
func (sp *Spill) Budget() int64 { return sp.s.Budget() }

// Remaining returns the budget headroom, or a very large value if unlimited.
func (sp *Spill) Remaining() int64 { return sp.s.Remaining() }

// EstimateLoad predicts the cold-tier load cost for a value of the given
// size from the tier's own smoothed throughput — the per-tier l_i the
// optimizer consults for spilled values.
func (sp *Spill) EstimateLoad(size int64) time.Duration { return sp.s.EstimateLoad(size) }

// Evictions returns how many entries this tier has deleted to make room
// since it was opened.
func (sp *Spill) Evictions() int64 { return sp.evictions.Load() }

// FaultKind selects a fault for InjectFault, the store-level half of the
// deterministic fault-injection harness.
type FaultKind int

const (
	// FaultBitFlip flips one payload bit on disk; the frame's checksum
	// verify fails and reads return ErrCorrupt.
	FaultBitFlip FaultKind = iota
	// FaultTruncate cuts the file short; the frame's length check fails and
	// reads return ErrCorrupt.
	FaultTruncate
	// FaultEIO makes every subsequent read of the key fail with a synthetic
	// I/O error (a failing device, not bad bytes). Cleared when the entry
	// is deleted or overwritten by a fresh admission.
	FaultEIO
)

// InjectFault damages key's stored frame (or arms a read fault) for tests
// and the chaos harness. Deterministic: the same fault on the same key
// always produces the same failure mode.
func (sp *Spill) InjectFault(key string, kind FaultKind) error {
	if !sp.s.Has(key) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	path := sp.s.path(key)
	switch kind {
	case FaultEIO:
		sp.s.injectReadFault(key, -1)
		return nil
	case FaultBitFlip:
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(raw) == 0 {
			return fmt.Errorf("store: inject %s: empty file", key)
		}
		raw[len(raw)-1] ^= 0x01 // last byte is always payload (or a short frame)
		return os.WriteFile(path, raw, 0o644)
	case FaultTruncate:
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		return os.Truncate(path, info.Size()/2)
	default:
		return fmt.Errorf("store: unknown fault kind %d", kind)
	}
}
