package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func openSpillTemp(t *testing.T, budget int64) *Spill {
	t.Helper()
	sp, err := OpenSpill(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestSmoothEWMA is the table-driven contract of the throughput smoother
// behind estimateLoad: alpha-weighted blending toward each observation,
// with degenerate observations (zero size or duration) leaving the
// estimate untouched.
func TestSmoothEWMA(t *testing.T) {
	const alpha = 0.3
	for _, tc := range []struct {
		name string
		prev float64
		size int64
		d    time.Duration
		want float64
	}{
		{"cold start blends toward first observation", DefaultThroughput, 1 << 20, time.Second,
			alpha*float64(1<<20) + (1-alpha)*DefaultThroughput},
		{"fast observation raises the estimate", 100e6, 400e6, time.Second, alpha*400e6 + (1-alpha)*100e6},
		{"slow observation lowers the estimate", 400e6, 100e6, time.Second, alpha*100e6 + (1-alpha)*400e6},
		{"steady state is a fixed point", 250e6, 250e6, time.Second, 250e6},
		{"zero duration is ignored", 300e6, 1 << 20, 0, 300e6},
		{"negative duration is ignored", 300e6, 1 << 20, -time.Second, 300e6},
		{"zero size is ignored", 300e6, 0, time.Second, 300e6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := smooth(tc.prev, tc.size, tc.d)
			if diff := got - tc.want; diff > 1 || diff < -1 {
				t.Fatalf("smooth(%v, %d, %v) = %v, want %v", tc.prev, tc.size, tc.d, got, tc.want)
			}
		})
	}
}

// TestEstimateLoadColdStartPerTier pins the cold-start pricing the
// optimizer sees before any I/O has been measured: a fresh hot tier
// estimates at DefaultThroughput, a fresh spill tier at the much slower
// ColdThroughput, so the same bytes cost ColdThroughput/DefaultThroughput
// times longer from cold — the asymmetry that makes recompute-vs-load
// decisions tier-aware.
func TestEstimateLoadColdStartPerTier(t *testing.T) {
	hot := openTemp(t, 0)
	cold := openSpillTemp(t, 0)
	for _, size := range []int64{1 << 10, 1 << 20, 64 << 20} {
		hotEst := hot.EstimateLoad(size)
		coldEst := cold.EstimateLoad(size)
		wantHot := time.Duration(float64(size) / DefaultThroughput * float64(time.Second))
		wantCold := time.Duration(float64(size) / ColdThroughput * float64(time.Second))
		if hotEst != wantHot {
			t.Errorf("size %d: hot estimate %v, want %v", size, hotEst, wantHot)
		}
		if coldEst != wantCold {
			t.Errorf("size %d: cold estimate %v, want %v", size, coldEst, wantCold)
		}
		if coldEst <= hotEst {
			t.Errorf("size %d: cold estimate %v not slower than hot %v", size, coldEst, hotEst)
		}
	}
}

// TestEstimateLoadSmoothedByObservation: measured reads move the per-tier
// estimate off its seed (the EWMA path of estimateLoad, end to end through
// Get), and the other tier's estimate is untouched.
func TestEstimateLoadSmoothedByObservation(t *testing.T) {
	hot := openTemp(t, 0)
	cold := openSpillTemp(t, 0)
	if err := hot.Put("k", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	seed := hot.EstimateLoad(1 << 20)
	if _, err := hot.Get("k"); err != nil {
		t.Fatal(err)
	}
	if got := hot.EstimateLoad(1 << 20); got == seed {
		t.Errorf("hot estimate %v unchanged after a measured read", got)
	}
	wantCold := time.Duration(float64(1<<20) / ColdThroughput * float64(time.Second))
	if got := cold.EstimateLoad(1 << 20); got != wantCold {
		t.Errorf("cold estimate %v moved without any cold observation, want seed %v", got, wantCold)
	}
}

// TestEvictColdestLRU: victim selection picks least-recently-accessed
// entries first (VictimCandidates, without mutating), and eviction removes
// exactly them, releasing their budget.
func TestEvictColdestLRU(t *testing.T) {
	s := openTemp(t, 3000)
	for i := 0; i < 3; i++ {
		if err := s.PutBytes(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte('a' + i)}, 1000)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct LastAccess ordering
	}
	// Refresh k0 so k1 becomes the coldest.
	if _, err := s.GetBytes("k0"); err != nil {
		t.Fatal(err)
	}
	cands := s.VictimCandidates(1000)
	if len(cands) != 1 || cands[0].Key != "k1" {
		t.Fatalf("candidates %+v, want exactly k1 (the least recently accessed)", cands)
	}
	if !s.Has("k1") || s.Used() != 3000 {
		t.Fatalf("VictimCandidates mutated the store: used %d", s.Used())
	}
	victims := s.EvictColdest(1000)
	if len(victims) != 1 || victims[0].Key != "k1" {
		t.Fatalf("evicted %+v, want exactly k1", victims)
	}
	if s.Has("k1") || s.Used() != 2000 {
		t.Fatalf("k1 still present or budget not released: used %d", s.Used())
	}
	// Enough room already: selection and eviction are no-ops.
	if v := s.VictimCandidates(500); len(v) != 0 {
		t.Fatalf("candidates %+v with sufficient headroom", v)
	}
	if v := s.EvictColdest(500); len(v) != 0 {
		t.Fatalf("evicted %+v with sufficient headroom", v)
	}
	// Unbudgeted stores never evict.
	u := openTemp(t, 0)
	if err := u.PutBytes("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v := u.EvictColdest(1 << 40); len(v) != 0 {
		t.Fatalf("unbudgeted store evicted %+v", v)
	}
}

// TestSpillAdmissionEvictsColdest: the spill tier deletes its own
// least-recently-accessed entries to admit new values, counts the
// deletions, and rejects only values bigger than its whole budget.
func TestSpillAdmissionEvictsColdest(t *testing.T) {
	sp := openSpillTemp(t, 2500)
	for i := 0; i < 2; i++ {
		if err := sp.PutBytes(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte('a' + i)}, 1000)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sp.PutBytes("k2", bytes.Repeat([]byte{'c'}, 1000)); err != nil {
		t.Fatal(err)
	}
	if sp.Has("k0") {
		t.Fatal("k0 (coldest) survived an admission that needed its room")
	}
	if !sp.Has("k1") || !sp.Has("k2") {
		t.Fatal("k1/k2 missing after admission")
	}
	if got := sp.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if err := sp.PutBytes("huge", make([]byte, 4000)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget admission err = %v, want ErrBudgetExceeded", err)
	}
	if sp.Used() > sp.Budget() {
		t.Fatalf("spill used %d over budget %d", sp.Used(), sp.Budget())
	}
	// Idempotent re-admission of a present key must not evict anything,
	// even with the tier at capacity.
	before := sp.Evictions()
	if err := sp.PutBytes("k2", bytes.Repeat([]byte{'c'}, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := sp.Evictions(); got != before {
		t.Fatalf("re-admitting a present key evicted %d entries", got-before)
	}
	if !sp.Has("k1") || !sp.Has("k2") {
		t.Fatal("entries lost to an idempotent re-admission")
	}
}

// TestTieredSpillOnRejection: hot-budget rejections land in the cold tier,
// are counted, and are visible through the union views with the cold
// tier's own (slower) load estimate.
func TestTieredSpillOnRejection(t *testing.T) {
	hot := openTemp(t, 1500)
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	small := bytes.Repeat([]byte{'s'}, 1000)
	big := bytes.Repeat([]byte{'b'}, 1200)
	if tier, err := tiers.PutBytes("small", small); err != nil || tier != TierHot {
		t.Fatalf("small put → %v, %v; want hot", tier, err)
	}
	if tier, err := tiers.PutBytes("big", big); err != nil || tier != TierCold {
		t.Fatalf("big put → %v, %v; want cold (spilled)", tier, err)
	}
	if c := tiers.Counters(); c.Spills != 1 {
		t.Fatalf("spills = %d, want 1", c.Spills)
	}
	if !tiers.Has("big") || !tiers.Has("small") || tiers.Has("absent") {
		t.Fatal("union Has wrong")
	}
	entry, tier, ok := tiers.Lookup("big")
	if !ok || tier != TierCold || entry.Size != 1200 {
		t.Fatalf("Lookup(big) = %+v, %v, %v; want cold entry of 1200 bytes", entry, tier, ok)
	}
	// Per-tier pricing: the cold entry's seeded estimate is the cold
	// tier's, slower than what the hot tier would charge for the same size.
	if entry.LoadCost < cold.EstimateLoad(1200)/2 || entry.LoadCost <= hot.EstimateLoad(1200) {
		t.Fatalf("cold entry load cost %v not priced at the cold tier (hot %v, cold %v)",
			entry.LoadCost, hot.EstimateLoad(1200), cold.EstimateLoad(1200))
	}
	if hot.Used() > hot.Budget() {
		t.Fatalf("hot used %d over budget %d", hot.Used(), hot.Budget())
	}
}

// TestTieredPromotionDemotesLRU: a cold hit is promoted into the hot tier,
// demoting the hot tier's least-recently-accessed entries to cold to make
// room — every migration observable in the counters, no value ever in both
// tiers or in neither.
func TestTieredPromotionDemotesLRU(t *testing.T) {
	hot := openTemp(t, 2500)
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	// Fill hot with two values, then spill a third.
	for i := 0; i < 2; i++ {
		if tier, err := tiers.PutBytes(fmt.Sprintf("hot%d", i), encInt(t, 1000+i)); err != nil || tier != TierHot {
			t.Fatalf("hot%d → %v, %v", i, tier, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	bigRaw := encBytes(t, bytes.Repeat([]byte{'z'}, 2400))
	if tier, err := tiers.PutBytes("big", bigRaw); err != nil || tier != TierCold {
		t.Fatalf("big → %v, %v; want cold", tier, err)
	}
	// Refresh hot1 so hot0 is the demotion victim.
	if _, _, err := tiers.Get("hot1"); err != nil {
		t.Fatal(err)
	}
	v, tier, err := tiers.Get("big")
	if err != nil || tier != TierCold {
		t.Fatalf("Get(big) → tier %v, err %v; want served from cold", tier, err)
	}
	if got, ok := v.([]byte); !ok || !bytes.Equal(got, bytes.Repeat([]byte{'z'}, 2400)) {
		t.Fatalf("Get(big) decoded wrong value")
	}
	if !hot.Has("big") || cold.Has("big") {
		t.Fatal("big not promoted hot-only")
	}
	if hot.Has("hot0") || !cold.Has("hot0") {
		t.Fatal("hot0 (LRU victim) not demoted to cold")
	}
	c := tiers.Counters()
	if c.Promotions != 1 || c.Evictions < 1 {
		t.Fatalf("counters = %+v, want 1 promotion and ≥1 eviction", c)
	}
	if hot.Used() > hot.Budget() {
		t.Fatalf("hot used %d over budget %d after promotion", hot.Used(), hot.Budget())
	}
	// The promoted value now serves hot, and the demoted one still loads.
	if _, tier, err := tiers.Get("big"); err != nil || tier != TierHot {
		t.Fatalf("re-Get(big) → %v, %v; want hot hit", tier, err)
	}
	if _, tier, err := tiers.Get("hot0"); err != nil || tier == TierNone {
		t.Fatalf("Get(hot0) → %v, %v; want a hit from some tier", tier, err)
	}
}

// TestTieredOversizedStaysCold: a value larger than the whole hot budget
// is served from cold without promotion churn.
func TestTieredOversizedStaysCold(t *testing.T) {
	hot := openTemp(t, 500)
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	raw := encBytes(t, bytes.Repeat([]byte{'y'}, 2000))
	if tier, err := tiers.PutBytes("big", raw); err != nil || tier != TierCold {
		t.Fatalf("big → %v, %v; want cold", tier, err)
	}
	for i := 0; i < 2; i++ {
		if _, tier, err := tiers.Get("big"); err != nil || tier != TierCold {
			t.Fatalf("Get %d → %v, %v; want cold (no promotion possible)", i, tier, err)
		}
	}
	if c := tiers.Counters(); c.Promotions != 0 {
		t.Fatalf("promotions = %d for an unpromotable value", c.Promotions)
	}
}

// TestTieredDemotionFailureRestoresVictim: when a promotion's demotion
// victim is bigger than the whole cold budget, the victim must be restored
// to the hot tier — never destroyed — and the unpromotable value simply
// stays cold. No key is ever lost from both tiers.
func TestTieredDemotionFailureRestoresVictim(t *testing.T) {
	hot := openTemp(t, 2500)
	cold := openSpillTemp(t, 2100)
	tiers := NewTiered(hot, cold)
	victim := encBytes(t, bytes.Repeat([]byte{'v'}, 2400)) // > cold budget once encoded
	if tier, err := tiers.PutBytes("victim", victim); err != nil || tier != TierHot {
		t.Fatalf("victim → %v, %v; want hot", tier, err)
	}
	spilled := encBytes(t, bytes.Repeat([]byte{'s'}, 2000))
	if tier, err := tiers.PutBytes("spilled", spilled); err != nil || tier != TierCold {
		t.Fatalf("spilled → %v, %v; want cold", tier, err)
	}
	// Promotion must fail gracefully: the victim cannot demote (too big
	// for cold), so it is restored and the cold value stays cold.
	if _, tier, err := tiers.Get("spilled"); err != nil || tier != TierCold {
		t.Fatalf("Get(spilled) → %v, %v; want served from cold", tier, err)
	}
	if !hot.Has("victim") {
		t.Fatal("victim destroyed: evicted from hot and rejected by cold")
	}
	if !cold.Has("spilled") {
		t.Fatal("spilled value lost from cold")
	}
	if c := tiers.Counters(); c.Promotions != 0 || c.Evictions != 0 {
		t.Fatalf("counters = %+v, want no completed promotion/eviction", c)
	}
	if hot.Used() > hot.Budget() {
		t.Fatalf("hot used %d over budget %d after restore", hot.Used(), hot.Budget())
	}
}

// TestStoreGetMeasuresDecode: Get's recorded load cost covers read plus
// decode (the full price a consumer pays), not just the file read.
func TestStoreGetMeasuresDecode(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("k", bytes.Repeat([]byte{'d'}, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Lookup("k")
	if !ok || e.LoadCost <= 0 {
		t.Fatalf("entry after Get: %+v", e)
	}
}

// TestTieredNilCold: without a spill tier every operation degrades to the
// plain hot store — rejections surface, misses miss.
func TestTieredNilCold(t *testing.T) {
	hot := openTemp(t, 100)
	tiers := NewTiered(hot, nil)
	if _, err := tiers.PutBytes("big", make([]byte, 200)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded with no cold tier", err)
	}
	if _, _, err := tiers.Get("big"); err == nil {
		t.Fatal("Get succeeded for a rejected value")
	}
	if tiers.Has("big") {
		t.Fatal("Has true for a rejected value")
	}
	if got, want := tiers.Remaining(), hot.Remaining(); got != want {
		t.Fatalf("Remaining = %d, want hot tier's %d", got, want)
	}
	if got, want := tiers.EstimateLoad(50), hot.EstimateLoad(50); got != want {
		t.Fatalf("EstimateLoad = %v, want hot tier's %v", got, want)
	}
}

// TestTieredRemainingAndEstimate: admission headroom and load pricing
// follow the tier a value would land in.
func TestTieredRemainingAndEstimate(t *testing.T) {
	hot := openTemp(t, 1000)
	cold := openSpillTemp(t, 5000)
	tiers := NewTiered(hot, cold)
	if got := tiers.Remaining(); got != 5000 {
		t.Fatalf("Remaining = %d, want the cold budget 5000 (spill evicts to admit)", got)
	}
	if got, want := tiers.EstimateLoad(500), hot.EstimateLoad(500); got != want {
		t.Fatalf("fitting value priced %v, want hot %v", got, want)
	}
	if got, want := tiers.EstimateLoad(2000), cold.EstimateLoad(2000); got != want {
		t.Fatalf("overflowing value priced %v, want cold %v", got, want)
	}
	unlimited := NewTiered(hot, openSpillTemp(t, 0))
	if got := unlimited.Remaining(); got != 1<<60 {
		t.Fatalf("Remaining = %d with unbudgeted cold tier, want 1<<60", got)
	}
}

// TestTieredEncodeOncePerTier is the encode-once contract across the whole
// tier lifecycle: one EncodeValue serializes the value, and spilling it,
// loading it cold, promoting it and demoting its victims move only raw
// bytes — the codec counter must not advance again anywhere in the cycle.
func TestTieredEncodeOncePerTier(t *testing.T) {
	hot := openTemp(t, 2500)
	cold := openSpillTemp(t, 0)
	tiers := NewTiered(hot, cold)
	before := EncodeCalls()
	// One encode: the engine's probe-and-persist path.
	enc, err := EncodeValue(bytes.Repeat([]byte{'q'}, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if tier, err := tiers.PutEncoded("fill", enc); err != nil || tier != TierHot {
		t.Fatalf("fill → %v, %v", tier, err)
	}
	enc.Release()
	time.Sleep(2 * time.Millisecond)
	// Second encode: a value the hot tier must reject (spill admission).
	enc2, err := EncodeValue(bytes.Repeat([]byte{'r'}, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if tier, err := tiers.PutEncoded("spilled", enc2); err != nil || tier != TierCold {
		t.Fatalf("spilled → %v, %v; want cold", tier, err)
	}
	enc2.Release()
	// Cold load → promotion (demoting "fill"), then hot re-load: raw-byte
	// movement only.
	if _, tier, err := tiers.Get("spilled"); err != nil || tier != TierCold {
		t.Fatalf("cold get → %v, %v", tier, err)
	}
	if _, tier, err := tiers.Get("spilled"); err != nil || tier != TierHot {
		t.Fatalf("promoted get → %v, %v", tier, err)
	}
	if _, tier, err := tiers.Get("fill"); err != nil || tier != TierCold {
		t.Fatalf("demoted get → %v, %v", tier, err)
	}
	if got := EncodeCalls() - before; got != 2 {
		t.Fatalf("%d gob encodes across the spill/promote/demote cycle, want exactly the 2 EncodeValue calls", got)
	}
	// Two promotions: "spilled" on its first cold hit, then "fill" — demoted
	// to make room — promoted back by its own cold hit at the end.
	if c := tiers.Counters(); c.Promotions != 2 || c.Evictions != 2 || c.Spills != 1 {
		t.Fatalf("counters = %+v, want 1 spill, 2 promotions, 2 evictions", c)
	}
}

// encInt encodes an int-keyed payload of roughly n bytes for budget tests.
func encInt(t *testing.T, n int) []byte {
	t.Helper()
	return encBytes(t, bytes.Repeat([]byte{'x'}, n))
}

// encBytes gob-encodes a []byte value the way the engine would, so Get can
// decode what budget tests admit.
func encBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	raw, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
