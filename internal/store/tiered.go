package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tier names which store tier an operation touched.
type Tier int

const (
	// TierNone means no tier (a miss or a rejected write).
	TierNone Tier = iota
	// TierHot is the budgeted primary store.
	TierHot
	// TierCold is the spill tier.
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierCold:
		return "cold"
	default:
		return "none"
	}
}

// TierCounters is a snapshot of a Tiered store's cross-tier traffic.
type TierCounters struct {
	// Spills counts values the hot tier rejected on admission that landed
	// in the spill tier instead.
	Spills int64
	// Promotions counts cold-tier hits whose value was moved into the hot
	// tier.
	Promotions int64
	// Evictions counts hot-tier entries demoted to the spill tier to make
	// room for a promotion.
	Evictions int64
	// ColdEvictions counts spill-tier entries deleted outright to make room
	// for new admissions (those values are gone; the next iteration's cost
	// model sees them as not loadable and recomputes).
	ColdEvictions int64
	// CorruptFrames counts cold-tier reads that failed frame verification
	// (ErrCorrupt). Each corrupt frame is deleted on detection, so the
	// damage degrades to a one-time cache miss.
	CorruptFrames int64
	// BreakerTrips counts how many times repeated cold-tier I/O failures
	// tripped the circuit breaker open (disabling the cold tier until its
	// cooldown elapses).
	BreakerTrips int64
	// MmapColdReads counts cold-tier reads served zero-copy from a memory
	// mapping (promotion and decode consumed the mapped pages directly,
	// with no intermediate read buffer).
	MmapColdReads int64
	// BufferedColdReads counts cold-tier reads that took the buffered
	// os.ReadFile path (mmap disabled, unsupported, or failed per-file).
	BufferedColdReads int64
}

// Tiered composes the budgeted hot store with an optional cold spill tier
// (§2.3's storage budget, extended with the hot/cold hierarchy production
// caching systems use). Admission tries the hot tier first and spills on
// budget rejection; a Get that misses hot is served from cold and promoted
// back, demoting the hot tier's least-recently-accessed entries to cold to
// make room. All byte movement between tiers is raw — a value is gob-encoded
// exactly once, on first materialization, no matter how many times it
// migrates.
//
// With a nil cold tier every method degrades to the plain hot store, so the
// execution engine runs one code path whether spilling is configured or not.
//
// Concurrency: cross-tier movement (promotion, demotion, the locked
// re-check of a racing Get) serializes on mu, and every move is
// copy-then-delete — the bytes land in the destination tier before the
// source entry is removed — so a key mid-migration is always observable
// in at least one tier, including to the engine's lock-free Has/Lookup
// dedupe checks. The lock-free fast paths (hot hit, hot admission) never
// take mu.
type Tiered struct {
	hot  *Store
	cold *Spill

	// mu serializes cross-tier movement so no key is ever absent from both
	// tiers while a locked reader looks for it.
	mu sync.Mutex

	// brk is the cold tier's circuit breaker: repeated cold I/O failures
	// trip it open, and while open the store behaves as if no cold tier
	// were attached (hot-only graceful degradation). Only the I/O paths —
	// cold reads and spill writes — consult it; metadata views (Has,
	// Lookup, Entries) stay truthful about what is on disk.
	brk *breaker

	spills        atomic.Int64
	promotions    atomic.Int64
	evictions     atomic.Int64
	corrupt       atomic.Int64
	mmapReads     atomic.Int64
	bufferedReads atomic.Int64

	// flightMu guards flights, the in-flight computation registry
	// (BeginCompute/FinishCompute): one leader per key currently being
	// computed, any number of waiters parked on its resolution. Lazily
	// allocated; independent of mu so single-flight bookkeeping never
	// contends with cross-tier movement.
	flightMu sync.Mutex
	flights  map[string]*inflight
	// glow is the afterglow cache of recently resolved flights' values
	// (RecentResolved), bounded by afterglowMax/afterglowTTL; glowOrder is
	// its oldest-first eviction order. Guarded by flightMu.
	glow      map[string]glowEntry
	glowOrder []string
}

// NewTiered combines a hot store with an optional (nil-able) spill tier.
func NewTiered(hot *Store, cold *Spill) *Tiered {
	return &Tiered{hot: hot, cold: cold, brk: newBreaker()}
}

// ConfigureBreaker retunes the cold tier's circuit breaker: threshold is
// the consecutive-failure count that trips it (<=0 disables it), cooldown
// how long it stays open before admitting a half-open probe. Call before
// the store is shared across goroutines.
func (t *Tiered) ConfigureBreaker(threshold int, cooldown time.Duration) {
	t.brk.mu.Lock()
	t.brk.threshold = threshold
	t.brk.cooldown = cooldown
	t.brk.mu.Unlock()
}

// TierDisabled reports whether the breaker currently has the cold tier
// disabled (open or probing half-open).
func (t *Tiered) TierDisabled() bool {
	if t.cold == nil {
		return false
	}
	_, open := t.brk.snapshot()
	return open
}

// Pin marks key as planned-for-load in the cold tier, exempting it from the
// spill tier's LRU eviction until Unpin. The hot tier never deletes values
// destructively (demotion is copy-then-delete into cold, where the pin
// applies), so pinning the cold tier alone guarantees a planned-load key
// survives the whole run. Pins are refcounted; no-op without a cold tier.
func (t *Tiered) Pin(key string) {
	if t.cold != nil {
		t.cold.s.Pin(key)
	}
}

// Unpin releases one Pin of key.
func (t *Tiered) Unpin(key string) {
	if t.cold != nil {
		t.cold.s.Unpin(key)
	}
}

// coldPutResult lands a cold-tier write outcome on the breaker: a budget
// rejection is an honest, healthy answer (the mechanism works; the value
// just does not fit), only real I/O failures count toward tripping.
func (t *Tiered) coldPutResult(err error) {
	if err == nil || errors.Is(err, ErrBudgetExceeded) {
		t.brk.success()
	} else {
		t.brk.failure()
	}
}

// Hot exposes the hot tier.
func (t *Tiered) Hot() *Store { return t.hot }

// Cold exposes the spill tier (nil when tiering is disabled).
func (t *Tiered) Cold() *Spill { return t.cold }

// Counters snapshots the cumulative cross-tier traffic.
func (t *Tiered) Counters() TierCounters {
	c := TierCounters{
		Spills:            t.spills.Load(),
		Promotions:        t.promotions.Load(),
		Evictions:         t.evictions.Load(),
		CorruptFrames:     t.corrupt.Load(),
		MmapColdReads:     t.mmapReads.Load(),
		BufferedColdReads: t.bufferedReads.Load(),
	}
	c.BreakerTrips, _ = t.brk.snapshot()
	if t.cold != nil {
		c.ColdEvictions = t.cold.Evictions()
	}
	return c
}

// Has reports whether key is stored in either tier.
func (t *Tiered) Has(key string) bool {
	if t.hot.Has(key) {
		return true
	}
	return t.cold != nil && t.cold.Has(key)
}

// Lookup returns the entry metadata for key and the tier holding it. The
// entry's LoadCost is the holding tier's own measured (or seeded) estimate,
// so the optimizer's recompute-vs-load decision prices a spilled value at
// the real, slower cold-tier cost.
func (t *Tiered) Lookup(key string) (Entry, Tier, bool) {
	if e, ok := t.hot.Lookup(key); ok {
		return e, TierHot, true
	}
	if t.cold != nil {
		if e, ok := t.cold.Lookup(key); ok {
			return e, TierCold, true
		}
	}
	return Entry{}, TierNone, false
}

// Remaining returns the admission headroom: the largest value the tiered
// store can still accept. The spill tier deletes its coldest entries to
// make room, so with a cold tier attached anything up to the cold budget
// (or anything at all, when the cold tier is unbudgeted) is admissible even
// after the hot tier fills.
func (t *Tiered) Remaining() int64 {
	rem := t.hot.Remaining()
	if t.cold == nil {
		return rem
	}
	if cb := t.cold.Budget(); cb <= 0 {
		return 1 << 60
	} else if cb > rem {
		return cb
	}
	return rem
}

// OwnerUsage reports per-owner byte usage across both tiers (unowned
// entries under the empty key). An entry mid-demotion — copy-then-delete
// means its bytes exist in both tiers for a moment — can be counted twice;
// the serve layer's budget admission treats the figure as a conservative
// upper bound.
func (t *Tiered) OwnerUsage() map[string]int64 {
	out := t.hot.OwnerUsage()
	if t.cold != nil {
		for owner, n := range t.cold.OwnerUsage() {
			out[owner] += n
		}
	}
	return out
}

// EstimateLoad predicts the load cost of a value of the given size from the
// tier it would land in if admitted now: the hot tier's throughput while the
// value fits the hot budget, the (slower) cold tier's once it would spill.
func (t *Tiered) EstimateLoad(size int64) time.Duration {
	if t.cold == nil || t.hot.Remaining() >= size {
		return t.hot.EstimateLoad(size)
	}
	return t.cold.EstimateLoad(size)
}

// PutBytes admits pre-encoded bytes: hot tier first, spilling to the cold
// tier when the hot budget rejects the value. Returns the tier the value
// landed in.
func (t *Tiered) PutBytes(key string, raw []byte) (Tier, error) {
	return t.PutBytesHint(key, raw, RewardHint{})
}

// PutBytesHint is PutBytes with a recompute-saving hint (see RewardHint)
// that travels with the value into whichever tier admits it — and onward
// through later demotions and promotions — feeding the cold tier's
// reward-aware eviction.
func (t *Tiered) PutBytesHint(key string, raw []byte, hint RewardHint) (Tier, error) {
	// Snapshot presence before the put: the stale-cold cleanup below must
	// only run for a genuinely new hot admission. For a key that was
	// already hot, an idempotent re-put must not touch the cold tier — a
	// concurrent demotion of that key may be mid-copy there, and deleting
	// its fresh cold copy would strand the key in no tier.
	existedHot := t.cold != nil && t.hot.Has(key)
	err := t.hot.PutBytesHint(key, raw, hint)
	if err == nil {
		if t.cold != nil && !existedHot {
			// Keep the one-tier invariant: a stale cold copy (the key was
			// spilled in an earlier run and the hot tier has room now)
			// would double-count the key in union views and waste cold
			// budget.
			_ = t.cold.Delete(key)
		}
		return TierHot, nil
	}
	if t.cold == nil || !errors.Is(err, ErrBudgetExceeded) {
		return TierNone, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cold.Has(key) {
		t.cold.SetHint(key, hint)
		return TierCold, nil // idempotent re-admission, like Store.PutBytes
	}
	if !t.brk.allow() {
		// Breaker open: the cold tier is disabled, so the hot rejection
		// stands — the value is simply not materialized this run.
		return TierNone, err
	}
	if cerr := t.cold.PutBytesHint(key, raw, hint); cerr != nil {
		t.coldPutResult(cerr)
		return TierNone, fmt.Errorf("store: spill %s: %w", key, cerr)
	}
	t.coldPutResult(nil)
	t.spills.Add(1)
	return TierCold, nil
}

// PutEncoded admits an already-encoded value (the caller keeps ownership of
// enc), spilling on hot-tier rejection. No tier re-encodes the value.
func (t *Tiered) PutEncoded(key string, enc *Encoded) (Tier, error) {
	return t.PutBytes(key, enc.Bytes())
}

// PutEncodedHint is PutEncoded with a recompute-saving hint (see
// PutBytesHint).
func (t *Tiered) PutEncodedHint(key string, enc *Encoded, hint RewardHint) (Tier, error) {
	return t.PutBytesHint(key, enc.Bytes(), hint)
}

// SetHint refreshes the recompute-saving hint on whichever tier currently
// holds key (both, for a key mid-migration). A no-op for a zero hint or an
// unknown key.
func (t *Tiered) SetHint(key string, hint RewardHint) {
	t.hot.SetHint(key, hint)
	if t.cold != nil {
		t.cold.SetHint(key, hint)
	}
}

// Get loads and decodes the value for key: a hot hit is served lock-free;
// a cold hit is promoted into the hot tier (demoting the hot tier's
// least-recently-accessed entries to cold as needed) and decoded. Returns
// the tier that served the value. Only the file reads and the cross-tier
// movement hold the movement lock — the gob decode, usually the expensive
// part of a load, runs outside it, so concurrent cold loads of different
// keys overlap their decodes.
func (t *Tiered) Get(key string) (any, Tier, error) {
	// Lock-free fast path. Any failure — not just a map miss — falls
	// through to the locked path: a concurrent promotion can remove a hot
	// file between the metadata read and the file read.
	v, err := t.hot.Get(key)
	if err == nil {
		return v, TierHot, nil
	}
	if t.cold == nil {
		return nil, TierNone, err
	}
	t.mu.Lock()
	// Re-check hot under the movement lock: the key may have been promoted
	// (or demoted into existence here) while we waited.
	raw, start, hotErr := t.hot.read(key)
	if hotErr == nil {
		t.mu.Unlock()
		return t.decodeAndRecord(t.hot, key, raw, time.Since(start), TierHot)
	}
	if !t.brk.allow() {
		t.mu.Unlock()
		// Breaker open: behave as if no cold tier were attached. The hot
		// miss (or failure) is the answer; the engine degrades the load to
		// a recompute.
		return nil, TierNone, hotErr
	}
	payload, release, start, mapped, err := t.cold.s.readFrame(key)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			// Damaged bytes are unrecoverable: count and delete the frame
			// so the corruption degrades to a one-time cache miss instead
			// of poisoning every later read of the key.
			t.corrupt.Add(1)
			_ = t.cold.Delete(key)
		}
		if !errors.Is(err, ErrNotFound) {
			t.brk.failure() // corrupt frame or read I/O error
		} else {
			t.brk.success() // an honest miss is a healthy cold tier
		}
		t.mu.Unlock()
		// A cold miss must not mask a real hot-tier failure: if the hot
		// tier holds the key but its read failed (I/O error), that error
		// is the diagnosable one.
		if !errors.Is(hotErr, ErrNotFound) {
			return nil, TierNone, hotErr
		}
		return nil, TierNone, err
	}
	t.brk.success()
	if mapped {
		t.mmapReads.Add(1)
	} else {
		t.bufferedReads.Add(1)
	}
	readDur := time.Since(start)
	// The payload may alias a memory mapping: the promotion write and the
	// decode below both consume the mapped pages directly, and nothing they
	// produce retains a reference (PutBytesHint writes to a file, Decode
	// copies every string/byte slice), so the mapping is released as soon as
	// the decode lands.
	t.promoteLocked(key, payload)
	t.mu.Unlock()
	v, served, derr := t.decodeAndRecord(t.cold.s, key, payload, readDur, TierCold)
	release()
	return v, served, derr
}

// decodeAndRecord finishes a locked-path load outside the movement lock:
// decode the raw bytes and land the measured load cost — read plus decode,
// the full price a consumer pays, excluding any promotion work — on the
// serving tier's entry.
func (t *Tiered) decodeAndRecord(tier *Store, key string, raw []byte, readDur time.Duration, served Tier) (any, Tier, error) {
	decStart := time.Now()
	v, err := Decode(raw)
	if err != nil {
		return nil, served, err
	}
	tier.recordRead(key, int64(len(raw)), readDur+time.Since(decStart))
	return v, served, nil
}

// promoteLocked moves key's raw bytes from cold to hot, demoting the hot
// tier's coldest entries into the spill tier to make room. Callers hold
// t.mu. Demotion is copy-then-delete — a victim's bytes land in the cold
// tier before its hot entry is removed — so a mid-demotion key is never
// absent from both tiers, even to the engine's lock-free Has/Lookup
// dedupe checks. A value larger than the whole hot budget stays cold; a
// victim the cold tier cannot hold stays hot (possibly leaving too little
// room, in which case the promotion is abandoned); losing the freed-room
// race to a concurrent lock-free hot admission leaves the value cold too —
// promotion is an optimization, never a correctness requirement.
func (t *Tiered) promoteLocked(key string, raw []byte) {
	size := int64(len(raw))
	if b := t.hot.Budget(); b > 0 && size > b {
		return
	}
	// Freshen the promoted key's cold recency first: the demotions below
	// can trigger cold-tier evictions, and without this the key — read via
	// the recency-neutral read() — could be the cold tier's own eviction
	// victim. Capture its recompute hint too, so promotion carries it into
	// the hot tier (and a failed promotion re-admits it unchanged).
	t.cold.s.Touch(key)
	var hint RewardHint
	if ce, ok := t.cold.Lookup(key); ok {
		hint.RecomputeNanos = ce.Recompute
		hint.Owner = ce.Owner
	}
	for _, v := range t.hot.VictimCandidates(size) {
		vraw, _, err := t.hot.read(v.Key)
		if err != nil {
			continue // unreadable victim; leave its entry alone
		}
		// The demoted entry keeps its recompute hint and owner: the cold
		// tier's reward-aware eviction ranks it by the same saving it had
		// hot, and per-tenant accounting follows the bytes across tiers.
		if err := t.cold.PutBytesHint(v.Key, vraw, RewardHint{RecomputeNanos: v.Recompute, Owner: v.Owner}); err != nil {
			t.coldPutResult(err)
			continue // cold cannot hold it (whole-budget overflow); stays hot
		}
		t.coldPutResult(nil)
		if err := t.hot.Delete(v.Key); err == nil {
			t.evictions.Add(1)
		}
	}
	if err := t.hot.PutBytesHint(key, raw, hint); err != nil {
		// Still no room (undemotable victims, or a concurrent lock-free
		// admission claimed what the demotions freed): the value stays
		// cold. Re-admit the bytes in hand — the demotion churn above may
		// have evicted the key's cold entry, and returning with the key in
		// no tier would break the always-in-some-tier invariant.
		if !t.cold.Has(key) {
			t.coldPutResult(t.cold.PutBytesHint(key, raw, hint))
		}
		return
	}
	t.hot.Touch(key)
	t.promotions.Add(1)
	t.cold.Delete(key)
}
