package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt is returned by reads from a framed (cold-tier) store whose
// on-disk frame fails verification: bad magic, a length that disagrees with
// the file, or a checksum mismatch. The execution engine treats it — like
// any cold read I/O error — as a cache miss and recomputes the value from
// its DAG lineage instead of failing the run.
var ErrCorrupt = errors.New("store: frame corrupt")

// Cold-tier frame layout, little-endian:
//
//	offset 0  magic   uint32  "HXF1"
//	offset 4  length  uint64  payload bytes that follow the header
//	offset 12 crc     uint32  CRC-32C (Castagnoli) of the payload
//	offset 16 payload
//
// The hot tier stays unframed: its files never outlive a budget decision
// made in the same process, while spill files are the tier a crash or a bad
// disk sector can hand back to a later iteration.
const (
	frameMagic      uint32 = 0x48584631 // "HXF1"
	frameHeaderSize        = 16
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame writes the header followed by the payload. No payload copy is
// made — framing costs one 16-byte header write.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// verifyFrame checks a raw framed file and returns the payload slice (an
// alias into raw, not a copy). Every failure mode wraps ErrCorrupt so
// callers classify with a single errors.Is.
func verifyFrame(raw []byte) ([]byte, error) {
	if len(raw) < frameHeaderSize {
		return nil, fmt.Errorf("%w: short frame (%d bytes)", ErrCorrupt, len(raw))
	}
	if m := binary.LittleEndian.Uint32(raw[0:4]); m != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	n := binary.LittleEndian.Uint64(raw[4:12])
	payload := raw[frameHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: length %d, have %d payload bytes", ErrCorrupt, n, len(payload))
	}
	want := binary.LittleEndian.Uint32(raw[12:16])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
	}
	return payload, nil
}
