package store

import (
	"context"
	"time"
)

// WaitOutcome is how a single-flight waiter's park ended.
type WaitOutcome int

const (
	// WaitPublished means the leader finished its publish attempt: the key
	// is now in the store if the leader's policy materialized it, and the
	// leader's value is handed to the waiter either way. The flight is
	// resolved; the waiter must not FinishCompute.
	WaitPublished WaitOutcome = iota
	// WaitLeader means the previous leader failed and leadership was handed
	// to this waiter: it must compute the value itself and call
	// FinishCompute exactly once.
	WaitLeader
	// WaitTimeout means the bounded wait expired before the flight
	// resolved. The waiter has deregistered; it should compute locally
	// (progress beats dedup) and must not FinishCompute.
	WaitTimeout
	// WaitCanceled means the waiter's context was canceled. The waiter has
	// deregistered and must not FinishCompute.
	WaitCanceled
)

func (o WaitOutcome) String() string {
	switch o {
	case WaitPublished:
		return "published"
	case WaitLeader:
		return "leader"
	case WaitTimeout:
		return "timeout"
	default:
		return "canceled"
	}
}

// Afterglow bounds for the recently-resolved cache (see FinishCompute and
// RecentResolved): at most afterglowMax values are retained, each for at
// most afterglowTTL. Keys are content addresses, so a cached value can
// never be stale — the TTL only releases memory, it is not a correctness
// knob.
const (
	afterglowMax = 64
	afterglowTTL = 10 * time.Second
)

// glowEntry is one recently resolved flight's value.
type glowEntry struct {
	val any
	at  time.Time
}

// inflight is one key's in-flight computation: a leader computing the value
// and any number of waiters parked on done. Leadership is handed off through
// offer when a leader fails while waiters remain, so one session's failure
// never wedges another's run. All fields except the channels are guarded by
// the registry's flightMu; val is written before done closes and read only
// after, so the channel close carries the happens-before edge.
type inflight struct {
	done  chan struct{} // closed when the flight resolves
	offer chan struct{} // capacity 1: the leadership-handoff token

	val     any  // the leader's computed value, set before done closes
	waiters int  // parked waiters (a waiter in offer-limbo still counts)
	offered bool // a handoff token is outstanding (sent, not yet accepted)
}

// BeginCompute elects one computation per in-flight key: the first caller
// for a key not currently in flight becomes the leader (wait == nil) and
// must call FinishCompute exactly once, however its computation ends. Every
// other caller is a waiter and receives a wait function that parks until
// the flight resolves, bounded by ctx and (when positive) bound:
//
//   - WaitPublished: the leader published; the returned value is the
//     leader's result, and the key is in the store if the leader's policy
//     materialized it. Prefer loading the stored bytes (the planned-load
//     path, with its promotion and read accounting); the value is the
//     fallback when the policy declined or the entry was already evicted.
//   - WaitLeader: the leader failed and this waiter inherited leadership —
//     compute, then FinishCompute exactly once.
//   - WaitTimeout / WaitCanceled: the waiter deregistered without a result;
//     compute locally, do not FinishCompute.
//
// The wait function must be called at most once.
func (t *Tiered) BeginCompute(key string) (leader bool, wait func(ctx context.Context, bound time.Duration) (WaitOutcome, any)) {
	t.flightMu.Lock()
	e, ok := t.flights[key]
	if !ok {
		if t.flights == nil {
			t.flights = make(map[string]*inflight)
		}
		e = &inflight{done: make(chan struct{}), offer: make(chan struct{}, 1)}
		t.flights[key] = e
		t.flightMu.Unlock()
		return true, nil
	}
	e.waiters++
	t.flightMu.Unlock()
	return false, func(ctx context.Context, bound time.Duration) (WaitOutcome, any) {
		var expired <-chan time.Time
		if bound > 0 {
			tm := time.NewTimer(bound)
			defer tm.Stop()
			expired = tm.C
		}
		select {
		case <-e.done:
			// Resolution deleted the entry; the waiter bookkeeping died
			// with it. A parked waiter keeps a failed flight from being
			// abandoned (FinishCompute hands off instead), so done closing
			// always means the leader published.
			return WaitPublished, e.val
		case <-e.offer:
			t.flightMu.Lock()
			e.waiters--
			e.offered = false
			t.flightMu.Unlock()
			return WaitLeader, nil
		case <-ctx.Done():
			t.deregisterWaiter(key, e)
			return WaitCanceled, nil
		case <-expired:
			t.deregisterWaiter(key, e)
			return WaitTimeout, nil
		}
	}
}

// FinishCompute resolves key's flight. On success the value is recorded for
// the flight's waiters and done is closed — by then the leader has already
// attempted its store publish, so woken waiters that probe the store see the
// bytes if the policy materialized them — and the value also enters the
// bounded afterglow cache (RecentResolved), closing the crack between a
// flight resolving without materialization and a racing run's identical
// node arriving just after. On failure with waiters parked, leadership is
// handed off: exactly one waiter wakes as the new leader (and owes its own
// FinishCompute); with no waiters the flight is abandoned so the next
// BeginCompute starts fresh. Unknown keys are ignored, which makes the call
// safe on paths that may or may not hold leadership.
func (t *Tiered) FinishCompute(key string, val any, err error) {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	e, ok := t.flights[key]
	if !ok {
		return
	}
	if err == nil || e.waiters == 0 {
		if err == nil {
			if e.waiters > 0 {
				e.val = val
			}
			t.stashGlowLocked(key, val)
		}
		delete(t.flights, key)
		close(e.done)
		return
	}
	if !e.offered {
		e.offered = true
		e.offer <- struct{}{}
	}
}

// RecentResolved returns the value of a successfully resolved recent flight
// for key, if the afterglow cache still holds one. A single-flight leader
// whose store probe missed consults it before computing: the previous
// flight's policy may have declined materialization, and the key being a
// content address makes the cached value as good as a recomputation.
func (t *Tiered) RecentResolved(key string) (any, bool) {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	g, ok := t.glow[key]
	if !ok || time.Since(g.at) > afterglowTTL {
		return nil, false
	}
	return g.val, true
}

// stashGlowLocked records a resolved flight's value in the afterglow cache,
// evicting expired entries and the oldest beyond the cap; flightMu held.
// Nil values (leaders that resolve without a result) are not cached.
func (t *Tiered) stashGlowLocked(key string, val any) {
	if val == nil {
		return
	}
	if t.glow == nil {
		t.glow = make(map[string]glowEntry)
	}
	if _, ok := t.glow[key]; !ok {
		t.glowOrder = append(t.glowOrder, key)
	}
	t.glow[key] = glowEntry{val: val, at: time.Now()}
	for len(t.glowOrder) > 0 {
		k := t.glowOrder[0]
		g, ok := t.glow[k]
		if ok && len(t.glowOrder) <= afterglowMax && time.Since(g.at) <= afterglowTTL {
			break
		}
		t.glowOrder = t.glowOrder[1:]
		if ok && k != key {
			delete(t.glow, k)
		}
	}
}

// deregisterWaiter removes one parked waiter from key's flight after a
// timeout or cancellation. If a leadership-handoff token is outstanding and
// still unclaimed, it is re-offered to a remaining waiter — or, when this
// was the last waiter, the flight is abandoned so the key is not wedged
// behind a token nobody will take.
func (t *Tiered) deregisterWaiter(key string, e *inflight) {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	if t.flights[key] != e {
		return // resolved concurrently; the entry (and its counts) are gone
	}
	e.waiters--
	if !e.offered {
		return
	}
	select {
	case <-e.offer:
		// Drained the unclaimed token. Hand it to a remaining waiter, or
		// abandon the flight if this deregistration emptied the park.
		if e.waiters > 0 {
			e.offer <- struct{}{}
		} else {
			e.offered = false
			delete(t.flights, key)
			close(e.done)
		}
	default:
		// Another waiter claimed the token and is becoming the leader.
	}
}

// InflightComputes reports how many keys currently have a computation in
// flight (tests and observability).
func (t *Tiered) InflightComputes() int {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	return len(t.flights)
}

// InflightWaiters reports how many waiters are parked on key's flight; 0
// when the key is not in flight (tests and observability).
func (t *Tiered) InflightWaiters(key string) int {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	if e, ok := t.flights[key]; ok {
		return e.waiters
	}
	return 0
}
