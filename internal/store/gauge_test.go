package store

import (
	"sync"
	"testing"
)

func TestGaugeLivePeak(t *testing.T) {
	var g Gauge
	g.Add(100)
	g.Add(50)
	if g.Live() != 150 || g.Peak() != 150 {
		t.Errorf("live=%d peak=%d, want 150, 150", g.Live(), g.Peak())
	}
	g.Sub(120)
	if g.Live() != 30 {
		t.Errorf("live=%d after sub, want 30", g.Live())
	}
	if g.Peak() != 150 {
		t.Errorf("peak=%d dropped with live, want 150", g.Peak())
	}
	g.Add(40)
	if g.Peak() != 150 {
		t.Errorf("peak=%d, want the earlier high-water 150", g.Peak())
	}
	// Non-positive deltas are ignored, so callers can pass unknown (0)
	// estimates without branching.
	g.Add(0)
	g.Sub(-5)
	if g.Live() != 70 {
		t.Errorf("live=%d after no-op deltas, want 70", g.Live())
	}
	g.Reset()
	if g.Live() != 0 || g.Peak() != 0 {
		t.Errorf("reset left live=%d peak=%d", g.Live(), g.Peak())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(3)
				g.Sub(3)
			}
		}()
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Errorf("live=%d after balanced adds/subs, want 0", g.Live())
	}
	if g.Peak() < 3 {
		t.Errorf("peak=%d, want at least one add observed", g.Peak())
	}
}
