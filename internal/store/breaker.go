package store

import (
	"sync"
	"time"
)

// Default breaker tuning: a handful of consecutive failures is already far
// beyond what a healthy disk produces, and the cooldown keeps a run that
// outlives it from hammering a device that is actively failing.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

type breakerState int

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

// breaker is the cold tier's circuit breaker: consecutive cold-tier I/O
// failures (read errors, corrupt frames, failed spill writes) trip it open,
// which makes the Tiered store behave as if no cold tier were attached —
// hot-only graceful degradation, with every planned cold load degrading to
// a recompute. After the cooldown one probe operation is let through
// (half-open); its success closes the breaker, its failure re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int // consecutive failures to trip; <=0 disables the breaker
	cooldown  time.Duration
	state     breakerState
	failures  int
	openedAt  time.Time
	trips     int64
}

func newBreaker() *breaker {
	return &breaker{threshold: DefaultBreakerThreshold, cooldown: DefaultBreakerCooldown}
}

// allow reports whether a cold-tier operation may proceed. In the open
// state it flips to half-open once the cooldown has elapsed, admitting
// exactly one probe; concurrent callers see half-open and stay out.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return true
	case brkOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = brkHalfOpen
			return true
		}
		return false
	default: // half-open: one probe already in flight
		return false
	}
}

// success records a completed cold-tier operation, resetting the
// consecutive-failure count and closing a half-open breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.state = brkClosed
	b.mu.Unlock()
}

// failure records a failed cold-tier operation; enough in a row (or one
// while half-open) trips the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold <= 0 {
		return
	}
	b.failures++
	if b.state == brkHalfOpen || (b.state == brkClosed && b.failures >= b.threshold) {
		b.state = brkOpen
		b.openedAt = time.Now()
		b.trips++
	}
}

// snapshot returns the trip count and whether the breaker is currently
// disabling the cold tier.
func (b *breaker) snapshot() (trips int64, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.state != brkClosed
}
