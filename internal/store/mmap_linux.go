//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform supports zero-copy
// memory-mapped cold reads.
const mmapAvailable = true

// mmapFile maps the whole file read-only straight out of the page cache.
// The release closure unmaps; the returned bytes must not be used after it
// runs. Content addressing makes stored files immutable, and eviction
// unlinks rather than truncates, so an open mapping stays valid for its
// whole lifetime.
func mmapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
