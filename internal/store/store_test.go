package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func init() {
	Register(map[string]float64{})
	Register([]int{})
}

func openTemp(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t, 0)
	want := map[string]float64{"acc": 0.9, "f1": 0.8}
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.(map[string]float64)
	if !ok {
		t.Fatalf("decoded type %T", got)
	}
	if m["acc"] != 0.9 || m["f1"] != 0.8 {
		t.Errorf("round trip = %v", m)
	}
}

func TestGetNotFound(t *testing.T) {
	s := openTemp(t, 0)
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestBudgetEnforced(t *testing.T) {
	s := openTemp(t, 64)
	big := make([]byte, 1000)
	err := s.PutBytes("big", big)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if s.Used() != 0 {
		t.Errorf("failed put consumed budget: %d", s.Used())
	}
	// Small value fits.
	if err := s.PutBytes("small", make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 32 || s.Remaining() != 32 {
		t.Errorf("used=%d remaining=%d", s.Used(), s.Remaining())
	}
}

func TestUnlimitedBudget(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.PutBytes("x", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if s.Remaining() < 1<<50 {
		t.Errorf("unlimited remaining = %d", s.Remaining())
	}
}

func TestPutIdempotent(t *testing.T) {
	s := openTemp(t, 100)
	if err := s.PutBytes("k", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	// Second put of same key: no-op, no double budget charge.
	if err := s.PutBytes("k", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 40 {
		t.Errorf("used = %d after idempotent put", s.Used())
	}
}

func TestDelete(t *testing.T) {
	s := openTemp(t, 100)
	if err := s.PutBytes("k", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") || s.Used() != 0 {
		t.Error("delete did not release entry")
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	// Budget is reusable after delete.
	if err := s.PutBytes("k2", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
}

func TestClear(t *testing.T) {
	s := openTemp(t, 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.PutBytes(k, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if len(s.Entries()) != 0 || s.Used() != 0 {
		t.Error("clear incomplete")
	}
}

func TestReopenAdoptsFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("persist", "hello"); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has("persist") {
		t.Fatal("reopened store lost entry")
	}
	got, err := s2.Get("persist")
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "hello" {
		t.Errorf("got %v", got)
	}
	if s2.Used() == 0 {
		t.Error("reopened store shows zero usage")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := openTemp(t, 0)
	for _, k := range []string{"zz", "aa", "mm"} {
		if err := s.PutBytes(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	es := s.Entries()
	if len(es) != 3 || es[0].Key != "aa" || es[2].Key != "zz" {
		t.Errorf("entries = %v", es)
	}
}

func TestLookupMetadata(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.PutBytes("k", make([]byte, 123)); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Lookup("k")
	if !ok || e.Size != 123 {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	if _, ok := s.Lookup("none"); ok {
		t.Error("phantom lookup")
	}
}

func TestEstimateLoadPositive(t *testing.T) {
	s := openTemp(t, 0)
	if d := s.EstimateLoad(1 << 20); d <= 0 {
		t.Errorf("estimate = %v", d)
	}
	// Larger size, larger estimate.
	if s.EstimateLoad(1<<24) <= s.EstimateLoad(1<<10) {
		t.Error("estimate not monotone in size")
	}
}

func TestGetMeasuresLoadCost(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("k", make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Lookup("k")
	if e.LoadCost <= 0 {
		t.Errorf("measured load cost = %v", e.LoadCost)
	}
}

// Failure injection: corrupt the underlying file; Get must fail cleanly.
func TestGetCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err == nil {
		t.Error("corrupt file decoded successfully")
	}
}

// Failure injection: file removed behind the store's back.
func TestGetVanishedFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", 42); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "k")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err == nil {
		t.Error("vanished file read successfully")
	}
}

func TestPathTraversalDefense(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("../escape", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "escape")); err != nil {
		t.Errorf("key not sanitized into dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape")); err == nil {
		t.Error("file escaped the store directory")
	}
}

func TestConcurrentPutsRespectBudget(t *testing.T) {
	s := openTemp(t, 1000)
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.PutBytes(string(rune('a'+i%26))+string(rune('0'+i/26)), make([]byte, 100))
		}(i)
	}
	wg.Wait()
	if s.Used() > 1000 {
		t.Errorf("budget oversubscribed: %d", s.Used())
	}
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		} else if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if okCount != 10 {
		t.Errorf("%d puts succeeded, want 10 (1000/100)", okCount)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("shared", "v"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, err := s.Get("shared"); err != nil {
					t.Errorf("get: %v", err)
				}
			} else {
				if err := s.Put("k"+string(rune('0'+i)), i); err != nil {
					t.Errorf("put: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestSmoothThroughput(t *testing.T) {
	got := smooth(100, 1000, time.Second) // obs = 1000 B/s
	want := 0.3*1000 + 0.7*100
	if got != want {
		t.Errorf("smooth = %v, want %v", got, want)
	}
	// Degenerate observations leave the estimate unchanged.
	if smooth(100, 0, time.Second) != 100 || smooth(100, 10, 0) != 100 {
		t.Error("degenerate observation changed estimate")
	}
}

func TestEncodeValuePutEncodedRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeValue("payload")
	if err != nil {
		t.Fatal(err)
	}
	if enc.Size() != int64(len(enc.Bytes())) || enc.Size() == 0 {
		t.Errorf("Size %d inconsistent with %d bytes", enc.Size(), len(enc.Bytes()))
	}
	if err := s.PutEncoded("k", enc); err != nil {
		t.Fatal(err)
	}
	enc.Release()
	v, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "payload" {
		t.Errorf("round trip = %v", v)
	}
	// Double release is a no-op, and pooled reuse yields clean encodings.
	enc.Release()
	enc2, err := EncodeValue("other")
	if err != nil {
		t.Fatal(err)
	}
	defer enc2.Release()
	got, err := Decode(append([]byte(nil), enc2.Bytes()...))
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "other" {
		t.Errorf("pooled encode produced %v", got)
	}
}

func TestEncodeCallsCounter(t *testing.T) {
	before := EncodeCalls()
	if _, err := Encode(42); err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeValue(43)
	if err != nil {
		t.Fatal(err)
	}
	enc.Release()
	if d := EncodeCalls() - before; d != 2 {
		t.Errorf("counter advanced by %d, want 2", d)
	}
}

// TestPutBytesHintMergesInFlight: a duplicate admission that hits the
// in-flight write guard must not drop its hint — it folds into the pending
// record the winning writer applies on publish, and a weaker later hint
// never regresses the merge.
func TestPutBytesHintMergesInFlight(t *testing.T) {
	s := openTemp(t, 0)
	key, raw := "aa00race", []byte("payload")

	s.mu.Lock()
	if s.writing == nil {
		s.writing = make(map[string]*RewardHint)
	}
	s.writing[key] = &RewardHint{RecomputeNanos: 5}
	s.mu.Unlock()

	if err := s.PutBytesHint(key, raw, RewardHint{RecomputeNanos: 9, Owner: "ann"}); err != nil {
		t.Fatalf("guarded put: %v", err)
	}
	if err := s.PutBytesHint(key, raw, RewardHint{RecomputeNanos: 3, Owner: "bob"}); err != nil {
		t.Fatalf("second guarded put: %v", err)
	}

	s.mu.Lock()
	pending := *s.writing[key]
	s.mu.Unlock()
	if pending.RecomputeNanos != 9 {
		t.Errorf("pending recompute hint = %d, want the max merged value 9", pending.RecomputeNanos)
	}
	if pending.Owner != "ann" {
		t.Errorf("pending owner = %q, want first-claimant %q", pending.Owner, "ann")
	}
}
