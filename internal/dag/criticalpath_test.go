package dag

import (
	"reflect"
	"testing"
)

// TestCriticalPathDiamond: on a -> {b,c} -> d the weight of each branch is
// its own cost plus d's, and the root carries the heavier branch.
func TestCriticalPathDiamond(t *testing.T) {
	g, a, b, c, d := diamond(t)
	w, err := g.CriticalPath([]int64{1, 10, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if w[d] != 5 {
		t.Errorf("sink weight = %d, want its own cost 5", w[d])
	}
	if w[b] != 15 || w[c] != 7 {
		t.Errorf("branch weights = %d, %d, want 15, 7", w[b], w[c])
	}
	if w[a] != 16 {
		t.Errorf("root weight = %d, want 1 + max(15, 7)", w[a])
	}
}

// TestCriticalPathStraggler: a shallow expensive node outweighs a deep
// cheap chain when costs say so, and loses when costs are uniform — the
// property the cost-aware scheduler depends on.
func TestCriticalPathStraggler(t *testing.T) {
	g := New()
	root := g.MustAddNode("root", "scan")
	slow := g.MustAddNode("slow", "learner")
	g.MustAddEdge(root, slow)
	prev := root
	chain := make([]NodeID, 0, 4)
	for _, name := range []string{"c0", "c1", "c2", "c3"} {
		id := g.MustAddNode(name, "op")
		g.MustAddEdge(prev, id)
		chain = append(chain, id)
		prev = id
	}

	// Uniform costs: the deep chain dominates the shallow straggler.
	uniform := []int64{1, 1, 1, 1, 1, 1}
	w, err := g.CriticalPath(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if w[slow] != 1 || w[chain[0]] != 4 {
		t.Errorf("uniform weights: slow=%d chain-head=%d, want 1, 4", w[slow], w[chain[0]])
	}

	// Measured costs: the straggler's 100ns outweighs the 4-deep chain.
	measured := []int64{1, 100, 1, 1, 1, 1}
	w, err = g.CriticalPath(measured)
	if err != nil {
		t.Fatal(err)
	}
	if w[slow] <= w[chain[0]] {
		t.Errorf("measured weights: slow=%d not above chain-head=%d", w[slow], w[chain[0]])
	}
	if w[root] != 1+100 {
		t.Errorf("root weight = %d, want 101", w[root])
	}
}

// TestCriticalPathChain: weights along a chain are the suffix sums of the
// costs.
func TestCriticalPathChain(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	w, err := g.CriticalPath([]int64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{9, 7, 4}; !reflect.DeepEqual(w, want) {
		t.Errorf("chain weights = %v, want %v", w, want)
	}
}

// TestCriticalPathDisconnectedOutputs: two disconnected components weight
// independently — a heavy component never inflates the other's nodes.
func TestCriticalPathDisconnectedOutputs(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	g.MustAddEdge(a, b)
	g.Node(b).Output = true
	x := g.MustAddNode("x", "op")
	y := g.MustAddNode("y", "op")
	g.MustAddEdge(x, y)
	g.Node(y).Output = true
	w, err := g.CriticalPath([]int64{1, 1, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if w[a] != 2 || w[b] != 1 {
		t.Errorf("light component weights = %d, %d, want 2, 1", w[a], w[b])
	}
	if w[x] != 100 || w[y] != 50 {
		t.Errorf("heavy component weights = %d, %d, want 100, 50", w[x], w[y])
	}
}

// TestCriticalPathErrors: mis-sized cost vectors and cyclic graphs are
// rejected.
func TestCriticalPathErrors(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	if _, err := g.CriticalPath([]int64{1, 2}); err == nil {
		t.Error("mis-sized cost vector accepted")
	}
	cyc := New()
	a := cyc.MustAddNode("a", "op")
	b := cyc.MustAddNode("b", "op")
	cyc.MustAddEdge(a, b)
	cyc.parents[a] = append(cyc.parents[a], b) // force a cycle
	cyc.childs[b] = append(cyc.childs[b], a)
	if _, err := cyc.CriticalPath([]int64{1, 1}); err == nil {
		t.Error("cyclic graph accepted")
	}
}

// TestStructuralCosts: unit scaled by out-degree, positive-unit enforced.
func TestStructuralCosts(t *testing.T) {
	g := New()
	root := g.MustAddNode("root", "scan")
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	g.MustAddEdge(root, a)
	g.MustAddEdge(root, b)
	g.MustAddEdge(a, b)
	costs, err := g.StructuralCosts(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{30, 20, 10} // out-degrees 2, 1, 0
	for i, w := range want {
		if costs[i] != w {
			t.Errorf("cost[%d] = %d, want %d", i, costs[i], w)
		}
	}
	if _, err := g.StructuralCosts(0); err == nil {
		t.Error("non-positive unit accepted")
	}
}

// TestCriticalPathOrderedMatchesCriticalPath: the order-reusing variant is
// exactly CriticalPath when handed a valid topological order, and rejects
// a mis-sized order.
func TestCriticalPathOrderedMatchesCriticalPath(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	cost := []int64{3, 5, 7, 2}
	want, err := g.CriticalPath(cost)
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.CriticalPathOrdered(cost, order)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("weight[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := g.CriticalPathOrdered(cost, order[:1]); err == nil {
		t.Error("mis-sized order accepted")
	}
}

// TestCriticalPathFromRecomputesUnfinishedSubgraph: with a and b finished
// (skipped), the incremental recompute corrects only c and d under the new
// costs, carries a's and b's previous weights through untouched, and
// ignores finished children when propagating.
func TestCriticalPathFromRecomputesUnfinishedSubgraph(t *testing.T) {
	g, a, b, c, d := diamond(t)
	cost := []int64{1, 1, 1, 1}
	prev, err := g.CriticalPath(cost)
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	// Measurements revealed c and d are 10× the estimate.
	newCost := []int64{1, 1, 10, 10}
	done := map[NodeID]bool{a: true, b: true}
	got, err := g.CriticalPathFrom(newCost, order, func(id NodeID) bool { return done[id] }, prev)
	if err != nil {
		t.Fatal(err)
	}
	if got[a] != prev[a] || got[b] != prev[b] {
		t.Errorf("finished weights changed: a %d->%d, b %d->%d", prev[a], got[a], prev[b], got[b])
	}
	if got[d] != 10 {
		t.Errorf("weight[d] = %d, want 10", got[d])
	}
	if got[c] != 20 {
		t.Errorf("weight[c] = %d, want 20 (cost 10 + unfinished child d 10)", got[c])
	}
	// prev must not be mutated.
	if prev[c] != 2 || prev[d] != 1 {
		t.Errorf("previous weights mutated: c=%d d=%d", prev[c], prev[d])
	}
}

// TestCriticalPathFromSkipsFinishedChildren: a finished child gates no
// remaining work — its stale weight must not inflate an unfinished parent.
func TestCriticalPathFromSkipsFinishedChildren(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "op")
	load := g.MustAddNode("load-child", "op")
	slow := g.MustAddNode("slow-child", "op")
	g.MustAddEdge(a, load)
	g.MustAddEdge(a, slow)
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	cost := []int64{1, 100, 5}
	prev, err := g.CriticalPathOrdered(cost, order)
	if err != nil {
		t.Fatal(err)
	}
	if prev[a] != 101 {
		t.Fatalf("initial weight[a] = %d, want 101", prev[a])
	}
	// The expensive child already ran (a load dispatched independently):
	// a's remaining path is only the slow-child branch.
	done := map[NodeID]bool{load: true}
	got, err := g.CriticalPathFrom(cost, order, func(id NodeID) bool { return done[id] }, prev)
	if err != nil {
		t.Fatal(err)
	}
	if got[a] != 6 {
		t.Errorf("weight[a] = %d, want 6 (finished child excluded)", got[a])
	}
}

// TestCriticalPathFromNilSkipMatchesOrdered: skipping nothing degenerates
// to a full recompute, and mis-sized inputs are rejected.
func TestCriticalPathFromNilSkipMatchesOrdered(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	cost := []int64{3, 5, 7, 2}
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.CriticalPathOrdered(cost, order)
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]int64, len(cost))
	got, err := g.CriticalPathFrom(cost, order, nil, prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("weight[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := g.CriticalPathFrom(cost[:2], order, nil, prev); err == nil {
		t.Error("mis-sized cost accepted")
	}
	if _, err := g.CriticalPathFrom(cost, order[:1], nil, prev); err == nil {
		t.Error("mis-sized order accepted")
	}
	if _, err := g.CriticalPathFrom(cost, order, nil, prev[:1]); err == nil {
		t.Error("mis-sized prev accepted")
	}
}
