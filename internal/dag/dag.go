// Package dag provides the directed-acyclic-graph representation that the
// HELIX compiler produces from a Workflow and that the optimizers consume.
//
// A Graph is a set of nodes identified by dense integer IDs with directed
// edges from producers to consumers (an edge u->v means v consumes the
// intermediate result produced by u, i.e. u is a parent of v). The package
// offers the graph algorithms the rest of the system is built on:
// topological ordering, ancestor/descendant closures, program slicing
// against a set of output nodes, and DOT export for the visualization tool.
package dag

import (
	"container/heap"
	"fmt"
	"strings"
)

// NodeID identifies a node within a single Graph. IDs are dense: the first
// node added gets 0, the next 1, and so on.
type NodeID int

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Node is a vertex in the workflow DAG. The optimizer-relevant attributes
// (costs, output flag) live directly on the node; everything else the
// compiler wants to attach travels in Attrs.
type Node struct {
	ID   NodeID
	Name string
	// Op is a short operator type label ("scan", "extract", "learner", ...)
	// used by visualization and by the category-based statistics.
	Op string
	// Output marks nodes whose results the user requested (is_output()).
	Output bool
	// Attrs carries compiler metadata (signature, operator index, ...).
	Attrs map[string]string
}

// Graph is a mutable DAG. The zero value is not usable; call New.
type Graph struct {
	nodes   []Node
	parents [][]NodeID // parents[v] = producers consumed by v
	childs  [][]NodeID // childs[u]  = consumers of u
	byName  map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// AddNode appends a node and returns its ID. Names must be unique; adding a
// duplicate name returns an error so compiler bugs surface immediately.
func (g *Graph) AddNode(name, op string) (NodeID, error) {
	if _, ok := g.byName[name]; ok {
		return InvalidNode, fmt.Errorf("dag: duplicate node name %q", name)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Op: op, Attrs: make(map[string]string)})
	g.parents = append(g.parents, nil)
	g.childs = append(g.childs, nil)
	g.byName[name] = id
	return id, nil
}

// MustAddNode is AddNode for construction paths where a duplicate is a
// programming error.
func (g *Graph) MustAddNode(name, op string) NodeID {
	id, err := g.AddNode(name, op)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge records that child consumes parent's result. Self-loops and
// duplicate edges are rejected; cycle creation is rejected lazily by Topo.
func (g *Graph) AddEdge(parent, child NodeID) error {
	if !g.valid(parent) || !g.valid(child) {
		return fmt.Errorf("dag: edge %d->%d references unknown node", parent, child)
	}
	if parent == child {
		return fmt.Errorf("dag: self-loop on node %d (%s)", parent, g.nodes[parent].Name)
	}
	for _, p := range g.parents[child] {
		if p == parent {
			return fmt.Errorf("dag: duplicate edge %s->%s", g.nodes[parent].Name, g.nodes[child].Name)
		}
	}
	g.parents[child] = append(g.parents[child], parent)
	g.childs[parent] = append(g.childs[parent], child)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(parent, child NodeID) {
	if err := g.AddEdge(parent, child); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Node returns a pointer to the node with the given ID so callers can set
// attributes in place. It panics on invalid IDs: they can only come from a
// different graph, which is a logic error.
func (g *Graph) Node(id NodeID) *Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("dag: invalid node id %d", id))
	}
	return &g.nodes[id]
}

// Lookup resolves a node name to its ID, or InvalidNode if absent.
func (g *Graph) Lookup(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	return InvalidNode
}

// Parents returns the producers consumed by v. The slice is owned by the
// graph; callers must not mutate it.
func (g *Graph) Parents(v NodeID) []NodeID { return g.parents[v] }

// Children returns the consumers of u. The slice is owned by the graph.
func (g *Graph) Children(u NodeID) []NodeID { return g.childs[u] }

// Outputs returns the IDs of all nodes marked Output, in ID order.
func (g *Graph) Outputs() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if g.nodes[i].Output {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Topo returns a topological order (parents before children) or an error if
// the graph contains a cycle. The order is deterministic: among ready nodes
// the smallest ID is emitted first (Kahn's algorithm with a min-heap
// frontier, O((V+E) log V) — the execution engine runs it per Execute, so
// it must not re-sort the whole frontier per pop the way the original
// sorted-slice version did).
func (g *Graph) Topo() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.parents[v])
	}
	frontier := make(minIDHeap, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, NodeID(v))
		}
	}
	heap.Init(&frontier)
	order := make([]NodeID, 0, n)
	for frontier.Len() > 0 {
		u := heap.Pop(&frontier).(NodeID)
		order = append(order, u)
		for _, c := range g.childs[u] {
			indeg[c]--
			if indeg[c] == 0 {
				heap.Push(&frontier, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// minIDHeap is the Topo frontier: a min-heap of node IDs.
type minIDHeap []NodeID

func (h minIDHeap) Len() int           { return len(h) }
func (h minIDHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minIDHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minIDHeap) Push(x any)        { *h = append(*h, x.(NodeID)) }
func (h *minIDHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Levels partitions the graph into execution waves: level 0 holds all roots,
// level k holds nodes whose longest path from a root has length k. Nodes in
// the same level are independent and may execute concurrently.
func (g *Graph) Levels() ([][]NodeID, error) {
	order, err := g.Topo()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(g.nodes))
	maxd := 0
	for _, v := range order {
		for _, p := range g.parents[v] {
			if depth[p]+1 > depth[v] {
				depth[v] = depth[p] + 1
			}
		}
		if depth[v] > maxd {
			maxd = depth[v]
		}
	}
	levels := make([][]NodeID, maxd+1)
	for _, v := range order {
		levels[depth[v]] = append(levels[depth[v]], v)
	}
	return levels, nil
}

// Indegrees returns, for each node, the number of parents for which keep
// returns true (nil keeps all). These are the initial pending-parent
// counters of a dependency-counting scheduler: node v becomes runnable when
// its counter reaches zero.
func (g *Graph) Indegrees(keep func(NodeID) bool) []int {
	out := make([]int, len(g.nodes))
	for v := range g.parents {
		for _, p := range g.parents[v] {
			if keep == nil || keep(p) {
				out[v]++
			}
		}
	}
	return out
}

// ConsumerCounts returns, for each node, the number of children for which
// keep returns true (nil keeps all). These are the initial reference counts
// for releasing a node's value once its last consumer has run.
func (g *Graph) ConsumerCounts(keep func(NodeID) bool) []int {
	out := make([]int, len(g.nodes))
	for u := range g.childs {
		for _, c := range g.childs[u] {
			if keep == nil || keep(c) {
				out[u]++
			}
		}
	}
	return out
}

// ReadySet returns the nodes whose entry in indeg is zero and for which keep
// returns true (nil keeps all), in ascending ID order — the initial ready
// set of a dependency-counting scheduler. indeg must have one entry per
// node, typically from Indegrees.
func (g *Graph) ReadySet(indeg []int, keep func(NodeID) bool) []NodeID {
	var out []NodeID
	for v := 0; v < len(g.nodes) && v < len(indeg); v++ {
		if indeg[v] == 0 && (keep == nil || keep(NodeID(v))) {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// CriticalPath returns, for each node, the weight of the heaviest path that
// starts at the node and follows edges downstream: weight(v) = cost[v] +
// max over children c of weight(c), with weight = cost[v] for sinks. With
// unit costs this degenerates to the downstream path length in nodes, so a
// scheduler using the weights stays critical-path-first even before any
// cost has been measured. cost must have one non-negative entry per node;
// the graph must be acyclic.
func (g *Graph) CriticalPath(cost []int64) ([]int64, error) {
	order, err := g.Topo()
	if err != nil {
		return nil, err
	}
	return g.CriticalPathOrdered(cost, order)
}

// CriticalPathOrdered is CriticalPath for callers that already hold a
// topological order of the graph (the execution engine computes one per
// Execute for its cycle check and must not pay for a second sort).
func (g *Graph) CriticalPathOrdered(cost []int64, order []NodeID) ([]int64, error) {
	if len(cost) != len(g.nodes) {
		return nil, fmt.Errorf("dag: %d costs for %d nodes", len(cost), len(g.nodes))
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dag: order covers %d of %d nodes", len(order), len(g.nodes))
	}
	weight := make([]int64, len(g.nodes))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var best int64
		for _, c := range g.childs[v] {
			if weight[c] > best {
				best = weight[c]
			}
		}
		weight[v] = cost[v] + best
	}
	return weight, nil
}

// CriticalPathFrom is the incremental form of CriticalPathOrdered for
// mid-run re-prioritization: it recomputes heaviest-downstream-path weights
// only for the nodes where skip returns false (the not-yet-dispatched
// subgraph of an executing run), reusing a topological order the caller
// already holds and carrying the previous weight of every skipped node
// through unchanged. A recomputed node sums its cost with the best weight
// among its *non-skipped* children only: a child that already ran gates no
// remaining work, so its (stale) weight must not inflate the ancestors
// still waiting to be ordered. prev is never mutated; the returned slice is
// fresh, so an executor can publish it atomically while readers still hold
// the old one.
func (g *Graph) CriticalPathFrom(cost []int64, order []NodeID, skip func(NodeID) bool, prev []int64) ([]int64, error) {
	if len(cost) != len(g.nodes) {
		return nil, fmt.Errorf("dag: %d costs for %d nodes", len(cost), len(g.nodes))
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dag: order covers %d of %d nodes", len(order), len(g.nodes))
	}
	if len(prev) != len(g.nodes) {
		return nil, fmt.Errorf("dag: %d previous weights for %d nodes", len(prev), len(g.nodes))
	}
	weight := make([]int64, len(g.nodes))
	copy(weight, prev)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if skip != nil && skip(v) {
			continue
		}
		var best int64
		for _, c := range g.childs[v] {
			if skip != nil && skip(c) {
				continue
			}
			if weight[c] > best {
				best = weight[c]
			}
		}
		weight[v] = cost[v] + best
	}
	return weight, nil
}

// StructuralCosts returns a cheap per-node cost estimate for graphs (or
// nodes) that have never been measured: cost(v) = unit × (1 + out-degree).
// The intuition is purely structural — a result consumed by more downstream
// operators gates more of the remaining run, so charging it proportionally
// keeps first-iteration critical-path weights and live-byte peaks honest
// instead of flooring never-seen nodes at zero. unit must be positive so a
// cold node is never free.
func (g *Graph) StructuralCosts(unit int64) ([]int64, error) {
	if unit <= 0 {
		return nil, fmt.Errorf("dag: structural cost unit must be positive, got %d", unit)
	}
	out := make([]int64, len(g.nodes))
	for v := range g.nodes {
		out[v] = unit * int64(1+len(g.childs[v]))
	}
	return out, nil
}

// Ancestors returns the set of strict ancestors of v (v excluded).
func (g *Graph) Ancestors(v NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	var visit func(NodeID)
	visit = func(u NodeID) {
		for _, p := range g.parents[u] {
			if !seen[p] {
				seen[p] = true
				visit(p)
			}
		}
	}
	visit(v)
	return seen
}

// Descendants returns the set of strict descendants of v (v excluded).
func (g *Graph) Descendants(v NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	var visit func(NodeID)
	visit = func(u NodeID) {
		for _, c := range g.childs[u] {
			if !seen[c] {
				seen[c] = true
				visit(c)
			}
		}
	}
	visit(v)
	return seen
}

// Slice computes the program slice: the set of nodes from which at least one
// output node is reachable (outputs included). Nodes outside the slice are
// extraneous operations — HELIX prunes them without any code change by the
// user (§2.2, "program slicing component").
func (g *Graph) Slice() map[NodeID]bool {
	live := make(map[NodeID]bool)
	var visit func(NodeID)
	visit = func(u NodeID) {
		if live[u] {
			return
		}
		live[u] = true
		for _, p := range g.parents[u] {
			visit(p)
		}
	}
	for _, o := range g.Outputs() {
		visit(o)
	}
	return live
}

// Roots returns all nodes with no parents.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for v := range g.nodes {
		if len(g.parents[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Clone returns a deep copy of the graph. Attrs maps are copied.
func (g *Graph) Clone() *Graph {
	c := New()
	for i := range g.nodes {
		n := g.nodes[i]
		id := c.MustAddNode(n.Name, n.Op)
		cn := c.Node(id)
		cn.Output = n.Output
		for k, v := range n.Attrs {
			cn.Attrs[k] = v
		}
	}
	for v := range g.parents {
		for _, p := range g.parents[v] {
			c.MustAddEdge(p, NodeID(v))
		}
	}
	return c
}

// Names returns node names indexed by ID, useful for error messages.
func (g *Graph) Names() []string {
	out := make([]string, len(g.nodes))
	for i := range g.nodes {
		out[i] = g.nodes[i].Name
	}
	return out
}

// DOT renders the graph in Graphviz format. The decorate callback, if
// non-nil, returns extra attributes (e.g. `style=filled, fillcolor=gray`)
// for each node; it is how the viz tool paints load/materialize/prune marks.
func (g *Graph) DOT(title string, decorate func(NodeID) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n", title)
	for i := range g.nodes {
		extra := ""
		if decorate != nil {
			extra = decorate(NodeID(i))
		}
		if extra != "" {
			extra = ", " + extra
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", i, g.nodes[i].Name, extra)
	}
	for v := range g.parents {
		for _, p := range g.parents[v] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
