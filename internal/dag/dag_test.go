package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the classic a -> {b,c} -> d shape used across tests.
func diamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	c := g.MustAddNode("c", "extract")
	d := g.MustAddNode("d", "learner")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	return g, a, b, c, d
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if _, err := g.AddNode("x", "op"); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if _, err := g.AddNode("x", "op"); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(a, NodeID(99)); err == nil {
		t.Error("edge to unknown node accepted")
	}
}

func TestLookup(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	if got := g.Lookup("a"); got != a {
		t.Errorf("Lookup(a) = %d, want %d", got, a)
	}
	if got := g.Lookup("nope"); got != InvalidNode {
		t.Errorf("Lookup(nope) = %d, want InvalidNode", got)
	}
}

func TestTopoOrder(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < g.Len(); v++ {
		for _, p := range g.Parents(NodeID(v)) {
			if pos[p] >= pos[NodeID(v)] {
				t.Errorf("parent %d not before child %d", p, v)
			}
		}
	}
}

func TestTopoCycle(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := g.Topo(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := g.Levels(); err == nil {
		t.Fatal("Levels on cyclic graph did not error")
	}
}

func TestLevels(t *testing.T) {
	g, a, b, c, d := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("want 3 levels, got %d", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != a {
		t.Errorf("level 0 = %v, want [%d]", levels[0], a)
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v, want {%d,%d}", levels[1], b, c)
	}
	if len(levels[2]) != 1 || levels[2][0] != d {
		t.Errorf("level 2 = %v, want [%d]", levels[2], d)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g, a, b, c, d := diamond(t)
	anc := g.Ancestors(d)
	if len(anc) != 3 || !anc[a] || !anc[b] || !anc[c] {
		t.Errorf("Ancestors(d) = %v", anc)
	}
	if len(g.Ancestors(a)) != 0 {
		t.Errorf("Ancestors(a) should be empty")
	}
	desc := g.Descendants(a)
	if len(desc) != 3 || !desc[b] || !desc[c] || !desc[d] {
		t.Errorf("Descendants(a) = %v", desc)
	}
	if len(g.Descendants(d)) != 0 {
		t.Errorf("Descendants(d) should be empty")
	}
}

func TestSlice(t *testing.T) {
	g, a, b, _, d := diamond(t)
	// Add a dead branch hanging off a.
	dead := g.MustAddNode("dead", "extract")
	g.MustAddEdge(a, dead)
	g.Node(d).Output = true
	live := g.Slice()
	if !live[a] || !live[b] || !live[d] {
		t.Errorf("slice missing live nodes: %v", live)
	}
	if live[dead] {
		t.Error("dead node retained by slice")
	}
}

func TestSliceNoOutputs(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	if live := g.Slice(); len(live) != 0 {
		t.Errorf("slice with no outputs = %v, want empty", live)
	}
}

func TestRootsOutputs(t *testing.T) {
	g, a, _, _, d := diamond(t)
	g.Node(d).Output = true
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != a {
		t.Errorf("Roots = %v", roots)
	}
	outs := g.Outputs()
	if len(outs) != 1 || outs[0] != d {
		t.Errorf("Outputs = %v", outs)
	}
}

func TestClone(t *testing.T) {
	g, _, _, _, d := diamond(t)
	g.Node(d).Output = true
	g.Node(d).Attrs["sig"] = "abc"
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone len %d != %d", c.Len(), g.Len())
	}
	if !c.Node(d).Output || c.Node(d).Attrs["sig"] != "abc" {
		t.Error("clone lost node attributes")
	}
	// Mutating the clone must not affect the original.
	c.Node(d).Attrs["sig"] = "zzz"
	if g.Node(d).Attrs["sig"] != "abc" {
		t.Error("clone shares attrs map with original")
	}
	c.MustAddNode("extra", "op")
	if g.Len() == c.Len() {
		t.Error("clone shares node storage")
	}
}

func TestDOT(t *testing.T) {
	g, _, _, _, d := diamond(t)
	dot := g.DOT("wf", func(id NodeID) string {
		if id == d {
			return "fillcolor=gray"
		}
		return ""
	})
	for _, want := range []string{"digraph", "n0 -> n1", "fillcolor=gray", `label="a"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
}

// randomDAG builds a DAG where edges only go from lower to higher IDs,
// guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddNode(string(rune('A'+i%26))+string(rune('0'+i/26)), "op")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

// Property: Topo on random DAGs always succeeds and respects edges.
func TestQuickTopoRespectsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(30), 0.3)
		order, err := g.Topo()
		if err != nil {
			return false
		}
		pos := make(map[NodeID]int)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < g.Len(); v++ {
			for _, p := range g.Parents(NodeID(v)) {
				if pos[p] >= pos[NodeID(v)] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every node in the slice reaches an output, and every ancestor of
// a sliced node is sliced.
func TestQuickSliceClosedUnderAncestors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(25), 0.25)
		// Mark a random non-empty subset of nodes as outputs.
		for i := 0; i < g.Len(); i++ {
			if r.Float64() < 0.2 {
				g.Node(NodeID(i)).Output = true
			}
		}
		g.Node(NodeID(g.Len() - 1)).Output = true
		live := g.Slice()
		for v := range live {
			for _, p := range g.Parents(v) {
				if !live[p] {
					return false
				}
			}
		}
		// Everything not live must not be an output.
		for i := 0; i < g.Len(); i++ {
			if !live[NodeID(i)] && g.Node(NodeID(i)).Output {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: levels partition all nodes and each node's parents sit in
// strictly lower levels.
func TestQuickLevelsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(25), 0.3)
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		lvl := make(map[NodeID]int)
		total := 0
		for li, nodes := range levels {
			total += len(nodes)
			for _, v := range nodes {
				lvl[v] = li
			}
		}
		if total != g.Len() {
			return false
		}
		for v := 0; v < g.Len(); v++ {
			for _, p := range g.Parents(NodeID(v)) {
				if lvl[p] >= lvl[NodeID(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndegrees(t *testing.T) {
	g, a, b, c, d := diamond(t)
	all := g.Indegrees(nil)
	want := map[NodeID]int{a: 0, b: 1, c: 1, d: 2}
	for id, w := range want {
		if all[id] != w {
			t.Errorf("Indegrees(nil)[%d] = %d, want %d", id, all[id], w)
		}
	}
	// Filtering out b models a pruned parent: d's counter drops to 1.
	noB := g.Indegrees(func(p NodeID) bool { return p != b })
	if noB[d] != 1 {
		t.Errorf("Indegrees(keep!=b)[d] = %d, want 1", noB[d])
	}
}

func TestConsumerCounts(t *testing.T) {
	g, a, b, c, d := diamond(t)
	all := g.ConsumerCounts(nil)
	want := map[NodeID]int{a: 2, b: 1, c: 1, d: 0}
	for id, w := range want {
		if all[id] != w {
			t.Errorf("ConsumerCounts(nil)[%d] = %d, want %d", id, all[id], w)
		}
	}
	onlyB := g.ConsumerCounts(func(ch NodeID) bool { return ch == b })
	if onlyB[a] != 1 || onlyB[b] != 0 {
		t.Errorf("ConsumerCounts(keep==b) = %v", onlyB)
	}
}

func TestReadySet(t *testing.T) {
	g, a, b, _, _ := diamond(t)
	indeg := g.Indegrees(nil)
	ready := g.ReadySet(indeg, nil)
	if len(ready) != 1 || ready[0] != a {
		t.Errorf("ReadySet = %v, want [%d]", ready, a)
	}
	// Simulate a finishing: b and c become ready; a filter can exclude them.
	indeg[b]--
	indeg[2]--
	got := g.ReadySet(indeg, func(v NodeID) bool { return v != a && v != b })
	if len(got) != 1 || got[0] != NodeID(2) {
		t.Errorf("filtered ReadySet = %v, want [2]", got)
	}
}
