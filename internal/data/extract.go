package data

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Extractor turns one row into features, mirroring the paper's extractor
// operators (FieldExtractor, Bucketizer, InteractionFeature). Extractors are
// pure and deterministic; some (Bucketizer) need a Fit pass over the
// training collection first.
type Extractor interface {
	// Name identifies the extractor (used for signatures and provenance).
	Name() string
	// Fit observes the training collection to learn any statistics
	// (bucket boundaries etc.). Stateless extractors return nil immediately.
	Fit(c *Collection) error
	// Extract appends this extractor's features for row i into fm.
	Extract(c *Collection, i int, fm FeatureMap) error
}

// FieldExtractor emits one feature per row from a single column: numeric
// columns yield "<col>"=value, categorical columns yield a one-hot
// "<col>=<value>"=1 feature, decided per value.
type FieldExtractor struct {
	Col string
	// Numeric forces numeric interpretation; parse failures become errors
	// instead of falling back to one-hot.
	Numeric bool
}

// Name implements Extractor.
func (f *FieldExtractor) Name() string { return "field(" + f.Col + ")" }

// Fit implements Extractor (stateless).
func (f *FieldExtractor) Fit(*Collection) error { return nil }

// Extract implements Extractor.
func (f *FieldExtractor) Extract(c *Collection, i int, fm FeatureMap) error {
	v, err := c.Get(i, f.Col)
	if err != nil {
		return err
	}
	if f.Numeric {
		x, err := ParseFloat(v, f.Col)
		if err != nil {
			return err
		}
		fm[f.Col] = x
		return nil
	}
	if x, err := ParseFloat(v, f.Col); err == nil {
		fm[f.Col] = x
		return nil
	}
	fm[f.Col+"="+v] = 1
	return nil
}

// Bucketizer discretizes a numeric column into equi-width bins learned from
// the training collection, emitting a one-hot "<col>_bucket=<k>" feature.
// This is the paper's `Bucketizer(age, bins=10)`.
type Bucketizer struct {
	Col  string
	Bins int

	// Fitted state, exported so a fitted bucketizer survives the gob codec
	// of the materialization store.
	Lo, Width float64
	Fitted    bool
}

// Name implements Extractor.
func (b *Bucketizer) Name() string { return fmt.Sprintf("bucket(%s,%d)", b.Col, b.Bins) }

// Fit learns [min,max] and the bin width.
func (b *Bucketizer) Fit(c *Collection) error {
	if b.Bins <= 0 {
		return fmt.Errorf("data: bucketizer %s: bins must be positive, got %d", b.Col, b.Bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range c.Rows {
		v, err := c.Get(i, b.Col)
		if err != nil {
			return err
		}
		x, err := ParseFloat(v, b.Col)
		if err != nil {
			return err
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if c.Len() == 0 {
		lo, hi = 0, 1
	}
	b.Lo = lo
	b.Width = (hi - lo) / float64(b.Bins)
	if b.Width == 0 {
		b.Width = 1
	}
	b.Fitted = true
	return nil
}

// Extract implements Extractor. Values outside the fitted range clamp to the
// first/last bucket so test data never errors.
func (b *Bucketizer) Extract(c *Collection, i int, fm FeatureMap) error {
	if !b.Fitted {
		return fmt.Errorf("data: bucketizer %s used before Fit", b.Col)
	}
	v, err := c.Get(i, b.Col)
	if err != nil {
		return err
	}
	x, err := ParseFloat(v, b.Col)
	if err != nil {
		return err
	}
	k := int((x - b.Lo) / b.Width)
	if k < 0 {
		k = 0
	}
	if k >= b.Bins {
		k = b.Bins - 1
	}
	fm[fmt.Sprintf("%s_bucket=%d", b.Col, k)] = 1
	return nil
}

// InteractionFeature crosses the categorical values of several columns into
// a single one-hot feature, e.g. "edu x occ=Bachelors|Sales". This is the
// paper's `InteractionFeature(Array(edu, occ))`.
type InteractionFeature struct {
	Cols []string
}

// Name implements Extractor.
func (x *InteractionFeature) Name() string { return "cross(" + strings.Join(x.Cols, ",") + ")" }

// Fit implements Extractor (stateless).
func (x *InteractionFeature) Fit(*Collection) error { return nil }

// Extract implements Extractor.
func (x *InteractionFeature) Extract(c *Collection, i int, fm FeatureMap) error {
	if len(x.Cols) < 2 {
		return fmt.Errorf("data: interaction needs >=2 columns, got %d", len(x.Cols))
	}
	parts := make([]string, len(x.Cols))
	for k, col := range x.Cols {
		v, err := c.Get(i, col)
		if err != nil {
			return err
		}
		parts[k] = v
	}
	fm[strings.Join(x.Cols, "x")+"="+strings.Join(parts, "|")] = 1
	return nil
}

// BinaryLabel reads a column and maps one designated value to label 1,
// everything else to 0 (the census task's ">50K" target).
type BinaryLabel struct {
	Col      string
	Positive string
}

// ExtractLabel returns the 0/1 label for row i.
func (l *BinaryLabel) ExtractLabel(c *Collection, i int) (float64, error) {
	v, err := c.Get(i, l.Col)
	if err != nil {
		return 0, err
	}
	if v == l.Positive {
		return 1, nil
	}
	return 0, nil
}

// BuildExamples fits every extractor on the collection and runs them over
// all rows, producing the labeled feature-mapped dataset. A nil label
// produces unlabeled examples. This is the bridge between the
// human-readable pre-processing format and ML (§2.1).
func BuildExamples(c *Collection, extractors []Extractor, label *BinaryLabel) (*ExampleSet, error) {
	for _, ex := range extractors {
		if err := ex.Fit(c); err != nil {
			return nil, fmt.Errorf("data: fit %s: %w", ex.Name(), err)
		}
	}
	return ExtractExamples(c, extractors, label)
}

// ExtractExamples runs already-fitted extractors over the collection without
// refitting — the test-set path, where training statistics (e.g. bucket
// boundaries) must be reused as-is.
func ExtractExamples(c *Collection, extractors []Extractor, label *BinaryLabel) (*ExampleSet, error) {
	set := &ExampleSet{Examples: make([]Example, c.Len())}
	for i := 0; i < c.Len(); i++ {
		fm := make(FeatureMap)
		for _, ex := range extractors {
			if err := ex.Extract(c, i, fm); err != nil {
				return nil, fmt.Errorf("data: extract %s row %d: %w", ex.Name(), i, err)
			}
		}
		set.Examples[i] = Example{Features: fm}
		if label != nil {
			y, err := label.ExtractLabel(c, i)
			if err != nil {
				return nil, err
			}
			set.Examples[i].Label = y
			set.Examples[i].HasLabel = true
		}
	}
	return set, nil
}

// FeatureNames returns the sorted union of feature names in a set — handy in
// tests and for the provenance-based slicing diagnostics.
func FeatureNames(set *ExampleSet) []string {
	seen := make(map[string]bool)
	for _, ex := range set.Examples {
		for n := range ex.Features {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
