package data

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := MustSchema("age", "education", "target")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("education") != 1 {
		t.Errorf("Index(education) = %d", s.Index("education"))
	}
	if s.Index("nope") != -1 {
		t.Errorf("Index(nope) = %d", s.Index("nope"))
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestCollectionAppendGet(t *testing.T) {
	c := NewCollection(MustSchema("a", "b"))
	if err := c.Append("1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("only-one"); err == nil {
		t.Error("arity mismatch accepted")
	}
	v, err := c.Get(0, "b")
	if err != nil || v != "x" {
		t.Errorf("Get = %q, %v", v, err)
	}
	if _, err := c.Get(0, "zz"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := c.Get(5, "a"); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestPartition(t *testing.T) {
	c := NewCollection(MustSchema("a"))
	for i := 0; i < 10; i++ {
		if err := c.Append("v"); err != nil {
			t.Fatal(err)
		}
	}
	parts := c.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	sizes := []int{parts[0].Len(), parts[1].Len(), parts[2].Len()}
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Errorf("sizes %v don't sum to 10", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("unbalanced partition %v", sizes)
		}
	}
	// k <= 0 coerces to 1; k > rows yields empties.
	if got := c.Partition(0); len(got) != 1 || got[0].Len() != 10 {
		t.Errorf("Partition(0) wrong")
	}
	many := c.Partition(20)
	total := 0
	for _, p := range many {
		total += p.Len()
	}
	if total != 10 {
		t.Errorf("Partition(20) lost rows")
	}
}

func TestParseCSVLine(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{`"a,b",c`, []string{"a,b", "c"}},
		{`"he said ""hi""",x`, []string{`he said "hi"`, "x"}},
		{"", []string{""}},
		{"a,,c", []string{"a", "", "c"}},
	}
	for _, tc := range cases {
		if got := ParseCSVLine(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseCSVLine(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestScanCSVRoundTrip(t *testing.T) {
	s := MustSchema("name", "note")
	c := NewCollection(s)
	for _, r := range [][]string{{"alice", "plain"}, {"bob", "has,comma"}, {"eve", `has"quote`}} {
		if err := c.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	back, err := ScanCSV(c.ToCSV(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Rows, c.Rows) {
		t.Errorf("round trip mismatch:\n%v\n%v", back.Rows, c.Rows)
	}
}

func TestScanCSVErrors(t *testing.T) {
	s := MustSchema("a", "b")
	if _, err := ScanCSV("1,2\n3\n", s); err == nil {
		t.Error("arity mismatch accepted")
	}
	c, err := ScanCSV("\n\n1,2\n\n", s)
	if err != nil || c.Len() != 1 {
		t.Errorf("blank lines mishandled: %v len=%d", err, c.Len())
	}
}

// Property: ToCSV/ScanCSV round-trips arbitrary printable field content.
func TestQuickCSVRoundTrip(t *testing.T) {
	alphabet := []rune{'a', 'b', ',', '"', ' ', 'x'}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := MustSchema("c1", "c2", "c3")
		c := NewCollection(s)
		for i := 0; i < 1+r.Intn(5); i++ {
			row := make([]string, 3)
			for j := range row {
				var rs []rune
				for k := 0; k < r.Intn(6); k++ {
					rs = append(rs, alphabet[r.Intn(len(alphabet))])
				}
				// Leading/trailing spaces are trimmed by ScanCSV by design;
				// avoid them so equality holds.
				row[j] = string(rs)
				if len(row[j]) > 0 && (row[j][0] == ' ' || row[j][len(row[j])-1] == ' ') {
					row[j] = "x" + row[j] + "x"
				}
			}
			if err := c.Append(row...); err != nil {
				return false
			}
		}
		back, err := ScanCSV(c.ToCSV(), s)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Rows, c.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDictionaryVectorize(t *testing.T) {
	d := NewDictionary()
	v := d.Vectorize(FeatureMap{"b": 2, "a": 1})
	if len(v.Indices) != 2 {
		t.Fatalf("nnz = %d", len(v.Indices))
	}
	if !sort.IntsAreSorted(v.Indices) {
		t.Errorf("indices not sorted: %v", v.Indices)
	}
	// Same names reuse indices.
	v2 := d.Vectorize(FeatureMap{"a": 5})
	if v2.Indices[0] != d.Index("a") {
		t.Errorf("index for a changed")
	}
	if d.Len() != 2 {
		t.Errorf("dict len = %d", d.Len())
	}
}

func TestDictionaryFreeze(t *testing.T) {
	d := NewDictionary()
	d.Add("known")
	d.Freeze()
	v := d.Vectorize(FeatureMap{"known": 1, "unseen": 9})
	if len(v.Indices) != 1 {
		t.Errorf("frozen dict kept unseen feature: %v", v.Indices)
	}
	if d.Add("unseen2") != -1 {
		t.Error("frozen dict grew")
	}
	name, err := d.Name(0)
	if err != nil || name != "known" {
		t.Errorf("Name(0) = %q, %v", name, err)
	}
	if _, err := d.Name(5); err == nil {
		t.Error("out-of-range Name accepted")
	}
}

func TestVectorDot(t *testing.T) {
	v := Vector{Indices: []int{0, 2, 7}, Values: []float64{1, 2, 3}}
	w := []float64{10, 0, 5} // index 7 out of range: contributes 0
	if got := v.Dot(w); got != 20 {
		t.Errorf("Dot = %v, want 20", got)
	}
	if got := v.L2(); got != 14 {
		t.Errorf("L2 = %v, want 14", got)
	}
}

func TestFieldExtractor(t *testing.T) {
	c := NewCollection(MustSchema("age", "occ"))
	if err := c.Append("39", "Sales"); err != nil {
		t.Fatal(err)
	}
	fm := make(FeatureMap)
	if err := (&FieldExtractor{Col: "age"}).Extract(c, 0, fm); err != nil {
		t.Fatal(err)
	}
	if fm["age"] != 39 {
		t.Errorf("numeric field: %v", fm)
	}
	if err := (&FieldExtractor{Col: "occ"}).Extract(c, 0, fm); err != nil {
		t.Fatal(err)
	}
	if fm["occ=Sales"] != 1 {
		t.Errorf("categorical field: %v", fm)
	}
	// Numeric=true on a categorical value errors.
	if err := (&FieldExtractor{Col: "occ", Numeric: true}).Extract(c, 0, fm); err == nil {
		t.Error("forced-numeric on categorical accepted")
	}
}

func TestBucketizer(t *testing.T) {
	c := NewCollection(MustSchema("age"))
	for _, v := range []string{"0", "25", "50", "75", "100"} {
		if err := c.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	b := &Bucketizer{Col: "age", Bins: 4}
	if err := b.Fit(c); err != nil {
		t.Fatal(err)
	}
	fm := make(FeatureMap)
	if err := b.Extract(c, 0, fm); err != nil {
		t.Fatal(err)
	}
	if fm["age_bucket=0"] != 1 {
		t.Errorf("min value bucket: %v", fm)
	}
	fm = make(FeatureMap)
	if err := b.Extract(c, 4, fm); err != nil {
		t.Fatal(err)
	}
	if fm["age_bucket=3"] != 1 { // max clamps into last bin
		t.Errorf("max value bucket: %v", fm)
	}
}

func TestBucketizerErrors(t *testing.T) {
	c := NewCollection(MustSchema("age"))
	if err := c.Append("10"); err != nil {
		t.Fatal(err)
	}
	b := &Bucketizer{Col: "age", Bins: 0}
	if err := b.Fit(c); err == nil {
		t.Error("bins=0 accepted")
	}
	b2 := &Bucketizer{Col: "age", Bins: 2}
	fm := make(FeatureMap)
	if err := b2.Extract(c, 0, fm); err == nil {
		t.Error("extract before fit accepted")
	}
	// Constant column: width falls back to 1, everything in bucket 0.
	if err := b2.Fit(c); err != nil {
		t.Fatal(err)
	}
	if err := b2.Extract(c, 0, fm); err != nil {
		t.Fatal(err)
	}
	if fm["age_bucket=0"] != 1 {
		t.Errorf("constant column: %v", fm)
	}
}

func TestInteractionFeature(t *testing.T) {
	c := NewCollection(MustSchema("edu", "occ"))
	if err := c.Append("BS", "Sales"); err != nil {
		t.Fatal(err)
	}
	fm := make(FeatureMap)
	x := &InteractionFeature{Cols: []string{"edu", "occ"}}
	if err := x.Extract(c, 0, fm); err != nil {
		t.Fatal(err)
	}
	if fm["eduxocc=BS|Sales"] != 1 {
		t.Errorf("interaction: %v", fm)
	}
	bad := &InteractionFeature{Cols: []string{"edu"}}
	if err := bad.Extract(c, 0, fm); err == nil {
		t.Error("single-column interaction accepted")
	}
}

func TestBuildExamples(t *testing.T) {
	c := NewCollection(MustSchema("age", "occ", "target"))
	if err := c.Append("30", "Sales", ">50K"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("20", "Tech", "<=50K"); err != nil {
		t.Fatal(err)
	}
	set, err := BuildExamples(c,
		[]Extractor{&FieldExtractor{Col: "age"}, &FieldExtractor{Col: "occ"}},
		&BinaryLabel{Col: "target", Positive: ">50K"})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("len = %d", set.Len())
	}
	if set.Examples[0].Label != 1 || set.Examples[1].Label != 0 {
		t.Errorf("labels: %v %v", set.Examples[0].Label, set.Examples[1].Label)
	}
	if !set.Examples[0].HasLabel {
		t.Error("HasLabel not set")
	}
	names := FeatureNames(set)
	want := []string{"age", "occ=Sales", "occ=Tech"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("feature names = %v, want %v", names, want)
	}
}

func TestBuildExamplesUnlabeled(t *testing.T) {
	c := NewCollection(MustSchema("age"))
	if err := c.Append("30"); err != nil {
		t.Fatal(err)
	}
	set, err := BuildExamples(c, []Extractor{&FieldExtractor{Col: "age"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Examples[0].HasLabel {
		t.Error("unlabeled example has HasLabel")
	}
}

// Property: vectorization through a fitted dictionary preserves every
// feature value exactly (no collisions, no drops).
func TestQuickVectorizePreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		set := &ExampleSet{}
		for i := 0; i < 1+r.Intn(10); i++ {
			fm := make(FeatureMap)
			for j := 0; j < r.Intn(8); j++ {
				fm[string(rune('a'+r.Intn(12)))] = float64(r.Intn(100)) / 10
			}
			set.Examples = append(set.Examples, Example{Features: fm})
		}
		d := NewDictionary()
		d.Fit(set)
		for _, ex := range set.Examples {
			v := d.Vectorize(ex.Features)
			if len(v.Indices) != len(ex.Features) {
				return false
			}
			for k, idx := range v.Indices {
				name, err := d.Name(idx)
				if err != nil || ex.Features[name] != v.Values[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
