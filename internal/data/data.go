// Package data provides HELIX's pre-processing data structures (§2.1): rows
// with named fields, partitioned data collections, CSV scanning, and the
// human-readable feature representation that is automatically converted
// into an ML-compatible sparse-vector format at the learning boundary.
package data

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Row is one record: ordered field values addressed by a shared Schema.
// Fields are stored as strings (the human-readable format the paper
// emphasizes); numeric interpretation happens at feature-extraction time.
type Row struct {
	Fields []string
}

// Schema maps field names to positions within a Row.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from column names. Duplicate names error.
func NewSchema(names ...string) (*Schema, error) {
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("data: duplicate column %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema panicking on error, for static schemas.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns the column names in order. Callers must not mutate.
func (s *Schema) Names() []string { return s.names }

// GobEncode serializes the schema as its ordered column names, letting
// collections travel through the materialization store despite the schema's
// unexported index.
func (s *Schema) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.names); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the schema (including its name index) from GobEncode
// output.
func (s *Schema) GobDecode(raw []byte) error {
	var names []string
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&names); err != nil {
		return err
	}
	ns, err := NewSchema(names...)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.names) }

// Index returns the position of a column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Collection is HELIX's DataCollection: a schema plus rows. Collections are
// value-like: operators produce new collections rather than mutating inputs,
// which is what makes materialized intermediates safe to reuse.
type Collection struct {
	Schema *Schema
	Rows   []Row
}

// NewCollection allocates an empty collection over the schema.
func NewCollection(s *Schema) *Collection { return &Collection{Schema: s} }

// Append adds a row, validating arity.
func (c *Collection) Append(fields ...string) error {
	if len(fields) != c.Schema.Len() {
		return fmt.Errorf("data: row has %d fields, schema has %d", len(fields), c.Schema.Len())
	}
	c.Rows = append(c.Rows, Row{Fields: append([]string(nil), fields...)})
	return nil
}

// Get returns row i's value for the named column.
func (c *Collection) Get(i int, col string) (string, error) {
	idx := c.Schema.Index(col)
	if idx < 0 {
		return "", fmt.Errorf("data: unknown column %q", col)
	}
	if i < 0 || i >= len(c.Rows) {
		return "", fmt.Errorf("data: row %d out of range (%d rows)", i, len(c.Rows))
	}
	return c.Rows[i].Fields[idx], nil
}

// Len returns the number of rows.
func (c *Collection) Len() int { return len(c.Rows) }

// Partition splits the collection into k contiguous shards whose sizes
// differ by at most one row; empty shards are returned when rows < k. The
// execution engine hands shards to its worker pool.
func (c *Collection) Partition(k int) []*Collection {
	if k <= 0 {
		k = 1
	}
	out := make([]*Collection, k)
	n := len(c.Rows)
	base, extra := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = &Collection{Schema: c.Schema, Rows: c.Rows[start : start+size]}
		start += size
	}
	return out
}

// ParseCSVLine splits a CSV line honoring double quotes ("" escapes a quote
// inside a quoted field). It covers the subset of RFC 4180 needed for the
// census-style inputs; embedded newlines are not supported because the
// scanner feeds it single lines.
func ParseCSVLine(line string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case inQuote && ch == '"':
			if i+1 < len(line) && line[i+1] == '"' {
				b.WriteByte('"')
				i++
			} else {
				inQuote = false
			}
		case ch == '"':
			inQuote = true
		case ch == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(ch)
		}
	}
	out = append(out, b.String())
	return out
}

// ScanCSV parses CSV text (one record per line, no header) into a collection
// over the given schema. Blank lines are skipped; arity mismatches error
// with the line number.
func ScanCSV(text string, schema *Schema) (*Collection, error) {
	c := NewCollection(schema)
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := ParseCSVLine(line)
		if len(fields) != schema.Len() {
			return nil, fmt.Errorf("data: line %d has %d fields, want %d", lineNo+1, len(fields), schema.Len())
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		c.Rows = append(c.Rows, Row{Fields: fields})
	}
	return c, nil
}

// ToCSV renders the collection back to CSV (no header), quoting fields that
// contain commas or quotes. Round-trips with ScanCSV.
func (c *Collection) ToCSV() string {
	var b strings.Builder
	for _, r := range c.Rows {
		for i, f := range r.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(f, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(f, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(f)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FeatureMap is the human-readable per-example feature representation the
// DSL's extractors produce: feature name -> numeric value. Categorical
// extractors emit one-hot names like "occupation=Sales".
type FeatureMap map[string]float64

// Example is one training/test instance before vectorization.
type Example struct {
	Features FeatureMap
	// Label is the supervised target; convention: binary tasks use 0/1.
	Label float64
	// HasLabel distinguishes unlabeled (prediction-time) examples.
	HasLabel bool
}

// ExampleSet is a dataset of feature-mapped examples.
type ExampleSet struct {
	Examples []Example
}

// Len returns the number of examples.
func (e *ExampleSet) Len() int { return len(e.Examples) }

// Dictionary assigns dense indices to feature names so human-readable maps
// convert into ML-compatible sparse vectors ("automatically converts it into
// a compatible format for ML", §2.1). Deterministic: names are indexed in
// first-seen order during Fit.
type Dictionary struct {
	index map[string]int
	names []string
	// frozen stops new names being added (test-time behaviour, so unseen
	// features are dropped rather than growing the space).
	frozen bool
}

// NewDictionary returns an empty, unfrozen dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[string]int)}
}

// Fit indexes every feature name in the set (in row order, then sorted name
// order within a row for determinism).
func (d *Dictionary) Fit(set *ExampleSet) {
	for _, ex := range set.Examples {
		names := make([]string, 0, len(ex.Features))
		for n := range ex.Features {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			d.Add(n)
		}
	}
}

// Add indexes a single name, returning its index (existing or new). Frozen
// dictionaries return -1 for unseen names.
func (d *Dictionary) Add(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	if d.frozen {
		return -1
	}
	i := len(d.names)
	d.index[name] = i
	d.names = append(d.names, name)
	return i
}

// Freeze stops the dictionary growing; vectorizing unseen features drops them.
func (d *Dictionary) Freeze() { d.frozen = true }

// Len returns the number of indexed features.
func (d *Dictionary) Len() int { return len(d.names) }

// Name returns the feature name at index i.
func (d *Dictionary) Name(i int) (string, error) {
	if i < 0 || i >= len(d.names) {
		return "", fmt.Errorf("data: feature index %d out of range (%d features)", i, len(d.names))
	}
	return d.names[i], nil
}

// Index returns a name's index or -1.
func (d *Dictionary) Index(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	return -1
}

// Vector is a sparse feature vector with strictly increasing indices.
type Vector struct {
	Indices []int
	Values  []float64
}

// Dot computes the inner product with a dense weight slice. Indices beyond
// len(w) contribute zero, so models trained on a smaller space stay usable.
func (v Vector) Dot(w []float64) float64 {
	var s float64
	for k, i := range v.Indices {
		if i < len(w) {
			s += w[i] * v.Values[k]
		}
	}
	return s
}

// L2 returns the squared Euclidean norm.
func (v Vector) L2() float64 {
	var s float64
	for _, x := range v.Values {
		s += x * x
	}
	return s
}

// Vectorize converts a feature map through the dictionary into a sparse
// vector with sorted indices. Unseen names in a frozen dictionary are
// dropped.
func (d *Dictionary) Vectorize(fm FeatureMap) Vector {
	type kv struct {
		i int
		v float64
	}
	tmp := make([]kv, 0, len(fm))
	for name, val := range fm {
		if i := d.Add(name); i >= 0 {
			tmp = append(tmp, kv{i, val})
		}
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a].i < tmp[b].i })
	v := Vector{Indices: make([]int, len(tmp)), Values: make([]float64, len(tmp))}
	for k, e := range tmp {
		v.Indices[k] = e.i
		v.Values[k] = e.v
	}
	return v
}

// Labeled is a vectorized example.
type Labeled struct {
	X Vector
	Y float64
}

// VectorizeSet converts a whole example set; examples without labels get
// Y=0 and are typically used only for prediction.
func (d *Dictionary) VectorizeSet(set *ExampleSet) []Labeled {
	out := make([]Labeled, len(set.Examples))
	for i, ex := range set.Examples {
		out[i] = Labeled{X: d.Vectorize(ex.Features), Y: ex.Label}
	}
	return out
}

// ParseFloat converts a field to float64 with a column-aware error.
func ParseFloat(field, col string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
	if err != nil {
		return 0, fmt.Errorf("data: column %q: %q is not numeric", col, field)
	}
	return f, nil
}
