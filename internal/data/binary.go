package data

import (
	"fmt"
	"sort"

	"repro/internal/codec"
)

// Binary value codec registrations for the data types (see codec.EncodeValue).
// Unlike the gob helpers, every map here is written in sorted key order so
// re-encoding a decoded value is byte-stable — the equivalence harness
// compares encodings across executors.

func init() {
	codec.RegisterValue(&Collection{}, "data.*Collection",
		func(w *codec.Writer, v any) error { encodeCollection(w, v.(*Collection)); return nil },
		func(r *codec.Reader) (any, error) { return decodeCollection(r) })
	codec.RegisterValue(Collection{}, "data.Collection",
		func(w *codec.Writer, v any) error { c := v.(Collection); encodeCollection(w, &c); return nil },
		func(r *codec.Reader) (any, error) {
			c, err := decodeCollection(r)
			if err != nil {
				return nil, err
			}
			return *c, nil
		})
	codec.RegisterValue(Row{}, "data.Row",
		func(w *codec.Writer, v any) error {
			row := v.(Row)
			w.Len(len(row.Fields))
			for _, f := range row.Fields {
				w.String(f)
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			fields := make([]string, n)
			for i := range fields {
				if fields[i], err = r.String(); err != nil {
					return nil, err
				}
			}
			return Row{Fields: fields}, nil
		})
	codec.RegisterValue(&Schema{}, "data.*Schema",
		func(w *codec.Writer, v any) error { encodeSchema(w, v.(*Schema)); return nil },
		func(r *codec.Reader) (any, error) { return decodeSchema(r) })
	codec.RegisterValue(FeatureMap{}, "data.FeatureMap",
		func(w *codec.Writer, v any) error { encodeFeatureMapSorted(w, nil, v.(FeatureMap)); return nil },
		func(r *codec.Reader) (any, error) { return decodeFeatureMap(r, nil) })
	codec.RegisterValue(&ExampleSet{}, "data.*ExampleSet",
		func(w *codec.Writer, v any) error { encodeExampleSet(w, v.(*ExampleSet)); return nil },
		func(r *codec.Reader) (any, error) { return decodeExampleSet(r) })
	codec.RegisterValue(ExampleSet{}, "data.ExampleSet",
		func(w *codec.Writer, v any) error { s := v.(ExampleSet); encodeExampleSet(w, &s); return nil },
		func(r *codec.Reader) (any, error) {
			s, err := decodeExampleSet(r)
			if err != nil {
				return nil, err
			}
			return *s, nil
		})
	codec.RegisterValue(&Dictionary{}, "data.*Dictionary",
		func(w *codec.Writer, v any) error { encodeDictionary(w, v.(*Dictionary)); return nil },
		func(r *codec.Reader) (any, error) { return decodeDictionary(r) })
	codec.RegisterValue(Vector{}, "data.Vector",
		func(w *codec.Writer, v any) error { encodeVector(w, v.(Vector)); return nil },
		func(r *codec.Reader) (any, error) { return decodeVector(r) })
	codec.RegisterValue(Labeled{}, "data.Labeled",
		func(w *codec.Writer, v any) error {
			l := v.(Labeled)
			w.Float64(l.Y)
			encodeVector(w, l.X)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			y, err := r.Float64()
			if err != nil {
				return nil, err
			}
			x, err := decodeVector(r)
			if err != nil {
				return nil, err
			}
			return Labeled{X: x, Y: y}, nil
		})
	codec.RegisterValue(&FieldExtractor{}, "data.*FieldExtractor",
		func(w *codec.Writer, v any) error {
			f := v.(*FieldExtractor)
			w.String(f.Col)
			encodeBool(w, f.Numeric)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			col, err := r.String()
			if err != nil {
				return nil, err
			}
			num, err := decodeBool(r)
			if err != nil {
				return nil, err
			}
			return &FieldExtractor{Col: col, Numeric: num}, nil
		})
	codec.RegisterValue(&Bucketizer{}, "data.*Bucketizer",
		func(w *codec.Writer, v any) error {
			b := v.(*Bucketizer)
			w.String(b.Col)
			w.Int(b.Bins)
			w.Float64(b.Lo)
			w.Float64(b.Width)
			encodeBool(w, b.Fitted)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var b Bucketizer
			var err error
			if b.Col, err = r.String(); err != nil {
				return nil, err
			}
			if b.Bins, err = r.Int(); err != nil {
				return nil, err
			}
			if b.Lo, err = r.Float64(); err != nil {
				return nil, err
			}
			if b.Width, err = r.Float64(); err != nil {
				return nil, err
			}
			if b.Fitted, err = decodeBool(r); err != nil {
				return nil, err
			}
			return &b, nil
		})
	codec.RegisterValue(&InteractionFeature{}, "data.*InteractionFeature",
		func(w *codec.Writer, v any) error {
			x := v.(*InteractionFeature)
			w.Len(len(x.Cols))
			for _, c := range x.Cols {
				w.String(c)
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			cols := make([]string, n)
			for i := range cols {
				if cols[i], err = r.String(); err != nil {
					return nil, err
				}
			}
			return &InteractionFeature{Cols: cols}, nil
		})
}

func encodeBool(w *codec.Writer, b bool) {
	if b {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
}

func decodeBool(r *codec.Reader) (bool, error) {
	b, err := r.Uvarint()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("data: bad bool %d", b)
	}
	return b == 1, nil
}

func encodeSchema(w *codec.Writer, s *Schema) {
	w.Len(len(s.names))
	for _, n := range s.names {
		w.String(n)
	}
}

func decodeSchema(r *codec.Reader) (*Schema, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	names := make([]string, n)
	for i := range names {
		if names[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return NewSchema(names...)
}

func encodeCollection(w *codec.Writer, c *Collection) {
	encodeSchema(w, c.Schema)
	w.Len(len(c.Rows))
	table := codec.NewStringTable()
	for _, row := range c.Rows {
		w.Len(len(row.Fields))
		for _, f := range row.Fields {
			table.Write(w, f)
		}
	}
}

func decodeCollection(r *codec.Reader) (*Collection, error) {
	schema, err := decodeSchema(r)
	if err != nil {
		return nil, err
	}
	nrows, err := r.Len()
	if err != nil {
		return nil, err
	}
	rows := make([]Row, nrows)
	table := codec.NewReadStringTable()
	for i := range rows {
		nf, err := r.Len()
		if err != nil {
			return nil, err
		}
		fields := make([]string, nf)
		for j := range fields {
			if fields[j], err = table.Read(r); err != nil {
				return nil, err
			}
		}
		rows[i] = Row{Fields: fields}
	}
	return &Collection{Schema: schema, Rows: rows}, nil
}

// sortedNames returns fm's keys in sorted order. When fm has exactly the
// same key set as prev (the common case for feature-extracted examples,
// which share one feature schema across a whole set), prev is returned
// as-is — skipping the per-map iterate+sort+allocate that otherwise
// dominates encode cost on map-heavy values.
func sortedNames(fm FeatureMap, prev []string) []string {
	if len(prev) == len(fm) {
		same := true
		for _, n := range prev {
			if _, ok := fm[n]; !ok {
				same = false
				break
			}
		}
		if same {
			return prev
		}
	}
	names := make([]string, 0, len(fm))
	for n := range fm {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// encodeFeatureMapSorted writes one feature map in sorted name order,
// optionally interning names through a shared table.
func encodeFeatureMapSorted(w *codec.Writer, table *codec.StringTable, fm FeatureMap) {
	encodeFeatureMapReuse(w, table, fm, nil)
}

// encodeFeatureMapReuse is encodeFeatureMapSorted with sorted-key reuse
// across consecutive maps (see sortedNames); it returns the key slice to
// pass as prev for the next map.
func encodeFeatureMapReuse(w *codec.Writer, table *codec.StringTable, fm FeatureMap, prev []string) []string {
	names := sortedNames(fm, prev)
	w.Len(len(names))
	for _, n := range names {
		if table != nil {
			table.Write(w, n)
		} else {
			w.String(n)
		}
		w.Float64(fm[n])
	}
	return names
}

func decodeFeatureMap(r *codec.Reader, table *codec.ReadStringTable) (FeatureMap, error) {
	k, err := r.Len()
	if err != nil {
		return nil, err
	}
	fm := make(FeatureMap, k)
	for j := 0; j < k; j++ {
		var name string
		if table != nil {
			name, err = table.Read(r)
		} else {
			name, err = r.String()
		}
		if err != nil {
			return nil, err
		}
		val, err := r.Float64()
		if err != nil {
			return nil, err
		}
		fm[name] = val
	}
	return fm, nil
}

// EncodeFeatureMapsSorted is EncodeFeatureMaps with deterministic (sorted)
// key order, for the byte-stable binary codec. Exposed for the composite
// value types in internal/core.
func EncodeFeatureMapsSorted(w *codec.Writer, table *codec.StringTable, maps []FeatureMap) {
	w.Len(len(maps))
	var keys []string
	for _, fm := range maps {
		keys = encodeFeatureMapReuse(w, table, fm, keys)
	}
}

// DecodeFeatureMapsSorted reverses EncodeFeatureMapsSorted.
func DecodeFeatureMapsSorted(r *codec.Reader, table *codec.ReadStringTable) ([]FeatureMap, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	out := make([]FeatureMap, n)
	for i := range out {
		if out[i], err = decodeFeatureMap(r, table); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func encodeExampleSet(w *codec.Writer, s *ExampleSet) {
	w.Len(len(s.Examples))
	table := codec.NewStringTable()
	var keys []string
	for _, ex := range s.Examples {
		keys = encodeFeatureMapReuse(w, table, ex.Features, keys)
		w.Float64(ex.Label)
		encodeBool(w, ex.HasLabel)
	}
}

func decodeExampleSet(r *codec.Reader) (*ExampleSet, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	table := codec.NewReadStringTable()
	examples := make([]Example, n)
	for i := range examples {
		fm, err := decodeFeatureMap(r, table)
		if err != nil {
			return nil, err
		}
		label, err := r.Float64()
		if err != nil {
			return nil, err
		}
		has, err := decodeBool(r)
		if err != nil {
			return nil, err
		}
		examples[i] = Example{Features: fm, Label: label, HasLabel: has}
	}
	return &ExampleSet{Examples: examples}, nil
}

func encodeDictionary(w *codec.Writer, d *Dictionary) {
	w.Len(len(d.names))
	for _, n := range d.names {
		w.String(n)
	}
	encodeBool(w, d.frozen)
}

func decodeDictionary(r *codec.Reader) (*Dictionary, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	d := NewDictionary()
	for i := 0; i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		d.Add(name)
	}
	if d.frozen, err = decodeBool(r); err != nil {
		return nil, err
	}
	return d, nil
}

func encodeVector(w *codec.Writer, v Vector) {
	w.Len(len(v.Indices))
	for _, i := range v.Indices {
		w.Int(i)
	}
	for _, x := range v.Values {
		w.Float64(x)
	}
}

func decodeVector(r *codec.Reader) (Vector, error) {
	n, err := r.Len()
	if err != nil {
		return Vector{}, err
	}
	idx := make([]int, n)
	for i := range idx {
		if idx[i], err = r.Int(); err != nil {
			return Vector{}, err
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		if vals[i], err = r.Float64(); err != nil {
			return Vector{}, err
		}
	}
	return Vector{Indices: idx, Values: vals}, nil
}
