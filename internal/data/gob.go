package data

import (
	"fmt"

	"repro/internal/codec"
)

// Collection and FeatureMap implement custom gob encodings through the fast
// codec: the reflective gob path over per-row string maps decodes slower
// than recomputing the rows, which would defeat materialization reuse.

// GobEncode implements a columnar encoding: schema names, then all field
// values through one interned string table (categorical columns repeat their
// small vocabularies constantly).
func (c *Collection) GobEncode() ([]byte, error) {
	var w codec.Writer
	names := c.Schema.Names()
	w.Len(len(names))
	for _, n := range names {
		w.String(n)
	}
	w.Len(len(c.Rows))
	table := codec.NewStringTable()
	for _, row := range c.Rows {
		if len(row.Fields) != len(names) {
			return nil, fmt.Errorf("data: row has %d fields, schema has %d", len(row.Fields), len(names))
		}
		for _, f := range row.Fields {
			table.Write(&w, f)
		}
	}
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode.
func (c *Collection) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	ncols, err := r.Len()
	if err != nil {
		return err
	}
	names := make([]string, ncols)
	for i := range names {
		if names[i], err = r.String(); err != nil {
			return err
		}
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return err
	}
	nrows, err := r.Len()
	if err != nil {
		return err
	}
	rows := make([]Row, nrows)
	table := codec.NewReadStringTable()
	for i := range rows {
		fields := make([]string, ncols)
		for j := range fields {
			if fields[j], err = table.Read(r); err != nil {
				return err
			}
		}
		rows[i] = Row{Fields: fields}
	}
	c.Schema = schema
	c.Rows = rows
	return nil
}

// GobEncode serializes the dictionary as its dense name order plus the
// frozen flag, mirroring the binary codec so the gob reference path covers
// every registered value type.
func (d *Dictionary) GobEncode() ([]byte, error) {
	var w codec.Writer
	w.Len(len(d.names))
	for _, n := range d.names {
		w.String(n)
	}
	if d.frozen {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode, rebuilding the name index.
func (d *Dictionary) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	n, err := r.Len()
	if err != nil {
		return err
	}
	nd := NewDictionary()
	for i := 0; i < n; i++ {
		name, err := r.String()
		if err != nil {
			return err
		}
		nd.Add(name)
	}
	frozen, err := r.Uvarint()
	if err != nil {
		return err
	}
	nd.frozen = frozen != 0
	*d = *nd
	return nil
}

// EncodeFeatureMaps writes a slice of feature maps through the codec with a
// shared string table. Exposed for the composite value types (feature
// columns, example sets) that embed map slices.
func EncodeFeatureMaps(w *codec.Writer, table *codec.StringTable, maps []FeatureMap) {
	w.Len(len(maps))
	for _, fm := range maps {
		w.Len(len(fm))
		for name, val := range fm {
			table.Write(w, name)
			w.Float64(val)
		}
	}
}

// DecodeFeatureMaps reverses EncodeFeatureMaps.
func DecodeFeatureMaps(r *codec.Reader, table *codec.ReadStringTable) ([]FeatureMap, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	out := make([]FeatureMap, n)
	for i := range out {
		k, err := r.Len()
		if err != nil {
			return nil, err
		}
		fm := make(FeatureMap, k)
		for j := 0; j < k; j++ {
			name, err := table.Read(r)
			if err != nil {
				return nil, err
			}
			val, err := r.Float64()
			if err != nil {
				return nil, err
			}
			fm[name] = val
		}
		out[i] = fm
	}
	return out, nil
}

// EncodeLabeled writes vectorized examples as flat arrays.
func EncodeLabeled(w *codec.Writer, set []Labeled) {
	w.Len(len(set))
	for _, ex := range set {
		w.Float64(ex.Y)
		w.Len(len(ex.X.Indices))
		for _, i := range ex.X.Indices {
			w.Int(i)
		}
		for _, v := range ex.X.Values {
			w.Float64(v)
		}
	}
}

// DecodeLabeled reverses EncodeLabeled.
func DecodeLabeled(r *codec.Reader) ([]Labeled, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	out := make([]Labeled, n)
	for i := range out {
		y, err := r.Float64()
		if err != nil {
			return nil, err
		}
		nnz, err := r.Len()
		if err != nil {
			return nil, err
		}
		idx := make([]int, nnz)
		for k := range idx {
			if idx[k], err = r.Int(); err != nil {
				return nil, err
			}
		}
		vals := make([]float64, nnz)
		for k := range vals {
			if vals[k], err = r.Float64(); err != nil {
				return nil, err
			}
		}
		out[i] = Labeled{X: Vector{Indices: idx, Values: vals}, Y: y}
	}
	return out, nil
}
