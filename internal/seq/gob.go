package seq

import (
	"fmt"

	"repro/internal/codec"
)

// GobEncode serializes the feature dictionary as its dense index order plus
// the frozen flag, mirroring the binary codec so the gob reference path
// covers every registered value type.
func (d *FeatureDict) GobEncode() ([]byte, error) {
	names := make([]string, len(d.index))
	seen := make([]bool, len(d.index))
	for n, i := range d.index {
		if i < 0 || i >= len(names) || seen[i] {
			return nil, fmt.Errorf("seq: feature dict index not dense at %q -> %d", n, i)
		}
		names[i] = n
		seen[i] = true
	}
	var w codec.Writer
	w.Len(len(names))
	for _, n := range names {
		w.String(n)
	}
	if d.frozen {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
	return w.Bytes(), nil
}

// GobDecode reverses GobEncode, rebuilding the name index.
func (d *FeatureDict) GobDecode(raw []byte) error {
	r := codec.NewReader(raw)
	n, err := r.Len()
	if err != nil {
		return err
	}
	nd := NewFeatureDict()
	for i := 0; i < n; i++ {
		name, err := r.String()
		if err != nil {
			return err
		}
		nd.Add(name)
	}
	frozen, err := r.Uvarint()
	if err != nil {
		return err
	}
	nd.frozen = frozen != 0
	*d = *nd
	return nil
}
