package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTagName(t *testing.T) {
	for tag, want := range map[int]string{TagO: "O", TagB: "B", TagI: "I", 7: "T7"} {
		if got := TagName(tag); got != want {
			t.Errorf("TagName(%d) = %q, want %q", tag, got, want)
		}
	}
}

func TestSpansFromTags(t *testing.T) {
	cases := []struct {
		tags []int
		want []Span
	}{
		{[]int{TagO, TagB, TagI, TagO}, []Span{{1, 3}}},
		{[]int{TagB, TagB}, []Span{{0, 1}, {1, 2}}},
		{[]int{TagB, TagI, TagI}, []Span{{0, 3}}},
		{[]int{TagO, TagO}, nil},
		{[]int{TagI, TagI, TagO}, []Span{{0, 2}}}, // lenient I-start
		{nil, nil},
	}
	for _, tc := range cases {
		if got := SpansFromTags(tc.tags); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SpansFromTags(%v) = %v, want %v", tc.tags, got, tc.want)
		}
	}
}

func TestTagsFromSpansRoundTrip(t *testing.T) {
	spans := []Span{{1, 3}, {4, 5}}
	tags, err := TagsFromSpans(spans, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{TagO, TagB, TagI, TagO, TagB, TagO}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("tags = %v, want %v", tags, want)
	}
	back := SpansFromTags(tags)
	if !reflect.DeepEqual(back, spans) {
		t.Errorf("round trip = %v, want %v", back, spans)
	}
}

func TestTagsFromSpansErrors(t *testing.T) {
	if _, err := TagsFromSpans([]Span{{2, 1}}, 5); err == nil {
		t.Error("inverted span accepted")
	}
	if _, err := TagsFromSpans([]Span{{0, 9}}, 5); err == nil {
		t.Error("out-of-range span accepted")
	}
	if _, err := TagsFromSpans([]Span{{0, 3}, {2, 4}}, 5); err == nil {
		t.Error("overlap accepted")
	}
}

func TestSpanF1Perfect(t *testing.T) {
	gold := [][]Span{{{0, 2}}, {{1, 3}, {4, 5}}}
	p, r, f1, err := SpanF1(gold, gold)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect match: p=%v r=%v f1=%v", p, r, f1)
	}
}

func TestSpanF1Partial(t *testing.T) {
	gold := [][]Span{{{0, 2}, {3, 4}}}
	pred := [][]Span{{{0, 2}, {5, 6}}}
	p, r, f1, err := SpanF1(gold, pred)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Errorf("p=%v r=%v f1=%v, want 0.5 each", p, r, f1)
	}
}

func TestSpanF1Empty(t *testing.T) {
	p, r, f1, err := SpanF1([][]Span{nil}, [][]Span{nil})
	if err != nil || p != 0 || r != 0 || f1 != 0 {
		t.Errorf("empty: p=%v r=%v f1=%v err=%v", p, r, f1, err)
	}
	if _, _, _, err := SpanF1([][]Span{nil}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSpanF1DuplicatePredictions(t *testing.T) {
	// The same correct span predicted twice: one TP, one FP.
	gold := [][]Span{{{0, 1}}}
	pred := [][]Span{{{0, 1}, {0, 1}}}
	p, r, _, err := SpanF1(gold, pred)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 || r != 1 {
		t.Errorf("p=%v r=%v, want 0.5, 1", p, r)
	}
}

func TestFeatureDict(t *testing.T) {
	d := NewFeatureDict()
	a := d.Add("x")
	if d.Add("x") != a {
		t.Error("re-add changed index")
	}
	d.Add("y")
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	d.Freeze()
	if d.Add("z") != -1 {
		t.Error("frozen dict grew")
	}
	got := d.Map([]string{"x", "z", "y"})
	if len(got) != 2 {
		t.Errorf("Map = %v", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := NewModel(4)
	if got := m.Decode(nil); got != nil {
		t.Errorf("Decode(nil) = %v", got)
	}
}

func TestDecodeBIOValidity(t *testing.T) {
	// Even with emission weights pushing hard toward I, decoding never
	// produces an O->I transition or sentence-initial I.
	m := NewModel(1)
	m.Emit[TagI][0] = 100
	m.Emit[TagO][0] = 99 // competitive O
	feats := [][]int{{0}, {0}, {0}}
	tags := m.Decode(feats)
	if tags[0] == TagI {
		t.Errorf("sentence-initial I: %v", tags)
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == TagI && tags[i-1] == TagO {
			t.Errorf("O->I transition at %d: %v", i, tags)
		}
	}
}

// synthCorpus builds sentences where tokens with feature "name" form
// mentions: B if previous token is not a name, I otherwise.
func synthCorpus(n int, dict *FeatureDict, rng *rand.Rand) []Instance {
	nameFeat := dict.Add("name")
	wordFeats := make([]int, 20)
	for i := range wordFeats {
		wordFeats[i] = dict.Add("w" + string(rune('a'+i)))
	}
	insts := make([]Instance, n)
	for k := range insts {
		ln := 3 + rng.Intn(8)
		in := Instance{Feats: make([][]int, ln), Tags: make([]int, ln)}
		prevName := false
		for i := 0; i < ln; i++ {
			isName := rng.Float64() < 0.3
			if isName {
				in.Feats[i] = []int{nameFeat, wordFeats[rng.Intn(len(wordFeats))]}
				if prevName {
					in.Tags[i] = TagI
				} else {
					in.Tags[i] = TagB
				}
			} else {
				in.Feats[i] = []int{wordFeats[rng.Intn(len(wordFeats))]}
				in.Tags[i] = TagO
			}
			prevName = isName
		}
		insts[k] = in
	}
	return insts
}

func TestTrainLearnsSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dict := NewFeatureDict()
	insts := synthCorpus(200, dict, rng)
	m, err := Train(insts, TrainConfig{Epochs: 5, Seed: 1, Dim: dict.Len()})
	if err != nil {
		t.Fatal(err)
	}
	// Token-level accuracy on held-out data with the same generator.
	test := synthCorpus(50, dict, rng)
	correct, total := 0, 0
	for _, in := range test {
		pred := m.Decode(in.Feats)
		for i := range pred {
			if pred[i] == in.Tags[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Errorf("synthetic tagging accuracy = %v, want >= 0.97", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	good := Instance{Feats: [][]int{{0}}, Tags: []int{TagO}}
	if _, err := Train([]Instance{good}, TrainConfig{Epochs: 1, Dim: 0}); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := Train([]Instance{good}, TrainConfig{Epochs: 0, Dim: 1}); err == nil {
		t.Error("epochs=0 accepted")
	}
	if _, err := Train(nil, TrainConfig{Epochs: 1, Dim: 1}); err == nil {
		t.Error("empty corpus accepted")
	}
	bad := Instance{Feats: [][]int{{0}}, Tags: []int{TagO, TagB}}
	if _, err := Train([]Instance{bad}, TrainConfig{Epochs: 1, Dim: 1}); err == nil {
		t.Error("tag/token mismatch accepted")
	}
	badTag := Instance{Feats: [][]int{{0}}, Tags: []int{9}}
	if _, err := Train([]Instance{badTag}, TrainConfig{Epochs: 1, Dim: 1}); err == nil {
		t.Error("invalid tag accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dict := NewFeatureDict()
	insts := synthCorpus(30, dict, rng)
	cfg := TrainConfig{Epochs: 3, Seed: 7, Dim: dict.Len()}
	m1, err := Train(insts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(insts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tg := 0; tg < NumTags; tg++ {
		if !reflect.DeepEqual(m1.Emit[tg], m2.Emit[tg]) {
			t.Fatalf("emission weights differ for tag %d", tg)
		}
	}
	if m1.Trans != m2.Trans {
		t.Error("transition weights differ")
	}
}

// Property: SpansFromTags output spans are disjoint, ordered, in-range.
func TestQuickSpansWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		tags := make([]int, n)
		for i := range tags {
			tags[i] = r.Intn(NumTags)
		}
		spans := SpansFromTags(tags)
		prevEnd := 0
		for _, s := range spans {
			if s.Start < prevEnd || s.End <= s.Start || s.End > n {
				return false
			}
			prevEnd = s.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: decoding always yields BIO-valid sequences for random models.
func TestQuickDecodeValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(6)
		m := NewModel(dim)
		for tg := 0; tg < NumTags; tg++ {
			for f := 0; f < dim; f++ {
				m.Emit[tg][f] = r.NormFloat64() * 10
			}
		}
		for p := 0; p <= NumTags; p++ {
			for tg := 0; tg < NumTags; tg++ {
				m.Trans[p][tg] = r.NormFloat64() * 10
			}
		}
		n := 1 + r.Intn(12)
		feats := make([][]int, n)
		for i := range feats {
			for j := 0; j < r.Intn(4); j++ {
				feats[i] = append(feats[i], r.Intn(dim))
			}
		}
		tags := m.Decode(feats)
		if len(tags) != n {
			return false
		}
		if tags[0] == TagI {
			return false
		}
		for i := 1; i < n; i++ {
			if tags[i] == TagI && tags[i-1] == TagO {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
