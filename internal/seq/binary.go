package seq

import (
	"fmt"

	"repro/internal/codec"
)

// Binary value codec registrations for the sequence-labeling types (see
// codec.EncodeValue). FeatureDict's map encodes in dense index order so the
// bytes are deterministic.

func init() {
	codec.RegisterValue(Instance{}, "seq.Instance",
		func(w *codec.Writer, v any) error { encodeInstance(w, v.(Instance)); return nil },
		func(r *codec.Reader) (any, error) { return decodeInstance(r) })
	codec.RegisterValue(&Model{}, "seq.*Model",
		func(w *codec.Writer, v any) error { encodeModel(w, v.(*Model)); return nil },
		func(r *codec.Reader) (any, error) { return decodeModel(r) })
	codec.RegisterValue(Span{}, "seq.Span",
		func(w *codec.Writer, v any) error {
			s := v.(Span)
			w.Int(s.Start)
			w.Int(s.End)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var s Span
			var err error
			if s.Start, err = r.Int(); err != nil {
				return nil, err
			}
			if s.End, err = r.Int(); err != nil {
				return nil, err
			}
			return s, nil
		})
	codec.RegisterValue(&FeatureDict{}, "seq.*FeatureDict",
		func(w *codec.Writer, v any) error { return encodeFeatureDict(w, v.(*FeatureDict)) },
		func(r *codec.Reader) (any, error) { return decodeFeatureDict(r) })
}

func encodeInstance(w *codec.Writer, in Instance) {
	w.Len(len(in.Feats))
	for _, fs := range in.Feats {
		w.Len(len(fs))
		for _, f := range fs {
			w.Int(f)
		}
	}
	w.Len(len(in.Tags))
	for _, t := range in.Tags {
		w.Int(t)
	}
}

func decodeInstance(r *codec.Reader) (Instance, error) {
	n, err := r.Len()
	if err != nil {
		return Instance{}, err
	}
	feats := make([][]int, n)
	for i := range feats {
		k, err := r.Len()
		if err != nil {
			return Instance{}, err
		}
		fs := make([]int, k)
		for j := range fs {
			if fs[j], err = r.Int(); err != nil {
				return Instance{}, err
			}
		}
		feats[i] = fs
	}
	nt, err := r.Len()
	if err != nil {
		return Instance{}, err
	}
	tags := make([]int, nt)
	for i := range tags {
		if tags[i], err = r.Int(); err != nil {
			return Instance{}, err
		}
	}
	return Instance{Feats: feats, Tags: tags}, nil
}

func encodeModel(w *codec.Writer, m *Model) {
	w.Int(m.Dim)
	for t := 0; t < NumTags; t++ {
		w.Len(len(m.Emit[t]))
		for _, x := range m.Emit[t] {
			w.Float64(x)
		}
	}
	for i := 0; i <= NumTags; i++ {
		for j := 0; j < NumTags; j++ {
			w.Float64(m.Trans[i][j])
		}
	}
}

func decodeModel(r *codec.Reader) (*Model, error) {
	var m Model
	var err error
	if m.Dim, err = r.Int(); err != nil {
		return nil, err
	}
	for t := 0; t < NumTags; t++ {
		n, err := r.Len()
		if err != nil {
			return nil, err
		}
		em := make([]float64, n)
		for i := range em {
			if em[i], err = r.Float64(); err != nil {
				return nil, err
			}
		}
		m.Emit[t] = em
	}
	for i := 0; i <= NumTags; i++ {
		for j := 0; j < NumTags; j++ {
			if m.Trans[i][j], err = r.Float64(); err != nil {
				return nil, err
			}
		}
	}
	return &m, nil
}

func encodeFeatureDict(w *codec.Writer, d *FeatureDict) error {
	names := make([]string, len(d.index))
	seen := make([]bool, len(d.index))
	for n, i := range d.index {
		if i < 0 || i >= len(names) || seen[i] {
			return fmt.Errorf("seq: feature dict index not dense at %q -> %d", n, i)
		}
		names[i] = n
		seen[i] = true
	}
	w.Len(len(names))
	for _, n := range names {
		w.String(n)
	}
	if d.frozen {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
	return nil
}

func decodeFeatureDict(r *codec.Reader) (*FeatureDict, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	d := NewFeatureDict()
	for i := 0; i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		d.Add(name)
	}
	frozen, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if frozen > 1 {
		return nil, fmt.Errorf("seq: bad frozen flag %d", frozen)
	}
	d.frozen = frozen == 1
	return d, nil
}
