// Package seq implements the structured-prediction substrate for the
// information-extraction application: BIO sequence labeling with a
// structured (collins) perceptron and exact Viterbi decoding, plus
// span-level extraction and F1 evaluation. It stands in for the CRF-style
// learner DeepDive brings to the paper's IE task while exercising the same
// workflow shape: token features -> sequence model -> mention spans.
package seq

import (
	"fmt"
	"math/rand"
)

// BIO tag indices. O = outside, B = mention begins, I = mention continues.
const (
	TagO = 0
	TagB = 1
	TagI = 2
	// NumTags is the size of the tag set.
	NumTags = 3
)

// TagName returns the canonical string for a tag index.
func TagName(t int) string {
	switch t {
	case TagO:
		return "O"
	case TagB:
		return "B"
	case TagI:
		return "I"
	default:
		return fmt.Sprintf("T%d", t)
	}
}

// Instance is one sentence: per-token sparse feature indices and gold tags.
type Instance struct {
	// Feats[i] holds the active feature indices for token i (emission
	// features, already mapped through a dictionary).
	Feats [][]int
	// Tags[i] is the gold BIO tag, empty for unlabeled instances.
	Tags []int
}

// Len returns the number of tokens.
func (in *Instance) Len() int { return len(in.Feats) }

// Model is a linear sequence model: per-tag emission weights over the
// feature space plus a tag-transition matrix. Exported fields for gob.
type Model struct {
	// Emit[tag] is a dense weight vector over feature indices.
	Emit [NumTags][]float64
	// Trans[from][to] scores tag bigrams; index NumTags is the start state.
	Trans [NumTags + 1][NumTags]float64
	// Dim is the emission feature-space size.
	Dim int
}

// NewModel allocates a zero model over dim features.
func NewModel(dim int) *Model {
	m := &Model{Dim: dim}
	for t := 0; t < NumTags; t++ {
		m.Emit[t] = make([]float64, dim)
	}
	return m
}

// emitScore sums emission weights for tag t over the active features.
func (m *Model) emitScore(feats []int, t int) float64 {
	var s float64
	w := m.Emit[t]
	for _, f := range feats {
		if f >= 0 && f < len(w) {
			s += w[f]
		}
	}
	return s
}

// Decode runs Viterbi, returning the highest-scoring tag sequence under the
// structural constraint that I may only follow B or I (a standard BIO
// validity constraint, enforced with a -inf transition at decode time).
func (m *Model) Decode(feats [][]int) []int {
	n := len(feats)
	if n == 0 {
		return nil
	}
	const negInf = -1e18
	score := make([][NumTags]float64, n)
	back := make([][NumTags]int, n)
	for t := 0; t < NumTags; t++ {
		s := m.Trans[NumTags][t] + m.emitScore(feats[0], t)
		if t == TagI { // I cannot start a sentence
			s = negInf
		}
		score[0][t] = s
	}
	for i := 1; i < n; i++ {
		for t := 0; t < NumTags; t++ {
			best, bestP := negInf, 0
			for p := 0; p < NumTags; p++ {
				if t == TagI && p == TagO { // O -> I invalid
					continue
				}
				if s := score[i-1][p] + m.Trans[p][t]; s > best {
					best, bestP = s, p
				}
			}
			score[i][t] = best + m.emitScore(feats[i], t)
			back[i][t] = bestP
		}
	}
	// Trace back from the best final tag.
	bestT, bestS := 0, score[n-1][0]
	for t := 1; t < NumTags; t++ {
		if score[n-1][t] > bestS {
			bestT, bestS = t, score[n-1][t]
		}
	}
	tags := make([]int, n)
	tags[n-1] = bestT
	for i := n - 1; i > 0; i-- {
		tags[i-1] = back[i][tags[i]]
	}
	return tags
}

// TrainConfig parameterizes structured-perceptron training.
type TrainConfig struct {
	Epochs int
	Seed   int64
	Dim    int
}

// Train fits a structured perceptron with weight averaging. Each update adds
// the gold feature vector and subtracts the predicted one, for both emission
// and transition weights.
func Train(insts []Instance, cfg TrainConfig) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("seq: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("seq: epochs must be positive, got %d", cfg.Epochs)
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("seq: empty training set")
	}
	for k, in := range insts {
		if len(in.Tags) != len(in.Feats) {
			return nil, fmt.Errorf("seq: instance %d has %d tags for %d tokens", k, len(in.Tags), len(in.Feats))
		}
		for _, t := range in.Tags {
			if t < 0 || t >= NumTags {
				return nil, fmt.Errorf("seq: instance %d has invalid tag %d", k, t)
			}
		}
	}
	m := NewModel(cfg.Dim)
	sum := NewModel(cfg.Dim) // running sum for averaging
	var steps float64 = 1
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	update := func(feats [][]int, tags []int, sign float64) {
		prev := NumTags
		for i, fs := range feats {
			t := tags[i]
			for _, f := range fs {
				if f >= 0 && f < cfg.Dim {
					m.Emit[t][f] += sign
					sum.Emit[t][f] += sign * steps
				}
			}
			m.Trans[prev][t] += sign
			sum.Trans[prev][t] += sign * steps
			prev = t
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			in := insts[idx]
			if in.Len() == 0 {
				continue
			}
			pred := m.Decode(in.Feats)
			same := true
			for i := range pred {
				if pred[i] != in.Tags[i] {
					same = false
					break
				}
			}
			if !same {
				update(in.Feats, in.Tags, +1)
				update(in.Feats, pred, -1)
			}
			steps++
		}
	}
	// Average: w_avg = w - sum/steps.
	for t := 0; t < NumTags; t++ {
		for f := 0; f < cfg.Dim; f++ {
			m.Emit[t][f] -= sum.Emit[t][f] / steps
		}
	}
	for p := 0; p <= NumTags; p++ {
		for t := 0; t < NumTags; t++ {
			m.Trans[p][t] -= sum.Trans[p][t] / steps
		}
	}
	return m, nil
}

// Span is a half-open token range [Start, End) tagged as a mention.
type Span struct {
	Start, End int
}

// SpansFromTags converts a BIO tag sequence to mention spans. An I without a
// preceding B or I is treated as B (standard lenient decoding).
func SpansFromTags(tags []int) []Span {
	var out []Span
	start := -1
	for i, t := range tags {
		switch t {
		case TagB:
			if start >= 0 {
				out = append(out, Span{start, i})
			}
			start = i
		case TagI:
			if start < 0 {
				start = i
			}
		default:
			if start >= 0 {
				out = append(out, Span{start, i})
				start = -1
			}
		}
	}
	if start >= 0 {
		out = append(out, Span{start, len(tags)})
	}
	return out
}

// TagsFromSpans converts mention spans back to a BIO sequence of length n.
// Overlapping spans are a caller bug and produce an error.
func TagsFromSpans(spans []Span, n int) ([]int, error) {
	tags := make([]int, n)
	for _, s := range spans {
		if s.Start < 0 || s.End > n || s.Start >= s.End {
			return nil, fmt.Errorf("seq: invalid span [%d,%d) for length %d", s.Start, s.End, n)
		}
		for i := s.Start; i < s.End; i++ {
			if tags[i] != TagO {
				return nil, fmt.Errorf("seq: overlapping span at token %d", i)
			}
			if i == s.Start {
				tags[i] = TagB
			} else {
				tags[i] = TagI
			}
		}
	}
	return tags, nil
}

// SpanF1 computes exact-match span precision/recall/F1 over a corpus:
// gold[i] and pred[i] are the spans of sentence i.
func SpanF1(gold, pred [][]Span) (precision, recall, f1 float64, err error) {
	if len(gold) != len(pred) {
		return 0, 0, 0, fmt.Errorf("seq: %d gold sentences vs %d predicted", len(gold), len(pred))
	}
	var tp, fp, fn int
	for i := range gold {
		gset := make(map[Span]bool, len(gold[i]))
		for _, s := range gold[i] {
			gset[s] = true
		}
		matched := make(map[Span]bool)
		for _, s := range pred[i] {
			if gset[s] && !matched[s] {
				tp++
				matched[s] = true
			} else {
				fp++
			}
		}
		fn += len(gold[i]) - len(matched)
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1, nil
}

// FeatureDict maps feature strings to dense indices for the sequence model;
// a thin, frozen-able dictionary mirroring data.Dictionary but kept local so
// seq has no dependency on the tabular layer.
type FeatureDict struct {
	index  map[string]int
	frozen bool
}

// NewFeatureDict returns an empty dictionary.
func NewFeatureDict() *FeatureDict { return &FeatureDict{index: make(map[string]int)} }

// Add returns the index for name, allocating unless frozen (then -1).
func (d *FeatureDict) Add(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	if d.frozen {
		return -1
	}
	i := len(d.index)
	d.index[name] = i
	return i
}

// Freeze stops growth.
func (d *FeatureDict) Freeze() { d.frozen = true }

// Len returns the number of features.
func (d *FeatureDict) Len() int { return len(d.index) }

// Map converts feature strings to indices, dropping unseen-when-frozen.
func (d *FeatureDict) Map(names []string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		if i := d.Add(n); i >= 0 {
			out = append(out, i)
		}
	}
	return out
}
