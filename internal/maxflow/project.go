package maxflow

import "fmt"

// ProjectSelection solves the PROJECT SELECTION PROBLEM (a.k.a. maximum-
// weight closure): given projects with profits (possibly negative) and
// prerequisite constraints "selecting i requires selecting j", choose a
// prerequisite-closed subset maximizing total profit.
//
// The classic reduction (Kleinberg & Tardos, Algorithm Design §7.11) builds
// a flow network with source s and sink t: s->i with capacity profit(i) for
// profitable projects, i->t with capacity -profit(i) for costly ones, and
// i->j with infinite capacity for each prerequisite (i requires j). The
// source side of a minimum cut is an optimal selection, and
// maxProfit = sum(positive profits) - minCut.
type ProjectSelection struct {
	profits []int64
	prereqs [][2]int // [i, j]: i requires j
	forced  []int    // projects that must be selected regardless of profit
}

// NewProjectSelection creates an instance with n projects, all profit 0.
func NewProjectSelection(n int) *ProjectSelection {
	return &ProjectSelection{profits: make([]int64, n)}
}

// SetProfit assigns project i's profit (negative = cost).
func (ps *ProjectSelection) SetProfit(i int, profit int64) {
	ps.profits[i] = profit
}

// Require records that selecting i requires selecting j.
func (ps *ProjectSelection) Require(i, j int) {
	if i == j {
		return
	}
	ps.prereqs = append(ps.prereqs, [2]int{i, j})
}

// Force marks project i as mandatory: every feasible selection contains it.
// (Implemented as an infinite-capacity source edge.)
func (ps *ProjectSelection) Force(i int) {
	ps.forced = append(ps.forced, i)
}

// Solve returns the selected set (closed under prerequisites) and the total
// profit of that set. Complexity is that of one max-flow computation,
// O(V^2 E) worst case for Dinic, far better in practice on these sparse DAGs.
func (ps *ProjectSelection) Solve() (selected []bool, profit int64, err error) {
	n := len(ps.profits)
	g := NewSized(n + 2)
	s, t := n, n+1
	for i, p := range ps.profits {
		if p > 0 {
			g.AddEdge(s, i, p)
		} else if p < 0 {
			g.AddEdge(i, t, -p)
		}
	}
	for _, f := range ps.forced {
		g.AddEdge(s, f, Inf)
	}
	for _, pq := range ps.prereqs {
		g.AddEdge(pq[0], pq[1], Inf)
	}
	g.MaxFlow(s, t)
	side := g.MinCutSourceSide(s)
	selected = side[:n]

	// Sanity-check closure: if a selected project's prerequisite is
	// unselected, the cut crossed an Inf edge, meaning the instance was
	// infeasible (e.g. a forced project requiring an impossible one).
	for _, pq := range ps.prereqs {
		if selected[pq[0]] && !selected[pq[1]] {
			return nil, 0, fmt.Errorf("maxflow: infeasible project selection (cut crosses prerequisite %d->%d)", pq[0], pq[1])
		}
	}
	for i := 0; i < n; i++ {
		if selected[i] {
			profit += ps.profits[i]
		}
	}
	return selected, profit, nil
}
