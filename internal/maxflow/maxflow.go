// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities, plus min-cut extraction. It is the algorithmic engine behind
// HELIX's recomputation optimizer: the paper proves the recomputation
// problem PTIME-reducible to the PROJECT SELECTION PROBLEM, a classic
// min-cut application (Kleinberg & Tardos §7.11), solved here exactly.
package maxflow

import "fmt"

// Inf is a capacity treated as unbounded. It is large enough that no
// realistic sum of finite costs reaches it, yet small enough that summing a
// handful of Inf capacities cannot overflow int64.
const Inf int64 = 1 << 50

type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in adj[to]
}

// Graph is a flow network under construction. Nodes are dense ints; callers
// allocate them with AddNode or size the graph up front with NewSized.
type Graph struct {
	adj [][]edge
}

// New returns an empty flow network.
func New() *Graph { return &Graph{} }

// NewSized returns a network with n pre-allocated nodes (0..n-1).
func NewSized(n int) *Graph { return &Graph{adj: make([][]edge, n)} }

// AddNode allocates a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge adds a directed edge u->v with the given capacity (and an implicit
// zero-capacity reverse edge). Negative capacities are a caller bug.
func (g *Graph) AddEdge(u, v int, cap int64) {
	if cap < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d on edge %d->%d", cap, u, v))
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		panic(fmt.Sprintf("maxflow: edge %d->%d out of range (n=%d)", u, v, len(g.adj)))
	}
	g.adj[u] = append(g.adj[u], edge{to: v, cap: cap, rev: len(g.adj[v])})
	g.adj[v] = append(g.adj[v], edge{to: u, cap: 0, rev: len(g.adj[u]) - 1})
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm, mutating the
// residual network in place. Calling it twice continues from the previous
// residual state, so callers wanting a fresh run must rebuild the graph.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, len(g.adj))
	iter := make([]int, len(g.adj))
	for g.bfs(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// bfs layers the residual graph; returns whether t is reachable.
func (g *Graph) bfs(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	queue := make([]int, 0, len(g.adj))
	level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > 0 && level[e.to] < 0 {
				level[e.to] = level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return level[t] >= 0
}

// dfs sends blocking flow along level-increasing residual edges.
func (g *Graph) dfs(u, t int, f int64, level, iter []int) int64 {
	if u == t {
		return f
	}
	for ; iter[u] < len(g.adj[u]); iter[u]++ {
		e := &g.adj[u][iter[u]]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		d := f
		if e.cap < d {
			d = e.cap
		}
		got := g.dfs(e.to, t, d, level, iter)
		if got > 0 {
			e.cap -= got
			g.adj[e.to][e.rev].cap += got
			return got
		}
	}
	return 0
}

// MinCutSourceSide returns, after MaxFlow has run, the set of nodes
// reachable from s in the residual network — the source side of a minimum
// cut.
func (g *Graph) MinCutSourceSide(s int) []bool {
	side := make([]bool, len(g.adj))
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}
