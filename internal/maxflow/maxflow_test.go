package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowSimplePath(t *testing.T) {
	g := NewSized(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	g := NewSized(4)
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 6)
	g.AddEdge(1, 3, 5)
	g.AddEdge(2, 3, 2)
	if got := g.MaxFlow(0, 3); got != 6 {
		t.Errorf("flow = %d, want 6", got)
	}
}

// Classic CLRS example network.
func TestMaxFlowCLRS(t *testing.T) {
	g := NewSized(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewSized(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestMaxFlowSameSourceSink(t *testing.T) {
	g := NewSized(2)
	g.AddEdge(0, 1, 10)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Errorf("flow s==t = %d, want 0", got)
	}
}

func TestMinCutSourceSide(t *testing.T) {
	// Bottleneck edge 1->2: cut must separate {0,1} from {2,3}.
	g := NewSized(4)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 100)
	if got := g.MaxFlow(0, 3); got != 1 {
		t.Fatalf("flow = %d, want 1", got)
	}
	side := g.MinCutSourceSide(0)
	want := []bool{true, true, false, false}
	for i := range want {
		if side[i] != want[i] {
			t.Errorf("side[%d] = %v, want %v", i, side[i], want[i])
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewSized(2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("negative cap", func() { g.AddEdge(0, 1, -1) })
	mustPanic("out of range", func() { g.AddEdge(0, 5, 1) })
}

// bruteMinCut enumerates all 2^n node partitions to find the minimum s-t cut
// value on a small capacity matrix.
func bruteMinCut(n int, capMat [][]int64, s, t int) int64 {
	best := int64(1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var cut int64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if mask&(1<<u) != 0 && mask&(1<<v) == 0 {
					cut += capMat[u][v]
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// Property: max-flow equals brute-force min-cut on random small graphs
// (max-flow min-cut theorem as an executable oracle).
func TestQuickMaxFlowEqualsMinCut(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6) // up to 7 nodes: 2^7 partitions
		capMat := make([][]int64, n)
		for i := range capMat {
			capMat[i] = make([]int64, n)
		}
		g := NewSized(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && r.Float64() < 0.4 {
					c := int64(r.Intn(20))
					capMat[u][v] += c
					g.AddEdge(u, v, c)
				}
			}
		}
		s, tt := 0, n-1
		return g.MaxFlow(s, tt) == bruteMinCut(n, capMat, s, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestProjectSelectionTextbook(t *testing.T) {
	// Project 0 profits 10 but requires 1 (cost 5) and 2 (cost 3).
	// Selecting all three yields 2 > 0, so all are selected.
	ps := NewProjectSelection(3)
	ps.SetProfit(0, 10)
	ps.SetProfit(1, -5)
	ps.SetProfit(2, -3)
	ps.Require(0, 1)
	ps.Require(0, 2)
	sel, profit, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if profit != 2 {
		t.Errorf("profit = %d, want 2", profit)
	}
	for i, want := range []bool{true, true, true} {
		if sel[i] != want {
			t.Errorf("sel[%d] = %v, want %v", i, sel[i], want)
		}
	}
}

func TestProjectSelectionUnprofitable(t *testing.T) {
	// Prerequisite too expensive: select nothing.
	ps := NewProjectSelection(2)
	ps.SetProfit(0, 4)
	ps.SetProfit(1, -9)
	ps.Require(0, 1)
	sel, profit, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if profit != 0 || sel[0] || sel[1] {
		t.Errorf("sel=%v profit=%d, want none selected", sel, profit)
	}
}

func TestProjectSelectionForced(t *testing.T) {
	// Project 1 costs 9 but is forced; its prerequisite chain must come too.
	ps := NewProjectSelection(2)
	ps.SetProfit(0, -2)
	ps.SetProfit(1, -9)
	ps.Require(1, 0)
	ps.Force(1)
	sel, profit, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sel[0] || !sel[1] {
		t.Errorf("forced selection incomplete: %v", sel)
	}
	if profit != -11 {
		t.Errorf("profit = %d, want -11", profit)
	}
}

func TestProjectSelectionSelfRequireIgnored(t *testing.T) {
	ps := NewProjectSelection(1)
	ps.SetProfit(0, 5)
	ps.Require(0, 0)
	sel, profit, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sel[0] || profit != 5 {
		t.Errorf("sel=%v profit=%d", sel, profit)
	}
}

// bruteProjectSelection enumerates all subsets.
func bruteProjectSelection(profits []int64, prereqs [][2]int, forced []int) int64 {
	n := len(profits)
	best := int64(-1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, f := range forced {
			if mask&(1<<f) == 0 {
				ok = false
				break
			}
		}
		for _, pq := range prereqs {
			if mask&(1<<pq[0]) != 0 && mask&(1<<pq[1]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var p int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p += profits[i]
			}
		}
		if p > best {
			best = p
		}
	}
	return best
}

// Property: the min-cut solver matches exhaustive search on random
// project-selection instances.
func TestQuickProjectSelectionOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		ps := NewProjectSelection(n)
		profits := make([]int64, n)
		for i := range profits {
			profits[i] = int64(r.Intn(41) - 20)
			ps.SetProfit(i, profits[i])
		}
		var prereqs [][2]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.15 {
					// Only i<j prerequisites to keep instances feasible
					// (acyclic requirement graph).
					if i < j {
						ps.Require(i, j)
						prereqs = append(prereqs, [2]int{i, j})
					}
				}
			}
		}
		var forced []int
		if r.Float64() < 0.3 {
			f0 := r.Intn(n)
			ps.Force(f0)
			forced = append(forced, f0)
		}
		sel, profit, err := ps.Solve()
		if err != nil {
			return false
		}
		// Verify closure and profit consistency.
		var check int64
		for i, s := range sel {
			if s {
				check += profits[i]
			}
		}
		if check != profit {
			return false
		}
		return profit == bruteProjectSelection(profits, prereqs, forced)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
