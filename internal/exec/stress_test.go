package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// layeredDAG builds levels×width layers where every node consumes the whole
// previous layer — the maximum-interleaving shape for refcounted release
// (every completion decrements width counters) racing the async
// materialization writer (every completion also submits a write job).
func layeredDAG(levels, width int, keyTag string) (*dag.Graph, []Task) {
	g := dag.New()
	var prev []dag.NodeID
	var tasks []Task
	for l := 0; l < levels; l++ {
		var cur []dag.NodeID
		for w := 0; w < width; w++ {
			id := g.MustAddNode(fmt.Sprintf("n%d_%d", l, w), "op")
			for _, p := range prev {
				g.MustAddEdge(p, id)
			}
			cur = append(cur, id)
			base := l*width + w
			tasks = append(tasks, Task{
				Key: fmt.Sprintf("k-%s-%d", keyTag, base),
				Run: func(_ context.Context, in []any) (any, error) {
					sum := base
					for _, v := range in {
						sum += v.(int)
					}
					return sum, nil
				},
			})
		}
		prev = cur
	}
	for _, id := range prev {
		g.Node(id).Output = true
	}
	return g, tasks
}

// dispatchModes are both dataflow dispatchers; every stress scenario runs
// under each so the steal/finish/release interleavings of the work-stealing
// dispatcher get the same -race coverage as the global-heap baseline.
func dispatchModes() []DispatchMode {
	return []DispatchMode{WorkSteal, GlobalHeap}
}

// TestReleaseWriterStress hammers the async materialization writer
// interleaved with refcounted release: fresh keys every iteration keep the
// writer pool busy while completions concurrently drop the very values the
// writer captured. Run under -race in CI, this is the detector's fodder
// for the value-ownership contract (jobs own a reference; release never
// invalidates a pending write).
func TestReleaseWriterStress(t *testing.T) {
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			st, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			var gauge store.Gauge
			for iter := 0; iter < 15; iter++ {
				g, tasks := layeredDAG(4, 6, fmt.Sprintf("ok-%s-%d", mode, iter))
				e := &Engine{
					Workers:              8,
					MatWriters:           3,
					Dispatch:             mode,
					Store:                st,
					Policy:               opt.MaterializeAll{},
					ReleaseIntermediates: true,
					LiveBytes:            &gauge,
				}
				res, err := e.Execute(g, tasks, allCompute(g.Len()))
				if err != nil {
					t.Fatal(err)
				}
				// Only the output layer survives release.
				if want := 6; len(res.Values) != want {
					t.Fatalf("iter %d: %d values retained, want %d outputs", iter, len(res.Values), want)
				}
				// Every computed value must have reached the store despite release.
				for i := range tasks {
					if !st.Has(tasks[i].Key) {
						t.Fatalf("iter %d: key %s missing: release raced the writer", iter, tasks[i].Key)
					}
				}
				if gauge.Live() != 0 {
					t.Fatalf("iter %d: gauge live = %d, want 0 after settlement", iter, gauge.Live())
				}
			}
		})
	}
}

// TestReleaseWriterErrorCancellationStress drives the error path of the
// same interleaving: a mid-graph node fails while siblings are completing,
// submitting writes and releasing inputs. Execute must cancel undispatched
// work, flush the writer — landing every already-submitted write — settle
// the gauge, and still report the failure.
func TestReleaseWriterErrorCancellationStress(t *testing.T) {
	boom := errors.New("boom")
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			var gauge store.Gauge
			for iter := 0; iter < 15; iter++ {
				st, err := store.Open(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				g, tasks := layeredDAG(4, 6, fmt.Sprintf("err-%s-%d", mode, iter))
				// Fail one second-layer node; stagger it slightly so first-layer
				// writes and releases are mid-flight when the cancellation lands.
				victim := g.Lookup("n1_3")
				tasks[victim] = Task{Key: tasks[victim].Key, Run: func(ctx context.Context, in []any) (any, error) {
					time.Sleep(time.Duration(iter%3) * 100 * time.Microsecond)
					return nil, boom
				}}
				e := &Engine{
					Workers:              8,
					MatWriters:           3,
					Dispatch:             mode,
					Store:                st,
					Policy:               opt.MaterializeAll{},
					ReleaseIntermediates: true,
					LiveBytes:            &gauge,
				}
				res, err := e.Execute(g, tasks, allCompute(g.Len()))
				if !errors.Is(err, boom) {
					t.Fatalf("iter %d: err = %v, want boom", iter, err)
				}
				// Whatever completed must be fully accounted: a value present in
				// the result and marked materialized must really be in the store.
				for id, nr := range res.Nodes {
					if nr.Materialized && !st.Has(tasks[id].Key) {
						t.Fatalf("iter %d: node %d marked materialized but not stored", iter, id)
					}
				}
				if gauge.Live() != 0 {
					t.Fatalf("iter %d: gauge live = %d, want 0 after error settlement", iter, gauge.Live())
				}
			}
		})
	}
}

// TestReweightStealStress forces a re-prioritization pass on effectively
// every completion (1-completion interval, 1ns divergence floor) while
// steals, direct-run chaining, overflow handoffs, refcounted release and
// the writer pipeline are all in flight — the -race coverage of the
// epoch-fenced re-sort. Values are checked against a single-worker
// reference run, and the run must actually have re-prioritized.
func TestReweightStealStress(t *testing.T) {
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 8; iter++ {
				g, tasks := layeredDAG(5, 8, fmt.Sprintf("rw-%s-%d", mode, iter))
				// Uneven durations keep workers out of lockstep so passes
				// overlap pops, pushes, steals and parks instead of landing
				// in quiet gaps.
				for i := range tasks {
					run := tasks[i].Run
					delay := time.Duration((i*13+iter)%5) * 40 * time.Microsecond
					tasks[i] = Task{Key: tasks[i].Key, Run: func(ctx context.Context, in []any) (any, error) {
						time.Sleep(delay)
						return run(ctx, in)
					}}
				}
				ref := &Engine{Workers: 1, Reweight: ReweightOff}
				want, err := ref.Execute(g, tasks, allCompute(g.Len()))
				if err != nil {
					t.Fatal(err)
				}
				st, err := store.Open(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				e := &Engine{
					Workers:               8,
					MatWriters:            3,
					Dispatch:              mode,
					Store:                 st,
					Policy:                opt.MaterializeAll{},
					ReleaseIntermediates:  true,
					Reweight:              Adaptive,
					ReweightInterval:      1,
					ReweightMinDivergence: time.Nanosecond,
				}
				res, err := e.Execute(g, tasks, allCompute(g.Len()))
				if err != nil {
					t.Fatal(err)
				}
				if res.Reweights == 0 {
					t.Fatalf("iter %d: no re-prioritization passes despite forced trigger", iter)
				}
				for id, v := range res.Values {
					if v != want.Values[id] {
						t.Fatalf("iter %d: node %d = %v, reference %v", iter, id, v, want.Values[id])
					}
				}
				for i := range tasks {
					if !st.Has(tasks[i].Key) {
						t.Fatalf("iter %d: key %s missing under reweight stress", iter, tasks[i].Key)
					}
				}
			}
		})
	}
}

// TestReweightErrorCancellationStress drives forced re-prioritization into
// the error path: a mid-graph node fails while passes, steals and releases
// are mid-flight. Execute must still cancel undispatched work, flush the
// writer, and report the failure — with no deadlock between the pass's
// queue sweep and the cancellation broadcast.
func TestReweightErrorCancellationStress(t *testing.T) {
	boom := errors.New("boom")
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 8; iter++ {
				g, tasks := layeredDAG(4, 6, fmt.Sprintf("rwerr-%s-%d", mode, iter))
				victim := g.Lookup("n1_3")
				tasks[victim] = Task{Key: tasks[victim].Key, Run: func(ctx context.Context, in []any) (any, error) {
					time.Sleep(time.Duration(iter%3) * 100 * time.Microsecond)
					return nil, boom
				}}
				e := &Engine{
					Workers:               8,
					Dispatch:              mode,
					ReleaseIntermediates:  true,
					Reweight:              Adaptive,
					ReweightInterval:      1,
					ReweightMinDivergence: time.Nanosecond,
				}
				if _, err := e.Execute(g, tasks, allCompute(g.Len())); !errors.Is(err, boom) {
					t.Fatalf("iter %d: err = %v, want boom", iter, err)
				}
			}
		})
	}
}

// TestSpillPromoteReleaseStress hammers the tiered store under everything
// at once: a hot tier small enough that almost every materialization
// spills and almost every load hits cold and promotes (demoting hot
// entries back out), concurrent with refcounted release, forced
// re-prioritization passes, steals/chaining and the async writer pipeline.
// Values must match a single-worker reference, every materialized key must
// land in exactly one tier, and the hot tier must never exceed its budget.
func TestSpillPromoteReleaseStress(t *testing.T) {
	const hotBudget = 150 // a couple of encoded ints; everything else spills
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 8; iter++ {
				g, tasks := layeredDAG(5, 8, fmt.Sprintf("spill-%s-%d", mode, iter))
				for i := range tasks {
					run := tasks[i].Run
					delay := time.Duration((i*11+iter)%5) * 40 * time.Microsecond
					tasks[i] = Task{Key: tasks[i].Key, Run: func(ctx context.Context, in []any) (any, error) {
						time.Sleep(delay)
						return run(ctx, in)
					}}
				}
				ref := &Engine{Workers: 1}
				want, err := ref.Execute(g, tasks, allCompute(g.Len()))
				if err != nil {
					t.Fatal(err)
				}
				hot, err := store.Open(t.TempDir(), hotBudget)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := store.OpenSpill(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				// Pre-populate every third key through the tiered admission
				// path and plan those nodes as loads, so cold hits and their
				// promotions and demotions run concurrently with computes,
				// spills, releases and reweight passes.
				tiers := store.NewTiered(hot, cold)
				plan := allCompute(g.Len())
				for i := 0; i < g.Len(); i += 3 {
					raw, err := store.Encode(want.Values[dag.NodeID(i)])
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tiers.PutBytes(tasks[i].Key, raw); err != nil {
						t.Fatal(err)
					}
					plan.States[i] = opt.Load
				}
				var gauge store.Gauge
				e := &Engine{
					Workers:               8,
					MatWriters:            3,
					Dispatch:              mode,
					Store:                 hot,
					Spill:                 cold,
					Policy:                opt.MaterializeAll{},
					ReleaseIntermediates:  true,
					Reweight:              Adaptive,
					ReweightInterval:      1,
					ReweightMinDivergence: time.Nanosecond,
					LiveBytes:             &gauge,
				}
				res, err := e.Execute(g, tasks, plan)
				if err != nil {
					t.Fatal(err)
				}
				for id, v := range res.Values {
					if v != want.Values[id] {
						t.Fatalf("iter %d: node %d = %v, reference %v", iter, id, v, want.Values[id])
					}
				}
				for i := range tasks {
					inHot, inCold := hot.Has(tasks[i].Key), cold.Has(tasks[i].Key)
					if !inHot && !inCold {
						t.Fatalf("iter %d: key %s in no tier", iter, tasks[i].Key)
					}
					if inHot && inCold {
						t.Fatalf("iter %d: key %s in both tiers", iter, tasks[i].Key)
					}
				}
				if hot.Used() > hotBudget {
					t.Fatalf("iter %d: hot tier used %d over its %d budget", iter, hot.Used(), hotBudget)
				}
				if res.Spills == 0 {
					t.Fatalf("iter %d: no spills despite the %d-byte hot tier", iter, hotBudget)
				}
				if gauge.Live() != 0 {
					t.Fatalf("iter %d: gauge live = %d, want 0 after settlement", iter, gauge.Live())
				}
			}
		})
	}
}

// TestSpillErrorCancellationStress drives the tiered store into the error
// path: a mid-graph node fails while spills, promotions and releases are
// mid-flight. Execute must cancel undispatched work, flush the writer —
// landing every already-submitted write in some tier — and keep the hot
// tier inside its budget.
func TestSpillErrorCancellationStress(t *testing.T) {
	boom := errors.New("boom")
	const hotBudget = 150
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 8; iter++ {
				g, tasks := layeredDAG(4, 6, fmt.Sprintf("spillerr-%s-%d", mode, iter))
				victim := g.Lookup("n1_3")
				tasks[victim] = Task{Key: tasks[victim].Key, Run: func(ctx context.Context, in []any) (any, error) {
					time.Sleep(time.Duration(iter%3) * 100 * time.Microsecond)
					return nil, boom
				}}
				hot, err := store.Open(t.TempDir(), hotBudget)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := store.OpenSpill(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				e := &Engine{
					Workers:              8,
					MatWriters:           3,
					Dispatch:             mode,
					Store:                hot,
					Spill:                cold,
					Policy:               opt.MaterializeAll{},
					ReleaseIntermediates: true,
				}
				res, err := e.Execute(g, tasks, allCompute(g.Len()))
				if !errors.Is(err, boom) {
					t.Fatalf("iter %d: err = %v, want boom", iter, err)
				}
				for id, nr := range res.Nodes {
					if nr.Materialized && !hot.Has(tasks[id].Key) && !cold.Has(tasks[id].Key) {
						t.Fatalf("iter %d: node %d marked materialized but in no tier", iter, id)
					}
				}
				if hot.Used() > hotBudget {
					t.Fatalf("iter %d: hot tier used %d over its %d budget", iter, hot.Used(), hotBudget)
				}
			}
		})
	}
}

// TestStealFinishReleaseStress is the work-stealing interleaving stress:
// many workers over a wide-and-deep layered graph with uneven task
// durations, so steals, overflow handoffs, chases, refcounted release and
// the writer pipeline all overlap. Values are checked against a
// single-worker reference run; under -race this is the detector's coverage
// of the deque/steal/park protocol.
func TestStealFinishReleaseStress(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		g, tasks := layeredDAG(5, 8, fmt.Sprintf("steal%d", iter))
		// Uneven durations shift which worker is ahead, forcing steal and
		// handoff traffic instead of a lockstep drain.
		for i := range tasks {
			run := tasks[i].Run
			delay := time.Duration((i*7+iter)%5) * 50 * time.Microsecond
			tasks[i] = Task{Key: tasks[i].Key, Run: func(ctx context.Context, in []any) (any, error) {
				time.Sleep(delay)
				return run(ctx, in)
			}}
		}
		ref := &Engine{Workers: 1}
		want, err := ref.Execute(g, tasks, allCompute(g.Len()))
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Workers: 8, ReleaseIntermediates: true}
		res, err := e.Execute(g, tasks, allCompute(g.Len()))
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range res.Values {
			if v != want.Values[id] {
				t.Fatalf("iter %d: node %d = %v, reference %v", iter, id, v, want.Values[id])
			}
		}
	}
}
