package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
)

// withTransients wraps every third task with a counted transient failure
// (two injected faults each), fresh counters per call. exec cannot import
// the bench harness (bench imports exec), so this is the stress tests' own
// minimal FaultyOp.
func withTransients(tasks []Task) ([]Task, int) {
	out := make([]Task, len(tasks))
	injected := 0
	for i, tk := range tasks {
		out[i] = tk
		if i%3 != 0 {
			continue
		}
		injected += 2
		var remaining atomic.Int32
		remaining.Store(2)
		inner := tk.Run
		out[i].Run = func(ctx context.Context, in []any) (any, error) {
			if remaining.Add(-1) >= 0 {
				return nil, fmt.Errorf("stress blip: %w", ErrTransient)
			}
			return inner(ctx, in)
		}
	}
	return out, injected
}

// TestRetryStealReweightReleaseStress runs retried transient faults
// concurrently with everything else the dataflow scheduler does between
// completions — steal-half victims, adaptive reweight passes forced every
// completion, refcounted release — under both dispatchers. Run with -race
// in CI; correctness here is that every run completes with the clean
// reference's output values and accounts for every injected fault.
func TestRetryStealReweightReleaseStress(t *testing.T) {
	refG, refTasks := layeredDAG(4, 6, "fault-ref")
	ref := &Engine{Workers: 1}
	refRes, err := ref.Execute(refG, refTasks, allCompute(refG.Len()))
	if err != nil {
		t.Fatal(err)
	}
	wantOut := make(map[string]any)
	for id, v := range refRes.Values {
		if refG.Node(id).Output {
			wantOut[refG.Node(id).Name] = v
		}
	}
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 10; iter++ {
				g, tasks := layeredDAG(4, 6, fmt.Sprintf("fault-%s-%d", mode, iter))
				faulted, injected := withTransients(tasks)
				e := &Engine{
					Workers:               8,
					Dispatch:              mode,
					ReleaseIntermediates:  true,
					ReweightInterval:      1,
					ReweightMinDivergence: 1,
					Faults: FaultPolicy{
						MaxAttempts: 4,
						BaseBackoff: time.Microsecond,
						MaxBackoff:  20 * time.Microsecond,
						JitterSeed:  int64(iter),
					},
				}
				res, err := e.Execute(g, faulted, allCompute(g.Len()))
				if err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				if res.Retries != int64(injected) {
					t.Fatalf("iter %d: Retries = %d, want %d injected", iter, res.Retries, injected)
				}
				for id, v := range res.Values {
					if !g.Node(id).Output {
						t.Fatalf("iter %d: non-output value survived release", iter)
					}
					if want := wantOut[g.Node(id).Name]; !reflect.DeepEqual(v, want) {
						t.Fatalf("iter %d: %s = %v, want %v", iter, g.Node(id).Name, v, want)
					}
				}
				if len(res.Values) != len(wantOut) {
					t.Fatalf("iter %d: %d outputs, want %d", iter, len(res.Values), len(wantOut))
				}
			}
		})
	}
}

// TestRetryErrorCancelStress races in-flight retries (with their backoff
// sleeps) against first-error cancellation from a fatal sibling: the run
// must report the fatal cause — never a collateral context.Canceled — and
// cancelled retry loops must not keep retrying after shutdown.
func TestRetryErrorCancelStress(t *testing.T) {
	boom := errors.New("fatal sibling")
	for _, mode := range dispatchModes() {
		t.Run(mode.String(), func(t *testing.T) {
			for iter := 0; iter < 10; iter++ {
				g, tasks := layeredDAG(3, 8, fmt.Sprintf("cancel-%s-%d", mode, iter))
				// Middle-layer nodes retry forever (transient, ctx-honoring
				// backoff); one of them is fatal instead.
				for w := 0; w < 8; w++ {
					id := dag.NodeID(8 + w)
					if w == 3 {
						tasks[id].Run = func(context.Context, []any) (any, error) {
							return nil, boom
						}
						continue
					}
					tasks[id].Run = func(ctx context.Context, in []any) (any, error) {
						return nil, fmt.Errorf("forever flaky: %w", ErrTransient)
					}
				}
				e := &Engine{
					Workers:  8,
					Dispatch: mode,
					Faults: FaultPolicy{
						MaxAttempts: 1 << 20, // effectively unbounded: only cancellation ends the loop
						BaseBackoff: 50 * time.Microsecond,
						MaxBackoff:  time.Millisecond,
					},
				}
				start := time.Now()
				_, err := e.Execute(g, tasks, allCompute(g.Len()))
				if !errors.Is(err, boom) {
					t.Fatalf("iter %d: err = %v, want the fatal cause", iter, err)
				}
				if errors.Is(err, context.Canceled) {
					t.Fatalf("iter %d: collateral cancellation surfaced: %v", iter, err)
				}
				if wall := time.Since(start); wall > 5*time.Second {
					t.Fatalf("iter %d: run took %v; cancelled retry loops kept spinning", iter, wall)
				}
			}
		})
	}
}
