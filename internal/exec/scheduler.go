package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// coldSizeUnit is the per-consumer byte estimate the live-bytes gauge
// charges a compute node whose serialized size has never been measured:
// estimate = coldSizeUnit × (1 + out-degree), via dag.StructuralCosts. The
// magnitude is a placeholder — what matters is that cold nodes are not
// charged zero, so first-iteration peaks are honest and the release win is
// visible before any size has been learned.
const coldSizeUnit = 1024

// runCtx is the per-Execute state shared by both dataflow dispatchers (the
// work-stealing default and the GlobalHeap A/B baseline): the immutable run
// inputs, the shared result accounting, the live-bytes bookkeeping and the
// background materialization writer. Everything dispatch-specific (ready
// queues, counters, cancellation) lives in the dispatcher that owns it.
type runCtx struct {
	e     *Engine
	g     *dag.Graph
	tasks []Task
	plan  *opt.Plan
	res   *Result

	// ctx is the run's cancellation scope: derived from the caller's
	// context, cancelled by the first fatal node error so in-flight
	// operators that honor their ctx are interrupted instead of waited out.
	// The fault policy's per-attempt deadlines nest under it.
	ctx    context.Context
	cancel context.CancelFunc

	// stats is the run's fault accounting (retries, lineage recomputes),
	// shared with the recovery path; pins holds the planned-load pins
	// released as loads complete (nil without a spill tier).
	stats *faultStats
	pins  *pinSet

	// vals and published are the lock-free value plane of the dataflow
	// schedulers: each slot is written exactly once, by the worker that ran
	// the node, before the node's finish; readers (a node's consumers) are
	// dispatched only after that finish, so the dependency counters — an
	// atomic decrement the consumer's dispatch is ordered behind — carry
	// the happens-before edge and no lock is needed on the per-node happy
	// path. Release (the last consumer's finish) clears a slot under the
	// same ordering; the public Result.Values map is built once, single-
	// threaded, after the workers join.
	vals      []any
	published []bool

	// durs is the per-node load/compute duration in nanoseconds, written
	// atomically by the worker that ran the node. Unlike the value plane it
	// must be atomic, not merely ordered: the materialization writer's
	// ancestor-cost walk may read an ancestor's duration while that
	// ancestor is still running (a Load node cuts the dependency chain, so
	// a descendant's decision can overlap an ancestor's compute). The
	// public Result.Nodes[].Duration is filled in post-join.
	durs []atomic.Int64

	resMu sync.Mutex // guards writer-pipeline accounting on res.Nodes

	// liveSize records what each published value added to the engine's
	// live-bytes gauge, so release and the end-of-run settlement subtract
	// exactly that. Entries are written by the worker that ran the node
	// before its finish() and zeroed on release; the dispatcher's hand-off
	// of the node's children (mutex or atomic counter) orders those
	// accesses. Nil when the gauge is disabled.
	liveSize []int64

	// coldSizes is the structural fallback estimate for compute nodes with
	// no measured size (see coldSizeUnit). Nil when the gauge is disabled.
	coldSizes []int64

	writer *matWriter // nil when materialization is disabled

	// rw is the online re-prioritization state; nil when reweighting is
	// off, the ordering carries no weights (MinID), or the graph is empty.
	rw *reweighter
}

// executeDataflow runs the plan with dependency-counting scheduling: no
// level barriers, a node is dispatched the instant its last parent
// finishes, and completed values go to the background materialization
// pipeline (flushed before return, also on error). Ready nodes dispatch
// critical-path-first by default (Engine.Order selects MinID instead), so
// the run's long pole is never left waiting behind cheap siblings. Dispatch
// itself is work-stealing by default; Engine.Dispatch selects the
// single-global-heap baseline for A/B comparisons.
func (e *Engine) executeDataflow(ctx context.Context, g *dag.Graph, tasks []Task, plan *opt.Plan, res *Result, stats *faultStats, pins *pinSet) (*Result, error) {
	// Dependency counting never drains a cyclic graph; reject it up front
	// with the same diagnostic the topological sort produces. The order is
	// reused for the critical-path weights below.
	order, err := g.Topo()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	runnable := func(id dag.NodeID) bool { return plan.States[id] != opt.Prune }
	rc := &runCtx{
		e: e, g: g, tasks: tasks, plan: plan, res: res,
		ctx: rctx, cancel: cancel,
		stats: stats, pins: pins,
		vals:      make([]any, g.Len()),
		published: make([]bool, g.Len()),
		durs:      make([]atomic.Int64, g.Len()),
	}
	// One structural pass serves both cold-cost consumers: the unit costs
	// feed the critical-path weights, the coldSizeUnit-scaled copy feeds
	// the gauge. The error path is unreachable (the units are positive
	// constants).
	var structural []int64
	if e.Order == CriticalPath || e.LiveBytes != nil {
		structural, _ = g.StructuralCosts(1)
	}
	var weight []int64
	if e.Order == CriticalPath {
		var cost []int64
		weight, cost = e.pathWeights(g, tasks, plan, order, structural)
		if weight != nil && e.Reweight == Adaptive {
			rc.rw = newReweighter(rc, order, cost, weight)
		}
	}
	if e.LiveBytes != nil {
		rc.liveSize = make([]int64, g.Len())
		rc.coldSizes = make([]int64, g.Len())
		for i, s := range structural {
			rc.coldSizes[i] = coldSizeUnit * s
		}
	}
	// A compute node waits for every non-pruned parent. Load nodes read the
	// store, not their parents, so they are runnable immediately; a compute
	// node whose parents were all pruned is too, and fails input gathering
	// with the same missing-parent error the level-barrier executor gave.
	pending := g.Indegrees(runnable)
	var consumers []int
	if e.ReleaseIntermediates {
		consumers = g.ConsumerCounts(func(c dag.NodeID) bool { return plan.States[c] == opt.Compute })
	}
	remaining := 0
	for i := 0; i < g.Len(); i++ {
		id := dag.NodeID(i)
		if plan.States[id] == opt.Load {
			pending[i] = 0
		}
		if runnable(id) {
			remaining++
		}
	}
	ready := g.ReadySet(pending, runnable)
	if e.Policy != nil && e.Store != nil {
		rc.writer = newMatWriter(rc)
	}
	var errs []error
	if e.Dispatch == GlobalHeap {
		errs = runHeapDispatch(rc, weight, pending, consumers, remaining, ready)
	} else {
		errs = runWorkSteal(rc, weight, pending, consumers, remaining, ready)
	}
	if rc.writer != nil {
		rc.writer.flush()
	}
	// Materialize the public value map and per-node durations from the
	// lock-free planes: everything published and not released. Workers
	// have joined and the writer pipeline is flushed, so this is
	// single-threaded.
	for i, ok := range rc.published {
		if ok {
			res.Values[dag.NodeID(i)] = rc.vals[i]
		}
	}
	for i := range rc.durs {
		if d := rc.durs[i].Load(); d > 0 {
			res.Nodes[i].Duration = time.Duration(d)
		}
	}
	if rc.rw != nil {
		res.Reweights = rc.rw.passes.Load()
	}
	if e.LiveBytes != nil {
		// Values still retained (outputs, and everything else when release
		// is off) stop being execution-live once the run is over; settle
		// them so Live returns to its pre-run level while Peak keeps the
		// high-water mark.
		var rest int64
		for _, n := range rc.liveSize {
			rest += n
		}
		e.LiveBytes.Sub(rest)
	}
	res.Wall = time.Since(start)
	if len(errs) > 0 {
		return res, errors.Join(dropCollateralCancels(errs)...)
	}
	return res, nil
}

// heapDispatch is the GlobalHeap dispatcher: one shared ready heap, one
// mutex, one condition variable. Retained as the contention baseline the
// work-stealing dispatcher is benchmarked against.
type heapDispatch struct {
	*runCtx

	mu        sync.Mutex // guards the scheduling state below
	cond      *sync.Cond // signaled when ready grows, work completes, or on cancel
	ready     nodeHeap   // runnable nodes, highest priority first
	pending   []int      // per-node count of unfinished non-pruned parents
	consumers []int      // per-node count of compute children yet to run
	remaining int        // runnable nodes not yet finished
	cancelled bool       // set on first error; stops dispatching new work
	errs      []error    // every node error observed before shutdown
}

// runHeapDispatch drains the run with the single-heap dispatcher and
// returns every node error observed before shutdown.
func runHeapDispatch(rc *runCtx, weight []int64, pending, consumers []int, remaining int, ready []dag.NodeID) []error {
	d := &heapDispatch{runCtx: rc, pending: pending, consumers: consumers, remaining: remaining}
	d.cond = sync.NewCond(&d.mu)
	d.ready.weight = weight
	if rc.rw != nil {
		// Eager sweep of a pass: one heap, one lock. Queues also catch up
		// lazily through fix() on every locked access.
		rc.rw.resort = func() {
			d.mu.Lock()
			rc.rw.fix(&d.ready)
			d.mu.Unlock()
		}
	}
	for _, id := range ready {
		d.ready.push(id)
	}
	workers := rc.e.workers()
	if workers > remaining {
		workers = remaining
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.work()
		}()
	}
	wg.Wait()
	return d.errs
}

// work is one worker's loop: pull the highest-priority ready node, run it,
// publish completion, repeat until the slice drains or is cancelled.
func (d *heapDispatch) work() {
	for {
		id, ok := d.next()
		if !ok {
			return
		}
		err := d.runNode(id)
		d.finish(id, err)
	}
}

// next blocks until a node is runnable, the run is cancelled, or all
// runnable nodes have finished.
func (d *heapDispatch) next() (dag.NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled || d.remaining == 0 {
			return 0, false
		}
		if d.rw != nil {
			d.rw.fix(&d.ready)
		}
		if d.ready.Len() > 0 {
			return d.ready.pop(), true
		}
		d.cond.Wait()
	}
}

// finish publishes id's completion. On success it decrements each compute
// child's pending-parent counter, queues children that just became
// runnable, and — when ReleaseIntermediates is on — drops values whose last
// consumer has now run. On failure it records the error and cancels all
// not-yet-dispatched work; nodes already in flight complete and their
// errors, if any, are collected too.
func (d *heapDispatch) finish(id dag.NodeID, err error) {
	// Feed the re-prioritizer before taking the dispatch lock: a pass's
	// eager re-sort acquires d.mu itself.
	if err == nil && d.rw != nil {
		d.rw.observe(id, d.durs[id].Load())
		d.rw.maybePass()
	}
	var release []dag.NodeID
	if err != nil {
		// Interrupt in-flight operators before taking the dispatch lock:
		// they may be long-running, and nothing below waits on them.
		d.runCtx.cancel()
	}
	d.mu.Lock()
	d.remaining--
	if err != nil {
		d.errs = append(d.errs, err)
		d.cancelled = true
	} else {
		for _, c := range d.g.Children(id) {
			if d.plan.States[c] != opt.Compute {
				continue
			}
			d.pending[c]--
			if d.pending[c] == 0 {
				d.ready.push(c)
			}
		}
		if d.e.ReleaseIntermediates {
			release = d.releasable(id)
		}
	}
	d.mu.Unlock()
	d.cond.Broadcast()
	d.applyRelease(release)
}

// releasable decrements the reference counts id's completion settles and
// returns the non-output nodes whose values no remaining consumer needs.
// Callers hold d.mu. The background materialization writer captures values
// in its jobs, so releasing here never races a pending write.
func (d *heapDispatch) releasable(id dag.NodeID) []dag.NodeID {
	var out []dag.NodeID
	if d.plan.States[id] == opt.Compute {
		for _, p := range d.g.Parents(id) {
			if d.plan.States[p] == opt.Prune {
				continue
			}
			d.consumers[p]--
			if d.consumers[p] == 0 && !d.g.Node(p).Output {
				out = append(out, p)
			}
		}
	}
	if d.consumers[id] == 0 && !d.g.Node(id).Output {
		out = append(out, id)
	}
	return out
}

// applyRelease clears released value slots and settles their live-bytes
// charge. Each node appears in exactly one release list (the reference
// counts guarantee a single zero-crossing) and all of its consumers have
// finished, so the slot write is unobserved and needs no lock.
func (rc *runCtx) applyRelease(release []dag.NodeID) {
	if len(release) == 0 {
		return
	}
	for _, p := range release {
		rc.vals[p] = nil
		rc.published[p] = false
	}
	if rc.liveSize != nil {
		for _, p := range release {
			rc.e.LiveBytes.Sub(rc.liveSize[p])
			rc.liveSize[p] = 0
		}
	}
}

// runNode loads or computes one node. Computed values are published (to the
// node's lock-free slot) before the materialization hand-off, so consumers
// never wait on a write.
func (rc *runCtx) runNode(id dag.NodeID) error {
	e, g := rc.e, rc.g
	name := g.Node(id).Name
	if rc.rw != nil {
		// Out of every ready queue from here on: re-prioritization passes
		// stop touching this node's weight.
		rc.rw.markStarted(id)
	}
	nodeStart := time.Now()
	switch rc.plan.States[id] {
	case opt.Load:
		if e.Store == nil {
			return fmt.Errorf("exec: plan loads %s but engine has no store", name)
		}
		v, _, err := e.tiers().Get(rc.tasks[id].Key)
		recovered := false
		if err != nil {
			// A failed load — corrupt frame, read I/O error, vanished
			// entry — degrades to a lineage recompute, local to this
			// worker (see recomputer).
			rec := &recomputer{e: e, g: g, tasks: rc.tasks, plan: rc.plan, stats: rc.stats}
			if v, err = rec.recoverLoad(rc.ctx, id, err); err != nil {
				return fmt.Errorf("exec: load %s: %w", name, err)
			}
			recovered = true
		}
		rc.pins.release(id)
		rc.vals[id] = v
		rc.published[id] = true
		rc.durs[id].Store(time.Since(nodeStart).Nanoseconds())
		rc.noteLive(id)
		if recovered && rc.writer != nil {
			// Heal the store: the corrupt frame was deleted on detection,
			// so re-submitting the recovered value lets the policy
			// re-materialize it off the critical path.
			rc.writer.submit(id, name, rc.tasks[id].Key, v, time.Since(nodeStart), false)
		}
		return nil

	case opt.Compute:
		key := rc.tasks[id].Key
		role, served, ferr := e.joinFlight(rc.ctx, key, rc.stats)
		if ferr != nil {
			return fmt.Errorf("exec: compute %s: %w", name, ferr)
		}
		if role == flightServed {
			rc.vals[id] = served
			rc.published[id] = true
			rc.durs[id].Store(time.Since(nodeStart).Nanoseconds())
			rc.noteLive(id)
			rc.resMu.Lock()
			rc.res.Nodes[id].InflightHit = true
			rc.resMu.Unlock()
			return nil
		}
		lead := role == flightLead
		inputs, err := rc.gather(id)
		if err != nil {
			e.finishFlight(lead, key, nil, err)
			return err
		}
		if rc.tasks[id].Run == nil {
			e.finishFlight(lead, key, nil, fmt.Errorf("exec: node %s has no Run function", name))
			return fmt.Errorf("exec: node %s has no Run function", name)
		}
		v, err := e.runTask(rc.ctx, id, rc.tasks[id].Run, inputs, rc.stats)
		if err != nil {
			e.finishFlight(lead, key, nil, err)
			return fmt.Errorf("exec: compute %s: %w", name, err)
		}
		computeDur := time.Since(nodeStart)
		if e.History != nil {
			e.History.ObserveCompute(name, computeDur, 0)
		}
		rc.vals[id] = v
		rc.published[id] = true
		rc.durs[id].Store(computeDur.Nanoseconds())
		rc.noteLive(id)
		if rc.writer != nil && rc.writer.submit(id, name, key, v, computeDur, lead) {
			// The writer owns the flight now: FinishCompute fires after the
			// publish decision lands, so parked waiters that probe the store
			// see the bytes (flush drains the pipeline even on error paths).
			return nil
		}
		e.finishFlight(lead, key, v, nil)
		return nil

	default:
		return fmt.Errorf("exec: runNode called on pruned node %s", name)
	}
}

// gather snapshots the parents' values in g.Parents order from their
// lock-free slots (every parent finished before this node was dispatched),
// erroring on any parent without a value (a pruned producer the plan
// should not have allowed).
func (rc *runCtx) gather(id dag.NodeID) ([]any, error) {
	parents := rc.g.Parents(id)
	if len(parents) == 0 {
		return nil, nil
	}
	inputs := make([]any, len(parents))
	for i, p := range parents {
		if !rc.published[p] {
			return nil, fmt.Errorf("exec: %s needs parent %s which has no value", rc.g.Node(id).Name, rc.g.Node(p).Name)
		}
		inputs[i] = rc.vals[p]
	}
	return inputs, nil
}

// pathWeights builds the critical-path dispatch weights for one run: each
// node's cost estimate is its best-known history compute time (compute
// nodes) or store load estimate (load nodes), with never-measured nodes
// charged a structural floor (unit cost scaled by out-degree, per
// dag.StructuralCosts) so a cold run still orders by how much downstream
// work each node gates; dag.CriticalPath then turns the costs into
// heaviest-downstream-path weights. Pruned nodes cost 0; weight flowing
// through a pruned node toward a load descendant slightly overstates its
// ancestors, which is harmless for an ordering heuristic (pruned nodes
// themselves never enter a ready queue). The per-node cost estimates are
// returned alongside the weights: they seed the online re-prioritizer,
// which measures divergence against exactly what the weights were built
// from.
func (e *Engine) pathWeights(g *dag.Graph, tasks []Task, plan *opt.Plan, order []dag.NodeID, structural []int64) ([]int64, []int64) {
	cost := make([]int64, g.Len())
	for i := range cost {
		id := dag.NodeID(i)
		switch plan.States[id] {
		case opt.Compute:
			cost[i] = structural[i]
			if e.History != nil {
				if d, ok := e.History.Compute(g.Node(id).Name); ok && d > 0 {
					cost[i] = d.Nanoseconds()
				}
			}
		case opt.Load:
			cost[i] = structural[i]
			if e.Store != nil && tasks[i].Key != "" {
				if entry, _, ok := e.tiers().Lookup(tasks[i].Key); ok && entry.LoadCost > 0 {
					cost[i] = entry.LoadCost.Nanoseconds()
				}
			}
		}
	}
	w, err := g.CriticalPathOrdered(cost, order)
	if err != nil {
		return nil, nil // cycles are rejected before dispatch; fall back to min-ID
	}
	return w, cost
}

// noteLive charges id's freshly published value to the engine's live-bytes
// gauge, remembering the amount so release and the end-of-run settlement
// subtract exactly what was added. Loads are charged their exact stored
// size; computes the history estimate, falling back to the structural
// cold-node floor (coldSizeUnit × (1 + out-degree)) until the node's size
// has been learned from a materialization probe.
func (rc *runCtx) noteLive(id dag.NodeID) {
	if rc.liveSize == nil {
		return
	}
	var est int64
	if rc.plan.States[id] == opt.Load {
		if entry, _, ok := rc.e.tiers().Lookup(rc.tasks[id].Key); ok {
			est = entry.Size
		}
	} else if s, ok := rc.e.historySize(rc.g.Node(id).Name); ok {
		est = s
	} else {
		est = rc.coldSizes[id]
	}
	rc.liveSize[id] = est
	rc.e.LiveBytes.Add(est)
}

// nodeHeap is the dataflow scheduler's priority queue of ready nodes (the
// shared heap under GlobalHeap dispatch; each per-worker deque and the
// overflow queue under work-stealing). With weight set (critical-path
// ordering) the largest weight dispatches first and ties break on the
// smaller ID; with weight nil it is a plain min-heap of IDs, matching the
// deterministic tie-break of dag.Topo. Single-worker runs are a pure
// function of the graph under both dispatch modes; under GlobalHeap with
// min-ID the order is additionally exactly topological-by-ID, while the
// work-stealing chase (a finisher keeps its best newly-ready child ahead
// of its queue) runs chains eagerly instead.
//
// The heap is hand-rolled rather than container/heap: push and pop sit on
// the per-node dispatch path of every scheduler, and the interface-based
// API boxes every NodeID into an allocation (runtime.convT64) plus dynamic
// dispatch per sift step — measurable churn at fine-grained-node scale.
type nodeHeap struct {
	ids    []dag.NodeID
	weight []int64 // indexed by node ID; nil selects min-ID ordering
	// epoch is the re-prioritization version this heap was last sorted
	// with (reweighter.fix compares it against the global counter and
	// re-heapifies with the fresh weights on mismatch). Guarded by
	// whatever lock guards the heap itself; always 0 when reweighting is
	// off.
	epoch uint64
}

func (h *nodeHeap) Len() int { return len(h.ids) }

// push adds id, restoring the heap invariant (sift up).
func (h *nodeHeap) push(id dag.NodeID) {
	h.ids = append(h.ids, id)
	ids, w := h.ids, h.weight
	i := len(ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeBefore(w, ids[i], ids[parent]) {
			break
		}
		ids[i], ids[parent] = ids[parent], ids[i]
		i = parent
	}
}

// pop removes and returns the highest-priority node (sift down). The heap
// must be non-empty.
func (h *nodeHeap) pop() dag.NodeID {
	ids := h.ids
	top := ids[0]
	n := len(ids) - 1
	ids[0] = ids[n]
	h.ids = ids[:n]
	h.siftDown(0)
	return top
}

// siftDown restores the heap invariant below index i.
func (h *nodeHeap) siftDown(i int) {
	ids, w := h.ids, h.weight
	n := len(ids)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && nodeBefore(w, ids[r], ids[l]) {
			best = r
		}
		if !nodeBefore(w, ids[best], ids[i]) {
			break
		}
		ids[i], ids[best] = ids[best], ids[i]
		i = best
	}
}

// heapify re-establishes the invariant over the whole heap after the
// weight slice changed (a re-prioritization pass): bottom-up sift-down,
// O(n) for the queue sizes dispatch ever holds.
func (h *nodeHeap) heapify() {
	for i := len(h.ids)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// nodeBefore reports whether a dispatches before b: larger critical-path
// weight first (when weights are in play), then smaller ID.
func nodeBefore(weight []int64, a, b dag.NodeID) bool {
	if weight != nil && weight[a] != weight[b] {
		return weight[a] > weight[b]
	}
	return a < b
}
