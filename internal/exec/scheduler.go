package exec

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// dispatch is the shared state of one dataflow Execute call: the
// pending-parent counters, the ready queue, and the completion accounting a
// fixed pool of workers drains.
type dispatch struct {
	e     *Engine
	g     *dag.Graph
	tasks []Task
	plan  *opt.Plan
	res   *Result

	resMu sync.Mutex // guards res.Values and res.Nodes

	mu        sync.Mutex // guards the scheduling state below
	cond      *sync.Cond // signaled when ready grows, work completes, or on cancel
	ready     nodeHeap   // runnable nodes, smallest ID first
	pending   []int      // per-node count of unfinished non-pruned parents
	consumers []int      // per-node count of compute children yet to run
	remaining int        // runnable nodes not yet finished
	cancelled bool       // set on first error; stops dispatching new work
	errs      []error    // every node error observed before shutdown

	writer *matWriter // nil when materialization is disabled
}

// executeDataflow runs the plan with dependency-counting scheduling: no
// level barriers, a node is dispatched the instant its last parent
// finishes, and completed values go to the background materialization
// pipeline (flushed before return, also on error).
func (e *Engine) executeDataflow(g *dag.Graph, tasks []Task, plan *opt.Plan, res *Result) (*Result, error) {
	// Dependency counting never drains a cyclic graph; reject it up front
	// with the same diagnostic the topological sort produces.
	if _, err := g.Topo(); err != nil {
		return nil, err
	}
	start := time.Now()
	runnable := func(id dag.NodeID) bool { return plan.States[id] != opt.Prune }
	d := &dispatch{e: e, g: g, tasks: tasks, plan: plan, res: res}
	d.cond = sync.NewCond(&d.mu)
	// A compute node waits for every non-pruned parent. Load nodes read the
	// store, not their parents, so they are runnable immediately; a compute
	// node whose parents were all pruned is too, and fails input gathering
	// with the same missing-parent error the level-barrier executor gave.
	d.pending = g.Indegrees(runnable)
	if e.ReleaseIntermediates {
		d.consumers = g.ConsumerCounts(func(c dag.NodeID) bool { return plan.States[c] == opt.Compute })
	}
	for i := 0; i < g.Len(); i++ {
		id := dag.NodeID(i)
		if plan.States[id] == opt.Load {
			d.pending[i] = 0
		}
		if runnable(id) {
			d.remaining++
		}
	}
	for _, id := range g.ReadySet(d.pending, runnable) {
		heap.Push(&d.ready, id)
	}
	if e.Policy != nil && e.Store != nil {
		d.writer = newMatWriter(e, g, res, &d.resMu)
	}
	workers := e.workers()
	if workers > d.remaining {
		workers = d.remaining
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.work()
		}()
	}
	wg.Wait()
	if d.writer != nil {
		d.writer.flush()
	}
	res.Wall = time.Since(start)
	if len(d.errs) > 0 {
		return res, errors.Join(d.errs...)
	}
	return res, nil
}

// work is one worker's loop: pull the smallest-ID ready node, run it,
// publish completion, repeat until the slice drains or is cancelled.
func (d *dispatch) work() {
	for {
		id, ok := d.next()
		if !ok {
			return
		}
		err := d.runNode(id)
		d.finish(id, err)
	}
}

// next blocks until a node is runnable, the run is cancelled, or all
// runnable nodes have finished.
func (d *dispatch) next() (dag.NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled || d.remaining == 0 {
			return 0, false
		}
		if d.ready.Len() > 0 {
			return heap.Pop(&d.ready).(dag.NodeID), true
		}
		d.cond.Wait()
	}
}

// finish publishes id's completion. On success it decrements each compute
// child's pending-parent counter, queues children that just became
// runnable, and — when ReleaseIntermediates is on — drops values whose last
// consumer has now run. On failure it records the error and cancels all
// not-yet-dispatched work; nodes already in flight complete and their
// errors, if any, are collected too.
func (d *dispatch) finish(id dag.NodeID, err error) {
	var release []dag.NodeID
	d.mu.Lock()
	d.remaining--
	if err != nil {
		d.errs = append(d.errs, err)
		d.cancelled = true
	} else {
		for _, c := range d.g.Children(id) {
			if d.plan.States[c] != opt.Compute {
				continue
			}
			d.pending[c]--
			if d.pending[c] == 0 {
				heap.Push(&d.ready, c)
			}
		}
		if d.e.ReleaseIntermediates {
			release = d.releasable(id)
		}
	}
	d.mu.Unlock()
	d.cond.Broadcast()
	if len(release) > 0 {
		d.resMu.Lock()
		for _, p := range release {
			delete(d.res.Values, p)
		}
		d.resMu.Unlock()
	}
}

// releasable decrements the reference counts id's completion settles and
// returns the non-output nodes whose values no remaining consumer needs.
// Callers hold d.mu. The background materialization writer captures values
// in its jobs, so releasing here never races a pending write.
func (d *dispatch) releasable(id dag.NodeID) []dag.NodeID {
	var out []dag.NodeID
	if d.plan.States[id] == opt.Compute {
		for _, p := range d.g.Parents(id) {
			if d.plan.States[p] == opt.Prune {
				continue
			}
			d.consumers[p]--
			if d.consumers[p] == 0 && !d.g.Node(p).Output {
				out = append(out, p)
			}
		}
	}
	if d.consumers[id] == 0 && !d.g.Node(id).Output {
		out = append(out, id)
	}
	return out
}

// runNode loads or computes one node. Computed values are published before
// the materialization hand-off, so consumers never wait on a write.
func (d *dispatch) runNode(id dag.NodeID) error {
	e, g := d.e, d.g
	name := g.Node(id).Name
	nodeStart := time.Now()
	switch d.plan.States[id] {
	case opt.Load:
		return e.loadNode(g, d.tasks, id, d.res, &d.resMu)

	case opt.Compute:
		inputs, err := gatherInputs(g, id, d.res, &d.resMu)
		if err != nil {
			return err
		}
		if d.tasks[id].Run == nil {
			return fmt.Errorf("exec: node %s has no Run function", name)
		}
		v, err := d.tasks[id].Run(inputs)
		if err != nil {
			return fmt.Errorf("exec: compute %s: %w", name, err)
		}
		computeDur := time.Since(nodeStart)
		if e.History != nil {
			e.History.ObserveCompute(name, computeDur, 0)
		}
		d.resMu.Lock()
		d.res.Values[id] = v
		d.res.Nodes[id].Duration = computeDur
		d.resMu.Unlock()
		if d.writer != nil {
			d.writer.submit(id, name, d.tasks[id].Key, v, computeDur)
		}
		return nil

	default:
		return fmt.Errorf("exec: runNode called on pruned node %s", name)
	}
}

// nodeHeap is a min-heap of node IDs: among simultaneously ready nodes the
// smallest ID dispatches first, matching the deterministic tie-break of
// dag.Topo (and making single-worker runs exactly topological).
type nodeHeap []dag.NodeID

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(dag.NodeID)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
