package exec

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// dispatch is the shared state of one dataflow Execute call: the
// pending-parent counters, the ready queue, and the completion accounting a
// fixed pool of workers drains.
type dispatch struct {
	e     *Engine
	g     *dag.Graph
	tasks []Task
	plan  *opt.Plan
	res   *Result

	resMu sync.Mutex // guards res.Values and res.Nodes

	mu        sync.Mutex // guards the scheduling state below
	cond      *sync.Cond // signaled when ready grows, work completes, or on cancel
	ready     nodeHeap   // runnable nodes, highest priority first
	pending   []int      // per-node count of unfinished non-pruned parents
	consumers []int      // per-node count of compute children yet to run
	remaining int        // runnable nodes not yet finished
	cancelled bool       // set on first error; stops dispatching new work
	errs      []error    // every node error observed before shutdown

	// liveSize records what each published value added to the engine's
	// live-bytes gauge, so release and the end-of-run settlement subtract
	// exactly that. Entries are written by the worker that ran the node
	// before its finish() and zeroed on release; the d.mu hand-off in
	// finish orders those accesses. Nil when the gauge is disabled.
	liveSize []int64

	writer *matWriter // nil when materialization is disabled
}

// executeDataflow runs the plan with dependency-counting scheduling: no
// level barriers, a node is dispatched the instant its last parent
// finishes, and completed values go to the background materialization
// pipeline (flushed before return, also on error). Ready nodes dispatch
// critical-path-first by default (Engine.Order selects MinID instead), so
// the run's long pole is never left waiting behind cheap siblings.
func (e *Engine) executeDataflow(g *dag.Graph, tasks []Task, plan *opt.Plan, res *Result) (*Result, error) {
	// Dependency counting never drains a cyclic graph; reject it up front
	// with the same diagnostic the topological sort produces.
	if _, err := g.Topo(); err != nil {
		return nil, err
	}
	start := time.Now()
	runnable := func(id dag.NodeID) bool { return plan.States[id] != opt.Prune }
	d := &dispatch{e: e, g: g, tasks: tasks, plan: plan, res: res}
	d.cond = sync.NewCond(&d.mu)
	if e.Order == CriticalPath {
		d.ready.weight = e.pathWeights(g, tasks, plan)
	}
	if e.LiveBytes != nil {
		d.liveSize = make([]int64, g.Len())
	}
	// A compute node waits for every non-pruned parent. Load nodes read the
	// store, not their parents, so they are runnable immediately; a compute
	// node whose parents were all pruned is too, and fails input gathering
	// with the same missing-parent error the level-barrier executor gave.
	d.pending = g.Indegrees(runnable)
	if e.ReleaseIntermediates {
		d.consumers = g.ConsumerCounts(func(c dag.NodeID) bool { return plan.States[c] == opt.Compute })
	}
	for i := 0; i < g.Len(); i++ {
		id := dag.NodeID(i)
		if plan.States[id] == opt.Load {
			d.pending[i] = 0
		}
		if runnable(id) {
			d.remaining++
		}
	}
	for _, id := range g.ReadySet(d.pending, runnable) {
		heap.Push(&d.ready, id)
	}
	if e.Policy != nil && e.Store != nil {
		d.writer = newMatWriter(e, g, res, &d.resMu)
	}
	workers := e.workers()
	if workers > d.remaining {
		workers = d.remaining
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.work()
		}()
	}
	wg.Wait()
	if d.writer != nil {
		d.writer.flush()
	}
	if e.LiveBytes != nil {
		// Values still retained (outputs, and everything else when release
		// is off) stop being execution-live once the run is over; settle
		// them so Live returns to its pre-run level while Peak keeps the
		// high-water mark.
		var rest int64
		for _, n := range d.liveSize {
			rest += n
		}
		e.LiveBytes.Sub(rest)
	}
	res.Wall = time.Since(start)
	if len(d.errs) > 0 {
		return res, errors.Join(d.errs...)
	}
	return res, nil
}

// work is one worker's loop: pull the highest-priority ready node, run it,
// publish completion, repeat until the slice drains or is cancelled.
func (d *dispatch) work() {
	for {
		id, ok := d.next()
		if !ok {
			return
		}
		err := d.runNode(id)
		d.finish(id, err)
	}
}

// next blocks until a node is runnable, the run is cancelled, or all
// runnable nodes have finished.
func (d *dispatch) next() (dag.NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled || d.remaining == 0 {
			return 0, false
		}
		if d.ready.Len() > 0 {
			return heap.Pop(&d.ready).(dag.NodeID), true
		}
		d.cond.Wait()
	}
}

// finish publishes id's completion. On success it decrements each compute
// child's pending-parent counter, queues children that just became
// runnable, and — when ReleaseIntermediates is on — drops values whose last
// consumer has now run. On failure it records the error and cancels all
// not-yet-dispatched work; nodes already in flight complete and their
// errors, if any, are collected too.
func (d *dispatch) finish(id dag.NodeID, err error) {
	var release []dag.NodeID
	d.mu.Lock()
	d.remaining--
	if err != nil {
		d.errs = append(d.errs, err)
		d.cancelled = true
	} else {
		for _, c := range d.g.Children(id) {
			if d.plan.States[c] != opt.Compute {
				continue
			}
			d.pending[c]--
			if d.pending[c] == 0 {
				heap.Push(&d.ready, c)
			}
		}
		if d.e.ReleaseIntermediates {
			release = d.releasable(id)
		}
	}
	d.mu.Unlock()
	d.cond.Broadcast()
	if len(release) > 0 {
		d.resMu.Lock()
		for _, p := range release {
			delete(d.res.Values, p)
		}
		d.resMu.Unlock()
		if d.liveSize != nil {
			for _, p := range release {
				d.e.LiveBytes.Sub(d.liveSize[p])
				d.liveSize[p] = 0
			}
		}
	}
}

// releasable decrements the reference counts id's completion settles and
// returns the non-output nodes whose values no remaining consumer needs.
// Callers hold d.mu. The background materialization writer captures values
// in its jobs, so releasing here never races a pending write.
func (d *dispatch) releasable(id dag.NodeID) []dag.NodeID {
	var out []dag.NodeID
	if d.plan.States[id] == opt.Compute {
		for _, p := range d.g.Parents(id) {
			if d.plan.States[p] == opt.Prune {
				continue
			}
			d.consumers[p]--
			if d.consumers[p] == 0 && !d.g.Node(p).Output {
				out = append(out, p)
			}
		}
	}
	if d.consumers[id] == 0 && !d.g.Node(id).Output {
		out = append(out, id)
	}
	return out
}

// runNode loads or computes one node. Computed values are published before
// the materialization hand-off, so consumers never wait on a write.
func (d *dispatch) runNode(id dag.NodeID) error {
	e, g := d.e, d.g
	name := g.Node(id).Name
	nodeStart := time.Now()
	switch d.plan.States[id] {
	case opt.Load:
		if err := e.loadNode(g, d.tasks, id, d.res, &d.resMu); err != nil {
			return err
		}
		d.noteLive(id)
		return nil

	case opt.Compute:
		inputs, err := gatherInputs(g, id, d.res, &d.resMu)
		if err != nil {
			return err
		}
		if d.tasks[id].Run == nil {
			return fmt.Errorf("exec: node %s has no Run function", name)
		}
		v, err := d.tasks[id].Run(inputs)
		if err != nil {
			return fmt.Errorf("exec: compute %s: %w", name, err)
		}
		computeDur := time.Since(nodeStart)
		if e.History != nil {
			e.History.ObserveCompute(name, computeDur, 0)
		}
		d.resMu.Lock()
		d.res.Values[id] = v
		d.res.Nodes[id].Duration = computeDur
		d.resMu.Unlock()
		d.noteLive(id)
		if d.writer != nil {
			d.writer.submit(id, name, d.tasks[id].Key, v, computeDur)
		}
		return nil

	default:
		return fmt.Errorf("exec: runNode called on pruned node %s", name)
	}
}

// pathWeights builds the critical-path dispatch weights for one run: each
// node's cost estimate is its best-known history compute time (compute
// nodes) or store load estimate (load nodes), floored at 1ns so a
// never-measured run still orders by downstream path length, then
// dag.CriticalPath turns the costs into heaviest-downstream-path weights.
// Pruned nodes cost 0; weight flowing through a pruned node toward a load
// descendant slightly overstates its ancestors, which is harmless for an
// ordering heuristic (pruned nodes themselves never enter the ready queue).
func (e *Engine) pathWeights(g *dag.Graph, tasks []Task, plan *opt.Plan) []int64 {
	cost := make([]int64, g.Len())
	for i := range cost {
		id := dag.NodeID(i)
		switch plan.States[id] {
		case opt.Compute:
			cost[i] = 1
			if e.History != nil {
				if d, ok := e.History.Compute(g.Node(id).Name); ok && d > 0 {
					cost[i] = d.Nanoseconds()
				}
			}
		case opt.Load:
			cost[i] = 1
			if e.Store != nil && tasks[i].Key != "" {
				if entry, ok := e.Store.Lookup(tasks[i].Key); ok && entry.LoadCost > 0 {
					cost[i] = entry.LoadCost.Nanoseconds()
				}
			}
		}
	}
	w, err := g.CriticalPath(cost)
	if err != nil {
		return nil // cycles are rejected before dispatch; fall back to min-ID
	}
	return w
}

// noteLive charges id's freshly published value to the engine's live-bytes
// gauge, remembering the amount so release and the end-of-run settlement
// subtract exactly what was added. Loads are charged their exact stored
// size; computes the history estimate (0 until the node's size has been
// learned from a materialization probe).
func (d *dispatch) noteLive(id dag.NodeID) {
	if d.liveSize == nil {
		return
	}
	var est int64
	if d.plan.States[id] == opt.Load {
		if entry, ok := d.e.Store.Lookup(d.tasks[id].Key); ok {
			est = entry.Size
		}
	} else if s, ok := d.e.historySize(d.g.Node(id).Name); ok {
		est = s
	}
	d.liveSize[id] = est
	d.e.LiveBytes.Add(est)
}

// nodeHeap is the dataflow scheduler's priority queue of ready nodes. With
// weight set (critical-path ordering) the largest weight dispatches first
// and ties break on the smaller ID; with weight nil it is a plain min-heap
// of IDs, matching the deterministic tie-break of dag.Topo (and making
// single-worker min-ID runs exactly topological). Both orderings are total
// and deterministic, so equal inputs dispatch identically across runs.
type nodeHeap struct {
	ids    []dag.NodeID
	weight []int64 // indexed by node ID; nil selects min-ID ordering
}

func (h *nodeHeap) Len() int { return len(h.ids) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	if h.weight != nil && h.weight[a] != h.weight[b] {
		return h.weight[a] > h.weight[b]
	}
	return a < b
}
func (h *nodeHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *nodeHeap) Push(x any)    { h.ids = append(h.ids, x.(dag.NodeID)) }
func (h *nodeHeap) Pop() any {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}
