package exec

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/opt"
)

// wsRand is each worker's victim-probing PRNG: a splitmix64 stream seeded
// with the worker index, so steal order is randomized across workers but
// reproducible across runs — and costs two multiplies per draw instead of
// math/rand's per-run source initialization.
type wsRand uint64

// next advances the stream (splitmix64, Steele et al.).
func (r *wsRand) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a pseudo-random int in [0, n).
func (r *wsRand) intn(n int) int { return int(r.next() % uint64(n)) }

// wsDeque is one worker's private ready queue: a priority heap (not a
// classic ends-discipline deque — the intra-queue Ordering replaces the
// LIFO/FIFO split) guarded by its own mutex. The owner pushes and pops
// under a lock that is uncontended unless a thief is probing it, which is
// what makes the dispatch happy path lock-light: no global lock is touched
// between a node finishing and its child starting.
type wsDeque struct {
	mu sync.Mutex
	h  nodeHeap
	// pad to 128 bytes (fields are 56: 8 mutex + two 24-byte slice
	// headers) so adjacent deques never share a 64-byte cache line —
	// whatever the array's alignment, each deque spans two full lines and
	// owner traffic cannot false-share with a neighbour.
	_ [72]byte
}

// wsTopEmpty is the published top weight of an empty queue: below every
// real critical-path weight, so an empty queue never wins the global-best
// consult.
const wsTopEmpty = int64(math.MinInt64)

// wsTop publishes one deque's current best (highest) weight, updated at
// every locked heap mutation. The stranding consult in popLocal reads
// these lock-free to approximate the globally best runnable weight; the
// values are advisory — a stale top costs one suboptimal pick, never
// correctness. Padded to a cache line so per-worker publications do not
// false-share.
type wsTop struct {
	w atomic.Int64
	_ [56]byte
}

// wsDispatch is the work-stealing dispatcher of the dataflow scheduler.
// Scheduling state that the GlobalHeap baseline keeps under one mutex is
// decomposed here: pending-parent and consumer reference counts are
// atomics (many finishers decrement concurrently; exactly one observes the
// zero-crossing), each worker owns a private priority deque, and a small
// global overflow queue — sharing a mutex with the parking condition
// variable — hands work to parked workers and carries shutdown and
// cancellation wakeups. See docs/scheduler.md for the full protocol and
// its memory-ordering argument.
type wsDispatch struct {
	*runCtx

	weight []int64 // critical-path priorities; nil selects min-ID
	deques []wsDeque
	tops   []wsTop // published per-deque best weights (see wsTop)

	pending   []atomic.Int32 // per-node unfinished non-pruned parents
	consumers []atomic.Int32 // per-node compute children yet to run (release)
	remaining atomic.Int64   // runnable nodes not yet finished
	cancelled atomic.Bool    // set on first error; stops dispatching new work
	steals    atomic.Int64   // nodes taken from another worker's deque
	handoffs  atomic.Int64   // nodes routed through the overflow queue
	// affinityKeeps counts newly-ready children kept on the producing
	// worker's deque by the partial handoff in dispatchRest — nodes that,
	// before the affinity fix, would all have been routed through the
	// overflow queue whenever any worker was parked.
	affinityKeeps atomic.Int64
	// overflowTop publishes the overflow queue's best weight (wsTopEmpty
	// when empty), updated under parkMu, read lock-free by the stranding
	// consult.
	overflowTop atomic.Int64

	errMu sync.Mutex
	errs  []error // every node error observed before shutdown

	// parkMu guards the overflow queue and the parking protocol. Lock
	// order: parkMu may be taken alone or before a deque mutex (the parked
	// rescan); no path acquires parkMu while holding a deque mutex.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	overflow nodeHeap     // cross-worker handoff queue, guarded by parkMu
	waiters  atomic.Int32 // workers parked or registering to park
}

// runWorkSteal drains the run with the work-stealing dispatcher and
// returns every node error observed before shutdown.
func runWorkSteal(rc *runCtx, weight []int64, pending, consumers []int, remaining int, ready []dag.NodeID) []error {
	workers := rc.e.workers()
	if workers > remaining {
		workers = remaining
	}
	if workers == 0 {
		return nil
	}
	d := &wsDispatch{runCtx: rc, weight: weight}
	d.parkCond = sync.NewCond(&d.parkMu)
	d.overflow.weight = weight
	d.overflowTop.Store(wsTopEmpty)
	d.deques = make([]wsDeque, workers)
	d.tops = make([]wsTop, workers)
	for i := range d.deques {
		d.deques[i].h.weight = weight
		d.tops[i].w.Store(wsTopEmpty)
	}
	if rc.rw != nil {
		// Eager sweep of a re-prioritization pass: re-sort each deque and
		// the overflow queue, one lock at a time (the pass holds no lock of
		// its own, so the dispatch lock order is untouched). Queues the
		// sweep misses — or that are pushed to with a stale slice after it
		// passed — catch up lazily through fix() on their next locked
		// access.
		rc.rw.resort = func() {
			for i := range d.deques {
				dq := &d.deques[i]
				dq.mu.Lock()
				rc.rw.fix(&dq.h)
				d.publishTop(i, &dq.h)
				dq.mu.Unlock()
			}
			d.parkMu.Lock()
			rc.rw.fix(&d.overflow)
			d.publishOverflowLocked()
			d.parkMu.Unlock()
		}
	}
	d.pending = make([]atomic.Int32, len(pending))
	for i, p := range pending {
		d.pending[i].Store(int32(p))
	}
	if consumers != nil {
		d.consumers = make([]atomic.Int32, len(consumers))
		for i, c := range consumers {
			d.consumers[i].Store(int32(c))
		}
	}
	d.remaining.Store(int64(remaining))

	// Critical-path-aware initial partition: deal the initial ready set in
	// priority order round-robin across the deques, so every worker starts
	// on the most urgent work available and the heaviest paths spread over
	// distinct workers instead of queueing behind one.
	seed := append([]dag.NodeID(nil), ready...)
	sort.Slice(seed, func(i, j int) bool { return nodeBefore(weight, seed[i], seed[j]) })
	for i, id := range seed {
		d.deques[i%workers].h.push(id)
	}
	for i := range d.deques {
		d.publishTop(i, &d.deques[i].h) // single-threaded setup; no lock yet
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d.work(w)
		}(w)
	}
	wg.Wait()
	rc.res.Steals = d.steals.Load()
	rc.res.Handoffs = d.handoffs.Load()
	rc.res.AffinityKeeps = d.affinityKeeps.Load()
	return d.errs
}

// work is one worker's loop: acquire a node (own deque, overflow, then
// stealing), run it, and chase the chain of children it unlocks — finish
// hands back the best newly-ready child so dependency chains execute with
// no queue round-trip at all.
func (d *wsDispatch) work(w int) {
	rng := wsRand(w)
	for {
		id, ok := d.next(w, &rng)
		if !ok {
			return
		}
		for ok {
			err := d.runNode(id)
			id, ok = d.finish(w, id, err)
		}
	}
}

// finish publishes id's completion and returns the node this worker should
// run next, if completing id made one runnable. On success it decrements
// each compute child's pending-parent counter (atomically — exactly one
// parent observes the zero-crossing and owns the dispatch), keeps the
// highest-priority newly-ready child to run directly, and queues the rest
// on its own deque — or hands them to parked workers through the overflow
// queue. On failure it records the error and cancels all not-yet-
// dispatched work; nodes already in flight complete and their errors are
// collected too.
func (d *wsDispatch) finish(w int, id dag.NodeID, err error) (dag.NodeID, bool) {
	var release []dag.NodeID
	// readyBuf keeps the common case (a handful of newly-ready children)
	// off the heap: finish runs once per node, and an allocation here is
	// measurable GC churn on fine-grained DAGs.
	var readyBuf [8]dag.NodeID
	ready := readyBuf[:0]
	if err != nil {
		// Interrupt in-flight operators first: they may be long-running,
		// and nothing below waits on them.
		d.runCtx.cancel()
		d.errMu.Lock()
		d.errs = append(d.errs, err)
		d.errMu.Unlock()
		d.cancelled.Store(true)
	} else {
		// Feed the re-prioritizer before dispatching children: no lock is
		// held here, and a pass triggered now orders the children below
		// with the corrected weights.
		if d.rw != nil {
			d.rw.observe(id, d.durs[id].Load())
			d.rw.maybePass()
		}
		// Settle release reference counts before any child can be
		// dispatched: the self-check below (consumers[id] == 0) is only
		// race-free while no child of id is running, and children become
		// runnable only through the pending decrements that follow.
		if d.e.ReleaseIntermediates {
			release = d.releasable(id)
		}
		for _, c := range d.g.Children(id) {
			if d.plan.States[c] != opt.Compute {
				continue
			}
			if d.pending[c].Add(-1) == 0 {
				ready = append(ready, c)
			}
		}
	}

	var next dag.NodeID
	keep := false
	if len(ready) > 0 && !d.cancelled.Load() {
		next, ready = pickBest(d.curWeight(), ready)
		keep = true
		if len(ready) > 0 {
			d.dispatchRest(w, ready)
		}
	}

	last := d.remaining.Add(-1) == 0
	if last || d.cancelled.Load() {
		d.parkMu.Lock()
		d.parkCond.Broadcast()
		d.parkMu.Unlock()
	}
	d.applyRelease(release)
	if keep && !d.cancelled.Load() {
		return next, true
	}
	return 0, false
}

// curWeight returns the live priority slice: the re-prioritizer's current
// publication when reweighting is on, the run's initial weights otherwise.
// Snapshots may lag a concurrent pass by one publication — weights order
// work, they never gate correctness, so a stale snapshot costs at most one
// suboptimal pick.
func (d *wsDispatch) curWeight() []int64 {
	if d.rw == nil {
		return d.weight
	}
	w, _ := d.rw.current()
	return w
}

// fix re-sorts h with the current weights if a re-prioritization pass has
// published since h was last sorted. Callers hold the lock guarding h.
func (d *wsDispatch) fix(h *nodeHeap) {
	if d.rw != nil {
		d.rw.fix(h)
	}
}

// pickBest removes the highest-priority node from ready and returns it
// together with the remainder (order not preserved).
func pickBest(weight []int64, ready []dag.NodeID) (dag.NodeID, []dag.NodeID) {
	best := 0
	for i := 1; i < len(ready); i++ {
		if nodeBefore(weight, ready[i], ready[best]) {
			best = i
		}
	}
	id := ready[best]
	ready[best] = ready[len(ready)-1]
	return id, ready[:len(ready)-1]
}

// idleConsumers estimates how many other workers could take a handoff
// right now: the registered parked waiters, or — while the overflow queue
// is published empty — every other deque publishing an empty top. A parked
// worker's deque is always empty (only its owner pushes to it, and it
// parked after finding it empty), so the count is a max, never a sum. The
// published-empty widening is what spreads a ready burst that lands before
// anyone has managed to park — a cheap root fanning out within
// microseconds of startup, when the sibling workers exist but have not
// reached their first popLocal — and the overflow-empty gate keeps
// steady-state chase loops (all deques drained, every finish chasing its
// own child) from paying the global handoff lock for work their own
// chase would consume anyway. Min-ID ordering publishes no tops and keeps
// the waiters-only estimate.
func (d *wsDispatch) idleConsumers(w int) int {
	nw := int(d.waiters.Load())
	if d.weight == nil || d.overflowTop.Load() != wsTopEmpty {
		return nw
	}
	empty := 0
	for i := range d.tops {
		if i != w && d.tops[i].w.Load() == wsTopEmpty {
			empty++
		}
	}
	if empty > nw {
		return empty
	}
	return nw
}

// dispatchRest queues the newly-ready nodes the finishing worker is not
// running itself. With idle workers to feed, one node per idle consumer is
// routed through the overflow queue (a handoff: parked workers take from
// it without probing every deque) and the surplus stays on the producing
// worker's own deque — the locality-aware half of the dispatch policy:
// these children's inputs were computed (and are cache-warm, or
// tier-resident) right here, so only as many leave as there are idle
// workers to run them, highest priority first. Without idle consumers
// everything lands on the own deque for thieves to steal from. rest must
// be non-empty — a finish whose only ready child is kept for the chase
// loop dispatches with no lock at all.
func (d *wsDispatch) dispatchRest(w int, rest []dag.NodeID) {
	if nw := d.idleConsumers(w); nw > 0 {
		handoff := rest
		var local []dag.NodeID
		if len(rest) > nw {
			wts := d.curWeight()
			sort.Slice(rest, func(i, j int) bool { return nodeBefore(wts, rest[i], rest[j]) })
			handoff, local = rest[:nw], rest[nw:]
			d.affinityKeeps.Add(int64(len(local)))
		}
		d.handoffs.Add(int64(len(handoff)))
		d.parkMu.Lock()
		d.fix(&d.overflow)
		for _, c := range handoff {
			d.overflow.push(c)
		}
		d.publishOverflowLocked()
		d.signalLocked(len(handoff))
		d.parkMu.Unlock()
		if len(local) > 0 {
			d.pushLocal(w, local)
		}
		return
	}
	d.pushLocal(w, rest)
}

// pushLocal lands nodes on the worker's own deque and wakes any waiter
// that registered after the caller's waiters check (the lost-wakeup-free
// half of the parking protocol; see wakeWaiters).
func (d *wsDispatch) pushLocal(w int, nodes []dag.NodeID) {
	dq := &d.deques[w]
	dq.mu.Lock()
	d.fix(&dq.h)
	for _, c := range nodes {
		dq.h.push(c)
	}
	d.publishTop(w, &dq.h)
	dq.mu.Unlock()
	d.wakeWaiters(len(nodes))
}

// wakeWaiters is the lost-wakeup-free half of the parking protocol, called
// after n nodes were pushed to a deque: a worker may have registered to
// park after the producer's earlier waiters check; it holds parkMu until
// its rescan (which locks every deque and therefore sees the push) either
// finds work or sleeps, so a signal taken now — serialized against that
// critical section — can never be lost. No-op when nobody is parked or
// registering.
func (d *wsDispatch) wakeWaiters(n int) {
	if d.waiters.Load() == 0 {
		return
	}
	d.parkMu.Lock()
	d.signalLocked(n)
	d.parkMu.Unlock()
}

// signalLocked wakes one waiter per available node (broadcast beyond one).
// Callers hold parkMu.
func (d *wsDispatch) signalLocked(n int) {
	if n == 1 {
		d.parkCond.Signal()
	} else {
		d.parkCond.Broadcast()
	}
}

// releasable decrements the reference counts id's completion settles and
// returns the non-output nodes whose values no remaining consumer needs.
// The counters are atomic: when several children of one parent finish
// concurrently, exactly one decrement observes zero and owns the release.
// The self-check is safe because finish calls releasable before any child
// of id is made runnable (see finish).
func (d *wsDispatch) releasable(id dag.NodeID) []dag.NodeID {
	var out []dag.NodeID
	if d.plan.States[id] == opt.Compute {
		for _, p := range d.g.Parents(id) {
			if d.plan.States[p] == opt.Prune {
				continue
			}
			if d.consumers[p].Add(-1) == 0 && !d.g.Node(p).Output {
				out = append(out, p)
			}
		}
	}
	if d.consumers[id].Load() == 0 && !d.g.Node(id).Output {
		out = append(out, id)
	}
	return out
}

// publishTop publishes deque w's current best weight for the stranding
// consult. Callers hold the deque's mutex (or are in single-threaded
// setup). A no-op under min-ID ordering, which has no weights to compare.
func (d *wsDispatch) publishTop(w int, h *nodeHeap) {
	if d.weight == nil {
		return
	}
	top := wsTopEmpty
	if h.Len() > 0 {
		top = h.weight[h.ids[0]]
	}
	d.tops[w].w.Store(top)
}

// publishOverflowLocked publishes the overflow queue's current best weight.
// Callers hold parkMu. A no-op under min-ID ordering.
func (d *wsDispatch) publishOverflowLocked() {
	if d.weight == nil {
		return
	}
	top := wsTopEmpty
	if d.overflow.Len() > 0 {
		top = d.overflow.weight[d.overflow.ids[0]]
	}
	d.overflowTop.Store(top)
}

// globalBest returns the best published weight over every other deque and
// the overflow queue — the stranding consult's lock-free approximation of
// the most urgent runnable work elsewhere. wsTopEmpty when nothing is
// published.
func (d *wsDispatch) globalBest(w int) int64 {
	best := d.overflowTop.Load()
	for i := range d.tops {
		if i == w {
			continue
		}
		if t := d.tops[i].w.Load(); t > best {
			best = t
		}
	}
	return best
}

// bestVictim returns the other deque publishing the highest top weight, or
// -1 when none publishes real work (or the overflow queue outranks them
// all — the caller has already drained it). A stranded worker steals from
// this deque first: the consult declined the local top because something
// globally urgent is runnable elsewhere, and a random probe would more
// likely land on a deque full of exactly the low-priority work it just
// declined.
func (d *wsDispatch) bestVictim(w int) int {
	best, victim := d.overflowTop.Load(), -1
	for i := range d.tops {
		if i == w {
			continue
		}
		if t := d.tops[i].w.Load(); t > best {
			best, victim = t, i
		}
	}
	return victim
}

// next acquires the worker's next node: own deque first, then the overflow
// queue, then a randomized steal round over the other deques, and finally
// parking until a finisher signals new work (or shutdown). Returns false
// when the run is cancelled or fully drained.
//
// The first popLocal is a hybrid: it declines ("stranded") when the local
// top's priority is far below the published global best, sending this
// worker to the overflow queue and the steal round for the genuinely
// urgent work instead — the fix for the steal-half stranding failure mode
// (docs/scheduler.md), where a globally-worst-ranked node sat at the top
// of a nearly-empty deque and ran years before its turn. If the consult
// finds nothing actually takeable (the published best was claimed first,
// or the tops were stale), the forced popLocal runs the local node anyway:
// progress beats priority, and a worker never parks with runnable local
// work.
func (d *wsDispatch) next(w int, rng *wsRand) (dag.NodeID, bool) {
	for {
		if d.cancelled.Load() || d.remaining.Load() == 0 {
			return 0, false
		}
		id, ok, stranded := d.popLocal(w, false)
		if ok {
			return id, true
		}
		if id, ok := d.popOverflow(); ok {
			return id, true
		}
		prefer := -1
		if stranded {
			// Steal from the deque whose published top triggered the
			// consult: the whole point of declining the local node was to
			// run the globally urgent one.
			prefer = d.bestVictim(w)
		}
		if id, ok := d.stealBatch(w, rng, prefer); ok {
			return id, true
		}
		if stranded {
			if id, ok, _ := d.popLocal(w, true); ok {
				return id, true
			}
			continue // a thief drained the deque meanwhile; re-evaluate
		}
		if id, ok := d.park(w); ok {
			return id, true
		}
	}
}

// popLocal takes the highest-priority node from the worker's own deque.
// Unless force is set, a top whose weight is less than half the published
// global best is declined instead (returned stranded=true), steering the
// worker toward the overflow queue and the steal round first — see next.
func (d *wsDispatch) popLocal(w int, force bool) (id dag.NodeID, ok, stranded bool) {
	dq := &d.deques[w]
	dq.mu.Lock()
	defer dq.mu.Unlock()
	if dq.h.Len() == 0 {
		return 0, false, false
	}
	d.fix(&dq.h)
	if !force && d.weight != nil {
		if tw := dq.h.weight[dq.h.ids[0]]; d.globalBest(w) > 2*tw {
			return 0, false, true
		}
	}
	id = dq.h.pop()
	d.publishTop(w, &dq.h)
	return id, true, false
}

// popOverflow takes the highest-priority node from the global overflow
// queue. The cross-worker transfer was already counted (Result.Handoffs)
// when dispatchRest enqueued it.
func (d *wsDispatch) popOverflow() (dag.NodeID, bool) {
	if d.weight != nil && d.overflowTop.Load() == wsTopEmpty {
		return 0, false // published-empty fast path; skip the global lock
	}
	d.parkMu.Lock()
	defer d.parkMu.Unlock()
	if d.overflow.Len() == 0 {
		return 0, false
	}
	d.fix(&d.overflow)
	id := d.overflow.pop()
	d.publishOverflowLocked()
	return id, true
}

// stealBatch probes every other deque once, starting at a seeded-random
// offset, and takes up to half of the first non-empty victim's queue,
// highest-priority nodes first — an idle worker exists to run the most
// urgent runnable work, so the thief takes the victim's best (the
// heaviest critical path moves to a free worker immediately) and the
// batch amortizes the lock traffic over several nodes instead of coming
// back for every one. A stranded thief passes the deque that published
// the weight its consult declined for as prefer (-1 for none): that deque
// is probed first, so the targeted steal takes the urgent node instead of
// whatever a random victim happens to hold. Returns the best stolen node;
// the remainder lands on the thief's own deque.
func (d *wsDispatch) stealBatch(w int, rng *wsRand, prefer int) (dag.NodeID, bool) {
	n := len(d.deques)
	if n < 2 {
		return 0, false
	}
	// Probe the n-1 other deques starting at the preferred victim, then a
	// random one: index w is excluded by construction, so the round never
	// skips a victim (the preferred deque may be probed twice — one extra
	// uncontended lock).
	off := rng.intn(n - 1)
	for i := -1; i < n-1; i++ {
		v := prefer
		if i >= 0 {
			v = (w + 1 + (off+i)%(n-1)) % n
		} else if v < 0 || v == w {
			continue
		}
		dq := &d.deques[v]
		dq.mu.Lock()
		if dq.h.Len() == 0 {
			dq.mu.Unlock()
			continue
		}
		// Re-sort before splitting: the thief is about to take the
		// victim's "best half", which must mean best under the current
		// weights, not the ones from before the last re-prioritization.
		d.fix(&dq.h)
		take := (dq.h.Len() + 1) / 2
		batch := make([]dag.NodeID, 0, take)
		for len(batch) < take {
			batch = append(batch, dq.h.pop())
		}
		d.publishTop(v, &dq.h)
		dq.mu.Unlock()
		d.steals.Add(int64(len(batch)))
		if len(batch) > 1 {
			own := &d.deques[w]
			own.mu.Lock()
			d.fix(&own.h)
			for _, id := range batch[1:] {
				own.h.push(id)
			}
			d.publishTop(w, &own.h)
			own.mu.Unlock()
			// Without this wake a worker that parked after the thief's probe
			// passed its deque would sleep through the stolen batch.
			d.wakeWaiters(len(batch) - 1)
		}
		return batch[0], true
	}
	return 0, false
}

// park registers the worker as idle and sleeps until a finisher signals.
// Between registering (waiters is visible to finishers from here on) and
// sleeping it rescans every queue under parkMu: a finisher that saw no
// waiters has already completed its local push, so the rescan finds that
// work; a finisher that saw the registration will take parkMu — serialized
// against this critical section — and signal. Either way no wakeup is
// lost. Returns a node if the rescan found one; (0, false) means the
// caller should re-evaluate (shutdown, cancellation, or a wake).
func (d *wsDispatch) park(w int) (dag.NodeID, bool) {
	d.parkMu.Lock()
	d.waiters.Add(1)
	if d.cancelled.Load() || d.remaining.Load() == 0 {
		d.waiters.Add(-1)
		d.parkMu.Unlock()
		return 0, false
	}
	if id, ok := d.scanLocked(w); ok {
		d.waiters.Add(-1)
		d.parkMu.Unlock()
		return id, true
	}
	d.parkCond.Wait()
	d.waiters.Add(-1)
	d.parkMu.Unlock()
	return 0, false
}

// scanLocked checks the overflow queue and every deque for work. Callers
// hold parkMu (lock order: parkMu, then one deque mutex at a time).
func (d *wsDispatch) scanLocked(w int) (dag.NodeID, bool) {
	if d.overflow.Len() > 0 {
		d.fix(&d.overflow)
		id := d.overflow.pop()
		d.publishOverflowLocked()
		return id, true
	}
	for i := 0; i < len(d.deques); i++ {
		v := (w + i) % len(d.deques)
		dq := &d.deques[v]
		dq.mu.Lock()
		if dq.h.Len() > 0 {
			d.fix(&dq.h)
			id := dq.h.pop()
			d.publishTop(v, &dq.h)
			dq.mu.Unlock()
			if v != w {
				d.steals.Add(1)
			}
			return id, true
		}
		dq.mu.Unlock()
	}
	return 0, false
}
