// Package exec is HELIX's execution engine (§2.3): it runs a physical plan
// (a per-node {load, compute, prune} assignment) over a workflow DAG with a
// bounded worker pool, measures per-node runtimes and sizes, and makes
// online materialization decisions through a pluggable policy the moment
// each result becomes available.
//
// The paper executes on Spark; here independent DAG nodes within a level run
// on goroutines, and the materialization store is local disk. All costs the
// optimizers consume (compute nanoseconds, load nanoseconds, serialized
// bytes) are measured, not modeled.
package exec

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// Task binds a DAG node to its executable operator and store key. Tasks are
// indexed by node ID: tasks[i] drives node i.
type Task struct {
	// Key is the node's result signature — its content address in the store.
	Key string
	// Run computes the node's value from its parents' values (ordered as
	// g.Parents). Must be safe to call from any goroutine.
	Run func(inputs []any) (any, error)
}

// NodeRun records what happened to one node during an Execute call.
type NodeRun struct {
	Name     string
	State    opt.State
	Duration time.Duration
	// Size is the serialized size, known only if the engine encoded the
	// value (for a materialization decision).
	Size int64
	// Materialized reports whether the result was persisted this run.
	Materialized bool
	// MatReward is the online heuristic's r_i (0 for other policies).
	MatReward int64
	// MatDuration is the time spent serializing + writing the result; it is
	// part of Duration (the paper's cost model prices the write like one
	// load, and the engine measures it for real).
	MatDuration time.Duration
}

// Result is the outcome of one Execute call (one workflow iteration).
type Result struct {
	// Values holds every non-pruned node's value.
	Values map[dag.NodeID]any
	// Nodes is per-node accounting, indexed by node ID.
	Nodes []NodeRun
	// Wall is the end-to-end latency of the iteration.
	Wall time.Duration
}

// Value returns the value of the named node, if present.
func (r *Result) Value(g *dag.Graph, name string) (any, bool) {
	id := g.Lookup(name)
	if id == dag.InvalidNode {
		return nil, false
	}
	v, ok := r.Values[id]
	return v, ok
}

// History accumulates per-node runtime statistics across iterations
// ("runtime statistics from the current and prior executions", §2.3),
// keyed by node name. Safe for concurrent use.
type History struct {
	mu      sync.Mutex
	compute map[string]time.Duration
	size    map[string]int64
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{compute: make(map[string]time.Duration), size: make(map[string]int64)}
}

// ObserveCompute records a measured compute duration and size for a node.
func (h *History) ObserveCompute(name string, d time.Duration, size int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.compute[name] = d
	if size > 0 {
		h.size[name] = size
	}
}

// Compute returns the last observed compute duration for name.
func (h *History) Compute(name string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.compute[name]
	return d, ok
}

// Size returns the last observed serialized size for name.
func (h *History) Size(name string) (int64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.size[name]
	return s, ok
}

// historySnapshot is the JSON persistence format for History.
type historySnapshot struct {
	ComputeNanos map[string]int64 `json:"compute_nanos"`
	SizeBytes    map[string]int64 `json:"size_bytes"`
}

// Save writes the statistics to path so a future session can warm-start
// ("runtime statistics from the current and prior executions", §2.3).
func (h *History) Save(path string) error {
	h.mu.Lock()
	snap := historySnapshot{
		ComputeNanos: make(map[string]int64, len(h.compute)),
		SizeBytes:    make(map[string]int64, len(h.size)),
	}
	for k, v := range h.compute {
		snap.ComputeNanos[k] = v.Nanoseconds()
	}
	for k, v := range h.size {
		snap.SizeBytes[k] = v
	}
	h.mu.Unlock()
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("exec: marshal history: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("exec: write history: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges previously saved statistics into the history. A missing file
// is not an error (first session); a corrupt file is.
func (h *History) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("exec: read history: %w", err)
	}
	var snap historySnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("exec: parse history %s: %w", path, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, v := range snap.ComputeNanos {
		h.compute[k] = time.Duration(v)
	}
	for k, v := range snap.SizeBytes {
		h.size[k] = v
	}
	return nil
}

// Engine executes plans. Configure once, reuse across iterations.
type Engine struct {
	// Store is the materialization store; nil disables loads and stores.
	Store *store.Store
	// Policy decides online materialization; nil means never materialize.
	Policy opt.MatPolicy
	// Workers bounds per-level parallelism; <=0 means 4.
	Workers int
	// History receives compute-time observations and supplies estimates for
	// nodes not computed this run; nil disables both.
	History *History
}

func (e *Engine) workers() int {
	if e.Workers <= 0 {
		return 4
	}
	return e.Workers
}

// BuildCostModel assembles the recomputation optimizer's inputs for the
// graph: compute costs from history (0 for never-seen nodes — optimistic,
// so new operators are computed, never awaited from a store they are not
// in), and load costs from the store's measured entries.
func (e *Engine) BuildCostModel(g *dag.Graph, tasks []Task) (*opt.CostModel, error) {
	if len(tasks) != g.Len() {
		return nil, fmt.Errorf("exec: %d tasks for %d nodes", len(tasks), g.Len())
	}
	cm := opt.NewCostModel(g.Len())
	for i := 0; i < g.Len(); i++ {
		name := g.Node(dag.NodeID(i)).Name
		if e.History != nil {
			if d, ok := e.History.Compute(name); ok {
				cm.Compute[i] = d.Nanoseconds()
			}
		}
		if e.Store != nil && tasks[i].Key != "" {
			if entry, ok := e.Store.Lookup(tasks[i].Key); ok {
				cm.Loadable[i] = true
				cm.Load[i] = entry.LoadCost.Nanoseconds()
				if cm.Load[i] <= 0 {
					cm.Load[i] = 1 // loads are never free
				}
			}
		}
	}
	return cm, nil
}

// Execute runs the plan over the graph. Nodes in the same DAG level run
// concurrently (bounded by Workers); the first error aborts subsequent
// levels. The returned Result is complete for all levels that ran.
func (e *Engine) Execute(g *dag.Graph, tasks []Task, plan *opt.Plan) (*Result, error) {
	if len(tasks) != g.Len() {
		return nil, fmt.Errorf("exec: %d tasks for %d nodes", len(tasks), g.Len())
	}
	if len(plan.States) != g.Len() {
		return nil, fmt.Errorf("exec: plan has %d states for %d nodes", len(plan.States), g.Len())
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Values: make(map[dag.NodeID]any, g.Len()),
		Nodes:  make([]NodeRun, g.Len()),
	}
	for i := 0; i < g.Len(); i++ {
		res.Nodes[i] = NodeRun{Name: g.Node(dag.NodeID(i)).Name, State: plan.States[i]}
	}
	start := time.Now()
	var mu sync.Mutex // guards res.Values and res.Nodes during a level
	sem := make(chan struct{}, e.workers())
	for _, level := range levels {
		var wg sync.WaitGroup
		errCh := make(chan error, len(level))
		for _, id := range level {
			if plan.States[id] == opt.Prune {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(id dag.NodeID) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := e.runNode(g, tasks, plan, id, res, &mu); err != nil {
					errCh <- err
				}
			}(id)
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			res.Wall = time.Since(start)
			return res, err
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runNode loads or computes one node, then applies the materialization
// policy for computed nodes.
func (e *Engine) runNode(g *dag.Graph, tasks []Task, plan *opt.Plan, id dag.NodeID, res *Result, mu *sync.Mutex) error {
	name := g.Node(id).Name
	nodeStart := time.Now()
	switch plan.States[id] {
	case opt.Load:
		if e.Store == nil {
			return fmt.Errorf("exec: plan loads %s but engine has no store", name)
		}
		v, err := e.Store.Get(tasks[id].Key)
		if err != nil {
			return fmt.Errorf("exec: load %s: %w", name, err)
		}
		mu.Lock()
		res.Values[id] = v
		res.Nodes[id].Duration = time.Since(nodeStart)
		mu.Unlock()
		return nil

	case opt.Compute:
		parents := g.Parents(id)
		inputs := make([]any, len(parents))
		mu.Lock()
		for i, p := range parents {
			v, ok := res.Values[p]
			if !ok {
				mu.Unlock()
				return fmt.Errorf("exec: %s needs parent %s which has no value", name, g.Node(p).Name)
			}
			inputs[i] = v
		}
		mu.Unlock()
		if tasks[id].Run == nil {
			return fmt.Errorf("exec: node %s has no Run function", name)
		}
		v, err := tasks[id].Run(inputs)
		if err != nil {
			return fmt.Errorf("exec: compute %s: %w", name, err)
		}
		computeDur := time.Since(nodeStart)
		matDur, size, materialized, reward := e.maybeMaterialize(g, tasks, plan, id, v, computeDur, res, mu)
		total := computeDur + matDur
		if e.History != nil {
			e.History.ObserveCompute(name, computeDur, size)
		}
		mu.Lock()
		res.Values[id] = v
		nr := &res.Nodes[id]
		nr.Duration = total
		nr.Size = size
		nr.Materialized = materialized
		nr.MatReward = reward
		nr.MatDuration = matDur
		mu.Unlock()
		return nil

	default:
		return fmt.Errorf("exec: runNode called on pruned node %s", name)
	}
}

// maybeMaterialize consults the policy and persists the value when told to.
// Returns the time spent on serialization+write, the serialized size (0 if
// never encoded), whether the value was stored, and the policy reward.
func (e *Engine) maybeMaterialize(g *dag.Graph, tasks []Task, plan *opt.Plan, id dag.NodeID, v any, computeDur time.Duration, res *Result, mu *sync.Mutex) (time.Duration, int64, bool, int64) {
	if e.Policy == nil || e.Store == nil || tasks[id].Key == "" {
		return 0, 0, false, 0
	}
	if e.Store.Has(tasks[id].Key) {
		return 0, 0, false, 0 // already persisted by an earlier iteration
	}
	start := time.Now()
	var raw []byte
	var size int64
	if e.Policy.NeedsSize() {
		// Prefer the history estimate (same node name, previous iteration)
		// over serializing now: the paper's cost model must stay "cheap to
		// compute", and sizes of a node's results are stable across
		// iterations. Cold nodes are encoded once to learn their size.
		if hsize, ok := e.historySize(g.Node(id).Name); ok {
			size = hsize
		} else {
			encoded, err := store.Encode(v)
			if err != nil {
				// Unencodable values (unregistered types) are simply not
				// materialization candidates.
				return time.Since(start), 0, false, 0
			}
			raw = encoded
			size = int64(len(raw))
		}
	}
	ctx := opt.MatContext{
		Graph:               g,
		Node:                id,
		ComputeCost:         computeDur.Nanoseconds(),
		AncestorComputeCost: e.ancestorCost(g, id, res, mu),
		LoadCost:            e.Store.EstimateLoad(size).Nanoseconds(),
		Size:                size,
		BudgetRemaining:     e.Store.Remaining(),
	}
	dec := e.Policy.Decide(ctx)
	if !dec.Materialize {
		return time.Since(start), size, false, dec.Reward
	}
	if raw == nil {
		encoded, err := store.Encode(v)
		if err != nil {
			return time.Since(start), size, false, dec.Reward
		}
		raw = encoded
		size = int64(len(raw))
	}
	if err := e.Store.PutBytes(tasks[id].Key, raw); err != nil {
		// Budget races or I/O failures degrade to "not materialized".
		return time.Since(start), size, false, dec.Reward
	}
	return time.Since(start), size, true, dec.Reward
}

// historySize returns the last observed serialized size for a node name.
func (e *Engine) historySize(name string) (int64, bool) {
	if e.History == nil {
		return 0, false
	}
	return e.History.Size(name)
}

// ancestorCost sums the best-known compute costs of id's ancestors: the
// actual duration if the ancestor computed this run, else the history
// estimate, else zero.
func (e *Engine) ancestorCost(g *dag.Graph, id dag.NodeID, res *Result, mu *sync.Mutex) int64 {
	var total int64
	for a := range g.Ancestors(id) {
		mu.Lock()
		nr := res.Nodes[a]
		mu.Unlock()
		if nr.State == opt.Compute && nr.Duration > 0 {
			total += (nr.Duration - nr.MatDuration).Nanoseconds()
			continue
		}
		if e.History != nil {
			if d, ok := e.History.Compute(g.Node(a).Name); ok {
				total += d.Nanoseconds()
			}
		}
	}
	return total
}
