// Package exec is HELIX's execution engine (§2.3): it runs a physical plan
// (a per-node {load, compute, prune} assignment) over a workflow DAG,
// measures per-node runtimes and sizes, and makes online materialization
// decisions through a pluggable policy the moment each result becomes
// available.
//
// Scheduling is dependency-counting dataflow: every non-pruned node carries
// a pending-parent counter, a node becomes runnable the instant its last
// parent finishes, and a fixed worker pool drains the ready set until the
// slice completes or the first error cancels all not-yet-dispatched work.
// There are no level barriers, so a straggler delays only its own
// descendants, never unrelated branches. Dispatch is work-stealing by
// default (see docs/scheduler.md): each worker owns a private priority
// deque seeded by a critical-path-aware partition of the initial ready set,
// a finishing worker keeps its highest-priority newly-ready child to run
// directly and queues the rest locally — no global lock on the happy path —
// while idle workers steal batches from seeded-randomly probed victims and
// parked workers are fed through a small global overflow queue.
// Engine{Dispatch: GlobalHeap} retains the previous single shared ready
// heap behind one mutex for A/B benchmarks. Both dispatchers are cost-aware
// by default: every node carries a critical-path weight (its heaviest
// downstream cost path, per dag.CriticalPath over the engine's history and
// store estimates) and the highest weight dispatches first, so the run's
// long pole starts as early as a worker frees up; Engine{Order: MinID}
// restores the smallest-ID ordering for head-to-head benchmarks.
// Materialization runs off the critical path: each completed value is
// handed to a bounded pool of background writers that decide, encode and
// persist it while downstream consumers are already executing;
// NodeRun.MatDuration records the real write cost, and Execute flushes the
// pipeline — also on error — before returning. Each materialized value is
// gob-encoded exactly once: the size probe for the policy decision is the
// same (pooled) encoding that Store.PutEncoded persists. With a spill tier
// configured (Engine.Spill), a hot-budget rejection admits that encoding to
// the cold tier instead of dropping it, loads fall back to cold and promote
// (see docs/store.md) — still without ever re-encoding. The original wave
// executor is retained as Engine{Sched: LevelBarrier}, the reference for
// equivalence tests and the scheduler benchmarks.
//
// The paper executes on Spark; here nodes run on goroutines and the
// materialization store is local disk. All costs the optimizers consume
// (compute nanoseconds, load nanoseconds, serialized bytes) are measured,
// not modeled.
package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// Task binds a DAG node to its executable operator and store key. Tasks are
// indexed by node ID: tasks[i] drives node i.
type Task struct {
	// Key is the node's result signature — its content address in the store.
	Key string
	// Run computes the node's value from its parents' values (ordered as
	// g.Parents). Must be safe to call from any goroutine. ctx carries the
	// run's cancellation and the fault policy's per-node deadline:
	// long-running operators should honor it (check ctx.Err() in loops,
	// select on ctx.Done() around sleeps) so first-error cancellation and
	// deadlines interrupt them instead of waiting them out. Errors wrapping
	// ErrTransient are retried per Engine.Faults.
	Run func(ctx context.Context, inputs []any) (any, error)
}

// NodeRun records what happened to one node during an Execute call.
type NodeRun struct {
	Name  string
	State opt.State
	// Duration is the node's critical-path time as seen by its consumers:
	// the load or compute time. The level-barrier reference scheduler
	// materializes synchronously inside the node's turn, so there Duration
	// additionally includes MatDuration (the historical accounting).
	Duration time.Duration
	// Size is the serialized size, known only if the engine encoded the
	// value (for a materialization decision).
	Size int64
	// Materialized reports whether the result was persisted this run.
	Materialized bool
	// MatReward is the online heuristic's r_i (0 for other policies).
	MatReward int64
	// MatDuration is the measured time spent on the materialization
	// decision, serialization and write. Under the dataflow scheduler this
	// work happens on a background writer: it neither extends Duration nor
	// delays consumers, but it is still real, measured cost.
	MatDuration time.Duration
	// InflightHit reports that this compute-planned node never ran its
	// operator: a concurrent in-flight computation of the same signature
	// (Engine.SingleFlight) served the value instead — through the store's
	// published bytes or the registry's value handoff.
	InflightHit bool
}

// Result is the outcome of one Execute call (one workflow iteration).
type Result struct {
	// Values holds every non-pruned node's value — unless the engine ran
	// with ReleaseIntermediates, which drops a non-output value once its
	// last consumer has run.
	Values map[dag.NodeID]any
	// Nodes is per-node accounting, indexed by node ID.
	Nodes []NodeRun
	// Wall is the end-to-end latency of the iteration, including the flush
	// of the background materialization pipeline.
	Wall time.Duration
	// Counters is this run's execution-counter block (steals, spills,
	// retries, encode splits, ...); every count is a delta over this one
	// Execute call. See Counters for per-field semantics.
	Counters
}

// Value returns the value of the named node, if present.
func (r *Result) Value(g *dag.Graph, name string) (any, bool) {
	id := g.Lookup(name)
	if id == dag.InvalidNode {
		return nil, false
	}
	v, ok := r.Values[id]
	return v, ok
}

// History accumulates per-node runtime statistics across iterations
// ("runtime statistics from the current and prior executions", §2.3),
// keyed by node name. Safe for concurrent use.
type History struct {
	mu      sync.Mutex
	compute map[string]time.Duration
	size    map[string]int64
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{compute: make(map[string]time.Duration), size: make(map[string]int64)}
}

// ObserveCompute records a measured compute duration and size for a node.
func (h *History) ObserveCompute(name string, d time.Duration, size int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.compute[name] = d
	if size > 0 {
		h.size[name] = size
	}
}

// ObserveSize records a measured serialized size for a node. The async
// materialization writer learns sizes after the compute observation has
// already been made.
func (h *History) ObserveSize(name string, size int64) {
	if size <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.size[name] = size
}

// Compute returns the last observed compute duration for name.
func (h *History) Compute(name string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.compute[name]
	return d, ok
}

// ComputeMany returns the last observed compute durations for names under a
// single lock acquisition; never-seen names yield zero. The materialization
// path uses it so a cost snapshot is O(ancestors) work without O(ancestors)
// lock round-trips.
func (h *History) ComputeMany(names []string) []time.Duration {
	if len(names) == 0 {
		return nil
	}
	out := make([]time.Duration, len(names))
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, n := range names {
		out[i] = h.compute[n]
	}
	return out
}

// Size returns the last observed serialized size for name.
func (h *History) Size(name string) (int64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.size[name]
	return s, ok
}

// historySnapshot is the JSON persistence format for History.
type historySnapshot struct {
	ComputeNanos map[string]int64 `json:"compute_nanos"`
	SizeBytes    map[string]int64 `json:"size_bytes"`
}

// Save writes the statistics to path so a future session can warm-start
// ("runtime statistics from the current and prior executions", §2.3).
func (h *History) Save(path string) error {
	h.mu.Lock()
	snap := historySnapshot{
		ComputeNanos: make(map[string]int64, len(h.compute)),
		SizeBytes:    make(map[string]int64, len(h.size)),
	}
	for k, v := range h.compute {
		snap.ComputeNanos[k] = v.Nanoseconds()
	}
	for k, v := range h.size {
		snap.SizeBytes[k] = v
	}
	h.mu.Unlock()
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("exec: marshal history: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("exec: write history: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges previously saved statistics into the history. A missing file
// is not an error (first session); a corrupt file is.
func (h *History) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("exec: read history: %w", err)
	}
	var snap historySnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("exec: parse history %s: %w", path, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, v := range snap.ComputeNanos {
		h.compute[k] = time.Duration(v)
	}
	for k, v := range snap.SizeBytes {
		h.size[k] = v
	}
	return nil
}

// Strategy selects how Execute schedules runnable nodes.
type Strategy int

const (
	// Dataflow is dependency-counting scheduling: a node becomes runnable
	// the instant its last parent finishes, and materialization is handed
	// to background writers. The zero value, and the default.
	Dataflow Strategy = iota
	// LevelBarrier is the original wave executor: nodes in the same DAG
	// level run concurrently, a full barrier separates levels, and
	// materialization runs synchronously inside the node's turn. Retained
	// as the reference for equivalence tests and scheduler benchmarks.
	LevelBarrier
)

func (s Strategy) String() string {
	switch s {
	case Dataflow:
		return "dataflow"
	case LevelBarrier:
		return "level-barrier"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Ordering selects how the dataflow scheduler prioritizes simultaneously
// ready nodes. It has no effect under LevelBarrier.
type Ordering int

const (
	// CriticalPath dispatches the ready node with the largest critical-path
	// weight first (heaviest downstream cost path, from dag.CriticalPath
	// over per-node cost estimates: history compute times for compute
	// nodes, store load estimates for load nodes, 1ns for never-seen
	// nodes so structure decides before any cost is measured). Ties break
	// on the smaller ID, so dispatch stays deterministic. The zero value,
	// and the default.
	CriticalPath Ordering = iota
	// MinID dispatches the smallest ready ID first — the original ordering,
	// retained for head-to-head scheduler benchmarks.
	MinID
)

func (o Ordering) String() string {
	switch o {
	case CriticalPath:
		return "critical-path"
	case MinID:
		return "min-id"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// DispatchMode selects how the dataflow scheduler hands ready nodes to its
// worker pool. It has no effect under LevelBarrier.
type DispatchMode int

const (
	// WorkSteal gives every worker a private priority deque: a finishing
	// worker pushes newly-ready children onto its own deque (running the
	// best one directly) with no global lock on the happy path, idle
	// workers steal batches from seeded-randomly probed victims, and a
	// small global overflow queue hands work to parked workers and carries
	// shutdown/cancellation wakeups. The zero value, and the default.
	WorkSteal DispatchMode = iota
	// GlobalHeap is the previous dispatch loop — one shared ready heap
	// behind one mutex — retained for A/B benchmarks: it is the contention
	// baseline the work-stealing numbers are measured against.
	GlobalHeap
)

func (m DispatchMode) String() string {
	switch m {
	case WorkSteal:
		return "worksteal"
	case GlobalHeap:
		return "global-heap"
	default:
		return fmt.Sprintf("DispatchMode(%d)", int(m))
	}
}

// Engine executes plans. Configure once, reuse across iterations.
type Engine struct {
	// Store is the materialization store — the hot tier when Spill is also
	// set; nil disables loads and stores.
	Store *store.Store
	// Spill is the optional cold second-tier store: values the hot tier's
	// budget rejects are admitted here instead of being dropped, loads fall
	// back to it, and cold hits are promoted back into the hot tier
	// (demoting the hot tier's least-recently-used entries). Nil disables
	// tiering; ignored without Store.
	Spill *store.Spill
	// Policy decides online materialization; nil means never materialize.
	Policy opt.MatPolicy
	// Workers bounds node-level parallelism; <=0 means 4.
	Workers int
	// History receives compute-time observations and supplies estimates for
	// nodes not computed this run; nil disables both.
	History *History
	// Sched selects the scheduling strategy; the zero value is Dataflow.
	Sched Strategy
	// Order selects the ready-queue priority of the dataflow scheduler;
	// the zero value is CriticalPath.
	Order Ordering
	// Dispatch selects how the dataflow scheduler hands ready nodes to
	// workers; the zero value is WorkSteal (per-worker deques, lock-light).
	// GlobalHeap retains the single shared ready heap for A/B benchmarks.
	Dispatch DispatchMode
	// Faults is the engine's fault-tolerance policy: per-node attempt
	// budget with exponential backoff for transient operator failures, and
	// an optional per-attempt deadline. The zero value disables both (one
	// attempt, no deadline). Applies to every scheduler and dispatcher, and
	// to lineage recomputes after failed loads.
	Faults FaultPolicy
	// Reweight selects online re-prioritization of the remaining DAG as
	// measured durations diverge from the estimates behind the initial
	// critical-path weights; the zero value is Adaptive. ReweightOff pins
	// the weights computed at the top of Execute for A/B benchmarks. Only
	// meaningful under Dataflow scheduling with CriticalPath ordering.
	Reweight Reweight
	// ReweightInterval overrides the minimum number of node completions
	// between re-prioritization passes; <=0 selects the default (8, scaled
	// up with graph size). Exposed for tests that must force passes.
	ReweightInterval int
	// ReweightMinDivergence overrides the absolute measured-vs-estimated
	// divergence a trigger window must accumulate before a pass runs; <=0
	// selects the default (1ms). Exposed for tests that must force passes.
	ReweightMinDivergence time.Duration
	// MatWriters bounds the background materialization writers of the
	// dataflow scheduler; <=0 means 2.
	MatWriters int
	// ReleaseIntermediates drops a non-output node's value from
	// Result.Values once its last consumer has run, cutting peak memory on
	// wide DAGs (dataflow scheduler only). Off by default, so Result.Values
	// holds every non-pruned node's value.
	ReleaseIntermediates bool
	// Codec selects the value serialization format for this engine's
	// materializations (see store.Codec). The zero value (CodecAuto)
	// resolves to the reflection-free binary codec; CodecGob forces the
	// reflective A/B reference.
	Codec store.Codec
	// Tenant labels every value this engine materializes with an owner
	// (store.Entry.Owner) for per-tenant budget accounting in a shared
	// store. Empty (the default) leaves entries unowned — the single-user
	// CLI behaviour.
	Tenant string
	// SingleFlight consults the shared store's in-flight computation
	// registry before every compute-planned node: one leader computes each
	// signature, concurrent runs of the same signature park and are served
	// the published result (see joinFlight). Off by default — engines that
	// must recompute by contract (reuse-disabled comparator systems) and
	// private single-session stores keep the historical behaviour; the
	// serve layer's shared reuse-enabled sessions turn it on.
	SingleFlight bool
	// InflightWait bounds how long a single-flight waiter parks on another
	// run's in-flight computation before falling back to computing locally
	// (progress always beats dedup); <=0 selects the default (10s).
	InflightWait time.Duration
	// LiveBytes, when non-nil, tracks the serialized-size estimate of the
	// values held in Result.Values while a dataflow Execute runs: sizes are
	// added as values are published (exact entry sizes for loads, history
	// estimates for computes — 0 until a node's size has been learned) and
	// subtracted on release and at the end of the run, so Gauge.Peak is the
	// run's high-water mark of in-memory intermediates.
	LiveBytes *store.Gauge

	// tierView is the engine's tiered view over Store and Spill, built
	// lazily (CAS-guarded, so any caller — including a TierCounters racing
	// the first Execute — converges on one shared view and its counters).
	tierView atomic.Pointer[store.Tiered]

	// Per-engine encode counters by codec actually used. Engine-local (not
	// the store package's process-wide counters) so concurrent engines in
	// one process cannot misattribute each other's encodes in Result.
	gobEncs    atomic.Int64
	binaryEncs atomic.Int64
}

// countEncode attributes one materialization encode to the codec that
// actually produced the bytes.
func (e *Engine) countEncode(c store.Codec) {
	if c == store.CodecBinary {
		e.binaryEncs.Add(1)
	} else {
		e.gobEncs.Add(1)
	}
}

// UseTiers injects a pre-built (typically shared) tiered store view: the
// engine's Store and Spill are re-pointed at the view's tiers and every
// tiered operation — admissions, promotions, pinning, counters — goes
// through the one instance. This is how concurrent sessions share a store
// safely: cross-tier movement serializes on the Tiered's own lock, so two
// sessions over the same directories MUST share one Tiered rather than
// build private views. Call before the first Execute; it must not race an
// in-flight run.
func (e *Engine) UseTiers(t *store.Tiered) {
	e.Store = t.Hot()
	e.Spill = t.Cold()
	e.tierView.Store(t)
}

// tiers returns the engine's tiered store view, building it on first use.
// Safe for concurrent use: the construction races on a compare-and-swap,
// every loser adopts the winner's view, and counters only ever accumulate
// on that single shared instance.
func (e *Engine) tiers() *store.Tiered {
	if t := e.tierView.Load(); t != nil {
		return t
	}
	t := store.NewTiered(e.Store, e.Spill)
	if e.tierView.CompareAndSwap(nil, t) {
		return t
	}
	return e.tierView.Load()
}

// TierCounters snapshots the engine's cumulative cross-tier traffic
// (spills, promotions, evictions) across every Execute so far. Counters
// are all zero without a Spill tier.
func (e *Engine) TierCounters() store.TierCounters {
	if e.Store == nil {
		return store.TierCounters{}
	}
	return e.tiers().Counters()
}

func (e *Engine) workers() int {
	if e.Workers <= 0 {
		return 4
	}
	return e.Workers
}

func (e *Engine) matWriters() int {
	if e.MatWriters <= 0 {
		return 2
	}
	return e.MatWriters
}

// BuildCostModel assembles the recomputation optimizer's inputs for the
// graph: compute costs from history (0 for never-seen nodes — optimistic,
// so new operators are computed, never awaited from a store they are not
// in), and load costs from the store's measured entries. With a spill tier
// attached a key is loadable from either tier, priced at the holding
// tier's own load estimate — a spilled value really is slower to load, and
// the optimizer should sometimes prefer recomputing it.
//
// With a spill tier attached, building the model also refreshes each
// loadable entry's recompute-saving eviction hint from the same history
// costs (compute + ancestor closure), so entries adopted from disk or
// carried across iterations rank honestly in the cold tier's reward-aware
// eviction even though no decideAndPersist stamped them this run.
func (e *Engine) BuildCostModel(g *dag.Graph, tasks []Task) (*opt.CostModel, error) {
	if len(tasks) != g.Len() {
		return nil, fmt.Errorf("exec: %d tasks for %d nodes", len(tasks), g.Len())
	}
	cm := opt.NewCostModel(g.Len())
	loadable := make([]dag.NodeID, 0)
	for i := 0; i < g.Len(); i++ {
		name := g.Node(dag.NodeID(i)).Name
		if e.History != nil {
			if d, ok := e.History.Compute(name); ok {
				cm.Compute[i] = d.Nanoseconds()
			}
		}
		if e.Store != nil && tasks[i].Key != "" {
			if entry, _, ok := e.tiers().Lookup(tasks[i].Key); ok {
				cm.Loadable[i] = true
				cm.Load[i] = entry.LoadCost.Nanoseconds()
				if cm.Load[i] <= 0 {
					cm.Load[i] = 1 // loads are never free
				}
				loadable = append(loadable, dag.NodeID(i))
			}
		}
	}
	if e.Spill != nil && len(loadable) > 0 {
		if anc, err := opt.AncestorComputeCosts(g, cm.Compute); err == nil {
			tv := e.tiers()
			for _, id := range loadable {
				tv.SetHint(tasks[id].Key, store.RewardHint{RecomputeNanos: cm.Compute[id] + anc[id]})
			}
		}
	}
	return cm, nil
}

// UseMaxflowEviction installs the global evict-set planner
// (opt.PlanEvictSet, the min-cut project-selection formulation) on the
// spill tier for the given workflow: when the cold tier must free room, it
// plans the whole evict set at once — sharing recompute chains between
// victims and truncating them at still-stored ancestors — instead of
// ranking entries one by one. Per-node recompute costs are read from the
// engine's History at eviction time, so costs measured earlier in the same
// run are visible. Install after the graph is fixed for the session;
// passing a nil graph removes the planner. Errors if no spill tier is
// attached.
func (e *Engine) UseMaxflowEviction(g *dag.Graph, tasks []Task) error {
	if e.Spill == nil {
		return errors.New("exec: UseMaxflowEviction: no spill tier attached")
	}
	if g == nil {
		e.Spill.SetEvictPlanner(nil)
		return nil
	}
	if len(tasks) != g.Len() {
		return fmt.Errorf("exec: %d tasks for %d nodes", len(tasks), g.Len())
	}
	producer := make(map[string]dag.NodeID, g.Len())
	for i := 0; i < g.Len(); i++ {
		if k := tasks[i].Key; k != "" {
			if _, dup := producer[k]; !dup {
				producer[k] = dag.NodeID(i)
			}
		}
	}
	names := make([]string, g.Len())
	for i := range names {
		names[i] = g.Node(dag.NodeID(i)).Name
	}
	e.Spill.SetEvictPlanner(func(cands []store.Entry, need int64) []string {
		// Runs with the store lock held: read only the engine's history and
		// the snapshot above, never back into the store.
		compute := make([]int64, len(names))
		if e.History != nil {
			for i, name := range names {
				if d, ok := e.History.Compute(name); ok {
					compute[i] = d.Nanoseconds()
				}
			}
		}
		items := make([]opt.EvictCandidate, len(cands))
		for i, c := range cands {
			node, ok := producer[c.Key]
			if !ok {
				node = dag.InvalidNode
			}
			items[i] = opt.EvictCandidate{
				Key:    c.Key,
				Node:   node,
				Size:   c.Size,
				Load:   c.LoadCost.Nanoseconds(),
				Saving: c.Recompute - c.LoadCost.Nanoseconds(),
			}
		}
		keys, err := opt.PlanEvictSet(g, compute, items, need)
		if err != nil {
			return nil // fall back to the greedy per-entry policy
		}
		return keys
	})
	return nil
}

// Execute runs the plan over the graph using the configured scheduling
// strategy. The first node error cancels all not-yet-dispatched work (and,
// through the run context, interrupts in-flight operators that honor their
// ctx); errors from nodes already in flight are collected and joined. The
// returned Result is complete for every node that ran, and the background
// materialization pipeline is flushed — also on error — before Execute
// returns.
func (e *Engine) Execute(g *dag.Graph, tasks []Task, plan *opt.Plan) (*Result, error) {
	return e.ExecuteCtx(context.Background(), g, tasks, plan)
}

// ExecuteCtx is Execute under a caller-supplied context: cancelling ctx
// cancels the run the same way a fatal node error does. The fault policy's
// per-node deadlines nest under it.
func (e *Engine) ExecuteCtx(ctx context.Context, g *dag.Graph, tasks []Task, plan *opt.Plan) (*Result, error) {
	if len(tasks) != g.Len() {
		return nil, fmt.Errorf("exec: %d tasks for %d nodes", len(tasks), g.Len())
	}
	if len(plan.States) != g.Len() {
		return nil, fmt.Errorf("exec: plan has %d states for %d nodes", len(plan.States), g.Len())
	}
	res := &Result{
		Values: make(map[dag.NodeID]any, g.Len()),
		Nodes:  make([]NodeRun, g.Len()),
	}
	for i := 0; i < g.Len(); i++ {
		res.Nodes[i] = NodeRun{Name: g.Node(dag.NodeID(i)).Name, State: plan.States[i]}
	}
	var before store.TierCounters
	if e.Store != nil {
		before = e.tiers().Counters()
	}
	gobBefore, binBefore := e.gobEncs.Load(), e.binaryEncs.Load()
	stats := &faultStats{}
	// Pin every planned-load key before dispatch so the spill tier's
	// within-run eviction cannot delete a value the plan depends on; each
	// pin is released as its load completes, with an end-of-run sweep for
	// error paths. Pointless without a cold tier (the hot tier never
	// deletes destructively), so skipped.
	var pins *pinSet
	if e.Store != nil && e.Spill != nil {
		pins = newPinSet(e.tiers(), tasks, plan)
		defer pins.releaseAll()
	}
	var err error
	if e.Sched == LevelBarrier {
		res, err = e.executeLevelBarrier(ctx, g, tasks, plan, res, stats, pins)
	} else {
		res, err = e.executeDataflow(ctx, g, tasks, plan, res, stats, pins)
	}
	if res != nil {
		res.Retries = stats.retries.Load()
		res.Recomputes = stats.recomputes.Load()
		res.InflightDedupHits = stats.inflightHits.Load()
		res.InflightWaits = stats.inflightWaits.Load()
		res.GobEncodes = e.gobEncs.Load() - gobBefore
		res.BinaryEncodes = e.binaryEncs.Load() - binBefore
	}
	if res != nil && e.Store != nil {
		after := e.tiers().Counters()
		res.Spills = after.Spills - before.Spills
		res.Promotions = after.Promotions - before.Promotions
		res.Evictions = after.Evictions - before.Evictions
		res.CorruptFrames = after.CorruptFrames - before.CorruptFrames
		res.MmapColdReads = after.MmapColdReads - before.MmapColdReads
		res.BufferedColdReads = after.BufferedColdReads - before.BufferedColdReads
		res.TierDisabled = after.BreakerTrips > before.BreakerTrips || e.tiers().TierDisabled()
	}
	return res, err
}

// historySize returns the last observed serialized size for a node name.
func (e *Engine) historySize(name string) (int64, bool) {
	if e.History == nil {
		return 0, false
	}
	return e.History.Size(name)
}

// loadNode is the level-barrier executor's Load state: fetch the value
// from either store tier and record it (under the results lock) with its
// measured load time. A failed load — corrupt frame, read I/O error,
// vanished entry — degrades to a lineage recompute instead of a run
// failure. The dataflow schedulers use runCtx.runNode, which publishes to
// the lock-free slot plane instead.
func (e *Engine) loadNode(ctx context.Context, g *dag.Graph, tasks []Task, plan *opt.Plan, id dag.NodeID, res *Result, mu *sync.Mutex, stats *faultStats, pins *pinSet) error {
	name := g.Node(id).Name
	nodeStart := time.Now()
	if e.Store == nil {
		return fmt.Errorf("exec: plan loads %s but engine has no store", name)
	}
	v, _, err := e.tiers().Get(tasks[id].Key)
	if err != nil {
		rec := &recomputer{e: e, g: g, tasks: tasks, plan: plan, stats: stats}
		if v, err = rec.recoverLoad(ctx, id, err); err != nil {
			return fmt.Errorf("exec: load %s: %w", name, err)
		}
	}
	pins.release(id)
	mu.Lock()
	res.Values[id] = v
	res.Nodes[id].Duration = time.Since(nodeStart)
	mu.Unlock()
	return nil
}

// gatherInputs is the level-barrier executor's input snapshot: the
// parents' values in g.Parents order under the results lock, erroring on
// any parent without a value (a pruned producer the plan should not have
// allowed). The dataflow schedulers use runCtx.gather instead.
func gatherInputs(g *dag.Graph, id dag.NodeID, res *Result, mu *sync.Mutex) ([]any, error) {
	parents := g.Parents(id)
	inputs := make([]any, len(parents))
	mu.Lock()
	defer mu.Unlock()
	for i, p := range parents {
		v, ok := res.Values[p]
		if !ok {
			return nil, fmt.Errorf("exec: %s needs parent %s which has no value", g.Node(id).Name, g.Node(p).Name)
		}
		inputs[i] = v
	}
	return inputs, nil
}

// decideAndPersist is the materialization step shared by both schedulers:
// probe the size (history-preferred, encoding cold nodes once to learn it),
// consult the policy, and persist on a yes — degrading to "not
// materialized" on unencodable values, budget races and I/O failures.
// The value is encoded (Engine.Codec) at most once: a probe encoding is kept and
// handed straight to Store.PutEncoded on a yes, and the pooled buffer is
// released before returning either way.
// ancestorCost is a callback because its snapshot semantics differ per
// scheduler; it is evaluated at most once per decision, and only when the
// policy declares (NeedsAncestorCost) that it reads the term or a spill
// tier is attached (the term doubles as the persisted entry's
// recompute-saving eviction hint) — for cost-insensitive policies without
// a spill tier the O(ancestors) walk under the results lock never happens
// and MatContext carries a zero.
// Callers guarantee Policy and Store are set, key is non-empty and not yet
// stored. Returns the elapsed decision+write time, the serialized size (0
// if never encoded), whether the value was stored, and the policy reward.
func (e *Engine) decideAndPersist(g *dag.Graph, id dag.NodeID, name, key string, v any, computeDur time.Duration, ancestorCost func() int64) (time.Duration, int64, bool, int64) {
	start := time.Now()
	var enc *store.Encoded
	defer func() {
		if enc != nil {
			enc.Release()
		}
	}()
	var size int64
	if e.Policy.NeedsSize() {
		// Prefer the history estimate (same node name, previous iteration)
		// over serializing now: the paper's cost model must stay "cheap to
		// compute", and sizes of a node's results are stable across
		// iterations. Cold nodes are encoded once to learn their size, and
		// that probe encoding is reused for the persist below.
		if hsize, ok := e.historySize(name); ok {
			size = hsize
		} else {
			probe, err := store.EncodeValueWith(e.Codec, v)
			if err != nil {
				// Unencodable values (unregistered types) are simply not
				// materialization candidates.
				return time.Since(start), 0, false, 0
			}
			e.countEncode(probe.Codec())
			enc = probe
			size = enc.Size()
		}
	}
	var ancCost int64
	if e.Policy.NeedsAncestorCost() || e.Spill != nil {
		// With a spill tier the term is needed even by cost-insensitive
		// policies: compute + ancestor cost is the entry's recompute-saving
		// hint, the reward the cold tier's eviction ranks victims by.
		ancCost = ancestorCost()
	}
	// Both terms are tier-aware: the load estimate is priced at the tier
	// the value would land in (the slower cold tier once it would spill),
	// and the remaining budget includes the spill tier's admission
	// capacity, so a policy keeps materializing past the hot budget.
	tv := e.tiers()
	ctx := opt.MatContext{
		Graph:               g,
		Node:                id,
		ComputeCost:         computeDur.Nanoseconds(),
		AncestorComputeCost: ancCost,
		LoadCost:            tv.EstimateLoad(size).Nanoseconds(),
		Size:                size,
		BudgetRemaining:     tv.Remaining(),
	}
	dec := e.Policy.Decide(ctx)
	if !dec.Materialize {
		return time.Since(start), size, false, dec.Reward
	}
	if enc == nil {
		encoded, err := store.EncodeValueWith(e.Codec, v)
		if err != nil {
			return time.Since(start), size, false, dec.Reward
		}
		e.countEncode(encoded.Codec())
		enc = encoded
		size = enc.Size()
	}
	hint := store.RewardHint{RecomputeNanos: computeDur.Nanoseconds() + ancCost, Owner: e.Tenant}
	if _, err := tv.PutEncodedHint(key, enc, hint); err != nil {
		// Budget races (the value fits no tier) and I/O failures degrade to
		// "not materialized"; with a spill tier attached a plain hot-budget
		// rejection lands in the cold tier instead of here.
		return time.Since(start), size, false, dec.Reward
	}
	return time.Since(start), size, true, dec.Reward
}

// ancestorCost is the level-barrier executor's recomputation-chain term:
// the best-known compute costs of the ancestors in closure under a single
// results-lock acquisition — the measured duration when the ancestor
// computed this run, else the history estimate, else zero. syncMat backs
// out the synchronous materialization time the level-barrier Duration
// folds in. The dataflow schedulers use matWriter.ancestorCost, which
// reads the run's atomic duration plane instead (a decision there can
// overlap a still-running ancestor).
func (e *Engine) ancestorCost(closure []dag.NodeID, res *Result, mu *sync.Mutex, syncMat bool) int64 {
	if len(closure) == 0 {
		return 0
	}
	var total int64
	var unknown []string
	mu.Lock()
	for _, a := range closure {
		nr := &res.Nodes[a]
		if nr.State == opt.Compute && nr.Duration > 0 {
			d := nr.Duration
			if syncMat {
				d -= nr.MatDuration
			}
			total += d.Nanoseconds()
			continue
		}
		unknown = append(unknown, nr.Name)
	}
	mu.Unlock()
	if e.History != nil {
		for _, d := range e.History.ComputeMany(unknown) {
			total += d.Nanoseconds()
		}
	}
	return total
}
