package exec

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// materializedCount tallies nodes the run persisted.
func materializedCount(res *Result) int {
	n := 0
	for _, nr := range res.Nodes {
		if nr.Materialized {
			n++
		}
	}
	return n
}

// TestEncodeOncePerMaterializedValue is the encode-once acceptance check:
// across both dataflow dispatch modes and the level-barrier reference,
// with cold history (so the size probe must serialize), the store codec
// performs exactly one gob encode per materialized value — the probe
// encoding is threaded through to the persist instead of re-encoding.
// Asserted via the instrumented codec counter.
func TestEncodeOncePerMaterializedValue(t *testing.T) {
	configs := []struct {
		name  string
		sched Strategy
		mode  DispatchMode
	}{
		{"worksteal", Dataflow, WorkSteal},
		{"global-heap", Dataflow, GlobalHeap},
		{"level-barrier", LevelBarrier, WorkSteal},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			g, tasks := buildChain(t)
			// Fresh keys per config so every value is a materialization
			// candidate.
			for i := range tasks {
				tasks[i].Key = fmt.Sprintf("enc-once-%s-%d", tc.name, i)
			}
			st, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			e := &Engine{Workers: 4, Sched: tc.sched, Dispatch: tc.mode, Store: st, Policy: opt.MaterializeAll{}}
			before := store.EncodeCalls()
			res, err := e.Execute(g, tasks, allCompute(g.Len()))
			if err != nil {
				t.Fatal(err)
			}
			encodes := store.EncodeCalls() - before
			mat := materializedCount(res)
			if mat != g.Len() {
				t.Fatalf("materialized %d of %d nodes", mat, g.Len())
			}
			if encodes != int64(mat) {
				t.Errorf("%d gob encodes for %d materialized values, want exactly one each", encodes, mat)
			}
		})
	}
}

// TestEncodeOnceWarmHistory: with sizes already learned, the decision uses
// the history estimate and the single encode happens at persist time —
// still exactly one per materialized value.
func TestEncodeOnceWarmHistory(t *testing.T) {
	g, tasks := buildChain(t)
	for i := range tasks {
		tasks[i].Key = fmt.Sprintf("enc-warm-%d", i)
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistory()
	for _, name := range []string{"a", "b", "c"} {
		h.ObserveSize(name, 32)
	}
	e := &Engine{Workers: 2, Store: st, Policy: opt.MaterializeAll{}, History: h}
	before := store.EncodeCalls()
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	encodes := store.EncodeCalls() - before
	if mat := materializedCount(res); encodes != int64(mat) {
		t.Errorf("%d gob encodes for %d materialized values under warm history", encodes, mat)
	}
}

// TestMatWriterDedupesInFlightKeys: two nodes sharing one result signature
// must not race to double-write — the second submission is dropped while
// the first is still in flight, so the value is encoded and persisted once
// and the budget is charged once.
func TestMatWriterDedupesInFlightKeys(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	join := g.MustAddNode("join", "agg")
	g.MustAddEdge(a, join)
	g.MustAddEdge(b, join)
	g.Node(join).Output = true
	// a and b produce the identical value under the identical key — the
	// shared-subcomputation case content addressing creates.
	tasks := []Task{
		{Key: "shared-key", Run: func(context.Context, []any) (any, error) { return "same", nil }},
		{Key: "shared-key", Run: func(context.Context, []any) (any, error) { return "same", nil }},
		{Key: "kjoin", Run: func(_ context.Context, in []any) (any, error) { return in[0].(string) + in[1].(string), nil }},
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 4, Store: st, Policy: opt.MaterializeAll{}}
	before := store.EncodeCalls()
	if _, err := e.Execute(g, tasks, allCompute(g.Len())); err != nil {
		t.Fatal(err)
	}
	if !st.Has("shared-key") || !st.Has("kjoin") {
		t.Fatal("expected both keys persisted")
	}
	// One encode for the shared key, one for the join.
	if encodes := store.EncodeCalls() - before; encodes != 2 {
		t.Errorf("%d gob encodes, want 2 (shared key submitted once)", encodes)
	}
	entry, _ := st.Lookup("shared-key")
	if st.Used() != entry.Size+mustLookupSize(t, st, "kjoin") {
		t.Errorf("store used %d bytes: shared key double-charged (entry %d)", st.Used(), entry.Size)
	}
}

// TestAncestorCostOverlapsRunningAncestor pins the interleaving where a
// cost-sensitive policy's ancestor walk runs while an ancestor is still
// computing: compute A → load L → compute X, so X is dispatched the moment
// L's load returns and its materialization decision (OnlineHeuristic reads
// the recomputation-chain term) overlaps A's compute. The walk must read
// the atomic duration plane — under -race this test is the regression
// guard for the res.Nodes Duration race — and fall back to the history
// estimate for the still-running ancestor.
func TestAncestorCostOverlapsRunningAncestor(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("slow-anc", "op")
	l := g.MustAddNode("cut", "op")
	x := g.MustAddNode("x", "op")
	g.MustAddEdge(a, l)
	g.MustAddEdge(l, x)
	g.Node(a).Output = true
	g.Node(x).Output = true
	tasks := []Task{
		{Key: "anc-a", Run: func(context.Context, []any) (any, error) {
			time.Sleep(30 * time.Millisecond)
			return 1, nil
		}},
		{Key: "anc-l", Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) + 1, nil }},
		{Key: "anc-x", Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) * 2, nil }},
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("anc-l", 2); err != nil {
		t.Fatal(err)
	}
	plan := allCompute(3)
	plan.States[l] = opt.Load
	e := &Engine{Workers: 2, Store: st, Policy: opt.OnlineHeuristic{}}
	res, err := e.Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values[x]; v.(int) != 4 {
		t.Errorf("x = %v, want 4", v)
	}
	if res.Nodes[a].Duration < 30*time.Millisecond {
		t.Errorf("ancestor duration %v not recorded post-join", res.Nodes[a].Duration)
	}
}

func mustLookupSize(t *testing.T, st *store.Store, key string) int64 {
	t.Helper()
	e, ok := st.Lookup(key)
	if !ok {
		t.Fatalf("key %s missing", key)
	}
	return e.Size
}
