package exec

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// orderedDAG builds a single-worker ordering probe: root feeds a cheap
// 4-node chain (low IDs) and one straggler (highest ID, so min-ID always
// runs it last among the ready set). Tasks record their dispatch order.
func orderedDAG() (*dag.Graph, []Task, *[]string, *sync.Mutex) {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	var order []string
	var mu sync.Mutex
	logRun := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	task := func(name string) Task {
		return Task{Run: func(context.Context, []any) (any, error) {
			logRun(name)
			return 0, nil
		}}
	}
	tasks := []Task{task("root")}
	prev := root
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("c%d", i)
		id := g.MustAddNode(name, "op")
		g.MustAddEdge(prev, id)
		tasks = append(tasks, task(name))
		prev = id
	}
	g.Node(prev).Output = true
	straggler := g.MustAddNode("straggler", "learner")
	g.MustAddEdge(root, straggler)
	g.Node(straggler).Output = true
	tasks = append(tasks, task("straggler"))
	return g, tasks, &order, &mu
}

// TestCriticalPathUsesHistoryCosts is the cost-awareness property: once
// history knows the straggler is expensive, critical-path ordering
// dispatches it before the structurally deeper but cheap chain, while
// min-ID keeps burying it behind the lower-ID chain nodes.
func TestCriticalPathUsesHistoryCosts(t *testing.T) {
	for _, tc := range []struct {
		order Ordering
		next  string // node dispatched right after root
	}{
		{CriticalPath, "straggler"},
		{MinID, "c0"},
	} {
		g, tasks, order, mu := orderedDAG()
		h := NewHistory()
		h.ObserveCompute("straggler", 80*time.Millisecond, 0)
		e := &Engine{Workers: 1, Order: tc.order, History: h}
		if _, err := e.Execute(g, tasks, allCompute(g.Len())); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got := append([]string(nil), (*order)...)
		mu.Unlock()
		if len(got) < 2 || got[0] != "root" || got[1] != tc.next {
			t.Errorf("%v dispatch order = %v, want root then %s", tc.order, got, tc.next)
		}
	}
}

// TestCriticalPathTieBreakDeterministic: with no history every node costs
// the same, so among equal-weight ready nodes the smaller ID must win —
// repeatedly, so single-worker dispatch is a pure function of the graph.
func TestCriticalPathTieBreakDeterministic(t *testing.T) {
	build := func() (*dag.Graph, []Task, *[]dag.NodeID, *sync.Mutex) {
		g := dag.New()
		root := g.MustAddNode("root", "scan")
		var order []dag.NodeID
		var mu sync.Mutex
		task := func(id dag.NodeID) Task {
			return Task{Run: func(context.Context, []any) (any, error) {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				return 0, nil
			}}
		}
		tasks := []Task{task(root)}
		for i := 0; i < 8; i++ {
			id := g.MustAddNode(fmt.Sprintf("leaf%d", i), "op")
			g.MustAddEdge(root, id)
			g.Node(id).Output = true
			tasks = append(tasks, task(id))
		}
		return g, tasks, &order, &mu
	}
	var first []dag.NodeID
	for run := 0; run < 3; run++ {
		g, tasks, order, mu := build()
		e := &Engine{Workers: 1, Order: CriticalPath}
		if _, err := e.Execute(g, tasks, allCompute(g.Len())); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got := append([]dag.NodeID(nil), (*order)...)
		mu.Unlock()
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("run %d: equal-weight dispatch not in ascending ID order: %v", run, got)
			}
		}
		if run == 0 {
			first = got
		} else if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d dispatch order %v differs from first run %v", run, got, first)
		}
	}
}

// TestDecideAndPersistAncestorWalkGated instruments the ancestor-cost
// callback and checks the NeedsAncestorCost contract end to end: policies
// that declare the term unread never trigger the walk, policies that read
// it trigger it exactly once per decision.
func TestDecideAndPersistAncestorWalkGated(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		policy    opt.MatPolicy
		wantWalks int
	}{
		{opt.MaterializeAll{}, 0},
		{opt.MaterializeNone{}, 0},
		{opt.OnlineHeuristic{}, 1},
	} {
		e := &Engine{Store: st, Policy: tc.policy}
		walks := 0
		key := fmt.Sprintf("k-%s", tc.policy.Name())
		e.decideAndPersist(g, a, "a", key, "v", time.Millisecond, func() int64 {
			walks++
			return 0
		})
		if walks != tc.wantWalks {
			t.Errorf("%s: ancestor walk ran %d times, want %d", tc.policy.Name(), walks, tc.wantWalks)
		}
	}
}

// TestDataflowSkipsClosurePrecompute: with a cost-insensitive policy the
// matwriter must not precompute ancestor closures at all — the
// decideAndPersist gate makes the nil slice safe, and decisions still
// happen (the budget-only policy materializes everything).
func TestDataflowSkipsClosurePrecompute(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if !nr.Materialized {
			t.Errorf("node %d not materialized under gated closures: %+v", i, nr)
		}
	}
}

// TestLiveBytesGauge pins the gauge accounting on a single-worker chain
// with known sizes: a and b overlap (peak = both) until b's completion
// releases a, c never coexists with a, and the end-of-run settlement
// returns Live to zero while Peak survives.
func TestLiveBytesGauge(t *testing.T) {
	g, tasks := buildChain(t) // a -> b -> c, c output
	h := NewHistory()
	h.ObserveSize("a", 100)
	h.ObserveSize("b", 50)
	h.ObserveSize("c", 25)
	var gauge store.Gauge
	e := &Engine{Workers: 1, History: h, LiveBytes: &gauge, ReleaseIntermediates: true}
	if _, err := e.Execute(g, tasks, allCompute(3)); err != nil {
		t.Fatal(err)
	}
	if gauge.Peak() != 150 {
		t.Errorf("release-on peak = %d, want 150 (a+b coexist, a released before c)", gauge.Peak())
	}
	if gauge.Live() != 0 {
		t.Errorf("live = %d after run, want 0 after settlement", gauge.Live())
	}

	gauge.Reset()
	e.ReleaseIntermediates = false
	if _, err := e.Execute(g, tasks, allCompute(3)); err != nil {
		t.Fatal(err)
	}
	if gauge.Peak() != 175 {
		t.Errorf("release-off peak = %d, want 175 (all values retained)", gauge.Peak())
	}
	if gauge.Live() != 0 {
		t.Errorf("live = %d after run, want 0 after settlement", gauge.Live())
	}
}

// TestLiveBytesGaugeCountsLoads: loaded values are charged their exact
// stored size, not a history estimate.
func TestLiveBytesGaugeCountsLoads(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("kb", "ab"); err != nil {
		t.Fatal(err)
	}
	entry, _ := st.Lookup("kb")
	plan := allCompute(3)
	plan.States[0] = opt.Prune
	plan.States[1] = opt.Load
	var gauge store.Gauge
	e := &Engine{Store: st, LiveBytes: &gauge}
	if _, err := e.Execute(g, tasks, plan); err != nil {
		t.Fatal(err)
	}
	if gauge.Peak() < entry.Size {
		t.Errorf("peak = %d, want at least the loaded entry's %d bytes", gauge.Peak(), entry.Size)
	}
	if gauge.Live() != 0 {
		t.Errorf("live = %d after run, want 0", gauge.Live())
	}
}
