package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// sfChain builds a->b->c whose tasks count invocations in the shared
// counters slice — the probe every single-flight test asserts on: under
// dedup, each unique key's operator runs exactly once across ALL engines.
func sfChain(counters []*atomic.Int64) (*dag.Graph, []Task) {
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	c := g.MustAddNode("c", "learner")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.Node(c).Output = true
	tasks := []Task{
		{Key: "sf-ka", Run: func(context.Context, []any) (any, error) {
			counters[0].Add(1)
			return "a", nil
		}},
		{Key: "sf-kb", Run: func(_ context.Context, in []any) (any, error) {
			counters[1].Add(1)
			return in[0].(string) + "b", nil
		}},
		{Key: "sf-kc", Run: func(_ context.Context, in []any) (any, error) {
			counters[2].Add(1)
			return in[0].(string) + "c", nil
		}},
	}
	return g, tasks
}

func sfEngine(t *testing.T, tv *store.Tiered, sched Strategy) *Engine {
	t.Helper()
	e := &Engine{
		Workers:      2,
		Store:        tv.Hot(),
		Policy:       opt.MaterializeAll{},
		Sched:        sched,
		SingleFlight: true,
	}
	e.UseTiers(tv)
	return e
}

// TestConcurrentEnginesSingleFlight runs N engines over one shared store
// executing the identical all-compute plan concurrently and asserts the
// exactly-once contract: each unique signature's operator runs once across
// the fleet, every other compute-planned node is served by the registry,
// and all runs end with identical output values. Exercised under both
// schedulers; run with -race in CI.
func TestConcurrentEnginesSingleFlight(t *testing.T) {
	for _, sched := range []Strategy{Dataflow, LevelBarrier} {
		name := "dataflow"
		if sched == LevelBarrier {
			name = "levelbarrier"
		}
		t.Run(name, func(t *testing.T) {
			hot, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			tv := store.NewTiered(hot, nil)
			counters := []*atomic.Int64{{}, {}, {}}
			g, tasks := sfChain(counters)
			plan := allCompute(3)

			const n = 4
			results := make([]*Result, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					e := sfEngine(t, tv, sched)
					results[i], errs[i] = e.Execute(g, tasks, plan)
				}(i)
			}
			wg.Wait()

			var total, hits, waits int64
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("run %d: %v", i, errs[i])
				}
				v, ok := results[i].Value(g, "c")
				if !ok || v.(string) != "abc" {
					t.Fatalf("run %d output = %v, %v; want abc", i, v, ok)
				}
				hits += results[i].InflightDedupHits
				waits += results[i].InflightWaits
			}
			for node, c := range counters {
				got := c.Load()
				total += got
				if got != 1 {
					t.Errorf("node %d operator ran %d times, want exactly 1", node, got)
				}
			}
			// The verification identity: summed over runs, computed-planned
			// nodes minus dedup hits equals the unique signature count.
			unique := int64(len(counters))
			if computed := int64(n) * unique; computed-hits != unique {
				t.Errorf("computed %d - hits %d = %d, want unique count %d",
					computed, hits, computed-hits, unique)
			}
			if hits != int64(n-1)*unique {
				t.Errorf("inflight dedup hits = %d, want %d", hits, int64(n-1)*unique)
			}
			if waits > hits {
				t.Errorf("inflight waits %d exceed hits %d: some waiter fell back to compute", waits, hits)
			}
			t.Logf("total ops %d, hits %d, waits %d", total, hits, waits)
		})
	}
}

// TestSingleFlightWaiterTimeoutFallsBack parks a waiter behind a leader
// that never finishes inside the bound and asserts the waiter computes
// locally — progress beats dedup.
func TestSingleFlightWaiterTimeoutFallsBack(t *testing.T) {
	hot, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tv := store.NewTiered(hot, nil)

	release := make(chan struct{})
	g := dag.New()
	id := g.MustAddNode("slow", "scan")
	g.Node(id).Output = true
	blocking := []Task{{Key: "sf-slow", Run: func(context.Context, []any) (any, error) {
		<-release
		return "leader", nil
	}}}
	fast := []Task{{Key: "sf-slow", Run: func(context.Context, []any) (any, error) {
		return "waiter", nil
	}}}
	plan := allCompute(1)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		e := sfEngine(t, tv, Dataflow)
		if _, err := e.Execute(g, blocking, plan); err != nil {
			t.Errorf("leader run: %v", err)
		}
	}()
	waitInflight(t, tv, 1)

	w := sfEngine(t, tv, Dataflow)
	w.InflightWait = 5 * time.Millisecond
	res, err := w.Execute(g, fast, plan)
	if err != nil {
		t.Fatalf("waiter run: %v", err)
	}
	if v, _ := res.Value(g, "slow"); v.(string) != "waiter" {
		t.Fatalf("waiter value = %v, want its own local compute", v)
	}
	if res.InflightWaits != 1 || res.InflightDedupHits != 0 {
		t.Fatalf("waits=%d hits=%d, want 1 wait and 0 hits", res.InflightWaits, res.InflightDedupHits)
	}
	close(release)
	<-leaderDone
}

// TestSingleFlightLeaderFailureHandsOff kills the computing leader once a
// waiter is parked and asserts the waiter is handed leadership, recomputes,
// and succeeds — the failed run errors, the surviving run's output is the
// value a solo run would produce.
func TestSingleFlightLeaderFailureHandsOff(t *testing.T) {
	for _, sched := range []Strategy{Dataflow, LevelBarrier} {
		name := "dataflow"
		if sched == LevelBarrier {
			name = "levelbarrier"
		}
		t.Run(name, func(t *testing.T) {
			hot, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			tv := store.NewTiered(hot, nil)

			g := dag.New()
			id := g.MustAddNode("fragile", "scan")
			g.Node(id).Output = true
			// The doomed leader spins until a waiter parks, then dies — the
			// deterministic seeded-fault version of a crash mid-node.
			doomed := []Task{{Key: "sf-fragile", Run: func(ctx context.Context, _ []any) (any, error) {
				deadline := time.Now().Add(5 * time.Second)
				for tv.InflightWaiters("sf-fragile") == 0 {
					if time.Now().After(deadline) {
						return nil, errors.New("no waiter ever parked")
					}
					time.Sleep(100 * time.Microsecond)
				}
				return nil, errors.New("leader killed mid-node")
			}}}
			survivor := []Task{{Key: "sf-fragile", Run: func(context.Context, []any) (any, error) {
				return "recovered", nil
			}}}
			plan := allCompute(1)

			leaderErr := make(chan error, 1)
			go func() {
				e := sfEngine(t, tv, sched)
				_, err := e.Execute(g, doomed, plan)
				leaderErr <- err
			}()
			waitInflight(t, tv, 1)

			w := sfEngine(t, tv, sched)
			res, err := w.Execute(g, survivor, plan)
			if err != nil {
				t.Fatalf("surviving run: %v", err)
			}
			if v, _ := res.Value(g, "fragile"); v.(string) != "recovered" {
				t.Fatalf("survivor value = %v, want recovered", v)
			}
			if res.InflightWaits != 1 {
				t.Fatalf("survivor waits = %d, want 1 (parked then handed leadership)", res.InflightWaits)
			}
			if err := <-leaderErr; err == nil {
				t.Fatal("doomed leader run succeeded, want error")
			}
			if n := tv.InflightComputes(); n != 0 {
				t.Fatalf("%d flights still registered after both runs ended", n)
			}
		})
	}
}

// TestSingleFlightDisabledByDefault: the zero-value engine must never touch
// the registry — every run computes everything, exactly the pre-dedup
// semantics reuse-disabled comparator systems contract on.
func TestSingleFlightDisabledByDefault(t *testing.T) {
	hot, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tv := store.NewTiered(hot, nil)
	counters := []*atomic.Int64{{}, {}, {}}
	g, tasks := sfChain(counters)
	plan := allCompute(3)

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := &Engine{Workers: 2, Store: hot, Policy: opt.MaterializeNone{}}
			e.UseTiers(tv)
			if _, err := e.Execute(g, tasks, plan); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}
	wg.Wait()
	for node, c := range counters {
		if got := c.Load(); got != n {
			t.Errorf("node %d ran %d times, want %d (no dedup without SingleFlight)", node, got, n)
		}
	}
}

// waitInflight polls until the registry holds n flights.
func waitInflight(t *testing.T, tv *store.Tiered, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tv.InflightComputes() != n {
		if time.Now().After(deadline) {
			t.Fatalf("registry never reached %d in-flight computations", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
