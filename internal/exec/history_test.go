package exec

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestHistorySaveLoadRoundTrip(t *testing.T) {
	h := NewHistory()
	h.ObserveCompute("scan", 120*time.Millisecond, 4096)
	h.ObserveCompute("model", 30*time.Millisecond, 512)
	path := filepath.Join(t.TempDir(), "history.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory()
	if err := h2.Load(path); err != nil {
		t.Fatal(err)
	}
	d, ok := h2.Compute("scan")
	if !ok || d != 120*time.Millisecond {
		t.Errorf("compute(scan) = %v, %v", d, ok)
	}
	sz, ok := h2.Size("model")
	if !ok || sz != 512 {
		t.Errorf("size(model) = %d, %v", sz, ok)
	}
}

func TestHistoryLoadMissingFileIsNoop(t *testing.T) {
	h := NewHistory()
	if err := h.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Errorf("missing file errored: %v", err)
	}
}

func TestHistoryLoadCorruptFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewHistory().Load(path); err == nil {
		t.Error("corrupt history accepted")
	}
}

func TestHistoryLoadMerges(t *testing.T) {
	// Loading on top of live observations keeps the newer local values for
	// keys present in both? No: Load overwrites with the snapshot, by
	// design — a session loads before running anything, and later
	// observations then overwrite. Verify the merge semantics explicitly.
	h := NewHistory()
	h.ObserveCompute("a", time.Second, 1)
	path := filepath.Join(t.TempDir(), "h.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory()
	h2.ObserveCompute("b", 2*time.Second, 2)
	if err := h2.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Compute("a"); !ok {
		t.Error("loaded key missing")
	}
	if _, ok := h2.Compute("b"); !ok {
		t.Error("pre-existing key clobbered")
	}
}

func TestHistorySaveAtomic(t *testing.T) {
	// Save must not leave a .tmp file behind.
	h := NewHistory()
	h.ObserveCompute("x", time.Millisecond, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "h.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "h.json" {
		t.Errorf("unexpected files: %v", entries)
	}
}
