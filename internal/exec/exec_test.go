package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

func init() {
	store.Register("")
	store.Register(0)
	store.Register([]byte{})
}

// buildChain returns a->b->c with c output, plus tasks that concatenate
// their input with the node name.
func buildChain(t *testing.T) (*dag.Graph, []Task) {
	t.Helper()
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	c := g.MustAddNode("c", "learner")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.Node(c).Output = true
	tasks := []Task{
		{Key: "ka", Run: func(context.Context, []any) (any, error) { return "a", nil }},
		{Key: "kb", Run: func(_ context.Context, in []any) (any, error) { return in[0].(string) + "b", nil }},
		{Key: "kc", Run: func(_ context.Context, in []any) (any, error) { return in[0].(string) + "c", nil }},
	}
	return g, tasks
}

func allCompute(n int) *opt.Plan {
	states := make([]opt.State, n)
	for i := range states {
		states[i] = opt.Compute
	}
	return &opt.Plan{States: states}
}

func TestExecuteComputeChain(t *testing.T) {
	g, tasks := buildChain(t)
	e := &Engine{}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Value(g, "c")
	if !ok || v.(string) != "abc" {
		t.Errorf("c = %v, %v", v, ok)
	}
	if res.Wall <= 0 {
		t.Error("wall time not measured")
	}
	for i, nr := range res.Nodes {
		if nr.State != opt.Compute {
			t.Errorf("node %d state %v", i, nr.State)
		}
	}
}

func TestExecutePrunedNodesSkipped(t *testing.T) {
	g, tasks := buildChain(t)
	dead := g.MustAddNode("dead", "x")
	g.MustAddEdge(g.Lookup("a"), dead)
	ran := int32(0)
	tasks = append(tasks, Task{Key: "kd", Run: func(context.Context, []any) (any, error) {
		atomic.AddInt32(&ran, 1)
		return "dead", nil
	}})
	plan := allCompute(4)
	plan.States[dead] = opt.Prune
	e := &Engine{}
	res, err := e.Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Error("pruned node executed")
	}
	if _, ok := res.Values[dead]; ok {
		t.Error("pruned node has a value")
	}
}

func TestExecuteLoadFromStore(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("kb", "ab"); err != nil {
		t.Fatal(err)
	}
	plan := allCompute(3)
	plan.States[0] = opt.Prune
	plan.States[1] = opt.Load
	ranA := int32(0)
	tasks[0].Run = func(context.Context, []any) (any, error) { atomic.AddInt32(&ranA, 1); return "a", nil }
	e := &Engine{Store: st}
	res, err := e.Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if ranA != 0 {
		t.Error("pruned ancestor executed")
	}
	v, _ := res.Value(g, "c")
	if v.(string) != "abc" {
		t.Errorf("c = %v", v)
	}
	if res.Nodes[1].State != opt.Load || res.Nodes[1].Duration <= 0 {
		t.Errorf("load accounting wrong: %+v", res.Nodes[1])
	}
}

func TestExecuteLoadWithoutStore(t *testing.T) {
	g, tasks := buildChain(t)
	plan := allCompute(3)
	plan.States[0] = opt.Load
	e := &Engine{}
	if _, err := e.Execute(g, tasks, plan); err == nil {
		t.Fatal("load without store accepted")
	}
}

func TestExecutePropagatesOperatorError(t *testing.T) {
	g, tasks := buildChain(t)
	boom := errors.New("boom")
	tasks[1].Run = func(context.Context, []any) (any, error) { return nil, boom }
	e := &Engine{}
	_, err := e.Execute(g, tasks, allCompute(3))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "b") {
		t.Errorf("error does not name the failing node: %v", err)
	}
}

func TestExecuteValidation(t *testing.T) {
	g, tasks := buildChain(t)
	e := &Engine{}
	if _, err := e.Execute(g, tasks[:1], allCompute(3)); err == nil {
		t.Error("mis-sized tasks accepted")
	}
	if _, err := e.Execute(g, tasks, allCompute(1)); err == nil {
		t.Error("mis-sized plan accepted")
	}
	tasks[2].Run = nil
	if _, err := e.Execute(g, tasks, allCompute(3)); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestExecuteMaterializesWithPolicy(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if !nr.Materialized {
			t.Errorf("node %d not materialized: %+v", i, nr)
		}
		if nr.Size <= 0 {
			t.Errorf("node %d size not recorded", i)
		}
	}
	if !st.Has("ka") || !st.Has("kb") || !st.Has("kc") {
		t.Error("store missing materialized keys")
	}
	// Values round-trip.
	v, err := st.Get("kc")
	if err != nil || v.(string) != "abc" {
		t.Errorf("stored value = %v, %v", v, err)
	}
}

func TestExecuteMaterializeNoneSkipsEncoding(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeNone{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if nr.Materialized || nr.Size != 0 {
			t.Errorf("node %d: %+v", i, nr)
		}
	}
	if len(st.Entries()) != 0 {
		t.Error("materialize-none stored entries")
	}
}

func TestExecuteSkipsAlreadyStoredKeys(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("kb", "stale"); err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].Materialized {
		t.Error("re-materialized an existing key")
	}
	// Content addressing means the existing value is identical in real use;
	// the engine must not overwrite.
	v, err := st.Get("kb")
	if err != nil || v.(string) != "stale" {
		t.Errorf("overwrote existing entry: %v", v)
	}
}

func TestExecuteUnencodableValueNotMaterialized(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	type unregistered struct{ X int }
	tasks[0].Run = func(context.Context, []any) (any, error) { return unregistered{1}, nil }
	tasks[1].Run = func(_ context.Context, in []any) (any, error) { return "b", nil }
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].Materialized {
		t.Error("unencodable value materialized")
	}
	if !res.Nodes[1].Materialized {
		t.Error("encodable sibling not materialized")
	}
}

func TestExecuteBudgetExhaustionDegrades(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 2) // too small for any gob value
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if nr.Materialized {
			t.Errorf("node %d materialized over budget", i)
		}
	}
	if _, ok := res.Value(g, "c"); !ok {
		t.Error("execution did not complete despite budget exhaustion")
	}
}

func TestExecuteParallelLevels(t *testing.T) {
	// A wide level of slow nodes should run concurrently: with 8 workers,
	// 8 nodes sleeping 30ms each must finish well under 8*30ms.
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []Task{{Run: func(context.Context, []any) (any, error) { return 0, nil }}}
	for i := 0; i < 8; i++ {
		id := g.MustAddNode(fmt.Sprintf("w%d", i), "x")
		g.MustAddEdge(root, id)
		g.Node(id).Output = true
		tasks = append(tasks, Task{Run: func(context.Context, []any) (any, error) {
			time.Sleep(30 * time.Millisecond)
			return 0, nil
		}})
	}
	e := &Engine{Workers: 8}
	start := time.Now()
	if _, err := e.Execute(g, tasks, allCompute(9)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("level not parallel: took %v", elapsed)
	}
}

func TestExecuteWorkerLimitRespected(t *testing.T) {
	g := dag.New()
	var cur, peak int32
	var tasks []Task
	for i := 0; i < 6; i++ {
		id := g.MustAddNode(fmt.Sprintf("n%d", i), "x")
		g.Node(id).Output = true
		tasks = append(tasks, Task{Run: func(context.Context, []any) (any, error) {
			c := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			atomic.AddInt32(&cur, -1)
			return 0, nil
		}})
	}
	e := &Engine{Workers: 2}
	if _, err := e.Execute(g, tasks, allCompute(6)); err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Errorf("peak concurrency %d > 2", peak)
	}
}

func TestHistoryObserveAndEstimate(t *testing.T) {
	h := NewHistory()
	if _, ok := h.Compute("x"); ok {
		t.Error("phantom history")
	}
	h.ObserveCompute("x", 5*time.Millisecond, 100)
	d, ok := h.Compute("x")
	if !ok || d != 5*time.Millisecond {
		t.Errorf("compute = %v, %v", d, ok)
	}
	s, ok := h.Size("x")
	if !ok || s != 100 {
		t.Errorf("size = %d, %v", s, ok)
	}
	// Zero size is not recorded.
	h.ObserveCompute("y", time.Millisecond, 0)
	if _, ok := h.Size("y"); ok {
		t.Error("zero size recorded")
	}
}

func TestBuildCostModel(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("kb", "cached"); err != nil {
		t.Fatal(err)
	}
	h := NewHistory()
	h.ObserveCompute("a", 7*time.Millisecond, 10)
	e := &Engine{Store: st, History: h}
	cm, err := e.BuildCostModel(g, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Compute[0] != (7 * time.Millisecond).Nanoseconds() {
		t.Errorf("compute[0] = %d", cm.Compute[0])
	}
	if cm.Compute[1] != 0 {
		t.Errorf("unseen node compute = %d, want 0", cm.Compute[1])
	}
	if !cm.Loadable[1] || cm.Load[1] <= 0 {
		t.Errorf("stored node not loadable: %+v", cm)
	}
	if cm.Loadable[0] || cm.Loadable[2] {
		t.Error("phantom loadable")
	}
	if _, err := e.BuildCostModel(g, tasks[:1]); err == nil {
		t.Error("mis-sized tasks accepted")
	}
}

func TestEngineEndToEndReuse(t *testing.T) {
	// Iteration 1: compute all, materialize all. Iteration 2: optimizer
	// should load instead of recompute, skipping the slow operator.
	g, tasks := buildChain(t)
	slowRan := int32(0)
	tasks[1].Run = func(_ context.Context, in []any) (any, error) {
		atomic.AddInt32(&slowRan, 1)
		time.Sleep(20 * time.Millisecond)
		return in[0].(string) + "b", nil
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistory()
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}, History: h}

	cm1, err := e.BuildCostModel(g, tasks)
	if err != nil {
		t.Fatal(err)
	}
	plan1, err := opt.Optimal(g, cm1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(g, tasks, plan1); err != nil {
		t.Fatal(err)
	}
	if slowRan != 1 {
		t.Fatalf("iteration 1 should compute the slow node once, ran %d", slowRan)
	}

	// Iteration 2: same workflow (same keys).
	cm2, err := e.BuildCostModel(g, tasks)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := opt.Optimal(g, cm2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.Execute(g, tasks, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if slowRan != 1 {
		t.Errorf("iteration 2 recomputed the slow node (ran %d times total)", slowRan)
	}
	v, _ := res2.Value(g, "c")
	if v == nil {
		// c may itself be loaded rather than recomputed — either way the
		// output value must exist.
		t.Error("output missing in iteration 2")
	}
}
