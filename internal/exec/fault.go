package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dag"
)

// ErrTransient marks an operator failure as retryable. Operators wrap (or
// return) it for failures that a fresh attempt can plausibly clear — a
// flaky data source, a lost connection — and the engine's fault policy
// retries the node in place on the same worker instead of cancelling the
// run. The default classifier treats everything else (except a per-node
// deadline expiry) as fatal.
var ErrTransient = errors.New("transient fault")

// ErrorClass is a fault classifier's verdict on one operator error.
type ErrorClass int

const (
	// ClassFatal aborts the run: the existing first-error cancellation
	// stops all not-yet-dispatched work. The zero value.
	ClassFatal ErrorClass = iota
	// ClassTransient retries the node in place, up to the policy's attempt
	// budget, with exponential backoff between attempts.
	ClassTransient
)

// ClassifyDefault is the fault classification used when FaultPolicy.Classify
// is nil: ErrTransient-wrapped errors and per-node deadline expiries are
// transient, everything else is fatal.
func ClassifyDefault(err error) ErrorClass {
	if errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded) {
		return ClassTransient
	}
	return ClassFatal
}

// Backoff defaults: short enough that a handful of retries costs less than
// a typical node, long enough apart to ride out a blip.
const (
	defaultBaseBackoff = 200 * time.Microsecond
	defaultMaxBackoff  = 20 * time.Millisecond
)

// FaultPolicy tunes the engine's fault tolerance for operator execution.
// The zero value disables everything: one attempt, no deadline — exactly
// the pre-fault-tolerance behavior.
type FaultPolicy struct {
	// MaxAttempts is the per-node attempt budget; <=1 disables retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. <=0 selects the default (200µs).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. <=0 selects the default
	// (20ms).
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter: the same seed,
	// node and attempt always wait the same duration, so fault-injection
	// runs are reproducible.
	JitterSeed int64
	// NodeTimeout is the per-attempt deadline: each attempt runs under a
	// context that expires after this long, and operators that honor their
	// context are interrupted. A deadline expiry classifies as transient by
	// default (a slow fault is retried like a failed one). 0 means no
	// deadline.
	NodeTimeout time.Duration
	// Classify maps an operator error to its class; nil selects
	// ClassifyDefault.
	Classify func(error) ErrorClass
}

func (p FaultPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p FaultPolicy) classify(err error) ErrorClass {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return ClassifyDefault(err)
}

// backoff returns the delay before the retry that follows attempt (1-based):
// exponential growth from BaseBackoff capped at MaxBackoff, jittered into
// [d/2, d] by a splitmix64 stream over (seed, node, attempt) so concurrent
// retries decorrelate while every schedule stays reproducible.
func (p FaultPolicy) backoff(id dag.NodeID, attempt int) time.Duration {
	base, ceil := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = defaultBaseBackoff
	}
	if ceil <= 0 {
		ceil = defaultMaxBackoff
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	r := wsRand(uint64(p.JitterSeed) ^ (uint64(id)+1)*0x9E3779B97F4A7C15 ^ uint64(attempt)<<48)
	return half + time.Duration(r.next()%uint64(half+1))
}

// faultStats is one Execute call's fault accounting, shared by every worker
// and the recovery path; the totals land in Result.Retries/Recomputes. The
// single-flight counters ride along (same lifetime, same consumers) and
// land in Result.InflightDedupHits/InflightWaits.
type faultStats struct {
	retries       atomic.Int64
	recomputes    atomic.Int64
	inflightHits  atomic.Int64
	inflightWaits atomic.Int64
}

// runTask executes one node's operator under the engine's fault policy:
// each attempt runs under the per-node deadline (when configured), a
// transient failure retries in place on the calling worker — the node never
// re-enters a ready queue, so retry is invisible to dispatch, stealing and
// re-prioritization — and a fatal failure (or an exhausted attempt budget)
// returns the error to the caller's first-error cancellation. The backoff
// sleep is interruptible by run cancellation.
func (e *Engine) runTask(ctx context.Context, id dag.NodeID, run func(context.Context, []any) (any, error), inputs []any, stats *faultStats) (any, error) {
	p := e.Faults
	attempts := p.attempts()
	for attempt := 1; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if p.NodeTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.NodeTimeout)
		}
		v, err := run(actx, inputs)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return v, nil
		}
		// A cancelled run never retries: the error in hand (however it
		// classifies) is just the shutdown surfacing through the operator.
		if ctx.Err() != nil || attempt >= attempts || p.classify(err) != ClassTransient {
			if attempt > 1 {
				err = fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return nil, err
		}
		stats.retries.Add(1)
		if d := p.backoff(id, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, err
			case <-t.C:
			}
		}
	}
}

// dropCollateralCancels filters a run's joined error list down to its
// causes: once the first failure cancels the run context, operators that
// honor their context abort with context.Canceled — casualties of the
// shutdown, not reasons for it. When every error is a cancellation (the
// caller cancelled the run externally), the list is returned unchanged so
// the run still reports why it stopped.
func dropCollateralCancels(errs []error) []error {
	real := errs[:0:0]
	for _, err := range errs {
		if !errors.Is(err, context.Canceled) {
			real = append(real, err)
		}
	}
	if len(real) == 0 {
		return errs
	}
	return real
}
