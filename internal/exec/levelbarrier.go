package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// executeLevelBarrier is the original wave executor, retained as the
// reference the dataflow scheduler is tested and benchmarked against:
// nodes in the same DAG level run concurrently (bounded by Workers), a full
// barrier separates levels, and materialization runs synchronously inside
// the node's turn, so MatDuration is part of Duration. The first failure
// stops new dispatches; errors from nodes already in flight are joined.
func (e *Engine) executeLevelBarrier(ctx context.Context, g *dag.Graph, tasks []Task, plan *opt.Plan, res *Result, stats *faultStats, pins *pinSet) (*Result, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Closures feed the ancestor-cost term; when nothing reads it — no
	// policy declaring NeedsAncestorCost and no spill tier consuming it as
	// the eviction reward hint — the precompute is skipped, and
	// decideAndPersist guarantees the cost callback (the only closure
	// consumer) is not invoked.
	var closures [][]dag.NodeID
	if e.Policy != nil && e.Store != nil && (e.Policy.NeedsAncestorCost() || e.Spill != nil) {
		closures = opt.AncestorClosures(g)
	}
	// In-run dedupe of materialization keys, mirroring the dataflow
	// writer's: two same-level nodes sharing a result signature both pass
	// the Store.Has check before either write lands, double-encoding the
	// value and double-reserving its budget without it.
	queued := &keyDedupe{keys: make(map[string]bool)}
	start := time.Now()
	var mu sync.Mutex // guards res.Values and res.Nodes during a level
	sem := make(chan struct{}, e.workers())
	var failed atomic.Bool
	for _, level := range levels {
		var wg sync.WaitGroup
		errCh := make(chan error, len(level))
		for _, id := range level {
			if plan.States[id] == opt.Prune {
				continue
			}
			if failed.Load() {
				break // a node already failed; dispatch nothing new
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(id dag.NodeID) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := e.runNodeSync(ctx, g, tasks, plan, id, res, &mu, closures, queued, stats, pins); err != nil {
					failed.Store(true)
					cancel() // interrupt in-flight operators that honor ctx
					errCh <- err
				}
			}(id)
		}
		wg.Wait()
		close(errCh)
		var errs []error
		for err := range errCh {
			errs = append(errs, err)
		}
		if len(errs) > 0 {
			res.Wall = time.Since(start)
			return res, errors.Join(dropCollateralCancels(errs)...)
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runNodeSync loads or computes one node, then applies the materialization
// policy synchronously for computed nodes.
func (e *Engine) runNodeSync(ctx context.Context, g *dag.Graph, tasks []Task, plan *opt.Plan, id dag.NodeID, res *Result, mu *sync.Mutex, closures [][]dag.NodeID, queued *keyDedupe, stats *faultStats, pins *pinSet) error {
	name := g.Node(id).Name
	nodeStart := time.Now()
	switch plan.States[id] {
	case opt.Load:
		return e.loadNode(ctx, g, tasks, plan, id, res, mu, stats, pins)

	case opt.Compute:
		key := tasks[id].Key
		role, served, ferr := e.joinFlight(ctx, key, stats)
		if ferr != nil {
			return fmt.Errorf("exec: compute %s: %w", name, ferr)
		}
		if role == flightServed {
			mu.Lock()
			res.Values[id] = served
			res.Nodes[id].Duration = time.Since(nodeStart)
			res.Nodes[id].InflightHit = true
			mu.Unlock()
			return nil
		}
		lead := role == flightLead
		inputs, err := gatherInputs(g, id, res, mu)
		if err != nil {
			e.finishFlight(lead, key, nil, err)
			return err
		}
		if tasks[id].Run == nil {
			err := fmt.Errorf("exec: node %s has no Run function", name)
			e.finishFlight(lead, key, nil, err)
			return err
		}
		v, err := e.runTask(ctx, id, tasks[id].Run, inputs, stats)
		if err != nil {
			e.finishFlight(lead, key, nil, err)
			return fmt.Errorf("exec: compute %s: %w", name, err)
		}
		computeDur := time.Since(nodeStart)
		matDur, size, materialized, reward := e.maybeMaterialize(g, tasks, id, v, computeDur, res, mu, closures, queued)
		// This executor materializes synchronously, so the flight resolves
		// with the publish already landed (or declined) — waiters that probe
		// the store see exactly what the policy decided.
		e.finishFlight(lead, key, v, nil)
		total := computeDur + matDur
		if e.History != nil {
			e.History.ObserveCompute(name, computeDur, size)
		}
		mu.Lock()
		res.Values[id] = v
		nr := &res.Nodes[id]
		nr.Duration = total
		nr.Size = size
		nr.Materialized = materialized
		nr.MatReward = reward
		nr.MatDuration = matDur
		mu.Unlock()
		return nil

	default:
		return fmt.Errorf("exec: runNode called on pruned node %s", name)
	}
}

// maybeMaterialize consults the policy and persists the value when told to,
// synchronously on the node's critical path (this scheduler's historical
// accounting). Keys already claimed this run are skipped — two same-level
// nodes sharing a result signature must not race to double-write — as are
// keys persisted by an earlier iteration. Returns the time spent, the
// serialized size (0 if never encoded), whether the value was stored, and
// the policy reward.
func (e *Engine) maybeMaterialize(g *dag.Graph, tasks []Task, id dag.NodeID, v any, computeDur time.Duration, res *Result, mu *sync.Mutex, closures [][]dag.NodeID, queued *keyDedupe) (time.Duration, int64, bool, int64) {
	if e.Policy == nil || e.Store == nil || tasks[id].Key == "" {
		return 0, 0, false, 0
	}
	if !queued.claim(tasks[id].Key) || e.tiers().Has(tasks[id].Key) {
		return 0, 0, false, 0 // claimed this run, or persisted in either tier by an earlier iteration
	}
	return e.decideAndPersist(g, id, g.Node(id).Name, tasks[id].Key, v, computeDur, func() int64 {
		return e.ancestorCost(closures[id], res, mu, true)
	})
}
