package exec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// TestDataflowOutOfOrderCompletion is the no-barrier property: a deep chain
// of cheap nodes must drain to completion while a shallow expensive sibling
// is still running. Under the level-barrier executor the chain's second
// link could not even start before the straggler finished its level.
func TestDataflowOutOfOrderCompletion(t *testing.T) {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	slow := g.MustAddNode("slow", "learner")
	g.MustAddEdge(root, slow)
	g.Node(slow).Output = true
	prev := root
	const depth = 4
	for i := 0; i < depth; i++ {
		id := g.MustAddNode(fmt.Sprintf("c%d", i), "extract")
		g.MustAddEdge(prev, id)
		prev = id
	}
	g.Node(prev).Output = true
	chainTail := prev

	var order []string
	var mu sync.Mutex
	logDone := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	tasks := make([]Task, g.Len())
	tasks[root] = Task{Run: func(context.Context, []any) (any, error) { return 0, nil }}
	tasks[slow] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(80 * time.Millisecond)
		logDone("slow")
		return 1, nil
	}}
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("c%d", i)
		id := g.Lookup(name)
		tasks[id] = Task{Run: func(_ context.Context, in []any) (any, error) {
			time.Sleep(time.Millisecond)
			logDone(name)
			return in[0].(int) + 1, nil
		}}
	}

	e := &Engine{Workers: 2}
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values[chainTail]; v.(int) != depth {
		t.Errorf("chain tail = %v, want %d", v, depth)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) == 0 || order[len(order)-1] != "slow" {
		t.Errorf("straggler should finish last, completion order = %v", order)
	}
}

// TestDataflowFailureCancelsPending checks mid-flight failure semantics:
// every error from nodes already running is collected and joined, and no
// new work is dispatched after the first failure — descendants of a failed
// node never run.
func TestDataflowFailureCancelsPending(t *testing.T) {
	g := dag.New()
	fastBoom := g.MustAddNode("fast-boom", "x")
	slowBoom := g.MustAddNode("slow-boom", "x")
	child := g.MustAddNode("child", "x")
	g.MustAddEdge(fastBoom, child)
	g.Node(child).Output = true
	g.Node(slowBoom).Output = true

	errFast := errors.New("fast failure")
	errSlow := errors.New("slow failure")
	var childRan int32
	tasks := make([]Task, g.Len())
	tasks[fastBoom] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(10 * time.Millisecond)
		return nil, errFast
	}}
	tasks[slowBoom] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(40 * time.Millisecond)
		return nil, errSlow
	}}
	tasks[child] = Task{Run: func(context.Context, []any) (any, error) {
		atomic.AddInt32(&childRan, 1)
		return 0, nil
	}}

	e := &Engine{Workers: 4}
	_, err := e.Execute(g, tasks, allCompute(g.Len()))
	if !errors.Is(err, errFast) {
		t.Errorf("first error dropped: %v", err)
	}
	if !errors.Is(err, errSlow) {
		t.Errorf("in-flight error dropped instead of joined: %v", err)
	}
	if atomic.LoadInt32(&childRan) != 0 {
		t.Error("descendant of failed node was dispatched")
	}
}

// encodeValues renders a Result's value map into deterministic bytes so two
// runs can be compared for byte-identical output.
func encodeValues(t *testing.T, g *dag.Graph, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < g.Len(); i++ {
		v, ok := res.Values[dag.NodeID(i)]
		if !ok {
			fmt.Fprintf(&buf, "%d:<none>;", i)
			continue
		}
		raw, err := store.Encode(v)
		if err != nil {
			t.Fatalf("encode node %d: %v", i, err)
		}
		fmt.Fprintf(&buf, "%d:%x;", i, raw)
	}
	return buf.Bytes()
}

// equivalenceDAG is a mixed-shape graph (chain + diamond + wide fan) with
// deterministic integer tasks, exercising loads, prunes and computes.
func equivalenceDAG(t *testing.T) (*dag.Graph, []Task, *opt.Plan) {
	t.Helper()
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	l := g.MustAddNode("left", "extract")
	r := g.MustAddNode("right", "extract")
	join := g.MustAddNode("join", "concat")
	g.MustAddEdge(root, l)
	g.MustAddEdge(root, r)
	g.MustAddEdge(l, join)
	g.MustAddEdge(r, join)
	var leaves []dag.NodeID
	for i := 0; i < 5; i++ {
		id := g.MustAddNode(fmt.Sprintf("leaf%d", i), "model")
		g.MustAddEdge(join, id)
		g.Node(id).Output = true
		leaves = append(leaves, id)
	}
	dead := g.MustAddNode("dead", "x")
	g.MustAddEdge(root, dead)

	tasks := make([]Task, g.Len())
	tasks[root] = Task{Key: "kroot", Run: func(context.Context, []any) (any, error) { return 1, nil }}
	tasks[l] = Task{Key: "kleft", Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) * 3, nil }}
	tasks[r] = Task{Key: "kright", Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) * 5, nil }}
	tasks[join] = Task{Key: "kjoin", Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) + in[1].(int), nil }}
	for i, id := range leaves {
		mult := i + 1
		tasks[id] = Task{Key: fmt.Sprintf("kleaf%d", i), Run: func(_ context.Context, in []any) (any, error) {
			return in[0].(int) * mult, nil
		}}
	}
	tasks[dead] = Task{Key: "kdead", Run: func(context.Context, []any) (any, error) { return 0, nil }}

	plan := allCompute(g.Len())
	plan.States[dead] = opt.Prune
	return g, tasks, plan
}

// TestSchedulerEquivalence runs the same plan under the dataflow scheduler
// and the level-barrier reference and requires byte-identical Values plus
// identical per-node states and materialization outcomes.
func TestSchedulerEquivalence(t *testing.T) {
	for _, withStore := range []bool{false, true} {
		name := "pure-compute"
		if withStore {
			name = "with-materialization"
		}
		t.Run(name, func(t *testing.T) {
			run := func(sched Strategy) (*Result, *Engine) {
				g, tasks, plan := equivalenceDAG(t)
				e := &Engine{Workers: 4, Sched: sched}
				if withStore {
					st, err := store.Open(t.TempDir(), 0)
					if err != nil {
						t.Fatal(err)
					}
					e.Store = st
					e.Policy = opt.MaterializeAll{}
				}
				res, err := e.Execute(g, tasks, plan)
				if err != nil {
					t.Fatal(err)
				}
				return res, e
			}
			g, _, _ := equivalenceDAG(t)
			resDF, eDF := run(Dataflow)
			resLB, eLB := run(LevelBarrier)
			if df, lb := encodeValues(t, g, resDF), encodeValues(t, g, resLB); !bytes.Equal(df, lb) {
				t.Errorf("values differ:\n dataflow: %s\n  barrier: %s", df, lb)
			}
			for i := range resDF.Nodes {
				if resDF.Nodes[i].State != resLB.Nodes[i].State {
					t.Errorf("node %d state: dataflow %v, barrier %v", i, resDF.Nodes[i].State, resLB.Nodes[i].State)
				}
				if resDF.Nodes[i].Materialized != resLB.Nodes[i].Materialized {
					t.Errorf("node %d materialized: dataflow %v, barrier %v", i, resDF.Nodes[i].Materialized, resLB.Nodes[i].Materialized)
				}
			}
			if withStore {
				dfKeys, lbKeys := eDF.Store.Entries(), eLB.Store.Entries()
				if len(dfKeys) != len(lbKeys) {
					t.Fatalf("store entries: dataflow %d, barrier %d", len(dfKeys), len(lbKeys))
				}
				for i := range dfKeys {
					if dfKeys[i].Key != lbKeys[i].Key || dfKeys[i].Size != lbKeys[i].Size {
						t.Errorf("entry %d: dataflow %+v, barrier %+v", i, dfKeys[i], lbKeys[i])
					}
				}
			}
		})
	}
}

// TestDataflowFlushOnError: when a node fails mid-run, materialization jobs
// already handed to the async writer must still be decided, written and
// accounted before Execute returns.
func TestDataflowFlushOnError(t *testing.T) {
	g := dag.New()
	okNode := g.MustAddNode("ok", "scan")
	boom := g.MustAddNode("boom", "x")
	g.Node(okNode).Output = true
	g.Node(boom).Output = true

	errBoom := errors.New("boom")
	tasks := make([]Task, g.Len())
	tasks[okNode] = Task{Key: "kok", Run: func(context.Context, []any) (any, error) { return "payload", nil }}
	tasks[boom] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(30 * time.Millisecond) // let ok finish and submit its write
		return nil, errBoom
	}}

	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 2, Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if !st.Has("kok") {
		t.Error("async write not flushed before Execute returned")
	}
	if !res.Nodes[okNode].Materialized || res.Nodes[okNode].MatDuration <= 0 {
		t.Errorf("writer accounting missing after flush-on-error: %+v", res.Nodes[okNode])
	}
}

// TestDataflowMatOffCriticalPath: a slow materialization write must not
// delay the completion of the producing node's children. The store write is
// made slow by writing a large value; the child only sleeps briefly, so if
// the child had to wait for the parent's write the wall time would include
// both.
func TestDataflowMatDurationRecorded(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "extract")
	g.MustAddEdge(a, b)
	g.Node(b).Output = true
	payload := bytes.Repeat([]byte{7}, 1<<20)
	tasks := []Task{
		{Key: "ka", Run: func(context.Context, []any) (any, error) { return payload, nil }},
		{Key: "kb", Run: func(_ context.Context, in []any) (any, error) { return len(in[0].([]byte)), nil }},
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nodes[a].Materialized {
		t.Fatalf("a not materialized: %+v", res.Nodes[a])
	}
	if res.Nodes[a].MatDuration <= 0 {
		t.Error("MatDuration not measured by async writer")
	}
	if res.Nodes[a].Size <= 0 {
		t.Error("size not learned by async writer")
	}
	if v, _ := res.Value(g, "b"); v.(int) != len(payload) {
		t.Errorf("b = %v", v)
	}
}

// TestReleaseIntermediates: with the flag on, a non-output value disappears
// from Result.Values once its last consumer has run; outputs survive.
func TestReleaseIntermediates(t *testing.T) {
	g, tasks := buildChain(t) // a -> b -> c, c output
	e := &Engine{ReleaseIntermediates: true}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Value(g, "c"); !ok || v.(string) != "abc" {
		t.Errorf("output c = %v, %v", v, ok)
	}
	for _, name := range []string{"a", "b"} {
		if _, ok := res.Value(g, name); ok {
			t.Errorf("intermediate %s not released", name)
		}
	}
}

// TestReleaseIntermediatesDiamond: a value consumed by several children is
// only released after the last of them has run, and the released value was
// still delivered to every consumer.
func TestReleaseIntermediatesDiamond(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "scan")
	b := g.MustAddNode("b", "x")
	c := g.MustAddNode("c", "x")
	d := g.MustAddNode("d", "join")
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	g.Node(d).Output = true
	tasks := []Task{
		{Run: func(context.Context, []any) (any, error) { return 2, nil }},
		{Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) * 3, nil }},
		{Run: func(_ context.Context, in []any) (any, error) {
			time.Sleep(10 * time.Millisecond)
			return in[0].(int) * 5, nil
		}},
		{Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) + in[1].(int), nil }},
	}
	e := &Engine{Workers: 4, ReleaseIntermediates: true}
	res, err := e.Execute(g, tasks, allCompute(4))
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values[d]; v.(int) != 16 {
		t.Errorf("d = %v, want 16", v)
	}
	if len(res.Values) != 1 {
		t.Errorf("intermediates retained: %v", res.Values)
	}
}

func TestStrategyString(t *testing.T) {
	if Dataflow.String() != "dataflow" || LevelBarrier.String() != "level-barrier" {
		t.Errorf("Strategy strings: %v %v", Dataflow, LevelBarrier)
	}
}

// TestLevelBarrierStillWorks keeps the reference path honest: the existing
// engine tests run under the default dataflow scheduler, so this exercises
// an end-to-end compute+materialize+reload cycle under LevelBarrier.
func TestLevelBarrierStillWorks(t *testing.T) {
	g, tasks := buildChain(t)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Sched: LevelBarrier, Store: st, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if !nr.Materialized {
			t.Errorf("node %d not materialized: %+v", i, nr)
		}
		if nr.MatDuration > nr.Duration {
			t.Errorf("node %d: synchronous accounting violated, mat %v > total %v", i, nr.MatDuration, nr.Duration)
		}
	}
	plan := allCompute(3)
	plan.States[0] = opt.Prune
	plan.States[1] = opt.Load
	res2, err := e.Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res2.Value(g, "c"); v.(string) != "abc" {
		t.Errorf("c = %v", v)
	}
}
