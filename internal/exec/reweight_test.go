package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
)

// liarProbeDAG is a single-worker re-prioritization probe: root fans out to
// `decoys` sleeping nodes (op "decoy", history claims them expensive) and
// one two-link chain (op "liar", history claims it cheap, actually slow).
// With one worker and strict heap dispatch the dispatch order is exactly
// the weight order, so the test can assert where the chain lands.
func liarProbeDAG(decoys int, decoyDur time.Duration) (*dag.Graph, []Task, *History, *[]string, *sync.Mutex) {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	var order []string
	var mu sync.Mutex
	mk := func(name string, d time.Duration) Task {
		return Task{Run: func(context.Context, []any) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			time.Sleep(d)
			return 0, nil
		}}
	}
	tasks := []Task{mk("root", 0)}
	h := NewHistory()
	for i := 0; i < decoys; i++ {
		name := fmt.Sprintf("decoy%d", i)
		id := g.MustAddNode(name, "decoy")
		g.MustAddEdge(root, id)
		g.Node(id).Output = true
		tasks = append(tasks, mk(name, decoyDur))
		h.ObserveCompute(name, 50*time.Millisecond, 0) // the lie: claimed expensive
	}
	prev := root
	for l := 0; l < 2; l++ {
		name := fmt.Sprintf("liar%d", l)
		id := g.MustAddNode(name, "liar")
		g.MustAddEdge(prev, id)
		// The lie: claimed cheap relative to the decoys' 50ms, but with
		// enough absolute weight that a corrected decoy estimate (its
		// measured sleep, including scheduler overshoot on a loaded box)
		// still ranks below the chain.
		tasks = append(tasks, mk(name, decoyDur))
		h.ObserveCompute(name, 10*time.Millisecond, 0)
		prev = id
	}
	g.Node(prev).Output = true
	return g, tasks, h, &order, &mu
}

// TestAdaptiveRepriotizesMidRun is the tentpole's behavioural pin: under a
// lying history, static weights bury the chain behind every decoy, while a
// forced adaptive pass corrects the decoy group off the first measured
// completions and the chain dispatches before the remaining decoys.
func TestAdaptiveRepriotizesMidRun(t *testing.T) {
	const decoys = 12
	pos := func(order []string, name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		return -1
	}
	run := func(mode Reweight) []string {
		g, tasks, h, order, mu := liarProbeDAG(decoys, 200*time.Microsecond)
		e := &Engine{
			Workers:               1,
			Dispatch:              GlobalHeap,
			History:               h,
			Reweight:              mode,
			ReweightInterval:      2,
			ReweightMinDivergence: time.Nanosecond,
		}
		res, err := e.Execute(g, tasks, allCompute(g.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if mode == Adaptive && res.Reweights == 0 {
			t.Fatal("adaptive run performed no passes despite forced trigger")
		}
		if mode == ReweightOff && res.Reweights != 0 {
			t.Fatalf("static run reported %d passes", res.Reweights)
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), (*order)...)
	}

	static := run(ReweightOff)
	if p := pos(static, "liar0"); p != decoys+1 {
		t.Fatalf("static dispatch ran liar0 at position %d, want %d (after every decoy): %v", p, decoys+1, static)
	}
	adaptive := run(Adaptive)
	if p := pos(adaptive, "liar0"); p >= decoys {
		t.Errorf("adaptive dispatch never re-prioritized: liar0 at position %d of %v", p, adaptive)
	}
}

// TestReweightNoOpUnderMinID: min-ID ordering carries no weights, so
// Adaptive must do nothing (and count nothing).
func TestReweightNoOpUnderMinID(t *testing.T) {
	g, tasks, h, _, _ := liarProbeDAG(4, 0)
	e := &Engine{
		Workers:               2,
		Order:                 MinID,
		History:               h,
		Reweight:              Adaptive,
		ReweightInterval:      1,
		ReweightMinDivergence: time.Nanosecond,
	}
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reweights != 0 {
		t.Errorf("min-ID run reported %d re-prioritization passes, want 0", res.Reweights)
	}
}

// TestReweightDefaultsQuietOnAccurateEstimates: with estimates that match
// reality to within the divergence thresholds, the default trigger never
// fires — honest runs pay zero passes.
func TestReweightDefaultsQuietOnAccurateEstimates(t *testing.T) {
	g, tasks, _, _, _ := liarProbeDAG(8, 10*time.Millisecond)
	h := NewHistory()
	for i := 0; i < g.Len(); i++ {
		// Accurate claims — including the root, which sleeps 0: every node's
		// estimate matches its real duration, so sleep jitter may cross the
		// absolute divergence floor but stays far under the 50%-of-estimates
		// relative bar (10ms sleeps would need 5ms of overshoot per node).
		d := 10 * time.Millisecond
		if g.Node(dag.NodeID(i)).Name == "root" {
			d = 100 * time.Microsecond
		}
		h.ObserveCompute(g.Node(dag.NodeID(i)).Name, d, 0)
	}
	e := &Engine{Workers: 4, History: h} // Adaptive by default
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reweights != 0 {
		t.Errorf("accurate-estimate run paid %d passes, want 0", res.Reweights)
	}
}

// TestReweighterTriggerWindow pins the trigger arithmetic: a pass needs
// the completion interval, the absolute divergence floor, and divergence
// at least half the accumulated estimates.
func TestReweighterTriggerWindow(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	g.MustAddEdge(a, b)
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{ReweightInterval: 2, ReweightMinDivergence: time.Millisecond}
	rc := &runCtx{e: e, g: g}
	rw := newReweighter(rc, order, []int64{int64(time.Millisecond), int64(time.Millisecond)}, []int64{2, 1})

	rw.observe(a, int64(10*time.Millisecond)) // 9ms divergence, 1 completion
	if rw.shouldPass() {
		t.Error("trigger fired below the completion interval")
	}
	rw.observe(b, int64(time.Millisecond)) // accurate: no extra divergence
	if !rw.shouldPass() {
		t.Error("trigger silent with 2 completions, 9ms divergence over 2ms estimates")
	}
	rw.maybePass()
	if got := rw.passes.Load(); got != 1 {
		t.Fatalf("passes = %d, want 1", got)
	}
	// The pass resets the window: no further completions, no second pass.
	rw.maybePass()
	if got := rw.passes.Load(); got != 1 {
		t.Errorf("pass ran on an empty window: passes = %d", got)
	}
}

// TestReweighterSkipsStartedNodes: a pass corrects only not-yet-started
// nodes; started nodes keep their cost and weight.
func TestReweighterSkipsStartedNodes(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	order, _ := g.Topo()
	e := &Engine{ReweightInterval: 1, ReweightMinDivergence: time.Nanosecond}
	rc := &runCtx{e: e, g: g}
	ms := int64(time.Millisecond)
	rw := newReweighter(rc, order, []int64{ms, ms, ms}, []int64{3 * ms, 2 * ms, ms})

	rw.markStarted(a)
	rw.observe(a, 10*ms) // 10× the estimate: op "op" corrects ×10
	rw.maybePass()
	if got := rw.passes.Load(); got != 1 {
		t.Fatalf("passes = %d, want 1", got)
	}
	w, epoch := rw.current()
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	// b and c were corrected to 10ms each; a keeps its published weight.
	if w[c] != 10*ms {
		t.Errorf("weight[c] = %d, want %d", w[c], 10*ms)
	}
	if w[b] != 20*ms {
		t.Errorf("weight[b] = %d, want %d", w[b], 20*ms)
	}
	if w[a] != 3*ms {
		t.Errorf("weight[a] = %d (started node re-weighted), want untouched %d", w[a], 3*ms)
	}
	if got := rw.cost[a].Load(); got != ms {
		t.Errorf("cost[a] = %d (started node corrected), want %d", got, ms)
	}
}

// TestReweighterCorrectionDoesNotCompound: the per-group sums are a
// per-pass window, so a group corrected accurately by pass 1 is not
// re-multiplied by its stale lifetime ratio when an unrelated group
// triggers pass 2.
func TestReweighterCorrectionDoesNotCompound(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "liar") // finished: reveals the lie
	b := g.MustAddNode("b", "liar") // pending: corrected by pass 1
	c := g.MustAddNode("c", "other")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	order, _ := g.Topo()
	e := &Engine{ReweightInterval: 1, ReweightMinDivergence: time.Nanosecond}
	rc := &runCtx{e: e, g: g}
	ms := int64(time.Millisecond)
	rw := newReweighter(rc, order, []int64{ms, ms, ms}, []int64{3 * ms, 2 * ms, ms})

	rw.markStarted(a)
	rw.observe(a, 10*ms) // liar group is 10× its estimate
	rw.maybePass()
	if got := rw.cost[b].Load(); got != 10*ms {
		t.Fatalf("cost[b] after pass 1 = %d, want %d", got, 10*ms)
	}
	// An unrelated group diverges; the liar group has no new observations
	// this window, so its corrected cost must not be multiplied again.
	rw.markStarted(c)
	rw.observe(c, 10*ms)
	rw.maybePass()
	if got := rw.passes.Load(); got != 2 {
		t.Fatalf("passes = %d, want 2", got)
	}
	if got := rw.cost[b].Load(); got != 10*ms {
		t.Errorf("cost[b] after pass 2 = %d, want %d (lifetime ratio re-applied?)", got, 10*ms)
	}
}

// TestNodeHeapEpochFix: a heap sorted under old weights re-sorts itself on
// its next fix() after a pass publishes, and pops in the new order.
func TestNodeHeapEpochFix(t *testing.T) {
	g := dag.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	order, _ := g.Topo()
	e := &Engine{ReweightInterval: 1, ReweightMinDivergence: time.Nanosecond}
	rc := &runCtx{e: e, g: g}
	oldW := []int64{10, 1} // a first
	rw := newReweighter(rc, order, []int64{1, 1}, oldW)

	h := &nodeHeap{weight: oldW}
	h.push(a)
	h.push(b)

	// Publish inverted weights under a new epoch.
	newW := []int64{1, 10} // b first
	rw.weights.Store(&newW)
	rw.epoch.Add(1)

	rw.fix(h)
	if h.epoch != 1 {
		t.Fatalf("heap epoch = %d after fix, want 1", h.epoch)
	}
	if got := h.pop(); got != b {
		t.Errorf("post-fix pop = %v, want b (new weights)", got)
	}
	// Second fix at the same epoch is a no-op.
	rw.fix(h)
	if got := h.pop(); got != a {
		t.Errorf("second pop = %v, want a", got)
	}
}
