package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// wideSleepDAG is a root fanning out to `width` sleeping leaves — enough
// simultaneous work that every worker must engage, guaranteeing
// cross-worker transfers under work-stealing.
func wideSleepDAG(width int, d time.Duration) (*dag.Graph, []Task) {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []Task{{Run: func(context.Context, []any) (any, error) { return 0, nil }}}
	for i := 0; i < width; i++ {
		id := g.MustAddNode(fmt.Sprintf("leaf%d", i), "op")
		g.MustAddEdge(root, id)
		g.Node(id).Output = true
		idx := int(id)
		tasks = append(tasks, Task{Run: func(_ context.Context, in []any) (any, error) {
			time.Sleep(d)
			return in[0].(int) + idx, nil
		}})
	}
	return g, tasks
}

// TestWorkStealCrossWorkerTransfers: on a wide DAG with several workers,
// work must actually move between workers — the Steals/Handoffs counters
// are non-zero under work-stealing and exactly zero under GlobalHeap
// (which has no deques to steal from).
func TestWorkStealCrossWorkerTransfers(t *testing.T) {
	g, tasks := wideSleepDAG(32, 2*time.Millisecond)
	e := &Engine{Workers: 4}
	res, err := e.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals+res.Handoffs == 0 {
		t.Error("work-stealing run moved no work between workers (steals+handoffs = 0)")
	}

	gh := &Engine{Workers: 4, Dispatch: GlobalHeap}
	ghRes, err := gh.Execute(g, tasks, allCompute(g.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ghRes.Steals != 0 || ghRes.Handoffs != 0 {
		t.Errorf("global-heap run reported steals=%d handoffs=%d, want 0/0", ghRes.Steals, ghRes.Handoffs)
	}
	if !reflect.DeepEqual(res.Values, ghRes.Values) {
		t.Error("values differ between dispatch modes")
	}
}

// TestGlobalHeapFailureCancelsPending mirrors the dataflow failure-
// semantics test under the GlobalHeap dispatcher, which no longer runs by
// default: in-flight errors are joined, descendants of a failed node never
// run.
func TestGlobalHeapFailureCancelsPending(t *testing.T) {
	g := dag.New()
	fastBoom := g.MustAddNode("fast-boom", "x")
	slowBoom := g.MustAddNode("slow-boom", "x")
	child := g.MustAddNode("child", "x")
	g.MustAddEdge(fastBoom, child)
	g.Node(child).Output = true
	g.Node(slowBoom).Output = true

	errFast := errors.New("fast failure")
	errSlow := errors.New("slow failure")
	var childRan int32
	tasks := make([]Task, g.Len())
	tasks[fastBoom] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(10 * time.Millisecond)
		return nil, errFast
	}}
	tasks[slowBoom] = Task{Run: func(context.Context, []any) (any, error) {
		time.Sleep(40 * time.Millisecond)
		return nil, errSlow
	}}
	tasks[child] = Task{Run: func(context.Context, []any) (any, error) {
		atomic.AddInt32(&childRan, 1)
		return 0, nil
	}}

	e := &Engine{Workers: 4, Dispatch: GlobalHeap}
	_, err := e.Execute(g, tasks, allCompute(g.Len()))
	if !errors.Is(err, errFast) || !errors.Is(err, errSlow) {
		t.Errorf("joined errors incomplete: %v", err)
	}
	if atomic.LoadInt32(&childRan) != 0 {
		t.Error("descendant of failed node was dispatched")
	}
}

// TestGlobalHeapEquivalentOnMixedPlan runs the mixed load/compute/prune
// equivalence DAG under the GlobalHeap dispatcher and compares values with
// the work-stealing default.
func TestGlobalHeapEquivalentOnMixedPlan(t *testing.T) {
	run := func(mode DispatchMode) *Result {
		g, tasks, plan := equivalenceDAG(t)
		e := &Engine{Workers: 4, Dispatch: mode}
		res, err := e.Execute(g, tasks, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ws, gh := run(WorkSteal), run(GlobalHeap)
	if !reflect.DeepEqual(ws.Values, gh.Values) {
		t.Errorf("values differ: worksteal %v, global-heap %v", ws.Values, gh.Values)
	}
}

// TestWorkStealSingleWorkerDeterministic: with one worker there is nothing
// to steal, and dispatch must be a pure function of the graph — the same
// ordering guarantee the ordering tests pin for the ready-queue, here
// checked across the chase path (a finishing worker keeps the best child
// directly).
func TestWorkStealSingleWorkerDeterministic(t *testing.T) {
	build := func() (*dag.Graph, []Task, *[]dag.NodeID) {
		g := dag.New()
		root := g.MustAddNode("root", "scan")
		var order []dag.NodeID
		task := func(id dag.NodeID) Task {
			return Task{Run: func(context.Context, []any) (any, error) {
				order = append(order, id) // single worker: no lock needed
				return 0, nil
			}}
		}
		tasks := []Task{task(root)}
		// Two chains of different lengths plus loose leaves: the chase path,
		// the deque pops and the tie-breaks all get exercised.
		prev := root
		for i := 0; i < 3; i++ {
			id := g.MustAddNode(fmt.Sprintf("a%d", i), "op")
			g.MustAddEdge(prev, id)
			tasks = append(tasks, task(id))
			prev = id
		}
		g.Node(prev).Output = true
		prev = root
		for i := 0; i < 2; i++ {
			id := g.MustAddNode(fmt.Sprintf("b%d", i), "op")
			g.MustAddEdge(prev, id)
			tasks = append(tasks, task(id))
			prev = id
		}
		g.Node(prev).Output = true
		return g, tasks, &order
	}
	var first []dag.NodeID
	for run := 0; run < 3; run++ {
		g, tasks, order := build()
		e := &Engine{Workers: 1}
		if _, err := e.Execute(g, tasks, allCompute(g.Len())); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = append([]dag.NodeID(nil), (*order)...)
		} else if !reflect.DeepEqual(*order, first) {
			t.Fatalf("run %d dispatch order %v differs from first run %v", run, *order, first)
		}
	}
}

// TestColdWeightsUseStructuralFloor: with no history at all, critical-path
// dispatch must still prefer the node that gates more downstream work —
// the structural cold-cost floor (unit × (1 + out-degree)) replaces the
// old flat unit cost that made all never-measured siblings look equal.
func TestColdWeightsUseStructuralFloor(t *testing.T) {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	// narrow has the smaller ID: under a flat cold cost the ID tie-break
	// would dispatch it first.
	narrow := g.MustAddNode("narrow", "op")
	hub := g.MustAddNode("hub", "op")
	g.MustAddEdge(root, narrow)
	g.MustAddEdge(root, hub)
	g.Node(narrow).Output = true
	var order []string
	task := func(name string) Task {
		return Task{Run: func(context.Context, []any) (any, error) {
			order = append(order, name)
			return 0, nil
		}}
	}
	tasks := []Task{task("root"), task("narrow"), task("hub")}
	for i := 0; i < 3; i++ {
		id := g.MustAddNode(fmt.Sprintf("leaf%d", i), "op")
		g.MustAddEdge(hub, id)
		g.Node(id).Output = true
		tasks = append(tasks, task(fmt.Sprintf("leaf%d", i)))
	}
	e := &Engine{Workers: 1, Order: CriticalPath}
	if _, err := e.Execute(g, tasks, allCompute(g.Len())); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "root" || order[1] != "hub" {
		t.Errorf("cold dispatch order = %v, want the high-out-degree hub right after root", order)
	}
}

// TestLiveBytesGaugeColdStructuralEstimate: with no learned sizes the
// gauge charges compute nodes the structural floor instead of zero, so a
// first iteration still reports an honest peak.
func TestLiveBytesGaugeColdStructuralEstimate(t *testing.T) {
	g, tasks := buildChain(t) // a -> b -> c, c output; out-degrees 1,1,0
	var gauge store.Gauge
	e := &Engine{Workers: 1, LiveBytes: &gauge, ReleaseIntermediates: true}
	if _, err := e.Execute(g, tasks, allCompute(3)); err != nil {
		t.Fatal(err)
	}
	// a and b coexist until b's completion releases a: 2·coldSizeUnit each.
	if want := int64(4 * coldSizeUnit); gauge.Peak() != want {
		t.Errorf("cold peak = %d, want %d (two 2-consumer-scaled estimates)", gauge.Peak(), want)
	}
	if gauge.Live() != 0 {
		t.Errorf("live = %d after run, want 0 after settlement", gauge.Live())
	}
}

// TestWorkStealManyWorkersFewNodes: more workers than runnable nodes must
// neither deadlock nor leave workers spinning — the pool is clamped and
// surplus configurations drain cleanly.
func TestWorkStealManyWorkersFewNodes(t *testing.T) {
	g, tasks := buildChain(t)
	e := &Engine{Workers: 64}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(g, "c"); v.(string) != "abc" {
		t.Errorf("c = %v", v)
	}
}

// TestWorkStealAllPruned: a plan with nothing runnable returns an empty
// result without spawning workers.
func TestWorkStealAllPruned(t *testing.T) {
	g, tasks := buildChain(t)
	plan := allCompute(3)
	for i := range plan.States {
		plan.States[i] = opt.Prune
	}
	res, err := (&Engine{}).Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Errorf("pruned-everything run produced values: %v", res.Values)
	}
}
