package exec

import (
	"context"
	"time"

	"repro/internal/store"
)

// defaultInflightWait bounds how long a single-flight waiter parks on
// another run's in-flight computation before giving up and computing
// locally. The bound is belt-and-suspenders, not the liveness argument —
// see the deadlock reasoning on joinFlight — sized so a genuinely wedged
// foreign leader costs a stall, never a deadlock.
const defaultInflightWait = 10 * time.Second

func (e *Engine) inflightWait() time.Duration {
	if e.InflightWait > 0 {
		return e.InflightWait
	}
	return defaultInflightWait
}

// flightRole is joinFlight's verdict on one compute-planned node.
type flightRole int

const (
	// flightCompute: run the operator locally; the caller holds no
	// leadership and must not FinishCompute. The role when single-flight is
	// disabled, and the waiter fallback after a timeout or a store miss.
	flightCompute flightRole = iota
	// flightLead: the caller is the key's elected leader — compute and
	// publish as usual, then FinishCompute exactly once, however the
	// computation ends.
	flightLead
	// flightServed: the value was obtained from a concurrent flight (or,
	// for a just-resolved one, from the store) without computing.
	flightServed
)

// joinFlight consults the shared store's in-flight computation registry
// before a compute-planned node runs. Leaders proceed to compute; waiters
// park until the concurrent flight publishes, then load the bytes through
// the tiered store's usual read path (pinned across the publish→load window
// so eviction cannot lose them), falling back to the value the leader
// handed through the registry when its policy declined materialization. A
// leader that finds the key already stored — the flight it raced resolved
// before it registered — is served the stored bytes instead of recomputing,
// which is what makes N concurrent identical runs compute each unique
// signature exactly once.
//
// No cross-run deadlock (the argument docs/store.md records): a worker
// waits only on the single key of the node it is about to run, and
// leadership over a key is held only across that leader's own bounded work
// — the operator plus an asynchronous publish whose pipeline Execute always
// flushes, even on error and cancellation paths (FinishCompute fires from
// the writer, the inline fallback, or the error path; there is no return
// without it). Leadership is therefore never held *while* waiting on a
// different key's flight on the same worker, so no cycle of waits can form.
// The bounded wait (Engine.InflightWait) is a backstop, not the proof:
// progress always beats dedup, because every wait outcome — published,
// handoff, timeout, cancellation — ends in a value or a local compute.
func (e *Engine) joinFlight(ctx context.Context, key string, stats *faultStats) (flightRole, any, error) {
	if !e.SingleFlight || e.Store == nil || key == "" {
		return flightCompute, nil, nil
	}
	tv := e.tiers()
	leader, wait := tv.BeginCompute(key)
	if leader {
		// A flight this run raced may have resolved between plan time and
		// now: serve the published bytes instead of recomputing them.
		if tv.Has(key) {
			if v, _, err := tv.Get(key); err == nil {
				tv.FinishCompute(key, v, nil)
				stats.inflightHits.Add(1)
				return flightServed, v, nil
			}
		}
		// The raced flight may have resolved with its policy *declining*
		// materialization — nothing in the store, but the registry's
		// afterglow still holds the value. Keys are content addresses, so
		// the cached value equals what a recompute would produce.
		if v, ok := tv.RecentResolved(key); ok {
			tv.FinishCompute(key, v, nil)
			stats.inflightHits.Add(1)
			return flightServed, v, nil
		}
		return flightLead, nil, nil
	}
	stats.inflightWaits.Add(1)
	// Pin across the publish→load window: the leader's bytes may land in
	// the evictable cold tier, and a waiter must not lose them to another
	// tenant's admission pressure before its load. Refcounted, no-op
	// without a cold tier — the same guarantee the planned-load pinSet
	// gives Load-state nodes.
	tv.Pin(key)
	defer tv.Unpin(key)
	outcome, handed := wait(ctx, e.inflightWait())
	switch outcome {
	case store.WaitPublished:
		if v, _, err := tv.Get(key); err == nil {
			stats.inflightHits.Add(1)
			return flightServed, v, nil
		}
		if handed != nil {
			// The leader's policy declined to materialize (or the entry was
			// already evicted); the registry handed the in-memory value
			// through instead. Values are immutable once published — the
			// same convention that lets one run's consumers share them.
			stats.inflightHits.Add(1)
			return flightServed, handed, nil
		}
		return flightCompute, nil, nil
	case store.WaitLeader:
		return flightLead, nil, nil
	case store.WaitCanceled:
		return flightCompute, nil, ctx.Err()
	default: // store.WaitTimeout
		return flightCompute, nil, nil
	}
}

// finishFlight resolves key's flight if this caller holds its leadership.
func (e *Engine) finishFlight(lead bool, key string, val any, err error) {
	if lead {
		e.tiers().FinishCompute(key, val, err)
	}
}
