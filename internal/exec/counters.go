package exec

// ReportSchemaVersion is the wire-schema version stamped as "schema" on
// every JSON surface that embeds Counters (bench dispatch reports, the
// serve daemon's submit/status responses). Version 1 is the pre-Counters
// layout with ad-hoc per-counter fields; version 2 introduced the
// consolidated counter block; version 3 adds the single-flight counters
// (inflight_dedup_hits, inflight_waits) and the service's queued/failed
// status fields. Readers (helix-benchdiff) accept every version up to this
// one and treat an absent field as its zero.
const ReportSchemaVersion = 3

// Counters is the consolidated execution-counter block shared by every
// surface that reports engine activity: exec.Result embeds it (per-run
// deltas), core.Report embeds it (per-iteration deltas), the bench JSON's
// DispatchMeasurement embeds it, and the helix-serve status/submit
// responses carry it verbatim. The JSON tags are the stable schema-2 wire
// names — bench baselines and service clients parse the same keys.
//
// All counts are deltas over the window the embedding struct describes
// (one Execute, one iteration, one benchmark run) except where the
// embedding surface documents otherwise (the service's status endpoint
// reports daemon-lifetime totals).
type Counters struct {
	// Steals counts ready nodes an idle worker took from another worker's
	// deque (work-stealing dispatch only; always 0 otherwise).
	Steals int64 `json:"steals"`
	// Handoffs counts ready nodes a finishing worker routed through the
	// global overflow queue to parked workers (work-stealing dispatch only).
	Handoffs int64 `json:"handoffs"`
	// AffinityKeeps counts newly-ready children the work-stealing dispatcher
	// kept on the producing worker's deque instead of handing off — the
	// surplus beyond one-node-per-parked-worker, left where their freshly
	// computed inputs are warm (work-stealing dispatch only).
	AffinityKeeps int64 `json:"affinity_keeps"`
	// Reweights counts online re-prioritization passes (dataflow scheduler,
	// critical-path ordering, Adaptive reweighting only; always 0 otherwise).
	Reweights int64 `json:"reweights"`
	// Spills counts values admitted to the cold spill tier after the hot
	// tier's budget rejected them (always 0 without a spill tier).
	Spills int64 `json:"spills"`
	// Promotions counts cold-tier loads whose value was moved back into the
	// hot tier.
	Promotions int64 `json:"promotions"`
	// Evictions counts hot-tier entries demoted to the spill tier to make
	// room for promotions.
	Evictions int64 `json:"evictions"`
	// Retries counts operator attempts repeated after a transient fault
	// (Engine.Faults); the node retried in place on its worker.
	Retries int64 `json:"retries"`
	// Recomputes counts nodes recomputed from lineage after a planned load
	// failed (corrupt frame, read I/O error, evicted entry) — the failing
	// node plus any ancestors its recovery had to re-run.
	Recomputes int64 `json:"recomputes"`
	// CorruptFrames counts cold-tier frames that failed checksum
	// verification; each was deleted on detection and its value recovered by
	// recompute.
	CorruptFrames int64 `json:"corrupt_frames"`
	// TierDisabled reports whether repeated cold-tier I/O failures tripped
	// the circuit breaker during (or before) the window, degrading the store
	// to hot-only.
	TierDisabled bool `json:"tier_disabled"`
	// GobEncodes counts values serialized through reflective gob — either
	// because Engine.Codec selected it or as the binary codec's fallback for
	// unregistered types.
	GobEncodes int64 `json:"gob_encodes"`
	// BinaryEncodes counts values serialized through the reflection-free
	// binary codec (codec.EncodeValue).
	BinaryEncodes int64 `json:"binary_encodes"`
	// MmapColdReads counts cold-tier loads served zero-copy from a memory
	// mapping (store.OpenSpillMmap; always 0 otherwise).
	MmapColdReads int64 `json:"mmap_cold_reads"`
	// BufferedColdReads counts cold-tier loads that took the buffered
	// os.ReadFile path.
	BufferedColdReads int64 `json:"buffered_cold_reads"`
	// CrossSessionHits counts planned loads served from materializations a
	// *different* tenant produced — the cross-user sub-DAG dedup the shared
	// store buys. Only the serve layer populates it (a single-session engine
	// cannot know who wrote an entry's bytes); always 0 elsewhere. Since
	// schema 3 the serve layer folds in-flight hits against foreign-owned
	// entries into it too, so the metric reads "nodes this run did not
	// compute because another tenant's work covered them".
	CrossSessionHits int64 `json:"cross_session_hits"`
	// InflightDedupHits counts compute-planned nodes that were served by a
	// concurrent in-flight computation of the same signature instead of
	// running their operator — the single-flight registry's dedup
	// (Engine.SingleFlight; always 0 when disabled).
	InflightDedupHits int64 `json:"inflight_dedup_hits"`
	// InflightWaits counts compute-planned nodes that parked as
	// single-flight waiters on another run's in-flight computation,
	// whatever the wait's outcome (served, leadership handoff, timeout).
	InflightWaits int64 `json:"inflight_waits"`
}

// Add accumulates o into c field by field. TierDisabled latches (true once
// any window saw the breaker open). The service's lifetime totals are built
// with it.
func (c *Counters) Add(o Counters) {
	c.Steals += o.Steals
	c.Handoffs += o.Handoffs
	c.AffinityKeeps += o.AffinityKeeps
	c.Reweights += o.Reweights
	c.Spills += o.Spills
	c.Promotions += o.Promotions
	c.Evictions += o.Evictions
	c.Retries += o.Retries
	c.Recomputes += o.Recomputes
	c.CorruptFrames += o.CorruptFrames
	c.TierDisabled = c.TierDisabled || o.TierDisabled
	c.GobEncodes += o.GobEncodes
	c.BinaryEncodes += o.BinaryEncodes
	c.MmapColdReads += o.MmapColdReads
	c.BufferedColdReads += o.BufferedColdReads
	c.CrossSessionHits += o.CrossSessionHits
	c.InflightDedupHits += o.InflightDedupHits
	c.InflightWaits += o.InflightWaits
}
