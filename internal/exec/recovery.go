package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

// recomputer converts a failed planned load — a corrupt cold frame, a read
// I/O error, an entry that vanished — into a local recompute of the node's
// unfinished sub-DAG. The DAG is the value's lineage: every stored result's
// recompute path is known, so storage damage degrades to a cache miss
// instead of a run failure.
//
// Recovery is deliberately LOCAL to the recovering worker: it recomputes the
// failing node from its ancestors through its own memo table, re-loading
// intact Load-state ancestors from the store but never reading the run's
// shared value slots. Ancestors the plan pruned were never dispatched, and
// ancestors the plan computes may be running concurrently (their slots are
// plain, release may clear them, and waiting on them could deadlock a
// single-worker run) — duplicating a little compute is the price of a
// recovery that is race-free under every dispatcher and worker count.
type recomputer struct {
	e     *Engine
	g     *dag.Graph
	tasks []Task
	plan  *opt.Plan
	stats *faultStats
}

// recoverLoad recomputes the value node id's load should have produced.
// loadErr, the failure that triggered recovery, is folded into the error on
// an unrecoverable lineage (an ancestor with no Run function, or a fatal
// operator fault during the recompute).
func (r *recomputer) recoverLoad(ctx context.Context, id dag.NodeID, loadErr error) (any, error) {
	memo := make(map[dag.NodeID]any)
	v, err := r.recompute(ctx, id, memo, true)
	if err != nil {
		return nil, fmt.Errorf("recovering failed load (%v): %w", loadErr, err)
	}
	return v, nil
}

// recompute returns node id's value, memoized per recovery: intact
// Load-state ancestors are served from the store (root already failed its
// load and always recomputes), everything else runs its operator — under
// the engine's fault policy, so transient faults retry here too — over
// recursively recovered parent values.
func (r *recomputer) recompute(ctx context.Context, id dag.NodeID, memo map[dag.NodeID]any, root bool) (any, error) {
	if v, ok := memo[id]; ok {
		return v, nil
	}
	if !root && r.plan.States[id] == opt.Load && r.e.Store != nil && r.tasks[id].Key != "" {
		if v, _, err := r.e.tiers().Get(r.tasks[id].Key); err == nil {
			memo[id] = v
			return v, nil
		}
		// A damaged frame in the lineage degrades the same way: fall
		// through and recompute this ancestor too.
	}
	parents := r.g.Parents(id)
	inputs := make([]any, len(parents))
	for i, p := range parents {
		v, err := r.recompute(ctx, p, memo, false)
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	if r.tasks[id].Run == nil {
		return nil, fmt.Errorf("exec: recompute %s: node has no Run function", r.g.Node(id).Name)
	}
	v, err := r.e.runTask(ctx, id, r.tasks[id].Run, inputs, r.stats)
	if err != nil {
		return nil, fmt.Errorf("exec: recompute %s: %w", r.g.Node(id).Name, err)
	}
	r.stats.recomputes.Add(1)
	memo[id] = v
	return v, nil
}

// pinSet holds one Execute call's planned-load pins: every Load-state
// node's key is pinned in the cold tier before dispatch, so the spill
// tier's within-run LRU eviction can never delete a key the plan still
// depends on. Each node's pin is released the moment its load (or recovery)
// completes — CAS-guarded, so the end-of-run sweep that covers error paths
// never double-unpins. Pins are refcounted in the store, so load nodes
// sharing a key compose. A nil *pinSet (no spill tier) is a valid no-op
// receiver.
type pinSet struct {
	tv   *store.Tiered
	keys []string // by node ID; "" = node pinned nothing
	done []atomic.Bool
}

// newPinSet pins every planned-load key and records what to unpin.
func newPinSet(tv *store.Tiered, tasks []Task, plan *opt.Plan) *pinSet {
	p := &pinSet{tv: tv, keys: make([]string, len(tasks)), done: make([]atomic.Bool, len(tasks))}
	for i := range tasks {
		if plan.States[i] == opt.Load && tasks[i].Key != "" {
			p.keys[i] = tasks[i].Key
			tv.Pin(tasks[i].Key)
		}
	}
	return p
}

// release unpins node id's key, exactly once.
func (p *pinSet) release(id dag.NodeID) {
	if p == nil {
		return
	}
	if k := p.keys[id]; k != "" && p.done[id].CompareAndSwap(false, true) {
		p.tv.Unpin(k)
	}
}

// releaseAll unpins every key not already released by its load — the
// end-of-run (and error-path) sweep.
func (p *pinSet) releaseAll() {
	if p == nil {
		return
	}
	for i := range p.keys {
		p.release(dag.NodeID(i))
	}
}
