package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// keyDedupe is the in-run first-claim set both executors use to keep nodes
// sharing a result signature (identical subcomputations under content
// addressing) from racing to materialize the same key: without it, both
// nodes can pass the Store.Has check before either write lands, double-
// encoding the value and double-reserving its budget.
type keyDedupe struct {
	mu   sync.Mutex
	keys map[string]bool
}

// claim reports whether the caller is the first to claim key this run.
func (d *keyDedupe) claim(key string) bool {
	d.mu.Lock()
	dup := d.keys[key]
	d.keys[key] = true
	d.mu.Unlock()
	return !dup
}

// matJob carries one completed value into the background materialization
// pipeline together with the measurements its policy decision needs. The
// job owns a reference to the value, so the scheduler may release it from
// Result.Values before the write lands.
type matJob struct {
	id         dag.NodeID
	name       string
	key        string
	value      any
	computeDur time.Duration
	// finish marks the submitter as the key's single-flight leader: the
	// writer resolves the flight (FinishCompute) right after the publish
	// decision lands, so parked waiters wake to a store that already holds
	// the bytes when the policy said yes.
	finish bool
}

// matWriter is the bounded asynchronous materialization pipeline of the
// dataflow scheduler: completed values are queued (one slot per node, so a
// single Execute never blocks submitting) and drained by a small pool of
// writer goroutines that decide, encode and persist off the critical path.
// Execute flushes the pipeline — also on error — before returning, so the
// store and Result accounting are always complete.
//
// Policy decisions still happen "the moment each result becomes available"
// in the paper's online sense — values are handed over at completion, never
// buffered for batch decisions — but with more than one writer two
// decisions may be concurrent rather than strictly ordered by completion.
type matWriter struct {
	e        *Engine
	g        *dag.Graph
	res      *Result
	resMu    *sync.Mutex
	durs     []atomic.Int64 // the run's lock-free duration plane (runCtx.durs)
	closures [][]dag.NodeID // ancestor closures, precomputed once per run
	jobs     chan matJob
	wg       sync.WaitGroup

	// queued dedupes in-flight keys within one run: when several nodes
	// share a result signature (identical subcomputations), only the first
	// completion is submitted.
	queued keyDedupe
}

// newMatWriter starts the writer pool for one Execute call. The ancestor
// closures exist only when something reads the recomputation-chain term —
// a policy that declares NeedsAncestorCost, or an attached spill tier
// (the term becomes the entry's reward-aware eviction hint);
// decideAndPersist never invokes the cost callback otherwise, so the nil
// slice is never indexed.
func newMatWriter(rc *runCtx) *matWriter {
	e, g := rc.e, rc.g
	w := &matWriter{
		e:      e,
		g:      g,
		res:    rc.res,
		resMu:  &rc.resMu,
		durs:   rc.durs,
		jobs:   make(chan matJob, g.Len()),
		queued: keyDedupe{keys: make(map[string]bool)},
	}
	if e.Policy.NeedsAncestorCost() || e.Spill != nil {
		w.closures = opt.AncestorClosures(g)
	}
	for i := 0; i < e.matWriters(); i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for j := range w.jobs {
				w.process(j)
			}
		}()
	}
	return w
}

// submit hands a completed value to the pipeline, reporting whether a job
// was queued. Keys already queued this run are skipped (shared-signature
// nodes must not race to double-write), as are keys persisted — in either
// tier — by an earlier iteration; a rejected submit leaves any single-flight
// leadership with the caller (finish travels only with a queued job).
func (w *matWriter) submit(id dag.NodeID, name, key string, v any, computeDur time.Duration, finish bool) bool {
	if key == "" {
		return false // not addressable
	}
	if !w.queued.claim(key) || w.e.tiers().Has(key) {
		return false // in flight this run, or persisted by an earlier iteration
	}
	w.jobs <- matJob{id: id, name: name, key: key, value: v, computeDur: computeDur, finish: finish}
	return true
}

// flush closes the queue and waits for every in-flight decision and write.
func (w *matWriter) flush() {
	close(w.jobs)
	w.wg.Wait()
}

// process consults the policy and persists the value when told to — the
// same decision the level-barrier path makes synchronously, made here on a
// background goroutine.
func (w *matWriter) process(j matJob) {
	matDur, size, materialized, reward := w.e.decideAndPersist(w.g, j.id, j.name, j.key, j.value, j.computeDur, func() int64 {
		return w.ancestorCost(w.closures[j.id])
	})
	if j.finish {
		// Resolve the single-flight after the publish decision: when the
		// policy materialized, waiters load the bytes; when it declined,
		// they fall back to the value handed through the registry.
		w.e.tiers().FinishCompute(j.key, j.value, nil)
	}
	w.record(j, matDur, size, materialized, reward)
}

// ancestorCost sums the best-known compute costs of the ancestors in
// closure: the measured duration when the ancestor computed this run, else
// the history estimate, else zero. Durations come from the run's atomic
// duration plane, never from res.Nodes — a decision can run while an
// ancestor is still computing (a Load node cuts the dependency chain), so
// the read must be atomic, and a still-running ancestor simply falls back
// to its history estimate, exactly like a node that never ran.
func (w *matWriter) ancestorCost(closure []dag.NodeID) int64 {
	if len(closure) == 0 {
		return 0
	}
	var total int64
	var unknown []string
	for _, a := range closure {
		if w.res.Nodes[a].State == opt.Compute {
			if d := w.durs[a].Load(); d > 0 {
				total += d
				continue
			}
		}
		unknown = append(unknown, w.res.Nodes[a].Name)
	}
	if w.e.History != nil {
		for _, d := range w.e.History.ComputeMany(unknown) {
			total += d.Nanoseconds()
		}
	}
	return total
}

// record lands the writer's accounting on the node and teaches the history
// the learned size. MatDuration stays separate from Duration: the write
// happened off the node's critical path.
func (w *matWriter) record(j matJob, matDur time.Duration, size int64, materialized bool, reward int64) {
	w.resMu.Lock()
	nr := &w.res.Nodes[j.id]
	nr.MatDuration = matDur
	nr.Size = size
	nr.Materialized = materialized
	nr.MatReward = reward
	w.resMu.Unlock()
	if w.e.History != nil {
		w.e.History.ObserveSize(j.name, size)
	}
}
