package exec

import (
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
)

// matJob carries one completed value into the background materialization
// pipeline together with the measurements its policy decision needs. The
// job owns a reference to the value, so the scheduler may release it from
// Result.Values before the write lands.
type matJob struct {
	id         dag.NodeID
	name       string
	key        string
	value      any
	computeDur time.Duration
}

// matWriter is the bounded asynchronous materialization pipeline of the
// dataflow scheduler: completed values are queued (one slot per node, so a
// single Execute never blocks submitting) and drained by a small pool of
// writer goroutines that decide, encode and persist off the critical path.
// Execute flushes the pipeline — also on error — before returning, so the
// store and Result accounting are always complete.
//
// Policy decisions still happen "the moment each result becomes available"
// in the paper's online sense — values are handed over at completion, never
// buffered for batch decisions — but with more than one writer two
// decisions may be concurrent rather than strictly ordered by completion.
type matWriter struct {
	e        *Engine
	g        *dag.Graph
	res      *Result
	resMu    *sync.Mutex
	closures [][]dag.NodeID // ancestor closures, precomputed once per run
	jobs     chan matJob
	wg       sync.WaitGroup
}

// newMatWriter starts the writer pool for one Execute call. The ancestor
// closures exist only for policies that read the recomputation-chain term;
// decideAndPersist never invokes the cost callback otherwise, so the nil
// slice is never indexed.
func newMatWriter(e *Engine, g *dag.Graph, res *Result, resMu *sync.Mutex) *matWriter {
	w := &matWriter{
		e:     e,
		g:     g,
		res:   res,
		resMu: resMu,
		jobs:  make(chan matJob, g.Len()),
	}
	if e.Policy.NeedsAncestorCost() {
		w.closures = opt.AncestorClosures(g)
	}
	for i := 0; i < e.matWriters(); i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for j := range w.jobs {
				w.process(j)
			}
		}()
	}
	return w
}

// submit hands a completed value to the pipeline.
func (w *matWriter) submit(id dag.NodeID, name, key string, v any, computeDur time.Duration) {
	if key == "" || w.e.Store.Has(key) {
		return // not addressable, or already persisted by an earlier iteration
	}
	w.jobs <- matJob{id: id, name: name, key: key, value: v, computeDur: computeDur}
}

// flush closes the queue and waits for every in-flight decision and write.
func (w *matWriter) flush() {
	close(w.jobs)
	w.wg.Wait()
}

// process consults the policy and persists the value when told to — the
// same decision the level-barrier path makes synchronously, made here on a
// background goroutine.
func (w *matWriter) process(j matJob) {
	matDur, size, materialized, reward := w.e.decideAndPersist(w.g, j.id, j.name, j.key, j.value, j.computeDur, func() int64 {
		return w.e.ancestorCost(w.closures[j.id], w.res, w.resMu, false)
	})
	w.record(j, matDur, size, materialized, reward)
}

// record lands the writer's accounting on the node and teaches the history
// the learned size. MatDuration stays separate from Duration: the write
// happened off the node's critical path.
func (w *matWriter) record(j matJob, matDur time.Duration, size int64, materialized bool, reward int64) {
	w.resMu.Lock()
	nr := &w.res.Nodes[j.id]
	nr.MatDuration = matDur
	nr.Size = size
	nr.Materialized = materialized
	nr.MatReward = reward
	w.resMu.Unlock()
	if w.e.History != nil {
		w.e.History.ObserveSize(j.name, size)
	}
}
