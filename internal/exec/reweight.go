package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dag"
)

// Reweight selects whether the dataflow scheduler re-prioritizes the
// remaining DAG mid-run as measured durations diverge from the estimates
// the initial critical-path weights were built from. It has an effect only
// under critical-path ordering (MinID carries no weights to correct) and
// the dataflow strategy.
type Reweight int

const (
	// Adaptive re-computes downstream-path weights over the unfinished
	// subgraph whenever the cumulative measured-vs-estimated divergence of
	// completed nodes crosses a threshold (with a minimum completion count
	// between passes), and re-sorts every ready queue under an epoch fence.
	// The zero value, and the default.
	Adaptive Reweight = iota
	// ReweightOff keeps the weights computed once at the top of Execute for
	// the whole run — the PR-3 behaviour, retained for A/B benchmarks.
	ReweightOff
)

func (r Reweight) String() string {
	switch r {
	case Adaptive:
		return "adaptive"
	case ReweightOff:
		return "off"
	default:
		return fmt.Sprintf("Reweight(%d)", int(r))
	}
}

// Defaults for the re-prioritization trigger. The divergence floor keeps
// passes away from runs whose estimates are wrong only at noise scale
// (microseconds of error on millisecond estimates never reorders anything
// useful); the relative factor demands the error actually dominate the
// estimates; the interval bounds pass frequency on fine-grained DAGs, and
// scales with graph size so a 4k-node run does not pay a pass per handful
// of completions.
const (
	reweightDefaultInterval = 8
	reweightIntervalDivisor = 32
	reweightDefaultMinDiv   = int64(time.Millisecond)
	// reweightCostCeiling clamps corrected per-node cost estimates (ns) so
	// a pathological measured/estimated ratio cannot overflow the weight
	// accumulation downstream (~16 minutes per node is beyond any real
	// operator this engine schedules).
	reweightCostCeiling = int64(1) << 40
)

// reweighter is the online re-prioritization state of one dataflow Execute:
// workers feed it measured durations from the lock-free duration plane as
// nodes finish, and when the accumulated divergence against the estimates
// crosses the trigger it recomputes the critical-path weights of the
// not-yet-dispatched subgraph and publishes them under an epoch fence (see
// docs/scheduler.md). All hot-path state is atomic — observe runs once per
// node completion on whichever worker finished it.
type reweighter struct {
	rc    *runCtx
	order []dag.NodeID // the engine's topo order, reused by every pass

	// started marks nodes that have begun running (set in runNode before
	// the operator executes). A pass recomputes weights only for nodes not
	// yet started: everything else is out of every ready queue already, so
	// its weight can no longer influence dispatch.
	started []atomic.Bool

	// cost is the current per-node cost estimate in nanoseconds, seeded
	// from the same history/structural estimates the initial weights used
	// and corrected by passes. Entries are atomic because observe reads a
	// node's estimate at its finish while a pass may be correcting
	// not-yet-started neighbours (and, in a narrow race, the node itself if
	// it started mid-pass).
	cost []atomic.Int64

	// opOf maps each node to its operator-type group; opMeas/opEst
	// accumulate measured and estimated nanoseconds of *finished* nodes per
	// group. The correction a pass applies to a pending node is its group's
	// measured/estimated ratio — per-node measurements cannot exist for
	// nodes that have not run, but nodes of the same operator type
	// mis-estimate together (the LiarDAG shape is exactly this). Like the
	// trigger window below, the sums are reset by each pass: every
	// observation's estimate term is the node's cost at its finish, so a
	// window's ratio measures the error of the *current* (already-
	// corrected) estimates and the multiplicative update converges instead
	// of re-applying stale lifetime error to corrected costs on every pass.
	opOf   []int32
	opMeas []atomic.Int64
	opEst  []atomic.Int64

	// Trigger window, reset by each pass: completions observed, cumulative
	// |measured − estimated|, and cumulative estimates of those completions.
	done    atomic.Int32
	div     atomic.Int64
	estDone atomic.Int64

	minDone int32 // completions required between passes
	minDiv  int64 // absolute divergence floor (ns)

	passing atomic.Bool  // one pass at a time; losers skip, never wait
	passes  atomic.Int64 // total passes this run (Result.Reweights)

	// weights is the current priority slice, epoch its version. Publish
	// order matters: a pass stores the new slice before bumping the epoch,
	// so a reader that sees the new epoch is guaranteed the new weights
	// (seeing newer weights under an old epoch merely re-sorts once more).
	weights atomic.Pointer[[]int64]
	epoch   atomic.Uint64

	// resort is the dispatcher's eager sweep: re-sort every ready queue
	// with the just-published weights. Queues missed by the sweep (or
	// pushed to with a stale slice afterwards) catch up lazily through
	// fix() on their next locked access.
	resort func()
}

// newReweighter builds the re-prioritization state for one run. weight is
// the initial critical-path slice (adopted as epoch 0); cost the estimates
// it was computed from.
func newReweighter(rc *runCtx, order []dag.NodeID, cost, weight []int64) *reweighter {
	g := rc.g
	n := g.Len()
	rw := &reweighter{
		rc:      rc,
		order:   order,
		started: make([]atomic.Bool, n),
		cost:    make([]atomic.Int64, n),
		opOf:    make([]int32, n),
		minDone: rc.e.reweightInterval(n),
		minDiv:  rc.e.reweightMinDivergence(),
	}
	for i, c := range cost {
		rw.cost[i].Store(c)
	}
	groups := make(map[string]int32)
	for i := 0; i < n; i++ {
		op := g.Node(dag.NodeID(i)).Op
		gi, ok := groups[op]
		if !ok {
			gi = int32(len(groups))
			groups[op] = gi
		}
		rw.opOf[i] = gi
	}
	rw.opMeas = make([]atomic.Int64, len(groups))
	rw.opEst = make([]atomic.Int64, len(groups))
	rw.weights.Store(&weight)
	return rw
}

// reweightInterval resolves the minimum completion count between passes:
// the engine's explicit setting, else a default that grows with graph size.
func (e *Engine) reweightInterval(nodes int) int32 {
	if e.ReweightInterval > 0 {
		return int32(e.ReweightInterval)
	}
	min := nodes / reweightIntervalDivisor
	if min < reweightDefaultInterval {
		min = reweightDefaultInterval
	}
	return int32(min)
}

// reweightMinDivergence resolves the absolute divergence floor.
func (e *Engine) reweightMinDivergence() int64 {
	if e.ReweightMinDivergence > 0 {
		return e.ReweightMinDivergence.Nanoseconds()
	}
	return reweightDefaultMinDiv
}

// current returns the live weight slice and its epoch for heap fixing.
func (rw *reweighter) current() ([]int64, uint64) {
	// Epoch before weights: if a pass publishes in between, the caller
	// re-sorts with the new weights but records the old epoch and simply
	// fixes again on its next access — never the reverse (new epoch with
	// old weights would wedge a queue on stale priorities until the pass
	// after next).
	e := rw.epoch.Load()
	return *rw.weights.Load(), e
}

// fix re-sorts one ready queue if a pass has published since the queue was
// last sorted. Callers hold the lock guarding h; the re-heapify is the
// entire cost of the epoch fence on the dispatch path, and it is O(1) — an
// epoch compare — while no pass has intervened.
func (rw *reweighter) fix(h *nodeHeap) {
	w, e := rw.current()
	if h.epoch == e {
		return
	}
	h.weight = w
	h.epoch = e
	h.heapify()
}

// markStarted records that a node has begun running (and is therefore out
// of every ready queue: passes stop touching its weight).
func (rw *reweighter) markStarted(id dag.NodeID) {
	rw.started[int(id)].Store(true)
}

// observe feeds one finished node's measured duration (ns) into the trigger
// window and its operator group. Called once per completed node by the
// worker that ran it; everything it touches is atomic.
func (rw *reweighter) observe(id dag.NodeID, measured int64) {
	est := rw.cost[int(id)].Load()
	d := measured - est
	if d < 0 {
		d = -d
	}
	rw.div.Add(d)
	rw.estDone.Add(est)
	op := rw.opOf[int(id)]
	rw.opMeas[op].Add(measured)
	rw.opEst[op].Add(est)
	rw.done.Add(1)
}

// shouldPass reports whether the trigger window justifies a pass: enough
// completions since the last one, divergence above the absolute floor, and
// divergence at least half the estimates it accumulated against (a run
// whose estimates are broadly right never pays a single pass).
func (rw *reweighter) shouldPass() bool {
	if rw.done.Load() < rw.minDone {
		return false
	}
	div := rw.div.Load()
	return div >= rw.minDiv && 2*div >= rw.estDone.Load()
}

// maybePass runs a re-prioritization pass if the trigger fires and no other
// worker is already in one. Losers of the CAS skip — the winner's pass
// serves them — so the dispatch path never blocks on re-weighting.
func (rw *reweighter) maybePass() {
	if !rw.shouldPass() || !rw.passing.CompareAndSwap(false, true) {
		return
	}
	defer rw.passing.Store(false)
	if !rw.shouldPass() { // re-check: a concurrent pass may have just reset the window
		return
	}
	rw.pass()
}

// pass is one re-prioritization: correct the cost estimates of every
// not-yet-started node by its operator group's measured/estimated ratio,
// recompute downstream-path weights over that unfinished subgraph
// (dag.CriticalPathFrom, reusing the run's topo order), publish the new
// slice under the epoch fence, and eagerly re-sort the ready queues.
func (rw *reweighter) pass() {
	// Reset the window first: completions landing during the pass count
	// toward the next trigger instead of being lost.
	rw.done.Store(0)
	rw.div.Store(0)
	rw.estDone.Store(0)

	g := rw.rc.g
	n := g.Len()
	// Snapshot and reset the per-group sums: this pass consumes exactly the
	// window's observations (Swap, so a completion racing the pass lands in
	// the next window, never in both). A group with no observations this
	// window keeps ratio 0 and its costs untouched.
	ratio := make([]float64, len(rw.opMeas))
	for i := range ratio {
		meas, est := rw.opMeas[i].Swap(0), rw.opEst[i].Swap(0)
		if meas > 0 && est > 0 {
			ratio[i] = float64(meas) / float64(est)
		}
	}
	cost := make([]int64, n)
	skip := func(id dag.NodeID) bool { return rw.started[int(id)].Load() }
	for i := 0; i < n; i++ {
		c := rw.cost[i].Load()
		if !skip(dag.NodeID(i)) {
			if r := ratio[rw.opOf[i]]; r > 0 {
				nc := float64(c) * r
				switch {
				case nc > float64(reweightCostCeiling):
					c = reweightCostCeiling
				case nc < 1:
					c = 1
				default:
					c = int64(nc)
				}
				rw.cost[i].Store(c)
			}
		}
		cost[i] = c
	}
	prev := *rw.weights.Load()
	w, err := g.CriticalPathFrom(cost, rw.order, skip, prev)
	if err != nil {
		return // unreachable: the slices are sized by construction
	}
	rw.weights.Store(&w)
	rw.epoch.Add(1)
	rw.passes.Add(1)
	if rw.resort != nil {
		rw.resort()
	}
}
