package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/store"
)

func TestClassifyDefault(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{ErrTransient, ClassTransient},
		{fmt.Errorf("flaky source: %w", ErrTransient), ClassTransient},
		{context.DeadlineExceeded, ClassTransient},
		{fmt.Errorf("attempt timed out: %w", context.DeadlineExceeded), ClassTransient},
		{errors.New("segfault in operator"), ClassFatal},
		{context.Canceled, ClassFatal},
	}
	for _, tc := range cases {
		if got := ClassifyDefault(tc.err); got != tc.want {
			t.Errorf("ClassifyDefault(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := FaultPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 42}
	for _, id := range []dag.NodeID{0, 3, 17} {
		for attempt := 1; attempt <= 6; attempt++ {
			raw := p.BaseBackoff << (attempt - 1)
			if raw > p.MaxBackoff {
				raw = p.MaxBackoff
			}
			d := p.backoff(id, attempt)
			if d < raw/2 || d > raw {
				t.Errorf("backoff(node %d, attempt %d) = %v, want within [%v, %v]", id, attempt, d, raw/2, raw)
			}
			if again := p.backoff(id, attempt); again != d {
				t.Errorf("backoff(node %d, attempt %d) not deterministic: %v then %v", id, attempt, d, again)
			}
		}
	}
	// Different seeds decorrelate the jitter stream (deterministically, so
	// this assertion is stable).
	q := p
	q.JitterSeed = 43
	same := 0
	for attempt := 1; attempt <= 6; attempt++ {
		if p.backoff(0, attempt) == q.backoff(0, attempt) {
			same++
		}
	}
	if same == 6 {
		t.Error("jitter identical across seeds 42 and 43 for every attempt")
	}
}

func TestBackoffZeroPolicyUsesDefaults(t *testing.T) {
	var p FaultPolicy
	for attempt := 1; attempt <= 12; attempt++ {
		d := p.backoff(1, attempt)
		if d <= 0 || d > defaultMaxBackoff {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, defaultMaxBackoff)
		}
	}
}

// faultSchedulers enumerates every scheduler/dispatcher combination the
// fault policy must behave identically under.
func faultSchedulers() []struct {
	name string
	cfg  func(*Engine)
} {
	return []struct {
		name string
		cfg  func(*Engine)
	}{
		{"worksteal", func(e *Engine) { e.Sched = Dataflow; e.Dispatch = WorkSteal }},
		{"globalheap", func(e *Engine) { e.Sched = Dataflow; e.Dispatch = GlobalHeap }},
		{"levelbarrier", func(e *Engine) { e.Sched = LevelBarrier }},
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	for _, sc := range faultSchedulers() {
		t.Run(sc.name, func(t *testing.T) {
			g, tasks := buildChain(t)
			var calls atomic.Int32
			inner := tasks[1].Run
			tasks[1].Run = func(ctx context.Context, in []any) (any, error) {
				if calls.Add(1) <= 2 {
					return nil, fmt.Errorf("blip %d: %w", calls.Load(), ErrTransient)
				}
				return inner(ctx, in)
			}
			e := &Engine{Workers: 2, Faults: FaultPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}}
			sc.cfg(e)
			res, err := e.Execute(g, tasks, allCompute(3))
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := res.Value(g, "c"); !ok || v.(string) != "abc" {
				t.Fatalf("c = %v, %v", v, ok)
			}
			if res.Retries != 2 {
				t.Fatalf("Retries = %d, want 2", res.Retries)
			}
		})
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	g, tasks := buildChain(t)
	var calls atomic.Int32
	tasks[1].Run = func(context.Context, []any) (any, error) {
		calls.Add(1)
		return nil, fmt.Errorf("never recovers: %w", ErrTransient)
	}
	e := &Engine{Workers: 2, Faults: FaultPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}}
	_, err := e.Execute(g, tasks, allCompute(3))
	if err == nil {
		t.Fatal("run succeeded with a permanently failing node")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want the operator error preserved", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want the attempt count surfaced", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("operator ran %d times, want exactly the 3-attempt budget", got)
	}
}

func TestFatalErrorNeverRetried(t *testing.T) {
	g, tasks := buildChain(t)
	boom := errors.New("operator bug")
	var calls atomic.Int32
	tasks[1].Run = func(context.Context, []any) (any, error) {
		calls.Add(1)
		return nil, boom
	}
	e := &Engine{Workers: 2, Faults: FaultPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fatal error", err)
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("err = %v; a first-attempt fatal must not be wrapped in retry accounting", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fatal operator ran %d times, want 1", calls.Load())
	}
	if res != nil && res.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", res.Retries)
	}
}

func TestCustomClassifier(t *testing.T) {
	g, tasks := buildChain(t)
	flaky := errors.New("my own flaky error")
	var calls atomic.Int32
	inner := tasks[1].Run
	tasks[1].Run = func(ctx context.Context, in []any) (any, error) {
		if calls.Add(1) == 1 {
			return nil, flaky
		}
		return inner(ctx, in)
	}
	e := &Engine{Workers: 2, Faults: FaultPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		Classify: func(err error) ErrorClass {
			if errors.Is(err, flaky) {
				return ClassTransient
			}
			return ClassFatal
		},
	}}
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", res.Retries)
	}
}

func TestNodeTimeoutInterruptsSlowAttempt(t *testing.T) {
	g, tasks := buildChain(t)
	var calls atomic.Int32
	inner := tasks[1].Run
	tasks[1].Run = func(ctx context.Context, in []any) (any, error) {
		if calls.Add(1) == 1 {
			// A ctx-honoring stall far past the node deadline: only the
			// per-attempt timeout can end it promptly.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return nil, errors.New("deadline never fired")
			}
		}
		return inner(ctx, in)
	}
	e := &Engine{Workers: 2, Faults: FaultPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		NodeTimeout: 5 * time.Millisecond,
	}}
	start := time.Now()
	res, err := e.Execute(g, tasks, allCompute(3))
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("run took %v; the deadline did not interrupt the stalled attempt", wall)
	}
	if v, ok := res.Value(g, "c"); !ok || v.(string) != "abc" {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if res.Retries < 1 {
		t.Fatalf("Retries = %d, want the deadline expiry retried", res.Retries)
	}
}

func TestRetriesDuringRecompute(t *testing.T) {
	// A failed load's recovery runs operators under the same fault policy:
	// a transient fault inside the recompute retries there too.
	g, tasks := buildChain(t)
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bCalls atomic.Int32
	innerB := tasks[1].Run
	tasks[1].Run = func(ctx context.Context, in []any) (any, error) {
		if bCalls.Add(1) == 1 {
			return nil, fmt.Errorf("recompute blip: %w", ErrTransient)
		}
		return innerB(ctx, in)
	}
	e := &Engine{Workers: 2, Store: st, Policy: opt.MaterializeAll{},
		Faults: FaultPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}}
	if _, err := e.Execute(g, tasks, allCompute(3)); err != nil {
		t.Fatal(err)
	}
	// Damage the persisted value of b, then plan to load it.
	if err := os.Remove(filepath.Join(dir, "kb")); err != nil {
		t.Fatal(err)
	}
	bCalls.Store(0)
	plan := allCompute(3)
	plan.States[0] = opt.Prune
	plan.States[1] = opt.Load
	res, err := e.Execute(g, tasks, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Value(g, "c"); !ok || v.(string) != "abc" {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if res.Recomputes < 1 {
		t.Fatalf("Recomputes = %d, want >= 1", res.Recomputes)
	}
	if res.Retries < 1 {
		t.Fatalf("Retries = %d, want the recompute's transient fault retried", res.Retries)
	}
}

func TestRecomputeAfterVanishedFile(t *testing.T) {
	// A planned load whose backing file vanished out from under the store
	// (single tier, no spill) recovers by lineage recompute, on every
	// scheduler.
	for _, sc := range faultSchedulers() {
		t.Run(sc.name, func(t *testing.T) {
			g, tasks := buildChain(t)
			dir := t.TempDir()
			st, err := store.Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			prime := &Engine{Workers: 2, Store: st, Policy: opt.MaterializeAll{}}
			if _, err := prime.Execute(g, tasks, allCompute(3)); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(filepath.Join(dir, "kb")); err != nil {
				t.Fatal(err)
			}
			plan := allCompute(3)
			plan.States[0] = opt.Prune
			plan.States[1] = opt.Load
			e := &Engine{Workers: 2, Store: st}
			sc.cfg(e)
			res, err := e.Execute(g, tasks, plan)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := res.Value(g, "c"); !ok || v.(string) != "abc" {
				t.Fatalf("c = %v, %v", v, ok)
			}
			if res.Recomputes < 1 {
				t.Fatalf("Recomputes = %d, want >= 1", res.Recomputes)
			}
		})
	}
}

func TestPinSetReleaseOnce(t *testing.T) {
	hot, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tv := store.NewTiered(hot, cold)
	tasks := []Task{{Key: "ka"}, {Key: "kb"}, {Key: ""}}
	plan := &opt.Plan{States: []opt.State{opt.Load, opt.Compute, opt.Load}}
	p := newPinSet(tv, tasks, plan)
	if !cold.Pinned("ka") {
		t.Fatal("planned-load key not pinned at run start")
	}
	if cold.Pinned("kb") {
		t.Fatal("compute-state key pinned")
	}
	p.release(0)
	if cold.Pinned("ka") {
		t.Fatal("key still pinned after its load released it")
	}
	// The end-of-run sweep must not double-unpin an already-released key:
	// pin it again externally and confirm the sweep leaves it alone.
	tv.Pin("ka")
	p.releaseAll()
	if !cold.Pinned("ka") {
		t.Fatal("releaseAll double-unpinned a key its load already released")
	}
	tv.Unpin("ka")

	// A nil pinSet (no spill tier) is a valid no-op receiver.
	var nilPins *pinSet
	nilPins.release(0)
	nilPins.releaseAll()
}

func TestDropCollateralCancels(t *testing.T) {
	boom := errors.New("root cause")
	mixed := []error{context.Canceled, boom, fmt.Errorf("worker: %w", context.Canceled)}
	got := dropCollateralCancels(mixed)
	if len(got) != 1 || !errors.Is(got[0], boom) {
		t.Fatalf("got %v, want just the root cause", got)
	}
	onlyCancels := []error{context.Canceled, fmt.Errorf("w: %w", context.Canceled)}
	if got := dropCollateralCancels(onlyCancels); len(got) != 2 {
		t.Fatalf("external cancellation lost: got %v", got)
	}
}
