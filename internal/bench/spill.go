package bench

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// payloadTask returns a deterministic task that sleeps d and emits a
// payloadBytes-sized string derived from the node's index and its inputs
// (the root's int seeds the pattern), so values are byte-identical across
// runs and schedulers while being big enough to pressure a storage budget.
func payloadTask(idx, payloadBytes int, d time.Duration) exec.Task {
	return exec.Task{
		Key: fmt.Sprintf("spill-p%d", idx),
		Run: func(ctx context.Context, in []any) (any, error) {
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			seed := idx
			for _, v := range in {
				seed = seed*31 + v.(int)
			}
			pat := fmt.Sprintf("p%d:%d|", idx, seed)
			var b strings.Builder
			b.Grow(payloadBytes)
			for b.Len() < payloadBytes {
				b.WriteString(pat)
			}
			return b.String()[:payloadBytes], nil
		},
	}
}

// SpillDAG is the tiered-store pressure shape: a root fans out to
// `producers` payload nodes (each emitting a deterministic payloadBytes-
// sized string after sleeping d) joining into one output, so with a
// materialize-everything policy the run persists ≈ producers×payloadBytes
// bytes. Size the hot budget below that and admission must spill — the
// workload the spill ablation and the tiered-store acceptance tests drive.
// As a plain scheduler shape (no store attached) it doubles as a
// wide-fanout dispatch workload with large values, which is why it also
// rides the dispatch ablation into BENCH_baseline.json.
func SpillDAG(producers, payloadBytes int, d time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{{Key: "spill-root", Run: func(context.Context, []any) (any, error) { return 1, nil }}}
	join := g.MustAddNode("join", "agg")
	for p := 0; p < producers; p++ {
		id := g.MustAddNode(fmt.Sprintf("pay%d", p), "op")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, payloadTask(int(id), payloadBytes, d))
	}
	g.Node(join).Output = true
	tasks = append(tasks, exec.Task{
		Key: "spill-join",
		Run: func(_ context.Context, in []any) (any, error) {
			sum := 17
			for _, v := range in {
				s := v.(string)
				sum = sum*31 + len(s) + int(s[0])
			}
			return sum, nil
		},
	})
	// The join's task was appended after the producers, matching its ID
	// (root=0, join=1, producers=2..): reorder so tasks[i] drives node i.
	ordered := make([]exec.Task, len(tasks))
	ordered[0] = tasks[0]
	ordered[1] = tasks[len(tasks)-1]
	copy(ordered[2:], tasks[1:len(tasks)-1])
	return &SchedDAG{Name: "spill", G: g, Tasks: ordered}
}

// DefaultSpillDAG returns the canonical spill-pressure shape: 24 producers
// × 32 KiB payloads, ≈ 786 KiB materialized per all-compute iteration. The
// 1ms producer sleep dominates the payload construction, keeping the
// shape's wall time machine-insensitive enough for the benchdiff gate.
func DefaultSpillDAG() *SchedDAG {
	return SpillDAG(24, 32<<10, time.Millisecond)
}

// SpillMeasurement is one machine-readable data point of the spill
// ablation: one store configuration driven through two iterations of the
// spill shape (materialize-all, history attached so the second iteration
// plans loads against per-tier costs).
type SpillMeasurement struct {
	Config      string  `json:"config"`
	HotBudget   int64   `json:"hot_budget"`
	Iter1WallMS float64 `json:"iter1_wall_ms"`
	Iter2WallMS float64 `json:"iter2_wall_ms"`
	Spills      int64   `json:"spills"`
	Promotions  int64   `json:"promotions"`
	Evictions   int64   `json:"evictions"`
	HotUsed     int64   `json:"hot_used"`
	ColdUsed    int64   `json:"cold_used"`
	// Loaded2 and Computed2 count the second iteration's plan states: how
	// much of the first run's materialization the optimizer chose to reuse
	// given each tier's load cost.
	Loaded2   int `json:"loaded_2"`
	Computed2 int `json:"computed_2"`
}

// OutputValuesEqual checks that two runs agree byte-identically on every
// graph output value. Unlike SchedValuesEqual it ignores non-output nodes:
// two runs under different plans legitimately retain different
// intermediates (a pruned subgraph has no values at all), but the outputs
// must match whatever the plan.
func OutputValuesEqual(g *dag.Graph, a, b *exec.Result) error {
	for _, id := range g.Outputs() {
		av, aok := a.Values[id]
		bv, bok := b.Values[id]
		if !aok || !bok {
			return fmt.Errorf("bench: output node %d present %v vs %v", id, aok, bok)
		}
		ra, err := store.Encode(av)
		if err != nil {
			return fmt.Errorf("bench: encode output %d: %w", id, err)
		}
		rb, err := store.Encode(bv)
		if err != nil {
			return fmt.Errorf("bench: encode output %d: %w", id, err)
		}
		if !bytes.Equal(ra, rb) {
			return fmt.Errorf("bench: output node %d: values not byte-identical", id)
		}
	}
	return nil
}

// MeasureSpill drives the shape through two iterations under one store
// configuration rooted at dir: iteration 1 all-compute (materializing
// through the tiered admission path), iteration 2 on the optimizer's plan
// over the resulting per-tier cost model. withSpill attaches a cold tier
// with the given budget (<=0 unbudgeted); hotBudget <=0 leaves the hot
// tier unbudgeted. Both iterations' Results are returned for value checks.
func MeasureSpill(sd *SchedDAG, dir string, hotBudget, spillBudget int64, withSpill bool, workers int) (SpillMeasurement, [2]*exec.Result, error) {
	var out [2]*exec.Result
	st, err := store.Open(filepath.Join(dir, "hot"), hotBudget)
	if err != nil {
		return SpillMeasurement{}, out, err
	}
	var sp *store.Spill
	if withSpill {
		if sp, err = store.OpenSpill(filepath.Join(dir, "cold"), spillBudget); err != nil {
			return SpillMeasurement{}, out, err
		}
	}
	e := &exec.Engine{
		Workers: workers,
		Store:   st,
		Spill:   sp,
		Policy:  opt.MaterializeAll{},
		History: exec.NewHistory(),
	}
	res1, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		return SpillMeasurement{}, out, err
	}
	cm, err := e.BuildCostModel(sd.G, sd.Tasks)
	if err != nil {
		return SpillMeasurement{}, out, err
	}
	plan2, err := opt.Optimal(sd.G, cm)
	if err != nil {
		return SpillMeasurement{}, out, err
	}
	res2, err := e.Execute(sd.G, sd.Tasks, plan2)
	if err != nil {
		return SpillMeasurement{}, out, err
	}
	out[0], out[1] = res1, res2
	m := SpillMeasurement{
		HotBudget:   hotBudget,
		Iter1WallMS: float64(res1.Wall.Microseconds()) / 1000,
		Iter2WallMS: float64(res2.Wall.Microseconds()) / 1000,
		Spills:      res1.Spills + res2.Spills,
		Promotions:  res1.Promotions + res2.Promotions,
		Evictions:   res1.Evictions + res2.Evictions,
		HotUsed:     st.Used(),
	}
	if sp != nil {
		m.ColdUsed = sp.Used()
	}
	for _, s := range plan2.States {
		switch s {
		case opt.Load:
			m.Loaded2++
		case opt.Compute:
			m.Computed2++
		}
	}
	return m, out, nil
}
