package bench

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/store"
)

// TestRecomputeHeavyShape pins the structural contract the eviction
// ablation depends on: tasks align with node IDs, the crown is the chain's
// last link and a graph output, and the shape is registered under the
// canonical name.
func TestRecomputeHeavyShape(t *testing.T) {
	sd := DefaultRecomputeHeavyDAG()
	if sd.Name != "recompute-heavy" {
		t.Fatalf("shape name %q", sd.Name)
	}
	if got, want := sd.G.Len(), 1+rheavyChainDepth+1+rheavyFillers; got != want {
		t.Fatalf("node count %d, want %d", got, want)
	}
	if len(sd.Tasks) != sd.G.Len() {
		t.Fatalf("%d tasks for %d nodes", len(sd.Tasks), sd.G.Len())
	}
	crown := -1
	for i, task := range sd.Tasks {
		if task.Key == RecomputeHeavyCrownKey {
			crown = i
		}
	}
	if crown < 0 {
		t.Fatal("no task carries the crown key")
	}
	n := sd.G.Node(dag.NodeID(crown))
	if !n.Output || n.Op != "chain" {
		t.Fatalf("crown node output=%v op=%q, want a chain output", n.Output, n.Op)
	}
	if _, err := Shape("recompute-heavy"); err != nil {
		t.Fatalf("not in DefaultShapes: %v", err)
	}
	res, err := RunSched(sd, exec.Dataflow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatal("no wall time")
	}
}

// measureEvictionBest runs MeasureEviction n times on fresh directories and
// returns the measurement with the lowest second-iteration wall plus the
// Results of that run. The first run's outputs are value-checked against
// ref.
func measureEvictionBest(t *testing.T, n int, policy store.EvictionPolicy, maxflow bool, ref *exec.Result) EvictionMeasurement {
	t.Helper()
	var best EvictionMeasurement
	for i := 0; i < n; i++ {
		sd := DefaultRecomputeHeavyDAG()
		m, res, err := MeasureEviction(sd, t.TempDir(), RecomputeHeavyColdBudget, policy, maxflow, 8)
		if err != nil {
			t.Fatalf("%s: %v", EvictionConfigName(policy, maxflow), err)
		}
		if i == 0 {
			for it, r := range res {
				if err := OutputValuesEqual(sd.G, ref, r); err != nil {
					t.Errorf("%s iter%d: %v", m.Config, it+1, err)
				}
			}
		}
		if i == 0 || m.Iter2WallMS < best.Iter2WallMS {
			crown := best.CrownRetained
			best = m
			if i > 0 {
				// Retention is a policy property, not a timing one: any run
				// losing the crown under a policy that should keep it (or
				// vice versa) must fail the test, whichever run was fastest.
				best.CrownRetained = crown && m.CrownRetained
			}
		} else if !m.CrownRetained {
			best.CrownRetained = false
		}
	}
	return best
}

// TestRewardEvictionBeatsLRU is the tentpole acceptance check: on the
// recompute-heavy shape under cold-tier pressure, reward-aware eviction
// sacrifices cheap fillers and keeps the serial chain, so the second
// iteration replans against a still-loadable chain instead of recomputing
// 20 ms of serial work — at least 20% lower wall than the LRU baseline
// (in practice several times lower; the margin absorbs throttled-host
// noise). The two policies run interleaved, min-of-3 each, and both must
// produce outputs byte-identical to an unpressured in-memory reference.
func TestRewardEvictionBeatsLRU(t *testing.T) {
	ref, err := RunSched(DefaultRecomputeHeavyDAG(), exec.Dataflow, 8)
	if err != nil {
		t.Fatal(err)
	}
	lru := measureEvictionBest(t, 3, store.EvictLRU, false, ref)
	reward := measureEvictionBest(t, 3, store.EvictReward, false, ref)
	if lru.Evictions == 0 || reward.Evictions == 0 {
		t.Fatalf("no eviction pressure: lru=%d reward=%d evictions (budget %d)",
			lru.Evictions, reward.Evictions, RecomputeHeavyColdBudget)
	}
	if lru.CrownRetained {
		t.Errorf("LRU retained the crown — the shape no longer forces the policies apart")
	}
	if !reward.CrownRetained {
		t.Errorf("reward-aware eviction lost the crown (saving-per-byte ranking broken)")
	}
	if reward.Iter2WallMS > 0.8*lru.Iter2WallMS {
		t.Errorf("reward iter2 %.2fms not ≥20%% below LRU iter2 %.2fms", reward.Iter2WallMS, lru.Iter2WallMS)
	}
	t.Logf("iter2 wall: lru %.2fms (evictions %d, loaded %d) vs reward %.2fms (evictions %d, loaded %d)",
		lru.Iter2WallMS, lru.Evictions, lru.Loaded2, reward.Iter2WallMS, reward.Evictions, reward.Loaded2)
}

// TestMaxflowEvictionRetainsCrown drives the reward+maxflow configuration:
// the global evict-set planner must agree with the greedy ranking about the
// crown (keep it), still relieve the budget pressure, and stay
// byte-identical on outputs.
func TestMaxflowEvictionRetainsCrown(t *testing.T) {
	ref, err := RunSched(DefaultRecomputeHeavyDAG(), exec.Dataflow, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := measureEvictionBest(t, 1, store.EvictReward, true, ref)
	if m.Evictions == 0 {
		t.Fatal("no eviction pressure under maxflow config")
	}
	if !m.CrownRetained {
		t.Error("maxflow evict-set planner evicted the crown")
	}
	if m.ColdUsed > RecomputeHeavyColdBudget {
		t.Errorf("cold tier over budget: %d > %d", m.ColdUsed, RecomputeHeavyColdBudget)
	}
}
