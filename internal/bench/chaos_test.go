package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// chaosConfigs are the executor configurations the chaos harness drives:
// both dispatch modes × both orderings, with release toggled across the
// set so retries and recomputes race the value plane's slot clearing too.
func chaosConfigs() []schedConfig {
	return []schedConfig{
		{name: "ws-cp", sched: exec.Dataflow, dispatch: exec.WorkSteal, order: exec.CriticalPath},
		{name: "ws-minid-release", sched: exec.Dataflow, dispatch: exec.WorkSteal, order: exec.MinID, release: true},
		{name: "gh-cp-release", sched: exec.Dataflow, dispatch: exec.GlobalHeap, order: exec.CriticalPath, release: true},
		{name: "gh-minid", sched: exec.Dataflow, dispatch: exec.GlobalHeap, order: exec.MinID},
	}
}

// TestChaosEquivalence is the fault extension of the randomized
// equivalence harness: ≥32 seeded random DAGs, each executed under every
// chaos configuration against a spill-pressured tiered store (64-byte hot
// tier) with a seeded schedule of transient operator faults, must complete
// with zero run failures and agree byte-identically with a clean
// level-barrier reference on every surviving value. Aggregate retries,
// spills and promotions must all be nonzero — proof the harness actually
// exercised the retry loop and both tiers rather than passing vacuously.
func TestChaosEquivalence(t *testing.T) {
	const graphs = 32
	const tinyHot = 64
	var totalRetries, totalSpills, totalPromotions int64
	for i := 0; i < graphs; i++ {
		seed := int64(700 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}
			// The same seeded mixed plan as the spill-equivalence harness:
			// about half the nodes loadable, Optimal picks the states.
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			keep := make([]bool, n)
			cm := opt.NewCostModel(n)
			for j := 0; j < n; j++ {
				keep[j] = rng.Float64() < 0.5
				cm.Compute[j] = int64(rng.Intn(1000) + 1)
				if keep[j] {
					cm.Loadable[j] = true
					cm.Load[j] = int64(rng.Intn(1000) + 1)
				}
			}
			plan, err := opt.Optimal(sd.G, cm)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			prepopulate := func(tiers *store.Tiered) {
				for j := 0; j < n; j++ {
					if !keep[j] {
						continue
					}
					raw, err := store.Encode(truth.Values[dag.NodeID(j)])
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tiers.PutBytes(sd.Tasks[j].Key, raw); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Clean level-barrier reference on an unbudgeted single tier.
			refStore, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			prepopulate(store.NewTiered(refStore, nil))
			refEng := &exec.Engine{
				Workers: 4, Sched: exec.LevelBarrier,
				Store: refStore, Policy: opt.MaterializeAll{},
			}
			ref, err := refEng.Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}

			for ci, c := range chaosConfigs() {
				fp := DefaultFaultPlan(seed*131 + int64(ci))
				faulted, injected := WithFaults(sd, fp)
				hot, err := store.Open(t.TempDir(), tinyHot)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := store.OpenSpill(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				prepopulate(store.NewTiered(hot, cold))
				e := &exec.Engine{
					Workers:              4,
					Sched:                c.sched,
					Order:                c.order,
					Dispatch:             c.dispatch,
					ReleaseIntermediates: c.release,
					Store:                hot,
					Spill:                cold,
					Policy:               opt.MaterializeAll{},
					Reweight:             exec.ReweightOff,
					Faults:               fp.Policy(),
				}
				res, err := e.Execute(faulted.G, faulted.Tasks, plan)
				if err != nil {
					t.Fatalf("%s: faulted run failed: %v", c.name, err)
				}
				// Every injected failure on a computed node costs exactly one
				// retry; faults on loaded/pruned nodes never fire, so the
				// bound is an inequality per run and asserted > 0 in
				// aggregate.
				if res.Retries > int64(injected) {
					t.Errorf("%s: %d retries for %d injected faults", c.name, res.Retries, injected)
				}
				totalRetries += res.Retries
				totalSpills += res.Spills
				totalPromotions += res.Promotions
				for j := 0; j < n; j++ {
					id := dag.NodeID(j)
					refV, refOK := ref.Values[id]
					gotV, gotOK := res.Values[id]
					if c.release {
						if sd.G.Node(id).Output && !gotOK {
							t.Errorf("%s: output node %d released", c.name, j)
							continue
						}
						if gotOK && refOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
							t.Errorf("%s: node %d value differs from reference", c.name, j)
						}
						continue
					}
					if gotOK != refOK {
						t.Errorf("%s: node %d present=%v, reference %v", c.name, j, gotOK, refOK)
						continue
					}
					if gotOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
						t.Errorf("%s: node %d value differs from reference", c.name, j)
					}
				}
			}
		})
	}
	if totalRetries == 0 {
		t.Error("no run in the whole chaos harness retried despite injected faults")
	}
	if totalSpills == 0 {
		t.Error("no run in the whole chaos harness spilled despite the tiny hot tier")
	}
	if totalPromotions == 0 {
		t.Error("no run in the whole chaos harness promoted a cold hit")
	}
}

// loadEverythingPlan prepopulates the given tiered store with the truth
// values and returns a plan that loads every node the optimizer can —
// with load priced at 1 against compute at 1000, that is every node.
func loadEverythingPlan(t *testing.T, sd *SchedDAG, truth *exec.Result, tiers *store.Tiered) *opt.Plan {
	t.Helper()
	n := sd.G.Len()
	cm := opt.NewCostModel(n)
	for i := 0; i < n; i++ {
		raw, err := store.Encode(truth.Values[dag.NodeID(i)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tiers.PutBytes(sd.Tasks[i].Key, raw); err != nil {
			t.Fatal(err)
		}
		cm.Compute[i] = 1000
		cm.Loadable[i] = true
		cm.Load[i] = 1
	}
	plan, err := opt.Optimal(sd.G, cm)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSeededCorruptionRecompute is the acceptance corruption drill: cold
// frames for planned-load keys are deliberately bit-flipped and truncated,
// the run's loads hit store.ErrCorrupt, and the engine must recompute the
// damaged sub-DAGs from lineage and still produce byte-identical outputs —
// with the damage visible in the CorruptFrames and Recomputes counters.
func TestSeededCorruptionRecompute(t *testing.T) {
	sd := RandomDAG(4242)
	prime := &exec.Engine{Workers: 4}
	truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		t.Fatal(err)
	}
	const tinyHot = 64 // everything beyond a couple of ints lives cold
	hot, err := store.Open(t.TempDir(), tinyHot)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := loadEverythingPlan(t, sd, truth, store.NewTiered(hot, cold))

	// Corrupt two cold frames belonging to planned loads: one bit-flip
	// (checksum mismatch), one truncation (short frame).
	kinds := []store.FaultKind{store.FaultBitFlip, store.FaultTruncate}
	corrupted := 0
	for i := 0; i < sd.G.Len() && corrupted < len(kinds); i++ {
		if plan.States[i] != opt.Load || !cold.Has(sd.Tasks[i].Key) {
			continue
		}
		if err := cold.InjectFault(sd.Tasks[i].Key, kinds[corrupted]); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no cold planned-load key to corrupt; shrink the hot tier")
	}

	e := &exec.Engine{
		Workers: 4,
		Store:   hot,
		Spill:   cold,
		Policy:  opt.MaterializeAll{},
	}
	res, err := e.Execute(sd.G, sd.Tasks, plan)
	if err != nil {
		t.Fatalf("run with corrupt frames failed: %v", err)
	}
	if res.CorruptFrames < int64(corrupted) {
		t.Errorf("CorruptFrames = %d, want >= %d", res.CorruptFrames, corrupted)
	}
	if res.Recomputes == 0 {
		t.Error("Recomputes = 0: corrupt loads were not recovered by recompute")
	}
	for _, id := range sd.G.Outputs() {
		if !bytes.Equal(encodeValue(t, res.Values[id]), encodeValue(t, truth.Values[id])) {
			t.Errorf("output node %d differs from truth after corruption recovery", id)
		}
	}
}

// TestEIOBreakerDegradesToHotOnly drives repeated cold-tier read I/O
// errors through a run: every planned load hits a persistent injected
// EIO, the circuit breaker trips after the default threshold, and the run
// must still complete correctly by recomputing — reporting TierDisabled.
func TestEIOBreakerDegradesToHotOnly(t *testing.T) {
	sd := RandomDAG(1717)
	prime := &exec.Engine{Workers: 4}
	truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		t.Fatal(err)
	}
	// A 1-byte hot budget rejects every value, so prepopulation lands all
	// keys cold; the plan loads every node, so every load must traverse the
	// EIO-injected cold tier.
	hot, err := store.Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiers := store.NewTiered(hot, cold)
	states := make([]opt.State, sd.G.Len())
	for i := 0; i < sd.G.Len(); i++ {
		raw, err := store.Encode(truth.Values[dag.NodeID(i)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tiers.PutBytes(sd.Tasks[i].Key, raw); err != nil {
			t.Fatal(err)
		}
		states[i] = opt.Load
	}
	plan := &opt.Plan{States: states}
	eioKeys := 0
	for i := 0; i < sd.G.Len(); i++ {
		if cold.Has(sd.Tasks[i].Key) {
			if err := cold.InjectFault(sd.Tasks[i].Key, store.FaultEIO); err != nil {
				t.Fatal(err)
			}
			eioKeys++
		}
	}
	if eioKeys < store.DefaultBreakerThreshold {
		t.Fatalf("only %d cold planned-load keys, need >= %d to trip the breaker",
			eioKeys, store.DefaultBreakerThreshold)
	}
	// Workers: 1 and no materialization policy keep the breaker's failure
	// count strictly consecutive — no interleaved healthy cold write or
	// read resets it mid-run.
	e := &exec.Engine{Workers: 1, Store: hot, Spill: cold}
	res, err := e.Execute(sd.G, sd.Tasks, plan)
	if err != nil {
		t.Fatalf("run with EIO cold tier failed: %v", err)
	}
	if !res.TierDisabled {
		t.Error("TierDisabled = false after repeated cold-tier I/O errors")
	}
	if res.Recomputes == 0 {
		t.Error("Recomputes = 0: failed loads were not recovered by recompute")
	}
	for _, id := range sd.G.Outputs() {
		if !bytes.Equal(encodeValue(t, res.Values[id]), encodeValue(t, truth.Values[id])) {
			t.Errorf("output node %d differs from truth after EIO degradation", id)
		}
	}
}

// TestFatalFaultCancelsRun checks the fatal half of classification: a
// permanently failing node must abort the run via first-error
// cancellation — interrupting in-flight ctx-honoring operators — and the
// joined error must surface the injected fault, not the collateral
// context cancellations.
func TestFatalFaultCancelsRun(t *testing.T) {
	for _, dispatch := range []exec.DispatchMode{exec.WorkSteal, exec.GlobalHeap} {
		t.Run(dispatch.String(), func(t *testing.T) {
			// A root fanning out to slow sleepers plus one fatal node: the
			// sleepers are mid-sleep when the fatal error lands.
			sd := WideDAG(8, 50*time.Millisecond)
			tasks := append([]exec.Task(nil), sd.Tasks...)
			tasks[2] = FaultyOp(tasks[2], FaultSchedule{Fatal: true})
			e := &exec.Engine{
				Workers:  4,
				Dispatch: dispatch,
				Faults:   exec.FaultPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
			}
			start := time.Now()
			_, err := e.Execute(sd.G, tasks, sd.Plan())
			if err == nil {
				t.Fatal("run with a fatal fault succeeded")
			}
			if !errors.Is(err, ErrInjectedFatal) {
				t.Fatalf("error %v does not wrap the injected fatal fault", err)
			}
			// Fatal means no retry: the run must die on the first attempt,
			// well before the 50ms sleepers would have finished naturally.
			if wall := time.Since(start); wall > 40*time.Millisecond {
				t.Errorf("cancellation took %v; in-flight sleepers were not interrupted", wall)
			}
		})
	}
}

// TestChaosLevelBarrier runs the fault schedule under the level-barrier
// reference executor itself: retry/backoff is scheduler-independent, so
// the wave executor must also absorb every recoverable fault and match a
// clean run's values.
func TestChaosLevelBarrier(t *testing.T) {
	for seed := int64(900); seed < 908; seed++ {
		sd := RandomDAG(seed)
		prime := &exec.Engine{Workers: 4}
		truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
		if err != nil {
			t.Fatal(err)
		}
		fp := DefaultFaultPlan(seed)
		faulted, injected := WithFaults(sd, fp)
		e := &exec.Engine{Workers: 4, Sched: exec.LevelBarrier, Faults: fp.Policy()}
		res, err := e.Execute(faulted.G, faulted.Tasks, sd.Plan())
		if err != nil {
			t.Fatalf("seed %d: faulted level-barrier run failed: %v", seed, err)
		}
		if injected > 0 && res.Retries == 0 {
			t.Errorf("seed %d: no retries recorded for %d injected faults", seed, injected)
		}
		for id, v := range truth.Values {
			if !bytes.Equal(encodeValue(t, res.Values[id]), encodeValue(t, v)) {
				t.Errorf("seed %d: node %d differs from clean run", seed, id)
			}
		}
	}
}

// TestChaosSingleFlightLeaderFailure extends the chaos harness to the
// single-flight plane: two engines race the same random DAG over one shared
// store with dedup on, and the first engine's copy of a mid-DAG node is
// doomed — it parks until another run's waiter arrives on its key, then
// dies, the seeded version of a leader crashing mid-node. The surviving run
// must inherit leadership through the registry, recompute the node, and
// finish byte-identical to a clean solo run; the doomed run must fail; the
// registry must drain completely.
func TestChaosSingleFlightLeaderFailure(t *testing.T) {
	for i := 0; i < 4; i++ {
		seed := int64(950 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()
			plan := sd.Plan()
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}

			hot, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			tv := store.NewTiered(hot, nil)
			newEngine := func() *exec.Engine {
				e := &exec.Engine{Workers: 4, Store: hot, Policy: opt.MaterializeAll{}, SingleFlight: true}
				e.UseTiers(tv)
				return e
			}

			// The doomed run's copy of node n/2 signals once it is computing,
			// then spins until a waiter from the other run parks on its key
			// and dies holding leadership.
			doomedID := n / 2
			doomedKey := sd.Tasks[doomedID].Key
			started := make(chan struct{})
			doomedTasks := make([]exec.Task, n)
			copy(doomedTasks, sd.Tasks)
			doomedTasks[doomedID].Run = func(ctx context.Context, _ []any) (any, error) {
				close(started)
				deadline := time.Now().Add(5 * time.Second)
				for tv.InflightWaiters(doomedKey) == 0 {
					if time.Now().After(deadline) {
						return nil, errors.New("no waiter ever parked on the doomed key")
					}
					time.Sleep(100 * time.Microsecond)
				}
				return nil, errors.New("leader killed mid-node")
			}

			doomedErr := make(chan error, 1)
			go func() {
				_, err := newEngine().Execute(sd.G, doomedTasks, plan)
				doomedErr <- err
			}()
			// Start the survivor only once the doomed run owns the key's
			// flight, so the waiter/leader roles are deterministic.
			<-started
			res, err := newEngine().Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("surviving run: %v", err)
			}
			if err := <-doomedErr; err == nil {
				t.Fatal("doomed run succeeded, want mid-node failure")
			}

			if res.InflightWaits == 0 {
				t.Error("survivor never parked on the doomed run's flights")
			}
			for id, v := range truth.Values {
				if !bytes.Equal(encodeValue(t, res.Values[id]), encodeValue(t, v)) {
					t.Errorf("node %d differs from the clean run after leader handoff", id)
				}
			}
			if left := tv.InflightComputes(); left != 0 {
				t.Errorf("%d flights still registered after both runs ended", left)
			}
		})
	}
}
