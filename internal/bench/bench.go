// Package bench is the harness that regenerates the paper's evaluation
// artifacts: Figure 2(a) (IE task) and Figure 2(b) (classification task)
// cumulative-runtime comparisons, the §2.4 summary claims, and the ablation
// studies on the recomputation and materialization optimizers. It replays a
// scripted iteration scenario against each comparator system and reports
// per-iteration and cumulative wall-clock times.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/systems"
	"repro/internal/version"
	"repro/internal/workload"
)

// IterationResult is one (system, iteration) measurement.
type IterationResult struct {
	Iteration   int
	Kind        workload.StepKind
	Description string
	Wall        time.Duration
	Cumulative  time.Duration
	Computed    int
	Loaded      int
	Pruned      int
	StoreUsed   int64
	Metrics     map[string]float64
}

// SeriesResult is one system's full scenario replay.
type SeriesResult struct {
	System     systems.Kind
	Iterations []IterationResult
	// Versions is the version store accumulated during the replay (kept for
	// the Figure-3 style outputs).
	Versions *version.Store
	// PeakLiveBytes is the session's high-water mark of in-memory
	// intermediate-value size estimates across the replay — the
	// memory-bounded-execution metric next to the wall-clock numbers.
	PeakLiveBytes int64
}

// Cumulative returns the final cumulative runtime.
func (s *SeriesResult) Cumulative() time.Duration {
	if len(s.Iterations) == 0 {
		return 0
	}
	return s.Iterations[len(s.Iterations)-1].Cumulative
}

// MedianWallByKind returns the median per-iteration wall time for each edit
// kind — the basis of the paper's observation that eval iterations are near
// zero for HELIX, ML iterations slightly higher, prep iterations highest.
func (s *SeriesResult) MedianWallByKind() map[workload.StepKind]time.Duration {
	byKind := map[workload.StepKind][]time.Duration{}
	for _, it := range s.Iterations {
		byKind[it.Kind] = append(byKind[it.Kind], it.Wall)
	}
	out := map[workload.StepKind]time.Duration{}
	for k, ds := range byKind {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out[k] = ds[len(ds)/2]
	}
	return out
}

// Limits caps the number of iterations a system can replay. The paper's
// Figure 2(b) plots DeepDive only through iteration 2 because its ML and
// evaluation components are not user-configurable; a limit reproduces that
// truncation.
type Limits map[systems.Kind]int

// Tweak adjusts a system's preset core.Options before the session opens —
// the hook harness callers use to apply shared knobs (budget, workers,
// dispatch, spill) across every system of a comparison.
type Tweak func(*core.Options)

// RunScenario replays a scenario on one system rooted at baseDir (see
// systems.Preset for the store layout). maxIters <= 0 means all iterations.
func RunScenario(kind systems.Kind, sc *workload.Scenario, baseDir string, maxIters int, tweaks ...Tweak) (*SeriesResult, error) {
	return RunScenarioCtx(context.Background(), kind, sc, baseDir, maxIters, tweaks...)
}

// RunScenarioCtx is RunScenario under a cancellation context: a canceled
// ctx stops between (or inside) iterations and returns the partial error,
// leaving materialized state valid for a later resume.
func RunScenarioCtx(ctx context.Context, kind systems.Kind, sc *workload.Scenario, baseDir string, maxIters int, tweaks ...Tweak) (*SeriesResult, error) {
	opts, err := systems.Preset(kind, baseDir)
	if err != nil {
		return nil, err
	}
	for _, tw := range tweaks {
		tw(&opts)
	}
	sess, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	res := &SeriesResult{System: kind, Versions: version.NewStore()}
	var cum time.Duration
	for i, step := range sc.Steps {
		if maxIters > 0 && i >= maxIters {
			break
		}
		rep, err := sess.RunCtx(ctx, step.Workflow)
		if err != nil {
			return nil, fmt.Errorf("bench: %s iteration %d (%s): %w", kind, i+1, step.Description, err)
		}
		cum += rep.Wall
		computed, loaded, pruned := rep.Counts()
		ir := IterationResult{
			Iteration:   i + 1,
			Kind:        step.Kind,
			Description: step.Description,
			Wall:        rep.Wall,
			Cumulative:  cum,
			Computed:    computed,
			Loaded:      loaded,
			Pruned:      pruned,
			StoreUsed:   rep.StoreUsed,
			Metrics:     extractMetrics(rep),
		}
		res.Iterations = append(res.Iterations, ir)
		res.Versions.Commit(version.Version{
			Message: step.Description,
			Kind:    string(step.Kind),
			Source:  rep.SourceText,
			Graph:   rep.Graph,
			Wall:    rep.Wall,
			Metrics: ir.Metrics,
		})
	}
	res.PeakLiveBytes = sess.LiveBytes().Peak()
	return res, nil
}

// extractMetrics pulls the evaluation output ("checked") into a flat map.
func extractMetrics(rep *core.Report) map[string]float64 {
	out := map[string]float64{}
	if met, ok := rep.Outputs["checked"].(ml.Metrics); ok {
		out["accuracy"] = met.Accuracy
		out["precision"] = met.Precision
		out["recall"] = met.Recall
		out["f1"] = met.F1
		out["logloss"] = met.LogLoss
	}
	return out
}

// Comparison is a full figure: one scenario replayed across systems.
type Comparison struct {
	Scenario *workload.Scenario
	Series   []*SeriesResult
}

// RunComparison replays the scenario on every listed system. Each system
// gets a fresh store under baseDir. A nil limits map runs every system to
// completion; tweaks apply to every system's preset (see Tweak).
func RunComparison(sc *workload.Scenario, kinds []systems.Kind, baseDir string, limits Limits, tweaks ...Tweak) (*Comparison, error) {
	cmp := &Comparison{Scenario: sc}
	for _, k := range kinds {
		sr, err := RunScenario(k, sc, baseDir, limits[k], tweaks...)
		if err != nil {
			return nil, err
		}
		cmp.Series = append(cmp.Series, sr)
	}
	return cmp, nil
}

// kindMark is the Figure-2 color coding rendered in ASCII.
func kindMark(k workload.StepKind) string {
	switch k {
	case workload.StepPrep:
		return "P" // purple
	case workload.StepML:
		return "M" // orange
	case workload.StepEval:
		return "E" // green
	default:
		return "I"
	}
}

// Table renders the per-iteration cumulative runtimes as the textual
// analogue of a Figure 2 panel: one row per iteration, one column per
// system, cumulative milliseconds.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: cumulative run time (ms) per iteration\n", c.Scenario.Name)
	fmt.Fprintf(&b, "%-4s %-5s %-44s", "iter", "kind", "modification")
	for _, s := range c.Series {
		fmt.Fprintf(&b, " %12s", s.System)
	}
	b.WriteByte('\n')
	for i := range c.Scenario.Steps {
		step := c.Scenario.Steps[i]
		fmt.Fprintf(&b, "%-4d %-5s %-44s", i+1, kindMark(step.Kind), truncate(step.Description, 44))
		for _, s := range c.Series {
			if i < len(s.Iterations) {
				fmt.Fprintf(&b, " %12.1f", float64(s.Iterations[i].Cumulative.Microseconds())/1000)
			} else {
				// The paper renders unsupported iterations as missing data.
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(c.Summary())
	return b.String()
}

// Summary renders the §2.4 headline comparisons: total cumulative runtime
// per system and HELIX's reduction factor against each baseline.
func (c *Comparison) Summary() string {
	var b strings.Builder
	var helix *SeriesResult
	for _, s := range c.Series {
		if s.System == systems.Helix {
			helix = s
		}
	}
	b.WriteString("totals:")
	for _, s := range c.Series {
		fmt.Fprintf(&b, "  %s=%.1fms", s.System, float64(s.Cumulative().Microseconds())/1000)
	}
	b.WriteByte('\n')
	// A zero peak means the gauge had nothing to measure (level-barrier
	// runs never charge it; size-blind policies never learn estimates) —
	// print n/a rather than implying the system used no memory.
	b.WriteString("peak live bytes:")
	for _, s := range c.Series {
		if s.PeakLiveBytes == 0 {
			fmt.Fprintf(&b, "  %s=n/a", s.System)
			continue
		}
		fmt.Fprintf(&b, "  %s=%.1fKB", s.System, float64(s.PeakLiveBytes)/1024)
	}
	b.WriteByte('\n')
	if helix != nil {
		for _, s := range c.Series {
			if s.System == systems.Helix || s.Cumulative() == 0 {
				continue
			}
			// Compare over the common iteration prefix so truncated series
			// (DeepDive in Figure 2b) are compared fairly.
			n := len(s.Iterations)
			if len(helix.Iterations) < n {
				n = len(helix.Iterations)
			}
			if n == 0 {
				continue
			}
			h := helix.Iterations[n-1].Cumulative
			o := s.Iterations[n-1].Cumulative
			if h == 0 || o == 0 {
				continue
			}
			note := ""
			if n < len(c.Scenario.Steps) {
				note = fmt.Sprintf(" (through iteration %d)", n)
			}
			fmt.Fprintf(&b, "helix vs %s: %.0f%% lower cumulative runtime (%.1fx)%s\n",
				s.System, (1-float64(h)/float64(o))*100, float64(o)/float64(h), note)
		}
		med := helix.MedianWallByKind()
		fmt.Fprintf(&b, "helix median iteration wall: prep=%v ml=%v eval=%v\n",
			med[workload.StepPrep].Round(time.Microsecond),
			med[workload.StepML].Round(time.Microsecond),
			med[workload.StepEval].Round(time.Microsecond))
	}
	return b.String()
}

// CumulativeSeries returns the (iteration, cumulative-ms) series for one
// system, for plotting.
func (c *Comparison) CumulativeSeries(kind systems.Kind) ([]int, []float64, error) {
	for _, s := range c.Series {
		if s.System != kind {
			continue
		}
		iters := make([]int, len(s.Iterations))
		vals := make([]float64, len(s.Iterations))
		for i, it := range s.Iterations {
			iters[i] = it.Iteration
			vals[i] = float64(it.Cumulative.Microseconds()) / 1000
		}
		return iters, vals, nil
	}
	return nil, nil, fmt.Errorf("bench: no series for system %q", kind)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
