package bench

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/store"
)

// TestCodecThroughputBinaryAtLeast2xGob is the tentpole acceptance
// criterion: on collection-heavy payloads (FeatureMap-rich example sets,
// gob's reflective worst case) the binary codec must deliver at least 2×
// gob's combined encode+decode throughput, min-of-3.
func TestCodecThroughputBinaryAtLeast2xGob(t *testing.T) {
	payloads := CodecPayloads(8, 64, 32)
	// One min-of-3 comparison on sub-millisecond walls is still at the
	// mercy of CPU contention on a shared CI box, so the assertion takes
	// the best of a few attempts: the claim is about achievable
	// throughput, and any single clean attempt demonstrates it.
	const attempts = 4
	best := 0.0
	for i := 0; i < attempts; i++ {
		gob, err := MeasureCodecThroughput(store.CodecGob, payloads, 3)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := MeasureCodecThroughput(store.CodecBinary, payloads, 3)
		if err != nil {
			t.Fatal(err)
		}
		gobWall := gob.EncodeMS + gob.DecodeMS
		binWall := bin.EncodeMS + bin.DecodeMS
		if binWall <= 0 {
			t.Fatalf("binary wall not positive: %.3fms", binWall)
		}
		if bin.EncodedBytes >= gob.EncodedBytes {
			t.Fatalf("binary encoding not smaller: %d vs gob %d bytes", bin.EncodedBytes, gob.EncodedBytes)
		}
		speedup := gobWall / binWall
		t.Logf("attempt %d: gob %.3f+%.3fms binary %.3f+%.3fms speedup %.2fx",
			i+1, gob.EncodeMS, gob.DecodeMS, bin.EncodeMS, bin.DecodeMS, speedup)
		if speedup > best {
			best = speedup
		}
		if best >= 2 {
			return
		}
	}
	t.Errorf("binary codec not 2x faster than gob in %d attempts (best %.2fx)", attempts, best)
}

// TestMeasureCodecStoreCounters drives the codec shape through the
// store-backed two-iteration protocol under each ablation configuration and
// asserts the per-codec encode counters and the mmap-vs-buffered cold-read
// counters attribute every persist and every cold hit to the right path.
func TestMeasureCodecStoreCounters(t *testing.T) {
	// 5ms of simulated operator work per producer makes cold loads (sub-ms
	// at the seeded cold throughput) clearly cheaper than recompute, so the
	// optimizer's second-iteration plan actually exercises cold reads.
	sd := CodecDAG(8, 24, 16, 5*time.Millisecond)
	// Hot budget far below the materialized footprint forces spills, so the
	// second iteration's loads actually exercise the cold-read path.
	const hotBudget = 8 << 10

	gobM, gobRes, err := MeasureCodecStore(sd, t.TempDir(), store.CodecGob, false, hotBudget, -1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gobM.GobEncodes == 0 || gobM.BinaryEncodes != 0 {
		t.Errorf("gob config: encodes gob=%d binary=%d, want all gob", gobM.GobEncodes, gobM.BinaryEncodes)
	}
	if gobM.MmapColdReads != 0 {
		t.Errorf("buffered config recorded %d mmap cold reads", gobM.MmapColdReads)
	}

	binM, binRes, err := MeasureCodecStore(sd, t.TempDir(), store.CodecBinary, false, hotBudget, -1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if binM.BinaryEncodes == 0 || binM.GobEncodes != 0 {
		t.Errorf("binary config: encodes gob=%d binary=%d, want all binary", binM.GobEncodes, binM.BinaryEncodes)
	}
	if binM.Spills == 0 {
		t.Fatalf("hot budget %d did not force spills", hotBudget)
	}
	if binM.BufferedColdReads == 0 {
		t.Errorf("buffered config: no buffered cold reads despite %d spills", binM.Spills)
	}
	if binM.MmapColdReads != 0 {
		t.Errorf("buffered config recorded %d mmap cold reads", binM.MmapColdReads)
	}

	mmapM, mmapRes, err := MeasureCodecStore(sd, t.TempDir(), store.CodecBinary, true, hotBudget, -1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" {
		if mmapM.MmapColdReads == 0 {
			t.Errorf("mmap config: no mmap cold reads despite %d spills", mmapM.Spills)
		}
		if mmapM.BufferedColdReads != 0 {
			t.Errorf("mmap config: %d cold reads fell back to the buffered path", mmapM.BufferedColdReads)
		}
	} else if mmapM.MmapColdReads != 0 {
		t.Errorf("mmap unavailable on %s but counted %d mmap reads", runtime.GOOS, mmapM.MmapColdReads)
	}

	// All three configurations must agree byte-identically on the outputs of
	// every iteration — the codec choice is a pure representation change.
	for i := range gobRes {
		if err := OutputValuesEqual(sd.G, gobRes[i], binRes[i]); err != nil {
			t.Errorf("iter %d gob vs binary: %v", i+1, err)
		}
		if err := OutputValuesEqual(sd.G, binRes[i], mmapRes[i]); err != nil {
			t.Errorf("iter %d binary vs binary+mmap: %v", i+1, err)
		}
	}
}
