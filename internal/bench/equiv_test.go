package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// schedConfig is one executor configuration under equivalence test.
type schedConfig struct {
	name     string
	sched    exec.Strategy
	order    exec.Ordering
	dispatch exec.DispatchMode
	release  bool
	// reweight forces online re-prioritization passes (Adaptive with a
	// 1-completion interval and a 1ns divergence floor, so every graph
	// actually re-sorts mid-run); false pins the initial weights
	// (ReweightOff).
	reweight bool
}

// equivConfigs are every scheduler configuration that must agree with the
// level-barrier reference: both dispatch modes (work-stealing and the
// global-heap baseline) × both orderings × with and without refcounted
// release of consumed intermediates × with re-prioritization passes
// forced on every completion and pinned off.
func equivConfigs() []schedConfig {
	var out []schedConfig
	for _, d := range []exec.DispatchMode{exec.WorkSteal, exec.GlobalHeap} {
		for _, o := range []exec.Ordering{exec.CriticalPath, exec.MinID} {
			for _, release := range []bool{false, true} {
				for _, reweight := range []bool{false, true} {
					name := fmt.Sprintf("dataflow-%s-%s", d, o)
					if release {
						name += "-release"
					}
					if reweight {
						name += "-reweight"
					}
					out = append(out, schedConfig{name, exec.Dataflow, o, d, release, reweight})
				}
			}
		}
	}
	return out
}

// stateCounts tallies the executed node states.
func stateCounts(res *exec.Result) (computed, loaded, pruned int) {
	for _, nr := range res.Nodes {
		switch nr.State {
		case opt.Compute:
			computed++
		case opt.Load:
			loaded++
		case opt.Prune:
			pruned++
		}
	}
	return
}

// encodeValue renders one node value into comparable bytes.
func encodeValue(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := store.Encode(v)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return raw
}

// sharedSigDAG builds a diamond whose two middle nodes are identical
// subcomputations under content addressing: same key, same value. The
// executor must encode and persist that signature exactly once per run.
func sharedSigDAG(tag string) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	a := g.MustAddNode("twin-a", "op")
	b := g.MustAddNode("twin-b", "op")
	join := g.MustAddNode("join", "agg")
	g.MustAddEdge(root, a)
	g.MustAddEdge(root, b)
	g.MustAddEdge(a, join)
	g.MustAddEdge(b, join)
	g.Node(join).Output = true
	twin := func(_ context.Context, in []any) (any, error) { return in[0].(int) + 100, nil }
	return &SchedDAG{Name: "shared-sig", G: g, Tasks: []exec.Task{
		{Key: "ssk-root-" + tag, Run: func(context.Context, []any) (any, error) { return 1, nil }},
		{Key: "ssk-twin-" + tag, Run: twin},
		{Key: "ssk-twin-" + tag, Run: twin},
		{Key: "ssk-join-" + tag, Run: func(_ context.Context, in []any) (any, error) { return in[0].(int) * in[1].(int), nil }},
	}}
}

// TestSharedSignatureEncodedOnceAcrossExecutors closes the level-barrier
// half of the shared-key double-write hole: with two nodes sharing one
// result signature, the dataflow writer's in-run dedupe and the
// level-barrier executor's (new) equivalent must each encode the shared
// signature exactly once — asserted via the instrumented per-codec store
// counters, under both the binary codec and the gob reference — and charge
// its budget once.
func TestSharedSignatureEncodedOnceAcrossExecutors(t *testing.T) {
	configs := []schedConfig{
		{name: "level-barrier", sched: exec.LevelBarrier},
		{name: "dataflow-worksteal", sched: exec.Dataflow, dispatch: exec.WorkSteal},
		{name: "dataflow-global-heap", sched: exec.Dataflow, dispatch: exec.GlobalHeap},
	}
	for i, c := range configs {
		for _, cdc := range []store.Codec{store.CodecBinary, store.CodecGob} {
			t.Run(c.name+"-"+cdc.String(), func(t *testing.T) {
				// Repeat each config: the same-level race needs attempts to
				// interleave, and the counter must hold every time.
				for rep := 0; rep < 10; rep++ {
					sd := sharedSigDAG(fmt.Sprintf("%d-%s-%d", i, cdc, rep))
					st, err := store.Open(t.TempDir(), 0)
					if err != nil {
						t.Fatal(err)
					}
					e := &exec.Engine{
						Workers:  4,
						Sched:    c.sched,
						Dispatch: c.dispatch,
						Store:    st,
						Codec:    cdc,
						Policy:   opt.MaterializeAll{},
					}
					gobBefore, binBefore := store.GobEncodeCalls(), store.BinaryEncodeCalls()
					res, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
					if err != nil {
						t.Fatal(err)
					}
					gobGot := store.GobEncodeCalls() - gobBefore
					binGot := store.BinaryEncodeCalls() - binBefore
					// 3 distinct keys across 4 nodes: root, the shared twin
					// signature (once), join — all through the selected codec
					// (int values are builtin, so binary never falls back).
					want := [2]int64{0, 3} // gob, binary
					if cdc == store.CodecGob {
						want = [2]int64{3, 0}
					}
					if gobGot != want[0] || binGot != want[1] {
						t.Fatalf("rep %d: encodes gob=%d binary=%d, want gob=%d binary=%d (shared signature encoded once)",
							rep, gobGot, binGot, want[0], want[1])
					}
					if res.GobEncodes != want[0] || res.BinaryEncodes != want[1] {
						t.Fatalf("rep %d: Result counters gob=%d binary=%d, want gob=%d binary=%d",
							rep, res.GobEncodes, res.BinaryEncodes, want[0], want[1])
					}
					entries := st.Entries()
					if len(entries) != 3 {
						t.Fatalf("rep %d: %d store entries, want 3", rep, len(entries))
					}
					var total int64
					for _, en := range entries {
						total += en.Size
					}
					if st.Used() != total {
						t.Fatalf("rep %d: store used %d != entry sum %d (budget double-reserved)", rep, st.Used(), total)
					}
				}
			})
		}
	}
}

// TestRandomizedSpillEquivalence forces the tiered store into the
// randomized harness: the same seeded graphs and mixed plans as the
// scheduler-equivalence test, but every dataflow configuration (dispatch ×
// ordering × release) runs against a hot tier so small that most
// materializations spill and most loads hit cold and promote — maximal
// cross-tier churn under concurrency. Each configuration must still agree
// with the unbudgeted single-tier level-barrier reference on byte-identical
// values and state counts, and the union of its two tiers must hold
// exactly the reference store's contents.
func TestRandomizedSpillEquivalence(t *testing.T) {
	const graphs = 16
	const tinyHot = 64 // bytes: a couple of encoded ints, then everything spills
	// Per-seed plans vary in how much they materialize or load, so spill
	// and promotion traffic is asserted in aggregate across the whole
	// harness (subtests run sequentially).
	var totalSpills, totalPromotions int64
	for seed := int64(100); seed < 100+graphs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			keep := make([]bool, n)
			cm := opt.NewCostModel(n)
			for i := 0; i < n; i++ {
				keep[i] = rng.Float64() < 0.5
				cm.Compute[i] = int64(rng.Intn(1000) + 1)
				if keep[i] {
					cm.Loadable[i] = true
					cm.Load[i] = int64(rng.Intn(1000) + 1)
				}
			}
			plan, err := opt.Optimal(sd.G, cm)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			// prepopulate seeds the loadable keys through the tiered
			// admission path, so configs start from identical tier layouts.
			prepopulate := func(tiers *store.Tiered) {
				for i := 0; i < n; i++ {
					if !keep[i] {
						continue
					}
					raw, err := store.Encode(truth.Values[dag.NodeID(i)])
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tiers.PutBytes(sd.Tasks[i].Key, raw); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Unbudgeted single-tier reference under the level barrier.
			refStore, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			prepopulate(store.NewTiered(refStore, nil))
			refEng := &exec.Engine{
				Workers: 4, Sched: exec.LevelBarrier,
				Store: refStore, Policy: opt.MaterializeAll{},
			}
			ref, err := refEng.Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			refC, refL, refP := stateCounts(ref)

			for _, c := range equivConfigs() {
				if c.reweight {
					continue // reweight × spill churn is the stress tests' job
				}
				hot, err := store.Open(t.TempDir(), tinyHot)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := store.OpenSpill(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				prepopulate(store.NewTiered(hot, cold))
				e := &exec.Engine{
					Workers:              4,
					Sched:                c.sched,
					Order:                c.order,
					Dispatch:             c.dispatch,
					ReleaseIntermediates: c.release,
					Store:                hot,
					Spill:                cold,
					Policy:               opt.MaterializeAll{},
					Reweight:             exec.ReweightOff,
				}
				res, err := e.Execute(sd.G, sd.Tasks, plan)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				gotC, gotL, gotP := stateCounts(res)
				if gotC != refC || gotL != refL || gotP != refP {
					t.Errorf("%s: counts computed/loaded/pruned = %d/%d/%d, reference %d/%d/%d",
						c.name, gotC, gotL, gotP, refC, refL, refP)
				}
				totalSpills += res.Spills
				totalPromotions += res.Promotions
				if hot.Used() > tinyHot {
					t.Errorf("%s: hot tier used %d over its %d budget", c.name, hot.Used(), tinyHot)
				}
				if hot.Used()+cold.Used() > tinyHot && cold.Used() == 0 {
					t.Errorf("%s: contents exceed the hot budget yet the cold tier is empty", c.name)
				}
				for i := 0; i < n; i++ {
					id := dag.NodeID(i)
					refV, refOK := ref.Values[id]
					gotV, gotOK := res.Values[id]
					if c.release {
						if sd.G.Node(id).Output && !gotOK {
							t.Errorf("%s: output node %d released", c.name, i)
							continue
						}
						if gotOK && refOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
							t.Errorf("%s: node %d value differs from reference", c.name, i)
						}
						continue
					}
					if gotOK != refOK {
						t.Errorf("%s: node %d present=%v, reference %v", c.name, i, gotOK, refOK)
						continue
					}
					if gotOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
						t.Errorf("%s: node %d value differs from reference", c.name, i)
					}
				}
				union := make(map[string]int64)
				for _, en := range hot.Entries() {
					union[en.Key] = en.Size
				}
				for _, en := range cold.Entries() {
					if _, dup := union[en.Key]; dup {
						t.Errorf("%s: key %s in both tiers", c.name, en.Key)
					}
					union[en.Key] = en.Size
				}
				refEntries := refStore.Entries()
				if len(union) != len(refEntries) {
					t.Errorf("%s: tier union has %d keys, reference %d", c.name, len(union), len(refEntries))
					continue
				}
				for _, en := range refEntries {
					if size, ok := union[en.Key]; !ok || size != en.Size {
						t.Errorf("%s: key %s union size %d (present %v), reference %d",
							c.name, en.Key, size, ok, en.Size)
					}
				}
			}
		})
	}
	if totalSpills == 0 {
		t.Error("no run in the whole harness spilled despite the tiny hot tier")
	}
	if totalPromotions == 0 {
		t.Error("no run in the whole harness promoted a cold hit")
	}
}

// TestRandomizedCodecEquivalence adds the value codec as a harness axis:
// the same seeded graphs and mixed plans as the spill harness, each run
// under gob × binary × (binary + mmap cold reads), spill-forced through a
// tiny hot tier so most materializations land in the cold tier and most
// loads cross the codec's decode path. Every configuration must agree with
// the unbudgeted single-tier level-barrier reference (default codec) on
// state counts and byte-identical values — the codec is a pure
// representation change — and the per-codec Result counters must attribute
// every encode to the selected codec with zero fallbacks.
func TestRandomizedCodecEquivalence(t *testing.T) {
	const graphs = 8
	const tinyHot = 64
	var totalSpills, totalMmapReads, totalBufferedReads int64
	for seed := int64(300); seed < 300+graphs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			keep := make([]bool, n)
			cm := opt.NewCostModel(n)
			for i := 0; i < n; i++ {
				keep[i] = rng.Float64() < 0.5
				cm.Compute[i] = int64(rng.Intn(1000) + 1)
				if keep[i] {
					cm.Loadable[i] = true
					cm.Load[i] = int64(rng.Intn(1000) + 1)
				}
			}
			plan, err := opt.Optimal(sd.G, cm)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			prepopulate := func(tiers *store.Tiered, cdc store.Codec) {
				for i := 0; i < n; i++ {
					if !keep[i] {
						continue
					}
					enc, err := store.EncodeValueWith(cdc, truth.Values[dag.NodeID(i)])
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tiers.PutBytes(sd.Tasks[i].Key, enc.Bytes()); err != nil {
						t.Fatal(err)
					}
					enc.Release()
				}
			}

			refStore, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			prepopulate(store.NewTiered(refStore, nil), store.CodecAuto)
			refEng := &exec.Engine{
				Workers: 4, Sched: exec.LevelBarrier,
				Store: refStore, Policy: opt.MaterializeAll{},
			}
			ref, err := refEng.Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			refC, refL, refP := stateCounts(ref)

			for _, cfg := range []struct {
				cdc  store.Codec
				mmap bool
			}{{store.CodecGob, false}, {store.CodecBinary, false}, {store.CodecBinary, true}} {
				name := cfg.cdc.String()
				if cfg.mmap {
					name += "+mmap"
				}
				hot, err := store.Open(t.TempDir(), tinyHot)
				if err != nil {
					t.Fatal(err)
				}
				openSpill := store.OpenSpill
				if cfg.mmap {
					openSpill = store.OpenSpillMmap
				}
				cold, err := openSpill(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				// Prepopulate with the run's own codec: loads then decode
				// through the codec under test, not just fresh encodes.
				prepopulate(store.NewTiered(hot, cold), cfg.cdc)
				e := &exec.Engine{
					Workers:  4,
					Sched:    exec.Dataflow,
					Order:    exec.CriticalPath,
					Dispatch: exec.WorkSteal,
					Store:    hot,
					Spill:    cold,
					Codec:    cfg.cdc,
					Policy:   opt.MaterializeAll{},
					Reweight: exec.ReweightOff,
				}
				res, err := e.Execute(sd.G, sd.Tasks, plan)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				switch cfg.cdc {
				case store.CodecGob:
					if res.BinaryEncodes != 0 {
						t.Errorf("%s: %d encodes used the binary codec", name, res.BinaryEncodes)
					}
				case store.CodecBinary:
					if res.GobEncodes != 0 {
						t.Errorf("%s: %d encodes fell back to gob", name, res.GobEncodes)
					}
				}
				if !cfg.mmap && res.MmapColdReads != 0 {
					t.Errorf("%s: %d cold reads used mmap", name, res.MmapColdReads)
				}
				totalSpills += res.Spills
				totalMmapReads += res.MmapColdReads
				totalBufferedReads += res.BufferedColdReads
				gotC, gotL, gotP := stateCounts(res)
				if gotC != refC || gotL != refL || gotP != refP {
					t.Errorf("%s: counts computed/loaded/pruned = %d/%d/%d, reference %d/%d/%d",
						name, gotC, gotL, gotP, refC, refL, refP)
				}
				for i := 0; i < n; i++ {
					id := dag.NodeID(i)
					refV, refOK := ref.Values[id]
					gotV, gotOK := res.Values[id]
					if gotOK != refOK {
						t.Errorf("%s: node %d present=%v, reference %v", name, i, gotOK, refOK)
						continue
					}
					if gotOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
						t.Errorf("%s: node %d value differs from reference", name, i)
					}
				}
			}
		})
	}
	if totalSpills == 0 {
		t.Error("no run in the whole harness spilled despite the tiny hot tier")
	}
	if totalBufferedReads == 0 {
		t.Error("no buffered-config run served a cold read")
	}
	if runtime.GOOS == "linux" && totalMmapReads == 0 {
		t.Error("no mmap-config run served a zero-copy cold read")
	}
}

// TestRandomizedEvictionEquivalence turns the cold tier's eviction policy
// into a harness dimension: across seeded random graphs with mixed plans,
// every combination of eviction policy (LRU vs reward-aware, the latter
// also with the min-cut evict-set planner) × dispatch mode × forced
// re-prioritization × injected transient faults runs against a cold tier
// sized to just hold the prepopulated loadable keys — so every fresh
// materialization during the run must evict — and must still agree with
// the unbudgeted level-barrier reference on state counts and byte-identical
// values. Eviction is pure cache policy: it may change what survives the
// run (not asserted here), never what the run computes.
func TestRandomizedEvictionEquivalence(t *testing.T) {
	const graphs = 6
	const tinyHot = 64 // bytes: force nearly everything through cold admission
	const coldSlack = 64
	var totalEvictions, totalRetries int64
	for seed := int64(200); seed < 200+graphs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			keep := make([]bool, n)
			cm := opt.NewCostModel(n)
			for i := 0; i < n; i++ {
				keep[i] = rng.Float64() < 0.5
				cm.Compute[i] = int64(rng.Intn(1000) + 1)
				if keep[i] {
					cm.Loadable[i] = true
					cm.Load[i] = int64(rng.Intn(1000) + 1)
				}
			}
			plan, err := opt.Optimal(sd.G, cm)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			prepopulate := func(tiers *store.Tiered) {
				for i := 0; i < n; i++ {
					if !keep[i] {
						continue
					}
					raw, err := store.Encode(truth.Values[dag.NodeID(i)])
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tiers.PutBytes(sd.Tasks[i].Key, raw); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Size the cold budget from a dry prepopulation (framed sizes
			// differ from raw), plus slack small enough that the run's own
			// materializations are guaranteed to hit eviction pressure.
			dry, err := store.OpenSpill(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			dryHot, err := store.Open(t.TempDir(), tinyHot)
			if err != nil {
				t.Fatal(err)
			}
			prepopulate(store.NewTiered(dryHot, dry))
			coldBudget := dry.Used() + coldSlack

			refStore, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			prepopulate(store.NewTiered(refStore, nil))
			refEng := &exec.Engine{
				Workers: 4, Sched: exec.LevelBarrier,
				Store: refStore, Policy: opt.MaterializeAll{},
			}
			ref, err := refEng.Execute(sd.G, sd.Tasks, plan)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			refC, refL, refP := stateCounts(ref)

			type evictMode struct {
				name    string
				policy  store.EvictionPolicy
				maxflow bool
			}
			for _, em := range []evictMode{
				{"lru", store.EvictLRU, false},
				{"reward", store.EvictReward, false},
				{"reward+maxflow", store.EvictReward, true},
			} {
				for _, dispatch := range []exec.DispatchMode{exec.WorkSteal, exec.GlobalHeap} {
					for _, reweight := range []bool{false, true} {
						for _, faults := range []bool{false, true} {
							name := fmt.Sprintf("%s-%s-rw%v-f%v", em.name, dispatch, reweight, faults)
							hot, err := store.Open(t.TempDir(), tinyHot)
							if err != nil {
								t.Fatal(err)
							}
							cold, err := store.OpenSpill(t.TempDir(), coldBudget)
							if err != nil {
								t.Fatal(err)
							}
							cold.SetEvictionPolicy(em.policy)
							prepopulate(store.NewTiered(hot, cold))
							run := sd
							e := &exec.Engine{
								Workers:  4,
								Sched:    exec.Dataflow,
								Order:    exec.CriticalPath,
								Dispatch: dispatch,
								Store:    hot,
								Spill:    cold,
								Policy:   opt.MaterializeAll{},
								Reweight: exec.ReweightOff,
							}
							if em.maxflow {
								if err := e.UseMaxflowEviction(sd.G, sd.Tasks); err != nil {
									t.Fatal(err)
								}
							}
							if reweight {
								e.Reweight = exec.Adaptive
								e.ReweightInterval = 1
								e.ReweightMinDivergence = time.Nanosecond
							}
							if faults {
								fp := DefaultFaultPlan(seed)
								run, _ = WithFaults(sd, fp)
								e.Faults = fp.Policy()
							}
							res, err := e.Execute(run.G, run.Tasks, plan)
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							totalEvictions += cold.Evictions()
							totalRetries += res.Retries
							gotC, gotL, gotP := stateCounts(res)
							if gotC != refC || gotL != refL || gotP != refP {
								t.Errorf("%s: counts computed/loaded/pruned = %d/%d/%d, reference %d/%d/%d",
									name, gotC, gotL, gotP, refC, refL, refP)
							}
							if cold.Used() > coldBudget {
								t.Errorf("%s: cold tier used %d over its %d budget", name, cold.Used(), coldBudget)
							}
							for i := 0; i < n; i++ {
								id := dag.NodeID(i)
								refV, refOK := ref.Values[id]
								gotV, gotOK := res.Values[id]
								if gotOK != refOK {
									t.Errorf("%s: node %d present=%v, reference %v", name, i, gotOK, refOK)
									continue
								}
								if gotOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
									t.Errorf("%s: node %d value differs from reference", name, i)
								}
							}
						}
					}
				}
			}
		})
	}
	if totalEvictions == 0 {
		t.Error("no run in the whole harness evicted despite the tight cold budget")
	}
	if totalRetries == 0 {
		t.Error("no faulted run retried despite injected transient faults")
	}
}

// TestRandomizedSchedulerEquivalence is the property harness of the
// scheduler rewrite: across ≥50 seeded random graphs with mixed
// load/compute/prune plans, every dataflow configuration (work-stealing ×
// global-heap dispatch, both orderings, with and without
// ReleaseIntermediates) must agree with the
// level-barrier reference on byte-identical values, per-node states and
// computed/loaded/pruned counts, materialization outcomes, and final
// store contents. Each configuration executes against its own identically
// pre-populated store, so runs cannot influence each other.
func TestRandomizedSchedulerEquivalence(t *testing.T) {
	const graphs = 52
	for seed := int64(0); seed < graphs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sd := RandomDAG(seed)
			n := sd.G.Len()

			// Ground-truth values from a storeless all-compute run.
			prime := &exec.Engine{Workers: 4}
			truth, err := prime.Execute(sd.G, sd.Tasks, sd.Plan())
			if err != nil {
				t.Fatalf("prime run: %v", err)
			}

			// A seeded random cost model marks about half the nodes
			// loadable; Optimal turns it into a mixed-state plan.
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			keep := make([]bool, n)
			cm := opt.NewCostModel(n)
			for i := 0; i < n; i++ {
				keep[i] = rng.Float64() < 0.5
				cm.Compute[i] = int64(rng.Intn(1000) + 1)
				if keep[i] {
					cm.Loadable[i] = true
					cm.Load[i] = int64(rng.Intn(1000) + 1)
				}
			}
			plan, err := opt.Optimal(sd.G, cm)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			run := func(c schedConfig) (*exec.Result, *store.Store) {
				st, err := store.Open(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if keep[i] {
						if err := st.Put(sd.Tasks[i].Key, truth.Values[dag.NodeID(i)]); err != nil {
							t.Fatal(err)
						}
					}
				}
				e := &exec.Engine{
					Workers:              4,
					Sched:                c.sched,
					Order:                c.order,
					Dispatch:             c.dispatch,
					ReleaseIntermediates: c.release,
					Store:                st,
					Policy:               opt.MaterializeAll{},
					Reweight:             exec.ReweightOff,
				}
				if c.reweight {
					e.Reweight = exec.Adaptive
					e.ReweightInterval = 1
					e.ReweightMinDivergence = time.Nanosecond
				}
				res, err := e.Execute(sd.G, sd.Tasks, plan)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				return res, st
			}

			ref, refStore := run(schedConfig{name: "level-barrier", sched: exec.LevelBarrier})
			refC, refL, refP := stateCounts(ref)
			for _, c := range equivConfigs() {
				res, st := run(c)
				gotC, gotL, gotP := stateCounts(res)
				if gotC != refC || gotL != refL || gotP != refP {
					t.Errorf("%s: counts computed/loaded/pruned = %d/%d/%d, reference %d/%d/%d",
						c.name, gotC, gotL, gotP, refC, refL, refP)
				}
				for i := 0; i < n; i++ {
					id := dag.NodeID(i)
					if res.Nodes[i].State != ref.Nodes[i].State {
						t.Errorf("%s: node %d state %v, reference %v", c.name, i, res.Nodes[i].State, ref.Nodes[i].State)
					}
					if res.Nodes[i].Materialized != ref.Nodes[i].Materialized {
						t.Errorf("%s: node %d materialized %v, reference %v", c.name, i, res.Nodes[i].Materialized, ref.Nodes[i].Materialized)
					}
					refV, refOK := ref.Values[id]
					gotV, gotOK := res.Values[id]
					switch {
					case c.release:
						// Outputs must survive byte-identically; anything
						// else still present must match the reference.
						if sd.G.Node(id).Output {
							if !gotOK {
								t.Errorf("%s: output node %d released", c.name, i)
								continue
							}
						}
						if gotOK && refOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
							t.Errorf("%s: node %d value differs from reference", c.name, i)
						}
					default:
						if gotOK != refOK {
							t.Errorf("%s: node %d present=%v, reference %v", c.name, i, gotOK, refOK)
							continue
						}
						if gotOK && !bytes.Equal(encodeValue(t, gotV), encodeValue(t, refV)) {
							t.Errorf("%s: node %d value differs from reference", c.name, i)
						}
					}
				}
				refEntries, gotEntries := refStore.Entries(), st.Entries()
				if len(refEntries) != len(gotEntries) {
					t.Errorf("%s: %d store entries, reference %d", c.name, len(gotEntries), len(refEntries))
					continue
				}
				for j := range refEntries {
					if refEntries[j].Key != gotEntries[j].Key || refEntries[j].Size != gotEntries[j].Size {
						t.Errorf("%s: store entry %d = %s/%d, reference %s/%d", c.name, j,
							gotEntries[j].Key, gotEntries[j].Size, refEntries[j].Key, refEntries[j].Size)
					}
				}
			}
		})
	}
}
