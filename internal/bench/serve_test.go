package bench

import "testing"

// TestMeasureServeLoadDedupProbe runs the serve-loadgen measurement small
// and asserts its built-in checks held: the probe's exactly-once identity
// (MeasureServeLoad errors on a violation), a nonzero in-flight dedup
// count surfaced in the summed counter block the benchdiff gate reads, and
// the cross-session dedup signal from the overlapping-variant walk.
func TestMeasureServeLoadDedupProbe(t *testing.T) {
	m, err := MeasureServeLoad(t.TempDir(), ServeLoadOptions{
		Clients: 2, PerClient: 2, Workers: 2, Rows: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.InflightDedupHits == 0 {
		t.Error("identical simultaneous submissions produced no inflight_dedup_hits")
	}
	if m.CrossSessionHits == 0 {
		t.Error("overlapping variants across tenants produced no cross_session_hits")
	}
	if m.ThroughputRPS <= 0 || m.P99MS <= 0 {
		t.Errorf("throughput %.2f rps / p99 %.2f ms not measured", m.ThroughputRPS, m.P99MS)
	}
}
