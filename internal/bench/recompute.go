package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// Canonical recompute-heavy dimensions (DefaultRecomputeHeavyDAG and the
// eviction ablation's cold budget). The arithmetic the shape is built
// around: the chain materializes chainDepth×chainPayload ≈ 20 KiB whose
// recompute cost is serial (2 ms per link), the fillers materialize
// fillers×fillerPayload ≈ 768 KiB of cheap parallel work, and the default
// cold budget holds roughly two thirds of the total — so the cold tier
// must evict ≈ 280 KiB during the first iteration and the *choice* of
// victims decides whether the second iteration replays a 20 ms serial
// chain or re-stamps a few hundred microseconds of fillers.
const (
	rheavyChainDepth    = 10
	rheavyFillers       = 24
	rheavyChainPayload  = 2 << 10
	rheavyFillerPayload = 32 << 10
	// RecomputeHeavyColdBudget is the default cold-tier budget for the
	// eviction ablation on this shape.
	RecomputeHeavyColdBudget = int64(512 << 10)
	// RecomputeHeavyCrownKey is the store key of the chain's last node —
	// the 2 KiB value whose recompute cost is the whole serial chain. It is
	// the entry the eviction policies disagree about: reward-aware ranking
	// keeps it (highest saving-per-byte in the tier), LRU evicts it (oldest
	// unpinned entry once the fillers start landing).
	RecomputeHeavyCrownKey = "rheavy-crown"
)

var (
	rheavyChainDur  = 2 * time.Millisecond
	rheavyFillerDur = 200 * time.Microsecond
)

// rheavyTask returns a deterministic keyed task: sleep d, then emit a
// payloadBytes-sized string derived from idx and the inputs (ints hash by
// value, strings by length and first byte), byte-identical across runs and
// schedulers.
func rheavyTask(key string, idx, payloadBytes int, d time.Duration) exec.Task {
	return exec.Task{
		Key: key,
		Run: func(ctx context.Context, in []any) (any, error) {
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			seed := idx
			for _, v := range in {
				switch x := v.(type) {
				case int:
					seed = seed*31 + x
				case string:
					seed = seed*31 + len(x) + int(x[0])
				}
			}
			pat := fmt.Sprintf("r%d:%d|", idx, seed)
			var b strings.Builder
			b.Grow(payloadBytes)
			for b.Len() < payloadBytes {
				b.WriteString(pat)
			}
			return b.String()[:payloadBytes], nil
		},
	}
}

// RecomputeHeavyDAG is the eviction-policy stress shape: a root feeds a
// serial chain of chainDepth nodes (chainDur each, small chainPayload
// values) whose last link — the "crown", keyed RecomputeHeavyCrownKey and
// marked Output — fans out to `fillers` cheap wide nodes (fillerDur each,
// large fillerPayload values) joining into one output.
//
// Under a cold-tier budget that cannot hold everything, the shape forces
// the two eviction policies apart. The chain entries are the oldest in the
// tier by the time the fillers flood in, so pure LRU deletes exactly them —
// the entries whose loss costs a serial chainDepth×chainDur recompute next
// iteration. Reward-aware ranking sees the chain's saving-per-byte (serial
// ancestor compute over a tiny payload) tower over the fillers' (sub-ms
// compute over 16× the bytes) and sacrifices fillers instead. As a plain
// scheduler shape (no store attached) it is a serial-tail-plus-fanout
// dispatch workload, which is why it also rides the dispatch ablation into
// BENCH_baseline.json.
func RecomputeHeavyDAG(chainDepth, fillers, chainPayload, fillerPayload int, chainDur, fillerDur time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{{Key: "rheavy-root", Run: func(context.Context, []any) (any, error) { return 1, nil }}}
	prev := root
	for c := 0; c < chainDepth; c++ {
		key := fmt.Sprintf("rheavy-c%d", c)
		if c == chainDepth-1 {
			key = RecomputeHeavyCrownKey
		}
		id := g.MustAddNode(fmt.Sprintf("chain%d", c), "chain")
		g.MustAddEdge(prev, id)
		tasks = append(tasks, rheavyTask(key, int(id), chainPayload, chainDur))
		prev = id
	}
	crown := prev
	g.Node(crown).Output = true
	join := g.MustAddNode("join", "agg")
	for f := 0; f < fillers; f++ {
		id := g.MustAddNode(fmt.Sprintf("fill%d", f), "filler")
		g.MustAddEdge(crown, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, rheavyTask(fmt.Sprintf("rheavy-f%d", f), int(id), fillerPayload, fillerDur))
	}
	g.Node(join).Output = true
	joinTask := exec.Task{
		Key: "rheavy-join",
		Run: func(_ context.Context, in []any) (any, error) {
			sum := 17
			for _, v := range in {
				s := v.(string)
				sum = sum*31 + len(s) + int(s[0])
			}
			return sum, nil
		},
	}
	// The join's node ID precedes the fillers' (it was added first so the
	// crown's fanout could edge into it): splice its task into place.
	ordered := make([]exec.Task, 0, len(tasks)+1)
	ordered = append(ordered, tasks[:1+chainDepth]...)
	ordered = append(ordered, joinTask)
	ordered = append(ordered, tasks[1+chainDepth:]...)
	return &SchedDAG{Name: "recompute-heavy", G: g, Tasks: ordered}
}

// DefaultRecomputeHeavyDAG returns the canonical recompute-heavy shape:
// a 10-link × 2 ms serial chain with 2 KiB payloads crowned by an Output
// node, fanning out to 24 × 200 µs fillers with 32 KiB payloads.
func DefaultRecomputeHeavyDAG() *SchedDAG {
	return RecomputeHeavyDAG(rheavyChainDepth, rheavyFillers, rheavyChainPayload, rheavyFillerPayload, rheavyChainDur, rheavyFillerDur)
}

// EvictionMeasurement is one machine-readable data point of the eviction
// ablation: one cold-tier policy driven through two iterations of the
// recompute-heavy shape under spill pressure.
type EvictionMeasurement struct {
	Config      string  `json:"config"`
	ColdBudget  int64   `json:"cold_budget"`
	Iter1WallMS float64 `json:"iter1_wall_ms"`
	Iter2WallMS float64 `json:"iter2_wall_ms"`
	Evictions   int64   `json:"evictions"`
	ColdUsed    int64   `json:"cold_used"`
	// CrownRetained reports whether the chain's crown entry survived the
	// first iteration's eviction pressure — the single-bit summary of what
	// the policy chose to sacrifice.
	CrownRetained bool `json:"crown_retained"`
	// Loaded2 and Computed2 count the second iteration's plan states: how
	// much of the first run's materialization survived eviction usefully.
	Loaded2   int `json:"loaded_2"`
	Computed2 int `json:"computed_2"`
}

// EvictionConfigName names an ablation configuration the way the CLI and
// tests report it: the policy, with "+maxflow" when the global evict-set
// planner is installed on top of reward-aware ranking.
func EvictionConfigName(policy store.EvictionPolicy, maxflow bool) string {
	name := "reward"
	if policy == store.EvictLRU {
		name = "lru"
	}
	if maxflow {
		name += "+maxflow"
	}
	return name
}

// MeasureEviction drives the shape through two iterations with a 1-byte
// hot tier (every materialization is forced through cold-tier admission,
// so the eviction policy under test decides everything) and a cold tier of
// coldBudget bytes under the given policy: iteration 1 all-compute,
// iteration 2 on the optimizer's plan over the per-tier cost model the
// first run left behind. maxflow additionally installs the min-cut global
// evict-set planner (Engine.UseMaxflowEviction). Both iterations' Results
// are returned for value checks against an unpressured reference.
func MeasureEviction(sd *SchedDAG, dir string, coldBudget int64, policy store.EvictionPolicy, maxflow bool, workers int) (EvictionMeasurement, [2]*exec.Result, error) {
	var out [2]*exec.Result
	st, err := store.Open(filepath.Join(dir, "hot"), 1)
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	sp, err := store.OpenSpill(filepath.Join(dir, "cold"), coldBudget)
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	sp.SetEvictionPolicy(policy)
	e := &exec.Engine{
		Workers: workers,
		Store:   st,
		Spill:   sp,
		Policy:  opt.MaterializeAll{},
		History: exec.NewHistory(),
	}
	if maxflow {
		if err := e.UseMaxflowEviction(sd.G, sd.Tasks); err != nil {
			return EvictionMeasurement{}, out, err
		}
	}
	res1, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	crown := sp.Has(RecomputeHeavyCrownKey)
	cm, err := e.BuildCostModel(sd.G, sd.Tasks)
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	plan2, err := opt.Optimal(sd.G, cm)
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	res2, err := e.Execute(sd.G, sd.Tasks, plan2)
	if err != nil {
		return EvictionMeasurement{}, out, err
	}
	out[0], out[1] = res1, res2
	m := EvictionMeasurement{
		Config:        EvictionConfigName(policy, maxflow),
		ColdBudget:    coldBudget,
		Iter1WallMS:   float64(res1.Wall.Microseconds()) / 1000,
		Iter2WallMS:   float64(res2.Wall.Microseconds()) / 1000,
		Evictions:     sp.Evictions(),
		ColdUsed:      sp.Used(),
		CrownRetained: crown,
	}
	for _, s := range plan2.States {
		switch s {
		case opt.Load:
			m.Loaded2++
		case opt.Compute:
			m.Computed2++
		}
	}
	return m, out, nil
}
