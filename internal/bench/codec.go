package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// The codec shape stores *data.ExampleSet values as engine intermediates,
// which the gob A/B reference serializes through the `any` interface — so
// the concrete type needs a gob registration just like the workload values
// in core and workload do theirs.
func init() { store.Register(&data.ExampleSet{}) }

// codecExampleSet builds a deterministic FeatureMap-heavy *data.ExampleSet:
// `examples` examples of `features` features each, values derived from seed.
// Feature names are shared across examples (realistic for extracted feature
// columns), which is exactly the shape where gob's reflective map encoding
// is slowest and the binary codec's string table pays off most.
func codecExampleSet(seed, examples, features int) *data.ExampleSet {
	set := &data.ExampleSet{Examples: make([]data.Example, examples)}
	for i := range set.Examples {
		fm := make(data.FeatureMap, features)
		for f := 0; f < features; f++ {
			fm[fmt.Sprintf("feat_%03d", f)] = float64((seed+i*31+f*7)%1000) / 8
		}
		set.Examples[i] = data.Example{
			Features: fm,
			Label:    float64((seed + i) % 2),
			HasLabel: true,
		}
	}
	return set
}

// CodecPayloads returns n deterministic FeatureMap-heavy example sets — the
// workload-value population the codec throughput measurement serializes.
func CodecPayloads(n, examples, features int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = codecExampleSet(i*1009+17, examples, features)
	}
	return out
}

// CodecDAG is the serialization-pressure shape: a root fans out to
// `producers` nodes that each emit a FeatureMap-heavy *data.ExampleSet
// (after sleeping d, so scheduling noise doesn't swamp the serialization
// signal) joining into one scalar output. With a materialize-everything
// policy every producer value rides store.EncodeValueWith on the persist
// path — the workload the codec ablation drives through gob, binary, and
// binary+mmap configurations.
func CodecDAG(producers, examples, features int, d time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{{Key: "codec-root", Run: func(context.Context, []any) (any, error) { return 1, nil }}}
	join := g.MustAddNode("join", "agg")
	for p := 0; p < producers; p++ {
		id := g.MustAddNode(fmt.Sprintf("set%d", p), "op")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		// Producers are outputs too: a later iteration must reproduce the
		// serialized sets themselves, so its plan loads the spilled values
		// (driving the cold-read path) instead of pruning down to the join.
		g.Node(id).Output = true
		idx := int(id)
		tasks = append(tasks, exec.Task{
			Key: fmt.Sprintf("codec-set%d", idx),
			Run: func(ctx context.Context, in []any) (any, error) {
				if err := sleepCtx(ctx, d); err != nil {
					return nil, err
				}
				seed := idx
				for _, v := range in {
					seed = seed*31 + v.(int)
				}
				return codecExampleSet(seed, examples, features), nil
			},
		})
	}
	g.Node(join).Output = true
	tasks = append(tasks, exec.Task{
		Key: "codec-join",
		Run: func(_ context.Context, in []any) (any, error) {
			sum := 17
			for _, v := range in {
				set := v.(*data.ExampleSet)
				sum = sum*31 + set.Len()
				for _, ex := range set.Examples {
					sum += len(ex.Features)
				}
			}
			return sum, nil
		},
	})
	// Reorder so tasks[i] drives node i (root=0, join=1, producers=2..).
	ordered := make([]exec.Task, len(tasks))
	ordered[0] = tasks[0]
	ordered[1] = tasks[len(tasks)-1]
	copy(ordered[2:], tasks[1:len(tasks)-1])
	return &SchedDAG{Name: "codec", G: g, Tasks: ordered}
}

// DefaultCodecDAG returns the canonical serialization-pressure shape: 16
// producers × (48 examples × 24 features) ≈ 18K feature entries materialized
// per all-compute iteration. The 1ms producer sleep keeps the shape's wall
// time machine-insensitive enough for the benchdiff gate while the persist
// path still serializes every producer value.
func DefaultCodecDAG() *SchedDAG {
	return CodecDAG(16, 48, 24, time.Millisecond)
}

// CodecThroughput is one codec's raw serialization measurement over a fixed
// payload population: min-of-N wall times for encoding and decoding every
// payload once, plus the encoded size (a fixed property of the codec, not
// of the round).
type CodecThroughput struct {
	Codec        string  `json:"codec"`
	Payloads     int     `json:"payloads"`
	EncodedBytes int64   `json:"encoded_bytes"`
	EncodeMS     float64 `json:"encode_ms"`
	DecodeMS     float64 `json:"decode_ms"`
	// EncodeMBps/DecodeMBps derive from the min-of-N walls and the encoded
	// size, for human-readable ablation tables.
	EncodeMBps float64 `json:"encode_mbps"`
	DecodeMBps float64 `json:"decode_mbps"`
}

// MeasureCodecThroughput serializes and deserializes every payload with the
// given codec, min-of-rounds, and deep-equal-verifies every decode of the
// final round against the original value — so the numbers are only reported
// for byte streams that provably round-trip.
func MeasureCodecThroughput(c store.Codec, payloads []any, rounds int) (CodecThroughput, error) {
	if rounds < 1 {
		rounds = 1
	}
	m := CodecThroughput{Codec: c.String(), Payloads: len(payloads)}
	encoded := make([][]byte, len(payloads))
	minEnc, minDec := time.Duration(-1), time.Duration(-1)
	for round := 0; round < rounds; round++ {
		start := time.Now()
		for i, v := range payloads {
			enc, err := store.EncodeValueWith(c, v)
			if err != nil {
				return m, fmt.Errorf("bench: encode payload %d with %s: %w", i, c, err)
			}
			if got := enc.Codec(); got != c && !(c == store.CodecAuto && got == store.CodecBinary) {
				return m, fmt.Errorf("bench: payload %d fell back from %s to %s", i, c, got)
			}
			encoded[i] = append(encoded[i][:0], enc.Bytes()...)
			enc.Release()
		}
		if d := time.Since(start); minEnc < 0 || d < minEnc {
			minEnc = d
		}
		start = time.Now()
		decoded := make([]any, len(payloads))
		for i, raw := range encoded {
			v, err := store.Decode(raw)
			if err != nil {
				return m, fmt.Errorf("bench: decode payload %d with %s: %w", i, c, err)
			}
			decoded[i] = v
		}
		if d := time.Since(start); minDec < 0 || d < minDec {
			minDec = d
		}
		if round == rounds-1 {
			for i, v := range decoded {
				if !reflect.DeepEqual(v, payloads[i]) {
					return m, fmt.Errorf("bench: %s round-trip of payload %d not deep-equal", c, i)
				}
			}
		}
	}
	for _, raw := range encoded {
		m.EncodedBytes += int64(len(raw))
	}
	m.EncodeMS = float64(minEnc.Microseconds()) / 1000
	m.DecodeMS = float64(minDec.Microseconds()) / 1000
	if minEnc > 0 {
		m.EncodeMBps = float64(m.EncodedBytes) / minEnc.Seconds() / 1e6
	}
	if minDec > 0 {
		m.DecodeMBps = float64(m.EncodedBytes) / minDec.Seconds() / 1e6
	}
	return m, nil
}

// CodecMeasurement is one machine-readable data point of the codec
// ablation: one codec/mmap configuration driven through two store-backed
// iterations of the codec shape (materialize-all with a spill-forcing hot
// budget, then the optimizer's plan over the measured cost model), plus the
// raw encode/decode throughput of the same codec over the shape's payload
// population.
type CodecMeasurement struct {
	Config      string          `json:"config"`
	Codec       string          `json:"codec"`
	Mmap        bool            `json:"mmap"`
	Throughput  CodecThroughput `json:"throughput"`
	Iter1WallMS float64         `json:"iter1_wall_ms"`
	Iter2WallMS float64         `json:"iter2_wall_ms"`
	// Per-codec encode counters across both iterations: the encode-once
	// contract means their sum equals the number of persisted values.
	GobEncodes    int64 `json:"gob_encodes"`
	BinaryEncodes int64 `json:"binary_encodes"`
	// Cold-read counters across both iterations: under mmap every cold hit
	// should be MmapColdReads, without mmap every one BufferedColdReads.
	MmapColdReads     int64 `json:"mmap_cold_reads"`
	BufferedColdReads int64 `json:"buffered_cold_reads"`
	Spills            int64 `json:"spills"`
	Promotions        int64 `json:"promotions"`
	Loaded2           int   `json:"loaded_2"`
	Computed2         int   `json:"computed_2"`
}

// MeasureCodecStore drives the codec shape through two iterations under one
// codec/mmap configuration rooted at dir, exactly like MeasureSpill's
// two-phase protocol: iteration 1 all-compute through a spill-forcing
// tiered store (hot budget below the materialized footprint so cold reads
// actually happen), iteration 2 on the optimizer's plan over the measured
// per-tier cost model. Both Results are returned for value checks.
func MeasureCodecStore(sd *SchedDAG, dir string, c store.Codec, mmap bool, hotBudget, spillBudget int64, workers int) (CodecMeasurement, [2]*exec.Result, error) {
	var out [2]*exec.Result
	m := CodecMeasurement{
		Config: c.String(),
		Codec:  c.String(),
		Mmap:   mmap,
	}
	if mmap {
		m.Config += "+mmap"
	}
	st, err := store.Open(filepath.Join(dir, "hot"), hotBudget)
	if err != nil {
		return m, out, err
	}
	openSpill := store.OpenSpill
	if mmap {
		openSpill = store.OpenSpillMmap
	}
	sp, err := openSpill(filepath.Join(dir, "cold"), spillBudget)
	if err != nil {
		return m, out, err
	}
	e := &exec.Engine{
		Workers: workers,
		Store:   st,
		Spill:   sp,
		Codec:   c,
		Policy:  opt.MaterializeAll{},
		History: exec.NewHistory(),
	}
	res1, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		return m, out, err
	}
	cm, err := e.BuildCostModel(sd.G, sd.Tasks)
	if err != nil {
		return m, out, err
	}
	plan2, err := opt.Optimal(sd.G, cm)
	if err != nil {
		return m, out, err
	}
	res2, err := e.Execute(sd.G, sd.Tasks, plan2)
	if err != nil {
		return m, out, err
	}
	out[0], out[1] = res1, res2
	m.Iter1WallMS = float64(res1.Wall.Microseconds()) / 1000
	m.Iter2WallMS = float64(res2.Wall.Microseconds()) / 1000
	m.GobEncodes = res1.GobEncodes + res2.GobEncodes
	m.BinaryEncodes = res1.BinaryEncodes + res2.BinaryEncodes
	m.MmapColdReads = res1.MmapColdReads + res2.MmapColdReads
	m.BufferedColdReads = res1.BufferedColdReads + res2.BufferedColdReads
	m.Spills = res1.Spills + res2.Spills
	m.Promotions = res1.Promotions + res2.Promotions
	for _, s := range plan2.States {
		switch s {
		case opt.Load:
			m.Loaded2++
		case opt.Compute:
			m.Computed2++
		}
	}
	return m, out, nil
}
