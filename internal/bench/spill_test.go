package bench

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// TestSpillDAGDeterministic: the spill shape's values are a pure function
// of the graph, whatever the scheduler does.
func TestSpillDAGDeterministic(t *testing.T) {
	a, err := RunSched(DefaultSpillDAG(), exec.Dataflow, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSched(DefaultSpillDAG(), exec.LevelBarrier, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SchedValuesEqual(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestSpillUnderHotBudgetPressure is the tiered-store acceptance test:
// with the hot budget sized to reject at least a quarter of the spill
// shape's materialized bytes, execution with a spill tier must produce
// byte-identical values to the unbudgeted reference, actually spill, keep
// the hot tier inside its budget at every observation point, and keep the
// union of both tiers equal to the reference store's contents.
func TestSpillUnderHotBudgetPressure(t *testing.T) {
	sd := DefaultSpillDAG()

	// Unbudgeted reference: every value fits one hot tier.
	refStore, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	refEng := &exec.Engine{Workers: 8, Store: refStore, Policy: opt.MaterializeAll{}}
	ref, err := refEng.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		t.Fatal(err)
	}
	total := refStore.Used()
	if total == 0 {
		t.Fatal("reference run materialized nothing")
	}

	// Hot budget at half the materialized bytes rejects ≥25% of them; the
	// unbudgeted cold tier must absorb every rejection.
	hotBudget := total / 2
	hot, err := store.Open(t.TempDir(), hotBudget)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &exec.Engine{Workers: 8, Store: hot, Spill: cold, Policy: opt.MaterializeAll{}}
	res, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		t.Fatal(err)
	}
	if err := SchedValuesEqual(res, ref); err != nil {
		t.Fatalf("spill run values diverge from unbudgeted reference: %v", err)
	}
	if res.Spills == 0 {
		t.Fatal("Result.Spills = 0 under a hot budget rejecting half the bytes")
	}
	if hot.Used() > hotBudget {
		t.Fatalf("hot tier used %d over its %d budget", hot.Used(), hotBudget)
	}
	if cold.Used() < total/4 {
		t.Fatalf("cold tier holds %d bytes, want ≥ the rejected quarter of %d", cold.Used(), total)
	}
	assertTierUnionMatches(t, refStore, hot, cold)

	// Second iteration: load every materialized key. Cold hits must decode
	// byte-identically and promote, and the hot tier must stay budgeted
	// through the promotion/demotion churn.
	loadPlan := &opt.Plan{States: make([]opt.State, sd.G.Len())}
	for i := range loadPlan.States {
		loadPlan.States[i] = opt.Load
	}
	res2, err := e.Execute(sd.G, sd.Tasks, loadPlan)
	if err != nil {
		t.Fatal(err)
	}
	if err := SchedValuesEqual(res2, ref); err != nil {
		t.Fatalf("all-load values diverge from reference: %v", err)
	}
	if res2.Promotions == 0 {
		t.Fatal("Result.Promotions = 0 after loading spilled keys")
	}
	if hot.Used() > hotBudget {
		t.Fatalf("hot tier used %d over its %d budget after promotions", hot.Used(), hotBudget)
	}
	assertTierUnionMatches(t, refStore, hot, cold)

	// Cumulative engine counters agree with the per-run deltas.
	c := e.TierCounters()
	if c.Spills != res.Spills+res2.Spills || c.Promotions != res.Promotions+res2.Promotions {
		t.Fatalf("cumulative counters %+v disagree with run deltas %d/%d spills, %d/%d promotions",
			c, res.Spills, res2.Spills, res.Promotions, res2.Promotions)
	}
}

// assertTierUnionMatches checks that the union of the hot and cold tiers
// holds exactly the reference store's keys at exactly its sizes, with no
// key duplicated across tiers.
func assertTierUnionMatches(t *testing.T, ref *store.Store, hot *store.Store, cold *store.Spill) {
	t.Helper()
	union := make(map[string]int64)
	for _, e := range hot.Entries() {
		union[e.Key] = e.Size
	}
	for _, e := range cold.Entries() {
		if _, dup := union[e.Key]; dup {
			t.Errorf("key %s present in both tiers", e.Key)
		}
		union[e.Key] = e.Size
	}
	refEntries := ref.Entries()
	if len(union) != len(refEntries) {
		t.Fatalf("tier union has %d keys, reference %d", len(union), len(refEntries))
	}
	for _, e := range refEntries {
		if size, ok := union[e.Key]; !ok || size != e.Size {
			t.Errorf("key %s: union size %d (present %v), reference %d", e.Key, size, ok, e.Size)
		}
	}
}

// TestSpillCostModelPricesTiers: after a budget-pressured run, the engine's
// cost model marks spilled keys loadable at the cold tier's (slower) price,
// so the optimizer can genuinely prefer recomputation for cold values.
func TestSpillCostModelPricesTiers(t *testing.T) {
	sd := DefaultSpillDAG()
	hotBudget := int64(3 * 33 << 10) // room for ~3 of the 24 payloads
	hot, err := store.Open(t.TempDir(), hotBudget)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &exec.Engine{Workers: 4, Store: hot, Spill: cold, Policy: opt.MaterializeAll{}, History: exec.NewHistory()}
	if _, err := e.Execute(sd.G, sd.Tasks, sd.Plan()); err != nil {
		t.Fatal(err)
	}
	cm, err := e.BuildCostModel(sd.G, sd.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	var hotCost, coldCost []int64
	for i := 0; i < sd.G.Len(); i++ {
		key := sd.Tasks[i].Key
		if !cm.Loadable[i] {
			t.Errorf("node %d (%s) not loadable despite tiered materialization", i, key)
			continue
		}
		if hot.Has(key) {
			hotCost = append(hotCost, cm.Load[i])
		} else if cold.Has(key) {
			coldCost = append(coldCost, cm.Load[i])
		}
	}
	if len(hotCost) == 0 || len(coldCost) == 0 {
		t.Fatalf("want keys in both tiers, got %d hot / %d cold", len(hotCost), len(coldCost))
	}
	// Every never-loaded payload is the same size, so seeded estimates are
	// uniform per tier and the cold estimate must be strictly slower. Use
	// the maximum hot cost vs minimum cold cost to stay robust against the
	// couple of small nodes (root/join).
	maxHot, minCold := int64(0), int64(1<<62)
	for _, c := range hotCost {
		if c > maxHot {
			maxHot = c
		}
	}
	for _, c := range coldCost {
		if c < minCold {
			minCold = c
		}
	}
	if minCold <= maxHot {
		t.Fatalf("cold load costs (min %d) not priced above hot (max %d)", minCold, maxHot)
	}
}

// TestSpillEvictionLosesOnlyColdest: when the cold tier itself is too
// small, admissions delete its least-recently-spilled values — and the
// next cost model simply marks them unloadable instead of failing.
func TestSpillEvictionLosesOnlyColdest(t *testing.T) {
	sd := DefaultSpillDAG()
	hot, err := store.Open(t.TempDir(), 3*33<<10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(t.TempDir(), 5*33<<10) // too small for ~21 spills
	if err != nil {
		t.Fatal(err)
	}
	e := &exec.Engine{Workers: 4, Store: hot, Spill: cold, Policy: opt.MaterializeAll{}, History: exec.NewHistory()}
	if _, err := e.Execute(sd.G, sd.Tasks, sd.Plan()); err != nil {
		t.Fatal(err)
	}
	if cold.Evictions() == 0 {
		t.Fatal("undersized cold tier performed no evictions")
	}
	if cold.Used() > cold.Budget() {
		t.Fatalf("cold used %d over budget %d", cold.Used(), cold.Budget())
	}
	cm, err := e.BuildCostModel(sd.G, sd.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	loadable := 0
	for i := 0; i < sd.G.Len(); i++ {
		if cm.Loadable[i] {
			loadable++
			id := dag.NodeID(i)
			if !hot.Has(sd.Tasks[id].Key) && !cold.Has(sd.Tasks[id].Key) {
				t.Errorf("node %d loadable but present in no tier", i)
			}
		}
	}
	if loadable == 0 || loadable == sd.G.Len() {
		t.Fatalf("loadable = %d of %d, want a strict subset after cold evictions", loadable, sd.G.Len())
	}
}
