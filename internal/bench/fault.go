package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/exec"
)

// ErrInjectedFatal is the permanent-failure error FaultyOp injects when a
// schedule marks a node fatal. The engine's default classifier treats it
// (like any unrecognized error) as fatal: no retry, first-error
// cancellation.
var ErrInjectedFatal = errors.New("bench: injected fatal fault")

// FaultSchedule describes the deterministic failure behaviour of one
// wrapped task.
type FaultSchedule struct {
	// Transient is how many invocations fail with exec.ErrTransient before
	// the task starts succeeding. The engine's retry budget must exceed it
	// for the run to complete.
	Transient int
	// Stall is slept (ctx-honoring) before each injected failure — the
	// "slow failure" mode, which exercises retries racing real work and,
	// when it exceeds the policy's NodeTimeout, deadline-triggered retries.
	Stall time.Duration
	// Fatal makes every invocation after the transients fail permanently
	// with ErrInjectedFatal, so the run must abort via first-error
	// cancellation.
	Fatal bool
}

// FaultyOp wraps a task with a deterministic failure schedule. The
// schedule's state (how many injected failures remain) lives in the
// returned task, so wrap afresh for every run — a reused wrapped task has
// already burned its failures. The wrapped task's value is untouched: once
// the injected failures are exhausted it delegates to the inner Run, so a
// faulted run that completes must produce byte-identical values to a clean
// one.
func FaultyOp(inner exec.Task, schedule FaultSchedule) exec.Task {
	var remaining atomic.Int32
	remaining.Store(int32(schedule.Transient))
	out := inner
	out.Run = func(ctx context.Context, in []any) (any, error) {
		if remaining.Add(-1) >= 0 {
			if err := sleepCtx(ctx, schedule.Stall); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("injected transient fault: %w", exec.ErrTransient)
		}
		if schedule.Fatal {
			if err := sleepCtx(ctx, schedule.Stall); err != nil {
				return nil, err
			}
			return nil, ErrInjectedFatal
		}
		return inner.Run(ctx, in)
	}
	return out
}

// FaultPlan is a seeded recipe for faulting a whole DAG: which nodes fail,
// how often, and how slowly. The same (plan, DAG) pair always produces the
// same schedules, making chaos runs reproducible from their seed alone.
type FaultPlan struct {
	// Seed drives node selection and per-node failure counts.
	Seed int64
	// TransientRate is the per-node probability of carrying transient
	// failures.
	TransientRate float64
	// MaxTransient caps injected failures per afflicted node; each gets
	// 1..MaxTransient. The executing engine needs MaxAttempts >
	// MaxTransient for a zero-failure run.
	MaxTransient int
	// StallRate is the probability an afflicted node's failures are slow
	// (preceded by a StallDelay sleep) rather than instantaneous.
	StallRate float64
	// StallDelay is the slow-failure sleep.
	StallDelay time.Duration
}

// DefaultFaultPlan returns the chaos harness's canonical plan: roughly a
// third of the nodes fail 1–2 times, a quarter of those slowly, all
// recoverable within a 4-attempt budget.
func DefaultFaultPlan(seed int64) FaultPlan {
	return FaultPlan{
		Seed:          seed,
		TransientRate: 0.35,
		MaxTransient:  2,
		StallRate:     0.25,
		StallDelay:    200 * time.Microsecond,
	}
}

// Policy returns the engine fault policy matched to the plan: enough
// attempts to outlast MaxTransient, fast deterministic backoff keyed to
// the plan's seed.
func (p FaultPlan) Policy() exec.FaultPolicy {
	return exec.FaultPolicy{
		MaxAttempts: p.MaxTransient + 2,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		JitterSeed:  p.Seed,
	}
}

// MeasureDispatchFaults is the chaos variant of MeasureDispatch: the shape
// is wrapped with a fresh fault schedule from the plan and executed under
// the plan's matching retry policy, so the run completes (every injected
// failure is recoverable) and the measurement's fault counters are
// populated. Values remain byte-identical to a clean run's, so the usual
// cross-dispatch value checks still apply.
func MeasureDispatchFaults(sd *SchedDAG, dispatch exec.DispatchMode, workers int, plan FaultPlan) (DispatchMeasurement, *exec.Result, error) {
	faulted, injected := WithFaults(sd, plan)
	m, res, err := measureDispatch(faulted, dispatch, workers, plan.Policy())
	if err != nil {
		return m, res, err
	}
	if m.Retries < int64(injected) {
		return m, res, fmt.Errorf("bench: %s: %d retries for %d injected faults", faulted.Name, m.Retries, injected)
	}
	return m, res, nil
}

// WithFaults returns a faulted copy of the DAG per the plan, plus the
// total number of injected transient failures (the minimum Retries a
// completing run must report). The copy carries fresh failure counters, so
// call it once per run.
func WithFaults(sd *SchedDAG, plan FaultPlan) (*SchedDAG, int) {
	rng := rand.New(rand.NewSource(plan.Seed ^ 0x7a05))
	tasks := make([]exec.Task, len(sd.Tasks))
	injected := 0
	for i, tk := range sd.Tasks {
		if rng.Float64() >= plan.TransientRate {
			tasks[i] = tk
			continue
		}
		sched := FaultSchedule{Transient: 1 + rng.Intn(plan.MaxTransient)}
		if rng.Float64() < plan.StallRate {
			sched.Stall = plan.StallDelay
		}
		injected += sched.Transient
		tasks[i] = FaultyOp(tk, sched)
	}
	return &SchedDAG{Name: sd.Name + "+faults", G: sd.G, Tasks: tasks}, injected
}
