package bench

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/workload"
)

// TestCensusReleaseReducesPeakLiveBytes is the memory-bounded-sessions
// acceptance check: on the census workload, a session that releases
// consumed intermediates (the default) must show a strictly lower peak of
// in-memory value bytes than one told to keep everything, as measured by
// the engine's live-bytes gauge. Iteration 1 teaches the history the
// serialized sizes (the gauge charges computes by history estimate);
// iteration 2 is the measured run.
func TestCensusReleaseReducesPeakLiveBytes(t *testing.T) {
	data := workload.GenerateCensus(600, 150, 7)
	run := func(keep bool) int64 {
		sess, err := core.Open(core.Options{
			SystemName:        "census-mem",
			StoreDir:          filepath.Join(t.TempDir(), "store"),
			Policy:            opt.MaterializeAll{},
			Reuse:             false, // recompute every node so the whole DAG is live
			Workers:           4,
			KeepIntermediates: keep,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := workload.DefaultCensusParams(data)
		if _, err := sess.Run(p.Build()); err != nil {
			t.Fatal(err)
		}
		sess.LiveBytes().Reset() // discard the size-learning iteration
		if _, err := sess.Run(p.Build()); err != nil {
			t.Fatal(err)
		}
		return sess.LiveBytes().Peak()
	}
	peakRelease := run(false)
	peakKeep := run(true)
	if peakRelease == 0 || peakKeep == 0 {
		t.Fatalf("gauge recorded nothing: release=%d keep=%d", peakRelease, peakKeep)
	}
	if peakRelease >= peakKeep {
		t.Errorf("release peak %d not below keep peak %d", peakRelease, peakKeep)
	}
	t.Logf("census peak live bytes: release=%d keep=%d (%.0f%% reduction)",
		peakRelease, peakKeep, (1-float64(peakRelease)/float64(peakKeep))*100)
}
