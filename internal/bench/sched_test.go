package bench

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/exec"
)

func schedShapes() []*SchedDAG {
	const us = time.Microsecond
	return []*SchedDAG{
		StragglerLevelDAG(3, 3, 200*us, 20*us),
		WideDAG(8, 50*us),
		SkewedLevelDAG(3, 3, 200*us, 20*us),
		StragglerChainDAG(5, 300*us, 20*us),
	}
}

// TestSchedDAGsValid: every builder yields an acyclic graph with at least
// one output and tasks sized to the graph.
func TestSchedDAGsValid(t *testing.T) {
	for _, sd := range schedShapes() {
		if _, err := sd.G.Topo(); err != nil {
			t.Errorf("%s: %v", sd.Name, err)
		}
		if len(sd.Tasks) != sd.G.Len() {
			t.Errorf("%s: %d tasks for %d nodes", sd.Name, len(sd.Tasks), sd.G.Len())
		}
		if len(sd.G.Outputs()) == 0 {
			t.Errorf("%s: no outputs", sd.Name)
		}
		if len(sd.Plan().States) != sd.G.Len() {
			t.Errorf("%s: plan mis-sized", sd.Name)
		}
	}
}

// TestSchedShapesEquivalentAcrossStrategies: both schedulers compute
// identical values on every stress shape — the correctness half of the
// scheduler benchmarks.
func TestSchedShapesEquivalentAcrossStrategies(t *testing.T) {
	for _, sd := range schedShapes() {
		df, err := RunSched(sd, exec.Dataflow, 4)
		if err != nil {
			t.Fatalf("%s dataflow: %v", sd.Name, err)
		}
		lb, err := RunSched(sd, exec.LevelBarrier, 4)
		if err != nil {
			t.Fatalf("%s level-barrier: %v", sd.Name, err)
		}
		if !reflect.DeepEqual(df.Values, lb.Values) {
			t.Errorf("%s: values differ between schedulers", sd.Name)
		}
	}
}
