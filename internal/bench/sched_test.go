package bench

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
)

func schedShapes() []*SchedDAG {
	const us = time.Microsecond
	return []*SchedDAG{
		StragglerLevelDAG(3, 3, 200*us, 20*us),
		WideDAG(8, 50*us),
		SkewedLevelDAG(3, 3, 200*us, 20*us),
		StragglerChainDAG(5, 300*us, 20*us),
		FanoutChainDAG(6, 4, 50*us),
		CPUFanoutDAG(6, 4, 20*us),
	}
}

// TestSchedDAGsValid: every builder yields an acyclic graph with at least
// one output and tasks sized to the graph.
func TestSchedDAGsValid(t *testing.T) {
	for _, sd := range schedShapes() {
		if _, err := sd.G.Topo(); err != nil {
			t.Errorf("%s: %v", sd.Name, err)
		}
		if len(sd.Tasks) != sd.G.Len() {
			t.Errorf("%s: %d tasks for %d nodes", sd.Name, len(sd.Tasks), sd.G.Len())
		}
		if len(sd.G.Outputs()) == 0 {
			t.Errorf("%s: no outputs", sd.Name)
		}
		if len(sd.Plan().States) != sd.G.Len() {
			t.Errorf("%s: plan mis-sized", sd.Name)
		}
	}
}

// TestSchedShapesEquivalentAcrossStrategies: every scheduler configuration
// computes identical values on every stress shape — the correctness half
// of the scheduler benchmarks.
func TestSchedShapesEquivalentAcrossStrategies(t *testing.T) {
	for _, sd := range schedShapes() {
		lb, err := RunSched(sd, exec.LevelBarrier, 4)
		if err != nil {
			t.Fatalf("%s level-barrier: %v", sd.Name, err)
		}
		for _, order := range []exec.Ordering{exec.CriticalPath, exec.MinID} {
			df, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
			if err != nil {
				t.Fatalf("%s dataflow/%v: %v", sd.Name, order, err)
			}
			if !reflect.DeepEqual(df.Values, lb.Values) {
				t.Errorf("%s: values differ between dataflow/%v and level-barrier", sd.Name, order)
			}
		}
	}
}

// TestFanoutChainCriticalPathBeatsMinID is the ordering-latency
// acceptance check on the adversarial fanout shape: critical-path
// dispatch starts the long chain immediately, min-ID drains every cheap
// branch first. The shape is sleep-based so the expected ~33% gap does
// not depend on spare cores; the assertion demands only a 10% win to
// stay far from scheduler jitter.
func TestFanoutChainCriticalPathBeatsMinID(t *testing.T) {
	sd := FanoutChainDAG(12, 6, time.Millisecond)
	best := func(order exec.Ordering) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			res, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Wall < min {
				min = res.Wall
			}
		}
		return min
	}
	cp, mi := best(exec.CriticalPath), best(exec.MinID)
	if float64(cp) > 0.9*float64(mi) {
		t.Errorf("critical-path %v not measurably faster than min-id %v on fanout-chain", cp, mi)
	}
}

// TestCPUFanoutCriticalPathNotSlower compares the orderings on the
// CPU-bound fanout. With spare cores critical-path should win outright;
// on starved runners (single-core CI) total work equals makespan whatever
// the order, so the assertion is only "not slower beyond noise".
func TestCPUFanoutCriticalPathNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("spin-loop shape is CPU-hungry")
	}
	sd := CPUFanoutDAG(12, 6, 500*time.Microsecond)
	best := func(order exec.Ordering) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			res, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Wall < min {
				min = res.Wall
			}
		}
		return min
	}
	cp, mi := best(exec.CriticalPath), best(exec.MinID)
	if float64(cp) > 1.25*float64(mi) {
		t.Errorf("critical-path %v slower than min-id %v beyond noise on cpu-fanout", cp, mi)
	}
	if runtime.NumCPU() >= 4 && float64(cp) > 0.95*float64(mi) {
		t.Logf("note: %d cores available but critical-path %v did not beat min-id %v", runtime.NumCPU(), cp, mi)
	}
}

// TestRunSchedReleaseDropsIntermediates: the release knob of
// RunSchedOrdered leaves only output values behind, and they match the
// retain-everything run.
func TestRunSchedReleaseDropsIntermediates(t *testing.T) {
	sd := FanoutChainDAG(4, 3, 0)
	full, err := RunSchedOrdered(sd, exec.Dataflow, exec.CriticalPath, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RunSchedOrdered(sd, exec.Dataflow, exec.CriticalPath, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	outputs := sd.G.Outputs()
	if len(rel.Values) != len(outputs) {
		t.Errorf("release retained %d values, want %d outputs", len(rel.Values), len(outputs))
	}
	for _, o := range outputs {
		if !reflect.DeepEqual(rel.Values[o], full.Values[o]) {
			t.Errorf("output %d differs under release: %v vs %v", o, rel.Values[o], full.Values[o])
		}
	}
}
