package bench

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
)

func schedShapes() []*SchedDAG {
	const us = time.Microsecond
	return []*SchedDAG{
		StragglerLevelDAG(3, 3, 200*us, 20*us),
		WideDAG(8, 50*us),
		SkewedLevelDAG(3, 3, 200*us, 20*us),
		StragglerChainDAG(5, 300*us, 20*us),
		FanoutChainDAG(6, 4, 50*us),
		CPUFanoutDAG(6, 4, 20*us),
		ContentionDAG(8, 6),
	}
}

// TestSchedDAGsValid: every builder yields an acyclic graph with at least
// one output and tasks sized to the graph.
func TestSchedDAGsValid(t *testing.T) {
	for _, sd := range schedShapes() {
		if _, err := sd.G.Topo(); err != nil {
			t.Errorf("%s: %v", sd.Name, err)
		}
		if len(sd.Tasks) != sd.G.Len() {
			t.Errorf("%s: %d tasks for %d nodes", sd.Name, len(sd.Tasks), sd.G.Len())
		}
		if len(sd.G.Outputs()) == 0 {
			t.Errorf("%s: no outputs", sd.Name)
		}
		if len(sd.Plan().States) != sd.G.Len() {
			t.Errorf("%s: plan mis-sized", sd.Name)
		}
	}
}

// TestSchedShapesEquivalentAcrossStrategies: every scheduler configuration
// computes identical values on every stress shape — the correctness half
// of the scheduler benchmarks.
func TestSchedShapesEquivalentAcrossStrategies(t *testing.T) {
	for _, sd := range schedShapes() {
		lb, err := RunSched(sd, exec.LevelBarrier, 4)
		if err != nil {
			t.Fatalf("%s level-barrier: %v", sd.Name, err)
		}
		for _, order := range []exec.Ordering{exec.CriticalPath, exec.MinID} {
			df, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
			if err != nil {
				t.Fatalf("%s dataflow/%v: %v", sd.Name, order, err)
			}
			if !reflect.DeepEqual(df.Values, lb.Values) {
				t.Errorf("%s: values differ between dataflow/%v and level-barrier", sd.Name, order)
			}
		}
	}
}

// TestFanoutChainCriticalPathBeatsMinID is the ordering-latency
// acceptance check on the adversarial fanout shape: critical-path
// dispatch starts the long chain immediately, min-ID drains every cheap
// branch first. The shape is sleep-based so the expected ~33% gap does
// not depend on spare cores; the assertion demands only a 10% win to
// stay far from scheduler jitter. The two modes run interleaved, each
// taking its min over five runs: a throttled-host freeze storm then
// inflates samples of both modes instead of swallowing one mode's whole
// series and compressing the ratio.
func TestFanoutChainCriticalPathBeatsMinID(t *testing.T) {
	sd := FanoutChainDAG(12, 6, time.Millisecond)
	one := func(order exec.Ordering) time.Duration {
		res, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	cp := time.Duration(1<<62 - 1)
	mi := cp
	for i := 0; i < 5; i++ {
		if w := one(exec.CriticalPath); w < cp {
			cp = w
		}
		if w := one(exec.MinID); w < mi {
			mi = w
		}
	}
	if float64(cp) > 0.9*float64(mi) {
		t.Errorf("critical-path %v not measurably faster than min-id %v on fanout-chain", cp, mi)
	}
}

// TestCPUFanoutCriticalPathNotSlower compares the orderings on the
// CPU-bound fanout. With spare cores critical-path should win outright;
// on starved runners (single-core CI) total work equals makespan whatever
// the order, so the assertion is only "not slower beyond noise".
func TestCPUFanoutCriticalPathNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("spin-loop shape is CPU-hungry")
	}
	sd := CPUFanoutDAG(12, 6, 500*time.Microsecond)
	best := func(order exec.Ordering) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			res, err := RunSchedOrdered(sd, exec.Dataflow, order, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Wall < min {
				min = res.Wall
			}
		}
		return min
	}
	cp, mi := best(exec.CriticalPath), best(exec.MinID)
	if float64(cp) > 1.25*float64(mi) {
		t.Errorf("critical-path %v slower than min-id %v beyond noise on cpu-fanout", cp, mi)
	}
	if runtime.NumCPU() >= 4 && float64(cp) > 0.95*float64(mi) {
		t.Logf("note: %d cores available but critical-path %v did not beat min-id %v", runtime.NumCPU(), cp, mi)
	}
}

// TestDispatchModesEquivalentOnShapes: on every stress shape, the
// work-stealing and global-heap dispatchers produce byte-identical values
// (checked against each other and the level-barrier reference).
func TestDispatchModesEquivalentOnShapes(t *testing.T) {
	for _, sd := range schedShapes() {
		lb, err := RunSched(sd, exec.LevelBarrier, 4)
		if err != nil {
			t.Fatalf("%s level-barrier: %v", sd.Name, err)
		}
		for _, mode := range []exec.DispatchMode{exec.WorkSteal, exec.GlobalHeap} {
			df, err := RunSchedDispatch(sd, exec.Dataflow, exec.CriticalPath, mode, 4, false)
			if err != nil {
				t.Fatalf("%s %v: %v", sd.Name, mode, err)
			}
			if err := SchedValuesEqual(df, lb); err != nil {
				t.Errorf("%s %v: %v", sd.Name, mode, err)
			}
		}
	}
}

// TestContentionWorkStealNotSlower is the CI-safe guard on the dispatch
// rewrite: on the contention shape, work-stealing must not lose to the
// global heap beyond noise (best of 5 each, interleaved so a freeze
// storm hits both modes' samples). The ≥20% win itself is a benchmark
// target (BenchmarkSchedulerContention), not a test assertion —
// wall-clock ratios on starved shared runners are too noisy to gate a
// build on.
func TestContentionWorkStealNotSlower(t *testing.T) {
	sd := ContentionDAG(32, 16)
	one := func(mode exec.DispatchMode) time.Duration {
		res, err := RunSchedDispatch(sd, exec.Dataflow, exec.CriticalPath, mode, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	ws := time.Duration(1<<62 - 1)
	gh := ws
	for i := 0; i < 5; i++ {
		if w := one(exec.WorkSteal); w < ws {
			ws = w
		}
		if w := one(exec.GlobalHeap); w < gh {
			gh = w
		}
	}
	if float64(ws) > 1.5*float64(gh) {
		t.Errorf("work-stealing %v slower than global heap %v beyond noise on contention shape", ws, gh)
	}
}

// TestMeasureDispatch: the BENCH_3 measurement helper reports the shape,
// a positive wall, cross-worker transfers under work-stealing, and a
// non-zero peak (the structural cold-size floor guarantees estimates
// before any size is learned).
func TestMeasureDispatch(t *testing.T) {
	sd := ContentionDAG(8, 6)
	m, res, err := MeasureDispatch(sd, exec.WorkSteal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Values) != len(sd.G.Outputs()) {
		t.Fatalf("measured run result missing or wrong size: %+v", res)
	}
	if m.Shape != sd.Name || m.Nodes != sd.G.Len() || m.Workers != 4 || m.Dispatch != "worksteal" {
		t.Errorf("measurement metadata wrong: %+v", m)
	}
	if m.WallMS <= 0 {
		t.Errorf("wall not measured: %+v", m)
	}
	if m.PeakLiveBytes <= 0 {
		t.Errorf("peak live bytes not measured (cold structural floor missing?): %+v", m)
	}
	gh, ghRes, err := MeasureDispatch(sd, exec.GlobalHeap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := SchedValuesEqual(res, ghRes); err != nil {
		t.Errorf("measured runs disagree across modes: %v", err)
	}
	if gh.Steals != 0 || gh.Handoffs != 0 {
		t.Errorf("global-heap measurement reported transfers: %+v", gh)
	}
}

// TestLiarAdaptiveBeatsStatic is the online re-prioritization acceptance
// check on the deceptive-estimate LiarDAG shape: the lying history buries
// the true long-pole chain behind claimed-expensive decoys, so static
// critical-path pays the whole chain as a serial tail while adaptive
// re-weighting corrects the decoy group off the first measured
// completions. Asserted under both dispatchers: the global heap buries the
// chain strictly by rank, and work-stealing — since the stranding-consult
// fix — declines a deceptively under-weighted local top in favor of the
// published global best, so the lie costs it the same serial tail instead
// of being accidentally rescued by steal-half stranding (the PR 4
// finding, now closed). The design-point gap is ~25-40% at 8 workers; the
// assertion demands 15%: on a throttled CI host a slow window inflates
// both modes' walls by the same additive freeze time, which preserves the
// absolute gap but pushes the ratio toward 1, so the factor carries slack
// for exactly that signature. The shape is sleep-dominated so the gap
// does not depend on spare cores, each mode takes its min over five runs
// (one clean run per mode is all the comparison needs), and values must
// be byte-identical across modes.
func TestLiarAdaptiveBeatsStatic(t *testing.T) {
	const factor = 0.85
	for _, dispatch := range []exec.DispatchMode{exec.GlobalHeap, exec.WorkSteal} {
		t.Run(dispatch.String(), func(t *testing.T) {
			best := func(mode exec.Reweight) (time.Duration, *exec.Result) {
				min := time.Duration(1<<62 - 1)
				var bestRes *exec.Result
				for i := 0; i < 5; i++ {
					sd := DefaultLiarDAG()
					_, res, err := MeasureReweight(sd, DefaultLiarHistory(sd), mode, dispatch, 8)
					if err != nil {
						t.Fatal(err)
					}
					if res.Wall < min {
						min = res.Wall
						bestRes = res
					}
					if mode == exec.Adaptive && res.Reweights == 0 {
						t.Error("adaptive run performed no re-prioritization passes")
					}
				}
				return min, bestRes
			}
			ad, adRes := best(exec.Adaptive)
			off, offRes := best(exec.ReweightOff)
			if err := SchedValuesEqual(adRes, offRes); err != nil {
				t.Fatal(err)
			}
			if float64(ad) > factor*float64(off) {
				t.Errorf("adaptive min-wall %v not ≥%.0f%% below static %v on the liar shape under %s",
					ad, 100*(1-factor), off, dispatch)
			}
		})
	}
}

// TestMeasureReweightMetadata: the reweight measurement helper reports the
// configuration it ran and a positive wall, and an adaptive liar run
// counts its passes.
func TestMeasureReweightMetadata(t *testing.T) {
	sd := DefaultLiarDAG()
	m, res, err := MeasureReweight(sd, DefaultLiarHistory(sd), exec.Adaptive, exec.WorkSteal, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shape != "liar" || m.Nodes != sd.G.Len() || m.Workers != 8 ||
		m.Reweight != "adaptive" || m.Dispatch != "worksteal" {
		t.Errorf("measurement metadata wrong: %+v", m)
	}
	if m.WallMS <= 0 {
		t.Errorf("wall not measured: %+v", m)
	}
	if m.Reweights == 0 || m.Reweights != res.Reweights {
		t.Errorf("reweight passes not carried through: %+v vs result %d", m, res.Reweights)
	}
}

// TestRunSchedReleaseDropsIntermediates: the release knob of
// RunSchedOrdered leaves only output values behind, and they match the
// retain-everything run.
func TestRunSchedReleaseDropsIntermediates(t *testing.T) {
	sd := FanoutChainDAG(4, 3, 0)
	full, err := RunSchedOrdered(sd, exec.Dataflow, exec.CriticalPath, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RunSchedOrdered(sd, exec.Dataflow, exec.CriticalPath, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	outputs := sd.G.Outputs()
	if len(rel.Values) != len(outputs) {
		t.Errorf("release retained %d values, want %d outputs", len(rel.Values), len(outputs))
	}
	for _, o := range outputs {
		if !reflect.DeepEqual(rel.Values[o], full.Values[o]) {
			t.Errorf("output %d differs under release: %v vs %v", o, rel.Values[o], full.Values[o])
		}
	}
}
