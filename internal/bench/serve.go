package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/serve"
)

// serveLoadVariants is the overlapping workflow progression every loadgen
// client walks: each variant extends the previous one's feature set, so
// across tenants the shared prefixes (scan, clean, base features) are
// byte-identical sub-DAGs — the cross-session dedup case the shared store
// exists for.
func serveLoadVariants() []serve.Variant {
	return []serve.Variant{
		{},
		{WithOccupation: true},
		{WithOccupation: true, RegParam: 0.01},
		{WithOccupation: true, RegParam: 0.01, WithMaritalStatus: true, WithCapital: true},
	}
}

// ServeLoadOptions sizes one loadgen measurement.
type ServeLoadOptions struct {
	// Clients is the number of concurrent tenants (default 3).
	Clients int
	// PerClient is how many submissions each tenant issues, walking the
	// overlapping variant progression (default 4).
	PerClient int
	// Workers is each run's intra-workflow parallelism (default 2).
	Workers int
	// Rows sizes the shared census dataset (default 600 — large enough
	// that reuse beats recompute, small enough for CI).
	Rows int
	// Dispatch selects the daemon's dispatch mode for this measurement.
	Dispatch exec.DispatchMode
}

// MeasureServeLoad drives the serve daemon end-to-end over HTTP: Clients
// concurrent tenants each submit PerClient overlapping workflow variants
// against one shared store rooted at dir, and the measurement reports
// throughput, p99 submit-to-complete latency, and the summed counter block
// — CrossSessionHits > 0 is the dedup signal helix-benchdiff gates on.
// Before returning it verifies every pair of tenants agreed byte-identically
// (equal output hashes) on every variant, so the perf numbers only ever
// describe correct runs.
func MeasureServeLoad(dir string, o ServeLoadOptions) (DispatchMeasurement, error) {
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.PerClient <= 0 {
		o.PerClient = 4
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Rows <= 0 {
		o.Rows = 600
	}
	svc, err := serve.New(serve.Config{
		Dir:              dir,
		SpillBudgetBytes: -1, // tiered, unbudgeted: exercise the full path
		Workers:          o.Workers,
		MaxConcurrent:    o.Clients,
		DefaultRows:      o.Rows,
		Dispatch:         o.Dispatch,
	})
	if err != nil {
		return DispatchMeasurement{}, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer svc.Shutdown(shutdownCtx)

	variants := serveLoadVariants()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		totals    exec.Counters
		hashes    = make(map[int]map[string]string) // variant -> tenant -> hash
		nodes     int
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("load-%d", c)
			for i := 0; i < o.PerClient; i++ {
				vi := i % len(variants)
				resp, err := submitHTTP(ts.URL, &serve.SubmitRequest{
					Tenant: tenant, App: "census", Variant: variants[vi],
				})
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("bench: client %d submission %d: %w", c, i, err)
					}
					mu.Unlock()
					return
				}
				latencies = append(latencies, resp.latency)
				totals.Add(resp.body.Counters)
				if hashes[vi] == nil {
					hashes[vi] = make(map[string]string)
				}
				hashes[vi][tenant] = resp.body.OutputHash
				nodes = resp.body.Computed + resp.body.Loaded + resp.body.Pruned
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return DispatchMeasurement{}, firstErr
	}
	for vi, byTenant := range hashes {
		var ref string
		for tenant, h := range byTenant {
			if ref == "" {
				ref = h
			} else if h != ref {
				return DispatchMeasurement{}, fmt.Errorf("bench: variant %d: tenant %s output hash diverges — sharing is not value-transparent", vi, tenant)
			}
		}
	}
	// In-flight dedup probe: every tenant submits the *same* variant
	// simultaneously against a FRESH daemon (warm-store plans may
	// legitimately mix Load and Compute states across runs, which would
	// blur the arithmetic below — a cold store makes every plan
	// all-compute, so the identity is exact). The single-flight registry
	// must collapse the duplicate work — summed over the runs,
	// compute-planned nodes minus dedup hits equals one run's
	// compute-planned count — with byte-identical outputs. Its counters
	// (inflight_dedup_hits, inflight_waits) flow into the measurement's
	// totals; its latencies stay out of the throughput numbers, which
	// describe the overlapping-variant walk above.
	// The exactly-once identity is asserted on every attempt; a zero hit
	// count only means the submissions happened not to overlap (one run
	// finished before the other planned, making it all-Load), so the probe
	// retries on a fresh store until they do.
	var probeHits int64
	for attempt := 0; attempt < 3; attempt++ {
		probeHits, err = runDedupProbe(fmt.Sprintf("%s/inflight-probe-%d", dir, attempt), o, &totals)
		if err != nil {
			return DispatchMeasurement{}, err
		}
		if probeHits > 0 {
			break
		}
	}
	if probeHits == 0 {
		return DispatchMeasurement{}, fmt.Errorf("bench: %d identical simultaneous submissions never overlapped in 3 attempts — no inflight_dedup_hits", o.Clients)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[(len(latencies)*99)/100]
	return DispatchMeasurement{
		Shape:         "serve-loadgen",
		Nodes:         nodes,
		Dispatch:      o.Dispatch.String(),
		Workers:       o.Workers,
		WallMS:        float64(wall.Microseconds()) / 1000,
		Counters:      totals,
		ThroughputRPS: float64(len(latencies)) / wall.Seconds(),
		P99MS:         float64(p99.Microseconds()) / 1000,
	}, nil
}

// runDedupProbe opens a fresh daemon at dir, fires o.Clients identical
// simultaneous submissions at it, verifies the exactly-once identity
// (executions == one run's compute-planned count) and output-hash
// agreement, folds the runs' counters into totals, and returns the summed
// in-flight dedup hits.
func runDedupProbe(dir string, o ServeLoadOptions, totals *exec.Counters) (int64, error) {
	svc, err := serve.New(serve.Config{
		Dir:              dir,
		SpillBudgetBytes: -1,
		Workers:          o.Workers,
		MaxConcurrent:    o.Clients,
		DefaultRows:      o.Rows,
		Dispatch:         o.Dispatch,
	})
	if err != nil {
		return 0, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer svc.Shutdown(shutdownCtx)

	results := make([]*submitResult, o.Clients)
	errs := make([]error, o.Clients)
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = submitHTTP(ts.URL, &serve.SubmitRequest{
				Tenant: fmt.Sprintf("probe-%d", c), App: "census", Variant: serve.Variant{WithHours: true},
			})
		}(c)
	}
	wg.Wait()
	var computed, hits, unique int64
	hash := ""
	for c := 0; c < o.Clients; c++ {
		if errs[c] != nil {
			return 0, fmt.Errorf("bench: dedup probe client %d: %w", c, errs[c])
		}
		body := results[c].body
		if hash == "" {
			hash = body.OutputHash
		} else if body.OutputHash != hash {
			return 0, fmt.Errorf("bench: dedup probe client %d output hash diverges — single-flight is not value-transparent", c)
		}
		computed += int64(body.Computed)
		hits += body.Counters.InflightDedupHits
		if int64(body.Computed) > unique {
			unique = int64(body.Computed)
		}
		totals.Add(body.Counters)
	}
	if got := computed - hits; got != unique {
		return 0, fmt.Errorf("bench: dedup probe executed %d operators across %d identical submissions, want exactly the %d unique signatures", got, o.Clients, unique)
	}
	return hits, nil
}

type submitResult struct {
	body    serve.SubmitResponse
	latency time.Duration
}

// submitHTTP posts one submission and decodes the response, treating any
// non-200 as an error carrying the structured body.
func submitHTTP(baseURL string, req *serve.SubmitRequest) (*submitResult, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := http.Post(baseURL+"/v1/submit", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	latency := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	out := &submitResult{latency: latency}
	if err := json.Unmarshal(raw, &out.body); err != nil {
		return nil, err
	}
	return out, nil
}
