package bench

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/exec"
)

// RandomDAG generates a seeded pseudo-random workflow graph with
// deterministic integer tasks: 6–24 nodes, each wired to up to three
// earlier nodes, sinks (plus a random sprinkle of interior nodes) marked
// as outputs, and every node keyed so materialization and load plans can
// address it. The same seed always yields the same graph, tasks and
// values — the raw material of the randomized scheduler-equivalence
// harness, where any divergence between executors must be attributable to
// the executor, never the workload.
func RandomDAG(seed int64) *SchedDAG {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(19)
	g := dag.New()
	tasks := make([]exec.Task, 0, n)
	for i := 0; i < n; i++ {
		id := g.MustAddNode(fmt.Sprintf("n%d", i), "op")
		if i > 0 {
			parents := rng.Intn(3) + 1
			if parents > i {
				parents = i
			}
			seen := map[int]bool{}
			for p := 0; p < parents; p++ {
				cand := rng.Intn(i)
				if !seen[cand] {
					seen[cand] = true
					g.MustAddEdge(dag.NodeID(cand), id)
				}
			}
		}
		base := i
		tasks = append(tasks, exec.Task{
			Key: fmt.Sprintf("rk%d_%d", seed, i),
			Run: func(_ context.Context, in []any) (any, error) {
				// Mix inputs order-sensitively so a scheduler delivering
				// parents in the wrong order cannot produce the right bytes.
				sum := base*2654435761 + 17
				for _, v := range in {
					sum = sum*31 + v.(int)
				}
				return sum, nil
			},
		})
	}
	for i := 0; i < n; i++ {
		id := dag.NodeID(i)
		if len(g.Children(id)) == 0 || rng.Float64() < 0.2 {
			g.Node(id).Output = true
		}
	}
	return &SchedDAG{Name: fmt.Sprintf("random-%d", seed), G: g, Tasks: tasks}
}
