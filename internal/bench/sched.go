package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// SchedDAG bundles a synthetic scheduler-stress graph with its tasks and an
// all-compute plan. The tasks burn wall-clock with time.Sleep (operator
// work is opaque to the scheduler; only its duration matters) or, for the
// CPU-bound shapes, with a spin loop that keeps a core busy — the honest
// way to measure scheduler overhead and ordering effects under real
// contention. All tasks produce deterministic integers so two runs can be
// compared value-for-value.
type SchedDAG struct {
	Name  string
	G     *dag.Graph
	Tasks []exec.Task
}

// Plan returns an all-compute plan sized to the DAG.
func (s *SchedDAG) Plan() *opt.Plan {
	states := make([]opt.State, s.G.Len())
	for i := range states {
		states[i] = opt.Compute
	}
	return &opt.Plan{States: states}
}

// sleepCtx sleeps for d unless ctx is cancelled first, in which case it
// returns the context's error immediately — the pattern every sleeping
// bench operator uses so first-error cancellation and per-node deadlines
// actually interrupt in-flight work instead of waiting it out.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// spinCtx busy-loops for roughly d (occupying a core, unlike sleepCtx),
// checking ctx periodically so cancellation interrupts the spin.
func spinCtx(ctx context.Context, d time.Duration) error {
	var spins uint64
	for start := time.Now(); time.Since(start) < d; {
		spins++
		if spins%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// sleepTask returns a deterministic task: sleep d, then emit a value
// derived from the inputs and the node's own index.
func sleepTask(idx int, d time.Duration) exec.Task {
	return exec.Task{Run: func(ctx context.Context, in []any) (any, error) {
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
		sum := idx
		for _, v := range in {
			sum += v.(int)
		}
		return sum, nil
	}}
}

// spinTask returns a deterministic CPU-bound task: busy-loop for roughly d
// (occupying a core, unlike time.Sleep which frees it), then emit a value
// derived from the inputs and the node's own index. The spin counter never
// feeds the result, so values stay deterministic across machines.
func spinTask(idx int, d time.Duration) exec.Task {
	return exec.Task{Run: func(ctx context.Context, in []any) (any, error) {
		if err := spinCtx(ctx, d); err != nil {
			return nil, err
		}
		sum := idx
		for _, v := range in {
			sum += v.(int)
		}
		return sum, nil
	}}
}

// StragglerLevelDAG is the level-barrier worst case the acceptance
// benchmark measures: `width` independent chains of depth `levels` hang off
// one root, and chain w's node at level w (the diagonal) runs for `slow`
// while every other node runs for `fast`. A level-barrier executor pays the
// straggler once per level (≈ levels·slow total, because every level
// contains exactly one slow node); dependency-counting scheduling overlaps
// the stragglers across chains, so the wall approaches one chain's cost
// (slow + (levels-1)·fast). width should not exceed the worker count if the
// comparison is to isolate scheduling rather than queueing.
func StragglerLevelDAG(levels, width int, slow, fast time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{sleepTask(0, 0)}
	for w := 0; w < width; w++ {
		prev := root
		for l := 0; l < levels; l++ {
			id := g.MustAddNode(fmt.Sprintf("c%d_l%d", w, l), "op")
			g.MustAddEdge(prev, id)
			d := fast
			if l == w%levels {
				d = slow
			}
			tasks = append(tasks, sleepTask(int(id), d))
			prev = id
		}
		g.Node(prev).Output = true
	}
	return &SchedDAG{Name: "straggler-level", G: g, Tasks: tasks}
}

// WideDAG is a root fanning out to `width` uniform leaves feeding one join:
// the shape that stresses ready-queue dispatch and (with the engine's
// release flag) peak value retention.
func WideDAG(width int, cost time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{sleepTask(0, 0)}
	join := g.MustAddNode("join", "agg")
	tasks = append(tasks, sleepTask(1, 0))
	for w := 0; w < width; w++ {
		id := g.MustAddNode(fmt.Sprintf("leaf%d", w), "op")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, sleepTask(int(id), cost))
	}
	g.Node(join).Output = true
	return &SchedDAG{Name: "wide", G: g, Tasks: tasks}
}

// SkewedLevelDAG builds `levels` waves of `width` independent nodes (each
// wired to one hub node of the previous wave) where the first node of each
// wave costs `slow` and the rest cost `fast` — the "skewed level" shape: a
// barrier idles width-1 workers per wave while dataflow streams the cheap
// majority of the next wave through.
func SkewedLevelDAG(levels, width int, slow, fast time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{sleepTask(0, 0)}
	hub := root
	for l := 0; l < levels; l++ {
		var nextHub dag.NodeID
		for w := 0; w < width; w++ {
			id := g.MustAddNode(fmt.Sprintf("l%d_n%d", l, w), "op")
			g.MustAddEdge(hub, id)
			d := fast
			if w == 0 {
				d = slow
			}
			// The cheap second node is the next wave's hub, so the slow
			// node never gates the spine the next wave hangs off.
			if w == 1 || width == 1 {
				nextHub = id
			}
			tasks = append(tasks, sleepTask(int(id), d))
		}
		hub = nextHub
	}
	g.Node(hub).Output = true
	for w := 0; w < g.Len(); w++ {
		if len(g.Children(dag.NodeID(w))) == 0 {
			g.Node(dag.NodeID(w)).Output = true
		}
	}
	return &SchedDAG{Name: "skewed-level", G: g, Tasks: tasks}
}

// StragglerChainDAG pairs one shallow expensive node with a deep chain of
// cheap nodes joining into a final output — the out-of-order-completion
// shape: the cheap chain must finish ahead of the straggler even though it
// is many levels deeper.
func StragglerChainDAG(depth int, slow, fast time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{sleepTask(0, 0)}
	straggler := g.MustAddNode("straggler", "learner")
	g.MustAddEdge(root, straggler)
	tasks = append(tasks, sleepTask(int(straggler), slow))
	prev := root
	for i := 0; i < depth; i++ {
		id := g.MustAddNode(fmt.Sprintf("chain%d", i), "op")
		g.MustAddEdge(prev, id)
		tasks = append(tasks, sleepTask(int(id), fast))
		prev = id
	}
	join := g.MustAddNode("join", "agg")
	g.MustAddEdge(straggler, join)
	g.MustAddEdge(prev, join)
	g.Node(join).Output = true
	tasks = append(tasks, sleepTask(int(join), 0))
	return &SchedDAG{Name: "straggler-chain", G: g, Tasks: tasks}
}

// fanoutChain builds the ordering-adversarial wide-fanout topology: a root
// fans out to `short` independent single-node branches plus one chain of
// `depth` nodes, all joining into one output. The chain is added last, so
// its IDs are the highest — the worst case for min-ID dispatch, which
// drains every cheap branch before the run's long pole gets a worker
// (makespan ≈ short/workers + depth task-lengths). Critical-path ordering
// starts the chain immediately and fills the remaining workers with the
// branches (makespan ≈ max(depth, short/(workers-1)) task-lengths).
func fanoutChain(name string, short, depth int, d time.Duration, mk func(int, time.Duration) exec.Task) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{mk(0, 0)}
	join := g.MustAddNode("join", "agg")
	tasks = append(tasks, mk(1, 0))
	for s := 0; s < short; s++ {
		id := g.MustAddNode(fmt.Sprintf("s%d", s), "op")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, mk(int(id), d))
	}
	prev := root
	for l := 0; l < depth; l++ {
		id := g.MustAddNode(fmt.Sprintf("chain%d", l), "op")
		g.MustAddEdge(prev, id)
		tasks = append(tasks, mk(int(id), d))
		prev = id
	}
	g.MustAddEdge(prev, join)
	g.Node(join).Output = true
	return &SchedDAG{Name: name, G: g, Tasks: tasks}
}

// FanoutChainDAG is the sleep-based fanout-plus-chain shape: because
// sleeping tasks do not occupy a core, the ordering effect (critical-path
// dispatch starting the chain before the cheap branches) shows in wall
// time on any machine, including single-core CI runners.
func FanoutChainDAG(short, depth int, d time.Duration) *SchedDAG {
	return fanoutChain("fanout-chain", short, depth, d, sleepTask)
}

// CPUFanoutDAG is the same topology with spin-loop (CPU-bound) tasks: the
// honest workload for measuring scheduler overhead under real core
// contention. The ordering win additionally needs spare cores (on a
// single-core host total work equals makespan whatever the order), so
// wall-time comparisons against MinID are only meaningful when
// runtime.NumCPU() comfortably exceeds one.
func CPUFanoutDAG(short, depth int, spin time.Duration) *SchedDAG {
	return fanoutChain("cpu-fanout", short, depth, spin, spinTask)
}

// LiarDAG is the deceptive-estimate shape the online re-prioritizer is
// measured on. Off one root hang three groups, joining into one output:
//
//   - `starters` short sleep nodes (op "decoy"): the completions that
//     reveal the lie within the first couple of milliseconds.
//   - `fats` long sleep nodes (op "decoy"), a multiple of the worker count
//     so they drain in full waves with no idle worker until the very end.
//   - one chain of `chainDepth` spin-then-sleep nodes (op "liar") — the
//     run's true long pole, serial by construction.
//
// Paired with LiarHistory — which claims every decoy is expensive and
// every chain link cheap — static critical-path dispatch buries the chain
// behind all the decoys and pays it as a serial tail (wall ≈ decoy-drain +
// chain). Adaptive re-weighting sees the starters' measured durations
// diverge from their claims, corrects the whole "decoy" group's costs,
// and the chain outranks the remaining decoys after the first pass (wall
// ≈ max(decoy-drain, chain)).
//
// Each chain link spins for an eighth of its duration and sleeps the
// rest: the spin loop is what makes the lie expensive on real silicon,
// but capping it keeps the ordering effect visible on single-core hosts,
// where a pure spinner would starve the sleeping decoy workers of the one
// P and serialize the run regardless of dispatch order.
func LiarDAG(starters, fats, chainDepth int, starterDur, fatDur, chainDur time.Duration) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{sleepTask(0, 0)}
	join := g.MustAddNode("join", "agg")
	tasks = append(tasks, sleepTask(1, 0))
	for s := 0; s < starters; s++ {
		id := g.MustAddNode(fmt.Sprintf("decoy_s%d", s), "decoy")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, sleepTask(int(id), starterDur))
	}
	for s := 0; s < fats; s++ {
		id := g.MustAddNode(fmt.Sprintf("decoy_f%d", s), "decoy")
		g.MustAddEdge(root, id)
		g.MustAddEdge(id, join)
		tasks = append(tasks, sleepTask(int(id), fatDur))
	}
	prev := root
	for l := 0; l < chainDepth; l++ {
		id := g.MustAddNode(fmt.Sprintf("liar%d", l), "liar")
		g.MustAddEdge(prev, id)
		tasks = append(tasks, spinSleepTask(int(id), chainDur/8, chainDur-chainDur/8))
		prev = id
	}
	g.MustAddEdge(prev, join)
	g.Node(join).Output = true
	return &SchedDAG{Name: "liar", G: g, Tasks: tasks}
}

// LiarHistory returns a fresh deceptive history for one run of a LiarDAG:
// every "decoy" node is claimed to cost decoyClaim, every "liar" chain
// node chainClaim. It must be rebuilt per run — the engine writes the
// truth back into the history as nodes finish, so a reused instance stops
// lying after the first execution.
func LiarHistory(sd *SchedDAG, decoyClaim, chainClaim time.Duration) *exec.History {
	h := exec.NewHistory()
	for i := 0; i < sd.G.Len(); i++ {
		n := sd.G.Node(dag.NodeID(i))
		switch n.Op {
		case "decoy":
			h.ObserveCompute(n.Name, decoyClaim, 0)
		case "liar":
			h.ObserveCompute(n.Name, chainClaim, 0)
		}
	}
	return h
}

// Canonical LiarDAG instance shared by BenchmarkSchedulerLiar and
// helix-bench's `-ablation reweight`: 12 starter decoys × 1.5ms + 16 fat
// decoys × 8ms (all claimed 30ms) against a 10-link × 2ms chain (claimed
// 1ms per link, a claimed 10ms path — under a third of the decoys' 30ms,
// so the lie buries the chain under both dispatchers: strictly by rank in
// the global heap, and past the work-stealing stranding consult's 2×
// threshold). Under static dispatch the lie costs the run the whole ~20ms
// chain as a serial tail after the decoy drain, while adaptive
// re-weighting starts the chain within a few ms of the starters' reveal
// and overlaps it with the drain.
const (
	liarStarters   = 12
	liarFats       = 16
	liarChainDepth = 10
)

// reweightMeasureInterval is the completion floor between re-prioritization
// passes used by MeasureReweight's engines: low enough that the very first
// revealed completion of a ~40-node shape can trigger the corrective pass
// while every other worker still holds an uncommitted decoy. Noise
// filtering is the divergence gates' job (≥1ms absolute and ≥50% relative
// error before any pass fires), not the completion floor's — an honest run
// still pays zero passes at this setting. See the MeasureReweight doc
// comment.
const reweightMeasureInterval = 2

var (
	liarStarterDur = 1500 * time.Microsecond
	liarFatDur     = 8 * time.Millisecond
	liarChainDur   = 2 * time.Millisecond
	liarDecoyClaim = 30 * time.Millisecond
	liarChainClaim = 1 * time.Millisecond
)

// DefaultLiarDAG returns the canonical deceptive-estimate shape.
func DefaultLiarDAG() *SchedDAG {
	return LiarDAG(liarStarters, liarFats, liarChainDepth, liarStarterDur, liarFatDur, liarChainDur)
}

// DefaultLiarHistory returns a fresh run's worth of lies for the canonical
// shape.
func DefaultLiarHistory(sd *SchedDAG) *exec.History {
	return LiarHistory(sd, liarDecoyClaim, liarChainClaim)
}

// ReweightMeasurement is one machine-readable data point of the reweight
// ablation: one shape executed once under one reweight mode and dispatch
// mode.
type ReweightMeasurement struct {
	Shape     string  `json:"shape"`
	Nodes     int     `json:"nodes"`
	Reweight  string  `json:"reweight"`
	Dispatch  string  `json:"dispatch"`
	Workers   int     `json:"workers"`
	WallMS    float64 `json:"wall_ms"`
	Reweights int64   `json:"reweights"`
}

// MeasureReweight executes the shape once under the given reweight and
// dispatch modes with a fresh engine and the supplied history (pass a
// fresh LiarHistory per call for deceptive runs; nil runs cold) and
// returns the measurement with the run's Result for value checking.
//
// The headline Adaptive-vs-Off comparison on LiarDAG uses GlobalHeap
// dispatch deliberately: a single strictly priority-ordered queue isolates
// the re-weighting effect. Work-stealing used to blunt the comparison —
// steal-half repeatedly moved the best half of a victim's deque and
// stranded the globally-worst nodes on deques whose owners then ran them
// early, so a deceptively under-weighted long pole got picked up within a
// few milliseconds by accident and the static-vs-adaptive gap mostly
// closed. The stranding consult (see docs/scheduler.md, "Hybrid steal")
// fixed that: a worker now declines a local top far below the published
// global best, so work-stealing honors deceptive weights as faithfully as
// the global heap does and the adaptive margin holds under both
// dispatchers (asserted by TestLiarAdaptiveBeatsStatic, which runs both).
// Both numbers are reported by the reweight ablation.
//
// The engine is configured with reweightMeasureInterval rather than the
// default completion floor: the default (8, tuned for graphs with
// thousands of nodes) would hold the first corrective pass until most of
// the canonical shape's starters have finished — by which point nearly
// every worker has already committed to a multi-millisecond decoy — and
// the measured gap would understate what re-weighting buys at a trigger
// matched to the graph's scale.
func MeasureReweight(sd *SchedDAG, h *exec.History, mode exec.Reweight, dispatch exec.DispatchMode, workers int) (ReweightMeasurement, *exec.Result, error) {
	e := &exec.Engine{Workers: workers, History: h, Reweight: mode, Dispatch: dispatch,
		ReweightInterval: reweightMeasureInterval}
	res, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		return ReweightMeasurement{}, nil, err
	}
	return ReweightMeasurement{
		Shape:     sd.Name,
		Nodes:     sd.G.Len(),
		Reweight:  mode.String(),
		Dispatch:  dispatch.String(),
		Workers:   workers,
		WallMS:    float64(res.Wall.Microseconds()) / 1000,
		Reweights: res.Reweights,
	}, res, nil
}

// spinSleepTask returns a deterministic task that busy-loops for spin and
// then sleeps for rest — a CPU-flavoured long-pole operator whose wall
// cost stays measurable on hosts without a spare core (see LiarDAG).
func spinSleepTask(idx int, spin, rest time.Duration) exec.Task {
	return exec.Task{Run: func(ctx context.Context, in []any) (any, error) {
		if err := spinCtx(ctx, spin); err != nil {
			return nil, err
		}
		if err := sleepCtx(ctx, rest); err != nil {
			return nil, err
		}
		sum := idx
		for _, v := range in {
			sum += v.(int)
		}
		return sum, nil
	}}
}

// busyTask returns a deterministic dispatch-overhead probe: no sleep, no
// spin — just the input mix. With tasks this fine the wall time of a run is
// dominated by the scheduler itself, which is exactly what the contention
// shapes measure.
func busyTask(idx int) exec.Task {
	return exec.Task{Run: func(_ context.Context, in []any) (any, error) {
		sum := idx
		for _, v := range in {
			sum += v.(int)
		}
		return sum, nil
	}}
}

// ContentionDAG is the dispatch-contention worst case: `chains` independent
// chains of `depth` fine-grained nodes hang off one root and join into one
// output — a wide DAG of tiny tasks where every node completion is a
// dispatch event. Under the global-heap dispatcher each of the
// chains×depth transitions takes the one shared mutex (and broadcasts the
// ready condition); under work-stealing a chain link hands off to its
// child on the finishing worker's own deque, so the steady state touches
// no shared lock at all. Tasks are pure dispatch probes (no sleep, no
// spin), so wall time ≈ scheduler overhead.
func ContentionDAG(chains, depth int) *SchedDAG {
	g := dag.New()
	root := g.MustAddNode("root", "scan")
	tasks := []exec.Task{busyTask(0)}
	join := g.MustAddNode("join", "agg")
	tasks = append(tasks, busyTask(1))
	for c := 0; c < chains; c++ {
		prev := root
		for l := 0; l < depth; l++ {
			id := g.MustAddNode(fmt.Sprintf("ch%d_l%d", c, l), "op")
			g.MustAddEdge(prev, id)
			tasks = append(tasks, busyTask(int(id)))
			prev = id
		}
		g.MustAddEdge(prev, join)
	}
	g.Node(join).Output = true
	return &SchedDAG{Name: "contention-wide", G: g, Tasks: tasks}
}

// RunSched executes the DAG once under the given strategy and worker count
// with the default (critical-path) ordering, returning the result for
// wall-time and value inspection.
func RunSched(sd *SchedDAG, sched exec.Strategy, workers int) (*exec.Result, error) {
	return RunSchedOrdered(sd, sched, exec.CriticalPath, workers, false)
}

// RunSchedOrdered executes the DAG once under the given strategy, dataflow
// ready-queue ordering, worker count and intermediate-release setting,
// with the default (work-stealing) dispatch.
func RunSchedOrdered(sd *SchedDAG, sched exec.Strategy, order exec.Ordering, workers int, release bool) (*exec.Result, error) {
	return RunSchedDispatch(sd, sched, order, exec.WorkSteal, workers, release)
}

// RunSchedDispatch executes the DAG once under a fully specified scheduler
// configuration: strategy, dataflow ordering, dispatch mode, worker count
// and intermediate-release setting.
func RunSchedDispatch(sd *SchedDAG, sched exec.Strategy, order exec.Ordering, dispatch exec.DispatchMode, workers int, release bool) (*exec.Result, error) {
	e := &exec.Engine{Workers: workers, Sched: sched, Order: order, Dispatch: dispatch, ReleaseIntermediates: release}
	return e.Execute(sd.G, sd.Tasks, sd.Plan())
}

// DispatchMeasurement is one machine-readable data point of the dispatch
// ablation (the BENCH_3.json schema): one shape executed once under one
// dispatch mode. Since schema 2 the counter fields are the embedded
// exec.Counters block (same JSON keys the pre-consolidation schema used,
// plus the counters it lacked), shared verbatim with the serve daemon's
// responses.
type DispatchMeasurement struct {
	Shape         string  `json:"shape"`
	Nodes         int     `json:"nodes"`
	Dispatch      string  `json:"dispatch"`
	Workers       int     `json:"workers"`
	WallMS        float64 `json:"wall_ms"`
	PeakLiveBytes int64   `json:"peak_live_bytes"`
	exec.Counters
	// ThroughputRPS and P99MS are populated only by the serve-loadgen
	// shape (submissions/sec across concurrent clients, p99
	// submit-to-complete latency); zero elsewhere.
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
	P99MS         float64 `json:"p99_ms,omitempty"`
}

// MeasureDispatch executes the shape once under the given dispatch mode
// with a fresh engine and live-bytes gauge and returns the measurement
// together with the run's Result, so callers can value-check the very run
// that produced the numbers. Peak live bytes come from the engine's
// structural cold-size estimates (no history is attached), so runs are
// comparable across modes; release is on, so Result.Values holds the
// output nodes.
func MeasureDispatch(sd *SchedDAG, dispatch exec.DispatchMode, workers int) (DispatchMeasurement, *exec.Result, error) {
	return measureDispatch(sd, dispatch, workers, exec.FaultPolicy{})
}

func measureDispatch(sd *SchedDAG, dispatch exec.DispatchMode, workers int, faults exec.FaultPolicy) (DispatchMeasurement, *exec.Result, error) {
	var gauge store.Gauge
	e := &exec.Engine{
		Workers:              workers,
		Dispatch:             dispatch,
		ReleaseIntermediates: true,
		LiveBytes:            &gauge,
		Faults:               faults,
	}
	res, err := e.Execute(sd.G, sd.Tasks, sd.Plan())
	if err != nil {
		return DispatchMeasurement{}, nil, err
	}
	return DispatchMeasurement{
		Shape:         sd.Name,
		Nodes:         sd.G.Len(),
		Dispatch:      dispatch.String(),
		Workers:       workers,
		WallMS:        float64(res.Wall.Microseconds()) / 1000,
		PeakLiveBytes: gauge.Peak(),
		Counters:      res.Counters,
	}, res, nil
}

// DispatchReport is the machine-readable dispatch-ablation document
// (BENCH_baseline.json and the per-CI-run BENCH JSON): one entry per
// stress shape, both dispatch modes measured best-of-N, plus the
// work-stealing wall reduction. Shared by helix-bench (writer) and
// helix-benchdiff (the CI perf-regression gate).
type DispatchReport struct {
	// Schema versions the document layout (exec.ReportSchemaVersion);
	// absent in pre-consolidation reports, which readers treat as 1.
	Schema  int                  `json:"schema"`
	Workers int                  `json:"workers"`
	Shapes  []DispatchShapeEntry `json:"shapes"`
}

// DispatchShapeEntry is one shape's head-to-head in a DispatchReport.
type DispatchShapeEntry struct {
	Shape        string              `json:"shape"`
	Nodes        int                 `json:"nodes"`
	WorkSteal    DispatchMeasurement `json:"worksteal"`
	GlobalHeap   DispatchMeasurement `json:"global_heap"`
	ReductionPct float64             `json:"reduction_pct"`
}

// DefaultShapes returns the canonical scheduler stress shapes. Both the
// BenchmarkScheduler* microbenchmarks and helix-bench's
// `-ablation scheduler` measure exactly this list, so the CI smoke and the
// CLI report always describe the same workloads.
func DefaultShapes() []*SchedDAG {
	return []*SchedDAG{
		StragglerLevelDAG(4, 4, 8*time.Millisecond, 500*time.Microsecond),
		WideDAG(64, 500*time.Microsecond),
		SkewedLevelDAG(4, 4, 6*time.Millisecond, 500*time.Microsecond),
		StragglerChainDAG(12, 10*time.Millisecond, 300*time.Microsecond),
		FanoutChainDAG(12, 6, time.Millisecond),
		CPUFanoutDAG(12, 6, time.Millisecond),
		ContentionDAG(128, 32),
		DefaultSpillDAG(),
		DefaultRecomputeHeavyDAG(),
		DefaultCodecDAG(),
	}
}

// Shape returns the default stress shape with the given name.
func Shape(name string) (*SchedDAG, error) {
	for _, sd := range DefaultShapes() {
		if sd.Name == name {
			return sd, nil
		}
	}
	return nil, fmt.Errorf("bench: no scheduler shape %q", name)
}

// SchedValuesEqual checks that two scheduler runs produced byte-identical
// (gob-encoded) values for every node — the correctness half of a
// scheduler comparison.
func SchedValuesEqual(a, b *exec.Result) error {
	if len(a.Values) != len(b.Values) {
		return fmt.Errorf("bench: value counts differ: %d vs %d", len(a.Values), len(b.Values))
	}
	for id, v := range a.Values {
		ra, err := store.Encode(v)
		if err != nil {
			return fmt.Errorf("bench: encode node %d: %w", id, err)
		}
		rb, err := store.Encode(b.Values[id])
		if err != nil {
			return fmt.Errorf("bench: encode node %d: %w", id, err)
		}
		if !bytes.Equal(ra, rb) {
			return fmt.Errorf("bench: node %d: values not byte-identical across schedulers", id)
		}
	}
	return nil
}
