package bench

import (
	"strings"
	"testing"

	"repro/internal/systems"
	"repro/internal/workload"
)

// smallCensus keeps unit-test scenarios fast; the real figure sizes live in
// the top-level benchmark harness.
func smallCensus() *workload.Scenario {
	return workload.CensusScenario(workload.GenerateCensus(300, 80, 1))
}

func TestRunScenarioHelix(t *testing.T) {
	sc := smallCensus()
	res, err := RunScenario(systems.Helix, sc, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != sc.Len() {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	// Cumulative is monotone increasing.
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].Cumulative < res.Iterations[i-1].Cumulative {
			t.Errorf("cumulative not monotone at %d", i)
		}
	}
	// After iteration 1, helix should be loading something.
	totalLoaded := 0
	for _, it := range res.Iterations[1:] {
		totalLoaded += it.Loaded
	}
	if totalLoaded == 0 {
		t.Error("helix never loaded a materialized result")
	}
	// Version store populated with metrics.
	if res.Versions.Len() != sc.Len() {
		t.Errorf("versions = %d", res.Versions.Len())
	}
	if _, err := res.Versions.Best("accuracy"); err != nil {
		t.Errorf("no accuracy metric tracked: %v", err)
	}
}

func TestRunScenarioKeystoneNeverLoads(t *testing.T) {
	res, err := RunScenario(systems.KeystoneML, smallCensus(), t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.Loaded != 0 {
			t.Errorf("keystoneml loaded %d nodes at iteration %d", it.Loaded, it.Iteration)
		}
		if it.StoreUsed != 0 {
			t.Errorf("keystoneml stored bytes at iteration %d", it.Iteration)
		}
	}
}

func TestRunScenarioDeepDiveStoresEverything(t *testing.T) {
	res, err := RunScenario(systems.DeepDive, smallCensus(), t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].StoreUsed == 0 {
		t.Error("deepdive stored nothing on iteration 1")
	}
	// Store usage grows (or stays) across iterations: materialize-all.
	last := res.Iterations[0].StoreUsed
	for _, it := range res.Iterations[1:] {
		if it.StoreUsed < last {
			t.Errorf("store shrank at iteration %d", it.Iteration)
		}
		last = it.StoreUsed
	}
}

func TestComparisonTableAndSeries(t *testing.T) {
	sc := smallCensus()
	cmp, err := RunComparison(sc, []systems.Kind{systems.Helix, systems.KeystoneML}, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	table := cmp.Table()
	for _, want := range []string{"cumulative run time", "helix", "keystoneml", "helix vs keystoneml"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	iters, vals, err := cmp.CumulativeSeries(systems.Helix)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != sc.Len() || len(vals) != sc.Len() {
		t.Errorf("series lengths %d/%d", len(iters), len(vals))
	}
	if _, _, err := cmp.CumulativeSeries(systems.DeepDive); err == nil {
		t.Error("missing system accepted")
	}
}

func TestHelixBeatsKeystoneOnCumulativeRuntime(t *testing.T) {
	// The paper's core claim, at unit-test scale: across a 10-iteration
	// session, HELIX's cumulative runtime is lower than the never-reuse
	// baseline's. Uses a moderately sized dataset so compute dominates
	// orchestration overhead.
	sc := workload.CensusScenario(workload.GenerateCensus(3000, 800, 7))
	cmp, err := RunComparison(sc, []systems.Kind{systems.Helix, systems.KeystoneML}, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var helix, keystone float64
	for _, s := range cmp.Series {
		switch s.System {
		case systems.Helix:
			helix = float64(s.Cumulative())
		case systems.KeystoneML:
			keystone = float64(s.Cumulative())
		}
	}
	if helix >= keystone {
		t.Errorf("helix (%.1fms) not faster than keystoneml (%.1fms)", helix/1e6, keystone/1e6)
	}
}

func TestMedianWallByKind(t *testing.T) {
	res, err := RunScenario(systems.Helix, smallCensus(), t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	med := res.MedianWallByKind()
	for _, k := range []workload.StepKind{workload.StepPrep, workload.StepML, workload.StepEval} {
		if med[k] <= 0 {
			t.Errorf("median for %s = %v", k, med[k])
		}
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("this is a very long description", 10); got != "this is..." || len(got) != 10 {
		t.Errorf("truncate long = %q", got)
	}
}

func TestSystemsPreset(t *testing.T) {
	// Unknown system.
	if _, err := systems.Preset(systems.Kind("nope"), ""); err == nil {
		t.Error("unknown system accepted")
	}
	// Persisting systems require a base directory.
	if _, err := systems.Preset(systems.Helix, ""); err == nil {
		t.Error("helix without a base directory accepted")
	}
	// Non-persisting systems don't.
	if _, err := systems.Preset(systems.KeystoneML, ""); err != nil {
		t.Errorf("keystoneml: %v", err)
	}
	if _, err := systems.Preset(systems.HelixUnopt, ""); err != nil {
		t.Errorf("helix-unopt: %v", err)
	}
}
