// Package systems configures the comparator systems of the paper's Figure 2
// as core.Session presets. All four share the same compiler and execution
// engine — only the reuse and materialization *policies* differ, so the
// benchmark isolates exactly the design decisions the paper credits:
//
//   - HELIX: optimal recomputation (PSP/max-flow) + online cost-based
//     materialization under a storage budget.
//   - HELIX-unopt (the demo's "unoptimized HELIX" toggle, §3.2): same DSL
//     and engine, no cross-iteration reuse, no materialization.
//   - DeepDive-sim: materializes every intermediate ("materializes the
//     results of all feature extraction and engineering steps") and reuses
//     data-prep results, but its ML and evaluation components are not
//     user-configurable and rerun every iteration.
//   - KeystoneML-sim: one-shot optimizer; never materializes across
//     iterations, so every iteration recomputes its full program slice.
package systems

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// Kind names a comparator system.
type Kind string

// The four systems reproduced from the paper's evaluation.
const (
	Helix      Kind = "helix"
	HelixUnopt Kind = "helix-unopt"
	DeepDive   Kind = "deepdive"
	KeystoneML Kind = "keystoneml"
	// HelixProb is HELIX with the reuse-probability-learning extension of
	// the paper's future work (§2.3): the materialization model discounts
	// the recomputation saving by each operator category's observed
	// survival rate across iterations.
	HelixProb Kind = "helix-prob"
)

// All lists every system in presentation order.
var All = []Kind{Helix, HelixProb, HelixUnopt, DeepDive, KeystoneML}

// Options tune a system instance.
type Options struct {
	// BaseDir is where the system's materialization store lives; each
	// system gets its own subdirectory. Required for systems that persist.
	BaseDir string
	// BudgetBytes caps the materialization store (<=0 = unlimited).
	BudgetBytes int64
	// SpillBudgetBytes enables the cold spill tier for systems that
	// persist: values the (hot) store budget rejects are admitted to a
	// second-tier "<system>-spill" directory instead of being dropped, and
	// cold hits are promoted back on load. 0 disables tiering, >0 caps the
	// spill tier, <0 leaves it unbudgeted.
	SpillBudgetBytes int64
	// Workers bounds intra-iteration parallelism.
	Workers int
	// Sched selects the execution scheduling strategy (default: the
	// dependency-counting dataflow scheduler).
	Sched exec.Strategy
	// Order selects the dataflow ready-queue priority (default: cost-aware
	// critical-path-first; exec.MinID restores the original ordering).
	Order exec.Ordering
	// Dispatch selects the dataflow dispatch mode (default: work-stealing
	// per-worker deques; exec.GlobalHeap restores the single shared heap).
	Dispatch exec.DispatchMode
	// Reweight selects online re-prioritization from measured durations
	// (default: exec.Adaptive; exec.ReweightOff pins the initial weights).
	Reweight exec.Reweight
	// KeepIntermediates disables the session's memory-bounded release of
	// consumed intermediate values (see core.Config.KeepIntermediates).
	KeepIntermediates bool
	// Faults is the execution-time fault policy (retry budget, backoff,
	// per-node deadlines); the zero value keeps the historical fail-fast
	// single-attempt behaviour (see core.Config.Faults).
	Faults exec.FaultPolicy
	// Codec selects the value serialization format (default: the
	// reflection-free binary codec; store.CodecGob forces the reflective
	// A/B reference). See core.Config.Codec.
	Codec store.Codec
	// MmapCold serves cold-tier reads zero-copy via mmap for systems with a
	// spill tier (see core.Config.MmapCold).
	MmapCold bool
}

// New builds a configured session for the named system.
func New(kind Kind, o Options) (*core.Session, error) {
	cfg := core.Config{
		SystemName:        string(kind),
		BudgetBytes:       o.BudgetBytes,
		Workers:           o.Workers,
		Sched:             o.Sched,
		Order:             o.Order,
		Dispatch:          o.Dispatch,
		Reweight:          o.Reweight,
		KeepIntermediates: o.KeepIntermediates,
		Faults:            o.Faults,
		Codec:             o.Codec,
		MmapCold:          o.MmapCold,
	}
	switch kind {
	case Helix:
		cfg.StoreDir = filepath.Join(o.BaseDir, "helix-store")
		cfg.Policy = opt.OnlineHeuristic{}
		cfg.Reuse = true
	case HelixProb:
		cfg.StoreDir = filepath.Join(o.BaseDir, "helix-prob-store")
		cfg.Policy = opt.NewProbabilisticHeuristic()
		cfg.Reuse = true
	case HelixUnopt:
		// No store directory at all: the unoptimized toggle disables both
		// reuse and materialization.
		cfg.Policy = opt.MaterializeNone{}
		cfg.Reuse = false
	case DeepDive:
		cfg.StoreDir = filepath.Join(o.BaseDir, "deepdive-store")
		cfg.Policy = opt.MaterializeAll{}
		cfg.Reuse = true
		cfg.NeverReuse = []core.Category{core.CatML, core.CatEval}
	case KeystoneML:
		cfg.Policy = opt.MaterializeNone{}
		cfg.Reuse = false
	default:
		return nil, fmt.Errorf("systems: unknown system %q", kind)
	}
	if cfg.StoreDir != "" && o.BaseDir == "" {
		return nil, fmt.Errorf("systems: %s requires Options.BaseDir for its store", kind)
	}
	if cfg.StoreDir != "" && o.SpillBudgetBytes != 0 {
		cfg.SpillDir = cfg.StoreDir + "-spill"
		if o.SpillBudgetBytes > 0 {
			cfg.SpillBudgetBytes = o.SpillBudgetBytes
		}
	}
	return core.NewSession(cfg)
}
