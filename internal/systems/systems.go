// Package systems configures the comparator systems of the paper's Figure 2
// as core.Session presets. All four share the same compiler and execution
// engine — only the reuse and materialization *policies* differ, so the
// benchmark isolates exactly the design decisions the paper credits:
//
//   - HELIX: optimal recomputation (PSP/max-flow) + online cost-based
//     materialization under a storage budget.
//   - HELIX-unopt (the demo's "unoptimized HELIX" toggle, §3.2): same DSL
//     and engine, no cross-iteration reuse, no materialization.
//   - DeepDive-sim: materializes every intermediate ("materializes the
//     results of all feature extraction and engineering steps") and reuses
//     data-prep results, but its ML and evaluation components are not
//     user-configurable and rerun every iteration.
//   - KeystoneML-sim: one-shot optimizer; never materializes across
//     iterations, so every iteration recomputes its full program slice.
package systems

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
)

// Kind names a comparator system.
type Kind string

// The four systems reproduced from the paper's evaluation.
const (
	Helix      Kind = "helix"
	HelixUnopt Kind = "helix-unopt"
	DeepDive   Kind = "deepdive"
	KeystoneML Kind = "keystoneml"
	// HelixProb is HELIX with the reuse-probability-learning extension of
	// the paper's future work (§2.3): the materialization model discounts
	// the recomputation saving by each operator category's observed
	// survival rate across iterations.
	HelixProb Kind = "helix-prob"
)

// All lists every system in presentation order.
var All = []Kind{Helix, HelixProb, HelixUnopt, DeepDive, KeystoneML}

// Preset returns the named system's canonical core.Options: policy, reuse
// rules, and store layout filled in, everything else at its documented
// default. Callers tweak the returned value (workers, budgets, spill,
// tenancy) and pass it to core.Open — the systems package holds no
// configuration surface of its own anymore.
//
// Persisting systems root their store at baseDir/"<kind>-store"; baseDir
// may be empty only for systems that never persist (helix-unopt,
// keystoneml). Tiering stays off until the caller sets SpillDir (the
// conventional path is StoreDir+"-spill").
func Preset(kind Kind, baseDir string) (core.Options, error) {
	o := core.Options{SystemName: string(kind)}
	switch kind {
	case Helix:
		o.StoreDir = filepath.Join(baseDir, "helix-store")
		o.Policy = opt.OnlineHeuristic{}
		o.Reuse = true
	case HelixProb:
		o.StoreDir = filepath.Join(baseDir, "helix-prob-store")
		o.Policy = opt.NewProbabilisticHeuristic()
		o.Reuse = true
	case HelixUnopt:
		// No store directory at all: the unoptimized toggle disables both
		// reuse and materialization.
		o.Policy = opt.MaterializeNone{}
	case DeepDive:
		o.StoreDir = filepath.Join(baseDir, "deepdive-store")
		o.Policy = opt.MaterializeAll{}
		o.Reuse = true
		o.NeverReuse = []core.Category{core.CatML, core.CatEval}
	case KeystoneML:
		o.Policy = opt.MaterializeNone{}
	default:
		return core.Options{}, fmt.Errorf("systems: unknown system %q", kind)
	}
	if o.StoreDir != "" && baseDir == "" {
		return core.Options{}, fmt.Errorf("systems: %s requires a base directory for its store", kind)
	}
	return o, nil
}

// Options tune a system instance.
//
// Deprecated: use Preset to get core.Options, tweak them, and open the
// session with core.Open. Options mirrors a subset of core.Options
// field-for-field and is kept for one release.
type Options struct {
	// BaseDir is where the system's materialization store lives; each
	// system gets its own subdirectory. Required for systems that persist.
	BaseDir string
	// BudgetBytes caps the materialization store (<=0 = unlimited).
	BudgetBytes int64
	// SpillBudgetBytes enables the cold spill tier for systems that
	// persist: values the (hot) store budget rejects are admitted to a
	// second-tier "<system>-spill" directory instead of being dropped, and
	// cold hits are promoted back on load. 0 disables tiering, >0 caps the
	// spill tier, <0 leaves it unbudgeted.
	SpillBudgetBytes int64
	// Workers bounds intra-iteration parallelism.
	Workers int
	// Sched selects the execution scheduling strategy (default: the
	// dependency-counting dataflow scheduler).
	Sched exec.Strategy
	// Order selects the dataflow ready-queue priority (default: cost-aware
	// critical-path-first; exec.MinID restores the original ordering).
	Order exec.Ordering
	// Dispatch selects the dataflow dispatch mode (default: work-stealing
	// per-worker deques; exec.GlobalHeap restores the single shared heap).
	Dispatch exec.DispatchMode
	// Reweight selects online re-prioritization from measured durations
	// (default: exec.Adaptive; exec.ReweightOff pins the initial weights).
	Reweight exec.Reweight
	// KeepIntermediates disables the session's memory-bounded release of
	// consumed intermediate values (see core.Config.KeepIntermediates).
	KeepIntermediates bool
	// Faults is the execution-time fault policy (retry budget, backoff,
	// per-node deadlines); the zero value keeps the historical fail-fast
	// single-attempt behaviour (see core.Config.Faults).
	Faults exec.FaultPolicy
	// Codec selects the value serialization format (default: the
	// reflection-free binary codec; store.CodecGob forces the reflective
	// A/B reference). See core.Config.Codec.
	Codec store.Codec
	// MmapCold serves cold-tier reads zero-copy via mmap for systems with a
	// spill tier (see core.Config.MmapCold).
	MmapCold bool
}

// New builds a configured session for the named system.
//
// Deprecated: use Preset + core.Open. New maps the legacy Options onto the
// preset and is kept for one release.
func New(kind Kind, o Options) (*core.Session, error) {
	cfg, err := Preset(kind, o.BaseDir)
	if err != nil {
		return nil, err
	}
	cfg.BudgetBytes = o.BudgetBytes
	cfg.Workers = o.Workers
	cfg.Sched = o.Sched
	cfg.Order = o.Order
	cfg.Dispatch = o.Dispatch
	cfg.Reweight = o.Reweight
	cfg.KeepIntermediates = o.KeepIntermediates
	cfg.Faults = o.Faults
	cfg.Codec = o.Codec
	cfg.MmapCold = o.MmapCold
	if cfg.StoreDir != "" && o.SpillBudgetBytes != 0 {
		cfg.SpillDir = cfg.StoreDir + "-spill"
		if o.SpillBudgetBytes > 0 {
			cfg.SpillBudgetBytes = o.SpillBudgetBytes
		}
	}
	return core.Open(cfg)
}
