package systems

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/workload"
)

// runScenarioMetrics replays a scenario on one system and returns the
// headline metrics per iteration.
func runScenarioMetrics(t *testing.T, kind Kind, sc *workload.Scenario) []ml.Metrics {
	t.Helper()
	sess, err := New(kind, Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var out []ml.Metrics
	for i, step := range sc.Steps {
		rep, err := sess.Run(step.Workflow)
		if err != nil {
			t.Fatalf("%s iteration %d: %v", kind, i+1, err)
		}
		met, ok := rep.Outputs["checked"].(ml.Metrics)
		if !ok {
			t.Fatalf("%s iteration %d: checked output type %T", kind, i+1, rep.Outputs["checked"])
		}
		out = append(out, met)
	}
	return out
}

// The load/compute/prune plan is an optimization, never a semantics change:
// every system must produce bit-identical metrics on every iteration of the
// census scenario.
func TestReuseDoesNotChangeResultsCensus(t *testing.T) {
	sc := workload.CensusScenario(workload.GenerateCensus(500, 150, 11))
	reference := runScenarioMetrics(t, KeystoneML, sc) // recomputes everything
	for _, kind := range []Kind{Helix, HelixProb, DeepDive, HelixUnopt} {
		got := runScenarioMetrics(t, kind, sc)
		for i := range reference {
			if !metricsEqual(got[i], reference[i]) {
				t.Errorf("%s iteration %d: metrics %+v != reference %+v", kind, i+1, got[i], reference[i])
			}
		}
	}
}

// Same invariant on the IE scenario (UDF operators, sequence models).
func TestReuseDoesNotChangeResultsIE(t *testing.T) {
	sc := workload.IEScenario(workload.GenerateNews(40, 12, 11))
	reference := runScenarioMetrics(t, KeystoneML, sc)
	got := runScenarioMetrics(t, Helix, sc)
	for i := range reference {
		if !metricsEqual(got[i], reference[i]) {
			t.Errorf("helix iteration %d: metrics %+v != reference %+v", i+1, got[i], reference[i])
		}
	}
}

func metricsEqual(a, b ml.Metrics) bool {
	eq := func(x, y float64) bool {
		return math.Abs(x-y) < 1e-12 || (math.IsNaN(x) && math.IsNaN(y))
	}
	return eq(a.Accuracy, b.Accuracy) && eq(a.Precision, b.Precision) &&
		eq(a.Recall, b.Recall) && eq(a.F1, b.F1) && eq(a.LogLoss, b.LogLoss) && a.N == b.N
}

func TestHelixStaysWithinBudget(t *testing.T) {
	const budget = 64 << 10 // 64 KiB: far too small for everything
	sess, err := New(Helix, Options{BaseDir: t.TempDir(), BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.CensusScenario(workload.GenerateCensus(800, 200, 3))
	for i, step := range sc.Steps {
		rep, err := sess.Run(step.Workflow)
		if err != nil {
			t.Fatalf("iteration %d: %v", i+1, err)
		}
		if rep.StoreUsed > budget {
			t.Fatalf("iteration %d: store used %d > budget %d", i+1, rep.StoreUsed, budget)
		}
	}
}

// TestHelixSpillTierAbsorbsBudgetPressure: with the same far-too-small hot
// budget as TestHelixStaysWithinBudget plus an unbudgeted spill tier, the
// session spills instead of dropping materializations, stays inside the
// hot budget, and produces iteration metrics identical to the tierless run.
func TestHelixSpillTierAbsorbsBudgetPressure(t *testing.T) {
	const budget = 64 << 10
	sc := workload.CensusScenario(workload.GenerateCensus(800, 200, 3))
	plain := runScenarioMetrics(t, Helix, sc)

	sess, err := New(Helix, Options{BaseDir: t.TempDir(), BudgetBytes: budget, SpillBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var spills int64
	for i, step := range sc.Steps {
		rep, err := sess.Run(step.Workflow)
		if err != nil {
			t.Fatalf("iteration %d: %v", i+1, err)
		}
		if rep.StoreUsed > budget {
			t.Fatalf("iteration %d: hot tier used %d > budget %d", i+1, rep.StoreUsed, budget)
		}
		spills += rep.Spills
		met := rep.Outputs["checked"].(ml.Metrics)
		if math.Abs(met.Accuracy-plain[i].Accuracy) > 0 {
			t.Errorf("iteration %d: accuracy %v diverges from tierless %v", i+1, met.Accuracy, plain[i].Accuracy)
		}
	}
	if spills == 0 {
		t.Fatalf("no spills across the scenario despite the %d-byte hot budget", budget)
	}
	if sess.Spill() == nil || sess.Spill().Used() == 0 {
		t.Fatal("spill tier missing or empty")
	}
}

func TestHelixUnoptNeverPersists(t *testing.T) {
	sess, err := New(HelixUnopt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.DefaultCensusParams(workload.GenerateCensus(200, 50, 5))
	for i := 0; i < 2; i++ {
		rep, err := sess.Run(p.Build())
		if err != nil {
			t.Fatal(err)
		}
		if rep.StoreUsed != 0 {
			t.Errorf("iteration %d persisted %d bytes", i+1, rep.StoreUsed)
		}
		computed, loaded, _ := rep.Counts()
		if loaded != 0 {
			t.Errorf("iteration %d loaded %d nodes", i+1, loaded)
		}
		if computed == 0 {
			t.Errorf("iteration %d computed nothing", i+1)
		}
	}
}

func TestDeepDiveRerunsMLEveryIteration(t *testing.T) {
	sess, err := New(DeepDive, Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.DefaultCensusParams(workload.GenerateCensus(200, 50, 5))
	var last *core.Report
	for i := 0; i < 3; i++ {
		rep, err := sess.Run(p.Build())
		if err != nil {
			t.Fatal(err)
		}
		last = rep
	}
	// Even on a fully unchanged workflow, DeepDive recomputes ML + eval.
	g := last.Graph
	for _, name := range []string{"model", "predictions", "checked"} {
		id := g.Lookup(name)
		if last.Nodes[id].State.String() != "compute" {
			t.Errorf("%s state = %v, want compute", name, last.Nodes[id].State)
		}
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	// Two helix sessions over different BaseDirs must not share stores.
	p := workload.DefaultCensusParams(workload.GenerateCensus(200, 50, 5))
	s1, err := New(Helix, Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(p.Build()); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Helix, Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Run(p.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, loaded, _ := rep.Counts(); loaded != 0 {
		t.Errorf("fresh session loaded %d nodes from a foreign store", loaded)
	}
}

// The deprecated New shim must map every legacy Options field onto the
// preset, including the StoreDir+"-spill" convention, so code still on the
// old surface behaves identically to Preset + core.Open during the
// deprecation window.
func TestDeprecatedNewMatchesPreset(t *testing.T) {
	dir := t.TempDir()
	legacy, err := New(Helix, Options{BaseDir: dir, BudgetBytes: 1 << 20, SpillBudgetBytes: 1 << 20, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if legacy.Spill() == nil {
		t.Fatal("legacy SpillBudgetBytes did not open a spill tier")
	}

	opts, err := Preset(Helix, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.BudgetBytes = 1 << 20
	opts.SpillDir = opts.StoreDir + "-spill"
	opts.SpillBudgetBytes = 1 << 20
	opts.Workers = 3
	canonical, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer canonical.Close()

	p := workload.DefaultCensusParams(workload.GenerateCensus(200, 50, 5))
	repL, err := legacy.Run(p.Build())
	if err != nil {
		t.Fatal(err)
	}
	repC, err := canonical.Run(p.Build())
	if err != nil {
		t.Fatal(err)
	}
	if lm, cm := repL.Outputs["checked"].(ml.Metrics), repC.Outputs["checked"].(ml.Metrics); !metricsEqual(lm, cm) {
		t.Fatalf("legacy metrics %+v != canonical %+v", lm, cm)
	}
	if repL.StoreUsed != repC.StoreUsed {
		t.Fatalf("legacy store used %d != canonical %d", repL.StoreUsed, repC.StoreUsed)
	}
}

// Sharing a BaseDir lets a new session warm-start from a previous one's
// materializations — the cross-session reuse the content-addressed store
// enables for free.
func TestWarmStartAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	p := workload.DefaultCensusParams(workload.GenerateCensus(200, 50, 5))
	s1, err := New(Helix, Options{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(p.Build()); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Helix, Options{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Run(p.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, loaded, _ := rep.Counts(); loaded == 0 {
		t.Error("warm-started session loaded nothing")
	}
}
