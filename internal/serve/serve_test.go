package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// testVariants is an overlapping progression: each variant extends the
// previous one, so the shared prefix sub-DAGs are signature-identical
// across tenants — the cross-session dedup case.
func testVariants() []Variant {
	return []Variant{
		{},
		{WithOccupation: true},
		{WithOccupation: true, WithMaritalStatus: true},
	}
}

// TestConcurrentSubmissionsShareStore is the -race test from the issue:
// two tenants submit overlapping workflows concurrently against one shared
// store; the dedup counter must fire, and every output must be
// byte-identical (equal output hash) to an isolated sequential run.
func TestConcurrentSubmissionsShareStore(t *testing.T) {
	variants := testVariants()

	// Reference: a single tenant runs every variant sequentially against
	// its own private service, recording the output hash per variant.
	ref := make([]string, len(variants))
	{
		svc := newTestService(t, Config{SpillBudgetBytes: -1})
		for i, v := range variants {
			resp, apiErr := svc.Submit(context.Background(), &SubmitRequest{
				Tenant: "solo", App: "census", Variant: v,
			})
			if apiErr != nil {
				t.Fatalf("sequential variant %d: %v", i, apiErr)
			}
			ref[i] = resp.OutputHash
		}
		shutdown(t, svc)
	}

	// Concurrent: two tenants walk the same progression against one shared
	// service, racing on the shared tiered store.
	svc := newTestService(t, Config{SpillBudgetBytes: -1, MaxConcurrent: 2})
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		hits     int64
		firstErr error
	)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i, v := range variants {
				resp, apiErr := svc.Submit(context.Background(), &SubmitRequest{
					Tenant: tenant, App: "census", Variant: v,
				})
				mu.Lock()
				if apiErr != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s variant %d: %v", tenant, i, apiErr)
					}
					mu.Unlock()
					return
				}
				hits += resp.Counters.CrossSessionHits
				if resp.OutputHash != ref[i] {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s variant %d: output hash %s diverges from sequential reference %s",
							tenant, i, resp.OutputHash, ref[i])
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if hits == 0 {
		t.Fatal("two tenants ran identical overlapping workflows against one store, yet CrossSessionHits == 0")
	}
	shutdown(t, svc)
}

// TestCrossTenantPinning is the acceptance check that one tenant's planned
// load cannot be evicted by another tenant's admission pressure: a pinned
// cold entry must survive a flood of foreign writes under a tiny budget.
func TestCrossTenantPinning(t *testing.T) {
	dir := t.TempDir()
	hot, err := store.Open(dir+"/hot", 64) // tiny: everything spills cold
	if err != nil {
		t.Fatal(err)
	}
	cold, err := store.OpenSpill(dir+"/cold", 4096)
	if err != nil {
		t.Fatal(err)
	}
	tiers := store.NewTiered(hot, cold)

	planned := "aa00planned"
	val := make([]byte, 1024)
	if tier, err := tiers.PutBytesHint(planned, val, store.RewardHint{Owner: "victim"}); err != nil {
		t.Fatal(err)
	} else if tier != store.TierCold {
		t.Fatalf("planned value landed in %v, want cold", tier)
	}

	// Pin as the executor's pinSet does for a planned-Load key, then flood
	// the cold tier far past its budget from another tenant.
	tiers.Pin(planned)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("bb%02dflood", i)
		if _, err := tiers.PutBytesHint(key, val, store.RewardHint{Owner: "greedy"}); err != nil {
			t.Fatalf("flood write %d: %v", i, err)
		}
	}
	if _, tier, ok := tiers.Lookup(planned); !ok {
		t.Fatal("pinned planned-load key was evicted by another tenant's admission pressure")
	} else if tier != store.TierCold {
		t.Fatalf("pinned key migrated to %v unexpectedly", tier)
	}

	// Released pins restore normal LRU behavior: the same pressure may now
	// evict the key (it is the coldest entry).
	tiers.Unpin(planned)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("cc%02dflood", i)
		if _, err := tiers.PutBytesHint(key, val, store.RewardHint{Owner: "greedy"}); err != nil {
			t.Fatalf("post-unpin flood write %d: %v", i, err)
		}
	}
	if _, _, ok := tiers.Lookup(planned); ok {
		t.Fatal("unpinned cold entry survived 16 evicting writes — pin release is not taking effect")
	}
}

// TestShutdownDrains verifies the drain contract: after Shutdown begins,
// new submissions are refused with a structured draining error, and
// Shutdown itself completes cleanly with no runs in flight.
func TestShutdownDrains(t *testing.T) {
	svc := newTestService(t, Config{})
	shutdown(t, svc)
	_, apiErr := svc.Submit(context.Background(), &SubmitRequest{Tenant: "late", App: "census"})
	if apiErr == nil {
		t.Fatal("submission after shutdown succeeded")
	}
	if apiErr.Status != 503 || apiErr.Code != CodeDraining {
		t.Fatalf("got %d/%s, want 503/%s", apiErr.Status, apiErr.Code, CodeDraining)
	}
}

// waitQueued polls the status endpoint until the admission queue holds n
// waiters — through the same surface operators watch, not service internals.
func waitQueued(t *testing.T, svc *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := svc.Status().Queued
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission queue length %d never reached %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitPumpOnEnqueue: a new tenant arriving behind waiters whose
// tenants are at cap must be granted immediately while global slots are
// free, not parked until an unrelated run completes.
func TestAdmitPumpOnEnqueue(t *testing.T) {
	svc := newTestService(t, Config{MaxConcurrent: 2, TenantMaxInFlight: 1})
	if apiErr := svc.admit(context.Background(), "a"); apiErr != nil {
		t.Fatalf("first admit: %v", apiErr)
	}
	// Tenant a is now at cap; this waiter queues.
	aErr := make(chan *APIError, 1)
	go func() { aErr <- svc.admit(context.Background(), "a") }()
	waitQueued(t, svc, 1)

	// Tenant b is eligible (1 of 2 global slots used) and must not block
	// behind the capped tenant-a waiter.
	bErr := make(chan *APIError, 1)
	go func() { bErr <- svc.admit(context.Background(), "b") }()
	select {
	case apiErr := <-bErr:
		if apiErr != nil {
			t.Fatalf("eligible tenant b refused: %v", apiErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eligible tenant b stalled behind a tenant-capped waiter despite a free global slot")
	}

	svc.release("b")
	svc.release("a") // frees tenant a's cap: the queued a-waiter is granted
	if apiErr := <-aErr; apiErr != nil {
		t.Fatalf("queued tenant-a admit: %v", apiErr)
	}
	svc.release("a")
	shutdown(t, svc)
}

// TestAdmitShutdownCancelRace: a queued waiter whose context is canceled
// concurrently with Shutdown rejecting the queue must not "give back" a
// slot it never held (that corrupts the slot accounting and panics the
// run WaitGroup). Loop to let the select race land on both branches.
func TestAdmitShutdownCancelRace(t *testing.T) {
	for i := 0; i < 40; i++ {
		svc := newTestService(t, Config{MaxConcurrent: 1})
		if apiErr := svc.admit(context.Background(), "holder"); apiErr != nil {
			t.Fatalf("iter %d: holder admit: %v", i, apiErr)
		}
		ctx, cancel := context.WithCancel(context.Background())
		queuedErr := make(chan *APIError, 1)
		go func() { queuedErr <- svc.admit(ctx, "queued") }()
		waitQueued(t, svc, 1)

		// Fire the two queue-clearing events concurrently: the waiter's
		// cancellation and Shutdown's wholesale rejection.
		shutdownErr := make(chan error, 1)
		go cancel()
		go func() {
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer scancel()
			shutdownErr <- svc.Shutdown(sctx)
		}()

		apiErr := <-queuedErr
		if apiErr == nil {
			t.Fatalf("iter %d: canceled waiter admitted during shutdown", i)
		}
		if apiErr.Status != 499 && apiErr.Status != 503 {
			t.Fatalf("iter %d: got status %d, want 499 or 503", i, apiErr.Status)
		}
		svc.release("holder")
		if err := <-shutdownErr; err != nil {
			t.Fatalf("iter %d: shutdown: %v", i, err)
		}
		svc.mu.Lock()
		total, perTenant := svc.total, len(svc.perTenant)
		svc.mu.Unlock()
		if total != 0 || perTenant != 0 {
			t.Fatalf("iter %d: slot accounting corrupted after drain: total=%d perTenant=%d", i, total, perTenant)
		}
		cancel()
	}
}

func shutdown(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
