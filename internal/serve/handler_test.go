package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/store"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.DefaultRows == 0 {
		cfg.DefaultRows = 200
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestHandlerErrors drives the HTTP layer through every refusal path and
// asserts both the status code and the structured error body.
func TestHandlerErrors(t *testing.T) {
	svc := newTestService(t, Config{TenantBudgetBytes: 64})
	// Seed the shared store with bytes owned by "greedy" so its budget
	// check trips without a prior run.
	if err := svc.Tiers().Hot().PutBytesHint("deadbeef", make([]byte, 128),
		store.RewardHint{Owner: "greedy"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", `{"tenant": `, 400, CodeBadRequest},
		{"unknown field", `{"tenant":"a","app":"census","bogus":1}`, 400, CodeBadRequest},
		{"missing tenant", `{"app":"census"}`, 400, CodeBadRequest},
		{"unknown app", `{"tenant":"a","app":"nonsense"}`, 400, CodeUnknownApp},
		{"unknown system", `{"tenant":"a","app":"census","system":"spark"}`, 400, CodeUnknownSystem},
		{"over budget", `{"tenant":"greedy","app":"census"}`, 403, CodeOverBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var body ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not structured JSON: %v", err)
			}
			if body.Error.Code != tc.wantCode {
				t.Fatalf("error code = %q, want %q", body.Error.Code, tc.wantCode)
			}
			if body.Error.Message == "" {
				t.Fatal("error message is empty")
			}
		})
	}
}

// TestHandlerSubmitAndStatus runs one real submission end-to-end over HTTP
// and checks the response and status schema.
func TestHandlerSubmitAndStatus(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/submit", "application/json",
		strings.NewReader(`{"tenant":"ann","app":"census"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Schema != exec.ReportSchemaVersion {
		t.Fatalf("schema = %d, want %d", sub.Schema, exec.ReportSchemaVersion)
	}
	if sub.OutputHash == "" {
		t.Fatal("output hash is empty")
	}
	if sub.Computed == 0 {
		t.Fatal("first-contact run computed nothing")
	}
	if sub.TenantUsedBytes == 0 {
		t.Fatal("helix run materialized nothing for the tenant")
	}

	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Submissions != 1 {
		t.Fatalf("submissions = %d, want 1", status.Submissions)
	}
	if status.TenantUsedBytes["ann"] == 0 {
		t.Fatal("status does not attribute stored bytes to the tenant")
	}

	hc, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hc.Body.Close()
	if hc.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", hc.StatusCode)
	}
}
