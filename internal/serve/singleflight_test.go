package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/store"
)

// TestConcurrentIdenticalSubmissionsSingleFlight is the tentpole's -race
// acceptance test: N tenants submit the *same* variant simultaneously
// against one shared store. The single-flight registry must collapse the
// duplicate work — summed over the runs, compute-planned nodes minus
// in-flight dedup hits equals the unique signature count of one run — and
// every response must carry the byte-identical output hash of a solo run.
func TestConcurrentIdenticalSubmissionsSingleFlight(t *testing.T) {
	variant := Variant{WithHours: true}

	// Solo reference: hash and unique signature count of this variant.
	var refHash string
	var unique int
	{
		svc := newTestService(t, Config{SpillBudgetBytes: -1})
		resp, apiErr := svc.Submit(context.Background(), &SubmitRequest{
			Tenant: "solo", App: "census", Variant: variant,
		})
		if apiErr != nil {
			t.Fatalf("reference run: %v", apiErr)
		}
		refHash = resp.OutputHash
		unique = resp.Computed + resp.Loaded
		shutdown(t, svc)
	}

	const n = 3
	svc := newTestService(t, Config{SpillBudgetBytes: -1, MaxConcurrent: n})
	responses := make([]*SubmitResponse, n)
	apiErrs := make([]*APIError, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], apiErrs[i] = svc.Submit(context.Background(), &SubmitRequest{
				Tenant: fmt.Sprintf("tenant-%d", i), App: "census", Variant: variant,
			})
		}(i)
	}
	wg.Wait()

	var computed, hits, recomputes int64
	for i := 0; i < n; i++ {
		if apiErrs[i] != nil {
			t.Fatalf("run %d: %v", i, apiErrs[i])
		}
		if responses[i].OutputHash != refHash {
			t.Errorf("run %d output hash %s diverges from solo reference %s",
				i, responses[i].OutputHash, refHash)
		}
		computed += int64(responses[i].Computed)
		hits += responses[i].Counters.InflightDedupHits
		recomputes += responses[i].Counters.Recomputes
	}
	if hits == 0 {
		t.Error("3 identical concurrent submissions raced one store, yet InflightDedupHits == 0")
	}
	if recomputes != 0 {
		t.Errorf("recomputes = %d, want 0", recomputes)
	}
	// Exactly-once: actual operator executions across the fleet equal one
	// run's unique signature count. (Computed counts plan states; a state
	// served by the registry contributes a dedup hit instead of an
	// execution, and a planned load was produced by another run's single
	// execution.)
	if got := computed - hits; got != int64(unique) {
		t.Errorf("Σ(computed) %d - Σ(hits) %d = %d executions, want exactly %d unique signatures",
			computed, hits, got, unique)
	}
	shutdown(t, svc)
}

// TestStatusQueued drives the admission queue through /v1/status's new
// queued field: a submission blocked behind a full service must be visible
// there, and must drain back to zero once granted.
func TestStatusQueued(t *testing.T) {
	svc := newTestService(t, Config{MaxConcurrent: 1})
	if apiErr := svc.admit(context.Background(), "holder"); apiErr != nil {
		t.Fatalf("holder admit: %v", apiErr)
	}
	done := make(chan *APIError, 1)
	go func() {
		_, apiErr := svc.Submit(context.Background(), &SubmitRequest{Tenant: "queued", App: "census"})
		done <- apiErr
	}()
	waitQueued(t, svc, 1)
	st := svc.Status()
	if st.Queued != 1 || st.InFlight != 1 {
		t.Fatalf("status queued=%d in_flight=%d, want 1/1", st.Queued, st.InFlight)
	}
	svc.release("holder")
	if apiErr := <-done; apiErr != nil {
		t.Fatalf("queued submission: %v", apiErr)
	}
	if st := svc.Status(); st.Queued != 0 {
		t.Fatalf("queued = %d after grant, want 0", st.Queued)
	}
	shutdown(t, svc)
}

// TestStatusCountsFailedRuns: a run that executes and fails must appear in
// both submissions and failed; successes only in submissions.
func TestStatusCountsFailedRuns(t *testing.T) {
	svc := newTestService(t, Config{})
	_, apiErr := svc.Submit(context.Background(), &SubmitRequest{
		Tenant: "t", App: "census", Variant: Variant{Learner: "bogus"},
	})
	if apiErr == nil {
		t.Fatal("unknown learner kind ran successfully")
	}
	if apiErr.Status != 500 || apiErr.Code != CodeInternal {
		t.Fatalf("got %d/%s, want 500/%s", apiErr.Status, apiErr.Code, CodeInternal)
	}
	if st := svc.Status(); st.Submissions != 1 || st.Failed != 1 {
		t.Fatalf("after failed run: submissions=%d failed=%d, want 1/1", st.Submissions, st.Failed)
	}
	if _, apiErr := svc.Submit(context.Background(), &SubmitRequest{Tenant: "t", App: "census"}); apiErr != nil {
		t.Fatalf("healthy run: %v", apiErr)
	}
	if st := svc.Status(); st.Submissions != 2 || st.Failed != 1 {
		t.Fatalf("after healthy run: submissions=%d failed=%d, want 2/1", st.Submissions, st.Failed)
	}
	shutdown(t, svc)
}

// TestBudgetRecheckedAtGrant: a tenant whose footprint crosses its cap
// *while its submission waits in the admission queue* must be refused when
// the queue finally grants it — the pre-admission check alone would let it
// keep writing for as long as its backlog lasts.
func TestBudgetRecheckedAtGrant(t *testing.T) {
	svc := newTestService(t, Config{MaxConcurrent: 1, TenantBudgetBytes: 4096})
	if apiErr := svc.admit(context.Background(), "holder"); apiErr != nil {
		t.Fatalf("holder admit: %v", apiErr)
	}
	done := make(chan *APIError, 1)
	go func() {
		_, apiErr := svc.Submit(context.Background(), &SubmitRequest{Tenant: "greedy", App: "census"})
		done <- apiErr
	}()
	waitQueued(t, svc, 1)

	// While greedy waits, its footprint crosses the cap (another of its
	// runs materializing, in production; seeded directly here).
	if err := svc.Tiers().Hot().PutBytesHint("feedfacecafebeef", make([]byte, 8192),
		store.RewardHint{Owner: "greedy"}); err != nil {
		t.Fatal(err)
	}
	svc.release("holder")

	apiErr := <-done
	if apiErr == nil {
		t.Fatal("over-budget tenant was granted at queue head")
	}
	if apiErr.Status != 403 || apiErr.Code != CodeOverBudget {
		t.Fatalf("got %d/%s, want 403/%s", apiErr.Status, apiErr.Code, CodeOverBudget)
	}
	// A refusal is not a completed run.
	if st := svc.Status(); st.Submissions != 0 || st.Failed != 0 {
		t.Fatalf("refusal counted as a run: submissions=%d failed=%d", st.Submissions, st.Failed)
	}
	shutdown(t, svc)
}

// TestDatasetCacheBounded sweeps more distinct (rows, seed) pairs than the
// cache holds and asserts the LRU bound, including recency refresh.
func TestDatasetCacheBounded(t *testing.T) {
	svc := newTestService(t, Config{})
	for i := 0; i < datasetCacheMax+2; i++ {
		svc.workflow(&SubmitRequest{Rows: 40 + i, Seed: 7})
	}
	svc.dsMu.Lock()
	size, order := len(svc.datasets), len(svc.dsOrder)
	_, oldest := svc.datasets[datasetKey{rows: 40, seed: 7}]
	_, newest := svc.datasets[datasetKey{rows: 40 + datasetCacheMax + 1, seed: 7}]
	svc.dsMu.Unlock()
	if size != datasetCacheMax || order != datasetCacheMax {
		t.Fatalf("cache holds %d entries (order %d), want %d", size, order, datasetCacheMax)
	}
	if oldest {
		t.Fatal("least-recently-used dataset survived eviction")
	}
	if !newest {
		t.Fatal("most recent dataset missing from cache")
	}

	// Re-touching an old entry must refresh it past the next eviction.
	survivor := datasetKey{rows: 40 + 2, seed: 7}
	svc.workflow(&SubmitRequest{Rows: survivor.rows, Seed: survivor.seed})
	svc.workflow(&SubmitRequest{Rows: 99, Seed: 7})
	svc.dsMu.Lock()
	_, ok := svc.datasets[survivor]
	svc.dsMu.Unlock()
	if !ok {
		t.Fatal("recently-touched dataset was evicted ahead of colder entries")
	}
	shutdown(t, svc)
}
