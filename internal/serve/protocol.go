// Package serve is the multi-tenant HELIX daemon: a long-lived service
// accepting concurrent workflow submissions over HTTP/JSON and running them
// against one shared tiered materialization store, so identical sub-DAGs
// submitted by different tenants dedupe to a single computation (the
// paper's materialization-reuse payoff at its best, §2.3, extended across
// users as the ROADMAP's "millions of users" setting).
//
// The package is layered protocol / handler / service-core:
//
//   - protocol.go: the wire types — requests, responses, structured errors.
//   - handler.go: HTTP transport only — decode, dispatch, encode.
//   - service.go: tenancy, admission control, the shared store, and
//     session construction through the same core.Options API every other
//     entry point uses.
package serve

import (
	"repro/internal/exec"
)

// SubmitRequest asks the service to run one workflow iteration on behalf
// of a tenant. The workflow is named declaratively (app + variant knobs)
// rather than shipped as code: content-addressed reuse needs structurally
// identical sub-DAGs, and a closed variant space guarantees two tenants
// asking for the same prefix get byte-identical signatures.
type SubmitRequest struct {
	// Tenant identifies the submitting user; required. Materializations
	// produced by this run are stamped with it for budget accounting.
	Tenant string `json:"tenant"`
	// App selects the workload ("census"). Required.
	App string `json:"app"`
	// System selects the comparator system preset; empty means "helix".
	System string `json:"system,omitempty"`
	// Rows sizes the generated training dataset; 0 means the service
	// default. Submissions with equal (Rows, Seed) share one cached
	// dataset, which is what makes their workflow prefixes dedupe.
	Rows int `json:"rows,omitempty"`
	// Seed is the dataset generator seed; 0 means the service default.
	Seed int64 `json:"seed,omitempty"`
	// Variant tunes the workflow away from the app's defaults.
	Variant Variant `json:"variant"`
}

// Variant is the closed set of census workflow knobs a submission may
// turn. Zero values mean "keep the app default" (for booleans the default
// is off, matching the scenario's initial iteration).
type Variant struct {
	Learner           string  `json:"learner,omitempty"`
	RegParam          float64 `json:"reg_param,omitempty"`
	Epochs            int     `json:"epochs,omitempty"`
	Metric            string  `json:"metric,omitempty"`
	AgeBuckets        int     `json:"age_buckets,omitempty"`
	WithOccupation    bool    `json:"with_occupation,omitempty"`
	WithMaritalStatus bool    `json:"with_marital_status,omitempty"`
	WithRace          bool    `json:"with_race,omitempty"`
	WithCapital       bool    `json:"with_capital,omitempty"`
	WithEduXOcc       bool    `json:"with_edu_x_occ,omitempty"`
	WithHours         bool    `json:"with_hours,omitempty"`
}

// SubmitResponse reports one completed run.
type SubmitResponse struct {
	// Schema is the wire-schema version (exec.ReportSchemaVersion).
	Schema int    `json:"schema"`
	Tenant string `json:"tenant"`
	App    string `json:"app"`
	System string `json:"system"`
	// WallMS is the run's wall-clock in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Computed, Loaded and Pruned count the executed plan's node states —
	// Loaded > 0 on a first-contact submission means the shared store
	// already held part of this workflow.
	Computed int `json:"computed"`
	Loaded   int `json:"loaded"`
	Pruned   int `json:"pruned"`
	// Counters is this run's consolidated execution-counter block,
	// including CrossSessionHits: how many of the plan's loads were served
	// from bytes a different tenant materialized. On a shared store the
	// tier-traffic counts (spills, promotions, evictions) are deltas over a
	// window other sessions were also active in — informational, not
	// attributable to this run alone.
	Counters exec.Counters `json:"counters"`
	// OutputHash is a stable digest of the run's output values
	// (name + encoded bytes, sorted by name) — two runs of the same
	// variant must agree on it regardless of tenancy, sharing, or plan.
	OutputHash string `json:"output_hash"`
	// TenantUsedBytes is the tenant's store footprint after the run.
	TenantUsedBytes int64 `json:"tenant_used_bytes"`
}

// StatusResponse is the daemon-lifetime view.
type StatusResponse struct {
	Schema   int  `json:"schema"`
	Draining bool `json:"draining"`
	// Submissions counts every admitted run that completed — successes and
	// failures alike; Failed is the failing subset. Refusals that never ran
	// (over_budget, draining, queue cancellation) count in neither.
	Submissions int64 `json:"submissions"`
	Failed      int64 `json:"failed"`
	InFlight    int   `json:"in_flight"`
	// Queued is the current admission-queue depth: submissions accepted but
	// waiting for a concurrency slot.
	Queued int `json:"queued"`
	// Counters accumulates every completed run's counter block
	// (daemon-lifetime totals, not a window).
	Counters exec.Counters `json:"counters"`
	// TenantUsedBytes maps each tenant to its current store footprint
	// across both tiers; unowned bytes (adopted from disk) appear under "".
	TenantUsedBytes map[string]int64 `json:"tenant_used_bytes"`
	// TenantBudgetBytes is the per-tenant admission cap (0 = unlimited).
	TenantBudgetBytes int64 `json:"tenant_budget_bytes"`
	HotUsedBytes      int64 `json:"hot_used_bytes"`
	ColdUsedBytes     int64 `json:"cold_used_bytes"`
}

// APIError is the structured error every non-2xx response carries,
// wrapped in ErrorBody. Status is the HTTP status code (not serialized —
// it is the response's status line).
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string { return e.Code + ": " + e.Message }

// ErrorBody is the JSON envelope of an APIError.
type ErrorBody struct {
	Error APIError `json:"error"`
}

// Error codes returned by the service.
const (
	CodeBadRequest    = "bad_request"    // malformed JSON or missing fields
	CodeUnknownApp    = "unknown_app"    // App is not a served workload
	CodeUnknownSystem = "unknown_system" // System is not a known preset
	CodeOverBudget    = "over_budget"    // tenant's store footprint at cap
	CodeDraining      = "draining"       // shutdown in progress
	CodeCanceled      = "canceled"       // client went away mid-run
	CodeInternal      = "internal"       // run failed
)
