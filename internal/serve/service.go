package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/store"
	"repro/internal/systems"
	"repro/internal/workload"
)

// Config sizes the service. The zero value of any field falls back to the
// documented default in New.
type Config struct {
	// Dir roots the shared store: hot tier at Dir/"hot", cold spill tier
	// at Dir/"cold", runtime-statistics history next to them. Required.
	Dir string
	// HotBudgetBytes caps the shared hot tier (<=0 = unlimited).
	HotBudgetBytes int64
	// SpillBudgetBytes caps the shared cold spill tier; 0 disables
	// tiering entirely (hot-only store, no cross-session pinning), <0
	// leaves the cold tier unbudgeted.
	SpillBudgetBytes int64
	// MmapCold serves cold-tier reads through a read-only memory mapping.
	MmapCold bool
	// Workers bounds each run's intra-workflow parallelism (default 2).
	Workers int
	// MaxConcurrent bounds concurrently executing runs across all tenants
	// (default 2) — together with Workers it is the shared worker-pool
	// budget every session multiplexes onto.
	MaxConcurrent int
	// TenantMaxInFlight bounds one tenant's concurrently executing runs
	// (default 1), so a single chatty tenant cannot monopolize the pool
	// while others wait.
	TenantMaxInFlight int
	// TenantBudgetBytes caps one tenant's materialization footprint across
	// both tiers; a tenant at cap is refused admission (over_budget) until
	// eviction shrinks its usage. 0 = unlimited.
	TenantBudgetBytes int64
	// DefaultRows and DefaultSeed fill in submissions that leave dataset
	// sizing unset (defaults 2000 rows, seed 2018).
	DefaultRows int
	DefaultSeed int64
	// Dispatch selects every run's dispatch mode (zero = work-stealing;
	// exec.GlobalHeap for the A/B reference — the loadgen benchmark
	// measures the daemon under both).
	Dispatch exec.DispatchMode
}

// Service is the daemon core: the shared tiered store, the shared runtime
// history, per-tenant admission control, and session construction. It is
// transport-agnostic; handler.go adapts it to HTTP.
type Service struct {
	cfg     Config
	tiers   *store.Tiered
	history *exec.History

	// baseCtx parents every run; Shutdown cancels it to abort in-flight
	// work that outlives the drain grace period.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu          sync.Mutex
	draining    bool
	total       int            // currently executing runs
	perTenant   map[string]int // currently executing runs per tenant
	queue       []*waiter      // admission FIFO
	totals      exec.Counters  // lifetime accumulation
	submissions int64          // completed runs, successes and failures alike
	failed      int64          // the failing subset of submissions
	wg          sync.WaitGroup // one unit per executing run

	// dsMu guards only the dataset cache's map and recency order — never
	// generation itself, which runs under the entry's once so concurrent
	// submissions of distinct (rows, seed) pairs generate in parallel.
	dsMu     sync.Mutex
	datasets map[datasetKey]*dsEntry
	dsOrder  []datasetKey // oldest-touched first; len bounded by datasetCacheMax
}

type datasetKey struct {
	rows int
	seed int64
}

// datasetCacheMax bounds the dataset cache: each generated CensusData is
// O(rows) in memory and a daemon serving many distinct (rows, seed)
// sweeps must not retain them all. Eviction is LRU on submission touch.
const datasetCacheMax = 4

// dsEntry is one cached dataset. The once gates generation so exactly one
// submission pays for each (rows, seed) while the rest wait on the entry,
// not on the cache lock; evicted entries stay valid for goroutines that
// already hold them.
type dsEntry struct {
	once sync.Once
	data workload.CensusData
}

// waiter is one submission blocked in the admission queue.
type waiter struct {
	tenant   string
	ch       chan struct{} // closed on grant or rejection
	rejected bool          // set (under mu) before close when draining
}

// New opens the shared store and prepares the service. The returned
// service accepts submissions until Shutdown.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.TenantMaxInFlight <= 0 {
		cfg.TenantMaxInFlight = 1
	}
	if cfg.DefaultRows <= 0 {
		cfg.DefaultRows = 2000
	}
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 2018
	}
	hot, err := store.Open(filepath.Join(cfg.Dir, "hot"), cfg.HotBudgetBytes)
	if err != nil {
		return nil, err
	}
	var cold *store.Spill
	if cfg.SpillBudgetBytes != 0 {
		budget := cfg.SpillBudgetBytes
		if budget < 0 {
			budget = 0
		}
		openSpill := store.OpenSpill
		if cfg.MmapCold {
			openSpill = store.OpenSpillMmap
		}
		if cold, err = openSpill(filepath.Join(cfg.Dir, "cold"), budget); err != nil {
			return nil, err
		}
	}
	history := exec.NewHistory()
	if err := history.Load(filepath.Join(cfg.Dir, "helix-history.json")); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:       cfg,
		tiers:     store.NewTiered(hot, cold),
		history:   history,
		baseCtx:   ctx,
		cancel:    cancel,
		perTenant: make(map[string]int),
		datasets:  make(map[datasetKey]*dsEntry),
	}, nil
}

// Tiers exposes the shared tiered store (tests and the status endpoint).
func (s *Service) Tiers() *store.Tiered { return s.tiers }

// Submit validates, admits, and runs one workflow iteration, blocking
// until it completes. Concurrency-safe; the admission gate bounds how many
// submissions execute at once and queues the rest FIFO.
func (s *Service) Submit(ctx context.Context, req *SubmitRequest) (*SubmitResponse, *APIError) {
	if req.Tenant == "" {
		return nil, &APIError{Status: 400, Code: CodeBadRequest, Message: "tenant is required"}
	}
	if req.App != "census" {
		return nil, &APIError{Status: 400, Code: CodeUnknownApp, Message: fmt.Sprintf("unknown app %q (served apps: census)", req.App)}
	}
	system := req.System
	if system == "" {
		system = string(systems.Helix)
	}
	// Resolve the system preset against the service's directory, then
	// swap its private store for the shared one: the daemon is a client
	// of the same Options surface the CLI uses.
	o, err := systems.Preset(systems.Kind(system), s.cfg.Dir)
	if err != nil {
		return nil, &APIError{Status: 400, Code: CodeUnknownSystem, Message: err.Error()}
	}
	o.StoreDir, o.BudgetBytes = "", 0
	o.SharedTiers = s.tiers
	o.SharedHistory = s.history
	o.Tenant = req.Tenant
	o.Workers = s.cfg.Workers
	o.Dispatch = s.cfg.Dispatch

	// Fast-path budget refusal before the submission ever queues.
	if apiErr := s.overBudget(req.Tenant); apiErr != nil {
		return nil, apiErr
	}

	wf := s.workflow(req)

	if apiErr := s.admit(ctx, req.Tenant); apiErr != nil {
		return nil, apiErr
	}
	defer s.release(req.Tenant)

	// Re-check at grant time: while this submission was queued, its
	// tenant's earlier runs may have materialized past the cap, and the
	// pre-admission check alone would let an over-budget tenant keep
	// writing for as long as its queue backlog lasts.
	if apiErr := s.overBudget(req.Tenant); apiErr != nil {
		return nil, apiErr
	}

	sess, err := core.Open(o)
	if err != nil {
		s.finishRun(true)
		return nil, &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	stop := context.AfterFunc(s.baseCtx, cancelRun)
	defer stop()

	rep, err := sess.RunCtx(runCtx, wf)
	if err != nil {
		s.finishRun(true)
		if runCtx.Err() != nil {
			code, status := CodeCanceled, 499
			if s.baseCtx.Err() != nil {
				code, status = CodeDraining, 503
			}
			return nil, &APIError{Status: status, Code: code, Message: err.Error()}
		}
		return nil, &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}

	counters := rep.Counters
	counters.CrossSessionHits = s.crossSessionHits(rep, req.Tenant)
	hash, err := outputHash(rep)
	if err != nil {
		s.finishRun(true)
		return nil, &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}

	s.mu.Lock()
	s.totals.Add(counters)
	s.submissions++
	s.mu.Unlock()

	computed, loaded, pruned := rep.Counts()
	return &SubmitResponse{
		Schema:          exec.ReportSchemaVersion,
		Tenant:          req.Tenant,
		App:             req.App,
		System:          system,
		WallMS:          float64(rep.Wall.Microseconds()) / 1000,
		Computed:        computed,
		Loaded:          loaded,
		Pruned:          pruned,
		Counters:        counters,
		OutputHash:      hash,
		TenantUsedBytes: s.tiers.OwnerUsage()[req.Tenant],
	}, nil
}

// overBudget refuses tenant when its materialization footprint has reached
// the per-tenant cap. Called both before a submission queues and again at
// grant time, so a backlog accumulated while under budget cannot keep an
// over-budget tenant writing.
func (s *Service) overBudget(tenant string) *APIError {
	b := s.cfg.TenantBudgetBytes
	if b <= 0 {
		return nil
	}
	if used := s.tiers.OwnerUsage()[tenant]; used >= b {
		return &APIError{Status: 403, Code: CodeOverBudget,
			Message: fmt.Sprintf("tenant %q holds %d of %d budgeted bytes; wait for eviction", tenant, used, b)}
	}
	return nil
}

// finishRun accounts one completed run; failed runs (session construction,
// execution, or output hashing errors) count toward both totals.
func (s *Service) finishRun(failed bool) {
	s.mu.Lock()
	s.submissions++
	if failed {
		s.failed++
	}
	s.mu.Unlock()
}

// crossSessionHits counts the run's nodes that were covered by another
// tenant's work: planned loads whose bytes a different tenant materialized,
// plus (since schema 3) compute-planned nodes served by a single-flight
// dedup hit whose published entry a different tenant owns. Both joins go
// through the shared store's owner stamps; an entry evicted — or a dedup
// hit served from the registry's value handoff without an entry — before
// this sweep just stops counting, so the metric is a floor, never an
// overcount.
func (s *Service) crossSessionHits(rep *core.Report, tenant string) int64 {
	var hits int64
	foreign := func(key string) bool {
		e, _, ok := s.tiers.Lookup(key)
		return ok && e.Owner != "" && e.Owner != tenant
	}
	for id, st := range rep.Plan.States {
		if id >= len(rep.Keys) {
			continue
		}
		switch st {
		case opt.Load:
			if foreign(rep.Keys[id]) {
				hits++
			}
		case opt.Compute:
			if id < len(rep.Nodes) && rep.Nodes[id].InflightHit && foreign(rep.Keys[id]) {
				hits++
			}
		}
	}
	return hits
}

// workflow materializes the submission's declared variant into a concrete
// workflow over the (cached) dataset for its (rows, seed).
func (s *Service) workflow(req *SubmitRequest) *core.Workflow {
	rows, seed := req.Rows, req.Seed
	if rows <= 0 {
		rows = s.cfg.DefaultRows
	}
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	key := datasetKey{rows: rows, seed: seed}
	s.dsMu.Lock()
	e, ok := s.datasets[key]
	if ok {
		// Refresh recency: move the key to the back of the eviction order.
		for i, k := range s.dsOrder {
			if k == key {
				s.dsOrder = append(s.dsOrder[:i], s.dsOrder[i+1:]...)
				break
			}
		}
	} else {
		e = &dsEntry{}
		s.datasets[key] = e
		if len(s.dsOrder) >= datasetCacheMax {
			evict := s.dsOrder[0]
			s.dsOrder = s.dsOrder[1:]
			delete(s.datasets, evict)
		}
	}
	s.dsOrder = append(s.dsOrder, key)
	s.dsMu.Unlock()
	// Generate outside dsMu: one submission pays per (rows, seed), others
	// wait here on the entry — never blocking unrelated keys on the lock.
	e.once.Do(func() { e.data = workload.GenerateCensus(rows, rows/4, seed) })

	p := workload.DefaultCensusParams(e.data)
	v := req.Variant
	if v.Learner != "" {
		p.Learner = v.Learner
	}
	if v.RegParam != 0 {
		p.RegParam = v.RegParam
	}
	if v.Epochs != 0 {
		p.Epochs = v.Epochs
	}
	if v.Metric != "" {
		p.Metric = v.Metric
	}
	if v.AgeBuckets != 0 {
		p.AgeBuckets = v.AgeBuckets
	}
	p.WithOccupation = v.WithOccupation
	p.WithMaritalStatus = v.WithMaritalStatus
	p.WithRace = v.WithRace
	p.WithCapital = v.WithCapital
	p.WithEduXOcc = v.WithEduXOcc
	p.WithHours = v.WithHours
	return p.Build()
}

// outputHash digests the run's output values: names sorted, each value's
// canonical encoded bytes folded in. Byte-identical outputs — the
// correctness bar for every scheduling/sharing configuration — give equal
// hashes.
func outputHash(rep *core.Report) (string, error) {
	names := make([]string, 0, len(rep.Outputs))
	for name := range rep.Outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		raw, err := store.Encode(rep.Outputs[name])
		if err != nil {
			return "", fmt.Errorf("serve: encode output %s: %w", name, err)
		}
		fmt.Fprintf(h, "%s:%d:", name, len(raw))
		h.Write(raw)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// admit blocks until the submission may execute: a free global slot, the
// tenant under its in-flight cap, and every earlier-queued eligible waiter
// already granted (FIFO fairness; a waiter whose tenant is at cap does not
// block later waiters from other tenants).
func (s *Service) admit(ctx context.Context, tenant string) *APIError {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return &APIError{Status: 503, Code: CodeDraining, Message: "service is shutting down"}
	}
	if len(s.queue) == 0 && s.eligibleLocked(tenant) {
		s.grantLocked(tenant)
		s.mu.Unlock()
		return nil
	}
	w := &waiter{tenant: tenant, ch: make(chan struct{})}
	s.queue = append(s.queue, w)
	// Pump immediately: the queue may hold only waiters whose tenants are
	// at cap, in which case this waiter is eligible right now and must not
	// wait for an unrelated release.
	s.pumpLocked()
	s.mu.Unlock()

	select {
	case <-w.ch:
		if w.rejected {
			return &APIError{Status: 503, Code: CodeDraining, Message: "service is shutting down"}
		}
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.mu.Unlock()
				return &APIError{Status: 499, Code: CodeCanceled, Message: ctx.Err().Error()}
			}
		}
		if w.rejected {
			// Shutdown rejected this waiter concurrently with cancellation:
			// it left the queue without ever holding a slot, so there is
			// nothing to give back.
			s.mu.Unlock()
			return &APIError{Status: 503, Code: CodeDraining, Message: "service is shutting down"}
		}
		// Granted concurrently with cancellation: give the slot back.
		s.releaseLocked(tenant)
		s.mu.Unlock()
		return &APIError{Status: 499, Code: CodeCanceled, Message: ctx.Err().Error()}
	}
}

// eligibleLocked reports whether tenant may start a run now; mu held.
func (s *Service) eligibleLocked(tenant string) bool {
	return s.total < s.cfg.MaxConcurrent && s.perTenant[tenant] < s.cfg.TenantMaxInFlight
}

// grantLocked takes a slot; mu held.
func (s *Service) grantLocked(tenant string) {
	s.total++
	s.perTenant[tenant]++
	s.wg.Add(1)
}

// release returns a slot and wakes eligible queued waiters in FIFO order.
func (s *Service) release(tenant string) {
	s.mu.Lock()
	s.releaseLocked(tenant)
	s.mu.Unlock()
}

func (s *Service) releaseLocked(tenant string) {
	s.total--
	s.perTenant[tenant]--
	if s.perTenant[tenant] == 0 {
		delete(s.perTenant, tenant)
	}
	s.wg.Done()
	s.pumpLocked()
}

// pumpLocked grants queued waiters: first eligible in queue order, repeated
// while slots remain; mu held.
func (s *Service) pumpLocked() {
	for i := 0; i < len(s.queue); {
		w := s.queue[i]
		if !s.eligibleLocked(w.tenant) {
			i++
			continue
		}
		s.grantLocked(w.tenant)
		close(w.ch)
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
	}
}

// Status snapshots the daemon.
func (s *Service) Status() StatusResponse {
	s.mu.Lock()
	resp := StatusResponse{
		Schema:            exec.ReportSchemaVersion,
		Draining:          s.draining,
		Submissions:       s.submissions,
		Failed:            s.failed,
		InFlight:          s.total,
		Queued:            len(s.queue),
		Counters:          s.totals,
		TenantBudgetBytes: s.cfg.TenantBudgetBytes,
	}
	s.mu.Unlock()
	resp.TenantUsedBytes = s.tiers.OwnerUsage()
	resp.HotUsedBytes = s.tiers.Hot().Used()
	if cold := s.tiers.Cold(); cold != nil {
		resp.ColdUsedBytes = cold.Used()
	}
	return resp
}

// Shutdown drains the service: new and queued submissions are refused,
// in-flight runs get until ctx expires to finish, then are canceled
// through their contexts. State that outlives the daemon (the runtime
// history) is flushed before return. Idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, w := range s.queue {
		w.rejected = true
		close(w.ch)
	}
	s.queue = nil
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel() // abort in-flight runs
		<-done
	}
	s.cancel()
	return s.history.Save(filepath.Join(s.cfg.Dir, "helix-history.json"))
}
