package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxBodyBytes bounds a submission body; the declarative protocol needs a
// few hundred bytes, so anything near the cap is hostile or confused.
const maxBodyBytes = 1 << 20

// Handler adapts the service to HTTP. Routes:
//
//	POST /v1/submit  — run one workflow iteration (blocks until complete)
//	GET  /v1/status  — daemon-lifetime counters and per-tenant usage
//	GET  /healthz    — liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &APIError{Status: 400, Code: CodeBadRequest, Message: "invalid request body: " + err.Error()})
		return
	}
	resp, apiErr := s.Submit(r.Context(), &req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func writeError(w http.ResponseWriter, apiErr *APIError) {
	writeJSON(w, apiErr.Status, ErrorBody{Error: *apiErr})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// Body partially written; nothing recoverable at this layer.
		_ = err
	}
}
