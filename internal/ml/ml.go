// Package ml provides the learning substrate HELIX workflows train with:
// linear classifiers over sparse vectors (logistic regression, linear SVM,
// perceptron), naive Bayes, k-means for unsupervised workloads, and the
// evaluation metrics the demo's Metrics tab plots. The paper runs on
// Spark MLlib / JVM libraries; these implementations replace them with
// deterministic, dependency-free equivalents so iteration runtimes are real
// but reproducible.
package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// Model scores examples; every learner in the package produces one.
type Model interface {
	// Score returns a real-valued margin; >0 predicts the positive class.
	Score(x data.Vector) float64
	// Predict maps the score to a 0/1 label.
	Predict(x data.Vector) float64
}

// linearModel is the shared representation: dense weights + bias.
type linearModel struct {
	W []float64
	B float64
}

func (m *linearModel) Score(x data.Vector) float64 { return x.Dot(m.W) + m.B }

func (m *linearModel) Predict(x data.Vector) float64 {
	if m.Score(x) > 0 {
		return 1
	}
	return 0
}

// LinearModel is an exported trained linear classifier. Serialized by the
// materialization store, so fields are exported for gob.
type LinearModel struct {
	Weights []float64
	Bias    float64
	// Kind records the producing learner ("logreg", "svm", "perceptron").
	Kind string
}

// Score implements Model.
func (m *LinearModel) Score(x data.Vector) float64 { return x.Dot(m.Weights) + m.Bias }

// Predict implements Model.
func (m *LinearModel) Predict(x data.Vector) float64 {
	if m.Score(x) > 0 {
		return 1
	}
	return 0
}

// Sigmoid is the logistic link, exported for probability read-outs.
func Sigmoid(z float64) float64 {
	// Guard against overflow for |z| > ~700.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Probability returns P(y=1|x) under a logistic model.
func (m *LinearModel) Probability(x data.Vector) float64 { return Sigmoid(m.Score(x)) }

// LogisticConfig parameterizes logistic-regression training. The regParam
// field is the workflow knob the paper's ML-iteration edits twiddle
// (`Learner(modelType, regParam=0.1)`).
type LogisticConfig struct {
	// Epochs over the training set.
	Epochs int
	// LearningRate is the initial SGD step size (decayed 1/sqrt(epoch)).
	LearningRate float64
	// RegParam is the L2 regularization strength.
	RegParam float64
	// Seed fixes the shuffle order for reproducibility.
	Seed int64
	// Dim is the feature-space dimension (dictionary length).
	Dim int
}

// DefaultLogistic returns the configuration used by the Census workflow.
func DefaultLogistic(dim int) LogisticConfig {
	return LogisticConfig{Epochs: 5, LearningRate: 0.1, RegParam: 0.1, Seed: 42, Dim: dim}
}

func (c LogisticConfig) validate(n int) error {
	if c.Dim <= 0 {
		return fmt.Errorf("ml: dimension must be positive, got %d", c.Dim)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("ml: epochs must be positive, got %d", c.Epochs)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("ml: learning rate must be positive, got %v", c.LearningRate)
	}
	if c.RegParam < 0 {
		return fmt.Errorf("ml: negative regularization %v", c.RegParam)
	}
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	return nil
}

// TrainLogistic fits L2-regularized logistic regression with SGD. Labels
// must be 0/1. Deterministic given the config seed.
func TrainLogistic(train []data.Labeled, cfg LogisticConfig) (*LinearModel, error) {
	if err := cfg.validate(len(train)); err != nil {
		return nil, err
	}
	m := &LinearModel{Weights: make([]float64, cfg.Dim), Kind: "logreg"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / math.Sqrt(float64(epoch))
		for _, idx := range order {
			ex := train[idx]
			p := Sigmoid(ex.X.Dot(m.Weights) + m.Bias)
			g := p - ex.Y // dLoss/dScore
			for k, i := range ex.X.Indices {
				if i < len(m.Weights) {
					// L2 applied per-update, scaled by 1/n to keep the
					// effective penalty epoch-count independent.
					m.Weights[i] -= lr * (g*ex.X.Values[k] + cfg.RegParam*m.Weights[i]/float64(len(train)))
				}
			}
			m.Bias -= lr * g
		}
	}
	return m, nil
}

// SVMConfig parameterizes linear-SVM training (hinge loss, SGD).
type SVMConfig struct {
	Epochs       int
	LearningRate float64
	RegParam     float64
	Seed         int64
	Dim          int
}

// DefaultSVM returns sensible defaults for the census-scale tasks.
func DefaultSVM(dim int) SVMConfig {
	return SVMConfig{Epochs: 5, LearningRate: 0.1, RegParam: 0.01, Seed: 42, Dim: dim}
}

// TrainSVM fits a linear SVM by SGD on the hinge loss. Labels must be 0/1
// (mapped internally to ±1).
func TrainSVM(train []data.Labeled, cfg SVMConfig) (*LinearModel, error) {
	lc := LogisticConfig{Epochs: cfg.Epochs, LearningRate: cfg.LearningRate, RegParam: cfg.RegParam, Seed: cfg.Seed, Dim: cfg.Dim}
	if err := lc.validate(len(train)); err != nil {
		return nil, err
	}
	m := &LinearModel{Weights: make([]float64, cfg.Dim), Kind: "svm"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / math.Sqrt(float64(epoch))
		for _, idx := range order {
			ex := train[idx]
			y := 2*ex.Y - 1 // ±1
			margin := y * (ex.X.Dot(m.Weights) + m.Bias)
			if margin < 1 {
				for k, i := range ex.X.Indices {
					if i < len(m.Weights) {
						m.Weights[i] += lr * (y*ex.X.Values[k] - cfg.RegParam*m.Weights[i])
					}
				}
				m.Bias += lr * y
			} else if cfg.RegParam > 0 {
				for k, i := range ex.X.Indices {
					_ = k
					if i < len(m.Weights) {
						m.Weights[i] -= lr * cfg.RegParam * m.Weights[i]
					}
				}
			}
		}
	}
	return m, nil
}

// TrainPerceptron fits an averaged perceptron — the cheap baseline learner
// offered by the DSL's Learner operator for quick iterations.
func TrainPerceptron(train []data.Labeled, epochs int, dim int, seed int64) (*LinearModel, error) {
	cfg := LogisticConfig{Epochs: epochs, LearningRate: 1, RegParam: 0, Seed: seed, Dim: dim}
	if err := cfg.validate(len(train)); err != nil {
		return nil, err
	}
	w := make([]float64, dim)
	wSum := make([]float64, dim)
	var b, bSum float64
	var updates float64 = 1
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := train[idx]
			y := 2*ex.Y - 1
			if y*(ex.X.Dot(w)+b) <= 0 {
				for k, i := range ex.X.Indices {
					if i < dim {
						w[i] += y * ex.X.Values[k]
						wSum[i] += updates * y * ex.X.Values[k]
					}
				}
				b += y
				bSum += updates * y
			}
			updates++
		}
	}
	// Averaging: w_avg = w - wSum/updates.
	avg := make([]float64, dim)
	for i := range w {
		avg[i] = w[i] - wSum[i]/updates
	}
	return &LinearModel{Weights: avg, Bias: b - bSum/updates, Kind: "perceptron"}, nil
}
