package ml

import (
	"fmt"
	"math"

	"repro/internal/data"
)

// NaiveBayes is a multinomial naive Bayes classifier over non-negative
// sparse features — the cheap probabilistic baseline the DSL's Learner
// operator offers alongside the linear models. Exported fields for gob.
type NaiveBayes struct {
	// LogPrior[c] is log P(class c), c in {0, 1}.
	LogPrior [2]float64
	// LogLik[c][j] is log P(feature j | class c), Laplace-smoothed.
	LogLik [2][]float64
	// Dim is the feature-space size.
	Dim int
}

// TrainNaiveBayes fits the classifier. Labels must be 0/1; negative feature
// values are rejected (multinomial NB requires counts/weights >= 0).
func TrainNaiveBayes(train []data.Labeled, dim int) (*NaiveBayes, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ml: dimension must be positive, got %d", dim)
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	var counts [2][]float64
	counts[0] = make([]float64, dim)
	counts[1] = make([]float64, dim)
	var classN [2]float64
	var classTotal [2]float64
	for _, ex := range train {
		c := 0
		if ex.Y == 1 {
			c = 1
		}
		classN[c]++
		for k, j := range ex.X.Indices {
			v := ex.X.Values[k]
			if v < 0 {
				return nil, fmt.Errorf("ml: naive bayes requires non-negative features, got %v at index %d", v, j)
			}
			if j < dim {
				counts[c][j] += v
				classTotal[c] += v
			}
		}
	}
	nb := &NaiveBayes{Dim: dim}
	n := float64(len(train))
	for c := 0; c < 2; c++ {
		// Laplace smoothing on both prior and likelihood.
		nb.LogPrior[c] = math.Log((classN[c] + 1) / (n + 2))
		nb.LogLik[c] = make([]float64, dim)
		denom := classTotal[c] + float64(dim)
		for j := 0; j < dim; j++ {
			nb.LogLik[c][j] = math.Log((counts[c][j] + 1) / denom)
		}
	}
	return nb, nil
}

// Score implements Model: the log-odds log P(1|x) - log P(0|x).
func (nb *NaiveBayes) Score(x data.Vector) float64 {
	s := nb.LogPrior[1] - nb.LogPrior[0]
	for k, j := range x.Indices {
		if j < nb.Dim {
			s += x.Values[k] * (nb.LogLik[1][j] - nb.LogLik[0][j])
		}
	}
	return s
}

// Predict implements Model.
func (nb *NaiveBayes) Predict(x data.Vector) float64 {
	if nb.Score(x) > 0 {
		return 1
	}
	return 0
}
