package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// KMeans supports the DSL's unsupervised-learning path (§2.1: "both
// supervised and unsupervised learning"). Lloyd's algorithm over dense
// projections of the sparse vectors.
type KMeans struct {
	// Centers[c] is the dense centroid for cluster c.
	Centers [][]float64
}

// KMeansConfig parameterizes clustering.
type KMeansConfig struct {
	K        int
	MaxIters int
	Seed     int64
	Dim      int
}

// TrainKMeans clusters the vectors; deterministic given the seed
// (k-means++-style seeding with a fixed RNG).
func TrainKMeans(xs []data.Vector, cfg KMeansConfig) (*KMeans, error) {
	if cfg.K <= 0 || cfg.Dim <= 0 || cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("ml: kmeans config invalid: k=%d dim=%d iters=%d", cfg.K, cfg.Dim, cfg.MaxIters)
	}
	if len(xs) < cfg.K {
		return nil, fmt.Errorf("ml: kmeans needs >=k points, got %d < %d", len(xs), cfg.K)
	}
	dense := make([][]float64, len(xs))
	for i, x := range xs {
		dense[i] = densify(x, cfg.Dim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := seedPlusPlus(dense, cfg.K, rng)
	assign := make([]int, len(dense))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		changed := false
		for i, p := range dense {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers; empty clusters keep their previous centroid.
		counts := make([]int, cfg.K)
		sums := make([][]float64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, cfg.Dim)
		}
		for i, p := range dense {
			counts[assign[i]]++
			for j, v := range p {
				sums[assign[i]][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			for j := range centers[c] {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return &KMeans{Centers: centers}, nil
}

// Assign returns the nearest-center index for x.
func (k *KMeans) Assign(x data.Vector) int {
	p := densify(x, len(k.Centers[0]))
	best, bestD := 0, math.Inf(1)
	for c, ctr := range k.Centers {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Inertia returns the total within-cluster squared distance, the standard
// clustering quality metric.
func (k *KMeans) Inertia(xs []data.Vector) float64 {
	var total float64
	dim := len(k.Centers[0])
	for _, x := range xs {
		p := densify(x, dim)
		best := math.Inf(1)
		for _, ctr := range k.Centers {
			if d := sqDist(p, ctr); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

func densify(x data.Vector, dim int) []float64 {
	p := make([]float64, dim)
	for k, i := range x.Indices {
		if i < dim {
			p[i] = x.Values[k]
		}
	}
	return p
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus picks initial centers with k-means++ weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var sum float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All points coincide with centers: duplicate one.
			centers = append(centers, append([]float64(nil), points[0]...))
			continue
		}
		r := rng.Float64() * sum
		var acc float64
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}
	return centers
}
