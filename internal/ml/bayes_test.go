package ml

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// bowData generates a bag-of-words-style dataset where class 1 prefers the
// first half of the vocabulary.
func bowData(n, dim int, seed int64) []data.Labeled {
	rng := rand.New(rand.NewSource(seed))
	out := make([]data.Labeled, n)
	for i := range out {
		y := float64(rng.Intn(2))
		var v data.Vector
		for k := 0; k < 6; k++ {
			var j int
			if (y == 1) == (rng.Float64() < 0.8) {
				j = rng.Intn(dim / 2) // class-1 vocabulary
			} else {
				j = dim/2 + rng.Intn(dim/2)
			}
			v.Indices = append(v.Indices, j)
			v.Values = append(v.Values, 1)
		}
		// Canonicalize: sort+merge duplicates.
		merged := map[int]float64{}
		for k, j := range v.Indices {
			merged[j] += v.Values[k]
		}
		v = data.Vector{}
		for j := 0; j < dim; j++ {
			if c, ok := merged[j]; ok {
				v.Indices = append(v.Indices, j)
				v.Values = append(v.Values, c)
			}
		}
		out[i] = data.Labeled{X: v, Y: y}
	}
	return out
}

func TestNaiveBayesLearns(t *testing.T) {
	train := bowData(500, 40, 1)
	nb, err := TrainNaiveBayes(train, 40)
	if err != nil {
		t.Fatal(err)
	}
	test := bowData(200, 40, 2)
	met, err := Evaluate(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.8 {
		t.Errorf("naive bayes accuracy = %v, want >= 0.8", met.Accuracy)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	good := bowData(10, 8, 3)
	if _, err := TrainNaiveBayes(good, 0); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := TrainNaiveBayes(nil, 8); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []data.Labeled{{X: data.Vector{Indices: []int{0}, Values: []float64{-1}}, Y: 1}}
	if _, err := TrainNaiveBayes(bad, 8); err == nil {
		t.Error("negative feature accepted")
	}
}

func TestNaiveBayesSingleClass(t *testing.T) {
	// All-positive training data: smoothing must keep it from degenerating.
	train := make([]data.Labeled, 10)
	for i := range train {
		train[i] = data.Labeled{X: data.Vector{Indices: []int{0}, Values: []float64{1}}, Y: 1}
	}
	nb, err := TrainNaiveBayes(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Predict(train[0].X) != 1 {
		t.Error("single-class model mispredicts its own data")
	}
}

func TestNaiveBayesOutOfRangeIndices(t *testing.T) {
	// Feature indices beyond dim are ignored consistently at train and test.
	train := []data.Labeled{
		{X: data.Vector{Indices: []int{0, 99}, Values: []float64{1, 1}}, Y: 1},
		{X: data.Vector{Indices: []int{1}, Values: []float64{1}}, Y: 0},
	}
	nb, err := TrainNaiveBayes(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Predict(data.Vector{Indices: []int{0, 99}, Values: []float64{1, 5}}); got != 1 {
		t.Errorf("prediction with out-of-range index = %v", got)
	}
}
