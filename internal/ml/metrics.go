package ml

import (
	"fmt"
	"math"

	"repro/internal/data"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (gold, predicted) pair.
func (c *Confusion) Add(gold, pred float64) {
	switch {
	case gold == 1 && pred == 1:
		c.TP++
	case gold == 0 && pred == 1:
		c.FP++
	case gold == 0 && pred == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Accuracy returns (TP+TN)/total, 0 on an empty matrix.
func (c *Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision returns TP/(TP+FP), 0 when nothing was predicted positive.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when there are no gold positives.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Metrics aggregates an evaluation pass — the values the demo's Metrics tab
// plots per workflow version.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	LogLoss   float64
	N         int
}

// String renders the metrics in the fixed format used by the CLI tools.
func (m Metrics) String() string {
	return fmt.Sprintf("acc=%.4f p=%.4f r=%.4f f1=%.4f logloss=%.4f n=%d",
		m.Accuracy, m.Precision, m.Recall, m.F1, m.LogLoss, m.N)
}

// Evaluate scores a model on labeled data. LogLoss uses the logistic link
// regardless of learner kind (standard practice for margin models).
func Evaluate(m Model, test []data.Labeled) (Metrics, error) {
	if len(test) == 0 {
		return Metrics{}, fmt.Errorf("ml: empty test set")
	}
	var conf Confusion
	var ll float64
	for _, ex := range test {
		pred := m.Predict(ex.X)
		conf.Add(ex.Y, pred)
		p := Sigmoid(m.Score(ex.X))
		// Clamp to avoid log(0).
		const eps = 1e-12
		p = math.Min(math.Max(p, eps), 1-eps)
		if ex.Y == 1 {
			ll -= math.Log(p)
		} else {
			ll -= math.Log(1 - p)
		}
	}
	return Metrics{
		Accuracy:  conf.Accuracy(),
		Precision: conf.Precision(),
		Recall:    conf.Recall(),
		F1:        conf.F1(),
		LogLoss:   ll / float64(len(test)),
		N:         len(test),
	}, nil
}

// TrainTestSplit deterministically splits examples: every k-th example goes
// to test where k = round(1/testFrac). A modular split (rather than a
// shuffle) keeps the assignment stable when upstream feature edits change
// example content but not count — important for iteration-over-iteration
// metric comparability.
func TrainTestSplit(all []data.Labeled, testFrac float64) (train, test []data.Labeled, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: test fraction must be in (0,1), got %v", testFrac)
	}
	k := int(math.Round(1 / testFrac))
	if k < 2 {
		k = 2
	}
	for i, ex := range all {
		if i%k == 0 {
			test = append(test, ex)
		} else {
			train = append(train, ex)
		}
	}
	if len(train) == 0 || len(test) == 0 {
		return nil, nil, fmt.Errorf("ml: split produced empty partition (n=%d)", len(all))
	}
	return train, test, nil
}
