package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

// linearlySeparable generates points labeled by sign(w·x + b) with margin.
func linearlySeparable(n, dim int, seed int64) []data.Labeled {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	out := make([]data.Labeled, 0, n)
	for len(out) < n {
		x := data.Vector{}
		var dot float64
		for i := 0; i < dim; i++ {
			if rng.Float64() < 0.6 {
				v := rng.NormFloat64()
				x.Indices = append(x.Indices, i)
				x.Values = append(x.Values, v)
				dot += w[i] * v
			}
		}
		if math.Abs(dot) < 0.5 {
			continue // enforce margin
		}
		y := 0.0
		if dot > 0 {
			y = 1
		}
		out = append(out, data.Labeled{X: x, Y: y})
	}
	return out
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Errorf("Sigmoid(1000) = %v", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Errorf("Sigmoid(-1000) = %v", got)
	}
	// Symmetry: s(-z) = 1 - s(z).
	for _, z := range []float64{0.1, 2, 5} {
		if d := Sigmoid(-z) - (1 - Sigmoid(z)); math.Abs(d) > 1e-12 {
			t.Errorf("symmetry broken at %v: %v", z, d)
		}
	}
}

func TestTrainLogisticSeparable(t *testing.T) {
	train := linearlySeparable(400, 8, 1)
	cfg := DefaultLogistic(8)
	cfg.Epochs = 20
	m, err := TrainLogistic(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(m, train)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.95 {
		t.Errorf("separable accuracy = %v, want >= 0.95", met.Accuracy)
	}
}

func TestTrainLogisticDeterministic(t *testing.T) {
	train := linearlySeparable(100, 5, 2)
	cfg := DefaultLogistic(5)
	m1, err := TrainLogistic(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainLogistic(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
	if m1.Bias != m2.Bias {
		t.Error("bias differs")
	}
}

func TestTrainLogisticRegularizationShrinksWeights(t *testing.T) {
	train := linearlySeparable(200, 6, 3)
	weak := DefaultLogistic(6)
	weak.RegParam = 0
	strong := DefaultLogistic(6)
	strong.RegParam = 50
	mw, err := TrainLogistic(train, weak)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := TrainLogistic(train, strong)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(w []float64) float64 {
		var s float64
		for _, x := range w {
			s += x * x
		}
		return s
	}
	if norm(ms.Weights) >= norm(mw.Weights) {
		t.Errorf("strong reg norm %v >= weak %v", norm(ms.Weights), norm(mw.Weights))
	}
}

func TestTrainLogisticValidation(t *testing.T) {
	train := linearlySeparable(10, 3, 4)
	for name, cfg := range map[string]LogisticConfig{
		"zero dim":    {Epochs: 1, LearningRate: 0.1, Dim: 0},
		"zero epochs": {Epochs: 0, LearningRate: 0.1, Dim: 3},
		"zero lr":     {Epochs: 1, LearningRate: 0, Dim: 3},
		"neg reg":     {Epochs: 1, LearningRate: 0.1, RegParam: -1, Dim: 3},
	} {
		if _, err := TrainLogistic(train, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := TrainLogistic(nil, DefaultLogistic(3)); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTrainSVMSeparable(t *testing.T) {
	train := linearlySeparable(400, 8, 5)
	cfg := DefaultSVM(8)
	cfg.Epochs = 20
	m, err := TrainSVM(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(m, train)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.95 {
		t.Errorf("svm separable accuracy = %v", met.Accuracy)
	}
	if m.Kind != "svm" {
		t.Errorf("kind = %q", m.Kind)
	}
}

func TestTrainPerceptronSeparable(t *testing.T) {
	train := linearlySeparable(400, 8, 6)
	m, err := TrainPerceptron(train, 10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(m, train)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.93 {
		t.Errorf("perceptron accuracy = %v", met.Accuracy)
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(0, 1)
	for i := 0; i < 4; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Add(1, 0)
	}
	if got := c.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / 1.35
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", got, wantF1)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should be all zeros")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(&LinearModel{Weights: []float64{1}}, nil); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestTrainTestSplit(t *testing.T) {
	all := linearlySeparable(100, 3, 7)
	train, test, err := TrainTestSplit(all, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != 100 {
		t.Errorf("split lost examples: %d + %d", len(train), len(test))
	}
	if len(test) != 20 {
		t.Errorf("test size = %d, want 20", len(test))
	}
	// Determinism.
	train2, _, err := TrainTestSplit(all, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(train2) != len(train) {
		t.Error("split not deterministic")
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := TrainTestSplit(all, bad); err == nil {
			t.Errorf("testFrac=%v accepted", bad)
		}
	}
	if _, _, err := TrainTestSplit(all[:1], 0.5); err == nil {
		t.Error("degenerate split accepted")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Accuracy: 0.5, N: 10}
	if got := m.String(); got == "" {
		t.Error("empty string")
	}
}

func TestKMeansTwoClusters(t *testing.T) {
	// Two well-separated blobs on a 2-D space.
	var xs []data.Vector
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		xs = append(xs, data.Vector{Indices: []int{0, 1}, Values: []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}})
	}
	for i := 0; i < 50; i++ {
		xs = append(xs, data.Vector{Indices: []int{0, 1}, Values: []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1}})
	}
	km, err := TrainKMeans(xs, KMeansConfig{K: 2, MaxIters: 50, Seed: 1, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// All blob-1 points share a cluster, distinct from blob-2.
	c0 := km.Assign(xs[0])
	for _, x := range xs[:50] {
		if km.Assign(x) != c0 {
			t.Fatal("blob 1 split across clusters")
		}
	}
	if km.Assign(xs[99]) == c0 {
		t.Fatal("blobs merged")
	}
	if in := km.Inertia(xs); in > 10 {
		t.Errorf("inertia = %v, want small", in)
	}
}

func TestKMeansValidation(t *testing.T) {
	xs := []data.Vector{{Indices: []int{0}, Values: []float64{1}}}
	if _, err := TrainKMeans(xs, KMeansConfig{K: 0, MaxIters: 1, Dim: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TrainKMeans(xs, KMeansConfig{K: 5, MaxIters: 1, Dim: 1, Seed: 1}); err == nil {
		t.Error("n < k accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	xs := make([]data.Vector, 5)
	for i := range xs {
		xs[i] = data.Vector{Indices: []int{0}, Values: []float64{3}}
	}
	km, err := TrainKMeans(xs, KMeansConfig{K: 2, MaxIters: 10, Seed: 1, Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in := km.Inertia(xs); in != 0 {
		t.Errorf("identical points inertia = %v", in)
	}
}

// Property: Evaluate's accuracy equals 1 - (error count)/n for any model and
// data (consistency between confusion counts and metric).
func TestQuickEvaluateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		test := make([]data.Labeled, n)
		for i := range test {
			test[i] = data.Labeled{
				X: data.Vector{Indices: []int{0}, Values: []float64{r.NormFloat64()}},
				Y: float64(r.Intn(2)),
			}
		}
		m := &LinearModel{Weights: []float64{r.NormFloat64()}, Bias: r.NormFloat64()}
		met, err := Evaluate(m, test)
		if err != nil {
			return false
		}
		errs := 0
		for _, ex := range test {
			if m.Predict(ex.X) != ex.Y {
				errs++
			}
		}
		return math.Abs(met.Accuracy-(1-float64(errs)/float64(n))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: averaged perceptron never errors on valid input and always
// produces finite weights.
func TestQuickPerceptronFinite(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		train := linearlySeparable(20+r.Intn(50), 4, seed)
		m, err := TrainPerceptron(train, 3, 4, seed)
		if err != nil {
			return false
		}
		for _, w := range m.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
