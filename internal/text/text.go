// Package text is the NLP substrate for the information-extraction
// application: tokenization, sentence splitting, per-token feature templates
// and a name gazetteer. The paper's IE pipeline runs over news articles with
// "more data pre-processing steps to enable learning" (§3); these operators
// are those steps.
package text

import (
	"strings"
	"unicode"
)

// Token is one token with its character offsets in the source text.
type Token struct {
	Text  string
	Start int // byte offset, inclusive
	End   int // byte offset, exclusive
}

// Tokenize splits text into word and punctuation tokens with offsets.
// Contiguous letters/digits form one token; each punctuation rune is its own
// token; whitespace separates.
func Tokenize(text string) []Token {
	var out []Token
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, Token{Text: text[start:end], Start: start, End: end})
			start = -1
		}
	}
	for i, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			if start < 0 {
				start = i
			}
		case unicode.IsSpace(r):
			flush(i)
		default: // punctuation
			flush(i)
			end := i + len(string(r))
			out = append(out, Token{Text: text[i:end], Start: i, End: end})
		}
	}
	flush(len(text))
	return out
}

// Sentence is a contiguous token span.
type Sentence struct {
	Tokens []Token
}

// SplitSentences groups tokens into sentences at ., ! and ? boundaries.
// The terminator stays with its sentence.
func SplitSentences(tokens []Token) []Sentence {
	var out []Sentence
	var cur []Token
	for _, t := range tokens {
		cur = append(cur, t)
		if t.Text == "." || t.Text == "!" || t.Text == "?" {
			out = append(out, Sentence{Tokens: cur})
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, Sentence{Tokens: cur})
	}
	return out
}

// Shape returns the orthographic shape of a token: uppercase→X,
// lowercase→x, digit→d, other→p, with runs collapsed ("McDonald" → "XxXx").
func Shape(s string) string {
	var b strings.Builder
	var prev rune
	for _, r := range s {
		var c rune
		switch {
		case unicode.IsUpper(r):
			c = 'X'
		case unicode.IsLower(r):
			c = 'x'
		case unicode.IsDigit(r):
			c = 'd'
		default:
			c = 'p'
		}
		if c != prev {
			b.WriteRune(c)
			prev = c
		}
	}
	return b.String()
}

// IsCapitalized reports whether the token starts with an uppercase letter.
func IsCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// Gazetteer is a case-sensitive set of known names (first or last), the
// classic external-knowledge feature for person-mention extraction.
type Gazetteer struct {
	entries map[string]bool
}

// NewGazetteer builds a gazetteer from entries.
func NewGazetteer(entries ...string) *Gazetteer {
	g := &Gazetteer{entries: make(map[string]bool, len(entries))}
	for _, e := range entries {
		g.entries[e] = true
	}
	return g
}

// Contains reports membership.
func (g *Gazetteer) Contains(s string) bool { return g.entries[s] }

// Len returns the number of entries.
func (g *Gazetteer) Len() int { return len(g.entries) }

// FeatureConfig selects which token feature templates fire. Each flag is a
// workflow knob the IE iteration script toggles (a "data pre-processing"
// edit in Figure 2's color coding).
type FeatureConfig struct {
	// Lowercased token identity.
	Word bool
	// Orthographic shape (capitalization pattern).
	Shape bool
	// Prefix/suffix up to 3 chars.
	Affixes bool
	// Previous/next token identity.
	Context bool
	// Gazetteer membership (requires Gazetteer non-nil).
	Gazetteer bool
	// Token position features (sentence start).
	Position bool
}

// DefaultFeatures is the initial IE workflow configuration.
func DefaultFeatures() FeatureConfig {
	return FeatureConfig{Word: true, Shape: true, Position: true}
}

// TokenFeatures emits feature strings for token i of a sentence under the
// config. Feature strings feed the sequence model's sparse representation.
func TokenFeatures(sent []Token, i int, cfg FeatureConfig, gaz *Gazetteer) []string {
	t := sent[i].Text
	var fs []string
	if cfg.Word {
		fs = append(fs, "w="+strings.ToLower(t))
	}
	if cfg.Shape {
		fs = append(fs, "shape="+Shape(t))
		if IsCapitalized(t) {
			fs = append(fs, "cap")
		}
	}
	if cfg.Affixes {
		lower := strings.ToLower(t)
		for n := 1; n <= 3 && n <= len(lower); n++ {
			fs = append(fs, "pre"+string(rune('0'+n))+"="+lower[:n])
			fs = append(fs, "suf"+string(rune('0'+n))+"="+lower[len(lower)-n:])
		}
	}
	if cfg.Context {
		if i > 0 {
			fs = append(fs, "prev="+strings.ToLower(sent[i-1].Text))
		} else {
			fs = append(fs, "prev=<s>")
		}
		if i+1 < len(sent) {
			fs = append(fs, "next="+strings.ToLower(sent[i+1].Text))
		} else {
			fs = append(fs, "next=</s>")
		}
	}
	if cfg.Gazetteer && gaz != nil && gaz.Contains(t) {
		fs = append(fs, "gaz")
	}
	if cfg.Position && i == 0 {
		fs = append(fs, "sent_start")
	}
	return fs
}
