package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func tokenTexts(ts []Token) []string {
	if len(ts) == 0 {
		return nil
	}
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text
	}
	return out
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Alice met Bob.", []string{"Alice", "met", "Bob", "."}},
		{"", nil},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"don't stop", []string{"don't", "stop"}},
		{"a,b;c", []string{"a", ",", "b", ";", "c"}},
		{"v2.0 rocks", []string{"v2", ".", "0", "rocks"}},
	}
	for _, tc := range cases {
		got := tokenTexts(Tokenize(tc.in))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "Hi, Bob!"
	for _, tok := range Tokenize(in) {
		if in[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", in[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	toks := Tokenize("One two. Three! Four")
	sents := SplitSentences(toks)
	if len(sents) != 3 {
		t.Fatalf("sentences = %d, want 3", len(sents))
	}
	if got := tokenTexts(sents[0].Tokens); !reflect.DeepEqual(got, []string{"One", "two", "."}) {
		t.Errorf("sent 0 = %v", got)
	}
	if got := tokenTexts(sents[2].Tokens); !reflect.DeepEqual(got, []string{"Four"}) {
		t.Errorf("trailing sentence = %v", got)
	}
	if got := SplitSentences(nil); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
}

func TestShape(t *testing.T) {
	cases := map[string]string{
		"Alice":    "Xx",
		"McDonald": "XxXx",
		"USA":      "X",
		"abc123":   "xd",
		"3.14":     "dpd",
		"":         "",
	}
	for in, want := range cases {
		if got := Shape(in); got != want {
			t.Errorf("Shape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsCapitalized(t *testing.T) {
	if !IsCapitalized("Bob") || IsCapitalized("bob") || IsCapitalized("") || IsCapitalized("9am") {
		t.Error("IsCapitalized wrong")
	}
}

func TestGazetteer(t *testing.T) {
	g := NewGazetteer("Alice", "Bob")
	if !g.Contains("Alice") || g.Contains("alice") || g.Contains("Eve") {
		t.Error("gazetteer membership wrong")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestTokenFeaturesTemplates(t *testing.T) {
	sent := Tokenize("Alice met Bob")
	gaz := NewGazetteer("Alice")
	cfg := FeatureConfig{Word: true, Shape: true, Affixes: true, Context: true, Gazetteer: true, Position: true}
	fs := TokenFeatures(sent, 0, cfg, gaz)
	has := func(f string) bool {
		for _, x := range fs {
			if x == f {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"w=alice", "shape=Xx", "cap", "pre1=a", "suf3=ice", "prev=<s>", "next=met", "gaz", "sent_start"} {
		if !has(want) {
			t.Errorf("missing feature %q in %v", want, fs)
		}
	}
	// Middle token: no sent_start, prev/next filled.
	fs = TokenFeatures(sent, 1, cfg, gaz)
	if has("sent_start") || !has("prev=alice") || !has("next=bob") {
		t.Errorf("middle token features wrong: %v", fs)
	}
	// Last token: next sentinel.
	fs = TokenFeatures(sent, 2, cfg, gaz)
	if !has("next=</s>") {
		t.Errorf("last token missing </s>: %v", fs)
	}
}

func TestTokenFeaturesMinimalConfig(t *testing.T) {
	sent := Tokenize("Alice")
	fs := TokenFeatures(sent, 0, FeatureConfig{Word: true}, nil)
	if len(fs) != 1 || fs[0] != "w=alice" {
		t.Errorf("minimal config = %v", fs)
	}
	// Gazetteer flag without gazetteer: no panic, no feature.
	fs = TokenFeatures(sent, 0, FeatureConfig{Gazetteer: true}, nil)
	if len(fs) != 0 {
		t.Errorf("gazetteer-without-gaz = %v", fs)
	}
}

// Property: tokenization offsets are monotone, non-overlapping, and each
// token's text matches its span.
func TestQuickTokenizeOffsets(t *testing.T) {
	alphabet := []rune("ab C.!x 9,")
	f := func(seed int64) bool {
		n := int(seed%97+97)%97 + 1
		rs := make([]rune, n)
		s := seed
		for i := range rs {
			s = s*1103515245 + 12345
			idx := int(s % int64(len(alphabet)))
			if idx < 0 {
				idx = -idx
			}
			rs[i] = alphabet[idx]
		}
		in := string(rs)
		toks := Tokenize(in)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End <= tok.Start {
				return false
			}
			if in[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
