package workload

import (
	"repro/internal/codec"
	"repro/internal/seq"
)

// Binary value codec registrations for the IE workload values (see
// codec.EncodeValue). These reuse the same columnar helpers as the custom
// gob encodings in gob.go, writing straight into the outer value stream.

func init() {
	codec.RegisterValue(NewsData{}, "workload.NewsData",
		func(w *codec.Writer, v any) error { encodeNewsData(w, v.(NewsData)); return nil },
		func(r *codec.Reader) (any, error) { return decodeNewsData(r) })
	codec.RegisterValue(TokenizedCorpus{}, "workload.TokenizedCorpus",
		func(w *codec.Writer, v any) error {
			tc := v.(TokenizedCorpus)
			table := codec.NewStringTable()
			encodeSents(w, table, tc.TrainSents)
			encodeSents(w, table, tc.TestSents)
			encodeSents(w, table, tc.TrainPersons)
			encodeSents(w, table, tc.TestPersons)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var tc TokenizedCorpus
			table := codec.NewReadStringTable()
			var err error
			if tc.TrainSents, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			if tc.TestSents, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			if tc.TrainPersons, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			if tc.TestPersons, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			return tc, nil
		})
	codec.RegisterValue(LabeledCorpus{}, "workload.LabeledCorpus",
		func(w *codec.Writer, v any) error {
			lc := v.(LabeledCorpus)
			table := codec.NewStringTable()
			encodeSents(w, table, lc.TrainSents)
			encodeSents(w, table, lc.TestSents)
			encodeInts2(w, lc.TrainTags)
			encodeSpans2(w, lc.TrainGold)
			encodeSpans2(w, lc.TestGold)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var lc LabeledCorpus
			table := codec.NewReadStringTable()
			var err error
			if lc.TrainSents, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			if lc.TestSents, err = decodeSents(r, table); err != nil {
				return nil, err
			}
			if lc.TrainTags, err = decodeInts2(r); err != nil {
				return nil, err
			}
			if lc.TrainGold, err = decodeSpans2(r); err != nil {
				return nil, err
			}
			if lc.TestGold, err = decodeSpans2(r); err != nil {
				return nil, err
			}
			return lc, nil
		})
	codec.RegisterValue(GazValue{}, "workload.GazValue",
		func(w *codec.Writer, v any) error {
			g := v.(GazValue)
			w.Len(len(g.Entries))
			for _, e := range g.Entries {
				w.String(e)
			}
			return nil
		},
		func(r *codec.Reader) (any, error) {
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			entries := make([]string, n)
			for i := range entries {
				if entries[i], err = r.String(); err != nil {
					return nil, err
				}
			}
			return GazValue{Entries: entries}, nil
		})
	codec.RegisterValue(SeqDataset{}, "workload.SeqDataset",
		func(w *codec.Writer, v any) error {
			ds := v.(SeqDataset)
			w.Len(len(ds.TrainInsts))
			for _, in := range ds.TrainInsts {
				encodeInts2(w, in.Feats)
				w.Len(len(in.Tags))
				for _, t := range in.Tags {
					w.Int(t)
				}
			}
			encodeInts3(w, ds.TestFeats)
			encodeSpans2(w, ds.TestGold)
			w.Int(ds.Dim)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var ds SeqDataset
			n, err := r.Len()
			if err != nil {
				return nil, err
			}
			insts := make([]seq.Instance, n)
			for i := range insts {
				feats, err := decodeInts2(r)
				if err != nil {
					return nil, err
				}
				k, err := r.Len()
				if err != nil {
					return nil, err
				}
				tags := make([]int, k)
				for j := range tags {
					if tags[j], err = r.Int(); err != nil {
						return nil, err
					}
				}
				insts[i] = seq.Instance{Feats: feats, Tags: tags}
			}
			ds.TrainInsts = insts
			if ds.TestFeats, err = decodeInts3(r); err != nil {
				return nil, err
			}
			if ds.TestGold, err = decodeSpans2(r); err != nil {
				return nil, err
			}
			if ds.Dim, err = r.Int(); err != nil {
				return nil, err
			}
			return ds, nil
		})
	codec.RegisterValue(PredSpans{}, "workload.PredSpans",
		func(w *codec.Writer, v any) error {
			p := v.(PredSpans)
			encodeSpans2(w, p.Spans)
			encodeSpans2(w, p.Gold)
			return nil
		},
		func(r *codec.Reader) (any, error) {
			var p PredSpans
			var err error
			if p.Spans, err = decodeSpans2(r); err != nil {
				return nil, err
			}
			if p.Gold, err = decodeSpans2(r); err != nil {
				return nil, err
			}
			return p, nil
		})
}

func encodeNewsData(w *codec.Writer, nd NewsData) {
	table := codec.NewStringTable()
	for _, docs := range [][]Document{nd.Train, nd.Test} {
		w.Len(len(docs))
		for _, d := range docs {
			w.String(d.Text)
			w.Len(len(d.Persons))
			for _, p := range d.Persons {
				table.Write(w, p)
			}
		}
	}
}

func decodeNewsData(r *codec.Reader) (NewsData, error) {
	var nd NewsData
	table := codec.NewReadStringTable()
	for _, dst := range []*[]Document{&nd.Train, &nd.Test} {
		n, err := r.Len()
		if err != nil {
			return NewsData{}, err
		}
		docs := make([]Document, n)
		for i := range docs {
			if docs[i].Text, err = r.String(); err != nil {
				return NewsData{}, err
			}
			np, err := r.Len()
			if err != nil {
				return NewsData{}, err
			}
			persons := make([]string, np)
			for j := range persons {
				if persons[j], err = table.Read(r); err != nil {
					return NewsData{}, err
				}
			}
			docs[i].Persons = persons
		}
		*dst = docs
	}
	return nd, nil
}
