package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/seq"
	"repro/internal/store"
	"repro/internal/text"
)

// Value types flowing through the IE pipeline. All are registered with the
// store codec so HELIX can materialize any intermediate.

// TokenizedCorpus is the corpus after tokenization and sentence splitting.
// Sentences are flattened across documents; PersonsOf[i] lists the gold
// person names of the document sentence i came from.
type TokenizedCorpus struct {
	TrainSents, TestSents     [][]string
	TrainPersons, TestPersons [][]string
}

// LabeledCorpus adds gold BIO tags (train) and gold spans (both halves),
// derived by aligning person-name strings against token sequences — the
// distant-supervision ETL step.
type LabeledCorpus struct {
	TrainSents, TestSents [][]string
	TrainTags             [][]int
	TrainGold, TestGold   [][]seq.Span
}

// GazValue wraps gazetteer entries as a DAG value.
type GazValue struct {
	Entries []string
}

// SeqDataset is the vectorized sequence-learning dataset.
type SeqDataset struct {
	TrainInsts []seq.Instance
	// TestFeats holds per-sentence feature indices for the test half.
	TestFeats [][][]int
	TestGold  [][]seq.Span
	Dim       int
}

// PredSpans carries decoded mention spans for the test half.
type PredSpans struct {
	Spans [][]seq.Span
	Gold  [][]seq.Span
}

func init() {
	store.Register(NewsData{})
	store.Register(TokenizedCorpus{})
	store.Register(LabeledCorpus{})
	store.Register(GazValue{})
	store.Register(SeqDataset{})
	store.Register(PredSpans{})
	store.Register(&seq.Model{})
}

// IEParams are the iteration knobs of the information-extraction workflow.
type IEParams struct {
	// Data is the corpus, fixed across iterations.
	Data NewsData
	// Features is the token feature template configuration (prep knobs).
	Features text.FeatureConfig
	// GazFrac selects how much of the name pool the gazetteer covers.
	GazFrac float64
	// Epochs and Seed parameterize the structured perceptron (ML knobs).
	Epochs int
	Seed   int64
	// Metric is the eval emphasis (eval knob).
	Metric string
}

// DefaultIEParams is iteration 1 of the IE session.
func DefaultIEParams(data NewsData) IEParams {
	return IEParams{
		Data:     data,
		Features: text.DefaultFeatures(),
		GazFrac:  0.5,
		Epochs:   3,
		Seed:     1,
		Metric:   "f1",
	}
}

// hashDocs fingerprints the corpus for the source signature.
func hashDocs(d NewsData) string {
	h := sha256.New()
	for _, doc := range d.Train {
		fmt.Fprintf(h, "T%d:%s|%s\n", len(doc.Text), doc.Text, strings.Join(doc.Persons, ","))
	}
	for _, doc := range d.Test {
		fmt.Fprintf(h, "E%d:%s|%s\n", len(doc.Text), doc.Text, strings.Join(doc.Persons, ","))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// featParams encodes the feature configuration into signature params.
func featParams(cfg text.FeatureConfig) map[string]string {
	return map[string]string{
		"word":    strconv.FormatBool(cfg.Word),
		"shape":   strconv.FormatBool(cfg.Shape),
		"affixes": strconv.FormatBool(cfg.Affixes),
		"context": strconv.FormatBool(cfg.Context),
		"gaz":     strconv.FormatBool(cfg.Gazetteer),
		"pos":     strconv.FormatBool(cfg.Position),
	}
}

// tokenizeDocs splits documents into per-sentence token lists, replicating
// each document's person list onto its sentences.
func tokenizeDocs(docs []Document) (sents [][]string, persons [][]string) {
	for _, doc := range docs {
		toks := text.Tokenize(doc.Text)
		for _, sent := range text.SplitSentences(toks) {
			words := make([]string, len(sent.Tokens))
			for i, tk := range sent.Tokens {
				words[i] = tk.Text
			}
			sents = append(sents, words)
			persons = append(persons, doc.Persons)
		}
	}
	return sents, persons
}

// alignPersons finds token spans matching any "First Last" person string.
func alignPersons(sent []string, persons []string) []seq.Span {
	var spans []seq.Span
	used := make([]bool, len(sent))
	for _, p := range persons {
		parts := strings.Fields(p)
		if len(parts) == 0 {
			continue
		}
		for i := 0; i+len(parts) <= len(sent); i++ {
			match := true
			for j, w := range parts {
				if sent[i+j] != w || used[i+j] {
					match = false
					break
				}
			}
			if match {
				spans = append(spans, seq.Span{Start: i, End: i + len(parts)})
				for j := i; j < i+len(parts); j++ {
					used[j] = true
				}
			}
		}
	}
	// Sort by start for stable downstream comparison.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start < spans[j-1].Start; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	return spans
}

// Build constructs the IE workflow for the current parameters. Every
// operator is a DSL UDF, demonstrating the paper's extension mechanism
// ("users can easily extend the default set of operators ... by providing
// only the UDF").
func (p IEParams) Build() *core.Workflow {
	wf := core.NewWorkflow("ie")
	data := p.Data

	wf.Source("corpus", core.NewUDF("newsSource", core.CatPrep,
		map[string]string{"content": hashDocs(data)}, "v1",
		func([]any) (any, error) { return data, nil }))

	wf.Apply("tokens", core.NewUDF("tokenize", core.CatPrep, nil, "v1",
		func(in []any) (any, error) {
			nd, ok := in[0].(NewsData)
			if !ok {
				return nil, fmt.Errorf("tokenize: want NewsData, got %T", in[0])
			}
			trS, trP := tokenizeDocs(nd.Train)
			teS, teP := tokenizeDocs(nd.Test)
			return TokenizedCorpus{TrainSents: trS, TestSents: teS, TrainPersons: trP, TestPersons: teP}, nil
		}), "corpus")

	wf.Apply("labels", core.NewUDF("alignLabels", core.CatPrep, nil, "v1",
		func(in []any) (any, error) {
			tc, ok := in[0].(TokenizedCorpus)
			if !ok {
				return nil, fmt.Errorf("alignLabels: want TokenizedCorpus, got %T", in[0])
			}
			lc := LabeledCorpus{TrainSents: tc.TrainSents, TestSents: tc.TestSents}
			for i, sent := range tc.TrainSents {
				gold := alignPersons(sent, tc.TrainPersons[i])
				tags, err := seq.TagsFromSpans(gold, len(sent))
				if err != nil {
					return nil, fmt.Errorf("alignLabels: train sentence %d: %w", i, err)
				}
				lc.TrainGold = append(lc.TrainGold, gold)
				lc.TrainTags = append(lc.TrainTags, tags)
			}
			for i, sent := range tc.TestSents {
				lc.TestGold = append(lc.TestGold, alignPersons(sent, tc.TestPersons[i]))
			}
			return lc, nil
		}), "tokens")

	gazFrac := p.GazFrac
	wf.Source("gaz", core.NewUDF("gazetteer", core.CatPrep,
		map[string]string{"frac": strconv.FormatFloat(gazFrac, 'g', -1, 64)}, "v1",
		func([]any) (any, error) {
			return GazValue{Entries: GazetteerEntries(gazFrac)}, nil
		}))

	cfg := p.Features
	wf.Apply("feats", core.NewUDF("tokenFeatures", core.CatPrep, featParams(cfg), "v1",
		func(in []any) (any, error) {
			lc, ok := in[0].(LabeledCorpus)
			if !ok {
				return nil, fmt.Errorf("tokenFeatures: want LabeledCorpus, got %T", in[0])
			}
			gv, ok := in[1].(GazValue)
			if !ok {
				return nil, fmt.Errorf("tokenFeatures: want GazValue, got %T", in[1])
			}
			gaz := text.NewGazetteer(gv.Entries...)
			dict := seq.NewFeatureDict()
			featurize := func(sent []string) [][]int {
				toks := make([]text.Token, len(sent))
				for i, w := range sent {
					toks[i] = text.Token{Text: w}
				}
				out := make([][]int, len(sent))
				for i := range sent {
					out[i] = dict.Map(text.TokenFeatures(toks, i, cfg, gaz))
				}
				return out
			}
			ds := SeqDataset{TestGold: lc.TestGold}
			for i, sent := range lc.TrainSents {
				ds.TrainInsts = append(ds.TrainInsts, seq.Instance{
					Feats: featurize(sent),
					Tags:  lc.TrainTags[i],
				})
			}
			dict.Freeze()
			for _, sent := range lc.TestSents {
				ds.TestFeats = append(ds.TestFeats, featurize(sent))
			}
			ds.Dim = dict.Len()
			return ds, nil
		}), "labels", "gaz")

	epochs, seed := p.Epochs, p.Seed
	wf.Apply("model", core.NewUDF("seqLearner", core.CatML,
		map[string]string{"epochs": strconv.Itoa(epochs), "seed": strconv.FormatInt(seed, 10)}, "v1",
		func(in []any) (any, error) {
			ds, ok := in[0].(SeqDataset)
			if !ok {
				return nil, fmt.Errorf("seqLearner: want SeqDataset, got %T", in[0])
			}
			return seq.Train(ds.TrainInsts, seq.TrainConfig{Epochs: epochs, Seed: seed, Dim: ds.Dim})
		}), "feats")

	wf.Apply("spans", core.NewUDF("decode", core.CatML, nil, "v1",
		func(in []any) (any, error) {
			m, ok := in[0].(*seq.Model)
			if !ok {
				return nil, fmt.Errorf("decode: want *seq.Model, got %T", in[0])
			}
			ds, ok := in[1].(SeqDataset)
			if !ok {
				return nil, fmt.Errorf("decode: want SeqDataset, got %T", in[1])
			}
			out := PredSpans{Gold: ds.TestGold}
			for _, feats := range ds.TestFeats {
				out.Spans = append(out.Spans, seq.SpansFromTags(m.Decode(feats)))
			}
			return out, nil
		}), "model", "feats")

	metric := p.Metric
	wf.Apply("checked", core.NewUDF("spanEval", core.CatEval,
		map[string]string{"metric": metric}, "v1",
		func(in []any) (any, error) {
			ps, ok := in[0].(PredSpans)
			if !ok {
				return nil, fmt.Errorf("spanEval: want PredSpans, got %T", in[0])
			}
			prec, rec, f1, err := seq.SpanF1(ps.Gold, ps.Spans)
			if err != nil {
				return nil, err
			}
			return ml.Metrics{Precision: prec, Recall: rec, F1: f1, Accuracy: f1, N: len(ps.Spans)}, nil
		}), "spans")

	wf.Output("spans").Output("checked")
	return wf
}

// IEScenario is the scripted 10-iteration IE development session used for
// Figure 2(a).
func IEScenario(data NewsData) *Scenario {
	p := DefaultIEParams(data)
	sc := &Scenario{Name: "ie", Metric: "f1"}
	sc.Add("initial workflow", StepInitial, p.Build())

	p.Features.Affixes = true
	sc.Add("add prefix/suffix features", StepPrep, p.Build())

	p.Epochs = 5
	sc.Add("train for 5 epochs", StepML, p.Build())

	p.Features.Context = true
	sc.Add("add context-window features", StepPrep, p.Build())

	p.Metric = "precision"
	sc.Add("report precision emphasis", StepEval, p.Build())

	p.Features.Gazetteer = true
	sc.Add("add gazetteer feature", StepPrep, p.Build())

	p.Epochs = 8
	sc.Add("train for 8 epochs", StepML, p.Build())

	p.GazFrac = 0.8
	sc.Add("expand gazetteer coverage", StepPrep, p.Build())

	p.Metric = "recall"
	sc.Add("report recall emphasis", StepEval, p.Build())

	p.Seed = 7
	sc.Add("reshuffle training order", StepML, p.Build())
	return sc
}
