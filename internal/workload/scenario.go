package workload

import "repro/internal/core"

// StepKind classifies a scripted edit with the paper's Figure 2 color
// coding: purple = data pre-processing, orange = ML, green = evaluation.
type StepKind string

const (
	// StepInitial is the first version of a workflow.
	StepInitial StepKind = "initial"
	// StepPrep is a data pre-processing change (e.g. adding a feature).
	StepPrep StepKind = "prep"
	// StepML is a machine-learning change (e.g. adding regularization).
	StepML StepKind = "ml"
	// StepEval is an evaluation change (e.g. changing metrics).
	StepEval StepKind = "eval"
)

// Step is one iteration of a scripted development session.
type Step struct {
	// Description is the human-readable edit summary (the commit message).
	Description string
	// Kind is the Figure-2 color class.
	Kind StepKind
	// Workflow is the full program for this iteration.
	Workflow *core.Workflow
}

// Scenario is a scripted sequence of workflow versions replayed against each
// comparator system by the benchmark harness.
type Scenario struct {
	// Name identifies the scenario ("census", "ie").
	Name string
	// Metric is the headline metric tracked across iterations.
	Metric string
	// Steps are the iterations in order.
	Steps []Step
}

// Add appends a step.
func (s *Scenario) Add(description string, kind StepKind, wf *core.Workflow) {
	s.Steps = append(s.Steps, Step{Description: description, Kind: kind, Workflow: wf})
}

// Len returns the number of iterations.
func (s *Scenario) Len() int { return len(s.Steps) }
